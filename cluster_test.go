package sgxorch

import (
	"strings"
	"testing"
	"time"
)

func TestNewClusterDefaultsToPaperTestbed(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	nodes := c.Nodes()
	if len(nodes) != 5 {
		t.Fatalf("nodes = %d, want 5 (§VI-A testbed)", len(nodes))
	}
	sgxCount, masterCount := 0, 0
	for _, n := range nodes {
		if n.SGX {
			sgxCount++
			if n.EPCPages != 23936 {
				t.Fatalf("node %s EPC pages = %d, want 23936", n.Name, n.EPCPages)
			}
		}
		if n.Unschedulable {
			masterCount++
		}
	}
	if sgxCount != 2 || masterCount != 1 {
		t.Fatalf("sgx=%d master=%d", sgxCount, masterCount)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Policy: "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := NewCluster(ClusterConfig{Nodes: []NodeSpec{{}}}); err == nil {
		t.Fatal("unnamed node accepted")
	}
	if _, err := NewCluster(ClusterConfig{Nodes: []NodeSpec{
		{Name: "a", RAMBytes: GiB, CPUMillis: 1000},
		{Name: "a", RAMBytes: GiB, CPUMillis: 1000},
	}}); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestSubmitAndRunSGXJob(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.SubmitJob(JobSpec{
		Name:            "enclave-job",
		Duration:        time.Minute,
		EPCRequestBytes: 10 * MiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.WaitAll(time.Hour) {
		t.Fatal("job did not finish")
	}
	st, err := c.JobStatus("enclave-job")
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != "Succeeded" {
		t.Fatalf("phase = %s (%s)", st.Phase, st.Reason)
	}
	if !strings.HasPrefix(st.Node, "sgx-") {
		t.Fatalf("SGX job ran on %q", st.Node)
	}
	if !st.Started || !st.Finished {
		t.Fatalf("status flags: %+v", st)
	}
	if st.Turnaround < time.Minute {
		t.Fatalf("turnaround %v < duration", st.Turnaround)
	}
}

func TestStandardJobAvoidsSGXNodes(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SubmitJob(JobSpec{
		Name:               "plain-job",
		Duration:           30 * time.Second,
		MemoryRequestBytes: 2 * GiB,
	}); err != nil {
		t.Fatal(err)
	}
	if !c.WaitAll(time.Hour) {
		t.Fatal("job did not finish")
	}
	st, _ := c.JobStatus("plain-job")
	if !strings.HasPrefix(st.Node, "std-") {
		t.Fatalf("standard job placed on %q, want std-*", st.Node)
	}
}

func TestOverdeclaredUsageKilledByEnforcement(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Requests 4 KiB of EPC but allocates 40 MiB: the modified driver
	// denies enclave init (§V-D).
	if err := c.SubmitJob(JobSpec{
		Name:            "cheater",
		Duration:        time.Hour,
		EPCRequestBytes: 4 * KiB,
		EPCUsageBytes:   40 * MiB,
	}); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(time.Minute)
	st, _ := c.JobStatus("cheater")
	if st.Phase != "Failed" {
		t.Fatalf("phase = %s, want Failed", st.Phase)
	}
	if !strings.Contains(st.Reason, "denied") {
		t.Fatalf("reason = %q", st.Reason)
	}
}

func TestEnforcementCanBeDisabled(t *testing.T) {
	c, err := NewCluster(ClusterConfig{DisableEnforcement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SubmitJob(JobSpec{
		Name:            "cheater",
		Duration:        30 * time.Second,
		EPCRequestBytes: 4 * KiB,
		EPCUsageBytes:   40 * MiB,
	}); err != nil {
		t.Fatal(err)
	}
	if !c.WaitAll(time.Hour) {
		t.Fatal("job did not finish")
	}
	st, _ := c.JobStatus("cheater")
	if st.Phase != "Succeeded" {
		t.Fatalf("phase = %s (%s), want Succeeded without enforcement", st.Phase, st.Reason)
	}
}

func TestCustomTopologyAndPolicy(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Policy: PolicySpread,
		Nodes: []NodeSpec{
			{Name: "n1", RAMBytes: 4 * GiB, CPUMillis: 4000},
			{Name: "n2", RAMBytes: 4 * GiB, CPUMillis: 4000},
			{Name: "enclave", RAMBytes: 4 * GiB, CPUMillis: 4000, SGX: true, EPCSize: 64 * MiB},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	nodes := c.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	for _, n := range nodes {
		if n.Name == "enclave" {
			want := int64(64 * 256 * 23936 / 32768)
			if n.EPCPages != want {
				t.Fatalf("64 MiB EPC pages = %d, want %d", n.EPCPages, want)
			}
		}
	}
	// Spread two jobs across the two standard nodes.
	for i, name := range []string{"a", "b"} {
		if err := c.SubmitJob(JobSpec{
			Name:               name,
			Duration:           time.Minute,
			MemoryRequestBytes: GiB,
		}); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	c.AdvanceTime(10 * time.Second)
	stA, _ := c.JobStatus("a")
	stB, _ := c.JobStatus("b")
	if stA.Node == stB.Node {
		t.Fatalf("spread placed both jobs on %q", stA.Node)
	}
}

func TestSubmitJobValidation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SubmitJob(JobSpec{}); err == nil {
		t.Fatal("nameless job accepted")
	}
	if err := c.SubmitJob(JobSpec{Name: "x", Duration: -time.Second}); err == nil {
		t.Fatal("negative duration accepted")
	}
	if err := c.SubmitJob(JobSpec{Name: "dup", Duration: time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitJob(JobSpec{Name: "dup", Duration: time.Second}); err == nil {
		t.Fatal("duplicate job accepted")
	}
}

func TestSchedulerStatsExposed(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SubmitJob(JobSpec{Name: "j", Duration: time.Second, MemoryRequestBytes: MiB}); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(time.Minute)
	st := c.SchedulerStats()
	if st.Passes == 0 || st.Bound != 1 {
		t.Fatalf("stats = %+v", st)
	}
	c.Close()
	c.Close() // idempotent
}

func TestReplayBorgTraceFacade(t *testing.T) {
	res, err := ReplayBorgTrace(ReplayOptions{Seed: 1, SGXRatio: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.Outcomes) != 663 {
		t.Fatalf("completed=%v outcomes=%d", res.Completed, len(res.Outcomes))
	}
	if _, err := ReplayBorgTrace(ReplayOptions{Policy: "nope"}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestGenerateBorgTraces(t *testing.T) {
	slice := GenerateBorgEvalSlice(3)
	if slice.Len() != 663 || slice.OverAllocatorCount() != 44 {
		t.Fatalf("eval slice: %d jobs, %d over-allocators", slice.Len(), slice.OverAllocatorCount())
	}
	day := GenerateBorgDay(3, 1000)
	if day.Len() != 1000 {
		t.Fatalf("day trace: %d jobs", day.Len())
	}
}

func TestReproduceFigureFast(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6"} {
		fig, err := ReproduceFigure(id, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if fig.ID != id || len(fig.Series) == 0 {
			t.Fatalf("%s: %+v", id, fig)
		}
	}
	if _, err := ReproduceFigure("fig99", 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if got := len(FigureIDs()); got != 9 {
		t.Fatalf("FigureIDs = %d", got)
	}
}

func TestSGX2DynamicJobThroughFacade(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Nodes: []NodeSpec{
			{Name: "sgx2-1", RAMBytes: 8 * GiB, CPUMillis: 8000, SGX2: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Baseline 10 MiB, burst to 30 MiB mid-run (§VI-G).
	if err := c.SubmitJob(JobSpec{
		Name:            "bursty-enclave",
		Duration:        90 * time.Second,
		EPCRequestBytes: 10 * MiB,
		EPCUsageBytes:   30 * MiB,
		DynamicEPC:      true,
	}); err != nil {
		t.Fatal(err)
	}
	if !c.WaitAll(time.Hour) {
		t.Fatal("job did not finish")
	}
	st, _ := c.JobStatus("bursty-enclave")
	if st.Phase != "Succeeded" {
		t.Fatalf("phase = %s (%s)", st.Phase, st.Reason)
	}
}

func TestDynamicJobOnSGX1NodeFails(t *testing.T) {
	c, err := NewCluster(ClusterConfig{}) // SGX 1 testbed
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SubmitJob(JobSpec{
		Name:            "bursty-enclave",
		Duration:        time.Minute,
		EPCRequestBytes: 10 * MiB,
		EPCUsageBytes:   30 * MiB,
		DynamicEPC:      true,
	}); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(time.Minute)
	st, _ := c.JobStatus("bursty-enclave")
	if st.Phase != "Failed" {
		t.Fatalf("phase = %s, want Failed on SGX1 hardware", st.Phase)
	}
}

func TestDynamicBurstBeyondLimitKilled(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Nodes: []NodeSpec{{Name: "sgx2-1", RAMBytes: 8 * GiB, CPUMillis: 8000, SGX2: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Explicit limit below the burst peak: the EAUG is denied (§VI-G port
	// of the limit enforcement).
	if err := c.SubmitJob(JobSpec{
		Name:            "greedy-burst",
		Duration:        90 * time.Second,
		EPCRequestBytes: 10 * MiB,
		EPCUsageBytes:   60 * MiB,
		EPCLimitBytes:   20 * MiB,
		DynamicEPC:      true,
	}); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(5 * time.Minute)
	st, _ := c.JobStatus("greedy-burst")
	if st.Phase != "Failed" {
		t.Fatalf("phase = %s, want Failed (burst denied)", st.Phase)
	}
}

func TestEvictJobThroughFacade(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SubmitJob(JobSpec{
		Name:            "victim",
		Duration:        time.Hour,
		EPCRequestBytes: 10 * MiB,
	}); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(30 * time.Second)
	if err := c.EvictJob("victim", "spot preemption"); err != nil {
		t.Fatal(err)
	}
	st, _ := c.JobStatus("victim")
	if st.Phase != "Failed" || !strings.Contains(st.Reason, "Evicted") {
		t.Fatalf("status = %+v", st)
	}
	// EPC returned to the node.
	for _, n := range c.Nodes() {
		if n.SGX && n.EPCPagesFree != n.EPCPages {
			t.Fatalf("node %s leaked pages: %d free of %d", n.Name, n.EPCPagesFree, n.EPCPages)
		}
	}
	if err := c.EvictJob("ghost", ""); err == nil {
		t.Fatal("evicting unknown job succeeded")
	}
}

func TestDrainNodeThroughFacade(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SubmitJob(JobSpec{
		Name:            "sgx-work",
		Duration:        time.Hour,
		EPCRequestBytes: 10 * MiB,
	}); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(30 * time.Second)
	st, _ := c.JobStatus("sgx-work")
	drained := st.Node
	if err := c.DrainNode(drained); err != nil {
		t.Fatal(err)
	}
	st, _ = c.JobStatus("sgx-work")
	if st.Phase != "Failed" {
		t.Fatalf("job on drained node = %s", st.Phase)
	}
	// New SGX work lands on the surviving SGX node.
	if err := c.SubmitJob(JobSpec{
		Name:            "after-drain",
		Duration:        time.Minute,
		EPCRequestBytes: 10 * MiB,
	}); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(time.Minute)
	st, _ = c.JobStatus("after-drain")
	if st.Node == drained || st.Node == "" {
		t.Fatalf("after-drain on %q (drained %q)", st.Node, drained)
	}
	if err := c.DrainNode("ghost"); err == nil {
		t.Fatal("draining unknown node succeeded")
	}
}

// TestGangJobsScheduleAllOrNothing drives the gang lifecycle through
// the public facade: four co-members commit together and finish, and
// the director reports the commit.
func TestGangJobsScheduleAllOrNothing(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const members = 4
	for i := 0; i < members; i++ {
		if err := c.SubmitJob(JobSpec{
			Name:               "rank-" + string(rune('a'+i)),
			Gang:               "train-1",
			GangMinMember:      members,
			Duration:           time.Minute,
			MemoryRequestBytes: GiB,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !c.WaitAll(time.Hour) {
		t.Fatal("gang did not finish")
	}
	var waits []time.Duration
	for i := 0; i < members; i++ {
		st, err := c.JobStatus("rank-" + string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		if st.Phase != "Succeeded" {
			t.Fatalf("member %d phase = %s (%s)", i, st.Phase, st.Reason)
		}
		waits = append(waits, st.Waiting)
	}
	// Atomic commit: all members were submitted at the same instant, so
	// equal waiting times mean the gang bound in one commit burst, not
	// trickled over passes.
	for _, w := range waits[1:] {
		if w != waits[0] {
			t.Fatalf("gang bound across instants: waits = %v", waits)
		}
	}
	gs := c.GangStats()
	if gs.Commits != 1 {
		t.Fatalf("gang commits = %d, want 1", gs.Commits)
	}
	if gs.Timeouts != 0 {
		t.Fatalf("gang timeouts = %d, want 0", gs.Timeouts)
	}
}
