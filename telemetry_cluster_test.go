package sgxorch

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
)

// TestLifecycleHistogramsMatchEventStream is the enabled-registry
// property test: across a random workload, the lifecycle histograms'
// totals must equal the counts derivable from the watch event stream
// itself — every PodBound event is exactly one submit→bind sample, and
// every transition to Running exactly one bind→run sample per
// scheduling cycle (a preemption requeue back to Pending starts a new
// cycle). An independent subscriber on the same event ring derives the
// expected counts; the tracker is never consulted for them.
func TestLifecycleHistogramsMatchEventStream(t *testing.T) {
	c, err := NewCluster(ClusterConfig{SchedulerInterval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var observedBinds, observedRuns int
	runningSeen := make(map[string]bool)
	unsub := c.srv.SubscribePodEvents(func(evs []apiserver.WatchEvent) {
		for _, ev := range evs {
			switch ev.Type {
			case apiserver.PodBound:
				observedBinds++
			case apiserver.PodUpdated:
				switch ev.Pod.Status.Phase {
				case api.PodRunning:
					if !runningSeen[ev.Pod.Name] {
						runningSeen[ev.Pod.Name] = true
						observedRuns++
					}
				case api.PodPending: // preemption requeue: a new cycle begins
					delete(runningSeen, ev.Pod.Name)
				case api.PodSucceeded, api.PodFailed:
					delete(runningSeen, ev.Pod.Name)
				}
			}
		}
	}, nil)
	defer unsub()

	rng := rand.New(rand.NewSource(42))
	classes := []string{"", ClassLatencySensitive, ClassBatch, ClassBestEffort}
	for wave := 0; wave < 5; wave++ {
		for i := 0; i < 8; i++ {
			mem := int64(rng.Intn(12)+1) * GiB
			if rng.Intn(10) == 0 {
				mem = 1 << 50 // never schedulable: exercises the non-bound path
			}
			job := JobSpec{
				Name:               fmt.Sprintf("job-%d-%d", wave, i),
				Duration:           time.Duration(rng.Intn(40)+5) * time.Second,
				Priority:           int32(rng.Intn(3) * 10),
				MemoryRequestBytes: mem,
				Class:              classes[rng.Intn(len(classes))],
			}
			if err := c.SubmitJob(job); err != nil {
				t.Fatal(err)
			}
		}
		c.AdvanceTime(time.Duration(rng.Intn(20)+5) * time.Second)
	}
	c.AdvanceTime(2 * time.Minute)

	if observedBinds == 0 || observedRuns == 0 {
		t.Fatalf("workload too gentle: binds=%d runs=%d", observedBinds, observedRuns)
	}

	reg := c.Telemetry()
	labels := []string{"unclassified", ClassLatencySensitive, ClassBatch, ClassBestEffort}
	sumCounts := func(name string) int64 {
		var total int64
		for _, l := range labels {
			total += reg.HistogramVec(name, "class", nil).With(l).Count()
		}
		return total
	}
	if got := sumCounts("lifecycle_queue_seconds"); got != int64(observedBinds) {
		t.Fatalf("queue histogram total = %d, event-derived binds = %d", got, observedBinds)
	}
	if got := sumCounts("lifecycle_startup_seconds"); got != int64(observedRuns) {
		t.Fatalf("startup histogram total = %d, event-derived runs = %d", got, observedRuns)
	}
	if got := sumCounts("lifecycle_submit_to_run_seconds"); got != int64(observedRuns) {
		t.Fatalf("submit-to-run histogram total = %d, event-derived runs = %d", got, observedRuns)
	}
	binds, runs := c.LifecycleStats()
	if binds != int64(observedBinds) || runs != int64(observedRuns) {
		t.Fatalf("LifecycleStats = (%d, %d), event-derived = (%d, %d)", binds, runs, observedBinds, observedRuns)
	}
	// In the default synchronous watch mode nothing may be lost.
	if got := reg.Counter("lifecycle_resyncs_total").Value(); got != 0 {
		t.Fatalf("lifecycle_resyncs_total = %d, want 0 in synchronous mode", got)
	}
}

// TestClusterSelfScrapeQueryableViaInfluxQL drives the full
// observability loop: run a workload, let the registry self-scrape into
// the TSDB on the monitoring cadence, and read a per-class p99 back out
// through the InfluxQL engine — the quickstart query from the README.
func TestClusterSelfScrapeQueryableViaInfluxQL(t *testing.T) {
	c, err := NewCluster(ClusterConfig{SchedulerInterval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 6; i++ {
		if err := c.SubmitJob(JobSpec{
			Name:               fmt.Sprintf("job-%d", i),
			Duration:           30 * time.Second,
			MemoryRequestBytes: 2 * GiB,
			Class:              ClassBatch,
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.AdvanceTime(90 * time.Second) // several scrape intervals

	res, err := c.Query(`SELECT MAX(value) FROM "self/lifecycle_queue_seconds" WHERE quantile = '0.99' GROUP BY class`)
	if err != nil {
		t.Fatal(err)
	}
	byClass := res.ValueByTag("class")
	if v, ok := byClass["batch"]; !ok || v < 0 {
		t.Fatalf("no p99 row for class=batch: %+v", res.Rows)
	}

	// Pass traces accumulated with strictly increasing sequence numbers.
	traces := c.PassTraces()
	if len(traces) == 0 {
		t.Fatal("no pass traces retained")
	}
	for i := 1; i < len(traces); i++ {
		if traces[i].Seq <= traces[i-1].Seq {
			t.Fatalf("trace Seq not increasing: %d after %d", traces[i].Seq, traces[i-1].Seq)
		}
	}

	// The Prometheus exposition carries scheduler, apiserver, lifecycle
	// and folded facade series.
	var sb strings.Builder
	if err := c.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"scheduler_passes_total",
		"apiserver_bind_latency_seconds_count",
		`lifecycle_queue_seconds_bucket{class="batch"`,
		"cluster_bind_attempts",
		"cluster_scheduler_bound",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}

// TestClusterTelemetryDisabled: DisableTelemetry yields a nil registry
// and every observability entry point degrades to a safe no-op.
func TestClusterTelemetryDisabled(t *testing.T) {
	c, err := NewCluster(ClusterConfig{DisableTelemetry: true, SchedulerInterval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Telemetry() != nil {
		t.Fatal("disabled cluster must report a nil registry")
	}
	if err := c.SubmitJob(JobSpec{Name: "job", Duration: 10 * time.Second, MemoryRequestBytes: GiB}); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(30 * time.Second)
	if traces := c.PassTraces(); traces != nil {
		t.Fatalf("disabled cluster returned %d traces", len(traces))
	}
	var sb strings.Builder
	if err := c.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("disabled exposition: %q err=%v", sb.String(), err)
	}
	if binds, runs := c.LifecycleStats(); binds != 0 || runs != 0 {
		t.Fatalf("disabled lifecycle stats = (%d, %d)", binds, runs)
	}
	// The scheduler still works.
	st, err := c.JobStatus("job")
	if err != nil || st.Phase == "Pending" {
		t.Fatalf("job status = %+v err=%v", st, err)
	}
}
