package deviceplugin

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/sgxorch/sgxorch/internal/isgx"
	"github.com/sgxorch/sgxorch/internal/machine"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/sgx"
)

func newPlugin() *SGXPlugin {
	return New(isgx.New(sgx.NewPackage(sgx.DefaultGeometry())))
}

func TestDetect(t *testing.T) {
	sgxM := machine.New("sgx-1", 8*resource.GiB, 8000, machine.WithSGX(sgx.DefaultGeometry()))
	p, ok := Detect(sgxM)
	if !ok || p == nil {
		t.Fatal("Detect failed on SGX machine")
	}
	if p.ResourceName() != resource.EPCPages {
		t.Fatalf("ResourceName = %s", p.ResourceName())
	}
	plain := machine.New("std-1", 64*resource.GiB, 8000)
	if _, ok := Detect(plain); ok {
		t.Fatal("Detect succeeded on non-SGX machine")
	}
	if _, ok := Detect(nil); ok {
		t.Fatal("Detect succeeded on nil machine")
	}
}

func TestDeviceCountMatchesUsableEPC(t *testing.T) {
	p := newPlugin()
	// One resource item per usable EPC page: 23 936 (§V-A, §II).
	if got := p.DeviceCount(); got != 23936 {
		t.Fatalf("DeviceCount = %d, want 23936", got)
	}
	if got := p.FreeDevices(); got != 23936 {
		t.Fatalf("FreeDevices = %d, want 23936", got)
	}
}

func TestAllocateAndMounts(t *testing.T) {
	p := newPlugin()
	resp, err := p.Allocate("/kubepods/pod-1", 100)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Pages != 100 {
		t.Fatalf("granted pages = %d", resp.Pages)
	}
	if len(resp.Mounts) != 1 || resp.Mounts[0].HostPath != isgx.DevicePath ||
		resp.Mounts[0].ContainerPath != isgx.DevicePath {
		t.Fatalf("mounts = %+v, want /dev/isgx", resp.Mounts)
	}
	if got := p.FreeDevices(); got != 23836 {
		t.Fatalf("FreeDevices = %d", got)
	}
	pages, ok := p.AllocationFor("/kubepods/pod-1")
	if !ok || pages != 100 {
		t.Fatalf("AllocationFor = %d, %v", pages, ok)
	}
}

func TestAllocateErrors(t *testing.T) {
	p := newPlugin()
	if _, err := p.Allocate("/kubepods/x", 0); err == nil {
		t.Fatal("zero-page allocation accepted")
	}
	if _, err := p.Allocate("/kubepods/x", -3); err == nil {
		t.Fatal("negative allocation accepted")
	}
	if _, err := p.Allocate("/kubepods/x", 23937); !errors.Is(err, ErrInsufficientDevices) {
		t.Fatalf("oversized err = %v", err)
	}
	if _, err := p.Allocate("/kubepods/x", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate("/kubepods/x", 10); !errors.Is(err, ErrAlreadyAllocated) {
		t.Fatalf("double alloc err = %v", err)
	}
}

func TestNoOvercommitAcrossPods(t *testing.T) {
	p := newPlugin()
	if _, err := p.Allocate("/kubepods/a", 23000); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate("/kubepods/b", 1000); !errors.Is(err, ErrInsufficientDevices) {
		t.Fatalf("overcommit err = %v", err)
	}
	// Exactly filling the remainder works.
	if _, err := p.Allocate("/kubepods/c", 936); err != nil {
		t.Fatal(err)
	}
	if got := p.FreeDevices(); got != 0 {
		t.Fatalf("FreeDevices = %d, want 0", got)
	}
}

func TestDeallocateIdempotent(t *testing.T) {
	p := newPlugin()
	if _, err := p.Allocate("/kubepods/a", 500); err != nil {
		t.Fatal(err)
	}
	p.Deallocate("/kubepods/a")
	if got := p.FreeDevices(); got != 23936 {
		t.Fatalf("FreeDevices after dealloc = %d", got)
	}
	p.Deallocate("/kubepods/a") // no-op
	p.Deallocate("/kubepods/never-allocated")
	if got := p.FreeDevices(); got != 23936 {
		t.Fatalf("FreeDevices after idempotent dealloc = %d", got)
	}
	if _, ok := p.AllocationFor("/kubepods/a"); ok {
		t.Fatal("allocation survived dealloc")
	}
}

// Property: free + sum(allocated) is invariant over any alloc/dealloc
// sequence.
func TestDeviceAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		p := newPlugin()
		total := p.DeviceCount()
		var live int64
		for i, op := range ops {
			cg := string(rune('a' + i%26))
			pages := int64(op%2000) + 1
			if i%3 == 2 {
				if held, ok := p.AllocationFor(cg); ok {
					p.Deallocate(cg)
					live -= held
				}
				continue
			}
			if _, err := p.Allocate(cg, pages); err == nil {
				live += pages
			}
			if p.FreeDevices()+live != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
