// Package deviceplugin implements the paper's Kubernetes device plugin
// (§V-A): it detects the SGX kernel module on a node and exposes every
// usable EPC page as an individually schedulable resource item, so that
// "several pods can be deployed and share a single node".
//
// The real plugin talks to Kubelet over gRPC (ListAndWatch / Allocate);
// here the same interface is invoked in-process by the kubelet's device
// manager. Allocation responses carry the /dev/isgx mount, exactly what
// Kubernetes injects into SGX pods.
package deviceplugin

import (
	"errors"
	"fmt"
	"sync"

	"github.com/sgxorch/sgxorch/internal/isgx"
	"github.com/sgxorch/sgxorch/internal/machine"
	"github.com/sgxorch/sgxorch/internal/resource"
)

// Errors returned by Allocate.
var (
	// ErrInsufficientDevices is returned when a pod requests more EPC
	// page items than remain free on the node.
	ErrInsufficientDevices = errors.New("deviceplugin: insufficient EPC page devices")
	// ErrAlreadyAllocated is returned when a pod (cgroup) double
	// allocates.
	ErrAlreadyAllocated = errors.New("deviceplugin: pod already holds an allocation")
)

// Mount describes a host path injected into a container.
type Mount struct {
	HostPath      string
	ContainerPath string
}

// AllocateResponse tells the kubelet how to wire the allocated devices
// into the pod.
type AllocateResponse struct {
	// Pages is the number of EPC page items granted.
	Pages int64
	// Mounts carries the /dev/isgx device file (§V-F: "mounting the
	// /dev/isgx pseudo-file exposed by the host kernel directly into the
	// container").
	Mounts []Mount
}

// SGXPlugin is the per-node device plugin instance.
type SGXPlugin struct {
	driver *isgx.Driver

	mu        sync.Mutex
	free      int64
	allocated map[string]int64 // cgroup path -> pages held
}

// Detect probes a machine for the SGX kernel module, as the plugin does on
// startup ("checks for the availability of the Intel SGX kernel module on
// each node and reports it to Kubelet", §V-A). It returns (nil, false) on
// machines without SGX.
func Detect(m *machine.Machine) (*SGXPlugin, bool) {
	if m == nil || !m.HasSGX() {
		return nil, false
	}
	return New(m.Driver()), true
}

// New builds a plugin over an isgx driver.
func New(driver *isgx.Driver) *SGXPlugin {
	return &SGXPlugin{
		driver:    driver,
		free:      driver.TotalEPCPages(),
		allocated: make(map[string]int64),
	}
}

// ResourceName returns the extended resource this plugin serves.
func (p *SGXPlugin) ResourceName() resource.Name { return resource.EPCPages }

// DeviceCount reports the number of resource items advertised — one per
// usable EPC page, 23 936 on the paper's hardware. "Despite the great
// amount of resources created with this scheme, we did not notice any
// perceptible negative influence on performance" (§V-A).
func (p *SGXPlugin) DeviceCount() int64 { return p.driver.TotalEPCPages() }

// FreeDevices reports the unallocated page items.
func (p *SGXPlugin) FreeDevices() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.free
}

// Allocate grants pages EPC page items to the pod identified by its
// cgroup path and returns the device mounts. The plugin deliberately
// prevents over-commitment of the EPC "in order to preserve predictable
// performance for all pods deployed in the cluster" (§V-A).
func (p *SGXPlugin) Allocate(cgroupPath string, pages int64) (*AllocateResponse, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("deviceplugin: non-positive page request %d", pages)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.allocated[cgroupPath]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyAllocated, cgroupPath)
	}
	if pages > p.free {
		return nil, fmt.Errorf("%w: requested %d, free %d", ErrInsufficientDevices, pages, p.free)
	}
	p.free -= pages
	p.allocated[cgroupPath] = pages
	return &AllocateResponse{
		Pages:  pages,
		Mounts: []Mount{{HostPath: isgx.DevicePath, ContainerPath: isgx.DevicePath}},
	}, nil
}

// Deallocate returns a pod's page items to the free pool. Unknown cgroups
// are a no-op (idempotent teardown).
func (p *SGXPlugin) Deallocate(cgroupPath string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pages, ok := p.allocated[cgroupPath]; ok {
		p.free += pages
		delete(p.allocated, cgroupPath)
	}
}

// AllocationFor reports the page items held by a pod.
func (p *SGXPlugin) AllocationFor(cgroupPath string) (int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pages, ok := p.allocated[cgroupPath]
	return pages, ok
}
