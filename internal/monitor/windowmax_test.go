package monitor

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

func wmDB() (*clock.Sim, *tsdb.DB) {
	clk := clock.NewSim()
	return clk, tsdb.New(clk, tsdb.WithGCInterval(0))
}

func wmTags(pod, node string) tsdb.Tags {
	return tsdb.Tags{TagPod: pod, TagNode: node}
}

func TestWindowMaxTracksWrites(t *testing.T) {
	clk, db := wmDB()
	w := NewWindowMax(clk, db, 25*time.Second, MeasurementEPC)
	defer w.Close()

	if _, ok := w.Max(MeasurementEPC, "p", "n"); ok {
		t.Fatal("empty aggregator reported a max")
	}
	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 5)
	clk.Advance(5 * time.Second)
	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 3)
	if v, ok := w.Max(MeasurementEPC, "p", "n"); !ok || v != 5 {
		t.Fatalf("max = %v, %v; want 5", v, ok)
	}
	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 9)
	if v, _ := w.Max(MeasurementEPC, "p", "n"); v != 9 {
		t.Fatalf("max after larger sample = %v, want 9", v)
	}
	// Zero samples mirror Listing 1's value <> 0 filter.
	db.WriteNow(MeasurementEPC, wmTags("z", "n"), 0)
	if _, ok := w.Max(MeasurementEPC, "z", "n"); ok {
		t.Fatal("zero-only series reported a max")
	}
}

// TestWindowMaxDecay: the peak must fall — and eventually disappear —
// purely from the passage of time, with Refresh announcing each step.
func TestWindowMaxDecay(t *testing.T) {
	clk, db := wmDB()
	w := NewWindowMax(clk, db, 25*time.Second, MeasurementEPC)
	defer w.Close()
	var announced []string
	w.SetOnChange(func(_, pod, node string, max float64, ok bool) {
		announced = append(announced, fmt.Sprintf("%s/%s=%v,%v", pod, node, max, ok))
	})

	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 10) // t=0
	clk.Advance(10 * time.Second)
	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 4) // t=10
	announced = nil

	clk.Advance(20 * time.Second) // t=30: the 10 at t=0 is out of [5, 30]
	w.Refresh()
	if v, ok := w.Max(MeasurementEPC, "p", "n"); !ok || v != 4 {
		t.Fatalf("max after peak decay = %v, %v; want 4", v, ok)
	}
	if len(announced) != 1 || announced[0] != "p/n=4,true" {
		t.Fatalf("decay announcements = %v", announced)
	}

	clk.Advance(time.Minute) // everything out of window
	w.Refresh()
	if _, ok := w.Max(MeasurementEPC, "p", "n"); ok {
		t.Fatal("fully decayed series still reports a max")
	}
	if len(announced) != 2 || announced[1] != "p/n=0,false" {
		t.Fatalf("final announcements = %v", announced)
	}
	if w.SeriesCount() != 0 {
		t.Fatalf("series not reclaimed: %d", w.SeriesCount())
	}
}

// TestWindowMaxMaxIsCurrentWithoutRefresh: Max must skip expired entries
// even before Refresh evicts them.
func TestWindowMaxMaxIsCurrentWithoutRefresh(t *testing.T) {
	clk, db := wmDB()
	w := NewWindowMax(clk, db, 25*time.Second, MeasurementEPC)
	defer w.Close()
	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 10)
	clk.Advance(10 * time.Second)
	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 4)
	clk.Advance(20 * time.Second)
	if v, ok := w.Max(MeasurementEPC, "p", "n"); !ok || v != 4 {
		t.Fatalf("max without refresh = %v, %v; want 4", v, ok)
	}
}

func TestWindowMaxBackfill(t *testing.T) {
	clk, db := wmDB()
	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 7)
	clk.Advance(10 * time.Second)
	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 2)
	db.WriteNow(MeasurementMemory, wmTags("p", "n"), 11)
	clk.Advance(40 * time.Second)
	db.WriteNow(MeasurementEPC, wmTags("q", "n"), 3)

	// Created after the writes: the 7 and 11 have aged out of the window
	// by now, the 3 has not.
	w := NewWindowMax(clk, db, 25*time.Second, MeasurementEPC, MeasurementMemory)
	defer w.Close()
	if _, ok := w.Max(MeasurementEPC, "p", "n"); ok {
		t.Fatal("expired backfill point visible")
	}
	if _, ok := w.Max(MeasurementMemory, "p", "n"); ok {
		t.Fatal("expired memory backfill point visible")
	}
	if v, ok := w.Max(MeasurementEPC, "q", "n"); !ok || v != 3 {
		t.Fatalf("backfilled max = %v, %v; want 3", v, ok)
	}
}

// TestWindowMaxChangeAnnouncements: the callback fires exactly on
// observable max transitions from the write path.
func TestWindowMaxChangeAnnouncements(t *testing.T) {
	clk, db := wmDB()
	w := NewWindowMax(clk, db, 25*time.Second, MeasurementEPC)
	defer w.Close()
	fired := 0
	w.SetOnChange(func(_, _, _ string, _ float64, _ bool) { fired++ })

	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 5) // new series: change
	if fired != 1 {
		t.Fatalf("fired = %d after first sample", fired)
	}
	clk.Advance(time.Second)
	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 3) // dominated: no change
	if fired != 1 {
		t.Fatalf("fired = %d after dominated sample", fired)
	}
	clk.Advance(time.Second)
	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 8) // new peak: change
	if fired != 2 {
		t.Fatalf("fired = %d after new peak", fired)
	}
	db.WriteNow("unrelated/metric", wmTags("p", "n"), 99) // untracked measurement
	if fired != 2 {
		t.Fatalf("fired = %d after untracked measurement", fired)
	}
}

// TestWindowMaxMatchesScanReference drives randomized in- and out-of-order
// writes, zeros, and clock advances through the aggregator and requires
// its view to match WindowPeak — the same inner-Listing-1 peak computed
// from scratch through the tsdb scan — at every checkpoint.
func TestWindowMaxMatchesScanReference(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		clk, db := wmDB()
		window := time.Duration(5+rng.Intn(56)) * time.Second
		w := NewWindowMax(clk, db, window, MeasurementEPC)
		w.SetOnChange(func(string, string, string, float64, bool) {})

		type key struct{ pod, node string }
		seen := make(map[key]bool)
		for op := 0; op < 120; op++ {
			if rng.Intn(4) == 0 {
				clk.Advance(time.Duration(rng.Intn(20000)) * time.Millisecond)
			}
			k := key{
				pod:  fmt.Sprintf("p%d", rng.Intn(5)),
				node: fmt.Sprintf("n%d", rng.Intn(3)),
			}
			seen[k] = true
			v := float64(rng.Intn(8)) // zeros included
			at := clk.Now().Add(-time.Duration(rng.Intn(90)) * time.Second)
			db.Write(MeasurementEPC, wmTags(k.pod, k.node), v, at)

			if op%10 == 0 {
				w.Refresh()
				want := WindowPeak(db, MeasurementEPC, window)
				for k := range seen {
					wantV, wantOK := want[PodNode{Pod: k.pod, Node: k.node}]
					gotV, gotOK := w.Max(MeasurementEPC, k.pod, k.node)
					if gotOK != wantOK || (wantOK && gotV != wantV) {
						t.Fatalf("trial %d op %d series %v: max = %v,%v; scan reference = %v,%v",
							trial, op, k, gotV, gotOK, wantV, wantOK)
					}
				}
			}
		}
		w.Close()
	}
}

// TestWindowMaxCloseDetaches: writes after Close must not reach the
// aggregator.
func TestWindowMaxCloseDetaches(t *testing.T) {
	clk, db := wmDB()
	w := NewWindowMax(clk, db, 25*time.Second, MeasurementEPC)
	w.Close()
	db.WriteNow(MeasurementEPC, wmTags("p", "n"), 5)
	if _, ok := w.Max(MeasurementEPC, "p", "n"); ok {
		t.Fatal("closed aggregator observed a write")
	}
}
