package monitor

import (
	"container/heap"
	"sync"
	"time"

	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// WindowMax is a streaming sliding-window-max aggregator: it keeps the
// peak non-zero value of the trailing window continuously current for
// every (measurement, pod_name, nodename) series — the inner query of
// Listing 1 (MAX(value) WHERE value <> 0 AND time >= now() - 25s GROUP BY
// pod_name, nodename) computed incrementally instead of re-scanned per
// scheduling pass.
//
// It subscribes to the database write path (tsdb.OnWrite) and maintains a
// monotonic deque per series: times non-decreasing, values strictly
// decreasing front to back, so the front is always the window max and
// each point is pushed and popped at most once — O(1) amortized per
// sample. Zero-valued samples are skipped, mirroring Listing 1's
// value <> 0 filter. Out-of-order samples take a rare O(deque) insertion
// path that preserves the invariant.
//
// Because the max also changes when the peak ages out of the window with
// no write in between, series register their front's expiry instant in a
// min-heap; Refresh pops only the series whose front actually expired, so
// keeping the whole keyspace current costs O(expired · log series), not
// O(series). The change callback (SetOnChange) fires on every observable
// max transition — from writes and from expiry — which is what lets a
// consumer (the scheduler's ClusterCache) maintain derived sums
// incrementally.
//
// The window must not exceed the database retention period: retention
// clamping happens on the InfluxQL read path but not here.
type WindowMax struct {
	clk    clock.Clock
	window time.Duration
	keep   map[string]bool // tracked measurements

	mu       sync.Mutex
	series   map[wmKey]*wmSeries
	expiry   expiryHeap
	onChange func(measurement, pod, node string, max float64, ok bool)

	unsubscribe func()
}

// wmKey identifies one aggregated series the way Listing 1's GROUP BY
// pod_name, nodename intends; points sharing (pod, node) fold into one
// deque regardless of the underlying tsdb series.
type wmKey struct {
	measurement string
	pod, node   string
}

type wmPoint struct {
	t time.Time
	v float64
}

// wmSeries holds one monotonic deque. Popped-front slack is reclaimed
// when the slice reallocates on append.
type wmSeries struct {
	dq []wmPoint
}

// wmChange is one observable max transition, collected under the lock
// and delivered after it is released.
type wmChange struct {
	key wmKey
	max float64
	ok  bool
}

// NewWindowMax creates an aggregator for the given measurements, attaches
// it to the database write path, and backfills the current window from
// the stored points so its view starts consistent. Call Close to detach.
func NewWindowMax(clk clock.Clock, db *tsdb.DB, window time.Duration, measurements ...string) *WindowMax {
	w := &WindowMax{
		clk:    clk,
		window: window,
		keep:   make(map[string]bool, len(measurements)),
		series: make(map[wmKey]*wmSeries),
	}
	for _, m := range measurements {
		w.keep[m] = true
	}
	// Subscribe before backfilling: a write racing the handshake is then
	// observed twice (once live, once by the scan), which the deque
	// absorbs, instead of being missed entirely.
	w.unsubscribe = db.OnWrite(w.onWrite)
	now := clk.Now()
	for _, m := range measurements {
		db.Scan(m, now.Add(-window), time.Time{}, func(tags tsdb.Tags, pts []tsdb.Point) bool {
			w.mu.Lock()
			for _, p := range pts {
				w.observeLocked(m, tags[TagPod], tags[TagNode], p.Value, p.Time, now)
			}
			w.mu.Unlock()
			return true
		})
	}
	return w
}

// Close detaches the aggregator from the database write path.
func (w *WindowMax) Close() {
	if w.unsubscribe != nil {
		w.unsubscribe()
		w.unsubscribe = nil
	}
}

// Window returns the sliding window length.
func (w *WindowMax) Window() time.Duration { return w.window }

// SetOnChange registers the single change callback. It runs on the
// goroutine that triggered the transition (a metric write or a Refresh),
// with the aggregator lock released; it may call Max but must not call
// Refresh or Close.
func (w *WindowMax) SetOnChange(fn func(measurement, pod, node string, max float64, ok bool)) {
	w.mu.Lock()
	w.onChange = fn
	w.mu.Unlock()
}

// Max returns the current window peak for one series, or ok=false when no
// non-zero sample lies in the window. It is a pure read: expired front
// entries are skipped, not evicted, so it is safe to call from the change
// callback.
func (w *WindowMax) Max(measurement, pod, node string) (float64, bool) {
	cutoff := w.clk.Now().Add(-w.window)
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.series[wmKey{measurement: measurement, pod: pod, node: node}]
	if !ok {
		return 0, false
	}
	// Values decrease front to back, so the first unexpired entry is the
	// window max.
	for _, p := range s.dq {
		if !p.t.Before(cutoff) {
			return p.v, true
		}
	}
	return 0, false
}

// SeriesCount returns the number of live aggregated series (for tests).
func (w *WindowMax) SeriesCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.series)
}

// Refresh evicts every front entry that has aged out of the window and
// fires the change callback for each affected series. Only series whose
// registered expiry has passed are touched. Consumers call it once per
// scheduling pass, before reading.
func (w *WindowMax) Refresh() {
	now := w.clk.Now()
	cutoff := now.Add(-w.window)
	var changes []wmChange
	w.mu.Lock()
	for len(w.expiry) > 0 && w.expiry[0].at.Before(now) {
		ent := heap.Pop(&w.expiry).(expiryEntry)
		s, ok := w.series[ent.key]
		if !ok || len(s.dq) == 0 || !s.dq[0].t.Add(w.window).Equal(ent.at) {
			// Stale entry: the front changed after this was pushed, and
			// that transition already announced itself and registered a
			// fresh expiry.
			continue
		}
		for len(s.dq) > 0 && s.dq[0].t.Before(cutoff) {
			s.dq = s.dq[1:]
		}
		if len(s.dq) == 0 {
			delete(w.series, ent.key)
			changes = append(changes, wmChange{key: ent.key})
			continue
		}
		heap.Push(&w.expiry, expiryEntry{at: s.dq[0].t.Add(w.window), key: ent.key})
		changes = append(changes, wmChange{key: ent.key, max: s.dq[0].v, ok: true})
	}
	fn := w.onChange
	w.mu.Unlock()
	w.fire(fn, changes)
}

// onWrite is the tsdb write-path hook.
func (w *WindowMax) onWrite(measurement string, tags tsdb.Tags, value float64, t time.Time) {
	if !w.keep[measurement] {
		return
	}
	now := w.clk.Now()
	w.mu.Lock()
	change, changed := w.observeLocked(measurement, tags[TagPod], tags[TagNode], value, t, now)
	fn := w.onChange
	w.mu.Unlock()
	if changed {
		w.fire(fn, []wmChange{change})
	}
}

func (w *WindowMax) fire(fn func(string, string, string, float64, bool), changes []wmChange) {
	if fn == nil {
		return
	}
	for _, c := range changes {
		fn(c.key.measurement, c.key.pod, c.key.node, c.max, c.ok)
	}
}

// observeLocked folds one sample into its deque and reports whether the
// observable max changed. The comparison is against the pre-eviction
// front — the value last announced for this series — so a peak that ages
// out exactly when a smaller sample arrives is still reported as a drop.
// Caller must hold w.mu.
func (w *WindowMax) observeLocked(measurement, pod, node string, v float64, t, now time.Time) (wmChange, bool) {
	if v == 0 {
		return wmChange{}, false // Listing 1: WHERE value <> 0
	}
	cutoff := now.Add(-w.window)
	if t.Before(cutoff) {
		return wmChange{}, false // already outside the window
	}
	key := wmKey{measurement: measurement, pod: pod, node: node}
	s, ok := w.series[key]
	if !ok {
		s = &wmSeries{}
		w.series[key] = s
	}
	var oldFront wmPoint
	hadFront := len(s.dq) > 0
	if hadFront {
		oldFront = s.dq[0]
	}
	// Expired fronts are invisible to Max already; drop them quietly.
	for len(s.dq) > 0 && s.dq[0].t.Before(cutoff) {
		s.dq = s.dq[1:]
	}
	s.insert(wmPoint{t: t, v: v})
	front := s.dq[0] // insert on an emptied deque appends, so dq is never empty here
	if hadFront && front == oldFront {
		return wmChange{}, false
	}
	heap.Push(&w.expiry, expiryEntry{at: front.t.Add(w.window), key: key})
	return wmChange{key: key, max: front.v, ok: true}, true
}

// insert adds a point to the monotonic deque. The common case — samples
// arriving in time order — pops dominated entries off the back and
// appends, O(1) amortized. An out-of-order sample is placed at its
// time-ordered position after discarding the earlier entries it
// dominates, unless a later entry already dominates it.
func (s *wmSeries) insert(p wmPoint) {
	n := len(s.dq)
	if n == 0 || !p.t.Before(s.dq[n-1].t) {
		for len(s.dq) > 0 && s.dq[len(s.dq)-1].v <= p.v {
			s.dq = s.dq[:len(s.dq)-1]
		}
		s.dq = append(s.dq, p)
		return
	}
	// Out-of-order: i is the first entry strictly later than p.
	i := 0
	for i < n && !s.dq[i].t.After(p.t) {
		i++
	}
	if s.dq[i].v >= p.v {
		return // a later-or-equal-time entry dominates p
	}
	j := i
	for j > 0 && s.dq[j-1].v <= p.v {
		j-- // p dominates these earlier entries
	}
	if j == i {
		s.dq = append(s.dq, wmPoint{})
		copy(s.dq[j+1:], s.dq[j:])
		s.dq[j] = p
		return
	}
	copy(s.dq[j+1:], s.dq[i:])
	s.dq = s.dq[:n-(i-j)+1]
	s.dq[j] = p
}

// expiryEntry schedules one series' front for eviction. Entries are lazy:
// a front change leaves the old entry in the heap to be skipped later.
type expiryEntry struct {
	at  time.Time
	key wmKey
}

type expiryHeap []expiryEntry

func (h expiryHeap) Len() int           { return len(h) }
func (h expiryHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h expiryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x any)        { *h = append(*h, x.(expiryEntry)) }
func (h *expiryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
