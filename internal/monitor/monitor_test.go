package monitor

import (
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/influxql"
	"github.com/sgxorch/sgxorch/internal/kubelet"
	"github.com/sgxorch/sgxorch/internal/machine"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/sgx"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// fakeSource is a deterministic StatsSource.
type fakeSource struct {
	node  string
	stats []kubelet.PodStat
}

func (f *fakeSource) NodeName() string            { return f.node }
func (f *fakeSource) PodStats() []kubelet.PodStat { return f.stats }

func TestHeapsterScrape(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	h := NewHeapster(clk, db, 0)
	h.AddSource(&fakeSource{node: "n1", stats: []kubelet.PodStat{
		{PodName: "a", MemoryBytes: 100},
		{PodName: "b", MemoryBytes: 200},
	}})
	h.AddSource(&fakeSource{node: "n2", stats: []kubelet.PodStat{
		{PodName: "c", MemoryBytes: 300},
	}})
	h.Scrape()
	res, err := influxql.Execute(db,
		`SELECT SUM(mem) AS mem FROM (SELECT MAX(value) AS mem FROM "memory/usage" WHERE time >= now() - 25s GROUP BY pod_name, nodename) GROUP BY nodename`)
	if err != nil {
		t.Fatal(err)
	}
	byNode := res.ValueByTag(TagNode)
	if byNode["n1"] != 300 || byNode["n2"] != 300 {
		t.Fatalf("per-node memory = %v", byNode)
	}
}

func TestHeapsterPeriodic(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	h := NewHeapster(clk, db, 10*time.Second)
	h.AddSource(&fakeSource{node: "n1", stats: []kubelet.PodStat{{PodName: "a", MemoryBytes: 1}}})
	h.Start()
	h.Start() // idempotent
	clk.Advance(35 * time.Second)
	series := db.Series(MeasurementMemory)
	if len(series) != 1 || len(series[0].Points) != 3 {
		t.Fatalf("series = %+v", series)
	}
	h.Stop()
	h.Stop() // idempotent
	clk.Advance(time.Minute)
	series = db.Series(MeasurementMemory)
	if len(series[0].Points) != 3 {
		t.Fatal("heapster kept scraping after Stop")
	}
}

func TestProbeWritesEPCBytes(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	p := NewProbe(clk, db, &fakeSource{node: "sgx-1", stats: []kubelet.PodStat{
		{PodName: "job-1", EPCBytes: 10 * resource.MiB},
		{PodName: "idle", EPCBytes: 0},
	}}, 0)
	p.Scrape()

	// Listing 1 must see the non-zero pod and filter the idle one.
	res, err := influxql.Execute(db,
		`SELECT SUM(epc) AS epc FROM (SELECT MAX(value) AS epc FROM "sgx/epc" WHERE value <> 0 AND time >= now() - 25s GROUP BY pod_name, nodename) GROUP BY nodename`)
	if err != nil {
		t.Fatal(err)
	}
	byNode := res.ValueByTag(TagNode)
	if got := byNode["sgx-1"]; got != float64(10*resource.MiB) {
		t.Fatalf("sgx-1 EPC = %v, want %d", got, 10*resource.MiB)
	}
}

func TestDeployProbesOnlyOnSGXNodes(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	db := tsdb.New(clk)

	sgxMach := machine.New("sgx-1", 8*resource.GiB, 8000, machine.WithSGX(sgx.DefaultGeometry()))
	stdMach := machine.New("std-1", 64*resource.GiB, 8000)
	kls := []*kubelet.Kubelet{
		kubelet.New(clk, srv, sgxMach),
		kubelet.New(clk, srv, stdMach),
	}
	for _, kl := range kls {
		if err := kl.Start(); err != nil {
			t.Fatal(err)
		}
	}
	ds := DeployProbes(clk, db, kls, time.Second)
	defer ds.Stop()
	// "The probe is deployed on all SGX-enabled nodes using the DaemonSet
	// component" (§V-C) — exactly one here.
	if got := ds.Size(); got != 1 {
		t.Fatalf("probes deployed = %d, want 1", got)
	}
}

func TestProbeStartStop(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	src := &fakeSource{node: "sgx-1", stats: []kubelet.PodStat{{PodName: "j", EPCBytes: 5}}}
	p := NewProbe(clk, db, src, 10*time.Second)
	p.Start()
	clk.Advance(25 * time.Second)
	p.Stop()
	clk.Advance(time.Minute)
	series := db.Series(MeasurementEPC)
	if len(series) != 1 || len(series[0].Points) != 2 {
		t.Fatalf("points = %+v", series)
	}
}

func TestWindowPeakMatchesListing1Inner(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	p := NewProbe(clk, db, &fakeSource{node: "sgx-1", stats: []kubelet.PodStat{
		{PodName: "job-1", EPCBytes: 4 * resource.MiB},
		{PodName: "idle", EPCBytes: 0},
	}}, 0)
	p.Scrape()
	clk.Advance(10 * time.Second)
	p.Scrape()

	// A stale peak outside the window must not surface.
	db.Write(MeasurementEPC, tsdb.Tags{TagPod: "job-1", TagNode: "sgx-1"},
		float64(100*resource.MiB), clk.Now().Add(-time.Minute))

	peaks := WindowPeak(db, MeasurementEPC, 25*time.Second)
	if got := peaks[PodNode{Pod: "job-1", Node: "sgx-1"}]; got != float64(4*resource.MiB) {
		t.Fatalf("job-1 peak = %v, want %d", got, 4*resource.MiB)
	}
	// Zero-valued series are filtered like Listing 1's value <> 0.
	if _, ok := peaks[PodNode{Pod: "idle", Node: "sgx-1"}]; ok {
		t.Fatal("idle (all-zero) series surfaced a peak")
	}
	if len(peaks) != 1 {
		t.Fatalf("peaks = %v, want only job-1", peaks)
	}
}
