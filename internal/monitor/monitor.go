// Package monitor implements the paper's monitoring layer (§V-C): a
// Heapster-equivalent collector that pushes per-pod standard-memory usage
// into the time-series database, and the custom SGX metrics probe —
// deployed as a DaemonSet on SGX-enabled nodes — that pushes per-pod EPC
// usage gathered from the modified driver into the same database, "so our
// scheduler [can] use equivalent queries for SGX- and non SGX-related
// metrics".
package monitor

import (
	"sync"
	"time"

	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/kubelet"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// Measurement names, matching the paper's InfluxDB schema (Listing 1 uses
// "sgx/epc"; Heapster's memory metric is "memory/usage").
const (
	MeasurementEPC    = "sgx/epc"
	MeasurementMemory = "memory/usage"
)

// Tag keys used by Heapster and the probe (Listing 1 groups by pod_name
// and nodename).
const (
	TagPod  = "pod_name"
	TagNode = "nodename"
)

// DefaultScrapeInterval is how often collectors sample node stats.
// Heapster's housekeeping default is 10 s, which keeps the scheduler's
// 25 s sliding window (Listing 1) populated with 2-3 samples per pod.
const DefaultScrapeInterval = 10 * time.Second

// StatsSource abstracts the kubelet stats endpoint the collectors scrape.
type StatsSource interface {
	NodeName() string
	PodStats() []kubelet.PodStat
}

// Heapster collects standard-memory usage from every node in the cluster
// (§V-C: "Kubernetes natively supports Heapster, a lightweight monitoring
// framework for containers").
type Heapster struct {
	clk      clock.Clock
	db       *tsdb.DB
	interval time.Duration

	mu      sync.Mutex
	sources []StatsSource
	stop    func()
}

// NewHeapster creates a collector writing into db. A non-positive
// interval selects the default.
func NewHeapster(clk clock.Clock, db *tsdb.DB, interval time.Duration) *Heapster {
	if interval <= 0 {
		interval = DefaultScrapeInterval
	}
	return &Heapster{clk: clk, db: db, interval: interval}
}

// AddSource registers a node's stats endpoint.
func (h *Heapster) AddSource(s StatsSource) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sources = append(h.sources, s)
}

// Start begins periodic scraping. It returns immediately; use Stop to
// halt.
func (h *Heapster) Start() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stop != nil {
		return
	}
	h.stop = clock.Periodic(h.clk, h.interval, h.Scrape)
}

// Stop halts periodic scraping.
func (h *Heapster) Stop() {
	h.mu.Lock()
	stop := h.stop
	h.stop = nil
	h.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// Scrape samples every source once, writing one memory/usage point per
// pod. Exposed for deterministic tests and manual collection.
func (h *Heapster) Scrape() {
	h.mu.Lock()
	sources := make([]StatsSource, len(h.sources))
	copy(sources, h.sources)
	h.mu.Unlock()
	for _, src := range sources {
		node := src.NodeName()
		for _, ps := range src.PodStats() {
			h.db.WriteNow(MeasurementMemory, tsdb.Tags{
				TagPod:  ps.PodName,
				TagNode: node,
			}, float64(ps.MemoryBytes))
		}
	}
}

// Probe is the SGX metrics probe for one SGX-enabled node. It reads EPC
// occupancy through the modified driver's interfaces and pushes it "into
// the same InfluxDB database used by Heapster" (§V-C).
type Probe struct {
	clk      clock.Clock
	db       *tsdb.DB
	source   StatsSource
	interval time.Duration

	mu   sync.Mutex
	stop func()
}

// NewProbe creates a probe for one node.
func NewProbe(clk clock.Clock, db *tsdb.DB, source StatsSource, interval time.Duration) *Probe {
	if interval <= 0 {
		interval = DefaultScrapeInterval
	}
	return &Probe{clk: clk, db: db, source: source, interval: interval}
}

// Start begins periodic collection.
func (p *Probe) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.stop = clock.Periodic(p.clk, p.interval, p.Scrape)
}

// Stop halts collection.
func (p *Probe) Stop() {
	p.mu.Lock()
	stop := p.stop
	p.stop = nil
	p.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// Scrape samples EPC usage once, one sgx/epc point per pod (value in
// bytes, as summed by Listing 1).
func (p *Probe) Scrape() {
	node := p.source.NodeName()
	for _, ps := range p.source.PodStats() {
		p.db.WriteNow(MeasurementEPC, tsdb.Tags{
			TagPod:  ps.PodName,
			TagNode: node,
		}, float64(ps.EPCBytes))
	}
}

// PodNode identifies one collected series: the (pod_name, nodename) pair
// Listing 1 groups by.
type PodNode struct {
	Pod  string
	Node string
}

// WindowPeak reads the trailing window of a measurement through the tsdb
// scan path and returns the peak non-zero value per (pod, node) series —
// the inner query of Listing 1 computed without materialising any points.
// It is the collectors' read-side companion: probes and Heapster write
// one series per (pod, node), and this folds each series' window in
// place.
func WindowPeak(db *tsdb.DB, measurement string, window time.Duration) map[PodNode]float64 {
	out := make(map[PodNode]float64)
	from := db.Now().Add(-window)
	db.Scan(measurement, from, time.Time{}, func(tags tsdb.Tags, pts []tsdb.Point) bool {
		key := PodNode{Pod: tags[TagPod], Node: tags[TagNode]}
		peak, seen := 0.0, false
		for _, p := range pts {
			if p.Value == 0 {
				continue
			}
			if !seen || p.Value > peak {
				peak, seen = p.Value, true
			}
		}
		if seen {
			out[key] = peak
		}
		return true
	})
	return out
}

// DaemonSet deploys probes across the cluster the way the paper does
// (§V-C): one probe per SGX-enabled node, where "the distinction between
// standard and SGX-enabled cluster nodes is made by checking for the EPC
// size advertised to Kubernetes by the device plugin".
type DaemonSet struct {
	probes []*Probe
}

// DeployProbes creates and starts a probe on every kubelet whose device
// plugin advertises EPC pages.
func DeployProbes(clk clock.Clock, db *tsdb.DB, kubelets []*kubelet.Kubelet, interval time.Duration) *DaemonSet {
	ds := &DaemonSet{}
	for _, kl := range kubelets {
		if kl.Plugin() == nil || kl.Plugin().DeviceCount() == 0 {
			continue
		}
		p := NewProbe(clk, db, kl, interval)
		p.Start()
		ds.probes = append(ds.probes, p)
	}
	return ds
}

// Size returns the number of deployed probes.
func (d *DaemonSet) Size() int { return len(d.probes) }

// Stop halts every probe.
func (d *DaemonSet) Stop() {
	for _, p := range d.probes {
		p.Stop()
	}
}
