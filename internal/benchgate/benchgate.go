// Package benchgate parses benchstat comparison output and decides
// whether a change regressed the gated time/op metrics beyond a
// threshold. It understands both the current benchstat table layout
// ("sec/op" column headers, "~" for insignificant rows) and the legacy
// one ("old time/op  new time/op  delta").
package benchgate

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
)

// Row is one significant time/op delta extracted from the comparison.
type Row struct {
	Name         string
	DeltaPercent float64
	Regression   bool // true when DeltaPercent exceeds the threshold
}

// Report is the gate's verdict over one benchstat output.
type Report struct {
	Rows []Row
}

// Failed reports whether any gated benchmark regressed.
func (r Report) Failed() bool { return len(r.Regressions()) > 0 }

// Regressions returns the offending rows.
func (r Report) Regressions() []Row {
	var out []Row
	for _, row := range r.Rows {
		if row.Regression {
			out = append(out, row)
		}
	}
	return out
}

// deltaRe matches benchstat's significant-delta annotation: a signed
// percentage followed by the p-value clause, e.g. "+23.45% (p=0.000
// n=10)". Insignificant rows carry "~" instead and never match.
var deltaRe = regexp.MustCompile(`([+-]\d+(?:\.\d+)?)%\s+\(p=`)

// Check parses benchstat output and applies the regression threshold (in
// percent) to every significant time/op delta. Deltas in other units
// (B/op, allocs/op) are ignored: allocation shifts are reported by
// benchstat for humans, but only wall-time regressions gate the build.
func Check(benchstatOutput string, thresholdPercent float64) (Report, error) {
	var rep Report
	inTime := false
	sc := bufio.NewScanner(strings.NewReader(benchstatOutput))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Section headers name the unit. The current format prints "│
		// sec/op │" column headers; the legacy format prints "old
		// time/op" once per section.
		switch {
		case strings.Contains(line, "sec/op") || strings.Contains(line, "time/op"):
			inTime = true
			continue
		case strings.Contains(line, "B/op") || strings.Contains(line, "alloc/op") ||
			strings.Contains(line, "allocs/op"):
			inTime = false
			continue
		}
		if !inTime {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 || fields[0] == "geomean" {
			continue
		}
		m := deltaRe.FindStringSubmatch(line)
		if m == nil {
			continue // insignificant ("~"), a bare header, or unrelated text
		}
		delta, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, Row{
			Name:         fields[0],
			DeltaPercent: delta,
			Regression:   delta > thresholdPercent,
		})
	}
	return rep, sc.Err()
}
