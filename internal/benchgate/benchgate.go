// Package benchgate parses benchstat comparison output and decides
// whether a change regressed the gated metrics beyond their thresholds.
// Time (sec/op) and allocation (B/op, allocs/op) sections gate
// independently: wall-time regressions are the primary signal and get the
// tight threshold, while allocation regressions — noisier, and sometimes
// deliberate trades for speed — gate at a separate, higher threshold. It
// understands both the current benchstat table layout ("sec/op" column
// headers, "~" for insignificant rows) and the legacy one ("old time/op
// new time/op  delta").
package benchgate

import (
	"bufio"
	"errors"
	"regexp"
	"strconv"
	"strings"
)

// ErrNoComparison is returned by Check when the input contains no
// benchmark comparison sections at all. A healthy benchstat run always
// emits at least one unit header (even when every row is insignificant),
// so an empty table means one side of the comparison was empty or
// missing — a vacuous pass the gate must not grant.
var ErrNoComparison = errors.New("no benchmark comparison sections in input (empty or missing base/head bench file?)")

// Unit classifies a benchstat section.
type Unit string

// Units benchstat reports that the gate understands. Sections in any
// other unit (e.g. custom ReportMetric units like binds/s) are ignored
// entirely — their deltas are neither gated nor reported.
const (
	UnitTime   Unit = "sec/op"
	UnitBytes  Unit = "B/op"
	UnitAllocs Unit = "allocs/op"
	UnitOther  Unit = ""
)

// Thresholds carries the per-metric regression limits, in percent. A
// non-positive threshold disables gating for that metric class (its rows
// are still reported).
type Thresholds struct {
	// TimePercent gates sec/op (legacy time/op) deltas.
	TimePercent float64
	// AllocPercent gates B/op and allocs/op (legacy alloc/op, allocs/op)
	// deltas.
	AllocPercent float64
}

// Row is one significant delta extracted from the comparison.
type Row struct {
	Name         string
	Unit         Unit
	DeltaPercent float64
	Regression   bool // true when DeltaPercent exceeds the unit's threshold
}

// Report is the gate's verdict over one benchstat output.
type Report struct {
	Rows []Row
}

// Failed reports whether any gated benchmark regressed.
func (r Report) Failed() bool { return len(r.Regressions()) > 0 }

// Regressions returns the offending rows.
func (r Report) Regressions() []Row {
	var out []Row
	for _, row := range r.Rows {
		if row.Regression {
			out = append(out, row)
		}
	}
	return out
}

// deltaRe matches benchstat's significant-delta annotation: a signed
// percentage followed by the p-value clause, e.g. "+23.45% (p=0.000
// n=10)". Insignificant rows carry "~" instead and never match.
var deltaRe = regexp.MustCompile(`([+-]\d+(?:\.\d+)?)%\s+\(p=`)

// sectionUnit classifies a header line, or returns (UnitOther, false)
// for non-header lines. "allocs/op" must be probed before "alloc/op":
// the former contains the latter. Headers in units the gate does not
// understand (custom ReportMetric sections such as binds/s) classify as
// UnitOther so their rows are not mis-attributed to the previous
// section: the current benchstat format marks every unit header with
// "vs base", the legacy one starts section headers with "name".
func sectionUnit(line string) (Unit, bool) {
	switch {
	case strings.Contains(line, "allocs/op"):
		return UnitAllocs, true
	case strings.Contains(line, "B/op"), strings.Contains(line, "alloc/op"):
		return UnitBytes, true
	case strings.Contains(line, "sec/op"), strings.Contains(line, "time/op"):
		return UnitTime, true
	case strings.Contains(line, "vs base"),
		strings.HasPrefix(strings.TrimSpace(line), "name "):
		return UnitOther, true
	}
	return UnitOther, false
}

// threshold returns the limit for a unit, or ok=false when that unit is
// not gated.
func (t Thresholds) threshold(u Unit) (float64, bool) {
	switch u {
	case UnitTime:
		return t.TimePercent, t.TimePercent > 0
	case UnitBytes, UnitAllocs:
		return t.AllocPercent, t.AllocPercent > 0
	}
	return 0, false
}

// Check parses benchstat output and applies the per-unit thresholds to
// every statistically significant delta. benchstat only annotates a row
// with a percentage when the change is significant at its configured
// alpha, so the gate trusts benchstat's statistics and applies thresholds
// on top.
func Check(benchstatOutput string, thresholds Thresholds) (Report, error) {
	var rep Report
	unit := UnitOther
	sawSection := false
	sc := bufio.NewScanner(strings.NewReader(benchstatOutput))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Section headers name the unit. The current format prints "│
		// sec/op │" column headers; the legacy format prints "old
		// time/op" once per section.
		if u, ok := sectionUnit(line); ok {
			unit = u
			sawSection = true
			continue
		}
		if unit == UnitOther {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 || fields[0] == "geomean" {
			continue
		}
		m := deltaRe.FindStringSubmatch(line)
		if m == nil {
			continue // insignificant ("~"), a bare header, or unrelated text
		}
		delta, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			return Report{}, err
		}
		limit, gated := thresholds.threshold(unit)
		rep.Rows = append(rep.Rows, Row{
			Name:         fields[0],
			Unit:         unit,
			DeltaPercent: delta,
			Regression:   gated && delta > limit,
		})
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if !sawSection {
		return rep, ErrNoComparison
	}
	return rep, nil
}
