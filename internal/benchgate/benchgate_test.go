package benchgate

import (
	"errors"
	"strings"
	"testing"
)

// defaultThresholds mirror the CI configuration: 20% time, 30% alloc.
var defaultThresholds = Thresholds{TimePercent: 20, AllocPercent: 30}

// timeOnly disables the allocation gate, reproducing the historical
// time-only behaviour.
var timeOnly = Thresholds{TimePercent: 20}

// currentFormat is benchstat output as produced by golang.org/x/perf's
// current benchstat: per-unit sections with box-drawing headers, "~" for
// insignificant rows, a geomean footer. The B/op section carries both a
// gateable +42% regression and a tolerable +25% one; the allocs/op
// section a +55% regression; the custom binds/s section must be ignored
// even though its delta is huge.
const currentFormat = `goos: linux
goarch: amd64
pkg: github.com/sgxorch/sgxorch
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
                                       │  base.txt   │              head.txt               │
                                       │   sec/op    │   sec/op     vs base                │
SchedulerPass                            144.2µ ± 1%   205.3µ ± 2%  +42.37% (p=0.000 n=10)
SchedulerPassScaling/bound=1000          101.1µ ± 1%   103.0µ ± 1%        ~ (p=0.123 n=10)
SchedulerPassScaling/bound=10000         110.3µ ± 2%   118.1µ ± 1%   +7.07% (p=0.002 n=10)
InfluxQLListing1                         215.2µ ± 1%   180.0µ ± 1%  -16.36% (p=0.000 n=10)
geomean                                  138.5µ        152.9µ       +10.41%
                                       │   base.txt   │               head.txt               │
                                       │     B/op     │     B/op      vs base                │
SchedulerPass                            2.372Ki ± 0%   2.402Ki ± 0%  +25.00% (p=0.000 n=10)
ThroughputSharded/shards=4               1.000Ki ± 0%   1.424Ki ± 0%  +42.40% (p=0.000 n=10)
geomean                                  2.372Ki        2.402Ki        +1.26%
                                       │  base.txt  │             head.txt             │
                                       │ allocs/op  │  allocs/op   vs base             │
SchedulerPass                             75.00 ± 0%   116.00 ± 0%  +54.67% (p=0.000 n=10)
geomean                                   75.00        116.00       +54.67%
                                       │  base.txt  │             head.txt             │
                                       │  binds/s   │   binds/s    vs base             │
ThroughputSharded/shards=4               1.000k ± 0%   3.000k ± 0%  +200.00% (p=0.000 n=10)
`

// legacyFormat is the pre-v0.4 benchstat table.
const legacyFormat = `name                  old time/op    new time/op    delta
SchedulerPass            144µs ± 1%     205µs ± 2%  +42.37%  (p=0.000 n=10+10)
SchedulerPassScaling     101µs ± 1%     103µs ± 1%     ~     (p=0.123 n=10+10)

name                  old alloc/op   new alloc/op   delta
SchedulerPass           2.37kB ± 0%    3.40kB ± 0%  +43.46%  (p=0.000 n=10+10)

name                  old allocs/op  new allocs/op  delta
SchedulerPass             75.0 ± 0%      80.0 ± 0%   +6.67%  (p=0.000 n=10+10)
`

func TestCheckCurrentFormat(t *testing.T) {
	rep, err := Check(currentFormat, defaultThresholds)
	if err != nil {
		t.Fatal(err)
	}
	// Three significant sec/op rows + two B/op rows + one allocs/op row;
	// the "~" rows and the custom binds/s section must be skipped.
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d (%+v), want 6", len(rep.Rows), rep.Rows)
	}
	if !rep.Failed() {
		t.Fatal("42%% regression not flagged")
	}
	want := map[string]struct {
		unit       Unit
		regression bool
	}{
		"SchedulerPass/" + string(UnitTime):       {UnitTime, true},   // +42.37 > 20
		"SchedulerPassScaling/bound=10000/sec/op": {UnitTime, false},  // +7.07
		"InfluxQLListing1/sec/op":                 {UnitTime, false},  // improvement
		"SchedulerPass/" + string(UnitBytes):      {UnitBytes, false}, // +25 < 30
		"ThroughputSharded/shards=4/B/op":         {UnitBytes, true},  // +42.40 > 30
		"SchedulerPass/" + string(UnitAllocs):     {UnitAllocs, true}, // +54.67 > 30
	}
	for _, r := range rep.Rows {
		key := r.Name + "/" + string(r.Unit)
		w, ok := want[key]
		if !ok {
			t.Fatalf("unexpected row %+v", r)
		}
		if r.Unit != w.unit || r.Regression != w.regression {
			t.Fatalf("row %s = %+v, want unit=%s regression=%v", key, r, w.unit, w.regression)
		}
		delete(want, key)
	}
	if len(want) != 0 {
		t.Fatalf("missing rows: %v", want)
	}
	regs := rep.Regressions()
	if len(regs) != 3 {
		t.Fatalf("regressions = %+v, want 3", regs)
	}
}

// TestCheckAllocGateDisabled reproduces the historical behaviour: with no
// alloc threshold, allocation rows are reported but never fail the gate.
func TestCheckAllocGateDisabled(t *testing.T) {
	rep, err := Check(currentFormat, timeOnly)
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Name != "SchedulerPass" || regs[0].Unit != UnitTime {
		t.Fatalf("regressions with alloc gate off = %+v, want only the time row", regs)
	}
	for _, r := range rep.Rows {
		if r.Unit != UnitTime && r.Regression {
			t.Fatalf("alloc row gated while disabled: %+v", r)
		}
	}
}

func TestCheckThresholdBoundary(t *testing.T) {
	rep, err := Check(currentFormat, Thresholds{TimePercent: 7.07, AllocPercent: 42.40})
	if err != nil {
		t.Fatal(err)
	}
	// Thresholds are strict: exactly-at-threshold deltas pass, in both
	// metric classes.
	for _, r := range rep.Regressions() {
		if r.Name == "SchedulerPassScaling/bound=10000" {
			t.Fatalf("at-threshold time delta flagged: %+v", r)
		}
		if r.Name == "ThroughputSharded/shards=4" && r.Unit == UnitBytes {
			t.Fatalf("at-threshold alloc delta flagged: %+v", r)
		}
	}
	rep, err = Check(currentFormat, Thresholds{TimePercent: 7, AllocPercent: 42})
	if err != nil {
		t.Fatal(err)
	}
	timeRegs, allocRegs := 0, 0
	for _, r := range rep.Regressions() {
		if r.Unit == UnitTime {
			timeRegs++
		} else {
			allocRegs++
		}
	}
	if timeRegs != 2 || allocRegs != 2 {
		t.Fatalf("regressions just under thresholds = %d time + %d alloc, want 2 + 2: %+v",
			timeRegs, allocRegs, rep.Regressions())
	}
}

func TestCheckLegacyFormat(t *testing.T) {
	rep, err := Check(legacyFormat, defaultThresholds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %+v, want time + alloc/op + allocs/op deltas", rep.Rows)
	}
	if rep.Rows[0].Unit != UnitTime || !rep.Rows[0].Regression {
		t.Fatalf("legacy time row = %+v", rep.Rows[0])
	}
	if rep.Rows[1].Unit != UnitBytes || !rep.Rows[1].Regression { // +43.46 > 30
		t.Fatalf("legacy alloc/op row = %+v", rep.Rows[1])
	}
	if rep.Rows[2].Unit != UnitAllocs || rep.Rows[2].Regression { // +6.67 < 30
		t.Fatalf("legacy allocs/op row = %+v", rep.Rows[2])
	}
}

func TestCheckNoSignificantChanges(t *testing.T) {
	const quiet = `       │ base.txt │           head.txt           │
       │  sec/op  │   sec/op    vs base          │
Pass     144.2µ ± 1%   144.9µ ± 2%  ~ (p=0.529 n=10)
geomean  144.2µ        144.9µ       +0.49%
`
	rep, err := Check(quiet, defaultThresholds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 0 || rep.Failed() {
		t.Fatalf("quiet comparison produced %+v", rep)
	}
}

// TestCheckEmptyComparisonFails: benchstat prints an empty table when a
// bench file is empty or missing; the gate must refuse that instead of
// passing vacuously.
func TestCheckEmptyComparisonFails(t *testing.T) {
	for _, input := range []string{
		"",
		"\n\n",
		"goos: linux\ngoarch: amd64\n", // metadata but no comparison sections
	} {
		if _, err := Check(input, defaultThresholds); !errors.Is(err, ErrNoComparison) {
			t.Fatalf("Check(%q) err = %v, want ErrNoComparison", input, err)
		}
	}
	// A table whose only rows are insignificant is still a valid
	// comparison — only a sectionless input is vacuous.
	const quiet = `       │ base.txt │           head.txt           │
       │  sec/op  │   sec/op    vs base          │
Pass     144.2µ ± 1%   144.9µ ± 2%  ~ (p=0.529 n=10)
`
	if _, err := Check(quiet, defaultThresholds); err != nil {
		t.Fatalf("quiet-but-valid comparison rejected: %v", err)
	}
}

// TestValidateBench: one side of the comparison must contain actual
// benchmark result lines before the gate trusts the benchstat output.
func TestValidateBench(t *testing.T) {
	good := "goos: linux\nBenchmarkSchedulerPass \t 100 \t 12345 ns/op\nPASS\n"
	if err := ValidateBench("head", strings.NewReader(good)); err != nil {
		t.Fatalf("valid bench output rejected: %v", err)
	}
	for name, input := range map[string]string{
		"empty":         "",
		"whitespace":    "  \n\t\n",
		"no-benchmarks": "goos: linux\nPASS\nok \tpkg\t0.1s\n",
		"truncated-row": "BenchmarkSchedulerPass\n", // name but no measurements
	} {
		err := ValidateBench("base", strings.NewReader(input))
		if err == nil {
			t.Fatalf("%s: ValidateBench accepted %q", name, input)
		}
		if !strings.Contains(err.Error(), "base") {
			t.Fatalf("%s: error %q does not identify the side", name, err)
		}
	}
}

func TestCheckImprovementNeverFails(t *testing.T) {
	const faster = `       │ base.txt │           head.txt            │
       │  sec/op  │   sec/op    vs base           │
Pass     205.3µ ± 1%   144.2µ ± 1%  -29.76% (p=0.000 n=10)
       │ base.txt │           head.txt            │
       │   B/op   │    B/op     vs base           │
Pass     2.402Ki ± 0%   1.372Ki ± 0%  -42.88% (p=0.000 n=10)
`
	rep, err := Check(faster, defaultThresholds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("improvement flagged as regression: %+v", rep)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %+v", rep.Rows)
	}
}
