package benchgate

import "testing"

// currentFormat is benchstat output as produced by golang.org/x/perf's
// current benchstat: per-unit sections with box-drawing headers, "~" for
// insignificant rows, a geomean footer.
const currentFormat = `goos: linux
goarch: amd64
pkg: github.com/sgxorch/sgxorch
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
                                       │  base.txt   │              head.txt               │
                                       │   sec/op    │   sec/op     vs base                │
SchedulerPass                            144.2µ ± 1%   205.3µ ± 2%  +42.37% (p=0.000 n=10)
SchedulerPassScaling/bound=1000          101.1µ ± 1%   103.0µ ± 1%        ~ (p=0.123 n=10)
SchedulerPassScaling/bound=10000         110.3µ ± 2%   118.1µ ± 1%   +7.07% (p=0.002 n=10)
InfluxQLListing1                         215.2µ ± 1%   180.0µ ± 1%  -16.36% (p=0.000 n=10)
geomean                                  138.5µ        152.9µ       +10.41%
                                       │   base.txt   │               head.txt               │
                                       │     B/op     │     B/op      vs base                │
SchedulerPass                            2.372Ki ± 0%   2.402Ki ± 0%  +25.00% (p=0.000 n=10)
geomean                                  2.372Ki        2.402Ki        +1.26%
`

// legacyFormat is the pre-v0.4 benchstat table.
const legacyFormat = `name                  old time/op    new time/op    delta
SchedulerPass            144µs ± 1%     205µs ± 2%  +42.37%  (p=0.000 n=10+10)
SchedulerPassScaling     101µs ± 1%     103µs ± 1%     ~     (p=0.123 n=10+10)

name                  old alloc/op   new alloc/op   delta
SchedulerPass           2.37kB ± 0%    2.40kB ± 0%  +25.00%  (p=0.000 n=10+10)
`

func TestCheckCurrentFormat(t *testing.T) {
	rep, err := Check(currentFormat, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Three significant sec/op rows; the B/op +25% must not be gated and
	// the "~" row must be skipped.
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d (%+v), want 3", len(rep.Rows), rep.Rows)
	}
	if !rep.Failed() {
		t.Fatal("42%% regression not flagged")
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Name != "SchedulerPass" || regs[0].DeltaPercent != 42.37 {
		t.Fatalf("regressions = %+v, want only SchedulerPass +42.37%%", regs)
	}
	// Improvements and small significant deltas pass.
	for _, r := range rep.Rows {
		if r.Name != "SchedulerPass" && r.Regression {
			t.Fatalf("%s flagged at threshold 20: %+v", r.Name, r)
		}
	}
}

func TestCheckThresholdBoundary(t *testing.T) {
	rep, err := Check(currentFormat, 7.07)
	if err != nil {
		t.Fatal(err)
	}
	// The threshold is strict: exactly-at-threshold deltas pass.
	for _, r := range rep.Regressions() {
		if r.Name == "SchedulerPassScaling/bound=10000" {
			t.Fatalf("at-threshold delta flagged: %+v", r)
		}
	}
	rep, err = Check(currentFormat, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions()) != 2 {
		t.Fatalf("regressions at 7%% = %+v, want 2", rep.Regressions())
	}
}

func TestCheckLegacyFormat(t *testing.T) {
	rep, err := Check(legacyFormat, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Name != "SchedulerPass" {
		t.Fatalf("rows = %+v, want the one significant time/op delta", rep.Rows)
	}
	if !rep.Failed() {
		t.Fatal("legacy-format regression not flagged")
	}
}

func TestCheckNoSignificantChanges(t *testing.T) {
	const quiet = `       │ base.txt │           head.txt           │
       │  sec/op  │   sec/op    vs base          │
Pass     144.2µ ± 1%   144.9µ ± 2%  ~ (p=0.529 n=10)
geomean  144.2µ        144.9µ       +0.49%
`
	rep, err := Check(quiet, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 0 || rep.Failed() {
		t.Fatalf("quiet comparison produced %+v", rep)
	}
}

func TestCheckImprovementNeverFails(t *testing.T) {
	const faster = `       │ base.txt │           head.txt            │
       │  sec/op  │   sec/op    vs base           │
Pass     205.3µ ± 1%   144.2µ ± 1%  -29.76% (p=0.000 n=10)
`
	rep, err := Check(faster, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("improvement flagged as regression: %+v", rep)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].DeltaPercent != -29.76 {
		t.Fatalf("rows = %+v", rep.Rows)
	}
}
