package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunBenchstatPropagatesFailure is the regression test for the gate
// trusting a dead benchstat: a subprocess that prints a perfectly
// plausible comparison table but exits non-zero must surface an error —
// under the old shell-pipeline wiring its exit status was discarded and
// the partial table gated as a pass.
func TestRunBenchstatPropagatesFailure(t *testing.T) {
	script := filepath.Join(t.TempDir(), "fakebenchstat.sh")
	table := `goos: linux
            │ base │            head             │
            │ sec/op │   sec/op     vs base      │
SchedulerPass-8   1.000m   1.100m  +10.00% (p=0.000 n=10)
`
	if err := os.WriteFile(script, []byte("#!/bin/sh\ncat <<'EOF'\n"+table+"EOF\necho 'benchstat: corrupt bench file' >&2\nexit 3\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	out, err := RunBenchstat([]string{script}, "base.txt", "head.txt")
	if err == nil {
		t.Fatalf("RunBenchstat returned no error for exit 3; stdout was %q", out)
	}
	if !strings.Contains(err.Error(), "exit status 3") {
		t.Fatalf("error does not carry the exit status: %v", err)
	}
	if !strings.Contains(err.Error(), "corrupt bench file") {
		t.Fatalf("error does not carry benchstat's stderr: %v", err)
	}
}

// TestRunBenchstatSuccess: a healthy run hands back stdout verbatim with
// the base/head paths appended to the command.
func TestRunBenchstatSuccess(t *testing.T) {
	script := filepath.Join(t.TempDir(), "fakebenchstat.sh")
	if err := os.WriteFile(script, []byte("#!/bin/sh\necho \"args: $@\"\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	out, err := RunBenchstat([]string{script, "-alpha", "0.05"}, "b.txt", "h.txt")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "args: -alpha 0.05 b.txt h.txt" {
		t.Fatalf("stdout = %q, want the flags then base then head", out)
	}
}

// TestRunBenchstatRejectsBadCommands: empty commands and unresolvable
// binaries are errors, not empty output.
func TestRunBenchstatRejectsBadCommands(t *testing.T) {
	if _, err := RunBenchstat(nil, "b", "h"); err == nil {
		t.Fatal("nil command did not error")
	}
	if _, err := RunBenchstat([]string{""}, "b", "h"); err == nil {
		t.Fatal("empty command did not error")
	}
	if _, err := RunBenchstat([]string{"/nonexistent/benchstat-binary"}, "b", "h"); err == nil {
		t.Fatal("missing binary did not error")
	}
}
