package benchgate

import (
	"bytes"
	"fmt"
	"os/exec"
	"strings"
)

// RunBenchstat runs a benchstat command over the base and head bench
// files and returns its stdout for Check. The command's failure is the
// gate's failure: a missing binary, a start error or a non-zero exit
// all surface as errors (with benchstat's stderr attached), never as an
// empty-but-trusted comparison. This matters because the shell-pipeline
// form ("benchstat base head | benchgate") throws benchstat's exit
// status away — a benchstat that died after printing a partial table
// would gate whatever it managed to emit.
func RunBenchstat(command []string, base, head string) (string, error) {
	if len(command) == 0 || command[0] == "" {
		return "", fmt.Errorf("benchgate: empty benchstat command")
	}
	args := append(append([]string(nil), command[1:]...), base, head)
	cmd := exec.Command(command[0], args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg != "" {
			return "", fmt.Errorf("benchgate: running %q: %w: %s", strings.Join(command, " "), err, msg)
		}
		return "", fmt.Errorf("benchgate: running %q: %w", strings.Join(command, " "), err)
	}
	return stdout.String(), nil
}
