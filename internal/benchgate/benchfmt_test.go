package benchgate

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

const rawBenchOutput = `goos: linux
goarch: amd64
pkg: github.com/sgxorch/sgxorch
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSchedulerPass-8         	    7214	    163412 ns/op	   35712 B/op	      75 allocs/op
BenchmarkSchedulerPass-8         	    7000	    165000 ns/op	   35800 B/op	      77 allocs/op
BenchmarkSchedulerThroughputSharded/shards=2-8 	      20	   9856402 ns/op	  103892 binds/s
BenchmarkEventFanout/watchers=32/async-8       	    2000	     10171 ns/op	  294955 events/s
PASS
ok  	github.com/sgxorch/sgxorch	2.579s
`

func TestParseBenchAggregates(t *testing.T) {
	rep, err := ParseBench(strings.NewReader(rawBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "github.com/sgxorch/sgxorch" {
		t.Fatalf("header fields = %q %q %q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	pass := rep.Benchmarks[0]
	if pass.Name != "BenchmarkSchedulerPass" || pass.Procs != 8 {
		t.Fatalf("name/procs = %q/%d (procs suffix not split off?)", pass.Name, pass.Procs)
	}
	if pass.Runs != 2 || pass.Iterations != 14214 {
		t.Fatalf("runs/iterations = %d/%d, want 2/14214", pass.Runs, pass.Iterations)
	}
	if got := pass.Metrics["ns/op"]; math.Abs(got-164206) > 0.5 {
		t.Fatalf("mean ns/op = %f, want 164206", got)
	}
	if got := pass.Metrics["allocs/op"]; got != 76 {
		t.Fatalf("mean allocs/op = %f, want 76", got)
	}
	sharded := rep.Benchmarks[1]
	if sharded.Name != "BenchmarkSchedulerThroughputSharded/shards=2" {
		t.Fatalf("subbenchmark name = %q", sharded.Name)
	}
	if got := sharded.Metrics["binds/s"]; got != 103892 {
		t.Fatalf("binds/s = %f", got)
	}
	fanout := rep.Benchmarks[2]
	if got := fanout.Metrics["events/s"]; got != 294955 {
		t.Fatalf("events/s = %f", got)
	}
}

func TestBenchReportJSONRoundTrip(t *testing.T) {
	rep, err := ParseBench(strings.NewReader(rawBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != BenchReportSchema {
		t.Fatalf("schema = %q", back.Schema)
	}
	if len(back.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d vs %d", len(back.Benchmarks), len(rep.Benchmarks))
	}
	if back.Benchmarks[1].Metrics["binds/s"] != 103892 {
		t.Fatalf("round trip mangled metrics: %+v", back.Benchmarks[1])
	}
}

// A -cpu sweep emits the same benchmark name at different GOMAXPROCS
// (unsuffixed = 1); the rows must stay separate entries, not average a
// single-core run into a multi-core one.
func TestParseBenchKeepsCPUVariantsDistinct(t *testing.T) {
	const sweep = `BenchmarkSchedulerThroughputSharded/shards=4   	     100	  12000000 ns/op	   85000 binds/s
BenchmarkSchedulerThroughputSharded/shards=4   	     100	  14000000 ns/op	   75000 binds/s
BenchmarkSchedulerThroughputSharded/shards=4-4 	     200	   4000000 ns/op	  250000 binds/s
`
	rep, err := ParseBench(strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d entries, want 2 (one per GOMAXPROCS)", len(rep.Benchmarks))
	}
	one, four := rep.Benchmarks[0], rep.Benchmarks[1]
	if one.Procs != 1 || one.Runs != 2 || one.Metrics["binds/s"] != 80000 {
		t.Fatalf("procs=1 entry = %+v", one)
	}
	if four.Procs != 4 || four.Runs != 1 || four.Metrics["binds/s"] != 250000 {
		t.Fatalf("procs=4 entry = %+v", four)
	}
	if one.Name != four.Name {
		t.Fatalf("names diverged: %q vs %q", one.Name, four.Name)
	}
}

func TestParseBenchSkipsGarbage(t *testing.T) {
	rep, err := ParseBench(strings.NewReader("random log line\nBenchmarkBroken 12\n--- FAIL: x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage", len(rep.Benchmarks))
	}
}
