package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file parses raw `go test -bench` output (as opposed to benchstat
// comparisons, which benchgate.go handles) into a machine-readable
// report — the BENCH_<n>.json artifact CI uploads so the repo
// accumulates a perf trajectory instead of throwaway job logs.

// BenchResult is one benchmark's aggregated measurements. Metrics maps
// unit → mean value across the runs: the standard ns/op, B/op and
// allocs/op plus any custom ReportMetric units (binds/s, events/s, ...).
type BenchResult struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"` // GOMAXPROCS (the -N name suffix; 1 when absent)
	Runs       int                `json:"runs"`
	Iterations int64              `json:"iterations"` // summed over runs
	Metrics    map[string]float64 `json:"metrics"`
}

// BenchReport is the JSON artifact schema.
type BenchReport struct {
	Schema string `json:"schema"`
	Source string `json:"source,omitempty"`
	// Commit is the VCS revision the benchmarks ran at, so nightly
	// artifacts are attributable to a commit without consulting job
	// metadata.
	Commit     string        `json:"commit,omitempty"`
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// BenchReportSchema identifies the artifact format.
const BenchReportSchema = "sgxorch-bench/v1"

// ParseBench reads raw `go test -bench` output and aggregates repeated
// runs (-count > 1) of the same benchmark by arithmetic mean per
// metric. Non-benchmark lines (headers, PASS/ok, test logs) are
// skipped; a benchmark line is "Benchmark<Name>[-procs] <iterations>
// {<value> <unit>}...".
func ParseBench(r io.Reader) (BenchReport, error) {
	rep := BenchReport{Schema: BenchReportSchema}
	type acc struct {
		name       string
		procs      int
		runs       int
		iterations int64
		sums       map[string]float64
		counts     map[string]int
	}
	accs := make(map[string]*acc)
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		// Split off the -GOMAXPROCS suffix into its own field: runs on
		// machines with the same procs aggregate under one name, while
		// -cpu sweeps (the sharded bind benchmark runs under -cpu 1,4)
		// stay distinct instead of averaging a 1-core row into a 4-core
		// one. go test omits the suffix when GOMAXPROCS is 1.
		name, procs := fields[0], 1
		if i := strings.LastIndex(name, "-"); i > 0 {
			if p, err := strconv.Atoi(name[i+1:]); err == nil && p > 0 {
				name, procs = name[:i], p
			}
		}
		key := fmt.Sprintf("%s\x00%d", name, procs)
		a, ok := accs[key]
		if !ok {
			a = &acc{name: name, procs: procs, sums: make(map[string]float64), counts: make(map[string]int)}
			accs[key] = a
			order = append(order, key)
		}
		a.runs++
		a.iterations += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return rep, fmt.Errorf("benchgate: bad metric value %q in %q", fields[i], line)
			}
			unit := fields[i+1]
			a.sums[unit] += v
			a.counts[unit]++
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	for _, key := range order {
		a := accs[key]
		res := BenchResult{
			Name:       a.name,
			Procs:      a.procs,
			Runs:       a.runs,
			Iterations: a.iterations,
			Metrics:    make(map[string]float64, len(a.sums)),
		}
		units := make([]string, 0, len(a.sums))
		for unit := range a.sums {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			res.Metrics[unit] = a.sums[unit] / float64(a.counts[unit])
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	return rep, nil
}

// ValidateBench checks one side of a comparison: raw `go test -bench`
// output must contain at least one benchmark result line, or the
// comparison downstream is vacuous (benchstat prints an empty table for
// empty inputs, which would gate as a pass). name labels the side in
// the error ("base", "head", or a file path).
func ValidateBench(name string, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	empty := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			empty = false
		}
		if strings.HasPrefix(line, "Benchmark") && len(strings.Fields(line)) >= 4 {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if empty {
		return fmt.Errorf("%s: bench output is empty — did the benchmark run produce anything?", name)
	}
	return fmt.Errorf("%s: bench output contains no benchmark result lines", name)
}

// WriteJSON renders the report as indented JSON.
func (rep BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
