package tsdb

import (
	"fmt"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/clock"
)

func TestWriteAndSeries(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk)
	db.WriteNow("sgx/epc", Tags{"pod_name": "a", "nodename": "n1"}, 100)
	clk.Advance(time.Second)
	db.WriteNow("sgx/epc", Tags{"pod_name": "a", "nodename": "n1"}, 200)
	db.WriteNow("sgx/epc", Tags{"pod_name": "b", "nodename": "n1"}, 300)
	db.WriteNow("memory/usage", Tags{"pod_name": "a", "nodename": "n2"}, 400)

	series := db.Series("sgx/epc")
	if len(series) != 2 {
		t.Fatalf("series count = %d, want 2", len(series))
	}
	// Deterministic order: tags sorted canonically (nodename before
	// pod_name, then values).
	if series[0].Tags["pod_name"] != "a" || series[1].Tags["pod_name"] != "b" {
		t.Fatalf("series order: %v / %v", series[0].Tags, series[1].Tags)
	}
	if len(series[0].Points) != 2 || series[0].Points[1].Value != 200 {
		t.Fatalf("points = %v", series[0].Points)
	}
	if got := db.Series("nothing"); len(got) != 0 {
		t.Fatalf("unknown measurement series = %v", got)
	}
}

func TestSeriesReturnsCopies(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk)
	db.WriteNow("m", Tags{"k": "v"}, 1)
	s := db.Series("m")
	s[0].Points[0].Value = 999
	s[0].Tags["k"] = "mutated"
	s2 := db.Series("m")
	if s2[0].Points[0].Value != 1 || s2[0].Tags["k"] != "v" {
		t.Fatal("Series returned aliased data")
	}
}

func TestRetentionPruning(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk, WithRetention(time.Minute))
	db.WriteNow("m", Tags{"k": "v"}, 1)
	clk.Advance(2 * time.Minute)
	// Writing triggers pruning of the expired point.
	db.WriteNow("m", Tags{"k": "v"}, 2)
	s := db.Series("m")
	if len(s[0].Points) != 1 || s[0].Points[0].Value != 2 {
		t.Fatalf("points after retention = %v", s[0].Points)
	}
}

func TestMeasurementsAndCount(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk)
	db.WriteNow("b", Tags{"x": "1"}, 1)
	db.WriteNow("a", Tags{"x": "1"}, 1)
	db.WriteNow("a", Tags{"x": "2"}, 1)
	ms := db.Measurements()
	if len(ms) != 2 || ms[0] != "a" || ms[1] != "b" {
		t.Fatalf("Measurements = %v", ms)
	}
	if got := db.SeriesCount(); got != 3 {
		t.Fatalf("SeriesCount = %d, want 3", got)
	}
}

func TestTagsCanonicalOrderIndependent(t *testing.T) {
	a := Tags{"pod_name": "p", "nodename": "n"}
	b := Tags{"nodename": "n", "pod_name": "p"}
	if a.canonical() != b.canonical() {
		t.Fatal("canonical depends on map iteration order")
	}
}

func TestOutOfOrderWritesKeptTimeOrdered(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk)
	base := clk.Now()
	for _, offset := range []time.Duration{5 * time.Second, time.Second, 3 * time.Second, 3 * time.Second, 2 * time.Second} {
		db.Write("m", Tags{"k": "v"}, offset.Seconds(), base.Add(offset))
	}
	s := db.Series("m")
	if len(s) != 1 {
		t.Fatalf("series = %d, want 1", len(s))
	}
	prev := time.Time{}
	for _, p := range s[0].Points {
		if p.Time.Before(prev) {
			t.Fatalf("points not time-ordered: %v", s[0].Points)
		}
		prev = p.Time
	}
	if len(s[0].Points) != 5 {
		t.Fatalf("points = %d, want 5", len(s[0].Points))
	}
}

func TestScanWindowSlicing(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk)
	base := clk.Now()
	for i := 0; i < 10; i++ {
		db.Write("m", Tags{"k": "v"}, float64(i), base.Add(time.Duration(i)*time.Second))
	}
	clk.Advance(10 * time.Second)

	var got []float64
	db.Scan("m", base.Add(3*time.Second), base.Add(6*time.Second), func(tags Tags, pts []Point) bool {
		for _, p := range pts {
			got = append(got, p.Value)
		}
		return true
	})
	want := []float64{3, 4, 5, 6} // inclusive bounds
	if len(got) != len(want) {
		t.Fatalf("window values = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window values = %v, want %v", got, want)
		}
	}

	// Open bounds: zero from/to cover everything still retained.
	count := 0
	db.Scan("m", time.Time{}, time.Time{}, func(tags Tags, pts []Point) bool {
		count = len(pts)
		return true
	})
	if count != 10 {
		t.Fatalf("open scan saw %d points, want 10", count)
	}

	// Unknown measurement: no visits.
	db.Scan("nothing", time.Time{}, time.Time{}, func(Tags, []Point) bool {
		t.Fatal("visited unknown measurement")
		return false
	})
}

func TestScanStopsWhenCallbackReturnsFalse(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk)
	db.WriteNow("m", Tags{"k": "a"}, 1)
	db.WriteNow("m", Tags{"k": "b"}, 2)
	visits := 0
	db.Scan("m", time.Time{}, time.Time{}, func(Tags, []Point) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("visits = %d, want 1", visits)
	}
}

func TestReadsNeverObserveExpiredPoints(t *testing.T) {
	clk := clock.NewSim()
	// GC disabled: only the read-side clamp can hide the stale point.
	db := New(clk, WithRetention(time.Minute), WithGCInterval(0))
	db.WriteNow("m", Tags{"k": "v"}, 1)
	clk.Advance(2 * time.Minute)

	if s := db.Series("m"); len(s) != 0 {
		t.Fatalf("Series returned expired points: %+v", s)
	}
	db.Scan("m", time.Time{}, time.Time{}, func(tags Tags, pts []Point) bool {
		t.Fatalf("Scan visited expired points: %v", pts)
		return false
	})
	// The idle series itself is still resident until a sweep runs.
	if got := db.SeriesCount(); got != 1 {
		t.Fatalf("SeriesCount = %d, want 1 before sweep", got)
	}
	if deleted := db.SweepNow(); deleted != 1 {
		t.Fatalf("SweepNow = %d, want 1", deleted)
	}
	if got := db.SeriesCount(); got != 0 {
		t.Fatalf("SeriesCount = %d, want 0 after sweep", got)
	}
}

func TestBackgroundSweepCollectsIdleSeries(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk, WithRetention(time.Minute))
	defer db.Close()
	db.WriteNow("m", Tags{"pod": "a"}, 1)
	db.WriteNow("m", Tags{"pod": "b"}, 2)
	db.WriteNow("other", Tags{"pod": "a"}, 3)
	if got := db.SeriesCount(); got != 3 {
		t.Fatalf("SeriesCount = %d, want 3", got)
	}
	// No further writes: the clock-driven sweep must reclaim everything
	// once retention has elapsed.
	clk.Advance(3 * time.Minute)
	if got := db.SeriesCount(); got != 0 {
		t.Fatalf("SeriesCount = %d, want 0 after retention + sweep", got)
	}
	if ms := db.Measurements(); len(ms) != 0 {
		t.Fatalf("Measurements = %v, want none", ms)
	}
}

func TestSweepKeepsActiveSeries(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk, WithRetention(time.Minute), WithGCInterval(0))
	db.WriteNow("m", Tags{"pod": "idle"}, 1)
	clk.Advance(50 * time.Second)
	db.WriteNow("m", Tags{"pod": "active"}, 2)
	clk.Advance(30 * time.Second) // idle now 80s old, active 30s old
	if deleted := db.SweepNow(); deleted != 1 {
		t.Fatalf("SweepNow = %d, want 1", deleted)
	}
	s := db.Series("m")
	if len(s) != 1 || s[0].Tags["pod"] != "active" {
		t.Fatalf("surviving series = %+v, want pod=active", s)
	}
}

func TestExplicitTimestampWrite(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk)
	past := clk.Now().Add(-30 * time.Second)
	db.Write("m", Tags{"k": "v"}, 7, past)
	s := db.Series("m")
	if !s[0].Points[0].Time.Equal(past) {
		t.Fatalf("point time = %v, want %v", s[0].Points[0].Time, past)
	}
}

// TestOnWriteObservers: every write reaches registered observers in
// registration order, after the point is stored; unsubscribing detaches.
func TestOnWriteObservers(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk, WithGCInterval(0))

	var order []string
	unsubA := db.OnWrite(func(m string, tags Tags, v float64, at time.Time) {
		// The point must already be visible to reads.
		if got := db.Series(m); len(got) == 0 {
			t.Fatal("observer ran before the point was stored")
		}
		order = append(order, fmt.Sprintf("a:%s=%g@%s", m, v, tags["pod"]))
	})
	unsubB := db.OnWrite(func(m string, _ Tags, v float64, _ time.Time) {
		order = append(order, fmt.Sprintf("b:%s=%g", m, v))
	})

	db.WriteNow("m", Tags{"pod": "p1"}, 3)
	want := []string{"a:m=3@p1", "b:m=3"}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("order = %v, want %v", order, want)
	}

	unsubA()
	db.WriteNow("m", Tags{"pod": "p1"}, 4)
	if len(order) != 3 || order[2] != "b:m=4" {
		t.Fatalf("after unsubscribe A: %v", order)
	}
	unsubB()
	unsubB() // double-unsubscribe is a no-op
	db.WriteNow("m", Tags{"pod": "p1"}, 5)
	if len(order) != 3 {
		t.Fatalf("detached observers still notified: %v", order)
	}
}
