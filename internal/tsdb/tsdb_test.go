package tsdb

import (
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/clock"
)

func TestWriteAndSeries(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk)
	db.WriteNow("sgx/epc", Tags{"pod_name": "a", "nodename": "n1"}, 100)
	clk.Advance(time.Second)
	db.WriteNow("sgx/epc", Tags{"pod_name": "a", "nodename": "n1"}, 200)
	db.WriteNow("sgx/epc", Tags{"pod_name": "b", "nodename": "n1"}, 300)
	db.WriteNow("memory/usage", Tags{"pod_name": "a", "nodename": "n2"}, 400)

	series := db.Series("sgx/epc")
	if len(series) != 2 {
		t.Fatalf("series count = %d, want 2", len(series))
	}
	// Deterministic order: tags sorted canonically (nodename before
	// pod_name, then values).
	if series[0].Tags["pod_name"] != "a" || series[1].Tags["pod_name"] != "b" {
		t.Fatalf("series order: %v / %v", series[0].Tags, series[1].Tags)
	}
	if len(series[0].Points) != 2 || series[0].Points[1].Value != 200 {
		t.Fatalf("points = %v", series[0].Points)
	}
	if got := db.Series("nothing"); len(got) != 0 {
		t.Fatalf("unknown measurement series = %v", got)
	}
}

func TestSeriesReturnsCopies(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk)
	db.WriteNow("m", Tags{"k": "v"}, 1)
	s := db.Series("m")
	s[0].Points[0].Value = 999
	s[0].Tags["k"] = "mutated"
	s2 := db.Series("m")
	if s2[0].Points[0].Value != 1 || s2[0].Tags["k"] != "v" {
		t.Fatal("Series returned aliased data")
	}
}

func TestRetentionPruning(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk, WithRetention(time.Minute))
	db.WriteNow("m", Tags{"k": "v"}, 1)
	clk.Advance(2 * time.Minute)
	// Writing triggers pruning of the expired point.
	db.WriteNow("m", Tags{"k": "v"}, 2)
	s := db.Series("m")
	if len(s[0].Points) != 1 || s[0].Points[0].Value != 2 {
		t.Fatalf("points after retention = %v", s[0].Points)
	}
}

func TestMeasurementsAndCount(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk)
	db.WriteNow("b", Tags{"x": "1"}, 1)
	db.WriteNow("a", Tags{"x": "1"}, 1)
	db.WriteNow("a", Tags{"x": "2"}, 1)
	ms := db.Measurements()
	if len(ms) != 2 || ms[0] != "a" || ms[1] != "b" {
		t.Fatalf("Measurements = %v", ms)
	}
	if got := db.SeriesCount(); got != 3 {
		t.Fatalf("SeriesCount = %d, want 3", got)
	}
}

func TestTagsCanonicalOrderIndependent(t *testing.T) {
	a := Tags{"pod_name": "p", "nodename": "n"}
	b := Tags{"nodename": "n", "pod_name": "p"}
	if a.canonical() != b.canonical() {
		t.Fatal("canonical depends on map iteration order")
	}
}

func TestExplicitTimestampWrite(t *testing.T) {
	clk := clock.NewSim()
	db := New(clk)
	past := clk.Now().Add(-30 * time.Second)
	db.Write("m", Tags{"k": "v"}, 7, past)
	s := db.Series("m")
	if !s[0].Points[0].Time.Equal(past) {
		t.Fatalf("point time = %v, want %v", s[0].Points[0].Time, past)
	}
}
