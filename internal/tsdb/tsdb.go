// Package tsdb is the in-memory stand-in for the InfluxDB instance of the
// paper's monitoring pipeline (§V-C): Heapster pushes standard-memory
// samples and the SGX probes push EPC samples into it, and the scheduler
// runs sliding-window queries (Listing 1) against it through the
// internal/influxql engine.
//
// Data model: a measurement (e.g. "sgx/epc") contains tagged series
// (pod_name, nodename); each series is an append-mostly list of
// timestamped float64 samples of a single field called "value", matching
// how Heapster writes metrics.
//
// Layout: series are indexed per measurement and every series keeps its
// points time-ordered, so sliding-window reads binary-search the window
// bounds and visit points in place (Scan) instead of copying the whole
// keyspace. Retention is enforced three ways: points are pruned on write,
// reads clamp their window to the retention cutoff so expired points are
// never observed, and a clock-driven garbage-collection sweep deletes
// whole series whose newest point has aged out — so series of terminated
// pods do not accumulate over a long replay.
package tsdb

import (
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/sgxorch/sgxorch/internal/clock"
)

// Point is one timestamped sample.
type Point struct {
	Time  time.Time
	Value float64
}

// Tags identifies a series within a measurement.
type Tags map[string]string

// Clone copies the tag set.
func (t Tags) Clone() Tags {
	out := make(Tags, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// canonical renders tags deterministically for use as a map key.
func (t Tags) canonical() string {
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(t[k])
		b.WriteByte(',')
	}
	return b.String()
}

// SeriesData is a copy of one series returned by queries.
type SeriesData struct {
	Measurement string
	Tags        Tags
	Points      []Point
}

// DefaultRetention bounds how much history is kept. The scheduler only
// queries short sliding windows (25 s in Listing 1), so minutes of history
// suffice.
const DefaultRetention = 10 * time.Minute

// DefaultGCInterval is how often the background sweep looks for series
// whose newest point has aged out of retention.
const DefaultGCInterval = time.Minute

// WriteObserver is a write-path subscription callback (see OnWrite). It
// runs synchronously on the writing goroutine after the database lock is
// released; tags are the writer's map and must not be retained or
// mutated.
type WriteObserver func(measurement string, tags Tags, value float64, t time.Time)

// writeObserver is one registered observer; the slice is ordered by id
// (ids are monotonic and appended), keeping delivery deterministic.
type writeObserver struct {
	id int
	fn WriteObserver
}

// DB is the in-memory time-series database.
type DB struct {
	clk        clock.Clock
	retention  time.Duration
	gcInterval time.Duration

	mu           sync.Mutex
	measurements map[string]*measurementIndex
	nSeries      int
	stopGC       func()
	observers    []writeObserver
	nextObsID    int
}

// measurement groups the series of one measurement name. entries is kept
// sorted by canonical tag key so reads are deterministic without sorting
// per query; series creation (rare relative to writes) pays the insertion.
type measurementIndex struct {
	byKey   map[string]*seriesEntry
	entries []*seriesEntry
}

type seriesEntry struct {
	key    string // canonical tags
	tags   Tags
	points []Point // time-ordered
}

// Option configures the DB.
type Option func(*DB)

// WithRetention overrides the retention window.
func WithRetention(d time.Duration) Option {
	return func(db *DB) { db.retention = d }
}

// WithGCInterval overrides the series garbage-collection period; a
// non-positive value disables the background sweep (SweepNow still works).
func WithGCInterval(d time.Duration) Option {
	return func(db *DB) { db.gcInterval = d }
}

// New creates an empty database and starts its retention sweep on the
// given clock. Call Close to stop the sweep.
func New(clk clock.Clock, opts ...Option) *DB {
	db := &DB{
		clk:          clk,
		retention:    DefaultRetention,
		gcInterval:   DefaultGCInterval,
		measurements: make(map[string]*measurementIndex),
	}
	for _, o := range opts {
		o(db)
	}
	if db.gcInterval > 0 {
		db.stopGC = clock.Periodic(clk, db.gcInterval, func() { db.SweepNow() })
	}
	return db
}

// Close stops the background retention sweep. The database remains
// readable and writable.
func (db *DB) Close() {
	db.mu.Lock()
	stop := db.stopGC
	db.stopGC = nil
	db.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// Now exposes the database clock; the query engine evaluates now()
// against it.
func (db *DB) Now() time.Time { return db.clk.Now() }

// Retention returns the retention window. Consumers computing their own
// sliding windows (e.g. the streaming window-max aggregator) must keep
// them within it: reads clamp to the retention cutoff, so a longer
// window would observe points the database no longer serves.
func (db *DB) Retention() time.Duration { return db.retention }

// OnWrite registers a write-path observer: every Write (and WriteNow)
// invokes fn after the point is stored, on the writing goroutine, with
// the database lock released — the hook streaming aggregators build on to
// stay continuously current without polling. It returns an unsubscribe
// function. fn must not call back into the database.
func (db *DB) OnWrite(fn WriteObserver) (unsubscribe func()) {
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.nextObsID
	db.nextObsID++
	db.observers = append(db.observers, writeObserver{id: id, fn: fn})
	return func() {
		db.mu.Lock()
		defer db.mu.Unlock()
		for i, o := range db.observers {
			if o.id == id {
				db.observers = append(db.observers[:i], db.observers[i+1:]...)
				return
			}
		}
	}
}

// Write appends a sample to the series identified by measurement and
// tags, stamped at time t. Out-of-order writes are tolerated: the point
// is inserted at its time-ordered position.
func (db *DB) Write(measurement string, tags Tags, value float64, t time.Time) {
	key := tags.canonical()
	db.mu.Lock()
	m, ok := db.measurements[measurement]
	if !ok {
		m = &measurementIndex{byKey: make(map[string]*seriesEntry)}
		db.measurements[measurement] = m
	}
	e, ok := m.byKey[key]
	if !ok {
		e = &seriesEntry{key: key, tags: tags.Clone()}
		m.byKey[key] = e
		i := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].key >= key })
		m.entries = append(m.entries, nil)
		copy(m.entries[i+1:], m.entries[i:])
		m.entries[i] = e
		db.nSeries++
	}
	if n := len(e.points); n == 0 || !t.Before(e.points[n-1].Time) {
		e.points = append(e.points, Point{Time: t, Value: value})
	} else {
		i := sort.Search(n, func(i int) bool { return e.points[i].Time.After(t) })
		e.points = append(e.points, Point{})
		copy(e.points[i+1:], e.points[i:])
		e.points[i] = Point{Time: t, Value: value}
	}
	db.pruneLocked(e)
	var fns []WriteObserver
	if len(db.observers) > 0 {
		fns = make([]WriteObserver, len(db.observers))
		for i, o := range db.observers {
			fns[i] = o.fn
		}
	}
	db.mu.Unlock()
	for _, fn := range fns {
		fn(measurement, tags, value, t)
	}
}

// WriteNow appends a sample stamped with the database clock.
func (db *DB) WriteNow(measurement string, tags Tags, value float64) {
	db.Write(measurement, tags, value, db.clk.Now())
}

// pruneLocked discards points older than the retention window, relative
// to the clock. Points are time-ordered, so the expired run is a prefix.
// Caller must hold db.mu.
func (db *DB) pruneLocked(e *seriesEntry) {
	cutoff := db.clk.Now().Add(-db.retention)
	i := sort.Search(len(e.points), func(i int) bool { return !e.points[i].Time.Before(cutoff) })
	if i > 0 {
		e.points = append(e.points[:0], e.points[i:]...)
	}
}

// window returns the in-place sub-slice of e's points in [from, to]. A
// zero from/to leaves that side unbounded; the retention cutoff always
// applies as a lower bound so reads never observe expired points.
func (e *seriesEntry) window(cutoff, from, to time.Time) []Point {
	if from.Before(cutoff) {
		from = cutoff
	}
	pts := e.points
	lo := sort.Search(len(pts), func(i int) bool { return !pts[i].Time.Before(from) })
	hi := len(pts)
	if !to.IsZero() {
		hi = sort.Search(len(pts), func(i int) bool { return pts[i].Time.After(to) })
	}
	if lo >= hi {
		return nil
	}
	return pts[lo:hi]
}

// Scan visits, in place and in canonical series order, every series of
// the measurement holding at least one point in [from, to]. A zero from
// or to leaves that bound open; expired points are never visited. fn
// receives the series tags and the time-ordered window slice; returning
// false stops the scan. The callback runs under the database lock: it
// must not retain either argument past its return nor call back into the
// DB.
func (db *DB) Scan(measurement string, from, to time.Time, fn func(tags Tags, points []Point) bool) {
	cutoff := db.clk.Now().Add(-db.retention)
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.measurements[measurement]
	if !ok {
		return
	}
	for _, e := range m.entries {
		if pts := e.window(cutoff, from, to); len(pts) > 0 {
			if !fn(e.tags, pts) {
				return
			}
		}
	}
}

// Series returns copies of every live series in the measurement, ordered
// deterministically by canonical tags. Expired points are excluded even
// if no write has pruned them yet.
func (db *DB) Series(measurement string) []SeriesData {
	cutoff := db.clk.Now().Add(-db.retention)
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.measurements[measurement]
	if !ok {
		return nil
	}
	out := make([]SeriesData, 0, len(m.entries))
	for _, e := range m.entries {
		pts := e.window(cutoff, time.Time{}, time.Time{})
		if len(pts) == 0 {
			continue
		}
		cp := make([]Point, len(pts))
		copy(cp, pts)
		out = append(out, SeriesData{
			Measurement: measurement,
			Tags:        e.tags.Clone(),
			Points:      cp,
		})
	}
	return out
}

// Measurements lists the distinct measurement names, sorted.
func (db *DB) Measurements() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.measurements))
	for name := range db.measurements {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SeriesCount returns the number of live series (for monitoring tests).
func (db *DB) SeriesCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.nSeries
}

// SweepNow garbage-collects every series whose newest point has aged out
// of retention — the fate of series belonging to terminated pods, which
// no write will ever prune again. It returns the number of series
// deleted. The background sweep calls this every GC interval.
func (db *DB) SweepNow() int {
	cutoff := db.clk.Now().Add(-db.retention)
	db.mu.Lock()
	defer db.mu.Unlock()
	deleted := 0
	for name, m := range db.measurements {
		kept := m.entries[:0]
		for _, e := range m.entries {
			if n := len(e.points); n == 0 || e.points[n-1].Time.Before(cutoff) {
				delete(m.byKey, e.key)
				deleted++
				continue
			}
			kept = append(kept, e)
		}
		for i := len(kept); i < len(m.entries); i++ {
			m.entries[i] = nil
		}
		m.entries = kept
		if len(m.entries) == 0 {
			delete(db.measurements, name)
		}
	}
	db.nSeries -= deleted
	return deleted
}
