// Package tsdb is the in-memory stand-in for the InfluxDB instance of the
// paper's monitoring pipeline (§V-C): Heapster pushes standard-memory
// samples and the SGX probes push EPC samples into it, and the scheduler
// runs sliding-window queries (Listing 1) against it through the
// internal/influxql engine.
//
// Data model: a measurement (e.g. "sgx/epc") contains tagged series
// (pod_name, nodename); each series is an append-mostly list of
// timestamped float64 samples of a single field called "value", matching
// how Heapster writes metrics.
package tsdb

import (
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/sgxorch/sgxorch/internal/clock"
)

// Point is one timestamped sample.
type Point struct {
	Time  time.Time
	Value float64
}

// Tags identifies a series within a measurement.
type Tags map[string]string

// Clone copies the tag set.
func (t Tags) Clone() Tags {
	out := make(Tags, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// canonical renders tags deterministically for use as a map key.
func (t Tags) canonical() string {
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(t[k])
		b.WriteByte(',')
	}
	return b.String()
}

// SeriesData is a copy of one series returned by queries.
type SeriesData struct {
	Measurement string
	Tags        Tags
	Points      []Point
}

// DefaultRetention bounds how much history is kept. The scheduler only
// queries short sliding windows (25 s in Listing 1), so minutes of history
// suffice.
const DefaultRetention = 10 * time.Minute

// DB is the in-memory time-series database.
type DB struct {
	clk       clock.Clock
	retention time.Duration

	mu     sync.Mutex
	series map[string]*seriesEntry
}

type seriesEntry struct {
	measurement string
	tags        Tags
	points      []Point
}

// Option configures the DB.
type Option func(*DB)

// WithRetention overrides the retention window.
func WithRetention(d time.Duration) Option {
	return func(db *DB) { db.retention = d }
}

// New creates an empty database.
func New(clk clock.Clock, opts ...Option) *DB {
	db := &DB{
		clk:       clk,
		retention: DefaultRetention,
		series:    make(map[string]*seriesEntry),
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// Now exposes the database clock; the query engine evaluates now()
// against it.
func (db *DB) Now() time.Time { return db.clk.Now() }

// Write appends a sample to the series identified by measurement and
// tags, stamped at time t. Out-of-order writes are tolerated (points are
// kept sorted by insertion; queries do not rely on order).
func (db *DB) Write(measurement string, tags Tags, value float64, t time.Time) {
	key := measurement + "|" + tags.canonical()
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.series[key]
	if !ok {
		e = &seriesEntry{measurement: measurement, tags: tags.Clone()}
		db.series[key] = e
	}
	e.points = append(e.points, Point{Time: t, Value: value})
	db.pruneLocked(e)
}

// WriteNow appends a sample stamped with the database clock.
func (db *DB) WriteNow(measurement string, tags Tags, value float64) {
	db.Write(measurement, tags, value, db.clk.Now())
}

// pruneLocked discards points older than the retention window, relative
// to the clock. Caller must hold db.mu.
func (db *DB) pruneLocked(e *seriesEntry) {
	cutoff := db.clk.Now().Add(-db.retention)
	i := 0
	for i < len(e.points) && e.points[i].Time.Before(cutoff) {
		i++
	}
	if i > 0 {
		e.points = append(e.points[:0], e.points[i:]...)
	}
}

// Series returns copies of every series in the measurement, ordered
// deterministically by canonical tags.
func (db *DB) Series(measurement string) []SeriesData {
	db.mu.Lock()
	defer db.mu.Unlock()
	keys := make([]string, 0, len(db.series))
	for key, e := range db.series {
		if e.measurement == measurement {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	out := make([]SeriesData, 0, len(keys))
	for _, key := range keys {
		e := db.series[key]
		pts := make([]Point, len(e.points))
		copy(pts, e.points)
		out = append(out, SeriesData{
			Measurement: e.measurement,
			Tags:        e.tags.Clone(),
			Points:      pts,
		})
	}
	return out
}

// Measurements lists the distinct measurement names, sorted.
func (db *DB) Measurements() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	seen := make(map[string]bool)
	for _, e := range db.series {
		seen[e.measurement] = true
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// SeriesCount returns the number of live series (for monitoring tests).
func (db *DB) SeriesCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.series)
}
