package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := PopStdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("PopStdDev = %v, want 2", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := StdDev([]float64{3}); got != 0 {
		t.Fatalf("StdDev(single) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Fatalf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Fatalf("Max = %v, %v", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMeanCI95KnownValue(t *testing.T) {
	// n=5, sd=1, se=1/sqrt(5); t_{0.975,4}=2.776.
	xs := []float64{1, 2, 3, 4, 5}
	ci := MeanCI95(xs)
	if ci.Mean != 3 || ci.N != 5 {
		t.Fatalf("MeanCI95 = %+v, want mean 3 n 5", ci)
	}
	sd := StdDev(xs)
	want := 2.776 * sd / math.Sqrt(5)
	if !almostEqual(ci.HalfWidth, want, 1e-9) {
		t.Fatalf("HalfWidth = %v, want %v", ci.HalfWidth, want)
	}
}

func TestMeanCI95Degenerate(t *testing.T) {
	if ci := MeanCI95(nil); ci.N != 0 {
		t.Fatalf("MeanCI95(nil) = %+v", ci)
	}
	ci := MeanCI95([]float64{42})
	if ci.Mean != 42 || ci.HalfWidth != 0 || ci.N != 1 {
		t.Fatalf("MeanCI95(single) = %+v", ci)
	}
}

func TestTCriticalMonotoneTowardNormal(t *testing.T) {
	prev := tCritical95(1)
	for df := 2; df <= 400; df++ {
		cur := tCritical95(df)
		if cur > prev+1e-9 {
			t.Fatalf("tCritical95 increased at df=%d: %v > %v", df, cur, prev)
		}
		prev = cur
	}
	if got := tCritical95(10000); got != 1.960 {
		t.Fatalf("tCritical95(10000) = %v, want 1.960", got)
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Fatal("tCritical95(0) should be NaN")
	}
}

func TestCDFAtAndQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	q, err := c.Quantile(0.5)
	if err != nil || q != 2 {
		t.Fatalf("Quantile(0.5) = %v, %v; want 2", q, err)
	}
	q, _ = c.Quantile(1)
	if q != 4 {
		t.Fatalf("Quantile(1) = %v, want 4", q)
	}
	q, _ = c.Quantile(0)
	if q != 1 {
		t.Fatalf("Quantile(0) = %v, want 1", q)
	}
	if _, err := NewCDF(nil).Quantile(0.5); err != ErrEmpty {
		t.Fatalf("empty Quantile err = %v, want ErrEmpty", err)
	}
}

func TestCDFCurveSpansRangeInPercent(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	pts := c.Curve(10)
	if len(pts) != 11 {
		t.Fatalf("Curve len = %d, want 11", len(pts))
	}
	if pts[0].X != 0 || pts[len(pts)-1].X != 10 {
		t.Fatalf("Curve endpoints wrong: %+v .. %+v", pts[0], pts[len(pts)-1])
	}
	if pts[len(pts)-1].P != 100 {
		t.Fatalf("final P = %v, want 100", pts[len(pts)-1].P)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P {
			t.Fatalf("CDF curve not monotone at %d: %v", i, pts)
		}
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.Add(-5, 1)   // clamps to bucket 0
	h.Add(0, 2)    // bucket 0
	h.Add(55, 3)   // bucket 5
	h.Add(99.9, 4) // bucket 9
	h.Add(100, 5)  // clamps to bucket 9
	if len(h.Buckets[0]) != 2 {
		t.Fatalf("bucket 0 = %v", h.Buckets[0])
	}
	if len(h.Buckets[5]) != 1 || h.Buckets[5][0] != 3 {
		t.Fatalf("bucket 5 = %v", h.Buckets[5])
	}
	if len(h.Buckets[9]) != 2 {
		t.Fatalf("bucket 9 = %v", h.Buckets[9])
	}
	if got := h.BucketCenter(0); got != 5 {
		t.Fatalf("BucketCenter(0) = %v, want 5", got)
	}
	ms := h.MeansCI95()
	if ms[5].Mean != 3 || ms[5].N != 1 {
		t.Fatalf("MeansCI95[5] = %+v", ms[5])
	}
	if ms[1].N != 0 {
		t.Fatalf("empty bucket should have N=0: %+v", ms[1])
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0,0,0) did not panic")
		}
	}()
	NewHistogram(0, 0, 0)
}

// Property: CDF.At is monotone non-decreasing and bounded by [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []int16, probe []int16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		c := NewCDF(xs)
		prevX, prevP := math.Inf(-1), 0.0
		ps := make([]float64, len(probe))
		for i, v := range probe {
			ps[i] = float64(v)
		}
		// Probe in sorted order.
		cdfSorted := NewCDF(ps)
		for _, pt := range cdfSorted.sorted {
			p := c.At(pt)
			if p < 0 || p > 1 {
				return false
			}
			if pt >= prevX && p < prevP {
				return false
			}
			prevX, prevP = pt, p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile and At are inverse-ish: At(Quantile(p)) >= p.
func TestQuantileAtInverseProperty(t *testing.T) {
	f := func(raw []int8, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p := float64(pRaw) / 255
		c := NewCDF(xs)
		q, err := c.Quantile(p)
		if err != nil {
			return false
		}
		return c.At(q) >= p-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
