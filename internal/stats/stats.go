// Package stats provides the small statistical toolkit used across the
// reproduction: empirical CDFs (Figs. 3, 4, 8, 11), means with 95%
// confidence intervals (Figs. 6, 9), standard deviations (the spread
// scheduling policy, §IV), and histogram bucketing (Fig. 9).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopStdDev returns the population standard deviation (n denominator).
// The spread policy minimises this quantity across node loads (§IV).
func PopStdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// MeanCI is a mean estimate with a symmetric confidence half-width, as
// plotted by the paper's error bars ("error bars represent the 95%
// confidence interval", §VI-D).
type MeanCI struct {
	Mean      float64
	HalfWidth float64
	N         int
}

// String renders "mean ± halfwidth (n=N)".
func (m MeanCI) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", m.Mean, m.HalfWidth, m.N)
}

// MeanCI95 estimates the mean of xs with a 95% confidence interval using
// Student's t critical values.
func MeanCI95(xs []float64) MeanCI {
	n := len(xs)
	if n == 0 {
		return MeanCI{}
	}
	if n == 1 {
		return MeanCI{Mean: xs[0], N: 1}
	}
	se := StdDev(xs) / math.Sqrt(float64(n))
	return MeanCI{Mean: Mean(xs), HalfWidth: tCritical95(n-1) * se, N: n}
}

// tCritical95 returns the two-sided 95% critical value of Student's t
// distribution with df degrees of freedom. Values for small df come from
// standard tables; large df converge to the normal quantile 1.96.
func tCritical95(df int) float64 {
	table := []float64{
		// df: 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
		2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
		2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return math.NaN()
	case df <= len(table):
		return table[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input slice is
// copied.
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x) in [0, 1].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with P(X <= v) >= p.
// p is clamped to [0, 1].
func (c *CDF) Quantile(p float64) (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrEmpty
	}
	if p <= 0 {
		return c.sorted[0], nil
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1], nil
	}
	i := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i], nil
}

// CDFPoint is one (x, P(X<=x)) pair of a rendered CDF curve.
type CDFPoint struct {
	X float64
	P float64 // in percent, 0..100, as the paper's y-axes
}

// Curve samples the CDF at n+1 evenly spaced points spanning [min, max],
// expressing probabilities in percent like the paper's figures.
func (c *CDF) Curve(n int) []CDFPoint {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	pts := make([]CDFPoint, 0, n+1)
	for i := 0; i <= n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n)
		pts = append(pts, CDFPoint{X: x, P: 100 * c.At(x)})
	}
	return pts
}

// Histogram buckets values into fixed-width bins over [lo, hi); values
// outside the range are clamped into the first/last bin. Fig. 9 buckets
// waiting times by requested memory this way.
type Histogram struct {
	Lo, Hi  float64
	Buckets [][]float64
}

// NewHistogram creates a histogram with n equal-width buckets over
// [lo, hi). It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([][]float64, n)}
}

// BucketIndex returns the bucket index for key.
func (h *Histogram) BucketIndex(key float64) int {
	n := len(h.Buckets)
	i := int((key - h.Lo) / (h.Hi - h.Lo) * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Add records value under the bucket selected by key.
func (h *Histogram) Add(key, value float64) {
	i := h.BucketIndex(key)
	h.Buckets[i] = append(h.Buckets[i], value)
}

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + w*(float64(i)+0.5)
}

// MeansCI95 returns the per-bucket mean and 95% CI, skipping empty buckets
// (their N is 0).
func (h *Histogram) MeansCI95() []MeanCI {
	out := make([]MeanCI, len(h.Buckets))
	for i, b := range h.Buckets {
		out[i] = MeanCI95(b)
	}
	return out
}
