package watch

import (
	"sync"
	"testing"
	"time"
)

// TestWatchSubscriberStatsMonotonicUnderChurn is the regression guard for
// the telemetry gauges built on Stats().PerSubscriber: while publishers
// storm a tiny async ring (forcing lag, resyncs and drops) and
// subscribers churn, every live subscriber keeps a stable ID and its
// cumulative counters — Delivered, Batches, MaxBatch, MaxLag, Resyncs,
// Dropped — never move backwards between consecutive samples. Gauges
// scraped from these values would otherwise glitch downwards mid-storm.
func TestWatchSubscriberStatsMonotonicUnderChurn(t *testing.T) {
	b := New[int64](Options{Mode: Async, Capacity: 8, MaxBatch: 4})
	defer b.Close()

	var mu sync.Mutex
	var unsubs []func()
	subscribe := func() {
		// A deliberately slow consumer without a resync handler (drops)
		// and a fast one with a resync handler (resyncs).
		slow := b.Subscribe(0, func([]int64) { time.Sleep(50 * time.Microsecond) }, nil)
		fast := b.Subscribe(0, func([]int64) {}, func() int64 { return b.LastRev() })
		mu.Lock()
		unsubs = append(unsubs, slow, fast)
		mu.Unlock()
	}
	for i := 0; i < 3; i++ {
		subscribe()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for rev := int64(1); rev <= 4000; rev++ {
			b.Publish(rev, rev)
			b.Flush()
			switch rev {
			case 1000, 2500: // churn mid-storm
				subscribe()
				mu.Lock()
				oldest := unsubs[0]
				unsubs = unsubs[1:]
				mu.Unlock()
				oldest()
			}
		}
	}()

	prev := make(map[int64]SubscriberStats)
	check := func() {
		st := b.Stats()
		seen := make(map[int64]bool, len(st.PerSubscriber))
		for _, ss := range st.PerSubscriber {
			if seen[ss.ID] {
				t.Fatalf("duplicate subscriber ID %d in one Stats snapshot", ss.ID)
			}
			seen[ss.ID] = true
			p, ok := prev[ss.ID]
			if !ok {
				prev[ss.ID] = ss
				continue
			}
			for _, c := range []struct {
				name      string
				prev, cur int64
			}{
				{"Delivered", p.Delivered, ss.Delivered},
				{"Batches", p.Batches, ss.Batches},
				{"MaxBatch", int64(p.MaxBatch), int64(ss.MaxBatch)},
				{"MaxLag", p.MaxLag, ss.MaxLag},
				{"Resyncs", p.Resyncs, ss.Resyncs},
				{"Dropped", p.Dropped, ss.Dropped},
			} {
				if c.cur < c.prev {
					t.Fatalf("subscriber %d: %s went backwards (%d -> %d)", ss.ID, c.name, c.prev, c.cur)
				}
			}
			prev[ss.ID] = ss
		}
	}

	for sampling := true; sampling; {
		select {
		case <-done:
			sampling = false
		default:
			check()
		}
	}
	b.Quiesce()
	check()

	// The storm must actually have exercised the back-pressure paths, or
	// the monotonicity above was vacuous.
	var lagged, recovered bool
	for _, ss := range b.Stats().PerSubscriber {
		if ss.MaxLag > 0 {
			lagged = true
		}
		if ss.Resyncs > 0 || ss.Dropped > 0 {
			recovered = true
		}
	}
	if !lagged || !recovered {
		st := b.Stats()
		t.Fatalf("storm too gentle: no lag or no resync/drop observed (%+v)", st.PerSubscriber)
	}
	mu.Lock()
	for _, u := range unsubs {
		u()
	}
	mu.Unlock()
	if got := len(b.Stats().PerSubscriber); got != 0 {
		t.Fatalf("%d subscribers still reported after unsubscribe", got)
	}
}
