package watch

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestTopicSubscriberMergesRevOrder: two topic rings over one rev
// space. An all-topics subscriber sees the merged stream exactly as a
// single-ring broker would; single-topic subscribers see only their
// ring, still in rev order.
func TestTopicSubscriberMergesRevOrder(t *testing.T) {
	b := New[int64](Options{Mode: Sync, Topics: 2})
	var all, got0, got1 []int64
	unsubAll := b.Subscribe(0, func(evs []int64) { all = append(all, evs...) }, nil)
	defer unsubAll()
	unsub0 := b.SubscribeTopics(0, TopicsOf(0), func(evs []int64) { got0 = append(got0, evs...) }, nil)
	defer unsub0()
	unsub1 := b.SubscribeTopics(0, TopicsOf(1), func(evs []int64) { got1 = append(got1, evs...) }, nil)
	defer unsub1()
	for rev := int64(1); rev <= 20; rev++ {
		b.PublishTopic(int(rev%2), rev, rev) // even revs → topic 0, odd → topic 1
		b.Flush()
	}
	if len(all) != 20 {
		t.Fatalf("all-topics subscriber got %d events, want 20", len(all))
	}
	checkOrdered(t, all, "merged")
	if len(got0)+len(got1) != 20 {
		t.Fatalf("single-topic subscribers got %d+%d events, want 20 total", len(got0), len(got1))
	}
	for _, r := range got0 {
		if r%2 != 0 {
			t.Fatalf("topic-0 subscriber saw topic-1 rev %d", r)
		}
	}
	for _, r := range got1 {
		if r%2 != 1 {
			t.Fatalf("topic-1 subscriber saw topic-0 rev %d", r)
		}
	}
	checkOrdered(t, got0, "topic 0")
	checkOrdered(t, got1, "topic 1")
	// Single-topic cursors fast-forward past foreign events, so the
	// broker quiesces even though their last delivered rev is not the
	// global head.
	b.Quiesce()
	events, err := b.EventsSince(0)
	if err != nil || len(events) != 20 {
		t.Fatalf("EventsSince(0) = %d events, %v; want 20, nil", len(events), err)
	}
	checkOrdered(t, events, "EventsSince merge")
}

// TestTopicRingIsolation: eviction is per ring. A burst on one topic
// must not push the other topic's events off their ring — its
// subscriber replays without resyncing, while an all-topics subscriber
// (whose horizon spans both rings) is forced through recovery.
func TestTopicRingIsolation(t *testing.T) {
	b := New[int64](Options{Mode: Sync, Topics: 2, TopicCapacity: []int{4, 1024}})
	var quiet []int64
	unsubQuiet := b.SubscribeTopics(0, TopicsOf(1), func(evs []int64) { quiet = append(quiet, evs...) }, nil)
	defer unsubQuiet()
	var resyncs int64
	unsubAll := b.Subscribe(0, func([]int64) {}, func() int64 {
		resyncs++
		return b.LastRev()
	})
	defer unsubAll()

	rev := int64(0)
	for i := 0; i < 2; i++ {
		rev++
		b.PublishTopic(1, rev, rev)
	}
	// Flood the small topic-0 ring far past its capacity before any
	// delivery happens.
	for i := 0; i < 100; i++ {
		rev++
		b.PublishTopic(0, rev, rev)
	}
	b.Flush()

	if len(quiet) != 2 || quiet[0] != 1 || quiet[1] != 2 {
		t.Fatalf("topic-1 subscriber got %v, want [1 2] despite the topic-0 flood", quiet)
	}
	if resyncs == 0 {
		t.Fatal("all-topics subscriber fell off the flooded ring but never resynced")
	}
	st := b.Stats()
	if st.PerTopic[0].Evicted == 0 || st.PerTopic[1].Evicted != 0 {
		t.Fatalf("per-topic eviction = %+v, want topic 0 evicting and topic 1 intact", st.PerTopic)
	}
	if st.PerSubscriber[0].Resyncs != 0 || st.PerSubscriber[0].Dropped != 0 {
		t.Fatalf("topic-1 subscriber stats = %+v, want no resyncs/drops", st.PerSubscriber[0])
	}
}

// TestSequencedPublishReorders: writers racing an atomic rev allocator
// may reach a sequenced broker out of order; events must still land on
// the rings — and reach subscribers — in rev order.
func TestSequencedPublishReorders(t *testing.T) {
	b := New[int64](Options{Mode: Sync, Sequenced: true})
	var got []int64
	unsub := b.Subscribe(0, func(evs []int64) { got = append(got, evs...) }, nil)
	defer unsub()
	b.Publish(2, 2)
	b.Publish(3, 3)
	if lr := b.LastRev(); lr != 0 {
		t.Fatalf("LastRev = %d with the gap at rev 1 unfilled, want 0", lr)
	}
	b.Publish(1, 1)
	if lr := b.LastRev(); lr != 3 {
		t.Fatalf("LastRev = %d after the gap filled, want 3", lr)
	}
	b.Flush()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("delivered %v, want [1 2 3]", got)
	}
}

// TestSequencedConcurrentPublishersDeliverInOrder hammers the sequenced
// path: goroutines allocate revs from an atomic counter, publish in
// whatever order they are scheduled, and every subscriber must still
// observe the full dense stream in rev order.
func TestSequencedConcurrentPublishersDeliverInOrder(t *testing.T) {
	const (
		workers = 8
		perW    = 200
	)
	b := New[int64](Options{Mode: Sync, Topics: 2, Sequenced: true})
	var mu sync.Mutex
	var got []int64
	unsub := b.Subscribe(0, func(evs []int64) {
		mu.Lock()
		got = append(got, evs...)
		mu.Unlock()
	}, nil)
	defer unsub()

	var seq atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				rev := seq.Add(1)
				b.PublishTopic(int(rev%2), rev, rev)
				b.Flush()
			}
		}()
	}
	wg.Wait()
	b.Flush()
	b.Quiesce()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != workers*perW {
		t.Fatalf("delivered %d events, want %d", len(got), workers*perW)
	}
	checkOrdered(t, got, "sequenced concurrent")
	if b.LastRev() != int64(workers*perW) {
		t.Fatalf("LastRev = %d, want %d", b.LastRev(), workers*perW)
	}
}

// TestSingleTopicQuiesceAsync: an async pump serving a single-topic
// subscriber must not spin or hang Quiesce when every new event lands
// on a foreign topic.
func TestSingleTopicQuiesceAsync(t *testing.T) {
	b := New[int64](Options{Mode: Async, Topics: 2})
	var n atomic.Int64
	unsub := b.SubscribeTopics(0, TopicsOf(1), func(evs []int64) { n.Add(int64(len(evs))) }, nil)
	defer unsub()
	for rev := int64(1); rev <= 50; rev++ {
		b.PublishTopic(0, rev, rev) // all foreign to the subscriber
	}
	b.Quiesce() // must return: the pump fast-forwards the cursor
	if n.Load() != 0 {
		t.Fatalf("topic-1 subscriber received %d topic-0 events", n.Load())
	}
	b.PublishTopic(1, 51, 51)
	b.Quiesce()
	if n.Load() != 1 {
		t.Fatalf("topic-1 subscriber received %d events after its topic fired, want 1", n.Load())
	}
}
