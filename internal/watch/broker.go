// Package watch implements an asynchronous versioned event broker — the
// in-process equivalent of the Kubernetes apiserver watch cache. It
// decouples state commits from event fan-out: a mutation appends its
// event to a fixed-capacity ring buffer indexed by resource version in
// O(1) and returns; subscribers consume the ring through per-subscriber
// cursors, in batches, without ever making the writer wait.
//
// Two delivery modes:
//
//   - Sync: events are delivered inline by Flush, on the publishing
//     goroutine, one batch per subscriber in subscription order. A
//     single flusher runs at a time and drains the ring completely, so
//     under a single-goroutine simulation every event is handed to every
//     subscriber before the mutating call returns — bit-for-bit
//     reproducible, exactly like a callback list, which is what the
//     determinism and cache≡rebuild property tests pin.
//   - Async: every subscriber gets a pump goroutine that waits for new
//     events, copies whatever is pending (up to the batch cap) out of
//     the ring under the lock, and invokes the subscriber's callback
//     without it. Slow subscribers batch up naturally; fast publishers
//     never block on slow consumers.
//
// A subscriber that falls so far behind that its cursor drops off the
// ring is "too old" (ErrTooOld): instead of stalling the writer or
// silently corrupting the consumer, the broker invokes the subscriber's
// resync handler, which re-primes the consumer from a fresh snapshot of
// the source of truth and returns the snapshot's resource version as the
// new cursor — the ListAndWatch-style relist Kubernetes clients perform
// on a 410 Gone. Subscribers without a resync handler have the missed
// interval counted in their back-pressure stats and continue from the
// oldest retained event.
//
// Unsubscribe is safe in both modes, from anywhere: called concurrently
// with delivery it blocks until the in-flight callback returns (so the
// caller knows no further callbacks will run), and called from inside
// the subscriber's own callback it returns immediately instead of
// self-deadlocking.
package watch

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrTooOld reports that a cursor has fallen off the ring: events
// between the cursor and the oldest retained event were evicted, so the
// consumer can no longer be brought current by replay alone and must
// resync from a snapshot.
var ErrTooOld = errors.New("watch: resource version too old")

// Mode selects how the broker delivers events.
type Mode int

const (
	// Sync delivers inline via Flush on the publishing goroutine —
	// deterministic under a simulated clock.
	Sync Mode = iota
	// Async delivers on per-subscriber pump goroutines — publishers
	// never run subscriber code.
	Async
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Async {
		return "async"
	}
	return "sync"
}

// Defaults for Options.
const (
	// DefaultCapacity bounds the retained event window. A subscriber
	// more than this many events behind the head resyncs.
	DefaultCapacity = 16384
	// DefaultMaxBatch caps the events handed to one callback invocation.
	DefaultMaxBatch = 256
)

// Options parameterises a Broker.
type Options struct {
	Mode Mode
	// Capacity is the ring size (DefaultCapacity when <= 0).
	Capacity int
	// MaxBatch caps one delivery batch (DefaultMaxBatch when <= 0).
	MaxBatch int
}

// SubscriberStats is the per-subscriber back-pressure accounting.
type SubscriberStats struct {
	// Delivered counts events handed to the callback; Batches the
	// callback invocations (Delivered/Batches is the mean batch size).
	Delivered int64
	Batches   int64
	// MaxBatch is the largest single batch delivered.
	MaxBatch int
	// MaxLag is the largest observed distance (in resource versions)
	// between the newest published event and this subscriber's cursor at
	// the moment a batch was cut — how far behind the consumer ran.
	MaxLag int64
	// Resyncs counts ErrTooOld recoveries through the resync handler.
	Resyncs int64
	// Dropped counts the resource-version span skipped because the
	// subscriber fell off the ring and had no resync handler.
	Dropped int64
}

// Stats is the broker-level accounting.
type Stats struct {
	// Published counts events appended; Evicted those overwritten by
	// ring wrap-around before at least one subscriber consumed them is
	// not tracked per-consumer — Evicted is simply the count pushed off
	// the ring.
	Published int64
	Evicted   int64
	// Subscribers is the live subscriber count; PerSubscriber their
	// stats in subscription order.
	Subscribers   int
	PerSubscriber []SubscriberStats
}

// entry is one retained event.
type entry[T any] struct {
	rev int64
	ev  T
}

// subscription is one registered consumer. All fields are guarded by the
// broker mutex; the callback itself runs with the mutex released, fenced
// by the delivering flag.
type subscription[T any] struct {
	id     int64
	cursor int64 // rev of the last event consumed (or start rev)
	fn     func([]T)
	resync func() int64 // nil: fall forward and count Dropped

	buf []T // reused batch buffer; callbacks must not retain it

	closed      bool
	delivering  bool
	deliverGoid int64 // goroutine running the callback, for re-entrancy

	stats SubscriberStats
}

// Broker is a versioned event broker over a fixed-capacity ring buffer.
// The zero value is not usable; call New.
type Broker[T any] struct {
	mode     Mode
	capacity int
	maxBatch int

	mu   sync.Mutex
	cond *sync.Cond // broadcast: publish, cursor advance, delivery end, close

	ring  []entry[T]
	start int // index of the oldest retained event
	count int

	lastRev    int64 // rev of the newest published event
	evictedRev int64 // highest rev pushed off the ring
	published  int64
	evicted    int64

	subs   map[int64]*subscription[T]
	order  []int64 // subscription ids, ascending (= subscription order)
	nextID int64

	// Sync-mode flush state: one flusher drains the ring for everyone;
	// concurrent flushers wait (or return, when called re-entrantly from
	// a delivery callback — the outer flusher picks the new events up).
	flushing    bool
	flusherGoid int64
	lastFlushed int64 // every event <= this was offered to all subscribers

	closed bool
}

// New creates a broker.
func New[T any](opts Options) *Broker[T] {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	b := &Broker[T]{
		mode:     opts.Mode,
		capacity: opts.Capacity,
		maxBatch: opts.MaxBatch,
		ring:     make([]entry[T], opts.Capacity),
		subs:     make(map[int64]*subscription[T]),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Mode returns the delivery mode.
func (b *Broker[T]) Mode() Mode { return b.mode }

// Publish appends one event at the given resource version. Revisions
// must be strictly increasing across calls — the caller serializes
// publishes (typically by holding its own state lock, which is safe: the
// append is O(1) and never runs subscriber code). When the ring is full
// the oldest event is evicted; subscribers still needing it resync.
func (b *Broker[T]) Publish(rev int64, ev T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if rev <= b.lastRev {
		panic(fmt.Sprintf("watch: Publish rev %d not after %d", rev, b.lastRev))
	}
	if b.count == b.capacity {
		old := &b.ring[b.start]
		b.evictedRev = old.rev
		var zero entry[T]
		*old = zero // release the payload to the GC
		b.start = (b.start + 1) % b.capacity
		b.count--
		b.evicted++
	}
	b.ring[(b.start+b.count)%b.capacity] = entry[T]{rev: rev, ev: ev}
	b.count++
	b.lastRev = rev
	b.published++
	b.cond.Broadcast()
}

// Subscribe registers fn for every event with rev > afterRev, delivered
// in batches in strict resource-version order with no duplicates. The
// batch slice is reused between invocations — callbacks must not retain
// it. resync (optional) is invoked when the subscriber falls off the
// ring: it must re-prime the consumer from a fresh snapshot of the
// source of truth and return that snapshot's resource version, which
// becomes the new cursor. The returned function unsubscribes; see the
// package comment for its safety guarantees.
func (b *Broker[T]) Subscribe(afterRev int64, fn func([]T), resync func() int64) (unsubscribe func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return func() {}
	}
	b.nextID++
	sub := &subscription[T]{id: b.nextID, cursor: afterRev, fn: fn, resync: resync}
	b.subs[sub.id] = sub
	b.order = append(b.order, sub.id)
	if b.mode == Async {
		go b.pump(sub)
	}
	return func() { b.unsubscribe(sub) }
}

// unsubscribe removes sub and, unless called from inside sub's own
// callback, waits for any in-flight delivery to finish — after it
// returns, no callback for this subscription is running or will run.
func (b *Broker[T]) unsubscribe(sub *subscription[T]) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if sub.closed {
		return
	}
	sub.closed = true
	delete(b.subs, sub.id)
	for i, id := range b.order {
		if id == sub.id {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	b.cond.Broadcast() // wake the pump so it exits
	if sub.delivering && sub.deliverGoid != goid() {
		for sub.delivering {
			b.cond.Wait()
		}
	}
}

// Close shuts the broker down: pumps exit, further publishes and
// subscribes are no-ops. Existing subscriptions are released.
func (b *Broker[T]) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

// LastRev returns the resource version of the newest published event.
func (b *Broker[T]) LastRev() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastRev
}

// EventsSince returns copies of the retained events with rev > afterRev,
// or ErrTooOld when that interval has been partially evicted.
func (b *Broker[T]) EventsSince(afterRev int64) ([]T, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if afterRev < b.evictedRev {
		return nil, fmt.Errorf("%w: have >= %d, requested > %d", ErrTooOld, b.evictedRev, afterRev)
	}
	i := b.searchLocked(afterRev)
	out := make([]T, 0, b.count-i)
	for ; i < b.count; i++ {
		out = append(out, b.ring[(b.start+i)%b.capacity].ev)
	}
	return out, nil
}

// Stats returns a snapshot of the broker and per-subscriber accounting,
// subscribers in subscription order.
func (b *Broker[T]) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Stats{
		Published:   b.published,
		Evicted:     b.evicted,
		Subscribers: len(b.subs),
	}
	for _, id := range b.order {
		st.PerSubscriber = append(st.PerSubscriber, b.subs[id].stats)
	}
	return st
}

// Quiesce blocks until every subscriber's cursor has reached every event
// published before the call and no delivery or flush is in flight — the
// barrier tests and benchmarks use to observe a settled fan-out.
func (b *Broker[T]) Quiesce() {
	b.mu.Lock()
	defer b.mu.Unlock()
	target := b.lastRev
	for {
		settled := !b.flushing
		for _, sub := range b.subs {
			if sub.cursor < target || sub.delivering {
				settled = false
				break
			}
		}
		if settled || b.closed {
			return
		}
		b.cond.Wait()
	}
}

// Flush delivers every pending event inline, in resource-version order,
// one batch per subscriber in subscription order. It returns once every
// event published before the call has been offered to all subscribers —
// possibly by a concurrent flusher; only one flusher runs at a time.
// Called re-entrantly from inside a delivery callback (a subscriber
// mutating the source synchronously), it returns immediately: the outer
// flusher's drain loop picks the new events up, so re-entrant mutation
// defers delivery instead of deadlocking. No-op in async mode.
func (b *Broker[T]) Flush() {
	if b.mode != Sync {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	target := b.lastRev
	for b.lastFlushed < target && !b.closed {
		if b.flushing {
			if b.flusherGoid == goid() {
				return
			}
			b.cond.Wait()
			continue
		}
		b.flushing = true
		b.flusherGoid = goid()
		b.drainLocked(b.flusherGoid)
		b.flushing = false
		b.flusherGoid = 0
		b.cond.Broadcast()
	}
}

// drainLocked repeatedly offers pending events to every subscriber until
// all are current (including events published re-entrantly by the
// callbacks themselves). Caller holds b.mu, has claimed the flushing
// flag and passes its own goroutine id (so callbacks are fenced without
// re-deriving it per event); the mutex is released around callbacks.
func (b *Broker[T]) drainLocked(callerGoid int64) {
	for {
		progressed := false
		// Iterate a copy: callbacks may subscribe/unsubscribe, mutating
		// b.order while the mutex is released.
		ids := append([]int64(nil), b.order...)
		for _, id := range ids {
			sub, ok := b.subs[id]
			if !ok || sub.closed || sub.cursor >= b.lastRev {
				continue
			}
			if b.serveLocked(sub, callerGoid) {
				progressed = true
			}
		}
		if !progressed {
			b.lastFlushed = b.lastRev
			return
		}
	}
}

// pump is the async delivery loop for one subscriber.
func (b *Broker[T]) pump(sub *subscription[T]) {
	id := goid() // computed once; fences every callback this pump runs
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for !sub.closed && !b.closed && sub.cursor >= b.lastRev {
			b.cond.Wait()
		}
		if sub.closed || b.closed {
			return
		}
		b.serveLocked(sub, id)
	}
}

// serveLocked moves one subscriber forward: either delivers the next
// batch or runs its too-old recovery. Caller holds b.mu; it is released
// around the callback. Reports whether the cursor advanced.
func (b *Broker[T]) serveLocked(sub *subscription[T], callerGoid int64) bool {
	if sub.cursor < b.evictedRev {
		// Fell off the ring.
		if sub.resync == nil {
			sub.stats.Dropped += b.evictedRev - sub.cursor
			sub.cursor = b.evictedRev
			b.cond.Broadcast()
			return true
		}
		sub.stats.Resyncs++
		before := sub.cursor
		newCursor, ok := b.callLocked(sub, callerGoid, func() int64 { return sub.resync() })
		if !ok {
			return false
		}
		// A correct handler returns its snapshot's rev, which is >= the
		// eviction horizon at snapshot time; if the ring wrapped again
		// during the resync, the next serve detects it and resyncs again.
		if newCursor > sub.cursor {
			sub.cursor = newCursor
		}
		b.cond.Broadcast()
		return sub.cursor > before
	}
	i := b.searchLocked(sub.cursor)
	n := b.count - i
	if n <= 0 {
		return false
	}
	if n > b.maxBatch {
		n = b.maxBatch
	}
	batch := sub.buf[:0]
	if cap(batch) < n {
		batch = make([]T, 0, b.maxBatch)
	}
	for j := 0; j < n; j++ {
		batch = append(batch, b.ring[(b.start+i+j)%b.capacity].ev)
	}
	sub.buf = batch
	if lag := b.lastRev - sub.cursor; lag > sub.stats.MaxLag {
		sub.stats.MaxLag = lag
	}
	sub.cursor = b.ring[(b.start+i+n-1)%b.capacity].rev
	if _, ok := b.callLocked(sub, callerGoid, func() int64 { sub.fn(batch); return 0 }); !ok {
		return false
	}
	sub.stats.Delivered += int64(n)
	sub.stats.Batches++
	if n > sub.stats.MaxBatch {
		sub.stats.MaxBatch = n
	}
	b.cond.Broadcast()
	return true
}

// callLocked runs a subscriber callback (delivery or resync) with the
// mutex released, fenced so unsubscribe can tell an in-flight callback
// from a settled one; callerGoid is the delivering goroutine's id,
// computed once by the pump/flusher rather than per event. Returns
// ok=false when the subscription was closed before the callback could
// start.
func (b *Broker[T]) callLocked(sub *subscription[T], callerGoid int64, f func() int64) (int64, bool) {
	if sub.closed {
		return 0, false
	}
	sub.delivering = true
	sub.deliverGoid = callerGoid
	b.mu.Unlock()
	v := f()
	b.mu.Lock()
	sub.delivering = false
	sub.deliverGoid = 0
	b.cond.Broadcast()
	return v, true
}

// searchLocked returns the smallest ring offset whose event rev exceeds
// afterRev (count when none does). Revisions are strictly increasing
// along the ring, so this is a binary search.
func (b *Broker[T]) searchLocked(afterRev int64) int {
	lo, hi := 0, b.count
	for lo < hi {
		mid := (lo + hi) / 2
		if b.ring[(b.start+mid)%b.capacity].rev > afterRev {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// goid returns the current goroutine id (parsed from the runtime stack
// header). Computed once per pump/flush/unsubscribe — never per event.
func goid() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id int64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}
