// Package watch implements an asynchronous versioned event broker — the
// in-process equivalent of the Kubernetes apiserver watch cache. It
// decouples state commits from event fan-out: a mutation appends its
// event to a fixed-capacity ring buffer indexed by resource version in
// O(1) and returns; subscribers consume the rings through per-subscriber
// cursors, in batches, without ever making the writer wait.
//
// Events are partitioned into per-topic rings (for the API server: pod
// events and node events) that share ONE resource-version space: a rev
// is allocated globally, and the event lands in exactly one topic's
// ring. Subscribers choose a TopicSet; delivery merges the subscribed
// rings back into strict rev order, so an all-topics subscriber sees
// exactly the stream a single-ring broker would have produced, while a
// single-topic subscriber (a kubelet that only cares about pods) never
// pays — in ring space or batch volume — for event kinds it discards.
// Ring eviction is per topic: a burst of pod events cannot push node
// events off their ring.
//
// Two delivery modes:
//
//   - Sync: events are delivered inline by Flush, on the publishing
//     goroutine, one batch per subscriber in subscription order. A
//     single flusher runs at a time and drains the rings completely, so
//     under a single-goroutine simulation every event is handed to every
//     subscriber before the mutating call returns — bit-for-bit
//     reproducible, exactly like a callback list, which is what the
//     determinism and cache≡rebuild property tests pin.
//   - Async: every subscriber gets a pump goroutine that waits for new
//     events, copies whatever is pending (up to the batch cap) out of
//     the rings under the lock, and invokes the subscriber's callback
//     without it. Slow subscribers batch up naturally; fast publishers
//     never block on slow consumers.
//
// A Sequenced broker additionally accepts publishes out of rev order:
// writers that allocate revs from an atomic counter (the sharded API
// server) can race each other to Publish, and the broker buffers the
// out-of-order arrivals and appends them to their rings strictly in rev
// order once the gap fills. This requires dense revs — every rev
// allocated must eventually be published — which holds for the API
// server because allocation and publish are straight-line code under
// the owning shard's lock.
//
// A subscriber that falls so far behind that its cursor drops off a
// subscribed ring is "too old" (ErrTooOld): instead of stalling the
// writer or silently corrupting the consumer, the broker invokes the
// subscriber's resync handler, which re-primes the consumer from a
// fresh snapshot of the source of truth and returns the snapshot's
// resource version as the new cursor — the ListAndWatch-style relist
// Kubernetes clients perform on a 410 Gone. Subscribers without a
// resync handler have the missed interval counted in their
// back-pressure stats and continue from the oldest retained event.
//
// Unsubscribe is safe in both modes, from anywhere: called concurrently
// with delivery it blocks until the in-flight callback returns (so the
// caller knows no further callbacks will run), and called from inside
// the subscriber's own callback it returns immediately instead of
// self-deadlocking.
package watch

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrTooOld reports that a cursor has fallen off a subscribed ring:
// events between the cursor and the oldest retained event were evicted,
// so the consumer can no longer be brought current by replay alone and
// must resync from a snapshot.
var ErrTooOld = errors.New("watch: resource version too old")

// Mode selects how the broker delivers events.
type Mode int

const (
	// Sync delivers inline via Flush on the publishing goroutine —
	// deterministic under a simulated clock.
	Sync Mode = iota
	// Async delivers on per-subscriber pump goroutines — publishers
	// never run subscriber code.
	Async
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Async {
		return "async"
	}
	return "sync"
}

// TopicSet selects which topic rings a subscriber consumes, one bit per
// topic index.
type TopicSet uint64

// AllTopics subscribes to every ring — the merged stream.
const AllTopics TopicSet = ^TopicSet(0)

// TopicsOf builds a TopicSet from topic indices.
func TopicsOf(topics ...int) TopicSet {
	var s TopicSet
	for _, t := range topics {
		s |= 1 << uint(t)
	}
	return s
}

// Has reports whether topic t is in the set.
func (s TopicSet) Has(t int) bool { return s&(1<<uint(t)) != 0 }

// Defaults for Options.
const (
	// DefaultCapacity bounds each topic ring's retained event window. A
	// subscriber more than this many events behind a subscribed ring's
	// head resyncs.
	DefaultCapacity = 16384
	// DefaultMaxBatch caps the events handed to one callback invocation.
	DefaultMaxBatch = 256
)

// Options parameterises a Broker.
type Options struct {
	Mode Mode
	// Capacity is the per-ring size (DefaultCapacity when <= 0).
	Capacity int
	// MaxBatch caps one delivery batch (DefaultMaxBatch when <= 0).
	MaxBatch int
	// Topics is the number of per-topic rings; <= 0 means one ring (the
	// single-stream broker).
	Topics int
	// TopicCapacity optionally overrides Capacity per topic ring
	// (entries <= 0 fall back to Capacity).
	TopicCapacity []int
	// Sequenced accepts out-of-rev-order publishes from racing writers,
	// buffering gaps and appending in rev order. Requires dense revs:
	// every allocated rev must eventually be published.
	Sequenced bool
}

// SubscriberStats is the per-subscriber back-pressure accounting.
type SubscriberStats struct {
	// ID is the broker-assigned subscriber identity, stable for the
	// subscription's lifetime — the label telemetry keys per-subscriber
	// lag/resync gauges by.
	ID int64
	// Delivered counts events handed to the callback; Batches the
	// callback invocations (Delivered/Batches is the mean batch size).
	Delivered int64
	Batches   int64
	// MaxBatch is the largest single batch delivered.
	MaxBatch int
	// MaxLag is the largest observed distance (in resource versions)
	// between the newest published event and this subscriber's cursor at
	// the moment a batch was cut — how far behind the consumer ran.
	MaxLag int64
	// Resyncs counts ErrTooOld recoveries through the resync handler.
	Resyncs int64
	// Dropped counts the resource-version span skipped because the
	// subscriber fell off a ring and had no resync handler.
	Dropped int64
}

// TopicStats is the per-ring accounting.
type TopicStats struct {
	Published int64
	Evicted   int64
}

// Stats is the broker-level accounting.
type Stats struct {
	// Published counts events appended across all rings; Evicted those
	// overwritten by ring wrap-around.
	Published int64
	Evicted   int64
	// PerTopic breaks Published/Evicted down by topic ring.
	PerTopic []TopicStats
	// Subscribers is the live subscriber count; PerSubscriber their
	// stats in subscription order.
	Subscribers   int
	PerSubscriber []SubscriberStats
}

// entry is one retained event.
type entry[T any] struct {
	rev int64
	ev  T
}

// ring is one topic's bounded event window. Guarded by the broker
// mutex.
type ring[T any] struct {
	buf      []entry[T]
	capacity int // retention bound; buf grows geometrically up to it
	start    int // index of the oldest retained event
	count    int

	evictedRev int64 // highest rev pushed off this ring
	published  int64
	evicted    int64
}

// append adds one event, growing the buffer geometrically up to the
// ring's capacity and evicting the oldest once that bound is reached.
// Lazy growth keeps a quiet topic's footprint proportional to its
// traffic instead of paying the full window up front: a broker is
// created per server, and preallocating every ring at capacity both
// slows construction and leaves large pointer-bearing arrays live for
// the GC to scan even when a topic never sees more than a handful of
// events.
func (r *ring[T]) append(rev int64, ev T) {
	if r.count == len(r.buf) && r.count < r.capacity {
		n := 2 * len(r.buf)
		if n == 0 {
			n = 64
		}
		if n > r.capacity {
			n = r.capacity
		}
		buf := make([]entry[T], n)
		for i := 0; i < r.count; i++ {
			buf[i] = *r.at(i)
		}
		r.buf, r.start = buf, 0
	}
	if r.count == len(r.buf) {
		old := &r.buf[r.start]
		r.evictedRev = old.rev
		var zero entry[T]
		*old = zero // release the payload to the GC
		r.start = (r.start + 1) % len(r.buf)
		r.count--
		r.evicted++
	}
	r.buf[(r.start+r.count)%len(r.buf)] = entry[T]{rev: rev, ev: ev}
	r.count++
	r.published++
}

// at returns the i-th oldest retained entry.
func (r *ring[T]) at(i int) *entry[T] { return &r.buf[(r.start+i)%len(r.buf)] }

// search returns the smallest ring offset whose event rev exceeds
// afterRev (count when none does). Revisions are strictly increasing
// along the ring, so this is a binary search.
func (r *ring[T]) search(afterRev int64) int {
	lo, hi := 0, r.count
	for lo < hi {
		mid := (lo + hi) / 2
		if r.at(mid).rev > afterRev {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// subStats is the internal per-subscriber accounting. Counters are
// atomics so Stats readers never contend with the delivery path (they
// load without taking the broker mutex for longer than the subscriber
// walk) and so delivery-side increments are race-free with reads.
type subStats struct {
	delivered atomic.Int64
	batches   atomic.Int64
	maxBatch  atomic.Int64
	maxLag    atomic.Int64
	resyncs   atomic.Int64
	dropped   atomic.Int64
}

func (s *subStats) snapshot() SubscriberStats {
	return SubscriberStats{
		Delivered: s.delivered.Load(),
		Batches:   s.batches.Load(),
		MaxBatch:  int(s.maxBatch.Load()),
		MaxLag:    s.maxLag.Load(),
		Resyncs:   s.resyncs.Load(),
		Dropped:   s.dropped.Load(),
	}
}

// subscription is one registered consumer. All fields except stats are
// guarded by the broker mutex; the callback itself runs with the mutex
// released, fenced by the delivering flag.
type subscription[T any] struct {
	id     int64
	cursor int64    // rev of the last event consumed (or start rev)
	topics TopicSet // rings this subscriber merges
	fn     func([]T)
	resync func() int64 // nil: fall forward and count Dropped

	buf   []T   // reused batch buffer; callbacks must not retain it
	heads []int // per-ring merge offsets, reused across batch cuts

	closed      bool
	delivering  bool
	deliverGoid int64 // goroutine running the callback, for re-entrancy

	stats subStats
}

// Broker is a versioned event broker over per-topic fixed-capacity ring
// buffers sharing one resource-version space. The zero value is not
// usable; call New.
type Broker[T any] struct {
	mode      Mode
	maxBatch  int
	sequenced bool

	mu   sync.Mutex
	cond *sync.Cond // broadcast: publish, cursor advance, delivery end, close

	rings []ring[T]

	lastRev int64 // rev of the newest appended event

	// stash holds sequenced publishes that arrived before their
	// predecessors; drained into the rings as gaps fill.
	stash map[int64]stashed[T]

	subs   map[int64]*subscription[T]
	order  []int64 // subscription ids, ascending (= subscription order)
	nextID int64

	// Sync-mode flush state: one flusher drains the rings for everyone;
	// concurrent flushers wait (or return, when called re-entrantly from
	// a delivery callback — the outer flusher picks the new events up).
	flushing    bool
	flusherGoid int64
	lastFlushed int64 // every event <= this was offered to all subscribers

	closed bool
}

// stashed is one out-of-order sequenced publish awaiting its gap.
type stashed[T any] struct {
	topic int
	ev    T
}

// New creates a broker.
func New[T any](opts Options) *Broker[T] {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.Topics <= 0 {
		opts.Topics = 1
	}
	b := &Broker[T]{
		mode:      opts.Mode,
		maxBatch:  opts.MaxBatch,
		sequenced: opts.Sequenced,
		rings:     make([]ring[T], opts.Topics),
		subs:      make(map[int64]*subscription[T]),
	}
	for t := range b.rings {
		c := opts.Capacity
		if t < len(opts.TopicCapacity) && opts.TopicCapacity[t] > 0 {
			c = opts.TopicCapacity[t]
		}
		b.rings[t].capacity = c
	}
	if opts.Sequenced {
		b.stash = make(map[int64]stashed[T])
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Mode returns the delivery mode.
func (b *Broker[T]) Mode() Mode { return b.mode }

// Publish appends one event to topic 0 at the given resource version —
// the single-stream broker's entry point. See PublishTopic.
func (b *Broker[T]) Publish(rev int64, ev T) { b.PublishTopic(0, rev, ev) }

// PublishTopic appends one event to the given topic ring at the given
// resource version. On a non-sequenced broker revisions must be
// strictly increasing across calls — the caller serializes publishes
// (typically by holding its own state lock, which is safe: the append
// is O(1) and never runs subscriber code). On a sequenced broker,
// racing writers may arrive out of order; the event is buffered until
// every lower rev has been published, then appended in rev order. When
// a ring is full its oldest event is evicted; subscribers still needing
// it resync.
func (b *Broker[T]) PublishTopic(topic int, rev int64, ev T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if topic < 0 || topic >= len(b.rings) {
		panic(fmt.Sprintf("watch: PublishTopic topic %d out of range [0,%d)", topic, len(b.rings)))
	}
	if rev <= b.lastRev {
		panic(fmt.Sprintf("watch: Publish rev %d not after %d", rev, b.lastRev))
	}
	if b.sequenced && rev != b.lastRev+1 {
		if _, dup := b.stash[rev]; dup {
			panic(fmt.Sprintf("watch: duplicate sequenced Publish rev %d", rev))
		}
		b.stash[rev] = stashed[T]{topic: topic, ev: ev}
		return
	}
	b.rings[topic].append(rev, ev)
	b.lastRev = rev
	if b.sequenced {
		// Drain any stashed successors whose gap just filled.
		for {
			next, ok := b.stash[b.lastRev+1]
			if !ok {
				break
			}
			delete(b.stash, b.lastRev+1)
			b.lastRev++
			b.rings[next.topic].append(b.lastRev, next.ev)
		}
	}
	b.cond.Broadcast()
}

// Subscribe registers fn for every event on every topic with
// rev > afterRev. See SubscribeTopics.
func (b *Broker[T]) Subscribe(afterRev int64, fn func([]T), resync func() int64) (unsubscribe func()) {
	return b.SubscribeTopics(afterRev, AllTopics, fn, resync)
}

// SubscribeTopics registers fn for every event in the given topic set
// with rev > afterRev, delivered in batches in strict resource-version
// order (merged across the subscribed rings) with no duplicates. The
// batch slice is reused between invocations — callbacks must not retain
// it. resync (optional) is invoked when the subscriber falls off a
// subscribed ring: it must re-prime the consumer from a fresh snapshot
// of the source of truth and return that snapshot's resource version,
// which becomes the new cursor. The returned function unsubscribes; see
// the package comment for its safety guarantees.
func (b *Broker[T]) SubscribeTopics(afterRev int64, topics TopicSet, fn func([]T), resync func() int64) (unsubscribe func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return func() {}
	}
	b.nextID++
	sub := &subscription[T]{
		id:     b.nextID,
		cursor: afterRev,
		topics: topics,
		fn:     fn,
		resync: resync,
		heads:  make([]int, len(b.rings)),
	}
	b.subs[sub.id] = sub
	b.order = append(b.order, sub.id)
	if b.mode == Async {
		go b.pump(sub)
	}
	return func() { b.unsubscribe(sub) }
}

// unsubscribe removes sub and, unless called from inside sub's own
// callback, waits for any in-flight delivery to finish — after it
// returns, no callback for this subscription is running or will run.
func (b *Broker[T]) unsubscribe(sub *subscription[T]) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if sub.closed {
		return
	}
	sub.closed = true
	delete(b.subs, sub.id)
	for i, id := range b.order {
		if id == sub.id {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	b.cond.Broadcast() // wake the pump so it exits
	if sub.delivering && sub.deliverGoid != goid() {
		for sub.delivering {
			b.cond.Wait()
		}
	}
}

// Close shuts the broker down: pumps exit, further publishes and
// subscribes are no-ops. Existing subscriptions are released.
func (b *Broker[T]) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

// LastRev returns the resource version of the newest appended event
// (stashed out-of-order sequenced publishes do not count until their
// gap fills).
func (b *Broker[T]) LastRev() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastRev
}

// EventsSince returns copies of the retained events with rev > afterRev
// across all topics, merged in rev order, or ErrTooOld when that
// interval has been partially evicted from any ring.
func (b *Broker[T]) EventsSince(afterRev int64) ([]T, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var horizon int64
	for t := range b.rings {
		if b.rings[t].evictedRev > horizon {
			horizon = b.rings[t].evictedRev
		}
	}
	if afterRev < horizon {
		return nil, fmt.Errorf("%w: have >= %d, requested > %d", ErrTooOld, horizon, afterRev)
	}
	var merged []entry[T]
	for t := range b.rings {
		r := &b.rings[t]
		for i := r.search(afterRev); i < r.count; i++ {
			merged = append(merged, *r.at(i))
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].rev < merged[j].rev })
	out := make([]T, len(merged))
	for i := range merged {
		out[i] = merged[i].ev
	}
	return out, nil
}

// Stats returns a snapshot of the broker and per-subscriber accounting,
// subscribers in subscription order.
func (b *Broker[T]) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Stats{Subscribers: len(b.subs)}
	for t := range b.rings {
		r := &b.rings[t]
		st.Published += r.published
		st.Evicted += r.evicted
		st.PerTopic = append(st.PerTopic, TopicStats{Published: r.published, Evicted: r.evicted})
	}
	for _, id := range b.order {
		ss := b.subs[id].stats.snapshot()
		ss.ID = id
		st.PerSubscriber = append(st.PerSubscriber, ss)
	}
	return st
}

// Quiesce blocks until every subscriber's cursor has reached every
// event published before the call, no sequenced publish is stashed
// awaiting its gap, and no delivery or flush is in flight — the barrier
// tests and benchmarks use to observe a settled fan-out.
func (b *Broker[T]) Quiesce() {
	b.mu.Lock()
	defer b.mu.Unlock()
	target := b.lastRev
	for {
		settled := !b.flushing && len(b.stash) == 0
		for _, sub := range b.subs {
			if sub.cursor < target || sub.delivering {
				settled = false
				break
			}
		}
		if settled || b.closed {
			return
		}
		b.cond.Wait()
	}
}

// Flush delivers every pending event inline, in resource-version order,
// one batch per subscriber in subscription order. It returns once every
// event published before the call has been offered to all subscribers —
// possibly by a concurrent flusher; only one flusher runs at a time.
// Called re-entrantly from inside a delivery callback (a subscriber
// mutating the source synchronously), it returns immediately: the outer
// flusher's drain loop picks the new events up, so re-entrant mutation
// defers delivery instead of deadlocking. No-op in async mode.
func (b *Broker[T]) Flush() {
	if b.mode != Sync {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	target := b.lastRev
	for b.lastFlushed < target && !b.closed {
		if b.flushing {
			if b.flusherGoid == goid() {
				return
			}
			b.cond.Wait()
			continue
		}
		b.flushing = true
		b.flusherGoid = goid()
		b.drainLocked(b.flusherGoid)
		b.flushing = false
		b.flusherGoid = 0
		b.cond.Broadcast()
	}
}

// drainLocked repeatedly offers pending events to every subscriber until
// all are current (including events published re-entrantly by the
// callbacks themselves). Caller holds b.mu, has claimed the flushing
// flag and passes its own goroutine id (so callbacks are fenced without
// re-deriving it per event); the mutex is released around callbacks.
func (b *Broker[T]) drainLocked(callerGoid int64) {
	for {
		progressed := false
		// Iterate a copy: callbacks may subscribe/unsubscribe, mutating
		// b.order while the mutex is released.
		ids := append([]int64(nil), b.order...)
		for _, id := range ids {
			sub, ok := b.subs[id]
			if !ok || sub.closed || sub.cursor >= b.lastRev {
				continue
			}
			if b.serveLocked(sub, callerGoid) {
				progressed = true
			}
		}
		if !progressed {
			b.lastFlushed = b.lastRev
			return
		}
	}
}

// pump is the async delivery loop for one subscriber.
func (b *Broker[T]) pump(sub *subscription[T]) {
	id := goid() // computed once; fences every callback this pump runs
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for !sub.closed && !b.closed && sub.cursor >= b.lastRev {
			b.cond.Wait()
		}
		if sub.closed || b.closed {
			return
		}
		b.serveLocked(sub, id)
	}
}

// serveLocked moves one subscriber forward: either delivers the next
// batch (merged across its subscribed rings in rev order) or runs its
// too-old recovery. Caller holds b.mu; it is released around the
// callback. Reports whether the cursor advanced.
func (b *Broker[T]) serveLocked(sub *subscription[T], callerGoid int64) bool {
	// The eviction horizon is the newest rev pushed off any subscribed
	// ring: a cursor below it may have missed events.
	var horizon int64
	for t := range b.rings {
		if sub.topics.Has(t) && b.rings[t].evictedRev > horizon {
			horizon = b.rings[t].evictedRev
		}
	}
	if sub.cursor < horizon {
		// Fell off a subscribed ring.
		if sub.resync == nil {
			sub.stats.dropped.Add(horizon - sub.cursor)
			sub.cursor = horizon
			b.cond.Broadcast()
			return true
		}
		sub.stats.resyncs.Add(1)
		before := sub.cursor
		newCursor, ok := b.callLocked(sub, callerGoid, func() int64 { return sub.resync() })
		if !ok {
			return false
		}
		// A correct handler returns its snapshot's rev, which is >= the
		// eviction horizon at snapshot time; if a ring wrapped again
		// during the resync, the next serve detects it and resyncs again.
		if newCursor > sub.cursor {
			sub.cursor = newCursor
		}
		b.cond.Broadcast()
		return sub.cursor > before
	}
	// Cut a batch: k-way merge of the subscribed rings by rev. heads[t]
	// is the next unconsumed offset in ring t (-1: not subscribed).
	for t := range b.rings {
		if sub.topics.Has(t) {
			sub.heads[t] = b.rings[t].search(sub.cursor)
		} else {
			sub.heads[t] = -1
		}
	}
	batch := sub.buf[:0]
	if cap(batch) < b.maxBatch {
		batch = make([]T, 0, b.maxBatch)
	}
	lastDelivered := sub.cursor
	exhausted := false
	for len(batch) < b.maxBatch {
		best := -1
		var bestRev int64
		for t := range b.rings {
			i := sub.heads[t]
			if i < 0 || i >= b.rings[t].count {
				continue
			}
			if e := b.rings[t].at(i); best == -1 || e.rev < bestRev {
				best, bestRev = t, e.rev
			}
		}
		if best == -1 {
			exhausted = true
			break
		}
		batch = append(batch, b.rings[best].at(sub.heads[best]).ev)
		lastDelivered = bestRev
		sub.heads[best]++
	}
	sub.buf = batch
	n := len(batch)
	if n == 0 {
		if sub.cursor < b.lastRev {
			// Nothing in (cursor, lastRev] lands on a subscribed ring;
			// fast-forward so flush/pump/Quiesce see this subscriber as
			// current instead of spinning on foreign-topic events.
			sub.cursor = b.lastRev
			b.cond.Broadcast()
			return true
		}
		return false
	}
	if lag := b.lastRev - sub.cursor; lag > sub.stats.maxLag.Load() {
		sub.stats.maxLag.Store(lag)
	}
	if exhausted {
		// Every subscribed event was consumed; any newer revs are on
		// foreign rings, so the cursor jumps to the head.
		sub.cursor = b.lastRev
	} else {
		sub.cursor = lastDelivered
	}
	if _, ok := b.callLocked(sub, callerGoid, func() int64 { sub.fn(batch); return 0 }); !ok {
		return false
	}
	sub.stats.delivered.Add(int64(n))
	sub.stats.batches.Add(1)
	if int64(n) > sub.stats.maxBatch.Load() {
		sub.stats.maxBatch.Store(int64(n))
	}
	b.cond.Broadcast()
	return true
}

// callLocked runs a subscriber callback (delivery or resync) with the
// mutex released, fenced so unsubscribe can tell an in-flight callback
// from a settled one; callerGoid is the delivering goroutine's id,
// computed once by the pump/flusher rather than per event. Returns
// ok=false when the subscription was closed before the callback could
// start.
func (b *Broker[T]) callLocked(sub *subscription[T], callerGoid int64, f func() int64) (int64, bool) {
	if sub.closed {
		return 0, false
	}
	sub.delivering = true
	sub.deliverGoid = callerGoid
	b.mu.Unlock()
	v := f()
	b.mu.Lock()
	sub.delivering = false
	sub.deliverGoid = 0
	b.cond.Broadcast()
	return v, true
}

// goid returns the current goroutine id (parsed from the runtime stack
// header). Computed once per pump/flush/unsubscribe — never per event.
func goid() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id int64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}
