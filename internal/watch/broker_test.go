package watch

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// intBroker publishes sequential ints whose rev equals the value — the
// simplest model of the apiserver's versioned event stream.
func intBroker(opts Options) (*Broker[int64], func() int64) {
	b := New[int64](opts)
	var mu sync.Mutex
	var rev int64
	publish := func() int64 {
		mu.Lock()
		rev++
		r := rev
		b.Publish(r, r)
		mu.Unlock()
		return r
	}
	return b, publish
}

// checkOrdered fails unless revs are strictly increasing (no duplicate,
// no reordering).
func checkOrdered(t *testing.T, revs []int64, context string) {
	t.Helper()
	for i := 1; i < len(revs); i++ {
		if revs[i] <= revs[i-1] {
			t.Fatalf("%s: rev %d delivered after %d (dup or out of order)", context, revs[i], revs[i-1])
		}
	}
}

func TestSyncDeliveryInOrder(t *testing.T) {
	b, publish := intBroker(Options{Mode: Sync})
	var got1, got2 []int64
	unsub1 := b.Subscribe(0, func(evs []int64) { got1 = append(got1, evs...) }, nil)
	defer unsub1()
	unsub2 := b.Subscribe(0, func(evs []int64) { got2 = append(got2, evs...) }, nil)
	defer unsub2()
	for i := 0; i < 50; i++ {
		publish()
		b.Flush()
	}
	for _, got := range [][]int64{got1, got2} {
		if len(got) != 50 {
			t.Fatalf("delivered %d events, want 50", len(got))
		}
		checkOrdered(t, got, "sync")
	}
	st := b.Stats()
	if st.Published != 50 || st.Subscribers != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubscribeMidStreamSkipsOldEvents(t *testing.T) {
	b, publish := intBroker(Options{Mode: Sync})
	var last int64
	for i := 0; i < 10; i++ {
		last = publish()
	}
	b.Flush()
	var got []int64
	unsub := b.Subscribe(last, func(evs []int64) { got = append(got, evs...) }, nil)
	defer unsub()
	publish()
	publish()
	b.Flush()
	if len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Fatalf("mid-stream subscriber got %v, want [11 12]", got)
	}
}

// TestSyncReentrantPublish: a callback that synchronously mutates the
// source (publish + flush from inside delivery) must not deadlock; the
// outer flusher delivers the event it produced, still in order.
func TestSyncReentrantPublish(t *testing.T) {
	b, publish := intBroker(Options{Mode: Sync})
	var got []int64
	unsub := b.Subscribe(0, func(evs []int64) {
		for _, ev := range evs {
			got = append(got, ev)
			if ev == 1 {
				publish() // re-entrant mutation
				b.Flush() // must return immediately, not self-deadlock
			}
		}
	}, nil)
	defer unsub()
	publish()
	b.Flush()
	if len(got) != 2 {
		t.Fatalf("got %v, want the re-entrantly published event delivered too", got)
	}
	checkOrdered(t, got, "reentrant")
}

func TestUnsubscribeFromInsideCallbackSync(t *testing.T) {
	b, publish := intBroker(Options{Mode: Sync})
	var got []int64
	var unsub func()
	unsub = b.Subscribe(0, func(evs []int64) {
		got = append(got, evs...)
		unsub() // must not deadlock; no further deliveries
	}, nil)
	publish()
	b.Flush()
	publish()
	b.Flush()
	if len(got) != 1 {
		t.Fatalf("got %d events after in-callback unsubscribe, want 1", len(got))
	}
	unsub() // second call is a no-op
}

func TestUnsubscribeFromInsideCallbackAsync(t *testing.T) {
	b, publish := intBroker(Options{Mode: Async, MaxBatch: 1})
	delivered := make(chan int64, 16)
	var unsub func()
	unsub = b.Subscribe(0, func(evs []int64) {
		delivered <- evs[0]
		unsub()
	}, nil)
	publish()
	select {
	case <-delivered:
	case <-time.After(5 * time.Second):
		t.Fatal("first event never delivered")
	}
	publish()
	b.Quiesce() // closed subscription no longer counts
	select {
	case ev := <-delivered:
		t.Fatalf("event %d delivered after in-callback unsubscribe", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestUnsubscribeWaitsForInflightDelivery: an external unsubscribe must
// not return while the subscriber's callback is still running — after
// it returns, no callback is in flight and none will start.
func TestUnsubscribeWaitsForInflightDelivery(t *testing.T) {
	b, publish := intBroker(Options{Mode: Async})
	entered := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	inCallback := false
	unsub := b.Subscribe(0, func(evs []int64) {
		mu.Lock()
		inCallback = true
		mu.Unlock()
		entered <- struct{}{}
		<-release
		mu.Lock()
		inCallback = false
		mu.Unlock()
	}, nil)
	publish()
	<-entered

	done := make(chan struct{})
	go func() {
		unsub()
		mu.Lock()
		defer mu.Unlock()
		if inCallback {
			t.Error("unsubscribe returned while the callback was still running")
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("unsubscribe returned before the in-flight callback finished")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("unsubscribe never returned")
	}
}

// TestUnsubscribeConcurrentWithDeliveryHammer races publishers,
// deliveries and unsubscribes; run under -race this is the regression
// test for the unsubscribe-during-delivery surface.
func TestUnsubscribeConcurrentWithDeliveryHammer(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		b, publish := intBroker(Options{Mode: Async, Capacity: 64, MaxBatch: 4})
		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					publish()
				}
			}
		}()
		var unsubs []func()
		for i := 0; i < 8; i++ {
			var n int64
			unsubs = append(unsubs, b.Subscribe(0, func(evs []int64) { n += int64(len(evs)) }, func() int64 { return b.LastRev() }))
		}
		var uw sync.WaitGroup
		for _, u := range unsubs {
			u := u
			uw.Add(1)
			go func() { defer uw.Done(); u() }()
		}
		uw.Wait()
		close(stop)
		wg.Wait()
		b.Close()
	}
}

func TestAsyncDeliversEverythingBatched(t *testing.T) {
	b, publish := intBroker(Options{Mode: Async, MaxBatch: 32})
	var mu sync.Mutex
	var got []int64
	unsub := b.Subscribe(0, func(evs []int64) {
		time.Sleep(time.Millisecond) // slow consumer: lets batches build up
		mu.Lock()
		got = append(got, evs...)
		mu.Unlock()
	}, nil)
	defer unsub()
	const n = 500
	for i := 0; i < n; i++ {
		publish()
	}
	b.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("delivered %d events, want %d", len(got), n)
	}
	checkOrdered(t, got, "async")
	st := b.Stats()
	sub := st.PerSubscriber[0]
	if sub.Batches >= sub.Delivered {
		t.Fatalf("no batching: %d batches for %d events", sub.Batches, sub.Delivered)
	}
	if sub.MaxBatch < 2 || sub.MaxBatch > 32 {
		t.Fatalf("MaxBatch = %d, want within (1, 32]", sub.MaxBatch)
	}
	if sub.MaxLag <= 0 {
		t.Fatalf("MaxLag = %d, want > 0", sub.MaxLag)
	}
}

// TestOverflowTriggersResync: a subscriber held off the ring past the
// eviction horizon must recover through its resync handler, resume at
// the snapshot rev, and never see an event at or below it (no
// duplicates of resynced state, no gaps after it).
func TestOverflowTriggersResync(t *testing.T) {
	b, publish := intBroker(Options{Mode: Async, Capacity: 8, MaxBatch: 4})
	gate := make(chan struct{})
	var mu sync.Mutex
	var got []int64
	var resyncRevs []int64
	unsub := b.Subscribe(0, func(evs []int64) {
		<-gate // hold the pump until the ring has wrapped
		mu.Lock()
		got = append(got, evs...)
		mu.Unlock()
	}, func() int64 {
		rev := b.LastRev()
		mu.Lock()
		resyncRevs = append(resyncRevs, rev)
		mu.Unlock()
		return rev
	})
	defer unsub()
	var last int64
	for i := 0; i < 100; i++ {
		last = publish()
	}
	close(gate)
	b.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(resyncRevs) == 0 {
		t.Fatal("ring wrapped 12x but no resync happened")
	}
	st := b.Stats().PerSubscriber[0]
	if st.Resyncs != int64(len(resyncRevs)) {
		t.Fatalf("stats.Resyncs = %d, handler ran %d times", st.Resyncs, len(resyncRevs))
	}
	checkOrdered(t, got, "post-resync")
	lastResync := resyncRevs[len(resyncRevs)-1]
	for _, rev := range got {
		if rev <= lastResync && rev > resyncRevs[0] {
			// Events inside a resynced interval may legitimately have
			// been delivered before that resync; what must never happen
			// is delivery at or below the cursor the resync installed.
			continue
		}
	}
	// Everything after the last resync must be complete: contiguous
	// through the final published rev.
	want := lastResync + 1
	for _, rev := range got {
		if rev > lastResync {
			if rev != want {
				t.Fatalf("gap after resync: got rev %d, want %d", rev, want)
			}
			want++
		}
	}
	if want != last+1 {
		t.Fatalf("tail incomplete: delivered through %d, published through %d", want-1, last)
	}
}

// TestOverflowWithoutResyncCountsDropped: no handler means the broker
// falls forward to the oldest retained event and accounts the loss.
func TestOverflowWithoutResyncCountsDropped(t *testing.T) {
	b, publish := intBroker(Options{Mode: Sync, Capacity: 8})
	var got []int64
	unsub := b.Subscribe(0, func(evs []int64) { got = append(got, evs...) }, nil)
	defer unsub()
	// Publish without flushing: the ring wraps while the subscriber
	// starves.
	for i := 0; i < 30; i++ {
		publish()
	}
	b.Flush()
	checkOrdered(t, got, "dropped")
	st := b.Stats().PerSubscriber[0]
	if st.Dropped == 0 {
		t.Fatal("missed interval not accounted in Dropped")
	}
	if int64(len(got))+st.Dropped != 30 {
		t.Fatalf("delivered %d + dropped %d != published 30", len(got), st.Dropped)
	}
}

// TestSyncOverflowResyncsInline: the too-old path works in sync mode
// too (a starved subscriber on a tiny ring).
func TestSyncOverflowResyncsInline(t *testing.T) {
	b, publish := intBroker(Options{Mode: Sync, Capacity: 4})
	var resyncs int
	var got []int64
	unsub := b.Subscribe(0, func(evs []int64) { got = append(got, evs...) }, func() int64 {
		resyncs++
		return b.LastRev()
	})
	defer unsub()
	for i := 0; i < 20; i++ {
		publish()
	}
	b.Flush()
	if resyncs == 0 {
		t.Fatal("no inline resync in sync mode")
	}
	checkOrdered(t, got, "sync-resync")
}

func TestEventsSinceTooOld(t *testing.T) {
	b, publish := intBroker(Options{Mode: Sync, Capacity: 4})
	for i := 0; i < 10; i++ {
		publish()
	}
	if _, err := b.EventsSince(0); !errors.Is(err, ErrTooOld) {
		t.Fatalf("EventsSince(0) error = %v, want ErrTooOld", err)
	}
	evs, err := b.EventsSince(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 || evs[0] != 7 {
		t.Fatalf("EventsSince(6) = %v, want [7 8 9 10]", evs)
	}
	evs, err = b.EventsSince(10)
	if err != nil || len(evs) != 0 {
		t.Fatalf("EventsSince(head) = %v, %v; want empty", evs, err)
	}
}

// TestBrokerPropertyRandom is the ordering/duplication/resync property
// test: random concurrent publishers, consumers of random speeds on a
// tiny ring, every consumer either resyncs (and its reconstructed state
// matches the authoritative publisher state) or accounts every missed
// event in Dropped — and no consumer ever observes a duplicate or
// out-of-order rev.
func TestBrokerPropertyRandom(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		capacity := 4 + rng.Intn(28)
		b := New[int64](Options{Mode: Async, Capacity: capacity, MaxBatch: 1 + rng.Intn(7)})

		// Authoritative state: the sum of all published values; a
		// snapshot is (rev, sum through rev).
		var src struct {
			sync.Mutex
			rev int64
			sum int64
		}
		publish := func() {
			src.Lock()
			src.rev++
			src.sum += src.rev
			b.Publish(src.rev, src.rev)
			src.Unlock()
		}
		snapshot := func() (int64, int64) {
			src.Lock()
			defer src.Unlock()
			return src.rev, src.sum
		}

		type consumer struct {
			mu    sync.Mutex
			sum   int64 // snapshot sum + applied events (rev-gated)
			rev   int64
			order []int64
			delay time.Duration
		}
		const nConsumers = 4
		consumers := make([]*consumer, nConsumers)
		var unsubs []func()
		for ci := 0; ci < nConsumers; ci++ {
			c := &consumer{delay: time.Duration(rng.Intn(300)) * time.Microsecond}
			consumers[ci] = c
			unsubs = append(unsubs, b.Subscribe(0, func(evs []int64) {
				time.Sleep(c.delay)
				c.mu.Lock()
				for _, rev := range evs {
					c.order = append(c.order, rev)
					if rev > c.rev { // rev gate, as the cluster cache applies it
						c.sum += rev
						c.rev = rev
					}
				}
				c.mu.Unlock()
			}, func() int64 {
				rev, sum := snapshot()
				c.mu.Lock()
				c.rev, c.sum = rev, sum
				c.mu.Unlock()
				return rev
			}))
		}

		var wg sync.WaitGroup
		for p := 0; p < 3; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 150; i++ {
					publish()
				}
			}()
		}
		wg.Wait()
		b.Quiesce()

		_, wantSum := snapshot()
		for ci, c := range consumers {
			c.mu.Lock()
			checkOrdered(t, c.order, fmt.Sprintf("trial %d consumer %d", trial, ci))
			if c.sum != wantSum {
				t.Fatalf("trial %d consumer %d reconstructed sum %d, want %d (resync broken)",
					trial, ci, c.sum, wantSum)
			}
			c.mu.Unlock()
		}
		for _, u := range unsubs {
			u()
		}
		b.Close()
	}
}

// TestQuiesceIdleReturns: Quiesce on an idle broker must not block.
func TestQuiesceIdleReturns(t *testing.T) {
	b, publish := intBroker(Options{Mode: Async})
	done := make(chan struct{})
	go func() { b.Quiesce(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Quiesce blocked on an idle broker")
	}
	unsub := b.Subscribe(0, func([]int64) {}, nil)
	defer unsub()
	publish()
	b.Quiesce()
	if st := b.Stats().PerSubscriber[0]; st.Delivered != 1 {
		t.Fatalf("after Quiesce, Delivered = %d, want 1", st.Delivered)
	}
}
