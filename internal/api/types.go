// Package api defines the Kubernetes-like object model the orchestrator
// substrate exposes: nodes, pods, resource requirements and lifecycle
// phases. The paper's components interact with Kubernetes exclusively
// through its public API (§V); this package is that API surface.
package api

import (
	"fmt"
	"time"

	"github.com/sgxorch/sgxorch/internal/resource"
)

// PodPhase is the coarse lifecycle state of a pod.
type PodPhase string

// Pod phases, mirroring Kubernetes semantics.
const (
	// PodPending: accepted by the API server, waiting in the scheduler
	// queue or being started by a kubelet.
	PodPending PodPhase = "Pending"
	// PodRunning: the workload has been launched on a node.
	PodRunning PodPhase = "Running"
	// PodSucceeded: the workload finished normally.
	PodSucceeded PodPhase = "Succeeded"
	// PodFailed: the workload was denied or killed (e.g. enclave init
	// denial under EPC limit enforcement, §V-D).
	PodFailed PodPhase = "Failed"
)

// WorkloadKind selects the simulated container behaviour, standing in for
// the container images of §VI-C.
type WorkloadKind int

// Workload kinds.
const (
	// WorkloadSleep does nothing for the duration (control workload).
	WorkloadSleep WorkloadKind = iota + 1
	// WorkloadStressVM allocates standard virtual memory, like
	// STRESS-NG's vm stressor (§VI-C).
	WorkloadStressVM
	// WorkloadStressEPC allocates EPC pages inside an enclave, like
	// STRESS-SGX's EPC stressor (§VI-C).
	WorkloadStressEPC
	// WorkloadStressEPCDynamic is the SGX 2 variant (§VI-G): it commits a
	// baseline at startup, bursts to the full allocation mid-run via
	// dynamic EPC allocation, and trims back before finishing. It
	// requires SGX 2-capable nodes.
	WorkloadStressEPCDynamic
)

// String renders the workload kind.
func (k WorkloadKind) String() string {
	switch k {
	case WorkloadSleep:
		return "sleep"
	case WorkloadStressVM:
		return "stress-vm"
	case WorkloadStressEPC:
		return "stress-epc"
	case WorkloadStressEPCDynamic:
		return "stress-epc-dynamic"
	default:
		return fmt.Sprintf("WorkloadKind(%d)", int(k))
	}
}

// WorkloadSpec describes what the simulated container does once started.
type WorkloadSpec struct {
	Kind WorkloadKind
	// Duration is the useful runtime from the trace; total pod runtime
	// additionally includes SGX startup latency (§VI-D).
	Duration time.Duration
	// AllocBytes is the memory the workload actually allocates — the
	// trace's "maximal memory usage", which may legitimately differ from
	// the advertised request ("the job will allocate the amount given in
	// the maximal memory usage field", §VI-B). For dynamic EPC workloads
	// this is the burst peak.
	AllocBytes int64
	// BaseBytes is the steady-state allocation of dynamic EPC workloads
	// (defaults to half of AllocBytes when zero). Ignored by the other
	// kinds.
	BaseBytes int64
}

// WorkloadClass partitions pods into scheduling classes. A class selects
// the scheduling profile a pending pod is routed through — plugins, score
// weights, candidate-sampling bounds and preemption eligibility — without
// changing what the pod runs. The empty class is the default: such pods
// take the scheduler's single configured pipeline, exactly as before
// classes existed.
type WorkloadClass string

// The workload classes.
const (
	// ClassUnspecified routes the pod through the scheduler's default
	// pipeline — bit-identical to the pre-class behaviour.
	ClassUnspecified WorkloadClass = ""
	// ClassLatencySensitive marks serving-style jobs that must start
	// fast: they may preempt lower tiers and their candidate search is
	// never sampled below a raised feasibility floor.
	ClassLatencySensitive WorkloadClass = "latency-sensitive"
	// ClassBatch marks throughput-style jobs (training, MPI ranks): they
	// bin-pack to preserve contiguous headroom and carry gang support.
	ClassBatch WorkloadClass = "batch"
	// ClassBestEffort marks preemptible filler: it spreads across the
	// fleet, never preempts anything, and is always preemption-eligible —
	// a higher class may evict it regardless of priority tiers.
	ClassBestEffort WorkloadClass = "best-effort"
)

// Known reports whether c is one of the three defined classes (the empty
// unspecified class is not "known": it names the absence of a class).
func (c WorkloadClass) Known() bool {
	switch c {
	case ClassLatencySensitive, ClassBatch, ClassBestEffort:
		return true
	}
	return false
}

// Requirements carries the user-declared resource requests and limits
// (§V-A: "end-users must declare that their SGX-enabled pods use some
// amount of the SGX resource" via requests and limits).
type Requirements struct {
	Requests resource.List
	Limits   resource.List
}

// Clone deep-copies the requirements.
func (r Requirements) Clone() Requirements {
	return Requirements{Requests: r.Requests.Clone(), Limits: r.Limits.Clone()}
}

// Container is one container of a pod.
type Container struct {
	Name      string
	Image     string
	Resources Requirements
	Workload  WorkloadSpec
}

// PodSpec is the user-provided part of a pod.
type PodSpec struct {
	// SchedulerName selects which of the concurrently deployed schedulers
	// handles this pod (§V-B: "each pod deployed to the cluster can
	// specify which scheduler it requires").
	SchedulerName string
	// NodeName is set by a scheduler binding.
	NodeName   string
	Containers []Container
	// Priority orders the pending queue (higher schedules first; FCFS
	// within a tier) and gates preemption: a pod may only evict strictly
	// lower-priority pods, and equal priorities never preempt each other.
	// The zero value is the default tier, mirroring Kubernetes'
	// PriorityClass semantics.
	Priority int32
	// PodGroup names the gang this pod belongs to. Members of one group
	// schedule all-or-nothing: they hold conditional permits instead of
	// binding individually, commit together once MinMember of them hold
	// permits, and are preempted as a unit (a whole gang is evicted or
	// none of it). Empty means the pod schedules alone — the default.
	// Members of one gang should share a Priority: the pending queue only
	// coalesces gang members within a priority tier.
	PodGroup string
	// MinMember is the gang quorum: how many members must hold permits
	// before any of them binds (distributed training/MPI jobs deadlock
	// under partial placement). Meaningful only when PodGroup is set;
	// values below 1 are treated as 1.
	MinMember int
	// Class is the pod's explicit workload class. When set to a known
	// class, a class-aware scheduler routes the pod through that class's
	// profile; the empty (or unknown) value leaves classification to the
	// scheduler's classifier — or, with inference off, to the default
	// pipeline. The explicit class is also what marks a bound pod
	// always-preemptible (best-effort): eviction eligibility must be
	// deterministic cluster-wide, so it keys off this declared field,
	// never off per-scheduler inference.
	Class WorkloadClass
}

// Classified reports whether the pod declares a known workload class.
func (s *PodSpec) Classified() bool { return s.Class.Known() }

// WorkloadClass returns the declared class, folding unknown strings into
// ClassUnspecified so downstream consumers only ever see the four defined
// values.
func (s *PodSpec) WorkloadClass() WorkloadClass {
	if s.Class.Known() {
		return s.Class
	}
	return ClassUnspecified
}

// InGang reports whether the pod schedules as part of a pod group.
func (s *PodSpec) InGang() bool { return s.PodGroup != "" }

// GangMinMember returns the effective quorum (floored at 1) for gang
// pods, and 0 for solo pods.
func (s *PodSpec) GangMinMember() int {
	if s.PodGroup == "" {
		return 0
	}
	if s.MinMember < 1 {
		return 1
	}
	return s.MinMember
}

// PodStatus is the system-maintained part of a pod.
type PodStatus struct {
	Phase   PodPhase
	Reason  string
	Message string

	// SubmittedAt is when the API server accepted the pod.
	SubmittedAt time.Time
	// ScheduledAt is when a scheduler bound the pod to a node.
	ScheduledAt time.Time
	// StartedAt is when the kubelet launched the workload. The paper's
	// "waiting time" is StartedAt - SubmittedAt (§VI-E).
	StartedAt time.Time
	// FinishedAt is when the workload terminated. The paper's
	// "turnaround time" is FinishedAt - SubmittedAt (§VI-E).
	FinishedAt time.Time
}

// Pod is a schedulable unit (one or more co-located containers).
type Pod struct {
	Name   string
	UID    string
	Labels map[string]string
	Spec   PodSpec
	Status PodStatus
}

// CgroupPath derives the pod's cgroup path, the identifier shared by
// Kubelet and the SGX driver for limit enforcement (§V-D: "all containers
// in a pod share the same cgroup path, but distinct pods use different
// ones; the path is available before containers actually start").
func (p *Pod) CgroupPath() string {
	id := p.UID
	if id == "" {
		id = p.Name
	}
	return "/kubepods/pod-" + id
}

// TotalRequests sums resource requests across containers.
func (p *Pod) TotalRequests() resource.List {
	total := make(resource.List, 2)
	for _, c := range p.Spec.Containers {
		total.AddInPlace(c.Resources.Requests)
	}
	return total
}

// TotalLimits sums resource limits across containers.
func (p *Pod) TotalLimits() resource.List {
	total := make(resource.List, 2)
	for _, c := range p.Spec.Containers {
		total.AddInPlace(c.Resources.Limits)
	}
	return total
}

// IsSGX reports whether the pod requests any share of the EPC resource,
// which is how the stack distinguishes SGX-enabled jobs (§V-A). It is
// called per pod per scheduling pass, so it avoids materialising the
// request sum.
func (p *Pod) IsSGX() bool {
	for _, c := range p.Spec.Containers {
		if c.Resources.Requests.Get(resource.EPCPages) > 0 {
			return true
		}
	}
	return false
}

// IsTerminal reports whether the pod reached a final phase.
func (p *Pod) IsTerminal() bool {
	return p.Status.Phase == PodSucceeded || p.Status.Phase == PodFailed
}

// WaitingTime returns the paper's §VI-E waiting time: submission to
// workload start. It returns (0, false) until the pod has started.
func (p *Pod) WaitingTime() (time.Duration, bool) {
	if p.Status.StartedAt.IsZero() {
		return 0, false
	}
	return p.Status.StartedAt.Sub(p.Status.SubmittedAt), true
}

// TurnaroundTime returns the paper's §VI-E turnaround time: submission to
// termination. It returns (0, false) until the pod is terminal.
func (p *Pod) TurnaroundTime() (time.Duration, bool) {
	if p.Status.FinishedAt.IsZero() {
		return 0, false
	}
	return p.Status.FinishedAt.Sub(p.Status.SubmittedAt), true
}

// Clone deep-copies the pod.
func (p *Pod) Clone() *Pod {
	out := *p
	out.Labels = cloneStringMap(p.Labels)
	out.Spec.Containers = make([]Container, len(p.Spec.Containers))
	for i, c := range p.Spec.Containers {
		cc := c
		cc.Resources = c.Resources.Clone()
		out.Spec.Containers[i] = cc
	}
	return &out
}

// Node is one cluster machine as seen by the orchestrator.
type Node struct {
	Name   string
	Labels map[string]string
	// Capacity is the node's total resources; Allocatable is what pods
	// may consume. The device plugin extends Allocatable with one item
	// per EPC page (§V-A).
	Capacity    resource.List
	Allocatable resource.List
	// Unschedulable excludes the node from scheduling (the Kubernetes
	// master in the paper's testbed runs no jobs, §VI-A).
	Unschedulable bool
	Ready         bool
}

// HasSGX reports whether the node advertises EPC page resources.
func (n *Node) HasSGX() bool {
	return n.Allocatable.Get(resource.EPCPages) > 0
}

// Clone deep-copies the node.
func (n *Node) Clone() *Node {
	out := *n
	out.Labels = cloneStringMap(n.Labels)
	out.Capacity = n.Capacity.Clone()
	out.Allocatable = n.Allocatable.Clone()
	return &out
}

func cloneStringMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Event records a cluster occurrence for observability.
type Event struct {
	Time    time.Time
	Object  string // e.g. "pod/job-42", "node/sgx-1"
	Reason  string
	Message string
}
