package api

import (
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/resource"
)

func samplePod() *Pod {
	return &Pod{
		Name: "job-1",
		UID:  "uid-1",
		Spec: PodSpec{
			SchedulerName: "sgx-binpack",
			Containers: []Container{
				{
					Name:  "main",
					Image: "sebvaucher/sgx-base:latest",
					Resources: Requirements{
						Requests: resource.List{resource.Memory: 100, resource.EPCPages: 10},
						Limits:   resource.List{resource.Memory: 100, resource.EPCPages: 10},
					},
					Workload: WorkloadSpec{Kind: WorkloadStressEPC, Duration: time.Minute, AllocBytes: 40960},
				},
				{
					Name:      "sidecar",
					Resources: Requirements{Requests: resource.List{resource.Memory: 50}},
				},
			},
		},
	}
}

func TestPodAggregates(t *testing.T) {
	p := samplePod()
	req := p.TotalRequests()
	if req[resource.Memory] != 150 || req[resource.EPCPages] != 10 {
		t.Fatalf("TotalRequests = %v", req)
	}
	lim := p.TotalLimits()
	if lim[resource.Memory] != 100 || lim[resource.EPCPages] != 10 {
		t.Fatalf("TotalLimits = %v", lim)
	}
	if !p.IsSGX() {
		t.Fatal("pod with EPC request should be SGX")
	}
	p2 := &Pod{Spec: PodSpec{Containers: []Container{{
		Resources: Requirements{Requests: resource.List{resource.Memory: 1}},
	}}}}
	if p2.IsSGX() {
		t.Fatal("pod without EPC request reported as SGX")
	}
}

func TestCgroupPath(t *testing.T) {
	p := samplePod()
	if got := p.CgroupPath(); got != "/kubepods/pod-uid-1" {
		t.Fatalf("CgroupPath = %q", got)
	}
	anon := &Pod{Name: "x"}
	if got := anon.CgroupPath(); got != "/kubepods/pod-x" {
		t.Fatalf("CgroupPath without UID = %q", got)
	}
	// Distinct pods get distinct paths (§V-D requirement ii).
	q := samplePod()
	q.UID = "uid-2"
	if p.CgroupPath() == q.CgroupPath() {
		t.Fatal("distinct pods share a cgroup path")
	}
}

func TestPhaseAndTimes(t *testing.T) {
	p := samplePod()
	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	p.Status.SubmittedAt = base
	if _, ok := p.WaitingTime(); ok {
		t.Fatal("WaitingTime available before start")
	}
	if _, ok := p.TurnaroundTime(); ok {
		t.Fatal("TurnaroundTime available before finish")
	}
	p.Status.StartedAt = base.Add(30 * time.Second)
	w, ok := p.WaitingTime()
	if !ok || w != 30*time.Second {
		t.Fatalf("WaitingTime = %v, %v", w, ok)
	}
	p.Status.FinishedAt = base.Add(90 * time.Second)
	tt, ok := p.TurnaroundTime()
	if !ok || tt != 90*time.Second {
		t.Fatalf("TurnaroundTime = %v, %v", tt, ok)
	}
	if p.IsTerminal() {
		t.Fatal("pod without terminal phase reported terminal")
	}
	p.Status.Phase = PodSucceeded
	if !p.IsTerminal() {
		t.Fatal("succeeded pod not terminal")
	}
	p.Status.Phase = PodFailed
	if !p.IsTerminal() {
		t.Fatal("failed pod not terminal")
	}
}

func TestPodCloneIsDeep(t *testing.T) {
	p := samplePod()
	p.Labels = map[string]string{"a": "1"}
	c := p.Clone()
	c.Labels["a"] = "2"
	c.Spec.Containers[0].Resources.Requests[resource.Memory] = 999
	c.Spec.Containers[0].Name = "changed"
	if p.Labels["a"] != "1" {
		t.Fatal("labels aliased")
	}
	if p.Spec.Containers[0].Resources.Requests[resource.Memory] != 100 {
		t.Fatal("requests aliased")
	}
	if p.Spec.Containers[0].Name != "main" {
		t.Fatal("containers aliased")
	}
}

func TestNodeHasSGXAndClone(t *testing.T) {
	n := &Node{
		Name:        "sgx-1",
		Capacity:    resource.List{resource.Memory: 8 * resource.GiB, resource.EPCPages: 23936},
		Allocatable: resource.List{resource.Memory: 8 * resource.GiB, resource.EPCPages: 23936},
		Ready:       true,
	}
	if !n.HasSGX() {
		t.Fatal("SGX node not detected")
	}
	plain := &Node{Name: "std-1", Allocatable: resource.List{resource.Memory: 64 * resource.GiB}}
	if plain.HasSGX() {
		t.Fatal("non-SGX node detected as SGX")
	}
	c := n.Clone()
	c.Allocatable[resource.EPCPages] = 0
	if !n.HasSGX() {
		t.Fatal("clone aliased allocatable")
	}
}

func TestWorkloadKindString(t *testing.T) {
	if WorkloadSleep.String() != "sleep" ||
		WorkloadStressVM.String() != "stress-vm" ||
		WorkloadStressEPC.String() != "stress-epc" {
		t.Fatal("workload kind strings wrong")
	}
	if WorkloadKind(99).String() != "WorkloadKind(99)" {
		t.Fatal("unknown kind string wrong")
	}
}
