package influxql

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// ErrUnknownField is returned when the aggregation argument does not
// match the source's field name.
var ErrUnknownField = errors.New("influxql: unknown field")

// Row is one output row of a query: the grouping tags and the aggregated
// value under the projected column name.
type Row struct {
	Tags  map[string]string
	Field string
	Value float64
}

// Result is the ordered output of a query execution.
type Result struct {
	Rows []Row
}

// ValueByTag returns a map from the given tag's value to the row value —
// convenient for per-node lookups ("GROUP BY nodename").
func (r Result) ValueByTag(tag string) map[string]float64 {
	out := make(map[string]float64, len(r.Rows))
	for _, row := range r.Rows {
		out[row.Tags[tag]] = row.Value
	}
	return out
}

// Execute parses and runs a query against the database.
func Execute(db *tsdb.DB, query string) (Result, error) {
	q, err := Parse(query)
	if err != nil {
		return Result{}, err
	}
	return Run(db, q)
}

// Run executes a parsed query against the database.
//
// Execution is streaming: raw-measurement sources are read through the
// tsdb windowed scan with the time predicates pushed down as the scan
// bounds, tag predicates evaluated once per series, and the remaining
// point predicates applied as points flow into per-group running
// aggregates. A query therefore allocates O(groups), never O(points).
func Run(db *tsdb.DB, q *Query) (Result, error) {
	agg := newAggregator(q)
	if q.Source.Sub != nil {
		if err := runSub(db, q, agg); err != nil {
			return Result{}, err
		}
		return agg.result()
	}
	if err := runScan(db, q, agg); err != nil {
		return Result{}, err
	}
	return agg.result()
}

// runSub evaluates a subquery source: every inner row becomes one sample
// stamped at now(), filtered by the outer WHERE and folded into agg.
func runSub(db *tsdb.DB, q *Query, agg *aggregator) error {
	inner, err := Run(db, q.Source.Sub)
	if err != nil {
		return err
	}
	now := db.Now()
	for _, row := range inner.Rows {
		keep := true
		for _, c := range q.Where {
			ok, err := evalRowCondition(c, row, now)
			if err != nil {
				return err
			}
			if !ok {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		if row.Field != q.Field.Arg {
			return fmt.Errorf("%w: %q (source provides %q)", ErrUnknownField, q.Field.Arg, row.Field)
		}
		agg.observe(tsdb.Tags(row.Tags), now, row.Value)
	}
	return nil
}

// runScan evaluates a raw-measurement source through the tsdb scan.
func runScan(db *tsdb.DB, q *Query, agg *aggregator) error {
	now := db.Now()
	from, to, residual, empty, err := pushdownWindow(q.Where, now)
	if err != nil {
		return err
	}
	if empty {
		return nil
	}
	var scanErr error
	db.Scan(q.Source.Measurement, from, to, func(tags tsdb.Tags, pts []tsdb.Point) bool {
		for _, c := range residual {
			if !c.IsTag {
				continue
			}
			v := tags[c.Subject]
			if keep := (c.Op == OpEq) == (v == c.Str); !keep {
				return true // next series
			}
		}
		var g *groupState
		for i := range pts {
			p := &pts[i]
			keep := true
			for _, c := range residual {
				switch {
				case c.IsTag:
					// Handled once per series above.
				case c.IsTime:
					ok, err := compareTime(p.Time, c.Op, now.Add(-c.Offset))
					if err != nil {
						scanErr = err
						return false
					}
					keep = keep && ok
				default:
					if c.Subject != "value" {
						scanErr = fmt.Errorf("%w: %q (source provides %q)", ErrUnknownField, c.Subject, "value")
						return false
					}
					ok, err := compareFloat(p.Value, c.Op, c.Number)
					if err != nil {
						scanErr = err
						return false
					}
					keep = keep && ok
				}
				if !keep {
					break
				}
			}
			if !keep {
				continue
			}
			if q.Field.Arg != "value" {
				scanErr = fmt.Errorf("%w: %q (source provides %q)", ErrUnknownField, q.Field.Arg, "value")
				return false
			}
			if g == nil {
				g = agg.group(tags) // one key build + lookup per series
			}
			g.observe(p.Time, p.Value)
		}
		return true
	})
	return scanErr
}

// pushdownWindow folds range-style time conditions into inclusive scan
// bounds [from, to] (zero = unbounded) and returns the conditions that
// still need per-series or per-point evaluation. empty reports a
// provably empty window (from after to).
func pushdownWindow(conds []Condition, now time.Time) (from, to time.Time, residual []Condition, empty bool, err error) {
	tightenFrom := func(t time.Time) {
		if from.IsZero() || t.After(from) {
			from = t
		}
	}
	tightenTo := func(t time.Time) {
		if to.IsZero() || t.Before(to) {
			to = t
		}
	}
	for _, c := range conds {
		if !c.IsTime {
			residual = append(residual, c)
			continue
		}
		threshold := now.Add(-c.Offset)
		switch c.Op {
		case OpGte:
			tightenFrom(threshold)
		case OpGt:
			tightenFrom(threshold.Add(time.Nanosecond))
		case OpLte:
			tightenTo(threshold)
		case OpLt:
			tightenTo(threshold.Add(-time.Nanosecond))
		case OpEq:
			tightenFrom(threshold)
			tightenTo(threshold)
		case OpNeq:
			residual = append(residual, c)
		default:
			return from, to, nil, false, fmt.Errorf("influxql: unsupported time operator %q", c.Op)
		}
	}
	if !from.IsZero() && !to.IsZero() && from.After(to) {
		return from, to, nil, true, nil
	}
	return from, to, residual, false, nil
}

// evalRowCondition applies one WHERE conjunct to a subquery output row
// (whose implicit timestamp is now()).
func evalRowCondition(c Condition, row Row, now time.Time) (bool, error) {
	switch {
	case c.IsTime:
		return compareTime(now, c.Op, now.Add(-c.Offset))
	case c.IsTag:
		v := row.Tags[c.Subject]
		if c.Op == OpEq {
			return v == c.Str, nil
		}
		return v != c.Str, nil
	default:
		if c.Subject != row.Field {
			return false, fmt.Errorf("%w: %q (source provides %q)", ErrUnknownField, c.Subject, row.Field)
		}
		return compareFloat(row.Value, c.Op, c.Number)
	}
}

func compareTime(t time.Time, op CompareOp, threshold time.Time) (bool, error) {
	switch op {
	case OpGte:
		return !t.Before(threshold), nil
	case OpGt:
		return t.After(threshold), nil
	case OpLte:
		return !t.After(threshold), nil
	case OpLt:
		return t.Before(threshold), nil
	case OpEq:
		return t.Equal(threshold), nil
	case OpNeq:
		return !t.Equal(threshold), nil
	default:
		return false, fmt.Errorf("influxql: unsupported time operator %q", op)
	}
}

func compareFloat(v float64, op CompareOp, x float64) (bool, error) {
	switch op {
	case OpEq:
		return v == x, nil
	case OpNeq:
		return v != x, nil
	case OpGt:
		return v > x, nil
	case OpGte:
		return v >= x, nil
	case OpLt:
		return v < x, nil
	case OpLte:
		return v <= x, nil
	default:
		return false, fmt.Errorf("influxql: unsupported operator %q", op)
	}
}

// aggregator folds samples into per-group running state so memory stays
// proportional to the number of output rows.
type aggregator struct {
	q      *Query
	groups map[string]*groupState
}

// groupState carries every running statistic any supported aggregation
// needs; fold picks the right one at result time.
type groupState struct {
	tags     tsdb.Tags
	count    int64
	sum      float64
	max      float64
	min      float64
	last     float64
	lastTime time.Time
}

func newAggregator(q *Query) *aggregator {
	return &aggregator{q: q, groups: make(map[string]*groupState)}
}

// group resolves (or creates) the group for a tag set.
func (a *aggregator) group(tags tsdb.Tags) *groupState {
	key := groupKey(a.q.GroupBy, tags)
	g, ok := a.groups[key]
	if !ok {
		g = &groupState{tags: projectTags(a.q.GroupBy, tags)}
		a.groups[key] = g
	}
	return g
}

// observe folds one sample into the group for its tags.
func (a *aggregator) observe(tags tsdb.Tags, t time.Time, v float64) {
	a.group(tags).observe(t, v)
}

// observe folds one sample into the running state. The first sample
// seeds LAST; afterwards a strictly later timestamp wins, matching
// InfluxQL's LAST over unordered inputs.
func (g *groupState) observe(t time.Time, v float64) {
	g.count++
	if g.count == 1 {
		g.sum, g.max, g.min, g.last, g.lastTime = v, v, v, v, t
		return
	}
	g.sum += v
	if v > g.max {
		g.max = v
	}
	if v < g.min {
		g.min = v
	}
	if t.After(g.lastTime) {
		g.last, g.lastTime = v, t
	}
}

// result renders the groups as rows ordered by group key.
func (a *aggregator) result() (Result, error) {
	keys := make([]string, 0, len(a.groups))
	for k := range a.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	res := Result{Rows: make([]Row, 0, len(keys))}
	for _, k := range keys {
		g := a.groups[k]
		v, err := g.fold(a.q.Field.Func)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, Row{
			Tags:  g.tags,
			Field: a.q.Field.OutName(),
			Value: v,
		})
	}
	return res, nil
}

func (g *groupState) fold(fn AggFunc) (float64, error) {
	switch fn {
	case AggSum:
		return g.sum, nil
	case AggMax:
		return g.max, nil
	case AggMin:
		return g.min, nil
	case AggMean:
		return g.sum / float64(g.count), nil
	case AggCount:
		return float64(g.count), nil
	case AggLast:
		return g.last, nil
	default:
		return 0, fmt.Errorf("influxql: unsupported aggregation %q", fn)
	}
}

func groupKey(groupBy []string, tags tsdb.Tags) string {
	if len(groupBy) == 0 {
		return ""
	}
	parts := make([]string, 0, len(groupBy))
	for _, k := range groupBy {
		parts = append(parts, k+"="+tags[k])
	}
	return strings.Join(parts, "\x00")
}

func projectTags(groupBy []string, tags tsdb.Tags) tsdb.Tags {
	out := make(tsdb.Tags, len(groupBy))
	for _, k := range groupBy {
		out[k] = tags[k]
	}
	return out
}
