package influxql

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// ErrUnknownField is returned when the aggregation argument does not
// match the source's field name.
var ErrUnknownField = errors.New("influxql: unknown field")

// Row is one output row of a query: the grouping tags and the aggregated
// value under the projected column name.
type Row struct {
	Tags  map[string]string
	Field string
	Value float64
}

// Result is the ordered output of a query execution.
type Result struct {
	Rows []Row
}

// ValueByTag returns a map from the given tag's value to the row value —
// convenient for per-node lookups ("GROUP BY nodename").
func (r Result) ValueByTag(tag string) map[string]float64 {
	out := make(map[string]float64, len(r.Rows))
	for _, row := range r.Rows {
		out[row.Tags[tag]] = row.Value
	}
	return out
}

// Execute parses and runs a query against the database.
func Execute(db *tsdb.DB, query string) (Result, error) {
	q, err := Parse(query)
	if err != nil {
		return Result{}, err
	}
	return Run(db, q)
}

// sample is the internal unit flowing between query stages: a tagged,
// timestamped value under a field name.
type sample struct {
	tags  tsdb.Tags
	time  time.Time
	field string
	value float64
}

// Run executes a parsed query against the database.
func Run(db *tsdb.DB, q *Query) (Result, error) {
	samples, err := evalSource(db, q.Source)
	if err != nil {
		return Result{}, err
	}
	samples, err = applyWhere(db, q.Where, samples)
	if err != nil {
		return Result{}, err
	}
	return aggregate(q, samples)
}

func evalSource(db *tsdb.DB, src Source) ([]sample, error) {
	if src.Sub != nil {
		inner, err := Run(db, src.Sub)
		if err != nil {
			return nil, err
		}
		now := db.Now()
		out := make([]sample, 0, len(inner.Rows))
		for _, row := range inner.Rows {
			out = append(out, sample{
				tags:  tsdb.Tags(row.Tags).Clone(),
				time:  now,
				field: row.Field,
				value: row.Value,
			})
		}
		return out, nil
	}
	var out []sample
	for _, s := range db.Series(src.Measurement) {
		for _, p := range s.Points {
			out = append(out, sample{
				tags:  s.Tags,
				time:  p.Time,
				field: "value",
				value: p.Value,
			})
		}
	}
	return out, nil
}

func applyWhere(db *tsdb.DB, conds []Condition, in []sample) ([]sample, error) {
	if len(conds) == 0 {
		return in, nil
	}
	now := db.Now()
	out := in[:0]
	for _, s := range in {
		keep := true
		for _, c := range conds {
			ok, err := evalCondition(c, s, now)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, s)
		}
	}
	return out, nil
}

func evalCondition(c Condition, s sample, now time.Time) (bool, error) {
	switch {
	case c.IsTime:
		threshold := now.Add(-c.Offset)
		return compareTime(s.time, c.Op, threshold)
	case c.IsTag:
		v := s.tags[c.Subject]
		if c.Op == OpEq {
			return v == c.Str, nil
		}
		return v != c.Str, nil
	default:
		if c.Subject != s.field {
			return false, fmt.Errorf("%w: %q (source provides %q)", ErrUnknownField, c.Subject, s.field)
		}
		return compareFloat(s.value, c.Op, c.Number)
	}
}

func compareTime(t time.Time, op CompareOp, threshold time.Time) (bool, error) {
	switch op {
	case OpGte:
		return !t.Before(threshold), nil
	case OpGt:
		return t.After(threshold), nil
	case OpLte:
		return !t.After(threshold), nil
	case OpLt:
		return t.Before(threshold), nil
	case OpEq:
		return t.Equal(threshold), nil
	case OpNeq:
		return !t.Equal(threshold), nil
	default:
		return false, fmt.Errorf("influxql: unsupported time operator %q", op)
	}
}

func compareFloat(v float64, op CompareOp, x float64) (bool, error) {
	switch op {
	case OpEq:
		return v == x, nil
	case OpNeq:
		return v != x, nil
	case OpGt:
		return v > x, nil
	case OpGte:
		return v >= x, nil
	case OpLt:
		return v < x, nil
	case OpLte:
		return v <= x, nil
	default:
		return false, fmt.Errorf("influxql: unsupported operator %q", op)
	}
}

// aggregate groups samples by the GROUP BY tags and folds each group with
// the aggregation function.
func aggregate(q *Query, samples []sample) (Result, error) {
	type group struct {
		tags   tsdb.Tags
		values []float64
		last   sample
	}
	groups := make(map[string]*group)
	for _, s := range samples {
		if s.field != q.Field.Arg {
			return Result{}, fmt.Errorf("%w: %q (source provides %q)",
				ErrUnknownField, q.Field.Arg, s.field)
		}
		key := groupKey(q.GroupBy, s.tags)
		g, ok := groups[key]
		if !ok {
			g = &group{tags: projectTags(q.GroupBy, s.tags)}
			groups[key] = g
		}
		g.values = append(g.values, s.value)
		if s.time.After(g.last.time) || len(g.values) == 1 {
			g.last = s
		}
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	res := Result{Rows: make([]Row, 0, len(keys))}
	for _, k := range keys {
		g := groups[k]
		v, err := fold(q.Field.Func, g.values, g.last.value)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, Row{
			Tags:  g.tags,
			Field: q.Field.OutName(),
			Value: v,
		})
	}
	return res, nil
}

func groupKey(groupBy []string, tags tsdb.Tags) string {
	if len(groupBy) == 0 {
		return ""
	}
	parts := make([]string, 0, len(groupBy))
	for _, k := range groupBy {
		parts = append(parts, k+"="+tags[k])
	}
	return strings.Join(parts, "\x00")
}

func projectTags(groupBy []string, tags tsdb.Tags) tsdb.Tags {
	out := make(tsdb.Tags, len(groupBy))
	for _, k := range groupBy {
		out[k] = tags[k]
	}
	return out
}

func fold(fn AggFunc, values []float64, last float64) (float64, error) {
	if len(values) == 0 {
		return 0, nil
	}
	switch fn {
	case AggSum:
		var sum float64
		for _, v := range values {
			sum += v
		}
		return sum, nil
	case AggMax:
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	case AggMin:
		m := values[0]
		for _, v := range values[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	case AggMean:
		var sum float64
		for _, v := range values {
			sum += v
		}
		return sum / float64(len(values)), nil
	case AggCount:
		return float64(len(values)), nil
	case AggLast:
		return last, nil
	default:
		return 0, fmt.Errorf("influxql: unsupported aggregation %q", fn)
	}
}
