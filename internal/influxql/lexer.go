package influxql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokString // "double-quoted" measurement or 'single-quoted' literal
	tokNumber // integer or decimal literal, possibly with duration unit
	tokLParen
	tokRParen
	tokComma
	tokOp    // = <> > >= < <=
	tokMinus // -
)

// token is one lexical unit.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits an InfluxQL string into tokens.
type lexer struct {
	input string
	pos   int
}

func newLexer(input string) *lexer { return &lexer{input: input} }

// errSyntax builds a positioned syntax error.
func errSyntax(pos int, format string, args ...any) error {
	return fmt.Errorf("influxql: syntax error at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '-':
		l.pos++
		return token{kind: tokMinus, text: "-", pos: start}, nil
	case c == '=', c == '>', c == '<':
		return l.lexOp()
	case c == '"', c == '\'':
		return l.lexQuoted(c)
	case unicode.IsDigit(rune(c)):
		return l.lexNumber()
	case isIdentStart(c):
		return l.lexIdent()
	default:
		return token{}, errSyntax(start, "unexpected character %q", c)
	}
}

func (l *lexer) lexOp() (token, error) {
	start := l.pos
	c := l.input[l.pos]
	l.pos++
	if l.pos < len(l.input) {
		two := string(c) + string(l.input[l.pos])
		switch two {
		case ">=", "<=", "<>":
			l.pos++
			return token{kind: tokOp, text: two, pos: start}, nil
		}
	}
	switch c {
	case '=', '>', '<':
		return token{kind: tokOp, text: string(c), pos: start}, nil
	}
	return token{}, errSyntax(start, "unexpected operator %q", c)
}

func (l *lexer) lexQuoted(quote byte) (token, error) {
	start := l.pos
	l.pos++ // consume opening quote
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == quote {
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, errSyntax(start, "unterminated quoted string")
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.input) {
		c := rune(l.input[l.pos])
		// Durations like "25s", "5m", "1h30m" and decimals like "0.5"
		// stay a single token; the parser interprets the suffix.
		if unicode.IsDigit(c) || c == '.' || isDurationUnit(byte(c)) {
			l.pos++
			continue
		}
		break
	}
	return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}, nil
}

func isDurationUnit(c byte) bool {
	switch c {
	case 's', 'm', 'h', 'd', 'u', 'n':
		return true
	default:
		return false
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '/' || c == '.' || c == '-' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
		l.pos++
	}
	return token{kind: tokIdent, text: l.input[start:l.pos], pos: start}, nil
}

// lexAll tokenizes the full input.
func lexAll(input string) ([]token, error) {
	l := newLexer(input)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
