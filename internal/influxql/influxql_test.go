package influxql

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// listing1 is the exact query text from the paper (§V-C, Listing 1).
const listing1 = `SELECT SUM(epc) AS epc FROM
(SELECT MAX(value) AS epc FROM "sgx/epc"
WHERE value <> 0 AND time >= now() - 25s
GROUP BY pod_name, nodename
)
GROUP BY nodename`

func TestParseListing1(t *testing.T) {
	q, err := Parse(listing1)
	if err != nil {
		t.Fatalf("Parse(listing1) = %v", err)
	}
	if q.Field.Func != AggSum || q.Field.Arg != "epc" || q.Field.Alias != "epc" {
		t.Fatalf("outer field = %+v", q.Field)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "nodename" {
		t.Fatalf("outer group by = %v", q.GroupBy)
	}
	sub := q.Source.Sub
	if sub == nil {
		t.Fatal("no subquery parsed")
	}
	if sub.Field.Func != AggMax || sub.Field.Arg != "value" || sub.Field.Alias != "epc" {
		t.Fatalf("inner field = %+v", sub.Field)
	}
	if sub.Source.Measurement != "sgx/epc" {
		t.Fatalf("inner measurement = %q", sub.Source.Measurement)
	}
	if len(sub.Where) != 2 {
		t.Fatalf("inner where = %+v", sub.Where)
	}
	if sub.Where[0].Subject != "value" || sub.Where[0].Op != OpNeq || sub.Where[0].Number != 0 {
		t.Fatalf("value cond = %+v", sub.Where[0])
	}
	if !sub.Where[1].IsTime || sub.Where[1].Op != OpGte || sub.Where[1].Offset != 25*time.Second {
		t.Fatalf("time cond = %+v", sub.Where[1])
	}
	if len(sub.GroupBy) != 2 || sub.GroupBy[0] != "pod_name" || sub.GroupBy[1] != "nodename" {
		t.Fatalf("inner group by = %v", sub.GroupBy)
	}
}

func TestExecuteListing1(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)

	write := func(pod, node string, v float64) {
		db.WriteNow("sgx/epc", tsdb.Tags{"pod_name": pod, "nodename": node}, v)
	}

	// Old samples (outside the 25 s window) that must be ignored.
	write("podA", "sgx-1", 999999)
	clk.Advance(60 * time.Second)

	// Fresh samples: podA oscillates (MAX picks the peak), podB steady,
	// podC on another node, podD reports zero (filtered by value <> 0).
	write("podA", "sgx-1", 100)
	clk.Advance(5 * time.Second)
	write("podA", "sgx-1", 300)
	write("podB", "sgx-1", 50)
	write("podC", "sgx-2", 70)
	write("podD", "sgx-2", 0)
	clk.Advance(5 * time.Second)
	write("podA", "sgx-1", 200)

	res, err := Execute(db, listing1)
	if err != nil {
		t.Fatal(err)
	}
	perNode := res.ValueByTag("nodename")
	if got := perNode["sgx-1"]; got != 350 { // max(podA)=300 + max(podB)=50
		t.Fatalf("sgx-1 = %v, want 350", got)
	}
	if got := perNode["sgx-2"]; got != 70 {
		t.Fatalf("sgx-2 = %v, want 70", got)
	}
	for _, row := range res.Rows {
		if row.Field != "epc" {
			t.Fatalf("row field = %q, want epc", row.Field)
		}
	}
}

func TestSlidingWindowExcludesOldPoints(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	db.WriteNow("m", tsdb.Tags{"nodename": "n"}, 500)
	clk.Advance(30 * time.Second)
	db.WriteNow("m", tsdb.Tags{"nodename": "n"}, 10)
	res, err := Execute(db, `SELECT MAX(value) FROM "m" WHERE time >= now() - 25s GROUP BY nodename`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Value != 10 {
		t.Fatalf("rows = %+v, want single 10", res.Rows)
	}
}

func TestAggregations(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	for i, v := range []float64{4, 1, 3, 2} {
		db.Write("m", tsdb.Tags{"k": "g"}, v, clk.Now().Add(time.Duration(i)*time.Second))
	}
	clk.Advance(10 * time.Second)
	cases := []struct {
		query string
		want  float64
	}{
		{`SELECT SUM(value) FROM m`, 10},
		{`SELECT MAX(value) FROM m`, 4},
		{`SELECT MIN(value) FROM m`, 1},
		{`SELECT MEAN(value) FROM m`, 2.5},
		{`SELECT COUNT(value) FROM m`, 4},
		{`SELECT LAST(value) FROM m`, 2},
	}
	for _, tc := range cases {
		res, err := Execute(db, tc.query)
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		if len(res.Rows) != 1 || res.Rows[0].Value != tc.want {
			t.Errorf("%s = %+v, want %v", tc.query, res.Rows, tc.want)
		}
	}
}

func TestTagCondition(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	db.WriteNow("m", tsdb.Tags{"nodename": "a"}, 1)
	db.WriteNow("m", tsdb.Tags{"nodename": "b"}, 2)
	res, err := Execute(db, `SELECT SUM(value) FROM m WHERE nodename = 'a'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Value != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	res, err = Execute(db, `SELECT SUM(value) FROM m WHERE nodename <> 'a'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Value != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestEmptyResultOnNoData(t *testing.T) {
	db := tsdb.New(clock.NewSim())
	res, err := Execute(db, `SELECT SUM(value) FROM empty GROUP BY nodename`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %+v, want none", res.Rows)
	}
}

func TestGroupByMissingTagGroupsTogether(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	db.WriteNow("m", tsdb.Tags{"pod_name": "a"}, 1)
	db.WriteNow("m", tsdb.Tags{"pod_name": "b"}, 2)
	res, err := Execute(db, `SELECT SUM(value) FROM m GROUP BY nodename`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Value != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestUnknownFieldError(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	db.WriteNow("m", tsdb.Tags{}, 1)
	if _, err := Execute(db, `SELECT SUM(bogus) FROM m`); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("err = %v, want ErrUnknownField", err)
	}
	if _, err := Execute(db, `SELECT SUM(value) FROM m WHERE bogus > 1`); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("where field err = %v, want ErrUnknownField", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"FROM m",
		"SELECT SUM(value)",
		"SELECT SUM value FROM m",
		"SELECT BOGUS(value) FROM m",
		`SELECT SUM(value) FROM`,
		`SELECT SUM(value) FROM m WHERE`,
		`SELECT SUM(value) FROM m WHERE value >`,
		`SELECT SUM(value) FROM m WHERE time >= later()`,
		`SELECT SUM(value) FROM m GROUP`,
		`SELECT SUM(value) FROM m GROUP BY`,
		`SELECT SUM(value) FROM m trailing`,
		`SELECT SUM(value) FROM (SELECT SUM(value) FROM m`,
		`SELECT SUM(value) FROM m WHERE nodename > 'a'`,
		`SELECT SUM(value) FROM "unterminated`,
		`SELECT SUM(value) FROM m WHERE value ! 1`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestParseDurations(t *testing.T) {
	cases := []struct {
		lit  string
		want time.Duration
	}{
		{"25s", 25 * time.Second},
		{"5m", 5 * time.Minute},
		{"1h", time.Hour},
		{"2d", 48 * time.Hour},
		{"1h30m", 90 * time.Minute},
	}
	for _, tc := range cases {
		q, err := Parse(`SELECT SUM(value) FROM m WHERE time >= now() - ` + tc.lit)
		if err != nil {
			t.Fatalf("%s: %v", tc.lit, err)
		}
		if q.Where[0].Offset != tc.want {
			t.Errorf("duration %s = %v, want %v", tc.lit, q.Where[0].Offset, tc.want)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	q, err := Parse(listing1)
	if err != nil {
		t.Fatal(err)
	}
	rendered := q.String()
	q2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of %q failed: %v", rendered, err)
	}
	if q2.String() != rendered {
		t.Fatalf("String not stable:\n%s\nvs\n%s", rendered, q2.String())
	}
	if !strings.Contains(rendered, "GROUP BY nodename") {
		t.Fatalf("rendered query missing GROUP BY: %s", rendered)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	db.WriteNow("m", tsdb.Tags{"k": "v"}, 5)
	res, err := Execute(db, `select sum(value) from m where value > 0 group by k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Value != 5 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestNowWithoutOffset(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	db.WriteNow("m", tsdb.Tags{}, 1) // stamped exactly at now()
	res, err := Execute(db, `SELECT COUNT(value) FROM m WHERE time <= now()`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Value != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

// Property: rendering a parsed query and re-parsing it yields an
// identical canonical form, across a grammar-covering set of generated
// queries.
func TestParseRenderRoundTripProperty(t *testing.T) {
	aggs := []string{"SUM", "MAX", "MIN", "MEAN", "COUNT", "LAST"}
	ops := []string{">", ">=", "<", "<=", "=", "<>"}
	durations := []string{"5s", "25s", "2m", "1h"}
	f := func(aggIdx, opIdx, durIdx uint8, alias bool, groupTags uint8, nested bool, threshold int16) bool {
		inner := `SELECT ` + aggs[aggIdx%6] + `(value)`
		if alias {
			inner += ` AS v`
		}
		inner += ` FROM "m/easure"`
		inner += ` WHERE value ` + ops[opIdx%6] + ` ` + strconv.Itoa(int(threshold)) +
			` AND time >= now() - ` + durations[durIdx%4]
		switch groupTags % 3 {
		case 1:
			inner += ` GROUP BY a`
		case 2:
			inner += ` GROUP BY a, b`
		}
		query := inner
		if nested {
			field := "value"
			if alias {
				field = "v"
			}
			query = `SELECT SUM(` + field + `) FROM (` + inner + `) GROUP BY b`
		}
		q1, err := Parse(query)
		if err != nil {
			t.Logf("query %q failed: %v", query, err)
			return false
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Logf("re-parse of %q failed: %v", q1.String(), err)
			return false
		}
		return q1.String() == q2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: SUM grouped by a tag equals the ungrouped SUM.
func TestGroupSumConservationProperty(t *testing.T) {
	f := func(values []uint16) bool {
		clk := clock.NewSim()
		db := tsdb.New(clk)
		var want float64
		for i, v := range values {
			tag := string(rune('a' + i%5))
			db.WriteNow("m", tsdb.Tags{"k": tag}, float64(v))
			want += float64(v)
		}
		if len(values) == 0 {
			return true
		}
		grouped, err := Execute(db, `SELECT SUM(value) FROM m GROUP BY k`)
		if err != nil {
			return false
		}
		var total float64
		for _, row := range grouped.Rows {
			total += row.Value
		}
		flat, err := Execute(db, `SELECT SUM(value) FROM m`)
		if err != nil || len(flat.Rows) != 1 {
			return false
		}
		return total == want && flat.Rows[0].Value == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
