// Package influxql implements the subset of the InfluxQL query language
// that the paper's scheduler uses against InfluxDB (§V-C): single-field
// aggregations with sliding time windows, value predicates, tag grouping,
// and one level of subquery — enough for Listing 1 to run verbatim:
//
//	SELECT SUM(epc) AS epc FROM
//	(SELECT MAX(value) AS epc FROM "sgx/epc"
//	 WHERE value <> 0 AND time >= now() - 25s
//	 GROUP BY pod_name, nodename
//	)
//	GROUP BY nodename
package influxql

import (
	"fmt"
	"strings"
	"time"
)

// AggFunc is a supported aggregation function.
type AggFunc string

// Supported aggregation functions.
const (
	AggSum   AggFunc = "SUM"
	AggMax   AggFunc = "MAX"
	AggMin   AggFunc = "MIN"
	AggMean  AggFunc = "MEAN"
	AggCount AggFunc = "COUNT"
	AggLast  AggFunc = "LAST"
)

// validAgg reports whether name is a known aggregation.
func validAgg(name string) (AggFunc, bool) {
	switch AggFunc(strings.ToUpper(name)) {
	case AggSum:
		return AggSum, true
	case AggMax:
		return AggMax, true
	case AggMin:
		return AggMin, true
	case AggMean:
		return AggMean, true
	case AggCount:
		return AggCount, true
	case AggLast:
		return AggLast, true
	default:
		return "", false
	}
}

// Field is the single projected column: FUNC(arg) [AS alias].
type Field struct {
	Func  AggFunc
	Arg   string // field name: "value" on raw series, or an inner alias
	Alias string // output name; defaults to Arg
}

// OutName returns the projected column name.
func (f Field) OutName() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Arg
}

// CompareOp is a comparison operator in a WHERE condition.
type CompareOp string

// Comparison operators.
const (
	OpEq  CompareOp = "="
	OpNeq CompareOp = "<>"
	OpGt  CompareOp = ">"
	OpGte CompareOp = ">="
	OpLt  CompareOp = "<"
	OpLte CompareOp = "<="
)

// Condition is one conjunct of the WHERE clause. Exactly one of the
// condition kinds is active:
//
//   - field condition: Subject is a field name, compared against Number;
//   - time condition: Subject == "time", compared against now() - Offset;
//   - tag condition: Subject is a tag key, compared (=, <>) against Str.
type Condition struct {
	Subject string
	Op      CompareOp

	Number float64       // field conditions
	Offset time.Duration // time conditions: threshold = now() - Offset
	Str    string        // tag conditions
	IsTime bool
	IsTag  bool
}

// Query is a parsed SELECT statement.
type Query struct {
	Field   Field
	Source  Source
	Where   []Condition // conjunction (AND)
	GroupBy []string    // tag keys
}

// Source is either a measurement name or a nested subquery.
type Source struct {
	Measurement string
	Sub         *Query
}

// String reconstructs a canonical form of the query (useful in errors and
// logs).
func (q *Query) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s(%s)", q.Field.Func, q.Field.Arg)
	if q.Field.Alias != "" {
		fmt.Fprintf(&b, " AS %s", q.Field.Alias)
	}
	if q.Source.Sub != nil {
		fmt.Fprintf(&b, " FROM (%s)", q.Source.Sub.String())
	} else {
		fmt.Fprintf(&b, " FROM %q", q.Source.Measurement)
	}
	if len(q.Where) > 0 {
		parts := make([]string, 0, len(q.Where))
		for _, c := range q.Where {
			switch {
			case c.IsTime:
				parts = append(parts, fmt.Sprintf("time %s now() - %s", c.Op, c.Offset))
			case c.IsTag:
				parts = append(parts, fmt.Sprintf("%s %s '%s'", c.Subject, c.Op, c.Str))
			default:
				parts = append(parts, fmt.Sprintf("%s %s %g", c.Subject, c.Op, c.Number))
			}
		}
		fmt.Fprintf(&b, " WHERE %s", strings.Join(parts, " AND "))
	}
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&b, " GROUP BY %s", strings.Join(q.GroupBy, ", "))
	}
	return b.String()
}
