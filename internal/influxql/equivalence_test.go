package influxql

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// refSample is the unit of the reference executor below: one tagged,
// timestamped value, exactly as the pre-streaming executor materialised
// them.
type refSample struct {
	tags  tsdb.Tags
	time  time.Time
	field string
	value float64
}

// refRun is the old materializing executor, kept verbatim as the
// behavioural oracle: flatten every point of every series into one
// slice, filter, then group with per-group value slices. The streaming
// executor must be observationally identical to it.
func refRun(db *tsdb.DB, q *Query) (Result, error) {
	var samples []refSample
	if q.Source.Sub != nil {
		inner, err := refRun(db, q.Source.Sub)
		if err != nil {
			return Result{}, err
		}
		now := db.Now()
		for _, row := range inner.Rows {
			samples = append(samples, refSample{
				tags:  tsdb.Tags(row.Tags).Clone(),
				time:  now,
				field: row.Field,
				value: row.Value,
			})
		}
	} else {
		for _, s := range db.Series(q.Source.Measurement) {
			for _, p := range s.Points {
				samples = append(samples, refSample{tags: s.Tags, time: p.Time, field: "value", value: p.Value})
			}
		}
	}

	now := db.Now()
	kept := samples[:0]
	for _, s := range samples {
		keep := true
		for _, c := range q.Where {
			ok, err := refEvalCondition(c, s, now)
			if err != nil {
				return Result{}, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			kept = append(kept, s)
		}
	}

	type group struct {
		tags   tsdb.Tags
		values []float64
		last   refSample
	}
	groups := make(map[string]*group)
	for _, s := range kept {
		if s.field != q.Field.Arg {
			return Result{}, fmt.Errorf("%w: %q (source provides %q)", ErrUnknownField, q.Field.Arg, s.field)
		}
		key := groupKey(q.GroupBy, s.tags)
		g, ok := groups[key]
		if !ok {
			g = &group{tags: projectTags(q.GroupBy, s.tags)}
			groups[key] = g
		}
		g.values = append(g.values, s.value)
		if s.time.After(g.last.time) || len(g.values) == 1 {
			g.last = s
		}
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	res := Result{Rows: make([]Row, 0, len(keys))}
	for _, k := range keys {
		g := groups[k]
		v, err := refFold(q.Field.Func, g.values, g.last.value)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, Row{Tags: g.tags, Field: q.Field.OutName(), Value: v})
	}
	return res, nil
}

func refEvalCondition(c Condition, s refSample, now time.Time) (bool, error) {
	switch {
	case c.IsTime:
		return compareTime(s.time, c.Op, now.Add(-c.Offset))
	case c.IsTag:
		v := s.tags[c.Subject]
		if c.Op == OpEq {
			return v == c.Str, nil
		}
		return v != c.Str, nil
	default:
		if c.Subject != s.field {
			return false, fmt.Errorf("%w: %q (source provides %q)", ErrUnknownField, c.Subject, s.field)
		}
		return compareFloat(s.value, c.Op, c.Number)
	}
}

func refFold(fn AggFunc, values []float64, last float64) (float64, error) {
	if len(values) == 0 {
		return 0, nil
	}
	switch fn {
	case AggSum:
		var sum float64
		for _, v := range values {
			sum += v
		}
		return sum, nil
	case AggMax:
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	case AggMin:
		m := values[0]
		for _, v := range values[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	case AggMean:
		var sum float64
		for _, v := range values {
			sum += v
		}
		return sum / float64(len(values)), nil
	case AggCount:
		return float64(len(values)), nil
	case AggLast:
		return last, nil
	default:
		return 0, fmt.Errorf("influxql: unsupported aggregation %q", fn)
	}
}

func resultsEqual(a, b Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.Field != rb.Field || ra.Value != rb.Value || len(ra.Tags) != len(rb.Tags) {
			return false
		}
		for k, v := range ra.Tags {
			if rb.Tags[k] != v {
				return false
			}
		}
	}
	return true
}

// TestStreamingMatchesMaterializingExecutor drives randomized databases
// and queries through both executors and requires bit-identical results.
// Values are small integers so float folds are exact in either
// evaluation order.
func TestStreamingMatchesMaterializingExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	aggs := []string{"SUM", "MAX", "MIN", "MEAN", "COUNT", "LAST"}
	for trial := 0; trial < 200; trial++ {
		clk := clock.NewSim()
		db := tsdb.New(clk, tsdb.WithGCInterval(0))
		start := clk.Now()
		clk.Advance(2 * time.Minute)
		now := clk.Now()

		nPoints := rng.Intn(300)
		for i := 0; i < nPoints; i++ {
			tags := tsdb.Tags{
				"pod_name": fmt.Sprintf("p%d", rng.Intn(6)),
				"nodename": fmt.Sprintf("n%d", rng.Intn(3)),
			}
			at := start.Add(time.Duration(rng.Int63n(int64(2 * time.Minute))))
			db.Write("m", tags, float64(rng.Intn(8)), at) // zeros included
		}
		_ = now

		agg := aggs[rng.Intn(len(aggs))]
		window := time.Duration(5+rng.Intn(115)) * time.Second
		inner := fmt.Sprintf(`SELECT %s(value) AS v FROM "m"`, agg)
		var conds []string
		if rng.Intn(2) == 0 {
			conds = append(conds, "value <> 0")
		}
		if rng.Intn(4) == 0 {
			conds = append(conds, fmt.Sprintf("nodename = 'n%d'", rng.Intn(3)))
		}
		conds = append(conds, fmt.Sprintf("time >= now() - %ds", int(window.Seconds())))
		inner += " WHERE " + conds[0]
		for _, c := range conds[1:] {
			inner += " AND " + c
		}
		switch rng.Intn(3) {
		case 1:
			inner += " GROUP BY pod_name"
		case 2:
			inner += " GROUP BY pod_name, nodename"
		}
		query := inner
		if rng.Intn(2) == 0 {
			query = `SELECT SUM(v) AS total FROM (` + inner + `) GROUP BY nodename`
		}

		q, err := Parse(query)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, query, err)
		}
		got, gotErr := Run(db, q)
		want, wantErr := refRun(db, q)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: error mismatch: streaming=%v reference=%v (query %q)",
				trial, gotErr, wantErr, query)
		}
		if gotErr != nil {
			continue
		}
		if !resultsEqual(got, want) {
			t.Fatalf("trial %d: query %q\nstreaming: %+v\nreference: %+v",
				trial, query, got.Rows, want.Rows)
		}
	}
}
