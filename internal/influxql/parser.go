package influxql

import (
	"strconv"
	"strings"
	"time"
)

// Parse compiles one SELECT statement into a Query.
func Parse(input string) (*Query, error) {
	toks, err := lexAll(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, errSyntax(t.pos, "unexpected trailing input %q", t.text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// acceptKeyword consumes the next token if it is the given
// case-insensitive keyword.
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return errSyntax(t.pos, "expected %s, found %q", kw, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return token{}, errSyntax(t.pos, "expected %s, found %q", what, t.text)
	}
	return p.advance(), nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	field, err := p.parseField()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	source, err := p.parseSource()
	if err != nil {
		return nil, err
	}
	q := &Query{Field: field, Source: source}
	if p.acceptKeyword("WHERE") {
		conds, err := p.parseConditions()
		if err != nil {
			return nil, err
		}
		q.Where = conds
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		tags, err := p.parseTagList()
		if err != nil {
			return nil, err
		}
		q.GroupBy = tags
	}
	return q, nil
}

func (p *parser) parseField() (Field, error) {
	fn, err := p.expect(tokIdent, "aggregation function")
	if err != nil {
		return Field{}, err
	}
	agg, ok := validAgg(fn.text)
	if !ok {
		return Field{}, errSyntax(fn.pos, "unknown aggregation %q", fn.text)
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return Field{}, err
	}
	arg, err := p.expect(tokIdent, "field name")
	if err != nil {
		return Field{}, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return Field{}, err
	}
	f := Field{Func: agg, Arg: arg.text}
	if p.acceptKeyword("AS") {
		alias, err := p.expect(tokIdent, "alias")
		if err != nil {
			return Field{}, err
		}
		f.Alias = alias.text
	}
	return f, nil
}

func (p *parser) parseSource() (Source, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.advance()
		return Source{Measurement: t.text}, nil
	case tokIdent:
		p.advance()
		return Source{Measurement: t.text}, nil
	case tokLParen:
		p.advance()
		sub, err := p.parseQuery()
		if err != nil {
			return Source{}, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return Source{}, err
		}
		return Source{Sub: sub}, nil
	default:
		return Source{}, errSyntax(t.pos, "expected measurement or subquery, found %q", t.text)
	}
}

func (p *parser) parseConditions() ([]Condition, error) {
	var out []Condition
	for {
		c, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if !p.acceptKeyword("AND") {
			return out, nil
		}
	}
}

func (p *parser) parseCondition() (Condition, error) {
	subj, err := p.expect(tokIdent, "condition subject")
	if err != nil {
		return Condition{}, err
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return Condition{}, err
	}
	op := CompareOp(opTok.text)

	if strings.EqualFold(subj.text, "time") {
		return p.parseTimeRHS(op)
	}

	neg := false
	if p.peek().kind == tokMinus {
		p.advance()
		neg = true
	}
	rhs := p.peek()
	switch rhs.kind {
	case tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(rhs.text, 64)
		if err != nil {
			return Condition{}, errSyntax(rhs.pos, "bad number %q", rhs.text)
		}
		if neg {
			v = -v
		}
		return Condition{Subject: subj.text, Op: op, Number: v}, nil
	case tokString:
		p.advance()
		if op != OpEq && op != OpNeq {
			return Condition{}, errSyntax(rhs.pos, "tag comparison supports only = and <>")
		}
		return Condition{Subject: subj.text, Op: op, Str: rhs.text, IsTag: true}, nil
	default:
		return Condition{}, errSyntax(rhs.pos, "expected number or string, found %q", rhs.text)
	}
}

// parseTimeRHS parses: now() [- duration]
func (p *parser) parseTimeRHS(op CompareOp) (Condition, error) {
	if err := p.expectKeyword("now"); err != nil {
		return Condition{}, err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return Condition{}, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return Condition{}, err
	}
	c := Condition{Subject: "time", Op: op, IsTime: true}
	if p.peek().kind == tokMinus {
		p.advance()
		durTok, err := p.expect(tokNumber, "duration")
		if err != nil {
			return Condition{}, err
		}
		d, err := parseInfluxDuration(durTok.text)
		if err != nil {
			return Condition{}, errSyntax(durTok.pos, "bad duration %q: %v", durTok.text, err)
		}
		c.Offset = d
	}
	return c, nil
}

// parseInfluxDuration understands InfluxQL duration literals (25s, 5m,
// 1h, 7d); bare numbers are rejected because InfluxQL requires a unit.
func parseInfluxDuration(s string) (time.Duration, error) {
	if strings.HasSuffix(s, "d") {
		days, err := strconv.ParseFloat(strings.TrimSuffix(s, "d"), 64)
		if err != nil {
			return 0, err
		}
		return time.Duration(days * 24 * float64(time.Hour)), nil
	}
	return time.ParseDuration(s)
}

func (p *parser) parseTagList() ([]string, error) {
	var out []string
	for {
		t, err := p.expect(tokIdent, "tag key")
		if err != nil {
			return nil, err
		}
		out = append(out, t.text)
		if p.peek().kind != tokComma {
			return out, nil
		}
		p.advance()
	}
}
