package telemetry

import (
	"time"

	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// SelfScrapeMeasurementPrefix namespaces the registry's series in the
// TSDB, keeping the orchestrator's own health apart from container
// measurements like "sgx/epc" while riding the identical storage and
// InfluxQL query path.
const SelfScrapeMeasurementPrefix = "self/"

// Tag keys used by the self-scrape.
const (
	// TagQuantile distinguishes a histogram's estimated quantile series
	// ("0.5", "0.99") from each other.
	TagQuantile = "quantile"
	// TagStat distinguishes a histogram's count and sum series.
	TagStat = "stat"
)

// scrapeQuantiles are the per-histogram quantile series the self-scrape
// materialises; raw bucket counts stay in the registry (Prometheus
// export) — the TSDB gets the estimates experiments actually query.
var scrapeQuantiles = []struct {
	q   float64
	tag string
}{{0.5, "0.5"}, {0.99, "0.99"}}

// ScrapeInto writes the registry's current state into the database as
// ordinary measurements at the database's current time: counters and
// gauges as "self/<name>" (label pair carried as a tag), histograms as
// quantile series tagged quantile="0.5"/"0.99" plus count and sum
// series tagged stat="count"/"sum". Registered collectors run first.
// No-op on a nil registry.
func (r *Registry) ScrapeInto(db *tsdb.DB) {
	if r == nil || db == nil {
		return
	}
	r.Collect()
	r.mu.Lock()
	defer r.mu.Unlock()

	tags := func(k metricKey, extraKey, extraVal string) tsdb.Tags {
		t := tsdb.Tags{}
		if k.labelKey != "" {
			t[k.labelKey] = k.labelValue
		}
		if extraKey != "" {
			t[extraKey] = extraVal
		}
		return t
	}
	for _, k := range sortedKeys(r.counters) {
		db.WriteNow(SelfScrapeMeasurementPrefix+k.name, tags(k, "", ""), float64(r.counters[k].Value()))
	}
	for _, k := range sortedKeys(r.gauges) {
		db.WriteNow(SelfScrapeMeasurementPrefix+k.name, tags(k, "", ""), r.gauges[k].Value())
	}
	for _, k := range sortedKeys(r.histograms) {
		h := r.histograms[k]
		if h.Count() == 0 {
			continue // no estimate to publish yet
		}
		for _, sq := range scrapeQuantiles {
			db.WriteNow(SelfScrapeMeasurementPrefix+k.name, tags(k, TagQuantile, sq.tag), h.Quantile(sq.q))
		}
		db.WriteNow(SelfScrapeMeasurementPrefix+k.name, tags(k, TagStat, "count"), float64(h.Count()))
		db.WriteNow(SelfScrapeMeasurementPrefix+k.name, tags(k, TagStat, "sum"), h.Sum())
	}
}

// StartSelfScrape runs ScrapeInto on every interval tick of the clock —
// the same clock.Periodic cadence Heapster uses for container metrics —
// and returns a stop function. Returns a no-op stop on a nil registry.
func StartSelfScrape(clk clock.Clock, r *Registry, db *tsdb.DB, interval time.Duration) (stop func()) {
	if r == nil || db == nil {
		return func() {}
	}
	return clock.Periodic(clk, interval, func() { r.ScrapeInto(db) })
}
