package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets in seconds: exponential
// from 100µs to ~100s — wide enough to cover both wall-clock pass
// timings (sub-millisecond) and simulated lifecycle waits (seconds to
// minutes under saturation).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Histogram is a fixed-bucket histogram: per-bucket atomic counters
// plus an atomic count and sum. Observe is lock-free and
// allocation-free; bucket bounds are immutable after construction.
// A nil handle is the disabled no-op form.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value (no-op on a nil handle).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are ~20 and the comparison loop is
	// branch-predictable — cheaper than binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts with linear interpolation inside the winning bucket — the
// same estimate a Prometheus histogram_quantile produces. Returns 0
// with no observations. The estimate for the overflow bucket is its
// lower bound (the largest finite bound).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.bounds) {
				// Overflow bucket: no upper bound to interpolate to.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshotBuckets copies the cumulative bucket counts (for export).
func (h *Histogram) snapshotBuckets() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	running := int64(0)
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), h.Sum()
}
