package telemetry

import (
	"sync"
	"time"
)

// Stage names of one scheduling pass, in pipeline order. Stage-level
// spans carry these names; per-plugin breakdown spans carry the same
// stage plus the plugin's name.
const (
	// StageSnapshotSync is bringing the incremental cluster view current
	// (cache.SyncView) before planning.
	StageSnapshotSync = "snapshot-sync"
	// StagePreFilter is the per-pod early-reject stage (gang quorum
	// checks, pass-scoped boosts).
	StagePreFilter = "prefilter"
	// StageFilter is the feasibility walk: candidate generation over the
	// node index (sampled) or the full node list. Filter plugins run
	// fused per (pod, node), so this stage reports walk totals, not
	// per-plugin splits — timing every plugin on every combination would
	// cost more than the work measured.
	StageFilter = "filter"
	// StageScore is preference narrowing plus weighted scoring and
	// selection.
	StageScore = "score"
	// StagePermit is the permit stage plus conditional reservations
	// (gang members waiting for quorum).
	StagePermit = "permit"
	// StagePreempt is preemption planning: victim search and pipeline
	// replay against the predicted post-eviction state.
	StagePreempt = "preemption-plan"
	// StageBind is the API server commit (Bind/Reserve calls).
	StageBind = "bind"
)

// Span is one timed slice of a pass: a whole stage (Plugin empty) or
// one plugin's share of a stage. Count is how many operations the span
// aggregates — pods for per-pod stages, calls for plugin spans, commit
// attempts for bind.
type Span struct {
	Stage  string
	Plugin string
	Dur    time.Duration
	Count  int
}

// PassTrace is the record of one scheduling pass: wall timing, outcome
// counts, and the stage/plugin spans. Detailed marks passes that
// carried per-pod stage timing and per-plugin breakdowns (sampled —
// see core.Config.TraceDetailEvery); undetailed passes still record
// pass-level spans (snapshot-sync, preemption-plan, bind) and every
// outcome counter.
type PassTrace struct {
	Scheduler string
	// Seq numbers this scheduler's passes from 1; consecutive traces
	// from one scheduler have strictly increasing Seq.
	Seq      int64
	Start    time.Time
	Wall     time.Duration
	Detailed bool

	Pending       int
	Bound         int
	Unschedulable int
	Gated         int
	Conflicts     int
	Held          int
	Preemptions   int

	Spans []Span
}

// TraceRing retains the last N pass traces — the "why was scheduling
// slow" flight recorder. Record copies the trace (spans included), so
// callers may reuse their span buffers across passes; the ring is
// written once per pass, far off the per-pod hot path.
type TraceRing struct {
	mu    sync.Mutex
	buf   []PassTrace
	next  int
	count int
	total int64
}

// DefaultTraceRingSize is the pass-trace retention when unconfigured.
const DefaultTraceRingSize = 64

// NewTraceRing creates a ring retaining the last n traces
// (DefaultTraceRingSize when n <= 0).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceRingSize
	}
	return &TraceRing{buf: make([]PassTrace, n)}
}

// Record appends a trace, evicting the oldest beyond capacity. The
// trace's span slice is copied. No-op on a nil ring.
func (r *TraceRing) Record(t PassTrace) {
	if r == nil {
		return
	}
	t.Spans = append([]Span(nil), t.Spans...)
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained traces oldest-first. Nil ring → nil.
func (r *TraceRing) Snapshot() []PassTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PassTrace, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Cap returns the ring capacity (0 on a nil ring).
func (r *TraceRing) Cap() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Len returns the retained trace count.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Total returns how many traces were ever recorded (monotonic; Total -
// Len is the evicted count).
func (r *TraceRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
