// Package telemetry is the orchestrator's own monitoring pipeline: a
// lock-free metrics registry (atomic counters, gauges and fixed-bucket
// histograms), a ring-buffered per-pass scheduling trace, Prometheus
// text exposition, and a self-scrape that writes the registry into the
// cluster's internal/tsdb — so the orchestrator's health is queryable
// through the same InfluxQL path the paper uses for container metrics
// (Listing 1), closing the monitoring loop on the scheduler itself.
//
// The whole package is built for hot paths:
//
//   - Every handle (Counter, Gauge, Histogram and their labeled Vec
//     forms) is nil-safe: methods on a nil handle are no-ops. A nil
//     *Registry hands out nil handles everywhere, so "telemetry
//     disabled" is a single nil check at instrumentation sites and adds
//     zero allocations and zero atomic traffic to the code it wraps.
//   - Updates are single atomic operations; no metric update ever takes
//     a lock. The registry mutex guards registration and export only.
//   - Labeled families resolve a label value to a pooled handle once
//     (With); callers cache the handle and the per-update cost is the
//     same single atomic as an unlabeled metric.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value (or a nil
// pointer, the disabled form) is ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on a nil handle; negative
// deltas are ignored — counters never decrease).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64-valued metric that may go up and down. Stored as
// atomic bits, so Set/Value are single lock-free operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value (no-op on a nil handle).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metricKey identifies one registered series: a metric name plus its
// single optional label pair (the registry's label model is one key per
// family — class, stage, subscriber — which is all the orchestrator
// needs and keeps hot-path label handling allocation-free).
type metricKey struct {
	name       string
	labelKey   string
	labelValue string
}

func (k metricKey) String() string {
	if k.labelKey == "" {
		return k.name
	}
	return fmt.Sprintf("%s{%s=%q}", k.name, k.labelKey, k.labelValue)
}

// Registry holds the registered metrics. A nil *Registry is the
// disabled form: every constructor returns a nil handle and every
// export is empty. Construct with New.
type Registry struct {
	mu         sync.Mutex
	counters   map[metricKey]*Counter
	gauges     map[metricKey]*Gauge
	histograms map[metricKey]*Histogram
	collectors []func()
	collecting bool
}

// New creates an enabled registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[metricKey]*Counter),
		gauges:     make(map[metricKey]*Gauge),
		histograms: make(map[metricKey]*Histogram),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the named counter, registering it on first use.
// Returns the same handle for the same name, so instrumentation sites
// and stats folds share one series. Nil registry → nil handle.
func (r *Registry) Counter(name string) *Counter {
	return r.counterKey(metricKey{name: name})
}

func (r *Registry) counterKey(k metricKey) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.gaugeKey(metricKey{name: name})
}

func (r *Registry) gaugeKey(k metricKey) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use
// with the given bucket upper bounds (ignored if already registered;
// nil bounds select DefBuckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return r.histogramKey(metricKey{name: name}, bounds)
}

func (r *Registry) histogramKey(k metricKey, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[k]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[k] = h
	}
	return h
}

// CounterVec is a family of counters sharing one name, partitioned by a
// single label key. With resolves a label value to its pooled handle.
type CounterVec struct {
	reg      *Registry
	name     string
	labelKey string

	mu    sync.RWMutex
	byVal map[string]*Counter
}

// CounterVec returns the named labeled counter family. Nil registry →
// nil vec (whose With returns nil handles).
func (r *Registry) CounterVec(name, labelKey string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{reg: r, name: name, labelKey: labelKey, byVal: make(map[string]*Counter)}
}

// With returns the counter for one label value, registering it on first
// use. Callers on hot paths should resolve once and cache the handle.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c, ok := v.byVal[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	c = v.reg.counterKey(metricKey{name: v.name, labelKey: v.labelKey, labelValue: value})
	v.mu.Lock()
	v.byVal[value] = c
	v.mu.Unlock()
	return c
}

// GaugeVec is a family of gauges partitioned by a single label key.
type GaugeVec struct {
	reg      *Registry
	name     string
	labelKey string

	mu    sync.RWMutex
	byVal map[string]*Gauge
}

// GaugeVec returns the named labeled gauge family.
func (r *Registry) GaugeVec(name, labelKey string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{reg: r, name: name, labelKey: labelKey, byVal: make(map[string]*Gauge)}
}

// With returns the gauge for one label value, registering it on first
// use.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	g, ok := v.byVal[value]
	v.mu.RUnlock()
	if ok {
		return g
	}
	g = v.reg.gaugeKey(metricKey{name: v.name, labelKey: v.labelKey, labelValue: value})
	v.mu.Lock()
	v.byVal[value] = g
	v.mu.Unlock()
	return g
}

// HistogramVec is a family of histograms partitioned by a single label
// key; every member shares the family's bucket bounds.
type HistogramVec struct {
	reg      *Registry
	name     string
	labelKey string
	bounds   []float64

	mu    sync.RWMutex
	byVal map[string]*Histogram
}

// HistogramVec returns the named labeled histogram family (nil bounds
// select DefBuckets).
func (r *Registry) HistogramVec(name, labelKey string, bounds []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{reg: r, name: name, labelKey: labelKey, bounds: bounds, byVal: make(map[string]*Histogram)}
}

// With returns the histogram for one label value, registering it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h, ok := v.byVal[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	h = v.reg.histogramKey(metricKey{name: v.name, labelKey: v.labelKey, labelValue: value}, v.bounds)
	v.mu.Lock()
	v.byVal[value] = h
	v.mu.Unlock()
	return h
}

// RegisterCollector adds a callback invoked before every export
// (WritePrometheus, ScrapeInto, Collect). Collectors pull point-in-time
// state — queue depths, watch lag, folded legacy stats — into gauges at
// read time, so live paths pay nothing for them. No-op on nil.
func (r *Registry) RegisterCollector(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Collect runs the registered collectors, refreshing collector-backed
// gauges. Reentrant calls from within a collector are ignored.
func (r *Registry) Collect() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.collecting {
		r.mu.Unlock()
		return
	}
	r.collecting = true
	fns := r.collectors
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
	r.mu.Lock()
	r.collecting = false
	r.mu.Unlock()
}

// sortedKeys returns map keys in deterministic name-then-label order.
func sortedKeys[V any](m map[metricKey]V) []metricKey {
	keys := make([]metricKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		if keys[i].labelKey != keys[j].labelKey {
			return keys[i].labelKey < keys[j].labelKey
		}
		return keys[i].labelValue < keys[j].labelValue
	})
	return keys
}
