package telemetry

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

func TestNilRegistryIsFullNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	cv := r.CounterVec("cv", "class")
	gv := r.GaugeVec("gv", "class")
	hv := r.HistogramVec("hv", "class", nil)

	c.Add(5)
	c.Inc()
	g.Set(3.5)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	cv.With("a").Inc()
	gv.With("a").Set(1)
	hv.With("a").Observe(1)
	r.RegisterCollector(func() { t.Fatal("collector ran on nil registry") })
	r.Collect()
	r.ScrapeInto(nil)

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read zero")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry export: %q err=%v", sb.String(), err)
	}
	var ring *TraceRing
	ring.Record(PassTrace{})
	if ring.Snapshot() != nil || ring.Len() != 0 || ring.Cap() != 0 || ring.Total() != 0 {
		t.Fatal("nil ring must read empty")
	}
}

func TestCounterGaugeSharedHandles(t *testing.T) {
	r := New()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("same name must return the same counter handle")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 3 {
		t.Fatalf("counter = %d, want 3", a.Value())
	}
	a.Add(-5) // negative deltas ignored: counters are monotonic
	if a.Value() != 3 {
		t.Fatalf("counter after negative add = %d, want 3", a.Value())
	}
	g := r.Gauge("y")
	g.Set(1.5)
	g.Set(-2.25)
	if g.Value() != -2.25 {
		t.Fatalf("gauge = %v, want -2.25", g.Value())
	}
	if r.CounterVec("v", "class").With("a") != r.CounterVec("v", "class").With("a") {
		t.Fatal("vec handles with the same (name, label) must be shared")
	}
}

func TestHistogramCountsSumAndBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	cum, count, sum := h.snapshotBuckets()
	// le=1: {0.5, 1}; le=2: +{1.5}; le=4: +{3}; +Inf: +{100}.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if count != 5 || sum != 106 {
		t.Fatalf("snapshot count=%d sum=%v", count, sum)
	}
}

func TestHistogramQuantileEstimate(t *testing.T) {
	r := New()
	h := r.Histogram("h", []float64{1, 2, 4, 8})
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 100 observations uniform in (0, 4]: p50 ≈ 2, p99 ≈ 4.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if p50 := h.Quantile(0.5); p50 < 1 || p50 > 3 {
		t.Fatalf("p50 = %v, want ≈2", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 2 || p99 > 4 {
		t.Fatalf("p99 = %v, want ≈4", p99)
	}
	// The overflow bucket reports the largest finite bound.
	h2 := r.Histogram("h2", []float64{1})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %v, want 1", got)
	}
}

// TestHistogramQuantileBracketsExact: the bucket estimate must bracket
// the exact quantile within one bucket width — the property that makes
// self-scraped p99s trustworthy.
func TestHistogramQuantileBracketsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := New()
	h := r.Histogram("h", DefBuckets)
	var vals []float64
	for i := 0; i < 5000; i++ {
		v := math.Abs(rng.NormFloat64()) * 2
		vals = append(vals, v)
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		est := h.Quantile(q)
		// Exact quantile by sorting.
		sorted := append([]float64(nil), vals...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		exact := sorted[int(q*float64(len(sorted)))-1]
		// The estimate must land in the same bucket as the exact value:
		// both bounded by the bucket's neighbours.
		lo, hi := 0.0, math.Inf(1)
		for i, b := range DefBuckets {
			if exact <= b {
				hi = b
				if i > 0 {
					lo = DefBuckets[i-1]
				}
				break
			}
		}
		if est < lo || est > hi {
			t.Fatalf("q=%v estimate %v outside exact bucket [%v, %v]", q, est, lo, hi)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("passes_total").Add(3)
	r.CounterVec("bound_total", "class").With("batch").Add(2)
	r.Gauge("pending_depth").Set(7)
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)
	collected := false
	r.RegisterCollector(func() { collected = true; r.Gauge("pending_depth").Set(9) })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !collected {
		t.Fatal("export must run collectors")
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE passes_total counter",
		"passes_total 3",
		`bound_total{class="batch"} 2`,
		"# TYPE pending_depth gauge",
		"pending_depth 9",
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 1`,
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 5.5",
		"lat_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestScrapeIntoTSDB(t *testing.T) {
	clk := clock.NewSim()
	db := tsdb.New(clk)
	defer db.Close()
	r := New()
	r.Counter("binds_total").Add(4)
	r.GaugeVec("depth", "class").With("batch").Set(2)
	h := r.HistogramVec("wait_seconds", "class", []float64{1, 10}).With("batch")
	h.Observe(0.5)
	h.Observe(6)

	r.ScrapeInto(db)

	read := func(measurement string, match map[string]string) (float64, bool) {
		var got float64
		found := false
		for _, s := range db.Series(measurement) {
			ok := true
			for k, v := range match {
				if s.Tags[k] != v {
					ok = false
					break
				}
			}
			if ok && len(s.Points) > 0 {
				got = s.Points[len(s.Points)-1].Value
				found = true
			}
		}
		return got, found
	}
	if v, ok := read("self/binds_total", nil); !ok || v != 4 {
		t.Fatalf("self/binds_total = %v ok=%v", v, ok)
	}
	if v, ok := read("self/depth", map[string]string{"class": "batch"}); !ok || v != 2 {
		t.Fatalf("self/depth = %v ok=%v", v, ok)
	}
	if v, ok := read("self/wait_seconds", map[string]string{"class": "batch", TagStat: "count"}); !ok || v != 2 {
		t.Fatalf("wait count = %v ok=%v", v, ok)
	}
	if v, ok := read("self/wait_seconds", map[string]string{"class": "batch", TagQuantile: "0.99"}); !ok || v <= 0 {
		t.Fatalf("wait p99 = %v ok=%v", v, ok)
	}

	// The periodic self-scrape writes on the sim clock's cadence.
	stop := StartSelfScrape(clk, r, db, 10*time.Second)
	defer stop()
	r.Counter("binds_total").Add(1)
	clk.Advance(10 * time.Second)
	if v, ok := read("self/binds_total", nil); !ok || v != 5 {
		t.Fatalf("after periodic scrape binds_total = %v ok=%v", v, ok)
	}
}

func TestTraceRingWrapAndOrder(t *testing.T) {
	ring := NewTraceRing(4)
	if ring.Cap() != 4 {
		t.Fatalf("cap = %d", ring.Cap())
	}
	spans := []Span{{Stage: StageBind, Dur: time.Millisecond, Count: 1}}
	for i := 1; i <= 10; i++ {
		ring.Record(PassTrace{Scheduler: "s", Seq: int64(i), Spans: spans})
	}
	if ring.Len() != 4 || ring.Total() != 10 {
		t.Fatalf("len=%d total=%d", ring.Len(), ring.Total())
	}
	got := ring.Snapshot()
	for i, tr := range got {
		if want := int64(7 + i); tr.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, tr.Seq, want)
		}
	}
	// Recorded spans are copies: mutating the caller's buffer must not
	// change retained traces.
	spans[0].Dur = time.Hour
	if got2 := ring.Snapshot(); got2[3].Spans[0].Dur != time.Millisecond {
		t.Fatal("ring must copy spans on record")
	}
}

func TestDisabledHandlesAllocFree(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(1)
		h.Observe(1)
		h.ObserveDuration(time.Second)
	})
	if allocs != 0 {
		t.Fatalf("disabled handles allocated %v/op", allocs)
	}
}

func TestEnabledHandlesAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	hv := r.HistogramVec("hv", "class", nil).With("batch")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(1)
		h.Observe(0.01)
		hv.ObserveDuration(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("enabled handles allocated %v/op", allocs)
	}
}
