package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): one TYPE comment per family, counters and
// gauges as plain samples, histograms as cumulative _bucket series plus
// _sum and _count. Registered collectors run first, so collector-backed
// gauges are current. Series are emitted in deterministic name/label
// order. No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.Collect()
	r.mu.Lock()
	defer r.mu.Unlock()

	lastType := ""
	typeLine := func(name, kind string) {
		if name != lastType {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
			lastType = name
		}
	}
	label := func(k metricKey, extra ...string) string {
		pairs := ""
		if k.labelKey != "" {
			pairs = fmt.Sprintf("%s=%q", k.labelKey, k.labelValue)
		}
		for i := 0; i+1 < len(extra); i += 2 {
			if pairs != "" {
				pairs += ","
			}
			pairs += fmt.Sprintf("%s=%q", extra[i], extra[i+1])
		}
		if pairs == "" {
			return ""
		}
		return "{" + pairs + "}"
	}

	for _, k := range sortedKeys(r.counters) {
		typeLine(k.name, "counter")
		fmt.Fprintf(w, "%s%s %d\n", k.name, label(k), r.counters[k].Value())
	}
	for _, k := range sortedKeys(r.gauges) {
		typeLine(k.name, "gauge")
		fmt.Fprintf(w, "%s%s %s\n", k.name, label(k), formatFloat(r.gauges[k].Value()))
	}
	for _, k := range sortedKeys(r.histograms) {
		typeLine(k.name, "histogram")
		h := r.histograms[k]
		cum, count, sum := h.snapshotBuckets()
		for i, bound := range h.bounds {
			fmt.Fprintf(w, "%s_bucket%s %d\n", k.name, label(k, "le", formatFloat(bound)), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", k.name, label(k, "le", "+Inf"), cum[len(cum)-1])
		fmt.Fprintf(w, "%s_sum%s %s\n", k.name, label(k), formatFloat(sum))
		fmt.Fprintf(w, "%s_count%s %d\n", k.name, label(k), count)
	}
	return nil
}

// formatFloat renders a float the way Prometheus expects: shortest
// representation, NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
