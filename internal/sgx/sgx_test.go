package sgx

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/sgxorch/sgxorch/internal/resource"
)

func TestDefaultGeometryMatchesPaper(t *testing.T) {
	g := DefaultGeometry()
	if got := g.TotalPages(); got != 32768 {
		t.Fatalf("TotalPages = %d, want 32768", got)
	}
	// "a total of 23 936 pages" and "93.5 MiB" (§II).
	if got := g.UsablePages(); got != 23936 {
		t.Fatalf("UsablePages = %d, want 23936", got)
	}
	if got := g.UsableBytes(); got != 93*resource.MiB+512*resource.KiB {
		t.Fatalf("UsableBytes = %d, want 93.5 MiB", got)
	}
}

func TestGeometryScalesProportionally(t *testing.T) {
	cases := []struct {
		sizeMiB     int64
		usablePages int64
	}{
		{32, 32 * 256 * usableNum / usableDen},
		{64, 64 * 256 * usableNum / usableDen},
		{256, 256 * 256 * usableNum / usableDen},
	}
	for _, tc := range cases {
		g := GeometryForSize(tc.sizeMiB * resource.MiB)
		if got := g.UsablePages(); got != tc.usablePages {
			t.Errorf("UsablePages(%d MiB) = %d, want %d", tc.sizeMiB, got, tc.usablePages)
		}
	}
}

func TestEnclaveLifecycle(t *testing.T) {
	p := NewPackage(DefaultGeometry())
	e := p.CreateEnclave(42, "/kubepods/pod-1")
	if e.State() != EnclaveCreated {
		t.Fatalf("state = %v, want created", e.State())
	}
	if err := e.AddPages(100); err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if e.State() != EnclaveInitialized {
		t.Fatalf("state = %v, want initialized", e.State())
	}
	// SGX 1: no EADD after EINIT (§V-E).
	if err := e.AddPages(1); !errors.Is(err, ErrEnclaveState) {
		t.Fatalf("AddPages after Init err = %v, want ErrEnclaveState", err)
	}
	if err := e.Init(); !errors.Is(err, ErrEnclaveState) {
		t.Fatalf("double Init err = %v, want ErrEnclaveState", err)
	}
	if err := e.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := e.Destroy(); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("double Destroy err = %v, want ErrEnclaveDestroyed", err)
	}
	if got := p.CommittedPages(); got != 0 {
		t.Fatalf("CommittedPages after destroy = %d, want 0", got)
	}
	if got := p.EnclaveCount(); got != 0 {
		t.Fatalf("EnclaveCount after destroy = %d, want 0", got)
	}
}

func TestAddPagesNegative(t *testing.T) {
	p := NewPackage(DefaultGeometry())
	e := p.CreateEnclave(1, "c")
	if err := e.AddPages(-1); !errors.Is(err, ErrEnclaveState) {
		t.Fatalf("AddPages(-1) err = %v", err)
	}
}

func TestEPCExhaustionWithoutOvercommit(t *testing.T) {
	p := NewPackage(DefaultGeometry())
	a := p.CreateEnclave(1, "a")
	if err := a.AddPages(23936); err != nil {
		t.Fatalf("filling EPC exactly should work: %v", err)
	}
	b := p.CreateEnclave(2, "b")
	if err := b.AddPages(1); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("over-commit err = %v, want ErrEPCExhausted", err)
	}
	if got := p.FreePages(); got != 0 {
		t.Fatalf("FreePages = %d, want 0", got)
	}
	if err := a.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPages(1); err != nil {
		t.Fatalf("allocation after release failed: %v", err)
	}
}

func TestOvercommitAndSlowdown(t *testing.T) {
	p := NewPackage(DefaultGeometry(), WithOvercommit())
	e := p.CreateEnclave(1, "a")
	if err := e.AddPages(2 * 23936); err != nil {
		t.Fatalf("overcommit with paging enabled failed: %v", err)
	}
	if got := p.ResidentFraction(); got != 0.5 {
		t.Fatalf("ResidentFraction = %v, want 0.5", got)
	}
	want := 1 + (MaxPagingSlowdown-1)*0.5
	if got := p.SlowdownFactor(); got != want {
		t.Fatalf("SlowdownFactor = %v, want %v", got, want)
	}
	if got := p.FreePages(); got != 0 {
		t.Fatalf("FreePages under overcommit = %d, want 0", got)
	}
}

func TestNoOvercommitSlowdownIsOne(t *testing.T) {
	p := NewPackage(DefaultGeometry())
	e := p.CreateEnclave(1, "a")
	if err := e.AddPages(1000); err != nil {
		t.Fatal(err)
	}
	if got := p.SlowdownFactor(); got != 1 {
		t.Fatalf("SlowdownFactor = %v, want 1", got)
	}
}

func TestPagesForPIDAndCgroup(t *testing.T) {
	p := NewPackage(DefaultGeometry())
	e1 := p.CreateEnclave(10, "/kubepods/podA")
	e2 := p.CreateEnclave(10, "/kubepods/podA")
	e3 := p.CreateEnclave(20, "/kubepods/podB")
	for _, pair := range []struct {
		e *Enclave
		n int64
	}{{e1, 100}, {e2, 50}, {e3, 30}} {
		if err := pair.e.AddPages(pair.n); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.PagesForPID(10); got != 150 {
		t.Fatalf("PagesForPID(10) = %d, want 150", got)
	}
	if got := p.PagesForPID(99); got != 0 {
		t.Fatalf("PagesForPID(99) = %d, want 0", got)
	}
	if got := p.PagesForCgroup("/kubepods/podA"); got != 150 {
		t.Fatalf("PagesForCgroup(podA) = %d, want 150", got)
	}
	if got := p.PagesForCgroup("/kubepods/podB"); got != 30 {
		t.Fatalf("PagesForCgroup(podB) = %d, want 30", got)
	}
}

func TestCostModelFig6Trends(t *testing.T) {
	m := DefaultCostModel()
	usable := DefaultGeometry().UsableBytes()

	// PSW startup alone for a zero-byte enclave.
	if got := m.StartupLatency(0, usable); got != 100*time.Millisecond {
		t.Fatalf("StartupLatency(0) = %v, want 100ms", got)
	}

	// Below the knee: 1.6 ms/MiB.
	got32 := m.AllocLatency(32*resource.MiB, usable)
	if want := 32 * 1600 * time.Microsecond; got32 != want {
		t.Fatalf("AllocLatency(32MiB) = %v, want %v", got32, want)
	}

	// Exactly at the knee (93.5 MiB): still the cheap slope.
	gotKnee := m.AllocLatency(usable, usable)
	if want := time.Duration(93.5 * 1600 * float64(time.Microsecond)); gotKnee != want {
		t.Fatalf("AllocLatency(93.5MiB) = %v, want %v", gotKnee, want)
	}

	// Above the knee: fixed 200 ms plus 4.5 ms/MiB for the excess.
	got128 := m.AllocLatency(128*resource.MiB, usable)
	want128 := gotKnee + 200*time.Millisecond +
		time.Duration(34.5*4500*float64(time.Microsecond))
	if got128 != want128 {
		t.Fatalf("AllocLatency(128MiB) = %v, want %v", got128, want128)
	}

	// Total at 128 MiB lands near the paper's ~600 ms reading.
	total := m.StartupLatency(128*resource.MiB, usable)
	if total < 580*time.Millisecond || total > 620*time.Millisecond {
		t.Fatalf("StartupLatency(128MiB) = %v, want ~600ms", total)
	}

	// Standard jobs: "less than 1 ms".
	if m.StandardStartup >= time.Millisecond {
		t.Fatalf("StandardStartup = %v, want < 1ms", m.StandardStartup)
	}
}

func TestCostModelMonotoneInAllocation(t *testing.T) {
	m := DefaultCostModel()
	usable := DefaultGeometry().UsableBytes()
	f := func(a, b uint32) bool {
		x, y := int64(a)%(256*resource.MiB), int64(b)%(256*resource.MiB)
		if x > y {
			x, y = y, x
		}
		return m.AllocLatency(x, usable) <= m.AllocLatency(y, usable)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestJitteredStaysWithinBounds(t *testing.T) {
	m := DefaultCostModel()
	usable := DefaultGeometry().UsableBytes()
	sample := m.Jittered(rand.New(rand.NewSource(1)), 0.1)
	base := m.StartupLatency(64*resource.MiB, usable)
	for i := 0; i < 100; i++ {
		got := sample(64*resource.MiB, usable)
		lo := time.Duration(float64(base) * 0.9)
		hi := time.Duration(float64(base) * 1.1)
		if got < lo || got > hi {
			t.Fatalf("jittered sample %v outside [%v, %v]", got, lo, hi)
		}
	}
}

// Property: committed pages accounting never leaks across create/destroy
// sequences.
func TestCommitReleaseAccountingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		p := NewPackage(DefaultGeometry(), WithOvercommit())
		var live []*Enclave
		var want int64
		for i, s := range sizes {
			e := p.CreateEnclave(i, "cg")
			n := int64(s % 1000)
			if err := e.AddPages(n); err != nil {
				return false
			}
			want += n
			live = append(live, e)
		}
		if p.CommittedPages() != want {
			return false
		}
		for _, e := range live {
			if err := e.Destroy(); err != nil {
				return false
			}
		}
		return p.CommittedPages() == 0 && p.EnclaveCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
