package sgx

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMeasurementDeterministic(t *testing.T) {
	a := MeasureContents([]byte("enclave.so v1"))
	b := MeasureContents([]byte("enclave.so v1"))
	c := MeasureContents([]byte("enclave.so v2"))
	if a != b {
		t.Fatal("same contents, different measurement")
	}
	if a == c {
		t.Fatal("different contents, same measurement")
	}
}

func TestLaunchTokenRoundTrip(t *testing.T) {
	p := NewPlatform(1)
	aesm := NewAESM(p)
	m := MeasureContents([]byte("service"))
	tok := aesm.IssueLaunchToken(m)
	if err := aesm.ValidateLaunchToken(tok, m); err != nil {
		t.Fatalf("valid token rejected: %v", err)
	}
}

func TestLaunchTokenWrongEnclave(t *testing.T) {
	aesm := NewAESM(NewPlatform(1))
	tok := aesm.IssueLaunchToken(MeasureContents([]byte("a")))
	err := aesm.ValidateLaunchToken(tok, MeasureContents([]byte("b")))
	if !errors.Is(err, ErrBadLaunchToken) {
		t.Fatalf("err = %v, want ErrBadLaunchToken", err)
	}
}

func TestLaunchTokenDoesNotTransferAcrossPlatforms(t *testing.T) {
	m := MeasureContents([]byte("service"))
	tok := NewAESM(NewPlatform(1)).IssueLaunchToken(m)
	err := NewAESM(NewPlatform(2)).ValidateLaunchToken(tok, m)
	if !errors.Is(err, ErrBadLaunchToken) {
		t.Fatalf("cross-platform token accepted: %v", err)
	}
}

func TestLaunchTokenForgedMAC(t *testing.T) {
	p := NewPlatform(1)
	aesm := NewAESM(p)
	m := MeasureContents([]byte("service"))
	tok := aesm.IssueLaunchToken(m)
	tok.mac[0] ^= 0xff
	if err := aesm.ValidateLaunchToken(tok, m); !errors.Is(err, ErrBadLaunchToken) {
		t.Fatalf("forged token accepted: %v", err)
	}
}

func TestQuoteVerification(t *testing.T) {
	p1, p2 := NewPlatform(1), NewPlatform(2)
	ias := NewAttestationService(p1, p2)
	m := MeasureContents([]byte("secure-job"))
	var report [64]byte
	copy(report[:], "key-exchange-transcript-hash")

	q := NewAESM(p1).GenerateQuote(m, report)
	if err := ias.Verify(q); err != nil {
		t.Fatalf("genuine quote rejected: %v", err)
	}
	if q.PlatformID != 1 || q.Measurement != m {
		t.Fatalf("quote fields: %+v", q)
	}
}

func TestQuoteTamperDetection(t *testing.T) {
	p := NewPlatform(1)
	ias := NewAttestationService(p)
	m := MeasureContents([]byte("secure-job"))
	q := NewAESM(p).GenerateQuote(m, [64]byte{})

	// Tampered measurement.
	q1 := q
	q1.Measurement[0] ^= 1
	if err := ias.Verify(q1); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("tampered measurement accepted: %v", err)
	}
	// Tampered report data.
	q2 := q
	q2.ReportData[0] ^= 1
	if err := ias.Verify(q2); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("tampered report accepted: %v", err)
	}
	// Unknown platform.
	q3 := q
	q3.PlatformID = 99
	if err := ias.Verify(q3); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("unknown platform accepted: %v", err)
	}
}

func TestQuoteFromUnprovisionedPlatform(t *testing.T) {
	ias := NewAttestationService(NewPlatform(1))
	rogue := NewAESM(NewPlatform(66))
	q := rogue.GenerateQuote(MeasureContents([]byte("x")), [64]byte{})
	if err := ias.Verify(q); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("rogue platform accepted: %v", err)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p := NewPlatform(1)
	m := MeasureContents([]byte("stateful-service"))
	key := p.SealKey(m)
	nonce := [12]byte{1, 2, 3}
	secret := []byte("database encryption master key")

	sealed, err := Seal(key, nonce, secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, secret) {
		t.Fatal("sealed blob leaks plaintext")
	}
	back, err := Unseal(key, nonce, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, secret) {
		t.Fatalf("unsealed = %q", back)
	}
}

func TestSealKeyIsolation(t *testing.T) {
	m1 := MeasureContents([]byte("enclave-1"))
	m2 := MeasureContents([]byte("enclave-2"))
	p1, p2 := NewPlatform(1), NewPlatform(2)
	nonce := [12]byte{9}

	sealed, err := Seal(p1.SealKey(m1), nonce, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// A different enclave on the same platform cannot unseal.
	if _, err := Unseal(p1.SealKey(m2), nonce, sealed); !errors.Is(err, ErrUnsealFailed) {
		t.Fatalf("cross-enclave unseal: %v", err)
	}
	// The same enclave on a different platform cannot unseal — "a memory
	// dump on a victim's machine will only produce encrypted data" (§II).
	if _, err := Unseal(p2.SealKey(m1), nonce, sealed); !errors.Is(err, ErrUnsealFailed) {
		t.Fatalf("cross-platform unseal: %v", err)
	}
}

func TestSealTamperDetection(t *testing.T) {
	p := NewPlatform(1)
	key := p.SealKey(MeasureContents([]byte("e")))
	nonce := [12]byte{5}
	sealed, err := Seal(key, nonce, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	sealed[0] ^= 0xff
	if _, err := Unseal(key, nonce, sealed); !errors.Is(err, ErrUnsealFailed) {
		t.Fatalf("tampered blob unsealed: %v", err)
	}
}

// Property: seal/unseal round-trips for arbitrary payloads and seeds.
func TestSealRoundTripProperty(t *testing.T) {
	f := func(seed uint64, contents, payload []byte) bool {
		p := NewPlatform(seed)
		key := p.SealKey(MeasureContents(contents))
		nonce := [12]byte{0xA}
		sealed, err := Seal(key, nonce, payload)
		if err != nil {
			return false
		}
		back, err := Unseal(key, nonce, sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(back, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quotes verify iff untampered.
func TestQuoteSoundnessProperty(t *testing.T) {
	f := func(seed uint64, contents []byte, flip uint8) bool {
		p := NewPlatform(seed)
		ias := NewAttestationService(p)
		q := NewAESM(p).GenerateQuote(MeasureContents(contents), [64]byte{})
		if ias.Verify(q) != nil {
			return false
		}
		q.signature[flip%32] ^= 0x01
		return errors.Is(ias.Verify(q), ErrBadQuote)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
