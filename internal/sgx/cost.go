package sgx

import (
	"math/rand"
	"time"

	"github.com/sgxorch/sgxorch/internal/resource"
)

// CostModel reproduces the startup-latency measurements of Fig. 6
// ("Startup time of SGX processes observed for varying EPC sizes", §VI-D):
//
//   - launching the Platform Software / AESM service costs a constant
//     ~100 ms ("the service startup time is virtually the same in all
//     runs, accounting for about 100 ms");
//   - committing enclave memory costs 1.6 ms/MiB up to the usable EPC
//     limit, "after which it jumps to 4.5 ms/MiB, plus a fixed delay of
//     about 200 ms";
//   - standard (non-SGX) processes start in under 1 ms and are omitted
//     from the figure.
type CostModel struct {
	// PSWStartup is the AESM/PSW service initialization cost paid once
	// per container (§VI-D: one PSW instance per container because
	// privileged mode is avoided).
	PSWStartup time.Duration
	// AllocBelowPerMiB is the per-MiB commit cost while the allocation
	// fits in usable EPC.
	AllocBelowPerMiB time.Duration
	// AllocAbovePerMiB is the per-MiB cost for the portion beyond usable
	// EPC (the paging regime).
	AllocAbovePerMiB time.Duration
	// AllocAboveFixed is the fixed penalty paid once when the allocation
	// crosses the usable-EPC boundary.
	AllocAboveFixed time.Duration
	// StandardStartup is the startup latency of a non-SGX process
	// ("steadily took less than 1 ms").
	StandardStartup time.Duration
}

// DefaultCostModel returns the constants measured in §VI-D.
func DefaultCostModel() CostModel {
	return CostModel{
		PSWStartup:       100 * time.Millisecond,
		AllocBelowPerMiB: 1600 * time.Microsecond,
		AllocAbovePerMiB: 4500 * time.Microsecond,
		AllocAboveFixed:  200 * time.Millisecond,
		StandardStartup:  500 * time.Microsecond,
	}
}

// durPerMiB scales a per-MiB cost to an arbitrary byte count.
func durPerMiB(perMiB time.Duration, bytes int64) time.Duration {
	return time.Duration(float64(perMiB) * float64(bytes) / float64(resource.MiB))
}

// AllocLatency returns the time to commit allocBytes of enclave memory on
// a package whose usable EPC is usableBytes, following the two-slope model
// of Fig. 6.
func (m CostModel) AllocLatency(allocBytes, usableBytes int64) time.Duration {
	if allocBytes <= 0 {
		return 0
	}
	if allocBytes <= usableBytes {
		return durPerMiB(m.AllocBelowPerMiB, allocBytes)
	}
	below := durPerMiB(m.AllocBelowPerMiB, usableBytes)
	above := durPerMiB(m.AllocAbovePerMiB, allocBytes-usableBytes)
	return below + above + m.AllocAboveFixed
}

// StartupLatency returns the full SGX process startup time for an enclave
// allocation of allocBytes: PSW service launch plus memory commitment.
func (m CostModel) StartupLatency(allocBytes, usableBytes int64) time.Duration {
	return m.PSWStartup + m.AllocLatency(allocBytes, usableBytes)
}

// Jittered returns a sampling function that perturbs StartupLatency by a
// uniform relative jitter in ±frac, reproducing the run-to-run variance
// behind Fig. 6's 95% confidence intervals (60 runs per point).
func (m CostModel) Jittered(r *rand.Rand, frac float64) func(allocBytes, usableBytes int64) time.Duration {
	return func(allocBytes, usableBytes int64) time.Duration {
		base := m.StartupLatency(allocBytes, usableBytes)
		jitter := 1 + frac*(2*r.Float64()-1)
		return time.Duration(float64(base) * jitter)
	}
}
