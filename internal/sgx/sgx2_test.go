package sgx

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSGX2Capability(t *testing.T) {
	p1 := NewPackage(DefaultGeometry())
	if p1.SGX2() {
		t.Fatal("SGX 1 package reports SGX 2")
	}
	p2 := NewPackage(DefaultGeometry(), WithSGX2())
	if !p2.SGX2() {
		t.Fatal("WithSGX2 not applied")
	}
}

func TestAugmentRequiresSGX2(t *testing.T) {
	p := NewPackage(DefaultGeometry())
	e := p.CreateEnclave(1, "cg")
	if err := e.AddPages(10); err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	// SGX 1: no dynamic allocation after EINIT.
	if err := e.AugmentPages(5); !errors.Is(err, ErrSGX1Only) {
		t.Fatalf("AugmentPages on SGX1 err = %v, want ErrSGX1Only", err)
	}
	if _, err := e.TrimPages(5); !errors.Is(err, ErrSGX1Only) {
		t.Fatalf("TrimPages on SGX1 err = %v, want ErrSGX1Only", err)
	}
}

func TestAugmentAndTrimLifecycle(t *testing.T) {
	p := NewPackage(DefaultGeometry(), WithSGX2())
	e := p.CreateEnclave(1, "cg")
	// EAUG before EINIT is a lifecycle error even on SGX 2.
	if err := e.AugmentPages(1); !errors.Is(err, ErrEnclaveState) {
		t.Fatalf("pre-init EAUG err = %v", err)
	}
	if _, err := e.TrimPages(1); !errors.Is(err, ErrEnclaveState) {
		t.Fatalf("pre-init trim err = %v", err)
	}
	if err := e.AddPages(100); err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if err := e.AugmentPages(50); err != nil {
		t.Fatalf("EAUG failed: %v", err)
	}
	if got := e.Pages(); got != 150 {
		t.Fatalf("pages = %d, want 150", got)
	}
	if got := p.CommittedPages(); got != 150 {
		t.Fatalf("committed = %d", got)
	}
	// Trim more than held: clamps.
	released, err := e.TrimPages(1000)
	if err != nil || released != 150 {
		t.Fatalf("TrimPages = %d, %v; want 150", released, err)
	}
	if got := p.FreePages(); got != p.Geometry().UsablePages() {
		t.Fatalf("free = %d after full trim", got)
	}
	if err := e.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := e.AugmentPages(1); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("EAUG after destroy err = %v", err)
	}
	if _, err := e.TrimPages(1); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("trim after destroy err = %v", err)
	}
}

func TestAugmentNegative(t *testing.T) {
	p := NewPackage(DefaultGeometry(), WithSGX2())
	e := p.CreateEnclave(1, "cg")
	if err := e.AddPages(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if err := e.AugmentPages(-1); !errors.Is(err, ErrEnclaveState) {
		t.Fatalf("negative EAUG err = %v", err)
	}
	if _, err := e.TrimPages(-1); !errors.Is(err, ErrEnclaveState) {
		t.Fatalf("negative trim err = %v", err)
	}
}

func TestAugmentRespectsEPCCapacity(t *testing.T) {
	// Without overcommit, dynamic growth hits the usable-EPC wall too.
	p := NewPackage(DefaultGeometry(), WithSGX2())
	e := p.CreateEnclave(1, "cg")
	if err := e.AddPages(23000); err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if err := e.AugmentPages(936); err != nil {
		t.Fatalf("EAUG within capacity failed: %v", err)
	}
	if err := e.AugmentPages(1); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("EAUG past capacity err = %v", err)
	}
}

// Property: any interleaving of EAUG/trim keeps package accounting
// balanced.
func TestDynamicAccountingProperty(t *testing.T) {
	f := func(ops []int16) bool {
		p := NewPackage(DefaultGeometry(), WithSGX2(), WithOvercommit())
		e := p.CreateEnclave(1, "cg")
		if err := e.AddPages(100); err != nil {
			return false
		}
		if err := e.Init(); err != nil {
			return false
		}
		var held int64 = 100
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				if err := e.AugmentPages(n % 1000); err != nil {
					return false
				}
				held += n % 1000
			} else {
				m := (-n) % 1000
				released, err := e.TrimPages(m)
				if err != nil {
					return false
				}
				want := m
				if want > held {
					want = held
				}
				if released != want {
					return false
				}
				held -= released
			}
			if e.Pages() != held || p.CommittedPages() != held {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
