package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Attestation and sealing model (§II). The paper's background describes
// the architectural enclaves brokered by the AESM — the Launch Enclave
// (LE), which issues the launch tokens required by EINIT; the Quoting
// Enclave (QE), which signs reports for remote attestation ("a custom
// remote attestation protocol allows to verify that a particular version
// of a specific enclave runs on a remote machine, using a genuine Intel
// processor"); and the Provisioning Enclave (PE), which establishes the
// platform's attestation key. Sealed storage lets enclaves persist data
// "protected by a seal key", which "waiv[es] the need for a new remote
// attestation every time the SGX application restarts".
//
// The model uses real cryptography (HMAC-SHA-256, AES-GCM) over simulated
// fused platform keys, so protocol-level properties — tokens don't
// transfer between platforms, quotes fail verification when tampered,
// sealed blobs only open on the sealing platform for the sealing
// enclave — hold for the tests exactly as they would on silicon.

// Measurement is the enclave identity digest (MRENCLAVE): the hash of the
// enclave contents measured at build time. "An application using enclaves
// must ship a signed (not encrypted) shared library" (§II); the
// measurement covers exactly those contents.
type Measurement [32]byte

// MeasureContents computes the measurement of enclave contents.
func MeasureContents(contents []byte) Measurement {
	return sha256.Sum256(contents)
}

// Attestation errors.
var (
	// ErrBadLaunchToken is returned by EINIT-time token validation.
	ErrBadLaunchToken = errors.New("sgx: invalid launch token")
	// ErrBadQuote is returned when quote verification fails.
	ErrBadQuote = errors.New("sgx: quote verification failed")
	// ErrUnsealFailed is returned when sealed data cannot be opened.
	ErrUnsealFailed = errors.New("sgx: unseal failed")
)

// Platform models one SGX-capable CPU's fused key material. The CPU
// package is the security boundary (§II), so every derived secret is
// keyed on it.
type Platform struct {
	// ID is the platform's public identity (e.g. the PPID derived during
	// provisioning).
	ID uint64

	fuseKey [32]byte
}

// NewPlatform derives a deterministic simulated platform from a seed;
// distinct seeds behave like distinct CPUs.
func NewPlatform(seed uint64) *Platform {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seed)
	p := &Platform{ID: seed}
	p.fuseKey = sha256.Sum256(append([]byte("sgx-fuse-key"), buf[:]...))
	return p
}

// derive produces a labelled subkey of the platform's fused key.
func (p *Platform) derive(label string, context []byte) [32]byte {
	mac := hmac.New(sha256.New, p.fuseKey[:])
	mac.Write([]byte(label))
	mac.Write(context)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// LaunchToken authorises EINIT of a specific enclave on a specific
// platform (§II: an enclave "must then be initialized using a launch
// token").
type LaunchToken struct {
	Measurement Measurement
	PlatformID  uint64
	mac         [32]byte
}

// AESM is the Application Enclave Service Manager: "access to the LE and
// other architectural enclaves, such as the Quoting Enclave (QE) and the
// Provisioning Enclave (PE), is provided by the Intel Application Enclave
// Service Manager" (§II). One instance runs per container in the paper's
// deployment (§VI-D).
type AESM struct {
	platform *Platform
}

// NewAESM starts the service for a platform.
func NewAESM(p *Platform) *AESM { return &AESM{platform: p} }

// PlatformID exposes the platform identity used in quotes.
func (a *AESM) PlatformID() uint64 { return a.platform.ID }

// IssueLaunchToken is the Launch Enclave operation: it binds a
// measurement to this platform.
func (a *AESM) IssueLaunchToken(m Measurement) LaunchToken {
	key := a.platform.derive("launch-key", nil)
	return LaunchToken{
		Measurement: m,
		PlatformID:  a.platform.ID,
		mac:         tokenMAC(key, m, a.platform.ID),
	}
}

// ValidateLaunchToken is the EINIT-side check of a token.
func (a *AESM) ValidateLaunchToken(t LaunchToken, m Measurement) error {
	if t.Measurement != m {
		return fmt.Errorf("%w: token for different enclave", ErrBadLaunchToken)
	}
	if t.PlatformID != a.platform.ID {
		return fmt.Errorf("%w: token from platform %d used on %d",
			ErrBadLaunchToken, t.PlatformID, a.platform.ID)
	}
	key := a.platform.derive("launch-key", nil)
	if !hmac.Equal(t.mac[:], tokenMAC(key, m, a.platform.ID).bytes()) {
		return fmt.Errorf("%w: bad MAC", ErrBadLaunchToken)
	}
	return nil
}

type mac32 [32]byte

func (m mac32) bytes() []byte { return m[:] }

func tokenMAC(key [32]byte, m Measurement, platformID uint64) mac32 {
	h := hmac.New(sha256.New, key[:])
	h.Write(m[:])
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], platformID)
	h.Write(buf[:])
	var out mac32
	copy(out[:], h.Sum(nil))
	return out
}

// Quote is the Quoting Enclave's signed statement: this measurement runs
// on this platform, with 64 bytes of caller-chosen report data (typically
// a key-exchange transcript hash).
type Quote struct {
	Measurement Measurement
	PlatformID  uint64
	ReportData  [64]byte
	signature   [32]byte
}

// GenerateQuote is the QE operation.
func (a *AESM) GenerateQuote(m Measurement, reportData [64]byte) Quote {
	key := a.platform.derive("attestation-key", nil)
	return Quote{
		Measurement: m,
		PlatformID:  a.platform.ID,
		ReportData:  reportData,
		signature:   quoteSig(key, m, a.platform.ID, reportData),
	}
}

func quoteSig(key [32]byte, m Measurement, platformID uint64, reportData [64]byte) [32]byte {
	h := hmac.New(sha256.New, key[:])
	h.Write(m[:])
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], platformID)
	h.Write(buf[:])
	h.Write(reportData[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// AttestationService models the verification authority (Intel's IAS): it
// knows the provisioned platforms and checks quote signatures.
type AttestationService struct {
	platforms map[uint64]*Platform
}

// NewAttestationService registers the provisioned platforms (the PE's
// job, abstracted).
func NewAttestationService(platforms ...*Platform) *AttestationService {
	s := &AttestationService{platforms: make(map[uint64]*Platform, len(platforms))}
	for _, p := range platforms {
		s.platforms[p.ID] = p
	}
	return s
}

// Verify checks a quote: known platform, intact signature.
func (s *AttestationService) Verify(q Quote) error {
	p, ok := s.platforms[q.PlatformID]
	if !ok {
		return fmt.Errorf("%w: unknown platform %d", ErrBadQuote, q.PlatformID)
	}
	key := p.derive("attestation-key", nil)
	want := quoteSig(key, q.Measurement, q.PlatformID, q.ReportData)
	if !hmac.Equal(q.signature[:], want[:]) {
		return fmt.Errorf("%w: signature mismatch", ErrBadQuote)
	}
	return nil
}

// SealKey derives the enclave- and platform-specific sealing key
// (MRENCLAVE policy): only the same enclave on the same CPU re-derives it
// (§II: data "can be saved to persistent storage, protected by a seal
// key").
func (p *Platform) SealKey(m Measurement) [32]byte {
	return p.derive("seal-key", m[:])
}

// Seal encrypts data under the enclave's sealing key with AES-GCM. The
// nonce must be unique per (key, message); callers provide it so sealed
// blobs stay deterministic in simulations.
func Seal(key [32]byte, nonce [12]byte, plaintext []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	return gcm.Seal(nil, nonce[:], plaintext, nil), nil
}

// Unseal decrypts a sealed blob; wrong key, nonce or tampered data fails.
func Unseal(key [32]byte, nonce [12]byte, sealed []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	out, err := gcm.Open(nil, nonce[:], sealed, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsealFailed, err)
	}
	return out, nil
}

func newGCM(key [32]byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: building AES cipher: %w", err)
	}
	return cipher.NewGCM(block)
}
