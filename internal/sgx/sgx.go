// Package sgx is a behavioural model of an Intel SGX processor package:
// the Enclave Page Cache (EPC), the enclave lifecycle, and the performance
// characteristics the paper measures (§II, §VI-D).
//
// The model substitutes for the real SGX machines of the paper's testbed
// (two i7-6700 with 128 MiB PRM). The rest of the stack — driver, device
// plugin, kubelet, scheduler — only observes page counters and latencies,
// and this package reproduces exactly the counters and latencies the paper
// reports, so scheduling behaviour is preserved.
package sgx

import (
	"errors"
	"fmt"
	"sync"

	"github.com/sgxorch/sgxorch/internal/resource"
)

// Errors returned by EPC operations.
var (
	// ErrEPCExhausted is returned when an allocation would exceed the
	// usable EPC and over-commitment is disabled. The paper's stack
	// "deliberately prevent[s] over-commitment of the EPC" (§V-A).
	ErrEPCExhausted = errors.New("sgx: EPC exhausted")
	// ErrEnclaveState is returned on lifecycle misuse (e.g. adding pages
	// after initialization — SGX 1 commits all memory before EINIT, §II).
	ErrEnclaveState = errors.New("sgx: invalid enclave state")
	// ErrEnclaveDestroyed is returned when operating on a destroyed
	// enclave.
	ErrEnclaveDestroyed = errors.New("sgx: enclave destroyed")
)

// Geometry describes the protected-memory shape of one SGX package.
//
// Current hardware reserves up to 128 MiB of Processor Reserved Memory, of
// which "only 93.5 MiB ... can effectively be used by applications (for a
// total of 23 936 pages), while the rest is used for storing SGX metadata"
// (§II). We keep the same metadata proportion for the hypothetical SGX 2
// sizes evaluated in Fig. 7 (32, 64, 256 MiB).
type Geometry struct {
	// TotalBytes is the PRM size configured via UEFI (power of two in
	// practice, but any positive value is accepted).
	TotalBytes int64
}

// Usable-to-total ratio of current hardware: 23 936 / 32 768 pages.
const (
	usableNum = 23936
	usableDen = 32768
)

// DefaultGeometry is the 128 MiB PRM of the paper's testbed (§VI-A).
func DefaultGeometry() Geometry { return Geometry{TotalBytes: 128 * resource.MiB} }

// GeometryForSize returns a Geometry with the given PRM size in bytes.
func GeometryForSize(totalBytes int64) Geometry { return Geometry{TotalBytes: totalBytes} }

// TotalPages returns the total number of 4 KiB EPC pages, metadata
// included.
func (g Geometry) TotalPages() int64 { return g.TotalBytes / resource.EPCPageSize }

// UsablePages returns the number of pages available to applications. For
// the default 128 MiB geometry this is exactly 23 936 (§II).
func (g Geometry) UsablePages() int64 { return g.TotalPages() * usableNum / usableDen }

// UsableBytes returns the application-usable EPC size in bytes (93.5 MiB
// for the default geometry).
func (g Geometry) UsableBytes() int64 { return resource.BytesForPages(g.UsablePages()) }

// EnclaveState tracks the SGX 1 lifecycle: ECREATE → EADD* → EINIT →
// (running) → destroy.
type EnclaveState int

// Enclave lifecycle states.
const (
	EnclaveCreated EnclaveState = iota + 1
	EnclaveInitialized
	EnclaveDestroyedState
)

// String renders the state for diagnostics.
func (s EnclaveState) String() string {
	switch s {
	case EnclaveCreated:
		return "created"
	case EnclaveInitialized:
		return "initialized"
	case EnclaveDestroyedState:
		return "destroyed"
	default:
		return fmt.Sprintf("EnclaveState(%d)", int(s))
	}
}

// Enclave is one protected execution context owning a number of committed
// EPC pages.
type Enclave struct {
	ID         uint64
	PID        int    // owning process, for the per-process ioctl (§V-E)
	CgroupPath string // pod identity, for limit enforcement (§V-D)

	mu    sync.Mutex
	pkg   *Package
	pages int64
	state EnclaveState
}

// Pages returns the number of EPC pages committed to the enclave.
func (e *Enclave) Pages() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pages
}

// State returns the current lifecycle state.
func (e *Enclave) State() EnclaveState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// AddPages commits n more EPC pages to the enclave (EADD). In SGX 1 this
// is only legal before EINIT: "enclaves must allocate all chunks of
// protected memory that they plan to use at initialization time" (§V-E).
func (e *Enclave) AddPages(n int64) error {
	if n < 0 {
		return fmt.Errorf("%w: negative page count %d", ErrEnclaveState, n)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.state {
	case EnclaveDestroyedState:
		return ErrEnclaveDestroyed
	case EnclaveInitialized:
		return fmt.Errorf("%w: EADD after EINIT (SGX 1 forbids dynamic allocation)", ErrEnclaveState)
	}
	if err := e.pkg.commit(n); err != nil {
		return err
	}
	e.pages += n
	return nil
}

// Init transitions the enclave to the initialized state (EINIT). The
// launch-token / limit-enforcement checks live in the driver (§V-E), which
// calls its hook before invoking Init.
func (e *Enclave) Init() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.state {
	case EnclaveDestroyedState:
		return ErrEnclaveDestroyed
	case EnclaveInitialized:
		return fmt.Errorf("%w: double EINIT", ErrEnclaveState)
	}
	e.state = EnclaveInitialized
	return nil
}

// Destroy releases the enclave's pages back to the EPC. Destroying twice
// is an error.
func (e *Enclave) Destroy() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == EnclaveDestroyedState {
		return ErrEnclaveDestroyed
	}
	e.pkg.release(e.pages)
	e.pkg.forget(e.ID)
	e.pages = 0
	e.state = EnclaveDestroyedState
	return nil
}

// Package models one SGX-capable CPU package and its EPC.
type Package struct {
	geo Geometry
	// allowOvercommit enables the paging mechanism (§II). The
	// orchestrator stack keeps it disabled on purpose (§V-A), but the
	// model implements it so the 1000× penalty regime is testable.
	allowOvercommit bool
	// sgx2 enables dynamic EPC memory management (EDMM, §VI-G).
	sgx2 bool

	mu        sync.Mutex
	enclaves  map[uint64]*Enclave
	committed int64 // total committed pages across enclaves
	nextID    uint64
}

// Option configures a Package.
type Option func(*Package)

// WithOvercommit enables EPC over-commitment via paging.
func WithOvercommit() Option {
	return func(p *Package) { p.allowOvercommit = true }
}

// NewPackage creates an SGX package with the given geometry.
func NewPackage(geo Geometry, opts ...Option) *Package {
	p := &Package{
		geo:      geo,
		enclaves: make(map[uint64]*Enclave),
		nextID:   1,
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Geometry returns the package's EPC geometry.
func (p *Package) Geometry() Geometry { return p.geo }

// CreateEnclave performs ECREATE for a process. The returned enclave holds
// no pages yet.
func (p *Package) CreateEnclave(pid int, cgroupPath string) *Enclave {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := &Enclave{
		ID:         p.nextID,
		PID:        pid,
		CgroupPath: cgroupPath,
		pkg:        p,
		state:      EnclaveCreated,
	}
	p.nextID++
	p.enclaves[e.ID] = e
	return e
}

// commit reserves n pages of EPC.
func (p *Package) commit(n int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.allowOvercommit && p.committed+n > p.geo.UsablePages() {
		return fmt.Errorf("%w: committed %d + %d > usable %d pages",
			ErrEPCExhausted, p.committed, n, p.geo.UsablePages())
	}
	p.committed += n
	return nil
}

func (p *Package) release(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.committed -= n
	if p.committed < 0 {
		p.committed = 0
	}
}

func (p *Package) forget(id uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.enclaves, id)
}

// CommittedPages returns the total pages committed across live enclaves.
func (p *Package) CommittedPages() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.committed
}

// FreePages returns the number of usable pages not committed to any
// enclave; with paging enabled it never goes below zero. This value backs
// the driver's sgx_nr_free_pages module parameter (§V-E).
func (p *Package) FreePages() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	free := p.geo.UsablePages() - p.committed
	if free < 0 {
		free = 0
	}
	return free
}

// PagesForPID returns the pages committed by all enclaves of one process —
// the per-process metric exposed through the driver ioctl (§V-E).
func (p *Package) PagesForPID(pid int) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, e := range p.enclaves {
		if e.PID == pid {
			total += e.pages
		}
	}
	return total
}

// PagesForCgroup returns the pages committed by all enclaves whose owning
// pod has the given cgroup path (§V-D uses the cgroup path as pod
// identity).
func (p *Package) PagesForCgroup(cgroupPath string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, e := range p.enclaves {
		if e.CgroupPath == cgroupPath {
			total += e.pages
		}
	}
	return total
}

// EnclaveCount returns the number of live enclaves.
func (p *Package) EnclaveCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.enclaves)
}

// ResidentFraction returns the fraction of committed pages that are
// resident in the EPC. Below full commitment it is 1; with over-commitment
// the EPC is shared proportionally and the fraction drops below 1.
func (p *Package) ResidentFraction() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.committed <= p.geo.UsablePages() {
		return 1
	}
	return float64(p.geo.UsablePages()) / float64(p.committed)
}

// MaxPagingSlowdown bounds the paging penalty: over-commitment "leads to
// severe performance drops up to 1000×" (§V-A, after SCONE's measurements).
const MaxPagingSlowdown = 1000.0

// SlowdownFactor returns the execution-time dilation caused by EPC paging
// at the current commitment level. With every page resident the factor is
// 1. Under over-commitment, a uniformly accessing enclave misses with
// probability (1 - resident fraction) and each miss pays the
// EWB/ELDU + MEE round trip, which we calibrate so that the factor
// approaches the published 1000× worst case as residency goes to zero:
//
//	slowdown = 1 + (MaxPagingSlowdown-1) · (1 - residentFraction)
func (p *Package) SlowdownFactor() float64 {
	return 1 + (MaxPagingSlowdown-1)*(1-p.ResidentFraction())
}
