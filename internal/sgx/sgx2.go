package sgx

import "fmt"

// SGX 2 support (§VI-G): "The most important feature that this new
// version introduces is dynamic EPC memory allocation. Enclaves can ask
// the operating system for the allocation of new memory pages, and may
// also release pages they own ... these operations can also be done
// during their execution."
//
// The hardware model exposes the two dynamic operations — EAUG (augment)
// and trim/EREMOVE — gated on the package's SGX 2 capability. Policy
// (per-pod EPC limits) stays in the driver, which mediates both
// operations exactly as the kernel does for real EDMM.

// WithSGX2 enables dynamic memory management (EDMM) on the package.
func WithSGX2() Option {
	return func(p *Package) { p.sgx2 = true }
}

// SGX2 reports whether the package supports dynamic EPC allocation.
func (p *Package) SGX2() bool { return p.sgx2 }

// ErrSGX1Only is returned for dynamic operations on SGX 1 hardware.
var ErrSGX1Only = fmt.Errorf("sgx: dynamic EPC operations require SGX 2")

// AugmentPages commits n additional pages to an initialized enclave
// (EAUG + EACCEPT). On SGX 1 hardware this fails: all memory must be
// committed before EINIT (§V-E).
func (e *Enclave) AugmentPages(n int64) error {
	if n < 0 {
		return fmt.Errorf("%w: negative page count %d", ErrEnclaveState, n)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.state {
	case EnclaveDestroyedState:
		return ErrEnclaveDestroyed
	case EnclaveCreated:
		// Before EINIT, plain EADD is the right operation.
		return fmt.Errorf("%w: EAUG before EINIT (use AddPages)", ErrEnclaveState)
	}
	if !e.pkg.SGX2() {
		return ErrSGX1Only
	}
	if err := e.pkg.commit(n); err != nil {
		return err
	}
	e.pages += n
	return nil
}

// TrimPages releases up to n pages from an initialized enclave
// (EMODT/ETRACK/EREMOVE). It returns the number of pages actually
// released.
func (e *Enclave) TrimPages(n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("%w: negative page count %d", ErrEnclaveState, n)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.state {
	case EnclaveDestroyedState:
		return 0, ErrEnclaveDestroyed
	case EnclaveCreated:
		return 0, fmt.Errorf("%w: trim before EINIT", ErrEnclaveState)
	}
	if !e.pkg.SGX2() {
		return 0, ErrSGX1Only
	}
	if n > e.pages {
		n = e.pages
	}
	e.pkg.release(n)
	e.pages -= n
	return n, nil
}
