// Package resource defines the resource vocabulary shared by the API
// objects, the device plugin and the scheduler.
//
// The paper's key insight (§V-A) is to expose every EPC page as an
// individually countable resource item so several SGX pods can share a
// node. We therefore model quantities as plain integers: bytes for memory,
// pages for EPC, millicores for CPU.
package resource

import (
	"fmt"
	"sort"
	"strings"
)

// Name identifies a resource kind.
type Name string

// Resource names used across the cluster. EPCPages follows the Kubernetes
// extended-resource naming convention used by device plugins.
const (
	CPU      Name = "cpu"                    // millicores
	Memory   Name = "memory"                 // bytes
	EPCPages Name = "sgx.intel.com/epc-page" // 4 KiB EPC pages (§V-A)
)

// Byte size helpers.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// EPCPageSize is the size of one EPC page: "The EPC is split into pages of
// 4KiB" (§II).
const EPCPageSize int64 = 4 * KiB

// PagesForBytes returns the number of EPC pages needed to hold b bytes
// (rounded up). Zero or negative byte counts need zero pages.
func PagesForBytes(b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (b + EPCPageSize - 1) / EPCPageSize
}

// BytesForPages returns the byte capacity of p EPC pages.
func BytesForPages(p int64) int64 { return p * EPCPageSize }

// List maps resource names to integer quantities. The zero value is usable
// as an empty list, but callers mutating a List must create it with make
// or Clone first.
type List map[Name]int64

// Get returns the quantity for name, or zero when absent.
func (l List) Get(name Name) int64 { return l[name] }

// Clone returns a deep copy of l.
func (l List) Clone() List {
	out := make(List, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Add returns a new List holding l + other, element-wise.
func (l List) Add(other List) List {
	out := l.Clone()
	for k, v := range other {
		out[k] += v
	}
	return out
}

// AddInPlace accumulates other into l element-wise without allocating.
// Hot paths (per-pod accounting in every scheduler pass) use it instead
// of Add; l must be a writable map.
func (l List) AddInPlace(other List) {
	for k, v := range other {
		l[k] += v
	}
}

// Sub returns a new List holding l - other, element-wise. Quantities may
// go negative; use Fits to test satisfiability instead.
func (l List) Sub(other List) List {
	out := l.Clone()
	for k, v := range other {
		out[k] -= v
	}
	return out
}

// Max returns a new List holding the element-wise maximum of l and other.
// The scheduler uses it to combine measured usage with request-based
// reservations (§IV: "combines the two kinds of data").
func (l List) Max(other List) List {
	out := l.Clone()
	for k, v := range other {
		if v > out[k] {
			out[k] = v
		}
	}
	return out
}

// Fits reports whether request fits in l, i.e. request <= l element-wise.
// Resources absent from l count as zero, so a request for a resource the
// node does not expose (e.g. EPC pages on a non-SGX node) does not fit —
// this is the hardware-compatibility filter of §IV.
func (l List) Fits(request List) bool {
	for k, v := range request {
		if v <= 0 {
			continue
		}
		if l[k] < v {
			return false
		}
	}
	return true
}

// IsZero reports whether every quantity in l is zero.
func (l List) IsZero() bool {
	for _, v := range l {
		if v != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether l and other hold the same quantities (absent keys
// equal zero).
func (l List) Equal(other List) bool {
	for k, v := range l {
		if other[k] != v {
			return false
		}
	}
	for k, v := range other {
		if l[k] != v {
			return false
		}
	}
	return true
}

// String renders the list deterministically, e.g.
// "cpu=4000,memory=68719476736,sgx.intel.com/epc-page=23936".
func (l List) String() string {
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, l[Name(k)]))
	}
	return strings.Join(parts, ",")
}

// FractionOf returns l[name] / capacity[name] as a float in [0, +inf);
// zero capacity yields 0 when usage is zero and +1 when over an absent
// capacity (treated as saturated). The spread policy uses these per-node
// load fractions.
func (l List) FractionOf(name Name, capacity List) float64 {
	c := capacity[name]
	u := l[name]
	if c <= 0 {
		if u <= 0 {
			return 0
		}
		return 1
	}
	return float64(u) / float64(c)
}
