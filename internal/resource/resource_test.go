package resource

import (
	"testing"
	"testing/quick"
)

func TestPagesForBytes(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int64
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{4096, 1},
		{4097, 2},
		{93*MiB + 512*KiB, 23936}, // 93.5 MiB == full usable EPC (§II)
		{128 * MiB, 32768},
	}
	for _, tc := range cases {
		if got := PagesForBytes(tc.bytes); got != tc.want {
			t.Errorf("PagesForBytes(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

func TestBytesForPagesRoundTrip(t *testing.T) {
	if got := BytesForPages(23936); got != 23936*4096 {
		t.Fatalf("BytesForPages(23936) = %d", got)
	}
	f := func(pages uint16) bool {
		p := int64(pages)
		return PagesForBytes(BytesForPages(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestListAddSubClone(t *testing.T) {
	a := List{Memory: 100, CPU: 4}
	b := List{Memory: 30, EPCPages: 5}
	sum := a.Add(b)
	if sum[Memory] != 130 || sum[CPU] != 4 || sum[EPCPages] != 5 {
		t.Fatalf("Add = %v", sum)
	}
	diff := sum.Sub(b)
	if !diff.Equal(a.Add(List{EPCPages: 0})) {
		t.Fatalf("Sub = %v, want %v", diff, a)
	}
	// Original must be untouched (copy-on-write semantics).
	if a[Memory] != 100 || len(a) != 2 {
		t.Fatalf("Add/Sub mutated receiver: %v", a)
	}
	c := a.Clone()
	c[Memory] = 1
	if a[Memory] != 100 {
		t.Fatal("Clone did not deep-copy")
	}
}

func TestListFits(t *testing.T) {
	node := List{Memory: 8 * GiB, EPCPages: 23936}
	cases := []struct {
		name string
		req  List
		want bool
	}{
		{"fits exactly", List{Memory: 8 * GiB, EPCPages: 23936}, true},
		{"fits partial", List{Memory: GiB}, true},
		{"memory too big", List{Memory: 9 * GiB}, false},
		{"epc too big", List{EPCPages: 23937}, false},
		{"absent resource requested", List{CPU: 1}, false},
		{"zero request on absent resource", List{CPU: 0}, true},
		{"empty request", List{}, true},
	}
	for _, tc := range cases {
		if got := node.Fits(tc.req); got != tc.want {
			t.Errorf("%s: Fits(%v) = %v, want %v", tc.name, tc.req, got, tc.want)
		}
	}
}

func TestNonSGXNodeRejectsEPCRequest(t *testing.T) {
	// Hardware-compatibility filter of §IV: an SGX-enabled job on a
	// non-SGX node can never fit.
	nonSGX := List{Memory: 64 * GiB}
	if nonSGX.Fits(List{EPCPages: 1}) {
		t.Fatal("non-SGX node accepted an EPC request")
	}
}

func TestListMax(t *testing.T) {
	a := List{Memory: 10, EPCPages: 3}
	b := List{Memory: 7, EPCPages: 8, CPU: 2}
	m := a.Max(b)
	if m[Memory] != 10 || m[EPCPages] != 8 || m[CPU] != 2 {
		t.Fatalf("Max = %v", m)
	}
}

func TestListIsZeroAndEqual(t *testing.T) {
	if !(List{}).IsZero() {
		t.Fatal("empty list should be zero")
	}
	if !(List{Memory: 0}).IsZero() {
		t.Fatal("explicit zero should be zero")
	}
	if (List{Memory: 1}).IsZero() {
		t.Fatal("non-zero list reported zero")
	}
	if !(List{Memory: 0}).Equal(List{}) {
		t.Fatal("zero-valued key should equal absent key")
	}
	if (List{Memory: 1}).Equal(List{Memory: 2}) {
		t.Fatal("unequal lists reported equal")
	}
}

func TestListString(t *testing.T) {
	l := List{Memory: 5, CPU: 2}
	if got, want := l.String(), "cpu=2,memory=5"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestFractionOf(t *testing.T) {
	cap := List{Memory: 100}
	if got := (List{Memory: 25}).FractionOf(Memory, cap); got != 0.25 {
		t.Fatalf("FractionOf = %v, want 0.25", got)
	}
	if got := (List{}).FractionOf(Memory, List{}); got != 0 {
		t.Fatalf("0/0 FractionOf = %v, want 0", got)
	}
	if got := (List{Memory: 5}).FractionOf(Memory, List{}); got != 1 {
		t.Fatalf("usage over absent capacity = %v, want 1", got)
	}
}

// Property: Fits(a.Add(b)) implies Fits(a) for non-negative b.
func TestFitsMonotoneProperty(t *testing.T) {
	f := func(capMem, reqMem, extraMem uint32) bool {
		capacity := List{Memory: int64(capMem)}
		small := List{Memory: int64(reqMem)}
		big := small.Add(List{Memory: int64(extraMem)})
		if capacity.Fits(big) && !capacity.Fits(small) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add then Sub round-trips.
func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x := List{Memory: int64(a)}
		y := List{Memory: int64(b)}
		return x.Add(y).Sub(y).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
