package apiserver

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
)

// Gang (pod-group) primitives: the server-side half of all-or-nothing
// scheduling. A scheduler places a gang member with Reserve instead of
// Bind — the same admission-checked conditional commit, except the pod
// stays unbound: its capacity is committed on the node (so concurrent
// schedulers cannot steal the headroom) while the pod holds a *permit*.
// Once enough co-members hold permits, CommitGroup flips every held
// member to bound in one atomic step under the world ladder — no event
// stream ever observes a partially bound gang becoming visible
// piecemeal with other commits interleaved that could invalidate it.
// If the quorum never arrives, ReleaseGroup rolls every permit back
// wholesale: capacity returns and the members re-enter the pending
// queue. PreemptGroup extends the eviction path with the same
// atomicity: a gang is evicted whole or not at all.
//
// Locking: Reserve runs under one pod stripe + one node stripe, exactly
// like Bind. CommitGroup/ReleaseGroup/PreemptGroup take the world
// ladder — they touch many stripes and their atomicity guarantee *is*
// "no other commit interleaves". The reservation tables themselves sit
// under resMu, a leaf lock (see Server) so any path can consult them.

// GangStats counts gang operation outcomes. All counters are atomics;
// reads never contend with the commit path.
type GangStats struct {
	// Permits counts successful Reserve calls; PermitRejected the
	// refused ones (pod/node state or capacity admission).
	Permits        int64
	PermitRejected int64
	// MembersBound counts members bound via CommitGroup;
	// MembersReleased counts permits rolled back via ReleaseGroup.
	MembersBound    int64
	MembersReleased int64
	// GroupsCommitted / GroupsReleased / GroupsPreempted count the
	// group-level operations.
	GroupsCommitted int64
	GroupsReleased  int64
	GroupsPreempted int64
}

type gangCounters struct {
	permits         atomic.Int64
	permitRejected  atomic.Int64
	membersBound    atomic.Int64
	membersReleased atomic.Int64
	groupsCommitted atomic.Int64
	groupsReleased  atomic.Int64
	groupsPreempted atomic.Int64
}

func (c *gangCounters) snapshot() GangStats {
	return GangStats{
		Permits:         c.permits.Load(),
		PermitRejected:  c.permitRejected.Load(),
		MembersBound:    c.membersBound.Load(),
		MembersReleased: c.membersReleased.Load(),
		GroupsCommitted: c.groupsCommitted.Load(),
		GroupsReleased:  c.groupsReleased.Load(),
		GroupsPreempted: c.groupsPreempted.Load(),
	}
}

// GangStats returns a copy of the gang operation counters.
func (s *Server) GangStats() GangStats {
	return s.gangs.snapshot()
}

// --- reservation table helpers (resMu leaf discipline: lock, touch the
// maps, unlock — never acquire anything else while held) ---

// reservedNode returns the node a pod holds a permit on, if any.
func (s *Server) reservedNode(pod string) (string, bool) {
	s.resMu.Lock()
	r, ok := s.reservations[pod]
	s.resMu.Unlock()
	return r.node, ok
}

func (s *Server) putReservation(pod, node, group string) {
	s.resMu.Lock()
	s.reservations[pod] = reservation{node: node, group: group}
	holds := s.groupHolds[group]
	if holds == nil {
		holds = make(map[string]string)
		s.groupHolds[group] = holds
	}
	holds[pod] = node
	s.resMu.Unlock()
}

// dropReservation removes a pod's permit from both tables, returning it
// so the caller can release the committed capacity.
func (s *Server) dropReservation(pod string) (reservation, bool) {
	s.resMu.Lock()
	r, ok := s.reservations[pod]
	if ok {
		delete(s.reservations, pod)
		if holds := s.groupHolds[r.group]; holds != nil {
			delete(holds, pod)
			if len(holds) == 0 {
				delete(s.groupHolds, r.group)
			}
		}
	}
	s.resMu.Unlock()
	return r, ok
}

func (s *Server) addGroupBound(group, pod string) {
	s.resMu.Lock()
	members := s.groupBound[group]
	if members == nil {
		members = make(map[string]bool)
		s.groupBound[group] = members
	}
	members[pod] = true
	s.resMu.Unlock()
}

func (s *Server) dropGroupBound(group, pod string) {
	s.resMu.Lock()
	if members := s.groupBound[group]; members != nil {
		delete(members, pod)
		if len(members) == 0 {
			delete(s.groupBound, group)
		}
	}
	s.resMu.Unlock()
}

// HoldCount returns how many members of the group currently hold
// permits.
func (s *Server) HoldCount(group string) int {
	s.resMu.Lock()
	n := len(s.groupHolds[group])
	s.resMu.Unlock()
	return n
}

// ReservationCount returns the total number of permits currently held
// across all gangs — the post-hoc accounting checks in experiments
// assert it returns to zero after a rollback.
func (s *Server) ReservationCount() int {
	s.resMu.Lock()
	n := len(s.reservations)
	s.resMu.Unlock()
	return n
}

// BoundGroupCount returns how many members of the group are currently
// bound.
func (s *Server) BoundGroupCount(group string) int {
	s.resMu.Lock()
	n := len(s.groupBound[group])
	s.resMu.Unlock()
	return n
}

// BoundGroupMembers returns the names of the group's live bound
// members, sorted.
func (s *Server) BoundGroupMembers(group string) []string {
	s.resMu.Lock()
	out := make([]string, 0, len(s.groupBound[group]))
	for name := range s.groupBound[group] {
		out = append(out, name)
	}
	s.resMu.Unlock()
	sort.Strings(out)
	return out
}

// VisitReservations calls fn for every held permit (pod, node, group),
// in sorted pod-name order. The table is copied out under resMu first,
// so fn may call back into the server.
func (s *Server) VisitReservations(fn func(pod, node, group string)) {
	type hold struct{ pod, node, group string }
	s.resMu.Lock()
	holds := make([]hold, 0, len(s.reservations))
	for pod, r := range s.reservations {
		holds = append(holds, hold{pod, r.node, r.group})
	}
	s.resMu.Unlock()
	sort.Slice(holds, func(i, j int) bool { return holds[i].pod < holds[j].pod })
	for _, h := range holds {
		fn(h.pod, h.node, h.group)
	}
}

// Reserve grants a gang member a permit on a node: the same conditional
// commit as Bind — admission re-validated against authoritative state
// under the pod's and node's stripes, capacity moved into the node's
// committed accounting, pod removed from the pending queue — except the
// pod's binding stays empty. The member is now held in the waiting
// area: CommitGroup binds it for real, ReleaseGroup rolls it back. The
// emitted PodPermitHeld event carries the reserved node in the pod
// copy's Spec.NodeName so watch-driven caches charge the capacity,
// even though authoritative state keeps the pod unbound.
func (s *Server) Reserve(podName, nodeName string) error {
	psh := s.podShardFor(podName)
	psh.mu.Lock()
	p, ok := psh.pods[podName]
	if !ok {
		s.gangs.permitRejected.Add(1)
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s", ErrNotFound, podName)
	}
	if !p.Spec.InGang() {
		s.gangs.permitRejected.Add(1)
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s is not in a pod group", ErrConflict, podName)
	}
	if p.Spec.NodeName != "" {
		s.gangs.permitRejected.Add(1)
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s already bound to %s", ErrConflict, podName, p.Spec.NodeName)
	}
	if p.Status.Phase != api.PodPending {
		s.gangs.permitRejected.Add(1)
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s in phase %s", ErrConflict, podName, p.Status.Phase)
	}
	if node, held := s.reservedNode(podName); held {
		s.gangs.permitRejected.Add(1)
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s already holds a permit on %s", ErrConflict, podName, node)
	}
	nsh := s.nodeShardFor(nodeName)
	nsh.mu.Lock()
	n, ok := nsh.nodes[nodeName]
	if !ok {
		s.gangs.permitRejected.Add(1)
		s.rejectBind(podName, "node "+nodeName+" unknown")
		nsh.mu.Unlock()
		psh.mu.Unlock()
		return fmt.Errorf("%w: node %s", ErrNotFound, nodeName)
	}
	req := p.TotalRequests()
	if err := s.admitBind(p, n, nsh.committed[nodeName], req); err != nil {
		s.gangs.permitRejected.Add(1)
		s.rejectBind(podName, err.Error())
		nsh.mu.Unlock()
		psh.mu.Unlock()
		return err
	}
	commit(nsh, nodeName, req, +1)
	s.gangs.permits.Add(1)
	s.removePending(p)
	s.putReservation(podName, nodeName, p.Spec.PodGroup)
	s.recordEvent("pod/"+podName, "PermitHeld",
		"gang "+p.Spec.PodGroup+" reserved node "+nodeName)
	ev := p.Clone()
	ev.Spec.NodeName = nodeName
	s.emit(WatchEvent{Type: PodPermitHeld, Pod: ev})
	nsh.mu.Unlock()
	psh.mu.Unlock()
	s.broker.Flush()
	return nil
}

// CommitGroup atomically binds every member of the group currently
// holding a permit, in sorted name order, under the world ladder: the
// PodBound events occupy consecutive resource versions with no foreign
// commit interleaved, so every consistent prefix of the event log sees
// either no member bound or the binding sequence in progress with all
// capacity already safely committed since Reserve. Returns how many
// members were bound. Capacity is NOT re-admitted — it was committed at
// Reserve time and nothing could have stolen it since.
func (s *Server) CommitGroup(group string) (int, error) {
	s.lockWorld()
	s.resMu.Lock()
	members := make([]string, 0, len(s.groupHolds[group]))
	for name := range s.groupHolds[group] {
		members = append(members, name)
	}
	s.resMu.Unlock()
	sort.Strings(members)
	now := s.clk.Now()
	bound := 0
	for _, name := range members {
		p, ok := s.podShards[stripeFor(name)].pods[name]
		r, held := s.dropReservation(name)
		if !held {
			continue
		}
		if !ok || p.IsTerminal() || p.Spec.NodeName != "" {
			// The permit outlived the pod's schedulability (it should
			// have been dropped at the terminal transition); release
			// the capacity defensively rather than leak it.
			if ok {
				commit(&s.nodeShards[stripeFor(r.node)], r.node, p.TotalRequests(), -1)
			}
			continue
		}
		p.Spec.NodeName = r.node
		p.Status.ScheduledAt = now
		s.addGroupBound(group, name)
		s.gangs.membersBound.Add(1)
		s.recordEvent("pod/"+name, "Bound", "gang "+group+" committed to node "+r.node)
		s.emit(WatchEvent{Type: PodBound, Pod: p.Clone()})
		bound++
	}
	if bound > 0 {
		s.gangs.groupsCommitted.Add(1)
	}
	s.unlockWorld()
	s.broker.Flush()
	if bound == 0 {
		return 0, fmt.Errorf("%w: group %s holds no permits", ErrConflict, group)
	}
	return bound, nil
}

// ReleaseGroup rolls back every permit the group holds, wholesale,
// under the world ladder: committed capacity returns to the nodes and
// the members re-enter the pending queue at the tail of their priority
// tier. This is the permit-timeout path — a gang that cannot reach
// quorum must not camp on capacity other work could use. Returns how
// many permits were released.
func (s *Server) ReleaseGroup(group, reason string) (int, error) {
	if reason == "" {
		reason = "permit released"
	}
	s.lockWorld()
	s.resMu.Lock()
	members := make([]string, 0, len(s.groupHolds[group]))
	for name := range s.groupHolds[group] {
		members = append(members, name)
	}
	s.resMu.Unlock()
	sort.Strings(members)
	released := 0
	for _, name := range members {
		r, held := s.dropReservation(name)
		if !held {
			continue
		}
		p, ok := s.podShards[stripeFor(name)].pods[name]
		if !ok {
			continue
		}
		commit(&s.nodeShards[stripeFor(r.node)], r.node, p.TotalRequests(), -1)
		if !p.IsTerminal() {
			// pendingMu is held by the world ladder: push directly.
			s.pending.Push(name, p.Spec.SchedulerName, p.Spec.Priority, p.Spec.PodGroup, p.Spec.WorkloadClass())
			p.Status.Reason = reason
		}
		s.gangs.membersReleased.Add(1)
		s.recordEvent("pod/"+name, "PermitReleased", "gang "+group+": "+reason)
		s.emit(WatchEvent{Type: PodPermitReleased, Pod: p.Clone()})
		released++
	}
	if released > 0 {
		s.gangs.groupsReleased.Add(1)
	}
	s.unlockWorld()
	s.broker.Flush()
	return released, nil
}

// PreemptGroup evicts every live bound member of the gang — and rolls
// back any permits it still holds — in one atomic step under the world
// ladder: a gang is preempted whole or not at all, so preemption can
// never strand a partial gang on the cluster. Members re-enter the
// pending queue with scheduling timestamps reset, exactly like Preempt.
// Returns how many members were evicted (bound) plus released (held).
func (s *Server) PreemptGroup(group, reason string) (int, error) {
	if reason == "" {
		reason = "Preempted"
	} else {
		reason = "Preempted: " + reason
	}
	s.lockWorld()
	s.resMu.Lock()
	members := make([]string, 0, len(s.groupBound[group])+len(s.groupHolds[group]))
	for name := range s.groupBound[group] {
		members = append(members, name)
	}
	for name := range s.groupHolds[group] {
		members = append(members, name)
	}
	s.resMu.Unlock()
	sort.Strings(members)
	evicted := 0
	for _, name := range members {
		p, ok := s.podShards[stripeFor(name)].pods[name]
		if !ok {
			s.dropReservation(name)
			s.dropGroupBound(group, name)
			continue
		}
		if r, held := s.dropReservation(name); held {
			// Held, unbound member: roll the permit back.
			commit(&s.nodeShards[stripeFor(r.node)], r.node, p.TotalRequests(), -1)
			if !p.IsTerminal() {
				s.pending.Push(name, p.Spec.SchedulerName, p.Spec.Priority, p.Spec.PodGroup, p.Spec.WorkloadClass())
				p.Status.Reason = reason
			}
			s.recordEvent("pod/"+name, "PermitReleased", "gang "+group+": "+reason)
			s.emit(WatchEvent{Type: PodPermitReleased, Pod: p.Clone()})
			evicted++
			continue
		}
		if p.IsTerminal() || p.Spec.NodeName == "" {
			s.dropGroupBound(group, name)
			continue
		}
		commit(&s.nodeShards[stripeFor(p.Spec.NodeName)], p.Spec.NodeName, p.TotalRequests(), -1)
		p.Spec.NodeName = ""
		p.Status.Phase = api.PodPending
		p.Status.Reason = reason
		p.Status.ScheduledAt = time.Time{}
		p.Status.StartedAt = time.Time{}
		s.dropGroupBound(group, name)
		s.pending.Push(name, p.Spec.SchedulerName, p.Spec.Priority, p.Spec.PodGroup, p.Spec.WorkloadClass())
		s.recordEvent("pod/"+name, "Preempted", reason)
		s.emit(WatchEvent{Type: PodUpdated, Pod: p.Clone()})
		evicted++
	}
	if evicted > 0 {
		s.gangs.groupsPreempted.Add(1)
	}
	s.unlockWorld()
	s.broker.Flush()
	if evicted == 0 {
		return 0, fmt.Errorf("%w: group %s has no live members", ErrConflict, group)
	}
	return evicted, nil
}
