package apiserver

import (
	"strings"
	"testing"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/telemetry"
)

func telemetryNode(name string) *api.Node {
	alloc := resource.List{resource.Memory: 16 * resource.GiB, resource.CPU: 8000}
	return &api.Node{Name: name, Capacity: alloc.Clone(), Allocatable: alloc.Clone(), Ready: true}
}

func telemetryTestPod(name string, class api.WorkloadClass, prio int32, memBytes int64) *api.Pod {
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{
			Class:    class,
			Priority: prio,
			Containers: []api.Container{{
				Name:      "main",
				Resources: api.Requirements{Requests: resource.List{resource.Memory: memBytes}},
			}},
		},
	}
}

func TestServerTelemetryBindLatencyAndRejections(t *testing.T) {
	reg := telemetry.New()
	s := New(clock.NewSim(), WithTelemetry(reg))
	defer s.Close()
	if err := s.RegisterNode(telemetryNode("n1")); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePod(telemetryTestPod("ok", api.ClassBatch, 0, resource.GiB)); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("ok", "n1"); err != nil {
		t.Fatal(err)
	}
	lat := reg.Histogram("apiserver_bind_latency_seconds", nil)
	if lat.Count() != 1 {
		t.Fatalf("bind latency count = %d, want 1 (successful bind)", lat.Count())
	}

	// Rejection with a known pod: counted under its class.
	if err := s.CreatePod(telemetryTestPod("nope", api.ClassBatch, 0, resource.GiB)); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("nope", "ghost-node"); err == nil {
		t.Fatal("bind to unknown node must fail")
	}
	// Rejection without a pod: counted as unknown.
	if err := s.Bind("ghost-pod", "n1"); err == nil {
		t.Fatal("bind of unknown pod must fail")
	}
	rej := reg.CounterVec("apiserver_bind_rejections_total", "class")
	if got := rej.With("batch").Value(); got != 1 {
		t.Fatalf("rejections{batch} = %d, want 1", got)
	}
	if got := rej.With("unknown").Value(); got != 1 {
		t.Fatalf("rejections{unknown} = %d, want 1", got)
	}
	// Every Bind outcome is a latency sample: success and both
	// rejections.
	if lat.Count() != 3 {
		t.Fatalf("bind latency count = %d, want 3 (all attempts observed)", lat.Count())
	}
	if bs := s.BindStats(); bs.Attempts != 3 {
		t.Fatalf("BindStats.Attempts = %d, want 3", bs.Attempts)
	}
}

func TestServerTelemetryDepthAndWatchCollectors(t *testing.T) {
	reg := telemetry.New()
	s := New(clock.NewSim(), WithTelemetry(reg))
	defer s.Close()
	if err := s.RegisterNode(telemetryNode("n1")); err != nil {
		t.Fatal(err)
	}
	unsub := s.SubscribePodEvents(func([]WatchEvent) {}, nil)
	defer unsub()

	// Queue: two latency-sensitive at prio 100, one batch at prio 10,
	// one unclassified at prio 0.
	for _, p := range []*api.Pod{
		telemetryTestPod("ls-1", api.ClassLatencySensitive, 100, resource.GiB),
		telemetryTestPod("ls-2", api.ClassLatencySensitive, 100, resource.GiB),
		telemetryTestPod("b-1", api.ClassBatch, 10, resource.GiB),
		telemetryTestPod("u-1", api.ClassUnspecified, 0, resource.GiB),
	} {
		if err := s.CreatePod(p); err != nil {
			t.Fatal(err)
		}
	}
	reg.Collect()
	depth := reg.GaugeVec("apiserver_pending_depth", "class")
	if got := depth.With("latency-sensitive").Value(); got != 2 {
		t.Fatalf("depth{latency-sensitive} = %v, want 2", got)
	}
	if got := depth.With("batch").Value(); got != 1 {
		t.Fatalf("depth{batch} = %v, want 1", got)
	}
	if got := depth.With("unclassified").Value(); got != 1 {
		t.Fatalf("depth{unclassified} = %v, want 1", got)
	}
	prio := reg.GaugeVec("apiserver_pending_depth_priority", "priority")
	if got := prio.With("100").Value(); got != 2 {
		t.Fatalf("depth{priority=100} = %v, want 2", got)
	}
	if got := prio.With("0").Value(); got != 1 {
		t.Fatalf("depth{priority=0} = %v, want 1", got)
	}

	// Draining a tier zeroes its gauge instead of leaving it stale.
	if err := s.Bind("ls-1", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("ls-2", "n1"); err != nil {
		t.Fatal(err)
	}
	reg.Collect()
	if got := prio.With("100").Value(); got != 0 {
		t.Fatalf("drained tier gauge = %v, want 0", got)
	}
	if got := depth.With("latency-sensitive").Value(); got != 0 {
		t.Fatalf("drained class gauge = %v, want 0", got)
	}

	// The watch collector publishes per-subscriber series; binding above
	// delivered events to our subscriber.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "watch_subscriber_max_lag{subscriber=") {
		t.Fatalf("exposition missing per-subscriber watch gauges:\n%s", sb.String())
	}
}
