package apiserver

import (
	"fmt"
	"sync"
	"testing"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
)

// stormNode returns a node with room for `fit` stormPods.
func stormNode(name string, fit int64) *api.Node {
	alloc := resource.List{resource.Memory: fit * 256 * resource.MiB, resource.CPU: 64000}
	return &api.Node{Name: name, Capacity: alloc.Clone(), Allocatable: alloc, Ready: true}
}

func stormPod(name string) *api.Pod {
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{
			Containers: []api.Container{{
				Name:      "main",
				Resources: api.Requirements{Requests: resource.List{resource.Memory: 256 * resource.MiB}},
			}},
		},
	}
}

// TestConcurrentBindStatsUnderStorm hammers Bind from many goroutines
// while readers poll BindStats/Committed/PendingCount concurrently: the
// atomic counters must stay mutually consistent (attempts = bound + the
// rejection classes) and agree with the callers' own outcome counts and
// with the per-node committed accounting.
func TestConcurrentBindStatsUnderStorm(t *testing.T) {
	const (
		nodes   = 16
		fit     = 20 // per-node capacity in pods; 16*20 < 512 forces capacity rejections
		pods    = 512
		binders = 8
	)
	s := New(clock.NewSim(), WithAdmission(AdmitStrict), WithAsyncWatch())
	defer s.Close()
	for n := 0; n < nodes; n++ {
		if err := s.RegisterNode(stormNode(fmt.Sprintf("node-%02d", n), fit)); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < pods; p++ {
		if err := s.CreatePod(stormPod(fmt.Sprintf("pod-%04d", p))); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			// Counters are loaded independently, so mid-storm reads are
			// only monotonic per counter, not mutually consistent — the
			// cross-counter invariant is asserted after quiescence below.
			// The readers' job is racing the commit path under -race.
			var lastAttempts int64
			for {
				select {
				case <-done:
					return
				default:
				}
				st := s.BindStats()
				if st.Attempts < lastAttempts {
					panic(fmt.Sprintf("attempts went backwards: %d after %d", st.Attempts, lastAttempts))
				}
				lastAttempts = st.Attempts
				s.Committed("node-00")
				s.PendingCount()
			}
		}()
	}

	boundByNode := make([]int64, nodes)
	var mu sync.Mutex
	var wg sync.WaitGroup
	per := pods / binders
	for b := 0; b < binders; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			local := make([]int64, nodes)
			for i := b * per; i < (b+1)*per; i++ {
				node := i % nodes
				if err := s.Bind(fmt.Sprintf("pod-%04d", i), fmt.Sprintf("node-%02d", node)); err == nil {
					local[node]++
				}
			}
			mu.Lock()
			for n := range local {
				boundByNode[n] += local[n]
			}
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	close(done)
	readers.Wait()
	s.QuiesceWatch()

	st := s.BindStats()
	if st.Attempts != pods {
		t.Fatalf("attempts = %d, want %d (each pod bound once)", st.Attempts, pods)
	}
	if got := st.Bound + st.RejectedPodState + st.RejectedNodeState + st.RejectedCapacity; got != st.Attempts {
		t.Fatalf("outcome classes sum to %d, want attempts %d (stats %+v)", got, st.Attempts, st)
	}
	var bound int64
	for n := int64(0); n < nodes; n++ {
		bound += boundByNode[n]
		if boundByNode[n] > fit {
			t.Fatalf("node %d accepted %d pods beyond its capacity %d", n, boundByNode[n], fit)
		}
		com := s.Committed(fmt.Sprintf("node-%02d", n))
		if want := boundByNode[n] * 256 * resource.MiB; com.Get(resource.Memory) != want {
			t.Fatalf("node %d committed %d bytes, want %d", n, com.Get(resource.Memory), want)
		}
	}
	if st.Bound != bound {
		t.Fatalf("stats report %d bound, callers counted %d", st.Bound, bound)
	}
	if st.RejectedCapacity == 0 {
		t.Fatal("storm was sized to overflow capacity but no bind was rejected for it")
	}
	if int64(s.PendingCount()) != pods-bound {
		t.Fatalf("pending = %d, want %d", s.PendingCount(), pods-bound)
	}
}

// TestSnapshotConsistentPrefixDuringConcurrentBinds is the striping
// safety property: a SnapshotNow taken at any instant of a bind storm
// must equal the state obtained by replaying the event log up to the
// snapshot's Rev — no torn cross-shard reads, no applied-but-unpublished
// commits, no published-but-unapplied events.
func TestSnapshotConsistentPrefixDuringConcurrentBinds(t *testing.T) {
	const (
		nodes   = 8
		fit     = 40
		pods    = 384
		binders = 8
		snaps   = 40
	)
	s := New(clock.NewSim(), WithAdmission(AdmitStrict))
	defer s.Close()

	// The recorder subscribes before any mutation so the event log is
	// replayable from rev 0. Sync mode delivers on the mutating
	// goroutines; the mutex serializes appends and delivery order is
	// rev order, so the slice ends up rev-sorted.
	var evMu sync.Mutex
	var events []WatchEvent
	unsub := s.SubscribeBatch(func(evs []WatchEvent) {
		evMu.Lock()
		events = append(events, evs...)
		evMu.Unlock()
	}, nil)
	defer unsub()

	for n := 0; n < nodes; n++ {
		if err := s.RegisterNode(stormNode(fmt.Sprintf("node-%02d", n), fit)); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < pods; p++ {
		if err := s.CreatePod(stormPod(fmt.Sprintf("pod-%04d", p))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	per := pods / binders
	for b := 0; b < binders; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for i := b * per; i < (b+1)*per; i++ {
				// Outcome is irrelevant: the property must hold whether the
				// bind lands or loses an admission race.
				_ = s.Bind(fmt.Sprintf("pod-%04d", i), fmt.Sprintf("node-%02d", i%nodes))
			}
		}(b)
	}
	snapshots := make([]Snapshot, 0, snaps+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < snaps; i++ {
			snapshots = append(snapshots, s.SnapshotNow())
		}
	}()
	wg.Wait()
	snapshots = append(snapshots, s.SnapshotNow())
	s.QuiesceWatch()

	evMu.Lock()
	defer evMu.Unlock()
	for i := 1; i < len(events); i++ {
		if events[i].Rev != events[i-1].Rev+1 {
			t.Fatalf("event log not dense: rev %d follows %d", events[i].Rev, events[i-1].Rev)
		}
	}

	for _, snap := range snapshots {
		// Replay the prefix.
		type podState struct {
			node  string
			phase api.PodPhase
		}
		model := make(map[string]podState)
		var pendingOrder []string
		for _, ev := range events {
			if ev.Rev > snap.Rev {
				break
			}
			switch ev.Type {
			case PodCreated:
				model[ev.Pod.Name] = podState{phase: api.PodPending}
				pendingOrder = append(pendingOrder, ev.Pod.Name)
			case PodBound, PodUpdated:
				model[ev.Pod.Name] = podState{node: ev.Pod.Spec.NodeName, phase: ev.Pod.Status.Phase}
			}
		}
		if len(snap.Pods) != len(model) {
			t.Fatalf("snapshot rev %d has %d pods, replay has %d", snap.Rev, len(snap.Pods), len(model))
		}
		for _, p := range snap.Pods {
			m, ok := model[p.Name]
			if !ok {
				t.Fatalf("snapshot rev %d contains %s, absent from the replayed prefix", snap.Rev, p.Name)
			}
			if p.Spec.NodeName != m.node || p.Status.Phase != m.phase {
				t.Fatalf("snapshot rev %d: pod %s is (%q,%s), replay says (%q,%s) — torn read",
					snap.Rev, p.Name, p.Spec.NodeName, p.Status.Phase, m.node, m.phase)
			}
		}
		wantPending := make([]string, 0, len(pendingOrder))
		for _, name := range pendingOrder {
			if m := model[name]; m.node == "" && m.phase == api.PodPending {
				wantPending = append(wantPending, name)
			}
		}
		if len(snap.Pending) != len(wantPending) {
			t.Fatalf("snapshot rev %d pending has %d pods, replay %d", snap.Rev, len(snap.Pending), len(wantPending))
		}
		for i := range wantPending {
			if snap.Pending[i] != wantPending[i] {
				t.Fatalf("snapshot rev %d pending[%d] = %s, replay says %s", snap.Rev, i, snap.Pending[i], wantPending[i])
			}
		}
	}
}

// TestSubscribePodEventsFiltersNodeEvents: the kubelet-style pod-topic
// subscription must deliver exactly the pod events, in rev order, while
// node events ride their own ring (and vice versa).
func TestSubscribePodEventsFiltersNodeEvents(t *testing.T) {
	s := New(clock.NewSim())
	defer s.Close()
	var podEvs, nodeEvs []WatchEventType
	unsubP := s.SubscribePodEvents(func(evs []WatchEvent) {
		for _, ev := range evs {
			if ev.Pod == nil {
				t.Errorf("pod-topic subscriber got event %v without a pod", ev.Type)
			}
			podEvs = append(podEvs, ev.Type)
		}
	}, nil)
	defer unsubP()
	unsubN := s.SubscribeNodeEvents(func(evs []WatchEvent) {
		for _, ev := range evs {
			if ev.Node == nil {
				t.Errorf("node-topic subscriber got event %v without a node", ev.Type)
			}
			nodeEvs = append(nodeEvs, ev.Type)
		}
	}, nil)
	defer unsubN()

	n := testNode("n1", false)
	if err := s.RegisterNode(n); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePod(testPod("p1")); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateNode(n); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("p1", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning("p1"); err != nil {
		t.Fatal(err)
	}

	wantPods := []WatchEventType{PodCreated, PodBound, PodUpdated}
	wantNodes := []WatchEventType{NodeRegistered, NodeUpdated}
	if len(podEvs) != len(wantPods) {
		t.Fatalf("pod-topic subscriber saw %v, want %v", podEvs, wantPods)
	}
	for i := range wantPods {
		if podEvs[i] != wantPods[i] {
			t.Fatalf("pod-topic subscriber saw %v, want %v", podEvs, wantPods)
		}
	}
	if len(nodeEvs) != len(wantNodes) || nodeEvs[0] != wantNodes[0] || nodeEvs[1] != wantNodes[1] {
		t.Fatalf("node-topic subscriber saw %v, want %v", nodeEvs, wantNodes)
	}
}
