package apiserver

import (
	"errors"
	"fmt"
	"testing"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
)

func gangPod(name, group string, minMember int, prio int32) *api.Pod {
	p := prioPod(name, prio)
	p.Spec.PodGroup = group
	p.Spec.MinMember = minMember
	return p
}

func gangNode(name string, mem int64) *api.Node {
	return &api.Node{
		Name:        name,
		Capacity:    resource.List{resource.Memory: mem},
		Allocatable: resource.List{resource.Memory: mem},
		Ready:       true,
	}
}

// TestReserveHoldsCapacityWithoutBinding: a permit commits the member's
// capacity on the node and parks the pod out of the queue, but the
// authoritative binding stays empty until CommitGroup flips the whole
// gang at once.
func TestReserveHoldsCapacityWithoutBinding(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	if err := srv.RegisterNode(gangNode("n1", resource.GiB)); err != nil {
		t.Fatal(err)
	}
	var events []WatchEvent
	unsub := srv.Subscribe(func(ev WatchEvent) { events = append(events, ev) })
	defer unsub()

	for _, name := range []string{"g-a", "g-b"} {
		if err := srv.CreatePod(gangPod(name, "g", 2, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.CreatePod(prioPod("solo", 0)); err != nil {
		t.Fatal(err)
	}

	if err := srv.Reserve("g-a", "n1"); err != nil {
		t.Fatal(err)
	}
	p, _ := srv.GetPod("g-a")
	if p.Spec.NodeName != "" || p.Status.Phase != api.PodPending {
		t.Fatalf("reserved pod = %q/%s, want unbound Pending", p.Spec.NodeName, p.Status.Phase)
	}
	if got := srv.Committed("n1").Get(resource.Memory); got != resource.MiB {
		t.Fatalf("committed after reserve = %d, want %d", got, resource.MiB)
	}
	srv.VisitPending("", func(p *api.Pod) bool {
		if p.Name == "g-a" {
			t.Fatal("reserved pod still in the pending queue")
		}
		return true
	})
	last := events[len(events)-1]
	if last.Type != PodPermitHeld || last.Pod.Spec.NodeName != "n1" {
		t.Fatalf("last event = %v %q, want PodPermitHeld carrying n1", last.Type, last.Pod.Spec.NodeName)
	}

	// A held member cannot be bound or re-reserved; solo pods cannot
	// reserve at all.
	if err := srv.Bind("g-a", "n1"); !errors.Is(err, ErrConflict) {
		t.Fatalf("Bind on held pod: err = %v, want ErrConflict", err)
	}
	if err := srv.Reserve("g-a", "n1"); !errors.Is(err, ErrConflict) {
		t.Fatalf("double Reserve: err = %v, want ErrConflict", err)
	}
	if err := srv.Reserve("solo", "n1"); !errors.Is(err, ErrConflict) {
		t.Fatalf("Reserve on solo pod: err = %v, want ErrConflict", err)
	}
	if err := srv.Reserve("ghost", "n1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Reserve on unknown pod: err = %v, want ErrNotFound", err)
	}

	if err := srv.Reserve("g-b", "n1"); err != nil {
		t.Fatal(err)
	}
	if n := srv.HoldCount("g"); n != 2 {
		t.Fatalf("HoldCount = %d, want 2", n)
	}
	mark := len(events)
	bound, err := srv.CommitGroup("g")
	if err != nil || bound != 2 {
		t.Fatalf("CommitGroup = %d, %v, want 2, nil", bound, err)
	}
	// The commit's PodBound events are consecutive: no foreign commit
	// interleaves the atomic step.
	commitEvents := events[mark:]
	if len(commitEvents) != 2 {
		t.Fatalf("commit emitted %d events, want 2", len(commitEvents))
	}
	for i, ev := range commitEvents {
		if ev.Type != PodBound || ev.Pod.Spec.PodGroup != "g" {
			t.Fatalf("commit event %d = %v group %q", i, ev.Type, ev.Pod.Spec.PodGroup)
		}
		if i > 0 && ev.Rev != commitEvents[i-1].Rev+1 {
			t.Fatalf("commit revs not consecutive: %d then %d", commitEvents[i-1].Rev, ev.Rev)
		}
	}
	if got := fmt.Sprint(srv.BoundGroupMembers("g")); got != "[g-a g-b]" {
		t.Fatalf("BoundGroupMembers = %v", got)
	}
	if n := srv.ReservationCount(); n != 0 {
		t.Fatalf("ReservationCount after commit = %d, want 0", n)
	}
	// Capacity was committed once, at Reserve — the commit must not
	// double-charge.
	if got := srv.Committed("n1").Get(resource.Memory); got != 2*resource.MiB {
		t.Fatalf("committed after commit = %d, want %d", got, 2*resource.MiB)
	}
	if _, err := srv.CommitGroup("g"); !errors.Is(err, ErrConflict) {
		t.Fatalf("CommitGroup with no permits: err = %v, want ErrConflict", err)
	}
	stats := srv.GangStats()
	if stats.Permits != 2 || stats.MembersBound != 2 || stats.GroupsCommitted != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestReleaseGroupRollsBackWholesale: the permit-timeout path returns
// every held member's capacity and re-queues the members; nothing of the
// gang survives on the cluster.
func TestReleaseGroupRollsBackWholesale(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	if err := srv.RegisterNode(gangNode("n1", resource.GiB)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"g-a", "g-b"} {
		if err := srv.CreatePod(gangPod(name, "g", 3, 0)); err != nil {
			t.Fatal(err)
		}
		if err := srv.Reserve(name, "n1"); err != nil {
			t.Fatal(err)
		}
	}
	var events []WatchEvent
	unsub := srv.Subscribe(func(ev WatchEvent) { events = append(events, ev) })
	defer unsub()

	released, err := srv.ReleaseGroup("g", "quorum never arrived")
	if err != nil || released != 2 {
		t.Fatalf("ReleaseGroup = %d, %v, want 2, nil", released, err)
	}
	if got := srv.Committed("n1").Get(resource.Memory); got != 0 {
		t.Fatalf("committed after release = %d, want 0", got)
	}
	if n := srv.ReservationCount(); n != 0 {
		t.Fatalf("ReservationCount after release = %d, want 0", n)
	}
	var queued []string
	srv.VisitPending("", func(p *api.Pod) bool {
		queued = append(queued, p.Name)
		return true
	})
	if fmt.Sprint(queued) != "[g-a g-b]" {
		t.Fatalf("pending after release = %v, want [g-a g-b]", queued)
	}
	p, _ := srv.GetPod("g-a")
	if p.Status.Reason != "quorum never arrived" {
		t.Fatalf("reason = %q", p.Status.Reason)
	}
	for _, ev := range events {
		if ev.Type != PodPermitReleased {
			t.Fatalf("event = %v, want only PodPermitReleased", ev.Type)
		}
	}
	// The members are schedulable again.
	if err := srv.Reserve("g-a", "n1"); err != nil {
		t.Fatalf("re-reserve after release: %v", err)
	}
}

// TestTerminalReservedPodReleasesCapacity: a pod that dies while holding
// a permit must not leak its committed capacity or its reservation.
func TestTerminalReservedPodReleasesCapacity(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	if err := srv.RegisterNode(gangNode("n1", resource.GiB)); err != nil {
		t.Fatal(err)
	}
	if err := srv.CreatePod(gangPod("g-a", "g", 2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reserve("g-a", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := srv.MarkFailed("g-a", "oom"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Committed("n1").Get(resource.Memory); got != 0 {
		t.Fatalf("committed after terminal transition = %d, want 0", got)
	}
	if n := srv.ReservationCount(); n != 0 {
		t.Fatalf("ReservationCount after terminal transition = %d, want 0", n)
	}
	if _, err := srv.CommitGroup("g"); !errors.Is(err, ErrConflict) {
		t.Fatalf("CommitGroup after member died: err = %v, want ErrConflict", err)
	}
}

// TestReserveAdmissionRejectsOverCommit: permits pass through the same
// capacity admission as binds — a full node refuses further permits.
func TestReserveAdmissionRejectsOverCommit(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk, WithAdmission(AdmitStrict))
	if err := srv.RegisterNode(gangNode("n1", resource.MiB)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"g-a", "g-b"} {
		if err := srv.CreatePod(gangPod(name, "g", 2, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Reserve("g-a", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reserve("g-b", "n1"); err == nil {
		t.Fatal("over-committing Reserve succeeded")
	}
	if got := srv.Committed("n1").Get(resource.Memory); got != resource.MiB {
		t.Fatalf("committed = %d, want %d", got, resource.MiB)
	}
	found := false
	srv.VisitPending("", func(p *api.Pod) bool {
		found = found || p.Name == "g-b"
		return true
	})
	if !found {
		t.Fatal("rejected member fell out of the pending queue")
	}
	if stats := srv.GangStats(); stats.PermitRejected == 0 {
		t.Fatalf("PermitRejected not counted: %+v", stats)
	}
}

// TestPreemptGroupEvictsWholeGangOrNothing: eviction displaces every
// member — bound and permit-holding alike — in one atomic step, and a
// second call finds nothing left to evict.
func TestPreemptGroupEvictsWholeGangOrNothing(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	if err := srv.RegisterNode(gangNode("n1", resource.GiB)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"g-a", "g-b", "g-c"} {
		if err := srv.CreatePod(gangPod(name, "g", 3, 0)); err != nil {
			t.Fatal(err)
		}
		if err := srv.Reserve(name, "n1"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.CommitGroup("g"); err != nil {
		t.Fatal(err)
	}
	// A straggler joins late and holds a permit when the preemption hits.
	if err := srv.CreatePod(gangPod("g-d", "g", 3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reserve("g-d", "n1"); err != nil {
		t.Fatal(err)
	}

	evicted, err := srv.PreemptGroup("g", "make room")
	if err != nil || evicted != 4 {
		t.Fatalf("PreemptGroup = %d, %v, want 4, nil", evicted, err)
	}
	if got := srv.Committed("n1").Get(resource.Memory); got != 0 {
		t.Fatalf("committed after group preemption = %d, want 0", got)
	}
	if srv.ReservationCount() != 0 || srv.BoundGroupCount("g") != 0 {
		t.Fatalf("gang state survived: %d permits, %d bound",
			srv.ReservationCount(), srv.BoundGroupCount("g"))
	}
	n := 0
	srv.VisitPending("", func(p *api.Pod) bool {
		if p.Spec.NodeName != "" || p.Status.Phase != api.PodPending {
			t.Fatalf("evicted member %s = %q/%s", p.Name, p.Spec.NodeName, p.Status.Phase)
		}
		n++
		return true
	})
	if n != 4 {
		t.Fatalf("%d members re-queued, want 4", n)
	}
	p, _ := srv.GetPod("g-a")
	if p.Status.Reason != "Preempted: make room" {
		t.Fatalf("reason = %q", p.Status.Reason)
	}
	if _, err := srv.PreemptGroup("g", "again"); !errors.Is(err, ErrConflict) {
		t.Fatalf("second PreemptGroup: err = %v, want ErrConflict", err)
	}
}

// TestPendingQueueCoalescesGangMembers: within a priority tier the queue
// surfaces a gang's members adjacently, so one scheduling pass sees the
// whole group together instead of straddling pass boundaries.
func TestPendingQueueCoalescesGangMembers(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	submissions := []struct{ name, group string }{
		{"g1-a", "g1"}, {"solo-1", ""}, {"g1-b", "g1"}, {"solo-2", ""},
		{"g2-a", "g2"}, {"g1-c", "g1"}, {"g2-b", "g2"},
	}
	for _, s := range submissions {
		var p *api.Pod
		if s.group == "" {
			p = prioPod(s.name, 0)
		} else {
			p = gangPod(s.name, s.group, 3, 0)
		}
		if err := srv.CreatePod(p); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	srv.VisitPending("", func(p *api.Pod) bool {
		got = append(got, p.Name)
		return true
	})
	want := "[g1-a g1-b g1-c solo-1 solo-2 g2-a g2-b]"
	if fmt.Sprint(got) != want {
		t.Fatalf("coalesced order = %v, want %v", got, want)
	}
}
