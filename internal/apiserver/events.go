package apiserver

import (
	"sync"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
)

// maxEvents bounds the retained human-readable event log.
const maxEvents = 16384

// eventLog is a bounded ring of human-readable api.Events — the
// `kubectl get events` analogue. It has its own mutex (a leaf in the
// lock order, below the state stripes) so recording an event never
// extends a stripe's critical section beyond the O(1) append, and long
// runs overwrite the oldest entries instead of growing without limit.
type eventLog struct {
	mu    sync.Mutex
	buf   []api.Event
	start int // index of the oldest retained event
	count int
}

func newEventLog(capacity int) *eventLog {
	return &eventLog{buf: make([]api.Event, capacity)}
}

// append records one event, evicting the oldest when full.
func (l *eventLog) append(now time.Time, object, reason, message string) {
	l.mu.Lock()
	if l.count == len(l.buf) {
		l.start = (l.start + 1) % len(l.buf)
		l.count--
	}
	l.buf[(l.start+l.count)%len(l.buf)] = api.Event{
		Time:    now,
		Object:  object,
		Reason:  reason,
		Message: message,
	}
	l.count++
	l.mu.Unlock()
}

// snapshot returns a copy of the retained events, oldest first.
func (l *eventLog) snapshot() []api.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]api.Event, l.count)
	for i := 0; i < l.count; i++ {
		out[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	return out
}
