package apiserver

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
)

// reqPod builds a pending pod with explicit requests.
func reqPod(name string, req resource.List) *api.Pod {
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{
			SchedulerName: "s",
			Containers: []api.Container{{
				Name:      "main",
				Resources: api.Requirements{Requests: req.Clone()},
			}},
		},
	}
}

// TestBindRefusesCordonedNode is the regression test for the cordon race:
// Bind used to stamp ScheduledAt and emit PodBound even when the target
// node was cordoned or drained mid-pass. The admission check must refuse
// with ErrConflict, keep the pod pending, and log a BindRejected event.
func TestBindRefusesCordonedNode(t *testing.T) {
	clk := clock.NewSim()
	s := New(clk)
	node := testNode("n1", false)
	node.Unschedulable = true
	if err := s.RegisterNode(node); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePod(testPod("p1")); err != nil {
		t.Fatal(err)
	}

	var boundEvents int
	unsub := s.Subscribe(func(ev WatchEvent) {
		if ev.Type == PodBound {
			boundEvents++
		}
	})
	defer unsub()

	err := s.Bind("p1", "n1")
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("bind to cordoned node err = %v, want ErrConflict", err)
	}
	if errors.Is(err, ErrOutdated) {
		t.Fatalf("cordon refusal classified as capacity race: %v", err)
	}
	p, _ := s.GetPod("p1")
	if p.Spec.NodeName != "" || !p.Status.ScheduledAt.IsZero() || p.Status.Phase != api.PodPending {
		t.Fatalf("rejected bind mutated the pod: %+v", p)
	}
	if got := s.PendingCount(); got != 1 {
		t.Fatalf("pod left the queue on a rejected bind: pending = %d", got)
	}
	if boundEvents != 0 {
		t.Fatalf("rejected bind emitted %d PodBound event(s)", boundEvents)
	}

	// NotReady nodes are refused the same way.
	node2 := testNode("n2", false)
	node2.Ready = false
	if err := s.RegisterNode(node2); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("p1", "n2"); !errors.Is(err, ErrConflict) {
		t.Fatalf("bind to NotReady node err = %v, want ErrConflict", err)
	}

	st := s.BindStats()
	if st.Attempts != 2 || st.Bound != 0 || st.RejectedNodeState != 2 {
		t.Fatalf("BindStats = %+v, want 2 attempts, 2 node-state rejections", st)
	}
	var rejected int
	for _, ev := range s.Events() {
		if ev.Reason == "BindRejected" {
			rejected++
		}
	}
	if rejected != 2 {
		t.Fatalf("BindRejected events = %d, want 2", rejected)
	}
}

// TestBindConflictOnEPCCapacity: the per-node sum of EPC page-item
// requests is enforced at bind time in every admission mode — the §V-A
// no-over-commitment invariant. The loser gets ErrOutdated and binds
// normally once capacity frees.
func TestBindConflictOnEPCCapacity(t *testing.T) {
	clk := clock.NewSim()
	s := New(clk)
	if err := s.RegisterNode(testNode("sgx-1", true)); err != nil { // 23936 EPC pages
		t.Fatal(err)
	}
	epc := func(pages int64) resource.List {
		return resource.List{resource.Memory: resource.MiB, resource.EPCPages: pages}
	}
	for _, p := range []*api.Pod{reqPod("a", epc(20000)), reqPod("b", epc(20000))} {
		if err := s.CreatePod(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Bind("a", "sgx-1"); err != nil {
		t.Fatal(err)
	}
	err := s.Bind("b", "sgx-1")
	if !errors.Is(err, ErrOutdated) || !errors.Is(err, ErrConflict) {
		t.Fatalf("overcommitting bind err = %v, want ErrOutdated (an ErrConflict)", err)
	}
	if st := s.BindStats(); st.RejectedCapacity != 1 || st.Bound != 1 {
		t.Fatalf("BindStats = %+v", st)
	}

	// SGX pods can never bind non-SGX nodes, regardless of headroom.
	if err := s.RegisterNode(testNode("std-1", false)); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("b", "std-1"); !errors.Is(err, ErrConflict) {
		t.Fatalf("SGX pod on non-SGX node err = %v, want ErrConflict", err)
	}

	// The winner finishing releases its committed devices; the loser's
	// retry now succeeds — conflict means "retry", not "failed".
	if err := s.MarkSucceeded("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("b", "sgx-1"); err != nil {
		t.Fatalf("retry after capacity freed: %v", err)
	}
}

// TestBindStaticOverfitRefused: even in the default (overcommit-friendly)
// mode a pod whose single request exceeds the node's total allocatable
// can never bind — no amount of usage reclamation makes it fit.
func TestBindStaticOverfitRefused(t *testing.T) {
	s := New(clock.NewSim())
	if err := s.RegisterNode(testNode("n1", false)); err != nil { // 64 GiB
		t.Fatal(err)
	}
	if err := s.CreatePod(reqPod("huge", resource.List{resource.Memory: 65 * resource.GiB})); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("huge", "n1"); !errors.Is(err, ErrConflict) {
		t.Fatalf("statically impossible bind err = %v, want ErrConflict", err)
	}
}

// TestBindGuardedAllowsMemoryOvercommit: guarded admission must accept
// request-sum memory overcommit — usage-aware scheduling (§V-B) relies on
// binding pods whose requests exceed what request accounting would allow.
func TestBindGuardedAllowsMemoryOvercommit(t *testing.T) {
	s := New(clock.NewSim())
	if err := s.RegisterNode(testNode("n1", false)); err != nil { // 64 GiB
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if err := s.CreatePod(reqPod(name, resource.List{resource.Memory: 40 * resource.GiB})); err != nil {
			t.Fatal(err)
		}
		if err := s.Bind(name, "n1"); err != nil {
			t.Fatalf("guarded admission refused legal overcommit for %s: %v", name, err)
		}
	}
}

// TestBindStrictMemoryAdmission: AdmitStrict enforces request sums for
// memory, so the second 40 GiB pod on a 64 GiB node loses with
// ErrOutdated; preempting the winner frees the committed requests.
func TestBindStrictMemoryAdmission(t *testing.T) {
	s := New(clock.NewSim(), WithAdmission(AdmitStrict))
	if err := s.RegisterNode(testNode("n1", false)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if err := s.CreatePod(reqPod(name, resource.List{resource.Memory: 40 * resource.GiB})); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Bind("a", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("b", "n1"); !errors.Is(err, ErrOutdated) {
		t.Fatalf("strict overcommit err = %v, want ErrOutdated", err)
	}
	if got := s.Committed("n1").Get(resource.Memory); got != 40*resource.GiB {
		t.Fatalf("committed = %d, want 40 GiB", got)
	}
	if err := s.Preempt("a", "test"); err != nil {
		t.Fatal(err)
	}
	if got := s.Committed("n1").Get(resource.Memory); got != 0 {
		t.Fatalf("committed after preempt = %d, want 0", got)
	}
	if err := s.Bind("b", "n1"); err != nil {
		t.Fatalf("bind after preemption freed capacity: %v", err)
	}
}

// TestAdmitNoneRestoresUncheckedBind: the escape hatch for byzantine-
// scheduler tests binds anything onto anything known.
func TestAdmitNoneRestoresUncheckedBind(t *testing.T) {
	s := New(clock.NewSim(), WithAdmission(AdmitNone))
	node := testNode("n1", false)
	node.Unschedulable = true
	if err := s.RegisterNode(node); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePod(reqPod("p", resource.List{resource.Memory: 100 * resource.GiB, resource.EPCPages: 1})); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("p", "n1"); err != nil {
		t.Fatalf("unchecked bind refused: %v", err)
	}
}

// TestConcurrentBindLastEPCDevice races two goroutines for the last EPC
// devices of one node: exactly one bind must win, the other must lose
// with ErrOutdated, and the committed accounting must equal the winner's
// request. Run under -race in CI.
func TestConcurrentBindLastEPCDevice(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		clk := clock.NewSim()
		s := New(clk)
		if err := s.RegisterNode(testNode("sgx-1", true)); err != nil {
			t.Fatal(err)
		}
		req := resource.List{resource.Memory: resource.MiB, resource.EPCPages: 13000}
		for _, name := range []string{"a", "b"} {
			if err := s.CreatePod(reqPod(name, req)); err != nil {
				t.Fatal(err)
			}
		}
		errs := make([]error, 2)
		var start, wg sync.WaitGroup
		start.Add(1)
		for i, name := range []string{"a", "b"} {
			i, name := i, name
			wg.Add(1)
			go func() {
				defer wg.Done()
				start.Wait()
				errs[i] = s.Bind(name, "sgx-1")
			}()
		}
		start.Done()
		wg.Wait()

		wins, losses := 0, 0
		for _, err := range errs {
			switch {
			case err == nil:
				wins++
			case errors.Is(err, ErrOutdated):
				losses++
			default:
				t.Fatalf("unexpected bind error: %v", err)
			}
		}
		if wins != 1 || losses != 1 {
			t.Fatalf("trial %d: wins = %d losses = %d, want exactly one winner", trial, wins, losses)
		}
		if got := s.Committed("sgx-1").Get(resource.EPCPages); got != 13000 {
			t.Fatalf("trial %d: committed EPC = %d, want 13000", trial, got)
		}
	}
}

// TestConflictInterleavingCapacityProperty replays random concurrent
// interleavings of bind / preempt / finish (with binds racing and
// conflicting) against a strict-admission server, records the watch event
// stream, and then re-derives every node's committed requests from the
// events alone: at no prefix of the stream may any node's committed
// memory or EPC exceed its allocatable. This is the safety property the
// multi-scheduler experiment asserts post-hoc from events.
func TestConflictInterleavingCapacityProperty(t *testing.T) {
	clk := clock.NewSim()
	s := New(clk, WithAdmission(AdmitStrict))

	nodes := map[string]resource.List{}
	for i := 0; i < 3; i++ {
		n := testNode(fmt.Sprintf("sgx-%d", i), true) // 64 GiB, 23936 pages
		nodes[n.Name] = n.Allocatable.Clone()
		if err := s.RegisterNode(n); err != nil {
			t.Fatal(err)
		}
	}

	// Record the stream. Delivery is serialized by the server's ordering
	// lock; the mutex keeps the recorder race-clean anyway.
	var evMu sync.Mutex
	var events []WatchEvent
	unsub := s.Subscribe(func(ev WatchEvent) {
		evMu.Lock()
		events = append(events, ev)
		evMu.Unlock()
	})
	defer unsub()

	const workers = 6
	const perWorker = 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + w)))
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("pod-%d-%d", w, i)
				req := resource.List{resource.Memory: int64(1+rng.Intn(24)) * resource.GiB}
				if rng.Intn(2) == 0 {
					req[resource.EPCPages] = int64(1 + rng.Intn(9000))
				}
				if err := s.CreatePod(reqPod(name, req)); err != nil {
					t.Errorf("create %s: %v", name, err)
					return
				}
				node := fmt.Sprintf("sgx-%d", rng.Intn(3))
				if err := s.Bind(name, node); err != nil {
					continue // lost a race: conflicts are the point
				}
				switch rng.Intn(3) {
				case 0:
					_ = s.Preempt(name, "chaos")
				case 1:
					_ = s.MarkSucceeded(name)
				}
			}
		}()
	}
	wg.Wait()

	// Replay: derive committed state purely from the event stream.
	type charge struct {
		node string
		req  resource.List
	}
	bound := map[string]charge{}
	committed := map[string]resource.List{}
	for name := range nodes {
		committed[name] = make(resource.List, 3)
	}
	conflictsSeen := s.BindStats().RejectedCapacity
	for i, ev := range events {
		if ev.Pod == nil {
			continue
		}
		switch ev.Type {
		case PodBound:
			req := ev.Pod.TotalRequests()
			committed[ev.Pod.Spec.NodeName].AddInPlace(req)
			bound[ev.Pod.Name] = charge{node: ev.Pod.Spec.NodeName, req: req}
		case PodUpdated:
			c, ok := bound[ev.Pod.Name]
			if ok && (ev.Pod.IsTerminal() || ev.Pod.Spec.NodeName == "") {
				for k, v := range c.req {
					committed[c.node][k] -= v
				}
				delete(bound, ev.Pod.Name)
			}
		}
		for name, com := range committed {
			alloc := nodes[name]
			for k, v := range com {
				if v > alloc.Get(k) {
					t.Fatalf("event %d: node %s overcommitted: %s=%d > %d (conflicts so far: %d)",
						i, name, k, v, alloc.Get(k), conflictsSeen)
				}
				if v < 0 {
					t.Fatalf("event %d: node %s negative commitment: %s=%d", i, name, k, v)
				}
			}
		}
	}
	if conflictsSeen == 0 {
		t.Log("note: no capacity conflicts occurred this run (racy; property still verified)")
	}
	// Cross-check the derived state against the server's accounting.
	for name := range nodes {
		if got, want := s.Committed(name), committed[name]; !got.Equal(want) {
			t.Fatalf("node %s: server committed %v, events derive %v", name, got, want)
		}
	}
}
