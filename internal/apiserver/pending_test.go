package apiserver

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
)

func prioPod(name string, prio int32) *api.Pod {
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{
			SchedulerName: "s",
			Priority:      prio,
			Containers: []api.Container{{
				Name:      "main",
				Resources: api.Requirements{Requests: resource.List{resource.Memory: resource.MiB}},
			}},
		},
	}
}

// TestPendingQueuePriorityThenFCFS: the queue drains higher tiers first
// and first-come first-served within a tier, regardless of interleaved
// submission order.
func TestPendingQueuePriorityThenFCFS(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	submissions := []struct {
		name string
		prio int32
	}{
		{"low-1", 0}, {"high-1", 5}, {"low-2", 0}, {"mid-1", 3},
		{"high-2", 5}, {"mid-2", 3}, {"low-3", 0},
	}
	for _, s := range submissions {
		if err := srv.CreatePod(prioPod(s.name, s.prio)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"high-1", "high-2", "mid-1", "mid-2", "low-1", "low-2", "low-3"}

	var got []string
	srv.VisitPending("", func(p *api.Pod) bool {
		got = append(got, p.Name)
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("VisitPending order = %v, want %v", got, want)
	}

	got = got[:0]
	for _, p := range srv.PendingPods("s") {
		got = append(got, p.Name)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("PendingPods order = %v, want %v", got, want)
	}

	snap, unsub := srv.ListAndWatch(func(WatchEvent) {})
	defer unsub()
	if fmt.Sprint(snap.Pending) != fmt.Sprint(want) {
		t.Fatalf("snapshot Pending order = %v, want %v", snap.Pending, want)
	}
}

// TestPendingQueueRandomizedAgainstReference churns random
// submit/remove/visit traffic through the bucketed queue and checks it
// against a straightforward sort-based model.
func TestPendingQueueRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := newPendingQueue()
	type entry struct {
		name string
		prio int32
		seq  int
	}
	var model []entry
	seq := 0
	for op := 0; op < 5000; op++ {
		switch {
		case rng.Intn(3) > 0 || len(model) == 0:
			name := fmt.Sprintf("p%05d", seq)
			prio := int32(rng.Intn(5) - 2)
			q.Push(name, prio)
			model = append(model, entry{name: name, prio: prio, seq: seq})
			seq++
		default:
			i := rng.Intn(len(model))
			q.Remove(model[i].name)
			model = append(model[:i], model[i+1:]...)
		}
		if op%50 != 0 {
			continue
		}
		sorted := append([]entry(nil), model...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].prio != sorted[j].prio {
				return sorted[i].prio > sorted[j].prio
			}
			return sorted[i].seq < sorted[j].seq
		})
		got := q.Snapshot()
		if len(got) != len(sorted) || q.Len() != len(sorted) {
			t.Fatalf("op %d: queue has %d (Len %d), model has %d", op, len(got), q.Len(), len(sorted))
		}
		for i := range got {
			if got[i] != sorted[i].name {
				t.Fatalf("op %d: position %d = %s, model %s", op, i, got[i], sorted[i].name)
			}
		}
	}
}

// TestPreemptRequeuesBoundPod: preemption clears the binding, resets the
// scheduling timestamps, re-queues at the tail of the pod's tier and
// emits a PodUpdated event.
func TestPreemptRequeuesBoundPod(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	node := &api.Node{
		Name:        "n1",
		Capacity:    resource.List{resource.Memory: resource.GiB},
		Allocatable: resource.List{resource.Memory: resource.GiB},
		Ready:       true,
	}
	if err := srv.RegisterNode(node); err != nil {
		t.Fatal(err)
	}
	var events []WatchEvent
	unsub := srv.Subscribe(func(ev WatchEvent) { events = append(events, ev) })
	defer unsub()

	for _, name := range []string{"victim", "peer"} {
		if err := srv.CreatePod(prioPod(name, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Bind("victim", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := srv.MarkRunning("victim"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(1)

	if err := srv.Preempt("victim", "test"); err != nil {
		t.Fatal(err)
	}
	p, _ := srv.GetPod("victim")
	if p.Status.Phase != api.PodPending || p.Spec.NodeName != "" {
		t.Fatalf("preempted pod = %s on %q, want Pending unbound", p.Status.Phase, p.Spec.NodeName)
	}
	if !p.Status.ScheduledAt.IsZero() || !p.Status.StartedAt.IsZero() {
		t.Fatalf("scheduling timestamps not reset: %+v", p.Status)
	}
	if p.Status.Reason != "Preempted: test" {
		t.Fatalf("reason = %q", p.Status.Reason)
	}
	// Re-queued at the tail of its tier: peer (never scheduled) first.
	var order []string
	srv.VisitPending("", func(p *api.Pod) bool {
		order = append(order, p.Name)
		return true
	})
	if fmt.Sprint(order) != "[peer victim]" {
		t.Fatalf("requeue order = %v, want [peer victim]", order)
	}
	last := events[len(events)-1]
	if last.Type != PodUpdated || last.Pod.Name != "victim" || last.Pod.Spec.NodeName != "" {
		t.Fatalf("last event = %+v, want PodUpdated for unbound victim", last)
	}

	// The victim is schedulable again.
	if err := srv.Bind("victim", "n1"); err != nil {
		t.Fatalf("rebind after preemption: %v", err)
	}
}

// TestPreemptRejectsUnboundAndTerminalPods: only bound, live pods can be
// preempted.
func TestPreemptRejectsUnboundAndTerminalPods(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	if err := srv.CreatePod(prioPod("queued", 0)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Preempt("queued", "x"); !errors.Is(err, ErrConflict) {
		t.Fatalf("preempting unbound pod: err = %v, want ErrConflict", err)
	}
	if err := srv.Preempt("ghost", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("preempting unknown pod: err = %v, want ErrNotFound", err)
	}
	if err := srv.MarkFailed("queued", "dead"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Preempt("queued", "x"); !errors.Is(err, ErrConflict) {
		t.Fatalf("preempting terminal pod: err = %v, want ErrConflict", err)
	}
}
