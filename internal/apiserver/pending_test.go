package apiserver

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
)

func prioPod(name string, prio int32) *api.Pod {
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{
			SchedulerName: "s",
			Priority:      prio,
			Containers: []api.Container{{
				Name:      "main",
				Resources: api.Requirements{Requests: resource.List{resource.Memory: resource.MiB}},
			}},
		},
	}
}

// TestPendingQueuePriorityThenFCFS: the queue drains higher tiers first
// and first-come first-served within a tier, regardless of interleaved
// submission order.
func TestPendingQueuePriorityThenFCFS(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	submissions := []struct {
		name string
		prio int32
	}{
		{"low-1", 0}, {"high-1", 5}, {"low-2", 0}, {"mid-1", 3},
		{"high-2", 5}, {"mid-2", 3}, {"low-3", 0},
	}
	for _, s := range submissions {
		if err := srv.CreatePod(prioPod(s.name, s.prio)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"high-1", "high-2", "mid-1", "mid-2", "low-1", "low-2", "low-3"}

	var got []string
	srv.VisitPending("", func(p *api.Pod) bool {
		got = append(got, p.Name)
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("VisitPending order = %v, want %v", got, want)
	}

	got = got[:0]
	for _, p := range srv.PendingPods("s") {
		got = append(got, p.Name)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("PendingPods order = %v, want %v", got, want)
	}

	snap, unsub := srv.ListAndWatch(func(WatchEvent) {})
	defer unsub()
	if fmt.Sprint(snap.Pending) != fmt.Sprint(want) {
		t.Fatalf("snapshot Pending order = %v, want %v", snap.Pending, want)
	}
}

// TestPendingQueueRandomizedAgainstReference churns random
// submit/remove/visit traffic through the bucketed queue and checks it
// against a straightforward sort-based model.
func TestPendingQueueRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := newPendingQueue()
	type entry struct {
		name string
		prio int32
		seq  int
	}
	var model []entry
	seq := 0
	for op := 0; op < 5000; op++ {
		switch {
		case rng.Intn(3) > 0 || len(model) == 0:
			name := fmt.Sprintf("p%05d", seq)
			prio := int32(rng.Intn(5) - 2)
			q.Push(name, prio, "", "")
			model = append(model, entry{name: name, prio: prio, seq: seq})
			seq++
		default:
			i := rng.Intn(len(model))
			q.Remove(model[i].name)
			model = append(model[:i], model[i+1:]...)
		}
		if op%50 != 0 {
			continue
		}
		sorted := append([]entry(nil), model...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].prio != sorted[j].prio {
				return sorted[i].prio > sorted[j].prio
			}
			return sorted[i].seq < sorted[j].seq
		})
		got := q.Snapshot()
		if len(got) != len(sorted) || q.Len() != len(sorted) {
			t.Fatalf("op %d: queue has %d (Len %d), model has %d", op, len(got), q.Len(), len(sorted))
		}
		for i := range got {
			if got[i] != sorted[i].name {
				t.Fatalf("op %d: position %d = %s, model %s", op, i, got[i], sorted[i].name)
			}
		}
	}
}

// TestGangCoalescingStaysWithinPriorityTier: gang coalescing never
// crosses tiers. Co-members of one group split across two priorities
// coalesce independently inside each tier — the high tier's first
// member pulls only its same-tier peers forward, and the low-tier
// members keep their place behind every higher-priority pod instead of
// being hoisted up to join the gang.
func TestGangCoalescingStaysWithinPriorityTier(t *testing.T) {
	q := newPendingQueue()
	// Tier 5: solo, gang, solo, gang — g-hi-2 should coalesce up next
	// to g-hi-1, but no further than its own tier.
	q.Push("solo-hi-1", 5, "", "")
	q.Push("g-hi-1", 5, "ring", "")
	q.Push("solo-hi-2", 5, "", "")
	q.Push("g-hi-2", 5, "ring", "")
	// Tier 0: same shape, same group name.
	q.Push("solo-lo-1", 0, "", "")
	q.Push("g-lo-1", 0, "ring", "")
	q.Push("solo-lo-2", 0, "", "")
	q.Push("g-lo-2", 0, "ring", "")

	want := []string{
		"solo-hi-1", "g-hi-1", "g-hi-2", "solo-hi-2",
		"solo-lo-1", "g-lo-1", "g-lo-2", "solo-lo-2",
	}
	if got := q.Snapshot(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cross-tier gang order = %v, want %v", got, want)
	}

	// Removing one tier's members must not disturb the other tier's
	// coalescing (the group indexes are per-bucket).
	q.Remove("g-hi-1")
	q.Remove("solo-lo-1")
	want = []string{
		"solo-hi-1", "solo-hi-2", "g-hi-2",
		"g-lo-1", "g-lo-2", "solo-lo-2",
	}
	if got := q.Snapshot(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after removals = %v, want %v", got, want)
	}

	// Draining the high tier entirely leaves the low tier's gang intact
	// and adjacent.
	for _, name := range []string{"solo-hi-1", "solo-hi-2", "g-hi-2"} {
		q.Remove(name)
	}
	want = []string{"g-lo-1", "g-lo-2", "solo-lo-2"}
	if got := q.Snapshot(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after draining the high tier = %v, want %v", got, want)
	}
}

// TestGangCoalescingCrossTierWindowedVisit: the server-level windowed
// walk over a gang that straddles tiers returns the high-tier members
// coalesced inside the window and never pulls the low-tier co-members
// past higher-priority solo pods to fill it.
func TestGangCoalescingCrossTierWindowedVisit(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	gangPod := func(name string, prio int32, group string) *api.Pod {
		p := prioPod(name, prio)
		p.Spec.PodGroup = group
		return p
	}
	for _, p := range []*api.Pod{
		gangPod("m-hi-1", 5, "mpi"),
		prioPod("solo-hi", 5),
		gangPod("m-hi-2", 5, "mpi"),
		prioPod("solo-lo", 0),
		gangPod("m-lo-1", 0, "mpi"),
		gangPod("m-lo-2", 0, "mpi"),
	} {
		if err := srv.CreatePod(p); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	srv.VisitPendingN("s", 4, func(p *api.Pod) bool {
		got = append(got, p.Name)
		return true
	})
	// The window sees the whole high tier (gang coalesced ahead of the
	// solo pushed between its members), then FCFS into tier 0: solo-lo
	// arrived first and keeps its place — the low-tier gang members do
	// not jump it to rejoin their high-tier co-members.
	want := []string{"m-hi-1", "m-hi-2", "solo-hi", "solo-lo"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("windowed cross-tier visit = %v, want %v", got, want)
	}

	var full []string
	srv.VisitPending("s", func(p *api.Pod) bool {
		full = append(full, p.Name)
		return true
	})
	wantFull := []string{"m-hi-1", "m-hi-2", "solo-hi", "solo-lo", "m-lo-1", "m-lo-2"}
	if fmt.Sprint(full) != fmt.Sprint(wantFull) {
		t.Fatalf("full cross-tier visit = %v, want %v", full, wantFull)
	}
}

// TestPreemptRequeuesBoundPod: preemption clears the binding, resets the
// scheduling timestamps, re-queues at the tail of the pod's tier and
// emits a PodUpdated event.
func TestPreemptRequeuesBoundPod(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	node := &api.Node{
		Name:        "n1",
		Capacity:    resource.List{resource.Memory: resource.GiB},
		Allocatable: resource.List{resource.Memory: resource.GiB},
		Ready:       true,
	}
	if err := srv.RegisterNode(node); err != nil {
		t.Fatal(err)
	}
	var events []WatchEvent
	unsub := srv.Subscribe(func(ev WatchEvent) { events = append(events, ev) })
	defer unsub()

	for _, name := range []string{"victim", "peer"} {
		if err := srv.CreatePod(prioPod(name, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Bind("victim", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := srv.MarkRunning("victim"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(1)

	if err := srv.Preempt("victim", "test"); err != nil {
		t.Fatal(err)
	}
	p, _ := srv.GetPod("victim")
	if p.Status.Phase != api.PodPending || p.Spec.NodeName != "" {
		t.Fatalf("preempted pod = %s on %q, want Pending unbound", p.Status.Phase, p.Spec.NodeName)
	}
	if !p.Status.ScheduledAt.IsZero() || !p.Status.StartedAt.IsZero() {
		t.Fatalf("scheduling timestamps not reset: %+v", p.Status)
	}
	if p.Status.Reason != "Preempted: test" {
		t.Fatalf("reason = %q", p.Status.Reason)
	}
	// Re-queued at the tail of its tier: peer (never scheduled) first.
	var order []string
	srv.VisitPending("", func(p *api.Pod) bool {
		order = append(order, p.Name)
		return true
	})
	if fmt.Sprint(order) != "[peer victim]" {
		t.Fatalf("requeue order = %v, want [peer victim]", order)
	}
	last := events[len(events)-1]
	if last.Type != PodUpdated || last.Pod.Name != "victim" || last.Pod.Spec.NodeName != "" {
		t.Fatalf("last event = %+v, want PodUpdated for unbound victim", last)
	}

	// The victim is schedulable again.
	if err := srv.Bind("victim", "n1"); err != nil {
		t.Fatalf("rebind after preemption: %v", err)
	}
}

// TestPreemptRejectsUnboundAndTerminalPods: only bound, live pods can be
// preempted.
func TestPreemptRejectsUnboundAndTerminalPods(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	if err := srv.CreatePod(prioPod("queued", 0)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Preempt("queued", "x"); !errors.Is(err, ErrConflict) {
		t.Fatalf("preempting unbound pod: err = %v, want ErrConflict", err)
	}
	if err := srv.Preempt("ghost", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("preempting unknown pod: err = %v, want ErrNotFound", err)
	}
	if err := srv.MarkFailed("queued", "dead"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Preempt("queued", "x"); !errors.Is(err, ErrConflict) {
		t.Fatalf("preempting terminal pod: err = %v, want ErrConflict", err)
	}
}

// TestVisitPendingNWindowsDeepQueue fills the queue 100k deep and proves
// the windowed visit returns exactly the queue head in order — and that
// it never copies the whole queue: the per-call allocation count stays
// O(1) because the truncated name snapshot reuses a pooled buffer sized
// by the window, not the backlog.
func TestVisitPendingNWindowsDeepQueue(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	const depth = 100_000
	for i := 0; i < depth; i++ {
		// Priorities cycle so the head interleaves tiers; within a tier
		// FCFS order is submission order.
		if err := srv.CreatePod(prioPod(fmt.Sprintf("pod-%06d", i), int32(i%3))); err != nil {
			t.Fatal(err)
		}
	}

	var full []string
	srv.VisitPending("s", func(p *api.Pod) bool {
		full = append(full, p.Name)
		return true
	})
	if len(full) != depth {
		t.Fatalf("full visit saw %d pods, want %d", len(full), depth)
	}

	const window = 100
	var head []string
	srv.VisitPendingN("s", window, func(p *api.Pod) bool {
		head = append(head, p.Name)
		return true
	})
	if len(head) != window {
		t.Fatalf("windowed visit saw %d pods, want %d", len(head), window)
	}
	for i := range head {
		if head[i] != full[i] {
			t.Fatalf("windowed visit[%d] = %s, want %s (order not preserved)", i, head[i], full[i])
		}
	}

	// No O(queue) copy per call: after warmup the pooled name buffer is
	// reused, so a windowed walk over a 100k backlog allocates (next to)
	// nothing. A full-queue copy would show up as thousands of bytes of
	// slice growth every run.
	n := 0
	visit := func() {
		srv.VisitPendingN("s", window, func(p *api.Pod) bool {
			n++
			return true
		})
	}
	visit() // warm the pool
	if allocs := testing.AllocsPerRun(50, visit); allocs > 1 {
		t.Fatalf("windowed visit allocates %.0f objects/run over a %d-deep queue, want <= 1", allocs, depth)
	}
	if n == 0 {
		t.Fatal("visit callback never ran")
	}

	// Early stop from the callback still works under a window.
	var got []string
	srv.VisitPendingN("s", window, func(p *api.Pod) bool {
		got = append(got, p.Name)
		return len(got) < 7
	})
	if len(got) != 7 {
		t.Fatalf("early-stopped visit saw %d pods, want 7", len(got))
	}
}
