package apiserver

import (
	"sort"

	"github.com/sgxorch/sgxorch/internal/api"
)

// pendingQueue is the server's persistent queue of unscheduled pods:
// priority-then-FCFS (§IV's first-come first-served order, refined by
// api.PodSpec.Priority tiers). Each priority holds its own FCFS bucket
// with the tombstone-and-compact layout the plain FCFS queue used, so
// enqueue and remove stay O(1) amortized and a full visit is O(live +
// tiers). Pod names are unique across the whole queue.
//
// The queue is gang-aware: pods pushed with a pod-group name are
// coalesced on Visit — the first-encountered member of a group pulls
// its live co-members in the same priority tier forward, so a
// scheduling pass sees a whole gang adjacently instead of interleaved
// with unrelated pods (which would strand permits across passes).
// Buckets with no gang members take the historical zero-overhead path.
type pendingQueue struct {
	prios   []int32 // distinct priorities present, sorted descending
	buckets map[int32]*pendingBucket
	idx     map[string]int32  // pod name → its bucket's priority
	groupOf map[string]string // pod name → pod group (gang members only)
	seen    map[string]bool   // visit scratch, cleared after each use
	// classOf/classCount surface per-workload-class queue depth (classOf
	// holds classified pods only, like groupOf holds gang members;
	// unclassified depth is Len minus the classified sum). Accounting
	// only — class never affects queue order: within a tier the queue
	// stays strictly FCFS regardless of class, so class-aware routing
	// lives entirely in the scheduler, not the server.
	classOf    map[string]api.WorkloadClass
	classCount map[api.WorkloadClass]int
}

// pendingBucket is one priority tier's FCFS queue. Removed entries are
// tombstoned ("") and compacted when they outnumber live ones.
type pendingBucket struct {
	names  []string
	byName map[string]int
	dead   int
	// groups indexes the bucket's gang members by group, in push order,
	// so Visit can emit a gang adjacently without scanning the bucket.
	groups map[string][]string
}

func newPendingQueue() *pendingQueue {
	return &pendingQueue{
		buckets: make(map[int32]*pendingBucket),
		idx:     make(map[string]int32),
		groupOf: make(map[string]string),
	}
}

// Len returns the number of queued pods.
func (q *pendingQueue) Len() int { return len(q.idx) }

// ClassCounts folds the queue's per-workload-class depth into out
// (allocating it when nil): one entry per known class with queued pods,
// plus api.ClassUnspecified for the unclassified remainder.
func (q *pendingQueue) ClassCounts(out map[api.WorkloadClass]int) map[api.WorkloadClass]int {
	if out == nil {
		out = make(map[api.WorkloadClass]int, len(q.classCount)+1)
	}
	classified := 0
	for c, n := range q.classCount {
		out[c] += n
		classified += n
	}
	if rest := q.Len() - classified; rest > 0 {
		out[api.ClassUnspecified] += rest
	}
	return out
}

// PriorityCounts folds the queue's live depth per priority tier into out
// (allocating it when nil). O(tiers): each bucket's live size is
// len(byName) — the lazily-compacted names slice may be longer, but the
// index is exact.
func (q *pendingQueue) PriorityCounts(out map[int32]int) map[int32]int {
	if out == nil {
		out = make(map[int32]int, len(q.prios))
	}
	for _, prio := range q.prios {
		if b := q.buckets[prio]; b != nil && len(b.byName) > 0 {
			out[prio] += len(b.byName)
		}
	}
	return out
}

// Push appends a pod at the tail of its priority tier. A non-empty
// group registers the pod for gang coalescing within the tier; a known
// class registers it in the per-class depth accounting.
func (q *pendingQueue) Push(name string, prio int32, group string, class api.WorkloadClass) {
	b, ok := q.buckets[prio]
	if !ok {
		b = &pendingBucket{byName: make(map[string]int)}
		q.buckets[prio] = b
		// Insert into the descending priority list.
		i := sort.Search(len(q.prios), func(i int) bool { return q.prios[i] < prio })
		q.prios = append(q.prios, 0)
		copy(q.prios[i+1:], q.prios[i:])
		q.prios[i] = prio
	}
	b.byName[name] = len(b.names)
	b.names = append(b.names, name)
	q.idx[name] = prio
	if group != "" {
		if b.groups == nil {
			b.groups = make(map[string][]string)
		}
		b.groups[group] = append(b.groups[group], name)
		q.groupOf[name] = group
	}
	if class.Known() {
		if q.classOf == nil {
			q.classOf = make(map[string]api.WorkloadClass)
			q.classCount = make(map[api.WorkloadClass]int)
		}
		q.classOf[name] = class
		q.classCount[class]++
	}
}

// Remove drops a pod from the queue (no-op when absent): its slot is
// tombstoned in O(1), the bucket compacted once tombstones outnumber live
// entries, and emptied tiers are deleted so the tier list only holds
// priorities actually queued.
func (q *pendingQueue) Remove(name string) {
	prio, ok := q.idx[name]
	if !ok {
		return
	}
	delete(q.idx, name)
	if c, ok := q.classOf[name]; ok {
		delete(q.classOf, name)
		if q.classCount[c]--; q.classCount[c] <= 0 {
			delete(q.classCount, c)
		}
	}
	b := q.buckets[prio]
	b.names[b.byName[name]] = ""
	delete(b.byName, name)
	b.dead++
	if g, gang := q.groupOf[name]; gang {
		delete(q.groupOf, name)
		members := b.groups[g]
		for i, m := range members {
			if m == name {
				b.groups[g] = append(members[:i], members[i+1:]...)
				break
			}
		}
		if len(b.groups[g]) == 0 {
			delete(b.groups, g)
		}
	}
	if len(b.byName) == 0 {
		delete(q.buckets, prio)
		i := sort.Search(len(q.prios), func(i int) bool { return q.prios[i] <= prio })
		q.prios = append(q.prios[:i], q.prios[i+1:]...)
		return
	}
	if b.dead <= len(b.names)/2 {
		return
	}
	live := b.names[:0]
	for _, n := range b.names {
		if n == "" {
			continue
		}
		b.byName[n] = len(live)
		live = append(live, n)
	}
	for i := len(live); i < len(b.names); i++ {
		b.names[i] = ""
	}
	b.names = live
	b.dead = 0
}

// Visit calls fn for every queued pod name in priority-then-FCFS order,
// with gang members coalesced: the first live member of a group
// encountered in a tier is immediately followed by its remaining live
// co-members in that tier (in their own FCFS order), so a windowed
// walk (VisitPendingN) sees whole gangs instead of a truncated prefix
// of one. Returning false stops the walk.
func (q *pendingQueue) Visit(fn func(name string) bool) {
	for _, prio := range q.prios {
		b := q.buckets[prio]
		if len(b.groups) == 0 {
			// No gang members in this tier: the historical walk.
			for _, name := range b.names {
				if name == "" {
					continue
				}
				if !fn(name) {
					return
				}
			}
			continue
		}
		if q.seen == nil {
			q.seen = make(map[string]bool)
		}
		stopped := false
		for _, name := range b.names {
			if name == "" {
				continue
			}
			g := q.groupOf[name]
			if g != "" {
				if q.seen[name] {
					continue
				}
				q.seen[name] = true
			}
			if !fn(name) {
				stopped = true
				break
			}
			if g == "" {
				continue
			}
			for _, m := range b.groups[g] {
				if q.seen[m] {
					continue
				}
				q.seen[m] = true
				if !fn(m) {
					stopped = true
					break
				}
			}
			if stopped {
				break
			}
		}
		clear(q.seen)
		if stopped {
			return
		}
	}
}

// Snapshot returns the queued names in priority-then-FCFS order.
func (q *pendingQueue) Snapshot() []string {
	out := make([]string, 0, len(q.idx))
	q.Visit(func(name string) bool {
		out = append(out, name)
		return true
	})
	return out
}

// pendingSet is the pending queue with a per-scheduler index: the global
// priority-then-FCFS order (the §IV queue, what Snapshot and
// PendingCount expose) plus one sub-queue per Spec.SchedulerName, so a
// scheduler fleet member visits only its own shard — O(own pods) under
// the server lock instead of every member scanning the whole queue every
// round. The per-scheduler view is exactly the global order filtered to
// that scheduler: pushes hit both structures in the same order.
type pendingSet struct {
	all     *pendingQueue
	bySched map[string]*pendingQueue
}

func newPendingSet() *pendingSet {
	return &pendingSet{
		all:     newPendingQueue(),
		bySched: make(map[string]*pendingQueue),
	}
}

// Len returns the number of queued pods across all schedulers.
func (ps *pendingSet) Len() int { return ps.all.Len() }

// Push appends a pod at the tail of its priority tier, globally and in
// its scheduler's sub-queue. Pods with no scheduler name live only in
// the global view — lookups for "" short-circuit to it. A non-empty
// group enables gang coalescing on Visit (see pendingQueue); a known
// class feeds the per-class depth accounting (ClassCounts).
func (ps *pendingSet) Push(name, sched string, prio int32, group string, class api.WorkloadClass) {
	ps.all.Push(name, prio, group, class)
	if sched == "" {
		return
	}
	q, ok := ps.bySched[sched]
	if !ok {
		q = newPendingQueue()
		ps.bySched[sched] = q
	}
	q.Push(name, prio, group, class)
}

// Remove drops a pod from both views (no-op when absent).
func (ps *pendingSet) Remove(name, sched string) {
	ps.all.Remove(name)
	if sched == "" {
		return
	}
	if q, ok := ps.bySched[sched]; ok {
		q.Remove(name)
		if q.Len() == 0 {
			delete(ps.bySched, sched)
		}
	}
}

// Visit walks the named scheduler's queued pods in priority-then-FCFS
// order (the empty name walks every pod); returning false stops.
func (ps *pendingSet) Visit(sched string, fn func(name string) bool) {
	if sched == "" {
		ps.all.Visit(fn)
		return
	}
	if q, ok := ps.bySched[sched]; ok {
		q.Visit(fn)
	}
}

// ClassCounts returns the named scheduler's queued pods per workload
// class (the empty name reports the global queue).
func (ps *pendingSet) ClassCounts(sched string) map[api.WorkloadClass]int {
	if sched == "" {
		return ps.all.ClassCounts(nil)
	}
	if q, ok := ps.bySched[sched]; ok {
		return q.ClassCounts(nil)
	}
	return map[api.WorkloadClass]int{}
}

// PriorityCounts returns the named scheduler's queued pods per priority
// tier (the empty name reports the global queue).
func (ps *pendingSet) PriorityCounts(sched string) map[int32]int {
	if sched == "" {
		return ps.all.PriorityCounts(nil)
	}
	if q, ok := ps.bySched[sched]; ok {
		return q.PriorityCounts(nil)
	}
	return map[int32]int{}
}

// SchedLen returns the named scheduler's queued pod count.
func (ps *pendingSet) SchedLen(sched string) int {
	if sched == "" {
		return ps.all.Len()
	}
	if q, ok := ps.bySched[sched]; ok {
		return q.Len()
	}
	return 0
}

// Snapshot returns all queued names in global priority-then-FCFS order.
func (ps *pendingSet) Snapshot() []string { return ps.all.Snapshot() }
