package apiserver

import (
	"sync"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/resource"
)

// numStripes is the number of lock stripes for each of the pod and node
// state maps — a power of two so the stripe index is a mask over the
// name hash. 64 stripes make two concurrent binds unlikely to collide
// on an unrelated stripe, while the stop-the-world sweep (snapshots,
// informer handshakes) stays a short, bounded lock ladder.
//
// Lock ordering (outer to inner) — every code path acquires along this
// ladder, never backwards, so the striped server cannot deadlock:
//
//	pod stripes (ascending index)
//	  → node stripes (ascending index)
//	    → pendingMu
//	      → eventLog.mu
//	        → broker mutex (via PublishTopic)
//
// A bind holds exactly one pod stripe and one node stripe; cross-shard
// operations (SnapshotNow, ListAndWatchBatch, resync) take every stripe
// in ascending order via lockWorld. VisitPending and PendingPods copy
// the queued names under pendingMu alone and release it before touching
// pod stripes — pendingMu is only ever acquired while holding stripes,
// never the reverse.
//
// The gang reservation tables' resMu (see Server) sits outside the
// ladder entirely: it is a strict leaf, locked and unlocked without
// ever acquiring another lock while held, so it may be taken from any
// rung — including while the world is held. Reads of a pod's
// reservation are stable under that pod's stripe because every
// reservation mutation for a pod happens while its stripe (or the
// world) is held.
const numStripes = 64

// podShard is one stripe of the pod map. Padded so neighbouring
// stripes' mutexes do not share a cache line (the whole point of
// striping is that unrelated binds do not contend).
type podShard struct {
	mu   sync.Mutex
	pods map[string]*api.Pod
	_    [48]byte
}

// nodeShard is one stripe of the node map plus the committed-request
// accounting for the nodes in it: a bind's admission check, committed
// bookkeeping and pod-binding commit all happen under one node stripe
// (and the pod's stripe) — never a global lock.
type nodeShard struct {
	mu    sync.Mutex
	nodes map[string]*api.Node
	// committed tracks, per node in this stripe, the summed resource
	// requests of its live bound pods — the authoritative request-based
	// accounting Bind admission validates against in O(requested
	// resources) instead of walking every pod. Maintained on bind,
	// terminal transition and preemption.
	committed map[string]resource.List
	_         [40]byte
}

// stripeFor hashes a name onto a stripe index (FNV-1a, masked).
func stripeFor(name string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	return h & (numStripes - 1)
}

// podShardFor returns the stripe owning the named pod.
func (s *Server) podShardFor(name string) *podShard {
	return &s.podShards[stripeFor(name)]
}

// nodeShardFor returns the stripe owning the named node.
func (s *Server) nodeShardFor(name string) *nodeShard {
	return &s.nodeShards[stripeFor(name)]
}

// lockWorld acquires every stripe in the fixed global order (pod
// stripes ascending, then node stripes ascending, then pendingMu) —
// the stop-the-world ladder cross-shard readers use. While the world is
// held no mutation is in flight, so every resource version allocated so
// far has been published and applied: the state read under lockWorld is
// exactly the prefix of the event log up to s.seq.
func (s *Server) lockWorld() {
	for i := range s.podShards {
		s.podShards[i].mu.Lock()
	}
	for i := range s.nodeShards {
		s.nodeShards[i].mu.Lock()
	}
	s.pendingMu.Lock()
}

// unlockWorld releases the world ladder in reverse order.
func (s *Server) unlockWorld() {
	s.pendingMu.Unlock()
	for i := len(s.nodeShards) - 1; i >= 0; i-- {
		s.nodeShards[i].mu.Unlock()
	}
	for i := len(s.podShards) - 1; i >= 0; i-- {
		s.podShards[i].mu.Unlock()
	}
}
