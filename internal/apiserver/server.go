// Package apiserver is the in-process equivalent of the Kubernetes API
// server: the source of truth for nodes and pods, the persistent queue of
// pending jobs (§IV, step Ì — FCFS, refined into priority tiers by
// api.PodSpec.Priority), and the notification hub that kubelets and
// schedulers subscribe to. Preempt returns a bound pod to the queue so
// higher-priority work can take its place.
//
// Bind is an admission-checked conditional commit (see Admission): with
// several optimistically concurrent schedulers sharing the cluster
// (§V-B), it re-validates against authoritative state that the pod still
// fits the target node and refuses stale placements with typed
// ErrConflict/ErrOutdated errors, so a losing scheduler retries instead
// of overcommitting a node.
//
// State is sharded, not globally locked: pods and nodes live in 64 lock
// stripes each (see stripe.go), and a bind's whole commit — admission
// check, committed-request accounting, pod-binding mutation, event
// publish — runs under exactly one pod stripe and one node stripe, so
// binds against different nodes proceed in parallel on different cores.
// A thin global layer keeps what must stay totally ordered: resource
// versions come from one atomic counter, and the watch broker re-orders
// racing publishes back into rev order (watch.Options.Sequenced), so
// the event log remains a single coherent history even though commits
// run concurrently. Cross-shard operations — snapshots, the informer
// handshake, resync — take every stripe in a fixed ascending order
// (lockWorld); with the world held no commit is in flight, which is
// exactly what makes a snapshot a consistent prefix of the event log.
//
// Watchers attach either with Subscribe (events only) or with the
// informer-style ListAndWatch, which atomically couples a consistent
// snapshot to the event stream: every event carries a monotonically
// increasing resource version, so a consumer building a cache from the
// snapshot discards anything already reflected in it and stays exactly
// consistent without quiescing the server.
//
// Event fan-out rides the internal/watch broker — versioned ring
// buffers with per-subscriber cursors — so a mutation's critical
// section performs an O(1) event append and never runs subscriber code.
// Events are split across two topic rings sharing the one rev space:
// pod events and node events. All-topic subscribers (caches, capacity
// watchers) see the merged stream in rev order, exactly as with a
// single ring; single-topic subscribers (kubelets, which discard node
// events) stop paying ring space and batch volume for event kinds they
// drop, and a pod-event burst cannot evict node events. In the default
// synchronous mode the publishing goroutine delivers inline
// (deterministic under the simulation clock, exactly like the
// historical callback list); WithAsyncWatch moves delivery onto
// per-subscriber pump goroutines with batching and snapshot resync for
// consumers that fall off a ring.
//
// The paper's components "interact with [Kubernetes] using its public API"
// (§V); this package provides that API for the simulated cluster.
package apiserver

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/watch"
)

// Errors returned by API operations.
var (
	// ErrAlreadyExists is returned when creating an object whose name is
	// taken.
	ErrAlreadyExists = errors.New("apiserver: object already exists")
	// ErrNotFound is returned for lookups of unknown objects.
	ErrNotFound = errors.New("apiserver: object not found")
	// ErrConflict is returned for state transitions that are not legal,
	// e.g. binding an already bound pod, or binding onto a node that is
	// cordoned or NotReady.
	ErrConflict = errors.New("apiserver: conflicting state transition")
	// ErrOutdated is returned when a bind fails capacity admission: the
	// cluster state the scheduler planned against no longer holds (a
	// concurrent scheduler won the race for the node's capacity). It is a
	// specialization of ErrConflict — errors.Is(err, ErrConflict) matches
	// too — so optimistic schedulers can treat both as "lost the race,
	// retry from a fresh view".
	ErrOutdated = fmt.Errorf("%w: scheduler view outdated", ErrConflict)
)

// Admission selects how much re-validation Bind performs against
// authoritative pod/node state before committing a binding. With several
// optimistically concurrent schedulers sharing one cluster (§V-B), each
// plans against its own — possibly stale — cache; the conditional bind is
// the transaction commit that decides the race instead of letting the
// loser silently overcommit a node.
type Admission int

const (
	// AdmitGuarded (the default) enforces the invariants that must hold
	// regardless of scheduling policy: the target node is known, Ready and
	// schedulable; SGX pods only land on SGX nodes; the per-node sum of
	// EPC page-item requests never exceeds the device count (§V-A: no EPC
	// over-commitment — the device plugin would fail the pod at admission
	// anyway, so the server turns that failure into a retryable conflict);
	// and each request fits the node's total allocatable. Memory/CPU
	// request *sums* are deliberately not enforced: usage-aware scheduling
	// (§V-B) overcommits requests by design, reclaiming headroom from
	// over-declaring jobs, and the server has no usage data to arbitrate
	// with.
	AdmitGuarded Admission = iota
	// AdmitStrict additionally enforces memory and CPU request-sum
	// admission (committed requests + pod requests <= allocatable). It is
	// the right mode for fleets of request-only schedulers — there the
	// request sum is exactly the invariant every scheduler believes it is
	// maintaining, so a stale cache can never overcommit a node.
	AdmitStrict
	// AdmitNone restores the historical unconditional bind. It exists for
	// tests that simulate buggy or byzantine schedulers to exercise the
	// kubelet's defense-in-depth admission.
	AdmitNone
)

// Watch topics: pod and node events land on separate broker rings that
// share one resource-version space (see internal/watch).
const (
	topicPods  = 0
	topicNodes = 1
	numTopics  = 2
)

// Option configures a Server.
type Option func(*Server)

// WithAdmission selects the bind admission mode (AdmitGuarded by
// default).
func WithAdmission(mode Admission) Option {
	return func(s *Server) { s.admission = mode }
}

// WithAsyncWatch selects asynchronous event delivery: watch events are
// appended to the broker ring inside the commit critical section (O(1))
// and fanned out to subscribers on per-subscriber pump goroutines, in
// batches. Mutating calls no longer wait for subscribers, so bind
// throughput scales with concurrent schedulers — at the price of
// consumers observing state with a small, bounded lag (and resyncing
// from a snapshot when they fall off the ring). The default synchronous
// mode delivers inline on the mutating goroutine and stays bit-for-bit
// deterministic under the simulation clock.
func WithAsyncWatch() Option {
	return func(s *Server) { s.watchOpts.Mode = watch.Async }
}

// WithWatchCapacity overrides the broker's per-topic ring capacity (the
// retained event window per resource type; watch.DefaultCapacity when
// unset). Tests use tiny rings to force the overflow/resync path.
func WithWatchCapacity(n int) Option {
	return func(s *Server) { s.watchOpts.Capacity = n }
}

// WithWatchBatch overrides the maximum events delivered to a subscriber
// callback in one batch (watch.DefaultMaxBatch when unset).
func WithWatchBatch(n int) Option {
	return func(s *Server) { s.watchOpts.MaxBatch = n }
}

// BindStats counts Bind outcomes, separating the rejection classes so a
// multi-scheduler experiment can report its conflict rate.
type BindStats struct {
	// Attempts counts all Bind calls; Bound the successful ones.
	Attempts int64
	Bound    int64
	// RejectedPodState counts binds refused over the pod's state: unknown
	// pod, already bound, or not Pending.
	RejectedPodState int64
	// RejectedNodeState counts binds refused because the node cannot
	// host the pod: unknown, NotReady or cordoned (the scheduler raced a
	// drain), lacking SGX capability for an SGX pod, or statically too
	// small for the pod's requests.
	RejectedNodeState int64
	// RejectedCapacity counts binds refused by capacity admission
	// (ErrOutdated): a concurrent scheduler won the node's headroom.
	RejectedCapacity int64
}

// bindCounters is the internal atomic representation of BindStats:
// stats reads never contend with the striped commit path, and
// commit-side increments are race-free without any shared lock.
type bindCounters struct {
	attempts          atomic.Int64
	bound             atomic.Int64
	rejectedPodState  atomic.Int64
	rejectedNodeState atomic.Int64
	rejectedCapacity  atomic.Int64
}

func (c *bindCounters) snapshot() BindStats {
	return BindStats{
		Attempts:          c.attempts.Load(),
		Bound:             c.bound.Load(),
		RejectedPodState:  c.rejectedPodState.Load(),
		RejectedNodeState: c.rejectedNodeState.Load(),
		RejectedCapacity:  c.rejectedCapacity.Load(),
	}
}

// WatchEventType enumerates notification kinds.
type WatchEventType int

// Watch event types.
const (
	// PodCreated fires when a pod enters the pending queue.
	PodCreated WatchEventType = iota + 1
	// PodBound fires when a scheduler binds a pod to a node; kubelets
	// react to it (§IV step Î: deployment towards the nodes).
	PodBound
	// PodUpdated fires on pod status changes.
	PodUpdated
	// NodeRegistered fires when a node joins the cluster.
	NodeRegistered
	// NodeUpdated fires on node status/allocatable changes.
	NodeUpdated
	// PodPermitHeld fires when a gang member takes a conditional
	// reservation (Reserve): capacity is committed on the node but the
	// pod is not bound. The event's pod copy carries the reserved node in
	// Spec.NodeName so caches can charge it, even though authoritative
	// state keeps the pod unbound until CommitGroup.
	PodPermitHeld
	// PodPermitReleased fires when a reservation is rolled back
	// (ReleaseGroup): the capacity returns and the pod re-enters the
	// pending queue.
	PodPermitReleased
)

// WatchEvent is delivered to subscribers on state changes. Pod/Node are
// deep copies and safe to retain. Rev is the server's resource version at
// the mutation: revisions increase by one per event, so a cache built from
// a ListAndWatch snapshot can discard events already reflected in it
// (Rev <= Snapshot.Rev) without racing concurrent mutations.
type WatchEvent struct {
	Type WatchEventType
	Rev  int64
	Pod  *api.Pod
	Node *api.Node
}

// topicOf returns the broker topic an event type lands on.
func topicOf(t WatchEventType) int {
	if t == NodeRegistered || t == NodeUpdated {
		return topicNodes
	}
	return topicPods
}

// Snapshot is a consistent point-in-time copy of the cluster state, as
// returned by ListAndWatch. Rev is the resource version of the last
// mutation included in it.
type Snapshot struct {
	Rev   int64
	Nodes []*api.Node // sorted by name
	Pods  []*api.Pod  // sorted by name
	// Pending holds the queued pod names in FCFS submission order,
	// across all schedulers.
	Pending []string
}

// Server is the in-memory API server. See the package comment and
// stripe.go for the sharded-state layout and lock ordering.
type Server struct {
	clk clock.Clock

	admission Admission
	watchOpts watch.Options

	// broker is the versioned event fan-out (see internal/watch): every
	// mutation appends its watch event to the owning topic ring while
	// still holding its state stripes — an O(1) operation that fixes the
	// event's place in the global order without ever running subscriber
	// code inside the commit critical section — and delivery happens
	// afterwards: inline via Flush in synchronous mode, on
	// per-subscriber pumps in async mode. The broker mutex is the
	// innermost lock; subscriber callbacks run with no server lock held.
	broker *watch.Broker[WatchEvent]

	// seq allocates resource versions — the only piece of commit state
	// that stays global, because the event log must remain one totally
	// ordered history. The broker's Sequenced mode tolerates racing
	// publishers, so allocation is a single atomic add, not a lock.
	seq     atomic.Int64
	nextUID atomic.Int64

	// podShards/nodeShards are the striped state maps (see stripe.go):
	// a bind touches exactly one stripe of each.
	podShards  [numStripes]podShard
	nodeShards [numStripes]nodeShard

	// pending is the submission queue (§IV), ordered priority-then-FCFS:
	// higher api.PodSpec.Priority tiers drain first, first-come
	// first-served within a tier, with a per-scheduler index so fleet
	// members visit only their own shard. Binds remove their pod in O(1)
	// amortized. Guarded by pendingMu, which is acquired while holding
	// state stripes but never the reverse (VisitPending copies names out
	// under pendingMu alone).
	pendingMu sync.Mutex
	pending   *pendingSet

	binds bindCounters
	gangs gangCounters

	// metrics is the optional registry instrumentation (WithTelemetry):
	// bind commit latency and per-class rejection counters on the commit
	// path, queue-depth and watch-lag gauges via pull-time collectors.
	// Nil when telemetry is off — every hot-path site is a nil check.
	metrics *srvMetrics

	// resMu guards the gang reservation tables (reservations, groupHolds,
	// groupBound). It is a leaf lock like eventLog.mu: acquired and
	// released without ever taking another lock while held, so it may be
	// taken from any point of the ladder. All mutations additionally
	// happen while holding the affected pod's stripe (or the world), which
	// is what makes a read under a pod stripe stable.
	resMu sync.Mutex
	// reservations maps a pod holding a permit to its reservation;
	// groupHolds indexes the same reservations by gang.
	reservations map[string]reservation
	groupHolds   map[string]map[string]string // group → pod → node
	// groupBound indexes the live *bound* members of each gang, so
	// PreemptGroup can evict a whole gang without scanning every stripe.
	groupBound map[string]map[string]bool

	// log is the bounded human-readable event log (kubectl-get-events
	// analogue); it has its own mutex below the stripes in the ordering.
	log *eventLog
}

// reservation is one held permit: capacity for the pod is committed on
// node, pending the gang's CommitGroup or ReleaseGroup.
type reservation struct {
	node  string
	group string
}

// New creates an empty API server with guarded bind admission and
// synchronous watch delivery.
func New(clk clock.Clock, opts ...Option) *Server {
	s := &Server{
		clk:          clk,
		pending:      newPendingSet(),
		log:          newEventLog(maxEvents),
		reservations: make(map[string]reservation),
		groupHolds:   make(map[string]map[string]string),
		groupBound:   make(map[string]map[string]bool),
	}
	for _, o := range opts {
		o(s)
	}
	for i := range s.podShards {
		s.podShards[i].pods = make(map[string]*api.Pod)
	}
	for i := range s.nodeShards {
		s.nodeShards[i].nodes = make(map[string]*api.Node)
		s.nodeShards[i].committed = make(map[string]resource.List)
	}
	// Two topic rings (pods, nodes) over one rev space; Sequenced lets
	// stripe-parallel commits race to the broker and still produce a
	// rev-ordered log.
	s.watchOpts.Topics = numTopics
	s.watchOpts.Sequenced = true
	s.broker = watch.New[WatchEvent](s.watchOpts)
	return s
}

// Close shuts the watch broker down (async pumps exit). The server's
// state remains readable; further mutations stop emitting events.
func (s *Server) Close() {
	s.broker.Close()
}

// BindStats returns a copy of the bind outcome counters. Lock-free: the
// counters are atomics, so stats polling never slows the commit path.
func (s *Server) BindStats() BindStats {
	return s.binds.snapshot()
}

// Committed returns a copy of the summed resource requests of the named
// node's live bound pods — the request accounting Bind admission
// enforces.
func (s *Server) Committed(nodeName string) resource.List {
	sh := s.nodeShardFor(nodeName)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.committed[nodeName].Clone()
}

// Subscribe registers a per-event watch callback and returns an
// unsubscribe function. In synchronous mode callbacks run on the
// goroutine performing the mutation, after the state stripes are
// released, and must not synchronously mutate the server (use
// clock.AfterFunc for follow-ups); in async mode they run on a pump
// goroutine. Events arrive in resource-version order with no
// duplicates. A subscriber that falls off the broker ring in async mode
// has the missed interval counted in its watch stats and continues from
// the oldest retained event — consumers that must never miss events
// should use SubscribeBatch or ListAndWatchBatch with a resync handler.
func (s *Server) Subscribe(fn func(WatchEvent)) (unsubscribe func()) {
	return s.SubscribeBatch(func(evs []WatchEvent) {
		for _, ev := range evs {
			fn(ev)
		}
	}, nil)
}

// SubscribeBatch registers a batched watch callback for the merged
// pod+node stream: the broker hands it consecutive events as one slice
// (reused between calls — do not retain it). resync, when non-nil, is
// invoked if the subscriber falls off the broker ring: it receives a
// fresh consistent snapshot to rebuild from, and delivery resumes with
// the first event after that snapshot's Rev.
func (s *Server) SubscribeBatch(fn func([]WatchEvent), resync func(Snapshot)) (unsubscribe func()) {
	return s.subscribeTopics(watch.AllTopics, fn, resync)
}

// SubscribePodEvents is SubscribeBatch restricted to the pod-event ring
// (PodCreated/PodBound/PodUpdated): the subscription kubelets use, so
// they stop paying batch volume for node events they discard.
func (s *Server) SubscribePodEvents(fn func([]WatchEvent), resync func(Snapshot)) (unsubscribe func()) {
	return s.subscribeTopics(watch.TopicsOf(topicPods), fn, resync)
}

// SubscribeNodeEvents is SubscribeBatch restricted to the node-event
// ring (NodeRegistered/NodeUpdated) — for consumers tracking cluster
// shape only.
func (s *Server) SubscribeNodeEvents(fn func([]WatchEvent), resync func(Snapshot)) (unsubscribe func()) {
	return s.subscribeTopics(watch.TopicsOf(topicNodes), fn, resync)
}

// subscribeTopics registers with the broker at the current resource
// version, under the world ladder: with every stripe held no commit is
// in flight, so every rev <= the registered cursor has already been
// published — the subscriber provably misses nothing after its cursor.
func (s *Server) subscribeTopics(topics watch.TopicSet, fn func([]WatchEvent), resync func(Snapshot)) (unsubscribe func()) {
	var rs func() int64
	if resync != nil {
		rs = func() int64 {
			snap := s.SnapshotNow()
			resync(snap)
			return snap.Rev
		}
	}
	s.lockWorld()
	defer s.unlockWorld()
	return s.broker.SubscribeTopics(s.seq.Load(), topics, fn, rs)
}

// ListAndWatch atomically snapshots the cluster state and registers fn
// for every subsequent event — the informer handshake: a cache can build
// itself from the snapshot and stay current by applying events, without
// racing mutations that happen in between. Events whose Rev is at or
// below Snapshot.Rev are already reflected in the snapshot and must be
// discarded by the consumer. The callback contract is the same as
// Subscribe's.
func (s *Server) ListAndWatch(fn func(WatchEvent)) (Snapshot, func()) {
	return s.ListAndWatchBatch(func(evs []WatchEvent) {
		for _, ev := range evs {
			fn(ev)
		}
	}, nil)
}

// ListAndWatchBatch is ListAndWatch with batched delivery and an
// optional ring-overflow resync handler (see SubscribeBatch). The
// snapshot and the subscription are coupled under the world ladder, so
// the first delivered event is exactly the first mutation after the
// snapshot.
func (s *Server) ListAndWatchBatch(fn func([]WatchEvent), resync func(Snapshot)) (Snapshot, func()) {
	var rs func() int64
	if resync != nil {
		rs = func() int64 {
			snap := s.SnapshotNow()
			resync(snap)
			return snap.Rev
		}
	}
	s.lockWorld()
	defer s.unlockWorld()
	snap := s.snapshotWorldLocked()
	return snap, s.broker.SubscribeTopics(snap.Rev, watch.AllTopics, fn, rs)
}

// SnapshotNow returns a consistent point-in-time snapshot of the
// cluster state — what a resyncing watcher rebuilds from. It takes
// every stripe in the fixed order, so concurrent binds are either fully
// included (state and event) or not at all: the snapshot is always a
// consistent prefix of the event log.
func (s *Server) SnapshotNow() Snapshot {
	s.lockWorld()
	defer s.unlockWorld()
	return s.snapshotWorldLocked()
}

// snapshotWorldLocked builds a Snapshot. Caller must hold the world
// ladder (lockWorld).
func (s *Server) snapshotWorldLocked() Snapshot {
	snap := Snapshot{Rev: s.seq.Load()}
	var nodes []*api.Node
	for i := range s.nodeShards {
		for _, n := range s.nodeShards[i].nodes {
			nodes = append(nodes, n.Clone())
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	snap.Nodes = nodes
	var pods []*api.Pod
	for i := range s.podShards {
		for _, p := range s.podShards[i].pods {
			pods = append(pods, p.Clone())
		}
	}
	sort.Slice(pods, func(i, j int) bool { return pods[i].Name < pods[j].Name })
	snap.Pods = pods
	snap.Pending = s.pending.Snapshot()
	return snap
}

// WatchStats returns the broker's fan-out accounting: events published
// and evicted (total and per topic ring), plus per-subscriber delivery,
// batching, lag and resync counters.
func (s *Server) WatchStats() watch.Stats {
	return s.broker.Stats()
}

// QuiesceWatch blocks until every watcher has consumed every event
// published so far — the barrier async-mode tests and benchmarks use
// before asserting on subscriber state. Synchronous mode is already
// quiescent whenever no mutation is in flight.
func (s *Server) QuiesceWatch() {
	s.broker.Quiesce()
}

// emit allocates the next resource version and appends the event to its
// topic ring. Caller must hold the state stripes the mutation touched —
// publishing before the stripes are released is what keeps snapshots
// consistent prefixes (lockWorld cannot observe an applied mutation
// whose event is still unpublished). Racing emits from other stripes
// may reach the broker out of rev order; its Sequenced mode restores
// the order. Callers follow up with s.broker.Flush() after releasing
// the stripes (a no-op in async mode, inline delivery in sync mode).
func (s *Server) emit(ev WatchEvent) {
	ev.Rev = s.seq.Add(1)
	s.broker.PublishTopic(topicOf(ev.Type), ev.Rev, ev)
}

// recordEvent appends to the bounded human-readable event log.
func (s *Server) recordEvent(object, reason, message string) {
	s.log.append(s.clk.Now(), object, reason, message)
}

// Events returns a copy of the retained event log, oldest first.
func (s *Server) Events() []api.Event {
	return s.log.snapshot()
}

// RegisterNode adds a node to the cluster.
func (s *Server) RegisterNode(n *api.Node) error {
	sh := s.nodeShardFor(n.Name)
	sh.mu.Lock()
	if _, ok := sh.nodes[n.Name]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: node %s", ErrAlreadyExists, n.Name)
	}
	stored := n.Clone()
	sh.nodes[n.Name] = stored
	s.recordEvent("node/"+n.Name, "Registered", stored.Allocatable.String())
	s.emit(WatchEvent{Type: NodeRegistered, Node: stored.Clone()})
	sh.mu.Unlock()
	s.broker.Flush()
	return nil
}

// UpdateNode replaces a node's stored state (e.g. when the device plugin
// extends its allocatable resources, §V-A).
func (s *Server) UpdateNode(n *api.Node) error {
	sh := s.nodeShardFor(n.Name)
	sh.mu.Lock()
	if _, ok := sh.nodes[n.Name]; !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: node %s", ErrNotFound, n.Name)
	}
	stored := n.Clone()
	sh.nodes[n.Name] = stored
	s.recordEvent("node/"+n.Name, "Updated", stored.Allocatable.String())
	s.emit(WatchEvent{Type: NodeUpdated, Node: stored.Clone()})
	sh.mu.Unlock()
	s.broker.Flush()
	return nil
}

// GetNode returns a copy of the named node.
func (s *Server) GetNode(name string) (*api.Node, error) {
	sh := s.nodeShardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, ok := sh.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: node %s", ErrNotFound, name)
	}
	return n.Clone(), nil
}

// ListNodes returns copies of all nodes, sorted by name for deterministic
// iteration (the binpack policy relies on a consistent node order, §IV).
// Stripes are visited one at a time — ListNodes does not stop the world.
func (s *Server) ListNodes() []*api.Node {
	var out []*api.Node
	for i := range s.nodeShards {
		sh := &s.nodeShards[i]
		sh.mu.Lock()
		for _, n := range sh.nodes {
			out = append(out, n.Clone())
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreatePod submits a pod: it is stamped, assigned a UID if absent, marked
// Pending and appended to the FCFS queue (§IV step Ë).
func (s *Server) CreatePod(p *api.Pod) error {
	sh := s.podShardFor(p.Name)
	sh.mu.Lock()
	if _, ok := sh.pods[p.Name]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: pod %s", ErrAlreadyExists, p.Name)
	}
	stored := p.Clone()
	if stored.UID == "" {
		stored.UID = fmt.Sprintf("uid-%06d", s.nextUID.Add(1))
	}
	stored.Status.Phase = api.PodPending
	stored.Status.SubmittedAt = s.clk.Now()
	sh.pods[stored.Name] = stored
	s.pendingMu.Lock()
	s.pending.Push(stored.Name, stored.Spec.SchedulerName, stored.Spec.Priority, stored.Spec.PodGroup, stored.Spec.WorkloadClass())
	s.pendingMu.Unlock()
	s.recordEvent("pod/"+stored.Name, "Created", "queued as pending")
	s.emit(WatchEvent{Type: PodCreated, Pod: stored.Clone()})
	sh.mu.Unlock()
	s.broker.Flush()
	return nil
}

// GetPod returns a copy of the named pod.
func (s *Server) GetPod(name string) (*api.Pod, error) {
	sh := s.podShardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.pods[name]
	if !ok {
		return nil, fmt.Errorf("%w: pod %s", ErrNotFound, name)
	}
	return p.Clone(), nil
}

// ListPods returns copies of all pods matching the filter (nil matches
// everything), sorted by name. The filter runs under a stripe lock and
// must not call back into the server.
func (s *Server) ListPods(filter func(*api.Pod) bool) []*api.Pod {
	var out []*api.Pod
	for i := range s.podShards {
		sh := &s.podShards[i]
		sh.mu.Lock()
		for _, p := range sh.pods {
			if filter == nil || filter(p) {
				out = append(out, p.Clone())
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// pendingNamesPool recycles the name buffers VisitPending/PendingPods
// copy the queue into (the copy is what keeps pendingMu from ever being
// held across a stripe acquisition — see stripe.go's lock order).
var pendingNamesPool = sync.Pool{New: func() any { return new([]string) }}

// copyPendingNames snapshots the queued names for a scheduler under
// pendingMu alone, stopping after limit names when limit > 0 — the
// queue's ordered visit makes the truncated copy exactly the queue head,
// so a deep backlog is never copied wholesale just to walk its prefix.
// Callers must return the buffer to pendingNamesPool.
func (s *Server) copyPendingNames(schedulerName string, limit int) *[]string {
	bufp := pendingNamesPool.Get().(*[]string)
	names := (*bufp)[:0]
	s.pendingMu.Lock()
	s.pending.Visit(schedulerName, func(name string) bool {
		names = append(names, name)
		return limit <= 0 || len(names) < limit
	})
	s.pendingMu.Unlock()
	*bufp = names
	return bufp
}

// PendingPods returns the queued pods for the given scheduler in
// priority-then-FCFS order (§IV: "the orchestrator keeps a persistent
// queue of pending jobs ... applying a first-come first-served priority";
// api.PodSpec.Priority refines it into tiers). An empty schedulerName
// matches every pod. Pods that left the queue between the name snapshot
// and the stripe visit (a concurrent bind won) are skipped.
func (s *Server) PendingPods(schedulerName string) []*api.Pod {
	bufp := s.copyPendingNames(schedulerName, 0)
	out := make([]*api.Pod, 0, len(*bufp))
	for _, name := range *bufp {
		sh := s.podShardFor(name)
		sh.mu.Lock()
		if p, ok := sh.pods[name]; ok && p.Status.Phase == api.PodPending && p.Spec.NodeName == "" {
			out = append(out, p.Clone())
		}
		sh.mu.Unlock()
	}
	pendingNamesPool.Put(bufp)
	return out
}

// VisitPods calls fn for every live pod under its stripe lock, without
// copying. It is the allocation-free companion of ListPods for hot paths
// (the scheduler visits every active pod once per pass). fn must treat
// the pod as read-only, must not retain it past its return, and must not
// call back into the server; returning false stops the walk. Iteration
// order is unspecified.
func (s *Server) VisitPods(fn func(*api.Pod) bool) {
	for i := range s.podShards {
		sh := &s.podShards[i]
		sh.mu.Lock()
		for _, p := range sh.pods {
			if !fn(p) {
				sh.mu.Unlock()
				return
			}
		}
		sh.mu.Unlock()
	}
}

// VisitPending calls fn for the given scheduler's queued pods in
// priority-then-FCFS order, each under its stripe lock, without copying.
// The same read-only, no-retain, no-reentrancy contract as VisitPods
// applies; an empty schedulerName matches every pod. Returning false
// stops the walk. The queue order is snapshotted under pendingMu and the
// pods then visited stripe by stripe, so pods bound concurrently with
// the walk are skipped rather than handed to fn stale.
func (s *Server) VisitPending(schedulerName string, fn func(*api.Pod) bool) {
	s.VisitPendingN(schedulerName, 0, fn)
}

// VisitPendingN is VisitPending windowed to the queue's first limit pods
// (limit <= 0 visits all). The name snapshot itself is truncated, so the
// cost of a pass over a 100k-deep backlog is O(limit), not O(queue) —
// the MaxPendingPerPass window schedulers use at million-pod scale.
func (s *Server) VisitPendingN(schedulerName string, limit int, fn func(*api.Pod) bool) {
	bufp := s.copyPendingNames(schedulerName, limit)
	for _, name := range *bufp {
		sh := s.podShardFor(name)
		sh.mu.Lock()
		p, ok := sh.pods[name]
		stop := false
		if ok && p.Status.Phase == api.PodPending && p.Spec.NodeName == "" {
			stop = !fn(p)
		}
		sh.mu.Unlock()
		if stop {
			break
		}
	}
	pendingNamesPool.Put(bufp)
}

// PendingCount returns the number of queued pods across all schedulers.
func (s *Server) PendingCount() int {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	return s.pending.Len()
}

// PendingCountByClass returns the named scheduler's queue depth per
// workload class (the empty name reports the global queue): one entry
// per known class with queued pods, plus api.ClassUnspecified for the
// unclassified remainder. The per-class counters are maintained on
// push/remove, so this is O(classes) under the pending lock — cheap
// enough for per-pass backlog monitoring.
func (s *Server) PendingCountByClass(schedulerName string) map[api.WorkloadClass]int {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	return s.pending.ClassCounts(schedulerName)
}

// PendingCountByPriority returns the named scheduler's queue depth per
// priority tier (the empty name reports the global queue). O(tiers)
// under the pending lock; the telemetry collector publishes it as the
// apiserver_pending_depth_priority gauge family.
func (s *Server) PendingCountByPriority(schedulerName string) map[int32]int {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	return s.pending.PriorityCounts(schedulerName)
}

// Bind assigns a pending pod to a node (§IV step Í: "the scheduler
// communicates the computed job-node assignments to the orchestrator").
// It is a *conditional* bind: under the pod's and node's stripe locks it
// re-validates, against authoritative pod and node state, that the pod
// still fits the target node (see Admission). An optimistic scheduler
// that planned against a stale cache loses the race with a typed
// ErrConflict / ErrOutdated — the pod stays queued and reschedules from
// a fresh view — instead of silently overcommitting the node. On success
// the pod leaves the pending queue; kubelets learn about it via
// PodBound.
//
// The whole commit — admission, committed accounting, pod mutation,
// event publish — happens under exactly one pod stripe and one node
// stripe (acquired in that order), so binds against different nodes run
// in parallel; only binds racing for the same node serialize.
func (s *Server) Bind(podName, nodeName string) error {
	if s.metrics == nil {
		return s.bindCommit(podName, nodeName)
	}
	t0 := time.Now()
	err := s.bindCommit(podName, nodeName)
	s.metrics.bindLatency.ObserveDuration(time.Since(t0))
	return err
}

// bindCommit is the Bind transaction itself; Bind wraps it with the
// commit-latency observation when telemetry is attached.
func (s *Server) bindCommit(podName, nodeName string) error {
	s.binds.attempts.Add(1)
	psh := s.podShardFor(podName)
	psh.mu.Lock()
	p, ok := psh.pods[podName]
	if !ok {
		s.binds.rejectedPodState.Add(1)
		s.metrics.rejectedUnknownPod()
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s", ErrNotFound, podName)
	}
	nsh := s.nodeShardFor(nodeName)
	nsh.mu.Lock()
	n, ok := nsh.nodes[nodeName]
	if !ok {
		s.binds.rejectedNodeState.Add(1)
		s.metrics.rejected(p.Spec.WorkloadClass())
		s.rejectBind(podName, "node "+nodeName+" unknown")
		nsh.mu.Unlock()
		psh.mu.Unlock()
		return fmt.Errorf("%w: node %s", ErrNotFound, nodeName)
	}
	if p.Spec.NodeName != "" {
		s.binds.rejectedPodState.Add(1)
		s.metrics.rejected(p.Spec.WorkloadClass())
		nsh.mu.Unlock()
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s already bound to %s", ErrConflict, podName, p.Spec.NodeName)
	}
	if p.Status.Phase != api.PodPending {
		s.binds.rejectedPodState.Add(1)
		s.metrics.rejected(p.Spec.WorkloadClass())
		nsh.mu.Unlock()
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s in phase %s", ErrConflict, podName, p.Status.Phase)
	}
	if node, held := s.reservedNode(podName); held {
		s.binds.rejectedPodState.Add(1)
		s.metrics.rejected(p.Spec.WorkloadClass())
		nsh.mu.Unlock()
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s holds a gang permit on %s (use CommitGroup)",
			ErrConflict, podName, node)
	}
	req := p.TotalRequests()
	if err := s.admitBind(p, n, nsh.committed[nodeName], req); err != nil {
		if errors.Is(err, ErrOutdated) {
			s.binds.rejectedCapacity.Add(1)
		} else {
			s.binds.rejectedNodeState.Add(1)
		}
		s.metrics.rejected(p.Spec.WorkloadClass())
		s.rejectBind(podName, err.Error())
		nsh.mu.Unlock()
		psh.mu.Unlock()
		return err
	}
	p.Spec.NodeName = nodeName
	p.Status.ScheduledAt = s.clk.Now()
	commit(nsh, nodeName, req, +1)
	s.binds.bound.Add(1)
	s.removePending(p)
	if p.Spec.InGang() {
		s.addGroupBound(p.Spec.PodGroup, p.Name)
	}
	s.recordEvent("pod/"+podName, "Bound", "assigned to node "+nodeName)
	s.emit(WatchEvent{Type: PodBound, Pod: p.Clone()})
	nsh.mu.Unlock()
	psh.mu.Unlock()
	s.broker.Flush()
	return nil
}

// admitBind is the conditional-bind capacity check. Caller must hold the
// node's stripe lock and pass that stripe's committed list for the node.
// Node-state refusals are ErrConflict (the scheduler raced a cordon or
// drain); capacity refusals are ErrOutdated (a concurrent scheduler won
// the headroom).
func (s *Server) admitBind(p *api.Pod, n *api.Node, com resource.List, req resource.List) error {
	if s.admission == AdmitNone {
		return nil
	}
	if !n.Ready || n.Unschedulable {
		return fmt.Errorf("%w: node %s is not schedulable (ready=%v unschedulable=%v)",
			ErrConflict, n.Name, n.Ready, n.Unschedulable)
	}
	if pages := req.Get(resource.EPCPages); pages > 0 {
		alloc := n.Allocatable.Get(resource.EPCPages)
		if alloc <= 0 {
			return fmt.Errorf("%w: SGX pod %s on non-SGX node %s", ErrConflict, p.Name, n.Name)
		}
		// Strict in every mode: EPC page items are device resources the
		// plugin admits by request accounting — over-committing them is
		// never legal (§V-A).
		if com.Get(resource.EPCPages)+pages > alloc {
			return fmt.Errorf("%w: node %s EPC devices exhausted (%d committed + %d requested > %d)",
				ErrOutdated, n.Name, com.Get(resource.EPCPages), pages, alloc)
		}
	}
	for name, q := range req {
		if q <= 0 || name == resource.EPCPages {
			continue
		}
		alloc := n.Allocatable.Get(name)
		if q > alloc {
			return fmt.Errorf("%w: pod %s requests %s=%d beyond node %s allocatable %d",
				ErrConflict, p.Name, name, q, n.Name, alloc)
		}
		if s.admission == AdmitStrict && com.Get(name)+q > alloc {
			return fmt.Errorf("%w: node %s %s exhausted (%d committed + %d requested > %d)",
				ErrOutdated, n.Name, name, com.Get(name), q, alloc)
		}
	}
	return nil
}

// rejectBind records a refused bind in the event log so rejected
// optimistic transactions stay observable.
func (s *Server) rejectBind(podName, reason string) {
	s.recordEvent("pod/"+podName, "BindRejected", reason)
}

// commit moves a pod's summed requests into (sign=+1) or out of
// (sign=-1) its node's committed accounting. Caller must hold the node
// stripe's lock and pass the pod's TotalRequests sum.
func commit(sh *nodeShard, nodeName string, req resource.List, sign int64) {
	com, ok := sh.committed[nodeName]
	if !ok {
		com = make(resource.List, 3)
		sh.committed[nodeName] = com
	}
	for name, q := range req {
		com[name] += sign * q
	}
}

// removePending drops a pod from the pending queue (see pendingQueue for
// the amortized O(1) layout). Safe to call while holding stripe locks —
// pendingMu is below them in the lock order.
func (s *Server) removePending(p *api.Pod) {
	s.pendingMu.Lock()
	s.pending.Remove(p.Name, p.Spec.SchedulerName)
	s.pendingMu.Unlock()
}

// MarkRunning transitions a bound pod to Running, stamping StartedAt.
func (s *Server) MarkRunning(podName string) error {
	return s.transition(podName, api.PodRunning, "Started", "")
}

// MarkSucceeded transitions a pod to Succeeded, stamping FinishedAt.
func (s *Server) MarkSucceeded(podName string) error {
	return s.transition(podName, api.PodSucceeded, "Completed", "")
}

// MarkFailed transitions a pod to Failed with a reason, stamping
// FinishedAt. Pods killed by EPC limit enforcement land here (§VI-F:
// "these jobs are immediately killed after launch").
func (s *Server) MarkFailed(podName, reason string) error {
	return s.transition(podName, api.PodFailed, "Failed", reason)
}

func (s *Server) transition(podName string, phase api.PodPhase, event, reason string) error {
	psh := s.podShardFor(podName)
	psh.mu.Lock()
	p, ok := psh.pods[podName]
	if !ok {
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s", ErrNotFound, podName)
	}
	if p.IsTerminal() {
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s already terminal (%s)", ErrConflict, podName, p.Status.Phase)
	}
	now := s.clk.Now()
	switch phase {
	case api.PodRunning:
		if p.Spec.NodeName == "" {
			psh.mu.Unlock()
			return fmt.Errorf("%w: pod %s running without binding", ErrConflict, podName)
		}
		p.Status.StartedAt = now
	case api.PodSucceeded, api.PodFailed:
		p.Status.FinishedAt = now
		if p.Spec.NodeName != "" {
			// Release the node's committed accounting under its stripe —
			// pod stripe then node stripe, the same order Bind takes.
			nsh := s.nodeShardFor(p.Spec.NodeName)
			nsh.mu.Lock()
			commit(nsh, p.Spec.NodeName, p.TotalRequests(), -1)
			nsh.mu.Unlock()
		} else if r, held := s.dropReservation(podName); held {
			// A gang member evicted while holding a permit is unbound but
			// has capacity committed on its reserved node — release it or
			// the node leaks headroom forever.
			nsh := s.nodeShardFor(r.node)
			nsh.mu.Lock()
			commit(nsh, r.node, p.TotalRequests(), -1)
			nsh.mu.Unlock()
		}
		if p.Spec.InGang() {
			s.dropGroupBound(p.Spec.PodGroup, podName)
		}
		// A pod failed before start (e.g. admission denial) still leaves
		// the queue.
		s.removePending(p)
	}
	p.Status.Phase = phase
	p.Status.Reason = reason
	s.recordEvent("pod/"+podName, event, reason)
	s.emit(WatchEvent{Type: PodUpdated, Pod: p.Clone()})
	psh.mu.Unlock()
	s.broker.Flush()
	return nil
}

// Preempt returns a bound, non-terminal pod to the pending queue: its
// binding is cleared and it re-enters its priority tier at the tail, to be
// scheduled again later. The kubelet holding the pod reacts to the update
// by killing the workload and releasing its resources — this is the §IV
// eviction path priority scheduling uses to make room for more important
// pods. Scheduling timestamps are reset so waiting/turnaround metrics
// describe the eventual successful run.
func (s *Server) Preempt(podName, reason string) error {
	if reason == "" {
		reason = "Preempted"
	} else {
		reason = "Preempted: " + reason
	}
	psh := s.podShardFor(podName)
	psh.mu.Lock()
	p, ok := psh.pods[podName]
	if !ok {
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s", ErrNotFound, podName)
	}
	if p.IsTerminal() {
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s already terminal (%s)", ErrConflict, podName, p.Status.Phase)
	}
	if p.Spec.NodeName == "" {
		psh.mu.Unlock()
		return fmt.Errorf("%w: pod %s is not bound", ErrConflict, podName)
	}
	// Evict→requeue crosses the pod's stripe and the node's stripe, in
	// the same pod→node order Bind uses.
	nsh := s.nodeShardFor(p.Spec.NodeName)
	nsh.mu.Lock()
	commit(nsh, p.Spec.NodeName, p.TotalRequests(), -1)
	nsh.mu.Unlock()
	p.Spec.NodeName = ""
	p.Status.Phase = api.PodPending
	p.Status.Reason = reason
	p.Status.ScheduledAt = time.Time{}
	p.Status.StartedAt = time.Time{}
	if p.Spec.InGang() {
		s.dropGroupBound(p.Spec.PodGroup, podName)
	}
	s.pendingMu.Lock()
	s.pending.Push(podName, p.Spec.SchedulerName, p.Spec.Priority, p.Spec.PodGroup, p.Spec.WorkloadClass())
	s.pendingMu.Unlock()
	s.recordEvent("pod/"+podName, "Preempted", reason)
	s.emit(WatchEvent{Type: PodUpdated, Pod: p.Clone()})
	psh.mu.Unlock()
	s.broker.Flush()
	return nil
}

// Evict forcibly terminates a pod (Failed with an eviction reason),
// whether it is still queued or already running. Kubelets react to the
// update by killing the workload and releasing its resources.
func (s *Server) Evict(podName, reason string) error {
	if reason == "" {
		reason = "Evicted"
	} else {
		reason = "Evicted: " + reason
	}
	return s.transition(podName, api.PodFailed, "Evicted", reason)
}

// AllTerminal reports whether every pod has reached a terminal phase —
// the completion condition for trace replays.
func (s *Server) AllTerminal() bool {
	for i := range s.podShards {
		sh := &s.podShards[i]
		sh.mu.Lock()
		for _, p := range sh.pods {
			if !p.IsTerminal() {
				sh.mu.Unlock()
				return false
			}
		}
		sh.mu.Unlock()
	}
	return true
}
