// Package apiserver is the in-process equivalent of the Kubernetes API
// server: the source of truth for nodes and pods, the persistent queue of
// pending jobs (§IV, step Ì — FCFS, refined into priority tiers by
// api.PodSpec.Priority), and the notification hub that kubelets and
// schedulers subscribe to. Preempt returns a bound pod to the queue so
// higher-priority work can take its place.
//
// Bind is an admission-checked conditional commit (see Admission): with
// several optimistically concurrent schedulers sharing the cluster
// (§V-B), it re-validates under the server lock that the pod still fits
// the target node and refuses stale placements with typed
// ErrConflict/ErrOutdated errors, so a losing scheduler retries instead
// of overcommitting a node.
//
// Watchers attach either with Subscribe (events only) or with the
// informer-style ListAndWatch, which atomically couples a consistent
// snapshot to the event stream: every event carries a monotonically
// increasing resource version, so a consumer building a cache from the
// snapshot discards anything already reflected in it and stays exactly
// consistent without quiescing the server.
//
// Event fan-out rides the internal/watch broker — a versioned ring
// buffer with per-subscriber cursors — so a mutation's critical section
// performs an O(1) event append and never runs subscriber code. In the
// default synchronous mode the publishing goroutine then delivers
// inline (deterministic under the simulation clock, exactly like the
// historical callback list); WithAsyncWatch moves delivery onto
// per-subscriber pump goroutines with batching and snapshot resync for
// consumers that fall off the ring, so concurrent schedulers' bind
// commits stop serializing behind the fan-out.
//
// The paper's components "interact with [Kubernetes] using its public API"
// (§V); this package provides that API for the simulated cluster.
package apiserver

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/watch"
)

// Errors returned by API operations.
var (
	// ErrAlreadyExists is returned when creating an object whose name is
	// taken.
	ErrAlreadyExists = errors.New("apiserver: object already exists")
	// ErrNotFound is returned for lookups of unknown objects.
	ErrNotFound = errors.New("apiserver: object not found")
	// ErrConflict is returned for state transitions that are not legal,
	// e.g. binding an already bound pod, or binding onto a node that is
	// cordoned or NotReady.
	ErrConflict = errors.New("apiserver: conflicting state transition")
	// ErrOutdated is returned when a bind fails capacity admission: the
	// cluster state the scheduler planned against no longer holds (a
	// concurrent scheduler won the race for the node's capacity). It is a
	// specialization of ErrConflict — errors.Is(err, ErrConflict) matches
	// too — so optimistic schedulers can treat both as "lost the race,
	// retry from a fresh view".
	ErrOutdated = fmt.Errorf("%w: scheduler view outdated", ErrConflict)
)

// Admission selects how much re-validation Bind performs against
// authoritative pod/node state before committing a binding. With several
// optimistically concurrent schedulers sharing one cluster (§V-B), each
// plans against its own — possibly stale — cache; the conditional bind is
// the transaction commit that decides the race instead of letting the
// loser silently overcommit a node.
type Admission int

const (
	// AdmitGuarded (the default) enforces the invariants that must hold
	// regardless of scheduling policy: the target node is known, Ready and
	// schedulable; SGX pods only land on SGX nodes; the per-node sum of
	// EPC page-item requests never exceeds the device count (§V-A: no EPC
	// over-commitment — the device plugin would fail the pod at admission
	// anyway, so the server turns that failure into a retryable conflict);
	// and each request fits the node's total allocatable. Memory/CPU
	// request *sums* are deliberately not enforced: usage-aware scheduling
	// (§V-B) overcommits requests by design, reclaiming headroom from
	// over-declaring jobs, and the server has no usage data to arbitrate
	// with.
	AdmitGuarded Admission = iota
	// AdmitStrict additionally enforces memory and CPU request-sum
	// admission (committed requests + pod requests <= allocatable). It is
	// the right mode for fleets of request-only schedulers — there the
	// request sum is exactly the invariant every scheduler believes it is
	// maintaining, so a stale cache can never overcommit a node.
	AdmitStrict
	// AdmitNone restores the historical unconditional bind. It exists for
	// tests that simulate buggy or byzantine schedulers to exercise the
	// kubelet's defense-in-depth admission.
	AdmitNone
)

// Option configures a Server.
type Option func(*Server)

// WithAdmission selects the bind admission mode (AdmitGuarded by
// default).
func WithAdmission(mode Admission) Option {
	return func(s *Server) { s.admission = mode }
}

// WithAsyncWatch selects asynchronous event delivery: watch events are
// appended to the broker ring inside the commit critical section (O(1))
// and fanned out to subscribers on per-subscriber pump goroutines, in
// batches. Mutating calls no longer wait for subscribers, so bind
// throughput scales with concurrent schedulers — at the price of
// consumers observing state with a small, bounded lag (and resyncing
// from a snapshot when they fall off the ring). The default synchronous
// mode delivers inline on the mutating goroutine and stays bit-for-bit
// deterministic under the simulation clock.
func WithAsyncWatch() Option {
	return func(s *Server) { s.watchOpts.Mode = watch.Async }
}

// WithWatchCapacity overrides the broker ring capacity (the retained
// event window; watch.DefaultCapacity when unset). Tests use tiny rings
// to force the overflow/resync path.
func WithWatchCapacity(n int) Option {
	return func(s *Server) { s.watchOpts.Capacity = n }
}

// WithWatchBatch overrides the maximum events delivered to a subscriber
// callback in one batch (watch.DefaultMaxBatch when unset).
func WithWatchBatch(n int) Option {
	return func(s *Server) { s.watchOpts.MaxBatch = n }
}

// BindStats counts Bind outcomes, separating the rejection classes so a
// multi-scheduler experiment can report its conflict rate.
type BindStats struct {
	// Attempts counts all Bind calls; Bound the successful ones.
	Attempts int64
	Bound    int64
	// RejectedPodState counts binds refused over the pod's state: unknown
	// pod, already bound, or not Pending.
	RejectedPodState int64
	// RejectedNodeState counts binds refused because the node cannot
	// host the pod: unknown, NotReady or cordoned (the scheduler raced a
	// drain), lacking SGX capability for an SGX pod, or statically too
	// small for the pod's requests.
	RejectedNodeState int64
	// RejectedCapacity counts binds refused by capacity admission
	// (ErrOutdated): a concurrent scheduler won the node's headroom.
	RejectedCapacity int64
}

// WatchEventType enumerates notification kinds.
type WatchEventType int

// Watch event types.
const (
	// PodCreated fires when a pod enters the pending queue.
	PodCreated WatchEventType = iota + 1
	// PodBound fires when a scheduler binds a pod to a node; kubelets
	// react to it (§IV step Î: deployment towards the nodes).
	PodBound
	// PodUpdated fires on pod status changes.
	PodUpdated
	// NodeRegistered fires when a node joins the cluster.
	NodeRegistered
	// NodeUpdated fires on node status/allocatable changes.
	NodeUpdated
)

// WatchEvent is delivered to subscribers on state changes. Pod/Node are
// deep copies and safe to retain. Rev is the server's resource version at
// the mutation: revisions increase by one per event, so a cache built from
// a ListAndWatch snapshot can discard events already reflected in it
// (Rev <= Snapshot.Rev) without racing concurrent mutations.
type WatchEvent struct {
	Type WatchEventType
	Rev  int64
	Pod  *api.Pod
	Node *api.Node
}

// Snapshot is a consistent point-in-time copy of the cluster state, as
// returned by ListAndWatch. Rev is the resource version of the last
// mutation included in it.
type Snapshot struct {
	Rev   int64
	Nodes []*api.Node // sorted by name
	Pods  []*api.Pod  // sorted by name
	// Pending holds the queued pod names in FCFS submission order,
	// across all schedulers.
	Pending []string
}

// maxEvents bounds the retained event log.
const maxEvents = 16384

// Server is the in-memory API server.
type Server struct {
	clk clock.Clock

	admission Admission
	watchOpts watch.Options

	// broker is the versioned event fan-out (see internal/watch): every
	// mutation appends its watch event to the broker ring while holding
	// s.mu — an O(1) operation that fixes the event order without ever
	// running subscriber code inside the commit critical section — and
	// delivery happens afterwards: inline via Flush in synchronous mode,
	// on per-subscriber pumps in async mode. Lock order is s.mu before
	// the broker mutex; subscriber callbacks run with neither held.
	broker *watch.Broker[WatchEvent]

	mu      sync.Mutex
	nodes   map[string]*api.Node
	pods    map[string]*api.Pod
	nextUID int64
	rev     int64 // resource version, incremented per watch event

	// committed tracks, per node, the summed resource requests of its
	// live bound pods — the authoritative request-based accounting Bind
	// admission validates against in O(requested resources) instead of
	// walking every pod. Maintained on bind, terminal transition and
	// preemption.
	committed map[string]resource.List
	bindStats BindStats

	// pending is the submission queue (§IV), ordered priority-then-FCFS:
	// higher api.PodSpec.Priority tiers drain first, first-come
	// first-served within a tier, with a per-scheduler index so fleet
	// members visit only their own shard. Binds remove their pod in O(1)
	// amortized.
	pending *pendingSet

	events []api.Event
}

// New creates an empty API server with guarded bind admission and
// synchronous watch delivery.
func New(clk clock.Clock, opts ...Option) *Server {
	s := &Server{
		clk:       clk,
		nodes:     make(map[string]*api.Node),
		pods:      make(map[string]*api.Pod),
		pending:   newPendingSet(),
		committed: make(map[string]resource.List),
	}
	for _, o := range opts {
		o(s)
	}
	s.broker = watch.New[WatchEvent](s.watchOpts)
	return s
}

// Close shuts the watch broker down (async pumps exit). The server's
// state remains readable; further mutations stop emitting events.
func (s *Server) Close() {
	s.broker.Close()
}

// BindStats returns a copy of the bind outcome counters.
func (s *Server) BindStats() BindStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bindStats
}

// Committed returns a copy of the summed resource requests of the named
// node's live bound pods — the request accounting Bind admission
// enforces.
func (s *Server) Committed(nodeName string) resource.List {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed[nodeName].Clone()
}

// Subscribe registers a per-event watch callback and returns an
// unsubscribe function. In synchronous mode callbacks run on the
// goroutine performing the mutation, after the server state lock is
// released, and must not synchronously mutate the server (use
// clock.AfterFunc for follow-ups); in async mode they run on a pump
// goroutine. Events arrive in resource-version order with no
// duplicates. A subscriber that falls off the broker ring in async mode
// has the missed interval counted in its watch stats and continues from
// the oldest retained event — consumers that must never miss events
// should use SubscribeBatch or ListAndWatchBatch with a resync handler.
func (s *Server) Subscribe(fn func(WatchEvent)) (unsubscribe func()) {
	return s.SubscribeBatch(func(evs []WatchEvent) {
		for _, ev := range evs {
			fn(ev)
		}
	}, nil)
}

// SubscribeBatch registers a batched watch callback: the broker hands it
// consecutive events as one slice (reused between calls — do not retain
// it). resync, when non-nil, is invoked if the subscriber falls off the
// broker ring: it receives a fresh consistent snapshot to rebuild from,
// and delivery resumes with the first event after that snapshot's Rev.
func (s *Server) SubscribeBatch(fn func([]WatchEvent), resync func(Snapshot)) (unsubscribe func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.subscribeLocked(fn, resync)
}

// subscribeLocked registers with the broker at the current resource
// version. Caller must hold s.mu — that is what makes the cursor
// consistent with the state the subscriber has (or snapshots) at
// registration time.
func (s *Server) subscribeLocked(fn func([]WatchEvent), resync func(Snapshot)) (unsubscribe func()) {
	var rs func() int64
	if resync != nil {
		rs = func() int64 {
			snap := s.SnapshotNow()
			resync(snap)
			return snap.Rev
		}
	}
	return s.broker.Subscribe(s.rev, fn, rs)
}

// ListAndWatch atomically snapshots the cluster state and registers fn
// for every subsequent event — the informer handshake: a cache can build
// itself from the snapshot and stay current by applying events, without
// racing mutations that happen in between. Events whose Rev is at or
// below Snapshot.Rev are already reflected in the snapshot and must be
// discarded by the consumer. The callback contract is the same as
// Subscribe's.
func (s *Server) ListAndWatch(fn func(WatchEvent)) (Snapshot, func()) {
	return s.ListAndWatchBatch(func(evs []WatchEvent) {
		for _, ev := range evs {
			fn(ev)
		}
	}, nil)
}

// ListAndWatchBatch is ListAndWatch with batched delivery and an
// optional ring-overflow resync handler (see SubscribeBatch).
func (s *Server) ListAndWatchBatch(fn func([]WatchEvent), resync func(Snapshot)) (Snapshot, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked(), s.subscribeLocked(fn, resync)
}

// SnapshotNow returns a consistent point-in-time snapshot of the
// cluster state — what a resyncing watcher rebuilds from.
func (s *Server) SnapshotNow() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked builds a Snapshot. Caller must hold s.mu.
func (s *Server) snapshotLocked() Snapshot {
	snap := Snapshot{Rev: s.rev}
	names := make([]string, 0, len(s.nodes))
	for name := range s.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	snap.Nodes = make([]*api.Node, 0, len(names))
	for _, name := range names {
		snap.Nodes = append(snap.Nodes, s.nodes[name].Clone())
	}
	names = names[:0]
	for name := range s.pods {
		names = append(names, name)
	}
	sort.Strings(names)
	snap.Pods = make([]*api.Pod, 0, len(names))
	for _, name := range names {
		snap.Pods = append(snap.Pods, s.pods[name].Clone())
	}
	snap.Pending = s.pending.Snapshot()
	return snap
}

// WatchStats returns the broker's fan-out accounting: events published
// and evicted, plus per-subscriber delivery, batching, lag and resync
// counters.
func (s *Server) WatchStats() watch.Stats {
	return s.broker.Stats()
}

// QuiesceWatch blocks until every watcher has consumed every event
// published so far — the barrier async-mode tests and benchmarks use
// before asserting on subscriber state. Synchronous mode is already
// quiescent whenever no mutation is in flight.
func (s *Server) QuiesceWatch() {
	s.broker.Quiesce()
}

// newEvent stamps the next resource version on an event. Caller must hold
// s.mu.
func (s *Server) newEvent(t WatchEventType) WatchEvent {
	s.rev++
	return WatchEvent{Type: t, Rev: s.rev}
}

// publishLocked appends the event to the broker ring — O(1), the only
// fan-out work the commit critical section performs. Caller must hold
// s.mu and follow up with s.broker.Flush() after releasing it (a no-op
// in async mode, inline delivery in sync mode).
func (s *Server) publishLocked(ev WatchEvent) {
	s.broker.Publish(ev.Rev, ev)
}

// recordEvent appends to the capped event log. Caller must hold s.mu.
func (s *Server) recordEvent(object, reason, message string) {
	if len(s.events) >= maxEvents {
		copy(s.events, s.events[len(s.events)-maxEvents/2:])
		s.events = s.events[:maxEvents/2]
	}
	s.events = append(s.events, api.Event{
		Time:    s.clk.Now(),
		Object:  object,
		Reason:  reason,
		Message: message,
	})
}

// Events returns a copy of the retained event log.
func (s *Server) Events() []api.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.Event, len(s.events))
	copy(out, s.events)
	return out
}

// RegisterNode adds a node to the cluster.
func (s *Server) RegisterNode(n *api.Node) error {
	s.mu.Lock()
	if _, ok := s.nodes[n.Name]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: node %s", ErrAlreadyExists, n.Name)
	}
	stored := n.Clone()
	s.nodes[n.Name] = stored
	s.recordEvent("node/"+n.Name, "Registered", stored.Allocatable.String())
	ev := s.newEvent(NodeRegistered)
	ev.Node = stored.Clone()
	s.publishLocked(ev)
	s.mu.Unlock()
	s.broker.Flush()
	return nil
}

// UpdateNode replaces a node's stored state (e.g. when the device plugin
// extends its allocatable resources, §V-A).
func (s *Server) UpdateNode(n *api.Node) error {
	s.mu.Lock()
	if _, ok := s.nodes[n.Name]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: node %s", ErrNotFound, n.Name)
	}
	stored := n.Clone()
	s.nodes[n.Name] = stored
	s.recordEvent("node/"+n.Name, "Updated", stored.Allocatable.String())
	ev := s.newEvent(NodeUpdated)
	ev.Node = stored.Clone()
	s.publishLocked(ev)
	s.mu.Unlock()
	s.broker.Flush()
	return nil
}

// GetNode returns a copy of the named node.
func (s *Server) GetNode(name string) (*api.Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: node %s", ErrNotFound, name)
	}
	return n.Clone(), nil
}

// ListNodes returns copies of all nodes, sorted by name for deterministic
// iteration (the binpack policy relies on a consistent node order, §IV).
func (s *Server) ListNodes() []*api.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.nodes))
	for name := range s.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*api.Node, 0, len(names))
	for _, name := range names {
		out = append(out, s.nodes[name].Clone())
	}
	return out
}

// CreatePod submits a pod: it is stamped, assigned a UID if absent, marked
// Pending and appended to the FCFS queue (§IV step Ë).
func (s *Server) CreatePod(p *api.Pod) error {
	s.mu.Lock()
	if _, ok := s.pods[p.Name]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: pod %s", ErrAlreadyExists, p.Name)
	}
	stored := p.Clone()
	if stored.UID == "" {
		s.nextUID++
		stored.UID = fmt.Sprintf("uid-%06d", s.nextUID)
	}
	stored.Status.Phase = api.PodPending
	stored.Status.SubmittedAt = s.clk.Now()
	s.pods[stored.Name] = stored
	s.pending.Push(stored.Name, stored.Spec.SchedulerName, stored.Spec.Priority)
	s.recordEvent("pod/"+stored.Name, "Created", "queued as pending")
	ev := s.newEvent(PodCreated)
	ev.Pod = stored.Clone()
	s.publishLocked(ev)
	s.mu.Unlock()
	s.broker.Flush()
	return nil
}

// GetPod returns a copy of the named pod.
func (s *Server) GetPod(name string) (*api.Pod, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pods[name]
	if !ok {
		return nil, fmt.Errorf("%w: pod %s", ErrNotFound, name)
	}
	return p.Clone(), nil
}

// ListPods returns copies of all pods matching the filter (nil matches
// everything), sorted by name.
func (s *Server) ListPods(filter func(*api.Pod) bool) []*api.Pod {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.pods))
	for name, p := range s.pods {
		if filter == nil || filter(p) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]*api.Pod, 0, len(names))
	for _, name := range names {
		out = append(out, s.pods[name].Clone())
	}
	return out
}

// PendingPods returns the queued pods for the given scheduler in
// priority-then-FCFS order (§IV: "the orchestrator keeps a persistent
// queue of pending jobs ... applying a first-come first-served priority";
// api.PodSpec.Priority refines it into tiers). An empty schedulerName
// matches every pod.
func (s *Server) PendingPods(schedulerName string) []*api.Pod {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*api.Pod, 0, s.pending.SchedLen(schedulerName))
	s.pending.Visit(schedulerName, func(name string) bool {
		out = append(out, s.pods[name].Clone())
		return true
	})
	return out
}

// VisitPods calls fn for every live pod under the server lock, without
// copying. It is the allocation-free companion of ListPods for hot paths
// (the scheduler visits every active pod once per pass). fn must treat
// the pod as read-only, must not retain it past its return, and must not
// call back into the server; returning false stops the walk. Iteration
// order is unspecified.
func (s *Server) VisitPods(fn func(*api.Pod) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.pods {
		if !fn(p) {
			return
		}
	}
}

// VisitPending calls fn for the given scheduler's queued pods in
// priority-then-FCFS order under the server lock, without copying. The
// same read-only, no-retain, no-reentrancy contract as VisitPods applies;
// an empty schedulerName matches every pod. Returning false stops the
// walk.
func (s *Server) VisitPending(schedulerName string, fn func(*api.Pod) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending.Visit(schedulerName, func(name string) bool {
		return fn(s.pods[name])
	})
}

// PendingCount returns the number of queued pods across all schedulers.
func (s *Server) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending.Len()
}

// Bind assigns a pending pod to a node (§IV step Í: "the scheduler
// communicates the computed job-node assignments to the orchestrator").
// It is a *conditional* bind: under the server lock it re-validates,
// against authoritative pod and node state, that the pod still fits the
// target node (see Admission). An optimistic scheduler that planned
// against a stale cache loses the race with a typed ErrConflict /
// ErrOutdated — the pod stays queued and reschedules from a fresh view —
// instead of silently overcommitting the node. On success the pod leaves
// the pending queue; kubelets learn about it via PodBound.
func (s *Server) Bind(podName, nodeName string) error {
	s.mu.Lock()
	s.bindStats.Attempts++
	p, ok := s.pods[podName]
	if !ok {
		s.bindStats.RejectedPodState++
		s.mu.Unlock()
		return fmt.Errorf("%w: pod %s", ErrNotFound, podName)
	}
	n, ok := s.nodes[nodeName]
	if !ok {
		s.bindStats.RejectedNodeState++
		s.rejectBindLocked(podName, "node "+nodeName+" unknown")
		s.mu.Unlock()
		return fmt.Errorf("%w: node %s", ErrNotFound, nodeName)
	}
	if p.Spec.NodeName != "" {
		s.bindStats.RejectedPodState++
		s.mu.Unlock()
		return fmt.Errorf("%w: pod %s already bound to %s", ErrConflict, podName, p.Spec.NodeName)
	}
	if p.Status.Phase != api.PodPending {
		s.bindStats.RejectedPodState++
		s.mu.Unlock()
		return fmt.Errorf("%w: pod %s in phase %s", ErrConflict, podName, p.Status.Phase)
	}
	req := p.TotalRequests()
	if err := s.admitBindLocked(p, n, req); err != nil {
		if errors.Is(err, ErrOutdated) {
			s.bindStats.RejectedCapacity++
		} else {
			s.bindStats.RejectedNodeState++
		}
		s.rejectBindLocked(podName, err.Error())
		s.mu.Unlock()
		return err
	}
	p.Spec.NodeName = nodeName
	p.Status.ScheduledAt = s.clk.Now()
	s.commitLocked(nodeName, req, +1)
	s.bindStats.Bound++
	s.removePending(p)
	s.recordEvent("pod/"+podName, "Bound", "assigned to node "+nodeName)
	ev := s.newEvent(PodBound)
	ev.Pod = p.Clone()
	s.publishLocked(ev)
	s.mu.Unlock()
	s.broker.Flush()
	return nil
}

// admitBindLocked is the conditional-bind capacity check. Caller must
// hold s.mu. Node-state refusals are ErrConflict (the scheduler raced a
// cordon or drain); capacity refusals are ErrOutdated (a concurrent
// scheduler won the headroom).
func (s *Server) admitBindLocked(p *api.Pod, n *api.Node, req resource.List) error {
	if s.admission == AdmitNone {
		return nil
	}
	if !n.Ready || n.Unschedulable {
		return fmt.Errorf("%w: node %s is not schedulable (ready=%v unschedulable=%v)",
			ErrConflict, n.Name, n.Ready, n.Unschedulable)
	}
	com := s.committed[n.Name]
	if pages := req.Get(resource.EPCPages); pages > 0 {
		alloc := n.Allocatable.Get(resource.EPCPages)
		if alloc <= 0 {
			return fmt.Errorf("%w: SGX pod %s on non-SGX node %s", ErrConflict, p.Name, n.Name)
		}
		// Strict in every mode: EPC page items are device resources the
		// plugin admits by request accounting — over-committing them is
		// never legal (§V-A).
		if com.Get(resource.EPCPages)+pages > alloc {
			return fmt.Errorf("%w: node %s EPC devices exhausted (%d committed + %d requested > %d)",
				ErrOutdated, n.Name, com.Get(resource.EPCPages), pages, alloc)
		}
	}
	for name, q := range req {
		if q <= 0 || name == resource.EPCPages {
			continue
		}
		alloc := n.Allocatable.Get(name)
		if q > alloc {
			return fmt.Errorf("%w: pod %s requests %s=%d beyond node %s allocatable %d",
				ErrConflict, p.Name, name, q, n.Name, alloc)
		}
		if s.admission == AdmitStrict && com.Get(name)+q > alloc {
			return fmt.Errorf("%w: node %s %s exhausted (%d committed + %d requested > %d)",
				ErrOutdated, n.Name, name, com.Get(name), q, alloc)
		}
	}
	return nil
}

// rejectBindLocked records a refused bind in the event log so rejected
// optimistic transactions stay observable. Caller must hold s.mu.
func (s *Server) rejectBindLocked(podName, reason string) {
	s.recordEvent("pod/"+podName, "BindRejected", reason)
}

// commitLocked moves a pod's summed requests into (sign=+1) or out of
// (sign=-1) its node's committed accounting. Caller must hold s.mu and
// pass the pod's TotalRequests sum.
func (s *Server) commitLocked(nodeName string, req resource.List, sign int64) {
	com, ok := s.committed[nodeName]
	if !ok {
		com = make(resource.List, 3)
		s.committed[nodeName] = com
	}
	for name, q := range req {
		com[name] += sign * q
	}
}

// removePending drops a pod from the pending queue (see pendingQueue for
// the amortized O(1) layout). Caller must hold s.mu.
func (s *Server) removePending(p *api.Pod) {
	s.pending.Remove(p.Name, p.Spec.SchedulerName)
}

// MarkRunning transitions a bound pod to Running, stamping StartedAt.
func (s *Server) MarkRunning(podName string) error {
	return s.transition(podName, api.PodRunning, "Started", "")
}

// MarkSucceeded transitions a pod to Succeeded, stamping FinishedAt.
func (s *Server) MarkSucceeded(podName string) error {
	return s.transition(podName, api.PodSucceeded, "Completed", "")
}

// MarkFailed transitions a pod to Failed with a reason, stamping
// FinishedAt. Pods killed by EPC limit enforcement land here (§VI-F:
// "these jobs are immediately killed after launch").
func (s *Server) MarkFailed(podName, reason string) error {
	return s.transition(podName, api.PodFailed, "Failed", reason)
}

func (s *Server) transition(podName string, phase api.PodPhase, event, reason string) error {
	s.mu.Lock()
	p, ok := s.pods[podName]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: pod %s", ErrNotFound, podName)
	}
	if p.IsTerminal() {
		s.mu.Unlock()
		return fmt.Errorf("%w: pod %s already terminal (%s)", ErrConflict, podName, p.Status.Phase)
	}
	now := s.clk.Now()
	switch phase {
	case api.PodRunning:
		if p.Spec.NodeName == "" {
			s.mu.Unlock()
			return fmt.Errorf("%w: pod %s running without binding", ErrConflict, podName)
		}
		p.Status.StartedAt = now
	case api.PodSucceeded, api.PodFailed:
		p.Status.FinishedAt = now
		// A pod failed before start (e.g. admission denial) still leaves
		// the queue.
		s.removePending(p)
		if p.Spec.NodeName != "" {
			s.commitLocked(p.Spec.NodeName, p.TotalRequests(), -1)
		}
	}
	p.Status.Phase = phase
	p.Status.Reason = reason
	s.recordEvent("pod/"+podName, event, reason)
	ev := s.newEvent(PodUpdated)
	ev.Pod = p.Clone()
	s.publishLocked(ev)
	s.mu.Unlock()
	s.broker.Flush()
	return nil
}

// Preempt returns a bound, non-terminal pod to the pending queue: its
// binding is cleared and it re-enters its priority tier at the tail, to be
// scheduled again later. The kubelet holding the pod reacts to the update
// by killing the workload and releasing its resources — this is the §IV
// eviction path priority scheduling uses to make room for more important
// pods. Scheduling timestamps are reset so waiting/turnaround metrics
// describe the eventual successful run.
func (s *Server) Preempt(podName, reason string) error {
	if reason == "" {
		reason = "Preempted"
	} else {
		reason = "Preempted: " + reason
	}
	s.mu.Lock()
	p, ok := s.pods[podName]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: pod %s", ErrNotFound, podName)
	}
	if p.IsTerminal() {
		s.mu.Unlock()
		return fmt.Errorf("%w: pod %s already terminal (%s)", ErrConflict, podName, p.Status.Phase)
	}
	if p.Spec.NodeName == "" {
		s.mu.Unlock()
		return fmt.Errorf("%w: pod %s is not bound", ErrConflict, podName)
	}
	s.commitLocked(p.Spec.NodeName, p.TotalRequests(), -1)
	p.Spec.NodeName = ""
	p.Status.Phase = api.PodPending
	p.Status.Reason = reason
	p.Status.ScheduledAt = time.Time{}
	p.Status.StartedAt = time.Time{}
	s.pending.Push(podName, p.Spec.SchedulerName, p.Spec.Priority)
	s.recordEvent("pod/"+podName, "Preempted", reason)
	ev := s.newEvent(PodUpdated)
	ev.Pod = p.Clone()
	s.publishLocked(ev)
	s.mu.Unlock()
	s.broker.Flush()
	return nil
}

// Evict forcibly terminates a pod (Failed with an eviction reason),
// whether it is still queued or already running. Kubelets react to the
// update by killing the workload and releasing its resources.
func (s *Server) Evict(podName, reason string) error {
	if reason == "" {
		reason = "Evicted"
	} else {
		reason = "Evicted: " + reason
	}
	return s.transition(podName, api.PodFailed, "Evicted", reason)
}

// AllTerminal reports whether every pod has reached a terminal phase —
// the completion condition for trace replays.
func (s *Server) AllTerminal() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.pods {
		if !p.IsTerminal() {
			return false
		}
	}
	return true
}
