package apiserver

import (
	"strconv"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/telemetry"
)

// bindLatencyBuckets cover the striped commit: ~1µs uncontended to
// hundreds of µs when binds race for one node's stripe.
var bindLatencyBuckets = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
}

// srvMetrics holds the server's pre-resolved registry handles. Nil when
// telemetry is off; its methods are nil-receiver no-ops, so every
// commit-path site costs one predictable branch.
type srvMetrics struct {
	bindLatency *telemetry.Histogram
	rejections  *telemetry.CounterVec
}

// rejected counts one refused bind against the pod's workload class.
func (m *srvMetrics) rejected(class api.WorkloadClass) {
	if m == nil {
		return
	}
	m.rejections.With(classTelemetryLabel(class)).Inc()
}

// rejectedUnknownPod counts a refused bind whose pod is unknown — there
// is no spec to read a class from.
func (m *srvMetrics) rejectedUnknownPod() {
	if m == nil {
		return
	}
	m.rejections.With("unknown").Inc()
}

// classTelemetryLabel is the label value for a workload class; the
// unclassified default gets an explicit value so its series stays
// addressable in label-keyed queries (mirrors the scheduler's label).
func classTelemetryLabel(class api.WorkloadClass) string {
	if class == api.ClassUnspecified {
		return "unclassified"
	}
	return string(class)
}

// WithTelemetry instruments the server against the registry:
//
//   - apiserver_bind_latency_seconds — histogram over the Bind commit
//     (admission, accounting, event publish, synchronous delivery);
//   - apiserver_bind_rejections_total{class=} — refused binds by the
//     pod's workload class ("unknown" when the pod no longer exists);
//   - apiserver_pending_depth{class=} and
//     apiserver_pending_depth_priority{priority=} — queue backlog
//     gauges, refreshed by a pull-time collector;
//   - watch_subscriber_{max_lag,resyncs,dropped}{subscriber=} — the
//     broker's per-subscriber delivery health, same collector.
//
// Collectors run at export/scrape time only, so the commit path pays
// one histogram observation per bind and one counter increment per
// rejection — nothing else.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *Server) {
		if reg == nil {
			return
		}
		s.metrics = &srvMetrics{
			bindLatency: reg.Histogram("apiserver_bind_latency_seconds", bindLatencyBuckets),
			rejections:  reg.CounterVec("apiserver_bind_rejections_total", "class"),
		}
		s.registerCollectors(reg)
	}
}

// telemetryClasses are the fixed class labels the depth collector
// publishes — writing every class each collection (zero included) keeps
// a drained class's gauge from sticking at its last backlog.
var telemetryClasses = []api.WorkloadClass{
	api.ClassUnspecified, api.ClassLatencySensitive, api.ClassBatch, api.ClassBestEffort,
}

// registerCollectors publishes the pull-model gauges. The collector
// closure keeps per-priority and per-subscriber gauge handles across
// runs so tiers that drain and subscribers that unsubscribe report zero
// instead of their last live value; the registry serialises collector
// runs, so the closure state needs no lock.
func (s *Server) registerCollectors(reg *telemetry.Registry) {
	depthByClass := reg.GaugeVec("apiserver_pending_depth", "class")
	depthByPrio := reg.GaugeVec("apiserver_pending_depth_priority", "priority")
	subLag := reg.GaugeVec("watch_subscriber_max_lag", "subscriber")
	subResyncs := reg.GaugeVec("watch_subscriber_resyncs", "subscriber")
	subDropped := reg.GaugeVec("watch_subscriber_dropped", "subscriber")

	classGauges := make([]*telemetry.Gauge, len(telemetryClasses))
	for i, c := range telemetryClasses {
		classGauges[i] = depthByClass.With(classTelemetryLabel(c))
	}
	prioGauges := make(map[int32]*telemetry.Gauge)
	type subGauges struct{ lag, resyncs, dropped *telemetry.Gauge }
	subs := make(map[int64]subGauges)

	reg.RegisterCollector(func() {
		s.pendingMu.Lock()
		classes := s.pending.ClassCounts("")
		prios := s.pending.PriorityCounts("")
		s.pendingMu.Unlock()
		for i, c := range telemetryClasses {
			classGauges[i].Set(float64(classes[c]))
		}
		for prio, g := range prioGauges {
			if _, live := prios[prio]; !live {
				g.Set(0)
			}
		}
		for prio, n := range prios {
			g, ok := prioGauges[prio]
			if !ok {
				g = depthByPrio.With(strconv.FormatInt(int64(prio), 10))
				prioGauges[prio] = g
			}
			g.Set(float64(n))
		}

		live := make(map[int64]bool, len(subs))
		for _, ss := range s.broker.Stats().PerSubscriber {
			live[ss.ID] = true
			g, ok := subs[ss.ID]
			if !ok {
				id := strconv.FormatInt(ss.ID, 10)
				g = subGauges{
					lag:     subLag.With(id),
					resyncs: subResyncs.With(id),
					dropped: subDropped.With(id),
				}
				subs[ss.ID] = g
			}
			g.lag.Set(float64(ss.MaxLag))
			g.resyncs.Set(float64(ss.Resyncs))
			g.dropped.Set(float64(ss.Dropped))
		}
		for id, g := range subs {
			if !live[id] {
				g.lag.Set(0)
				g.resyncs.Set(0)
				g.dropped.Set(0)
			}
		}
	})
}
