package apiserver

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
)

func testNode(name string, sgx bool) *api.Node {
	alloc := resource.List{resource.Memory: 64 * resource.GiB, resource.CPU: 8000}
	if sgx {
		alloc[resource.EPCPages] = 23936
	}
	return &api.Node{Name: name, Capacity: alloc.Clone(), Allocatable: alloc, Ready: true}
}

func testPod(name string) *api.Pod {
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{
			SchedulerName: "sgx-binpack",
			Containers: []api.Container{{
				Name:      "main",
				Resources: api.Requirements{Requests: resource.List{resource.Memory: resource.GiB}},
				Workload:  api.WorkloadSpec{Kind: api.WorkloadSleep, Duration: time.Minute},
			}},
		},
	}
}

func TestNodeRegistry(t *testing.T) {
	s := New(clock.NewSim())
	if err := s.RegisterNode(testNode("n1", false)); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterNode(testNode("n1", false)); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("duplicate register err = %v", err)
	}
	if _, err := s.GetNode("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing node err = %v", err)
	}
	n, err := s.GetNode("n1")
	if err != nil || n.Name != "n1" {
		t.Fatalf("GetNode = %v, %v", n, err)
	}
	// Mutating the returned copy must not affect the stored node.
	n.Allocatable[resource.Memory] = 1
	n2, _ := s.GetNode("n1")
	if n2.Allocatable[resource.Memory] != 64*resource.GiB {
		t.Fatal("GetNode returned aliased state")
	}
}

func TestListNodesSorted(t *testing.T) {
	s := New(clock.NewSim())
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := s.RegisterNode(testNode(name, false)); err != nil {
			t.Fatal(err)
		}
	}
	nodes := s.ListNodes()
	if len(nodes) != 3 || nodes[0].Name != "alpha" || nodes[1].Name != "mid" || nodes[2].Name != "zeta" {
		t.Fatalf("ListNodes order wrong: %v", nodes)
	}
}

func TestUpdateNode(t *testing.T) {
	s := New(clock.NewSim())
	if err := s.UpdateNode(testNode("n1", false)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing err = %v", err)
	}
	if err := s.RegisterNode(testNode("n1", false)); err != nil {
		t.Fatal(err)
	}
	upd := testNode("n1", true)
	if err := s.UpdateNode(upd); err != nil {
		t.Fatal(err)
	}
	n, _ := s.GetNode("n1")
	if !n.HasSGX() {
		t.Fatal("update did not persist EPC allocatable")
	}
}

func TestCreatePodQueuesFCFS(t *testing.T) {
	clk := clock.NewSim()
	s := New(clk)
	for i := 0; i < 5; i++ {
		clk.Advance(time.Second)
		if err := s.CreatePod(testPod(fmt.Sprintf("pod-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CreatePod(testPod("pod-0")); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("duplicate pod err = %v", err)
	}
	pending := s.PendingPods("sgx-binpack")
	if len(pending) != 5 {
		t.Fatalf("pending = %d, want 5", len(pending))
	}
	for i, p := range pending {
		if p.Name != fmt.Sprintf("pod-%d", i) {
			t.Fatalf("FCFS order violated: %v at %d", p.Name, i)
		}
		if p.Status.Phase != api.PodPending {
			t.Fatalf("phase = %s", p.Status.Phase)
		}
		if p.Status.SubmittedAt.IsZero() {
			t.Fatal("SubmittedAt not stamped")
		}
		if p.UID == "" {
			t.Fatal("UID not assigned")
		}
	}
	// Scheduler filtering.
	if got := s.PendingPods("other"); len(got) != 0 {
		t.Fatalf("foreign scheduler sees %d pods", len(got))
	}
	if got := s.PendingPods(""); len(got) != 5 {
		t.Fatalf("wildcard scheduler sees %d pods", len(got))
	}
}

func TestBindLifecycle(t *testing.T) {
	clk := clock.NewSim()
	s := New(clk)
	if err := s.RegisterNode(testNode("n1", false)); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePod(testPod("p1")); err != nil {
		t.Fatal(err)
	}

	if err := s.Bind("ghost", "n1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bind missing pod err = %v", err)
	}
	if err := s.Bind("p1", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bind missing node err = %v", err)
	}

	clk.Advance(10 * time.Second)
	if err := s.Bind("p1", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("p1", "n1"); !errors.Is(err, ErrConflict) {
		t.Fatalf("double bind err = %v", err)
	}
	if got := s.PendingCount(); got != 0 {
		t.Fatalf("pending after bind = %d", got)
	}

	clk.Advance(5 * time.Second)
	if err := s.MarkRunning("p1"); err != nil {
		t.Fatal(err)
	}
	p, _ := s.GetPod("p1")
	w, ok := p.WaitingTime()
	if !ok || w != 15*time.Second {
		t.Fatalf("WaitingTime = %v, %v; want 15s", w, ok)
	}

	clk.Advance(time.Minute)
	if err := s.MarkSucceeded("p1"); err != nil {
		t.Fatal(err)
	}
	p, _ = s.GetPod("p1")
	tt, _ := p.TurnaroundTime()
	if tt != 75*time.Second {
		t.Fatalf("Turnaround = %v, want 75s", tt)
	}
	if err := s.MarkSucceeded("p1"); !errors.Is(err, ErrConflict) {
		t.Fatalf("double terminal err = %v", err)
	}
	if !s.AllTerminal() {
		t.Fatal("AllTerminal = false")
	}
}

func TestMarkRunningRequiresBinding(t *testing.T) {
	s := New(clock.NewSim())
	if err := s.CreatePod(testPod("p1")); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning("p1"); !errors.Is(err, ErrConflict) {
		t.Fatalf("running unbound pod err = %v", err)
	}
}

func TestFailBeforeBindingLeavesQueue(t *testing.T) {
	s := New(clock.NewSim())
	if err := s.CreatePod(testPod("p1")); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkFailed("p1", "admission denied"); err != nil {
		t.Fatal(err)
	}
	if got := s.PendingCount(); got != 0 {
		t.Fatalf("failed pod still pending: %d", got)
	}
	p, _ := s.GetPod("p1")
	if p.Status.Phase != api.PodFailed || p.Status.Reason != "admission denied" {
		t.Fatalf("status = %+v", p.Status)
	}
}

func TestWatchNotifications(t *testing.T) {
	s := New(clock.NewSim())
	var got []WatchEventType
	unsub := s.Subscribe(func(ev WatchEvent) { got = append(got, ev.Type) })
	if err := s.RegisterNode(testNode("n1", false)); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePod(testPod("p1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("p1", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning("p1"); err != nil {
		t.Fatal(err)
	}
	want := []WatchEventType{NodeRegistered, PodCreated, PodBound, PodUpdated}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
	unsub()
	if err := s.MarkSucceeded("p1"); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatal("unsubscribed watcher still notified")
	}
}

func TestEventsLog(t *testing.T) {
	s := New(clock.NewSim())
	if err := s.RegisterNode(testNode("n1", false)); err != nil {
		t.Fatal(err)
	}
	evs := s.Events()
	if len(evs) != 1 || evs[0].Reason != "Registered" {
		t.Fatalf("events = %v", evs)
	}
}

func TestListPodsFilter(t *testing.T) {
	s := New(clock.NewSim())
	for i := 0; i < 4; i++ {
		p := testPod(fmt.Sprintf("p%d", i))
		if i%2 == 0 {
			p.Spec.Containers[0].Resources.Requests[resource.EPCPages] = 10
		}
		if err := s.CreatePod(p); err != nil {
			t.Fatal(err)
		}
	}
	sgxPods := s.ListPods(func(p *api.Pod) bool { return p.IsSGX() })
	if len(sgxPods) != 2 {
		t.Fatalf("sgx pods = %d, want 2", len(sgxPods))
	}
	all := s.ListPods(nil)
	if len(all) != 4 {
		t.Fatalf("all pods = %d, want 4", len(all))
	}
}

// TestConcurrentAccess exercises the server's locking under parallel
// creates, binds and reads (meaningful under -race).
func TestConcurrentAccess(t *testing.T) {
	clk := clock.NewSim()
	s := New(clk)
	if err := s.RegisterNode(testNode("n1", true)); err != nil {
		t.Fatal(err)
	}
	unsub := s.Subscribe(func(WatchEvent) {})
	defer unsub()

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("pod-%d-%d", w, i)
				if err := s.CreatePod(testPod(name)); err != nil {
					t.Errorf("create %s: %v", name, err)
					return
				}
				if err := s.Bind(name, "n1"); err != nil {
					t.Errorf("bind %s: %v", name, err)
					return
				}
				if err := s.MarkRunning(name); err != nil {
					t.Errorf("run %s: %v", name, err)
					return
				}
				if err := s.MarkSucceeded(name); err != nil {
					t.Errorf("finish %s: %v", name, err)
					return
				}
				s.ListNodes()
				s.PendingPods("")
			}
		}()
	}
	wg.Wait()
	if got := len(s.ListPods(nil)); got != workers*perWorker {
		t.Fatalf("pods = %d, want %d", got, workers*perWorker)
	}
	if !s.AllTerminal() {
		t.Fatal("not all pods terminal")
	}
}

func TestVisitPendingFCFSOrder(t *testing.T) {
	s := New(clock.NewSim())
	for i := 0; i < 5; i++ {
		p := testPod(fmt.Sprintf("pod-%d", i))
		if i%2 == 1 {
			p.Spec.SchedulerName = "other"
		}
		if err := s.CreatePod(p); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	s.VisitPending("sgx-binpack", func(p *api.Pod) bool {
		seen = append(seen, p.Name)
		return true
	})
	want := []string{"pod-0", "pod-2", "pod-4"}
	if len(seen) != len(want) {
		t.Fatalf("visited %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("visited %v, want %v (FCFS order)", seen, want)
		}
	}

	// Early stop.
	visits := 0
	s.VisitPending("", func(*api.Pod) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("visits after stop = %d, want 1", visits)
	}
}

func TestVisitPendingSkipsBoundPods(t *testing.T) {
	s := New(clock.NewSim())
	if err := s.RegisterNode(testNode("n1", false)); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePod(testPod("p1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("p1", "n1"); err != nil {
		t.Fatal(err)
	}
	s.VisitPending("", func(p *api.Pod) bool {
		t.Fatalf("bound pod %s still visited as pending", p.Name)
		return false
	})
}

func TestVisitPodsSeesLiveState(t *testing.T) {
	s := New(clock.NewSim())
	if err := s.RegisterNode(testNode("n1", false)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.CreatePod(testPod(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Bind("p0", "n1"); err != nil {
		t.Fatal(err)
	}
	bound := 0
	s.VisitPods(func(p *api.Pod) bool {
		if p.Spec.NodeName != "" {
			bound++
		}
		return true
	})
	if bound != 1 {
		t.Fatalf("bound pods seen = %d, want 1", bound)
	}
}

// TestListAndWatchHandshake: the snapshot must reflect everything that
// happened before it, carry the matching resource version, and events
// delivered afterwards must all be newer than it.
func TestListAndWatchHandshake(t *testing.T) {
	clk := clock.NewSim()
	s := New(clk)
	if err := s.RegisterNode(testNode("n1", true)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.CreatePod(testPod(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Bind("p0", "n1"); err != nil {
		t.Fatal(err)
	}

	var events []WatchEvent
	snap, unsub := s.ListAndWatch(func(ev WatchEvent) { events = append(events, ev) })
	defer unsub()

	if snap.Rev != 5 { // 1 node + 3 creates + 1 bind
		t.Fatalf("snapshot rev = %d, want 5", snap.Rev)
	}
	if len(snap.Nodes) != 1 || snap.Nodes[0].Name != "n1" {
		t.Fatalf("snapshot nodes = %v", snap.Nodes)
	}
	if len(snap.Pods) != 3 {
		t.Fatalf("snapshot pods = %d, want 3", len(snap.Pods))
	}
	if snap.Pods[0].Spec.NodeName != "n1" {
		t.Fatal("snapshot missed the bind")
	}
	if len(snap.Pending) != 2 || snap.Pending[0] != "p1" || snap.Pending[1] != "p2" {
		t.Fatalf("snapshot pending = %v, want [p1 p2]", snap.Pending)
	}
	if len(events) != 0 {
		t.Fatalf("events before any mutation: %v", events)
	}

	if err := s.MarkRunning("p0"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != PodUpdated || events[0].Rev != snap.Rev+1 {
		t.Fatalf("post-handshake events = %+v", events)
	}
	// Mutating snapshot contents must not reach stored state.
	snap.Nodes[0].Ready = false
	if n, _ := s.GetNode("n1"); !n.Ready {
		t.Fatal("snapshot aliased stored node")
	}
}

// TestEventRevisionsMonotonic: every event carries a strictly increasing
// resource version.
func TestEventRevisionsMonotonic(t *testing.T) {
	s := New(clock.NewSim())
	var revs []int64
	unsub := s.Subscribe(func(ev WatchEvent) { revs = append(revs, ev.Rev) })
	defer unsub()
	if err := s.RegisterNode(testNode("n1", false)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.CreatePod(testPod(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := s.Bind(fmt.Sprintf("p%d", i), "n1"); err != nil {
			t.Fatal(err)
		}
	}
	if len(revs) != 7 {
		t.Fatalf("revs = %v, want 7 events", revs)
	}
	for i, r := range revs {
		if r != int64(i+1) {
			t.Fatalf("revs = %v, want 1..7", revs)
		}
	}
}

// TestNotifyDeliversInRegistrationOrder: delivery follows registration
// order, stays stable across unsubscribes, and needs no per-event sort.
func TestNotifyDeliversInRegistrationOrder(t *testing.T) {
	s := New(clock.NewSim())
	var order []string
	sub := func(tag string) func() {
		return s.Subscribe(func(WatchEvent) { order = append(order, tag) })
	}
	unsubA := sub("a")
	unsubB := sub("b")
	defer sub("c")()
	defer unsubA()

	if err := s.RegisterNode(testNode("n1", false)); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(order); got != "[a b c]" {
		t.Fatalf("delivery order = %v", order)
	}
	unsubB()
	unsubB() // double-unsubscribe is a no-op
	order = nil
	if err := s.CreatePod(testPod("p1")); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(order); got != "[a c]" {
		t.Fatalf("delivery order after unsubscribe = %v", order)
	}
}

// TestPendingQueueIndexAndCompaction: removals from the FCFS queue are
// index-based with tombstone compaction; order and counts must survive
// arbitrary interleavings of creates, binds and failures.
func TestPendingQueueIndexAndCompaction(t *testing.T) {
	clk := clock.NewSim()
	s := New(clk)
	if err := s.RegisterNode(testNode("n1", false)); err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := s.CreatePod(testPod(fmt.Sprintf("pod-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Drain from the front (FCFS order, as the scheduler binds), forcing
	// several compactions, with fresh arrivals interleaved.
	for i := 0; i < n; i += 2 {
		if err := s.Bind(fmt.Sprintf("pod-%03d", i), "n1"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n/2; i += 2 {
		if err := s.MarkFailed(fmt.Sprintf("pod-%03d", i), "chaos"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.CreatePod(testPod(fmt.Sprintf("late-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	wantCount := n/2 - n/4 + 5
	if got := s.PendingCount(); got != wantCount {
		t.Fatalf("PendingCount = %d, want %d", got, wantCount)
	}
	var got []string
	s.VisitPending("", func(p *api.Pod) bool {
		got = append(got, p.Name)
		return true
	})
	var want []string
	for i := n/2 + 1; i < n; i += 2 {
		want = append(want, fmt.Sprintf("pod-%03d", i))
	}
	for i := 0; i < 5; i++ {
		want = append(want, fmt.Sprintf("late-%d", i))
	}
	if len(got) != len(want) {
		t.Fatalf("pending = %v\nwant %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pending[%d] = %s, want %s (FCFS order lost)", i, got[i], want[i])
		}
	}
	if listed := s.PendingPods(""); len(listed) != len(want) || listed[0].Name != want[0] {
		t.Fatalf("PendingPods diverged from VisitPending: %d items", len(listed))
	}
}

// TestConcurrentMutatorsDeliverInRevOrder: with parallel mutators, every
// subscriber must still observe events in strictly increasing resource-
// version order — the informer contract a cache's rev gate depends on.
func TestConcurrentMutatorsDeliverInRevOrder(t *testing.T) {
	clk := clock.NewSim()
	s := New(clk)
	if err := s.RegisterNode(testNode("n1", true)); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var revs []int64
	unsub := s.Subscribe(func(ev WatchEvent) {
		mu.Lock()
		revs = append(revs, ev.Rev)
		mu.Unlock()
	})
	defer unsub()

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("ord-%d-%d", w, i)
				if err := s.CreatePod(testPod(name)); err != nil {
					t.Errorf("create %s: %v", name, err)
					return
				}
				if err := s.Bind(name, "n1"); err != nil {
					t.Errorf("bind %s: %v", name, err)
					return
				}
				if err := s.MarkSucceeded(name); err != nil {
					t.Errorf("finish %s: %v", name, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(revs) != workers*perWorker*3 {
		t.Fatalf("events = %d, want %d", len(revs), workers*perWorker*3)
	}
	for i := 1; i < len(revs); i++ {
		if revs[i] <= revs[i-1] {
			t.Fatalf("event %d rev %d after rev %d: delivery out of order", i, revs[i], revs[i-1])
		}
	}
}
