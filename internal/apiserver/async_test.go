package apiserver

import (
	"fmt"
	"sync"
	"testing"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
)

// TestAsyncWatchDeliversAllInOrder: with async delivery, mutating calls
// return without running subscriber code, yet after QuiesceWatch every
// subscriber has observed the complete, ordered event stream.
func TestAsyncWatchDeliversAllInOrder(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk, WithAsyncWatch())
	defer srv.Close()

	var mu sync.Mutex
	var revs []int64
	batches := 0
	unsub := srv.SubscribeBatch(func(evs []WatchEvent) {
		mu.Lock()
		for _, ev := range evs {
			revs = append(revs, ev.Rev)
		}
		batches++
		mu.Unlock()
	}, nil)
	defer unsub()

	alloc := resource.List{resource.Memory: 64 * resource.GiB, resource.CPU: 8000}
	if err := srv.RegisterNode(&api.Node{Name: "n1", Capacity: alloc.Clone(), Allocatable: alloc, Ready: true}); err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		pod := &api.Pod{
			Name: fmt.Sprintf("p%03d", i),
			Spec: api.PodSpec{Containers: []api.Container{{
				Name:      "main",
				Resources: api.Requirements{Requests: resource.List{resource.Memory: resource.MiB}},
			}}},
		}
		if err := srv.CreatePod(pod); err != nil {
			t.Fatal(err)
		}
		if err := srv.Bind(pod.Name, "n1"); err != nil {
			t.Fatal(err)
		}
	}
	srv.QuiesceWatch()

	mu.Lock()
	defer mu.Unlock()
	want := int64(1 + 2*n) // node registration + (create, bind) per pod
	if int64(len(revs)) != want {
		t.Fatalf("delivered %d events, want %d", len(revs), want)
	}
	for i, rev := range revs {
		if rev != int64(i+1) {
			t.Fatalf("revs[%d] = %d — stream has gaps, duplicates or reordering", i, rev)
		}
	}
	st := srv.WatchStats()
	if st.Published != want || len(st.PerSubscriber) != 1 {
		t.Fatalf("watch stats = %+v, want %d published, 1 subscriber", st, want)
	}
	if st.PerSubscriber[0].Delivered != want {
		t.Fatalf("subscriber delivered = %d, want %d", st.PerSubscriber[0].Delivered, want)
	}
}

// TestSyncWatchDeliveryIsInline: the default mode still hands every
// event to every subscriber before the mutating call returns — the
// contract the simulation's determinism rests on.
func TestSyncWatchDeliveryIsInline(t *testing.T) {
	clk := clock.NewSim()
	srv := New(clk)
	var seen []WatchEventType
	unsub := srv.Subscribe(func(ev WatchEvent) { seen = append(seen, ev.Type) })
	defer unsub()

	alloc := resource.List{resource.Memory: resource.GiB, resource.CPU: 1000}
	if err := srv.RegisterNode(&api.Node{Name: "n1", Capacity: alloc.Clone(), Allocatable: alloc, Ready: true}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != NodeRegistered {
		t.Fatalf("after RegisterNode returned, seen = %v — sync delivery is no longer inline", seen)
	}
	pod := &api.Pod{Name: "p", Spec: api.PodSpec{Containers: []api.Container{{Name: "c"}}}}
	if err := srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[1] != PodCreated {
		t.Fatalf("after CreatePod returned, seen = %v", seen)
	}
}
