// Package stress materialises trace jobs as running workloads, standing in
// for the STRESS-SGX / STRESS-NG containers of §VI-C: "Normal jobs use the
// original virtual memory stressor brought from STRESS-NG, while
// SGX-enabled jobs use the topical EPC stressor."
//
// A workload goes through the measured startup sequence of §VI-D (PSW
// service launch, then enclave memory commitment at the two-slope rate),
// allocates its memory — the trace's *maximal usage*, which may exceed the
// advertised request — holds it for the trace duration, then releases it.
// Enclave-init denial by the modified driver (§V-D) kills the workload
// immediately, which is how malicious containers die in Fig. 11.
package stress

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/machine"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/sgx"
)

// ErrAborted is reported to OnFinished when an execution is aborted
// externally.
var ErrAborted = errors.New("stress: workload aborted")

// Runner launches workloads on machines using a shared clock and SGX cost
// model.
type Runner struct {
	clk  clock.Clock
	cost sgx.CostModel
}

// NewRunner creates a workload runner. A zero CostModel is replaced by the
// paper's measured defaults.
func NewRunner(clk clock.Clock, cost sgx.CostModel) *Runner {
	if cost == (sgx.CostModel{}) {
		cost = sgx.DefaultCostModel()
	}
	return &Runner{clk: clk, cost: cost}
}

// CostModel returns the runner's SGX cost model.
func (r *Runner) CostModel() sgx.CostModel { return r.cost }

// Config describes one workload execution.
type Config struct {
	Machine    *machine.Machine
	CgroupPath string
	Spec       api.WorkloadSpec
	// OnStarted fires when the workload process launches (the pod's
	// Running instant; ends the paper's waiting time).
	OnStarted func()
	// OnFinished fires exactly once at termination; err is nil for a
	// normal completion and non-nil when the workload was killed (e.g.
	// enclave denial, OOM).
	OnFinished func(err error)
}

// Execution is a handle on a running workload.
type Execution struct {
	clk  clock.Clock
	proc *machine.Process

	mu       sync.Mutex
	timer    clock.Timer
	finished bool
	onDone   func(error)
}

// Run starts the workload and returns its handle. Startup latencies
// (PSW + allocation, Fig. 6) elapse on the clock before memory is
// committed, then the working set is held for the spec duration.
func (r *Runner) Run(cfg Config) (*Execution, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("stress: nil machine")
	}
	if cfg.Spec.Duration < 0 {
		return nil, fmt.Errorf("stress: negative duration %v", cfg.Spec.Duration)
	}
	epcKind := cfg.Spec.Kind == api.WorkloadStressEPC || cfg.Spec.Kind == api.WorkloadStressEPCDynamic
	if epcKind && !cfg.Machine.HasSGX() {
		return nil, fmt.Errorf("stress: EPC workload on non-SGX machine %s: %w",
			cfg.Machine.Name(), machine.ErrNoSGX)
	}
	if cfg.Spec.Kind == api.WorkloadStressEPCDynamic && !cfg.Machine.SGX().SGX2() {
		return nil, fmt.Errorf("stress: dynamic EPC workload needs SGX 2 on machine %s: %w",
			cfg.Machine.Name(), sgx.ErrSGX1Only)
	}

	ex := &Execution{
		clk:    r.clk,
		proc:   cfg.Machine.StartProcess(cfg.CgroupPath),
		onDone: cfg.OnFinished,
	}
	if cfg.OnStarted != nil {
		cfg.OnStarted()
	}

	switch cfg.Spec.Kind {
	case api.WorkloadSleep:
		ex.arm(cfg.Spec.Duration, func() { ex.finish(nil) })
	case api.WorkloadStressVM:
		// "Measurements for standard jobs ... steadily took less than
		// 1 ms" (§VI-D).
		ex.arm(r.cost.StandardStartup, func() {
			if err := ex.proc.AllocVM(cfg.Spec.AllocBytes); err != nil {
				ex.finish(err)
				return
			}
			ex.arm(cfg.Spec.Duration, func() { ex.finish(nil) })
		})
	case api.WorkloadStressEPC:
		// PSW/AESM boot, then enclave memory commitment at the measured
		// two-slope rate.
		usable := cfg.Machine.SGX().Geometry().UsableBytes()
		startup := r.cost.PSWStartup + r.cost.AllocLatency(cfg.Spec.AllocBytes, usable)
		pages := resource.PagesForBytes(cfg.Spec.AllocBytes)
		ex.arm(startup, func() {
			if _, err := ex.proc.OpenEnclave(pages); err != nil {
				// Enclave denied (limit enforcement, §V-D) or EPC
				// exhausted: the job is killed immediately (§VI-F).
				ex.finish(err)
				return
			}
			ex.arm(cfg.Spec.Duration, func() { ex.finish(nil) })
		})
	case api.WorkloadStressEPCDynamic:
		r.runDynamicEPC(ex, cfg)
	default:
		ex.proc.Kill()
		return nil, fmt.Errorf("stress: unknown workload kind %v", cfg.Spec.Kind)
	}
	return ex, nil
}

// arm schedules the next lifecycle step unless already finished.
func (e *Execution) arm(d time.Duration, f func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.finished {
		return
	}
	e.timer = e.clk.AfterFunc(d, f)
}

// finish terminates the workload exactly once: the process is killed
// (releasing RAM and destroying enclaves) and OnFinished is invoked.
func (e *Execution) finish(err error) {
	e.mu.Lock()
	if e.finished {
		e.mu.Unlock()
		return
	}
	e.finished = true
	t := e.timer
	done := e.onDone
	e.mu.Unlock()

	if t != nil {
		t.Stop()
	}
	e.proc.Kill()
	if done != nil {
		done(err)
	}
}

// Abort kills the workload; OnFinished receives ErrAborted.
func (e *Execution) Abort() { e.finish(ErrAborted) }

// Finished reports whether the workload has terminated.
func (e *Execution) Finished() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.finished
}

// PID returns the workload's process ID.
func (e *Execution) PID() int { return e.proc.PID }
