package stress

import (
	"github.com/sgxorch/sgxorch/internal/resource"
)

// runDynamicEPC implements the SGX 2 workload of §VI-G: the enclave
// commits a baseline working set at initialization, bursts to its peak
// via dynamic EPC allocation (EAUG) for the middle third of its runtime,
// and trims back (EREMOVE) for the final third. Both dynamic operations
// go through the driver, which applies the pod's EPC limit to the burst
// exactly as it does at enclave initialization.
//
// Compared with the SGX 1 stressor — which must hold its peak for the
// whole run — the dynamic variant keeps EPC free between bursts, which a
// usage-aware scheduler converts into extra packing headroom ("this new
// feature can really improve resource utilization on shared
// infrastructures", §VI-G).
func (r *Runner) runDynamicEPC(ex *Execution, cfg Config) {
	peakBytes := cfg.Spec.AllocBytes
	baseBytes := cfg.Spec.BaseBytes
	if baseBytes <= 0 {
		baseBytes = peakBytes / 2
	}
	if baseBytes > peakBytes {
		baseBytes = peakBytes
	}
	basePages := resource.PagesForBytes(baseBytes)
	burstPages := resource.PagesForBytes(peakBytes) - basePages

	usable := cfg.Machine.SGX().Geometry().UsableBytes()
	driver := cfg.Machine.Driver()
	startup := r.cost.PSWStartup + r.cost.AllocLatency(baseBytes, usable)
	phase := cfg.Spec.Duration / 3

	ex.arm(startup, func() {
		enclave, err := ex.proc.OpenEnclave(basePages)
		if err != nil {
			ex.finish(err)
			return
		}
		// Phase 1: steady baseline.
		ex.arm(phase, func() {
			// Phase 2: burst to peak through the driver-mediated EAUG;
			// denial (limit enforcement) kills the job like an EINIT
			// denial would.
			if burstPages > 0 {
				if err := driver.IoctlAugmentPages(enclave, burstPages); err != nil {
					ex.finish(err)
					return
				}
			}
			ex.arm(phase, func() {
				// Phase 3: trim back to baseline and run out the clock.
				if burstPages > 0 {
					if _, err := driver.IoctlTrimPages(enclave, burstPages); err != nil {
						ex.finish(err)
						return
					}
				}
				ex.arm(cfg.Spec.Duration-2*phase, func() { ex.finish(nil) })
			})
		})
	})
}
