package stress

import (
	"errors"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/isgx"
	"github.com/sgxorch/sgxorch/internal/machine"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/sgx"
)

func sgx2Machine(opts ...isgx.Option) *machine.Machine {
	return machine.New("sgx2-1", 8*resource.GiB, 8000,
		machine.WithSGX2(sgx.DefaultGeometry(), opts...))
}

func TestDynamicEPCRampProfile(t *testing.T) {
	clk := clock.NewSim()
	r := NewRunner(clk, sgx.CostModel{})
	m := sgx2Machine()
	cg := "/kubepods/dyn"

	peak := 24 * resource.MiB
	base := 12 * resource.MiB
	done := false
	_, err := r.Run(Config{
		Machine:    m,
		CgroupPath: cg,
		Spec: api.WorkloadSpec{
			Kind:       api.WorkloadStressEPCDynamic,
			Duration:   90 * time.Second,
			AllocBytes: peak,
			BaseBytes:  base,
		},
		OnFinished: func(err error) {
			if err != nil {
				t.Errorf("finish err = %v", err)
			}
			done = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	basePages := resource.PagesForBytes(base)
	peakPages := resource.PagesForBytes(peak)

	// Phase 1 (after startup): baseline committed.
	clk.Advance(2 * time.Second)
	if got := m.EPCPagesByCgroup(cg); got != basePages {
		t.Fatalf("phase 1 pages = %d, want %d", got, basePages)
	}
	// Phase 2 (middle third): burst to peak.
	clk.Advance(40 * time.Second)
	if got := m.EPCPagesByCgroup(cg); got != peakPages {
		t.Fatalf("phase 2 pages = %d, want %d", got, peakPages)
	}
	// Phase 3 (final third): trimmed back to baseline.
	clk.Advance(30 * time.Second)
	if got := m.EPCPagesByCgroup(cg); got != basePages {
		t.Fatalf("phase 3 pages = %d, want %d", got, basePages)
	}
	// Completion: everything released.
	clk.Advance(30 * time.Second)
	if !done {
		t.Fatal("workload did not finish")
	}
	if got := m.Driver().FreePages(); got != 23936 {
		t.Fatalf("EPC leaked: free = %d", got)
	}
}

func TestDynamicEPCBurstDeniedByLimit(t *testing.T) {
	clk := clock.NewSim()
	r := NewRunner(clk, sgx.CostModel{})
	m := sgx2Machine()
	cg := "/kubepods/dyn"
	// Limit covers the baseline but not the burst: the §VI-G enforcement
	// port kills the job at EAUG time.
	if err := m.Driver().IoctlSetLimit(cg, resource.PagesForBytes(12*resource.MiB)); err != nil {
		t.Fatal(err)
	}
	var finishErr error
	_, err := r.Run(Config{
		Machine:    m,
		CgroupPath: cg,
		Spec: api.WorkloadSpec{
			Kind:       api.WorkloadStressEPCDynamic,
			Duration:   90 * time.Second,
			AllocBytes: 24 * resource.MiB,
			BaseBytes:  12 * resource.MiB,
		},
		OnFinished: func(err error) { finishErr = err },
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	if !errors.Is(finishErr, isgx.ErrEnclaveDenied) {
		t.Fatalf("finish err = %v, want ErrEnclaveDenied", finishErr)
	}
	if got := m.Driver().FreePages(); got != 23936 {
		t.Fatalf("killed burst leaked EPC: free = %d", got)
	}
}

func TestDynamicEPCDefaultBaseline(t *testing.T) {
	clk := clock.NewSim()
	r := NewRunner(clk, sgx.CostModel{})
	m := sgx2Machine()
	cg := "/kubepods/dyn"
	_, err := r.Run(Config{
		Machine:    m,
		CgroupPath: cg,
		Spec: api.WorkloadSpec{
			Kind:       api.WorkloadStressEPCDynamic,
			Duration:   30 * time.Second,
			AllocBytes: 20 * resource.MiB,
			// BaseBytes zero: defaults to half the peak.
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if got := m.EPCPagesByCgroup(cg); got != resource.PagesForBytes(10*resource.MiB) {
		t.Fatalf("default baseline pages = %d", got)
	}
}

func TestDynamicEPCRequiresSGX2(t *testing.T) {
	clk := clock.NewSim()
	r := NewRunner(clk, sgx.CostModel{})
	m := sgxMachine() // SGX 1
	_, err := r.Run(Config{
		Machine: m,
		Spec: api.WorkloadSpec{
			Kind:       api.WorkloadStressEPCDynamic,
			Duration:   time.Minute,
			AllocBytes: resource.MiB,
		},
	})
	if !errors.Is(err, sgx.ErrSGX1Only) {
		t.Fatalf("err = %v, want ErrSGX1Only", err)
	}
	plain := machine.New("plain", resource.GiB, 1000)
	if _, err := r.Run(Config{
		Machine: plain,
		Spec:    api.WorkloadSpec{Kind: api.WorkloadStressEPCDynamic, AllocBytes: 1},
	}); !errors.Is(err, machine.ErrNoSGX) {
		t.Fatalf("non-SGX err = %v", err)
	}
}
