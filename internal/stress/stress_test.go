package stress

import (
	"errors"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/isgx"
	"github.com/sgxorch/sgxorch/internal/machine"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/sgx"
)

func sgxMachine(opts ...isgx.Option) *machine.Machine {
	return machine.New("sgx-1", 8*resource.GiB, 8000,
		machine.WithSGX(sgx.DefaultGeometry(), opts...))
}

func TestVMWorkloadLifecycle(t *testing.T) {
	clk := clock.NewSim()
	r := NewRunner(clk, sgx.CostModel{})
	m := machine.New("std-1", 64*resource.GiB, 8000)

	var started bool
	var finishErr error
	finished := false
	ex, err := r.Run(Config{
		Machine:    m,
		CgroupPath: "/kubepods/pod-1",
		Spec: api.WorkloadSpec{
			Kind:       api.WorkloadStressVM,
			Duration:   time.Minute,
			AllocBytes: resource.GiB,
		},
		OnStarted:  func() { started = true },
		OnFinished: func(err error) { finished = true; finishErr = err },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !started {
		t.Fatal("OnStarted not called at launch")
	}

	// After startup (<1 ms), the working set is allocated.
	clk.Advance(time.Millisecond)
	if got := m.RAMUsed(); got != resource.GiB {
		t.Fatalf("RAMUsed after startup = %d, want 1 GiB", got)
	}

	// Before the duration elapses the workload holds its memory.
	clk.Advance(30 * time.Second)
	if ex.Finished() {
		t.Fatal("finished too early")
	}

	clk.Advance(time.Minute)
	if !finished || finishErr != nil {
		t.Fatalf("finished = %v, err = %v", finished, finishErr)
	}
	if got := m.RAMUsed(); got != 0 {
		t.Fatalf("RAM leaked after completion: %d", got)
	}
}

func TestEPCWorkloadStartupLatency(t *testing.T) {
	clk := clock.NewSim()
	cost := sgx.DefaultCostModel()
	r := NewRunner(clk, cost)
	m := sgxMachine()

	allocBytes := 32 * resource.MiB
	var finishedAt time.Time
	_, err := r.Run(Config{
		Machine:    m,
		CgroupPath: "/kubepods/pod-1",
		Spec: api.WorkloadSpec{
			Kind:       api.WorkloadStressEPC,
			Duration:   10 * time.Second,
			AllocBytes: allocBytes,
		},
		OnFinished: func(error) { finishedAt = clk.Now() },
	})
	if err != nil {
		t.Fatal(err)
	}

	startup := cost.StartupLatency(allocBytes, m.SGX().Geometry().UsableBytes())

	// Just before the startup completes, no EPC is committed.
	clk.Advance(startup - time.Millisecond)
	if got := m.Driver().FreePages(); got != 23936 {
		t.Fatalf("EPC committed before startup finished: free = %d", got)
	}
	// Right after, the enclave holds its pages.
	clk.Advance(2 * time.Millisecond)
	wantPages := resource.PagesForBytes(allocBytes)
	if got := m.Driver().FreePages(); got != 23936-wantPages {
		t.Fatalf("free = %d, want %d", got, 23936-wantPages)
	}

	clk.Advance(time.Hour)
	wantFinish := clock.SimEpoch.Add(startup + 10*time.Second)
	// finish fires at startup+duration (±1ms from the stepped advance).
	if finishedAt.Before(wantFinish.Add(-2*time.Millisecond)) || finishedAt.After(wantFinish.Add(2*time.Millisecond)) {
		t.Fatalf("finishedAt = %v, want ~%v", finishedAt, wantFinish)
	}
	if got := m.Driver().FreePages(); got != 23936 {
		t.Fatalf("EPC leaked: free = %d", got)
	}
}

func TestEPCWorkloadDeniedByLimit(t *testing.T) {
	clk := clock.NewSim()
	r := NewRunner(clk, sgx.CostModel{})
	m := sgxMachine()
	cg := "/kubepods/pod-malicious"
	// Pod advertised 1 page (§VI-F malicious modus operandi).
	if err := m.Driver().IoctlSetLimit(cg, 1); err != nil {
		t.Fatal(err)
	}

	var finishErr error
	_, err := r.Run(Config{
		Machine:    m,
		CgroupPath: cg,
		Spec: api.WorkloadSpec{
			Kind:       api.WorkloadStressEPC,
			Duration:   time.Hour,
			AllocBytes: m.SGX().Geometry().UsableBytes() / 2,
		},
		OnFinished: func(err error) { finishErr = err },
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	if !errors.Is(finishErr, isgx.ErrEnclaveDenied) {
		t.Fatalf("finish err = %v, want ErrEnclaveDenied", finishErr)
	}
	if got := m.Driver().FreePages(); got != 23936 {
		t.Fatalf("denied workload leaked EPC: free = %d", got)
	}
	if got := m.ProcessCount(); got != 0 {
		t.Fatalf("denied workload left process: %d", got)
	}
}

func TestEPCWorkloadOnNonSGXMachineRejected(t *testing.T) {
	clk := clock.NewSim()
	r := NewRunner(clk, sgx.CostModel{})
	m := machine.New("std-1", 64*resource.GiB, 8000)
	_, err := r.Run(Config{
		Machine: m,
		Spec:    api.WorkloadSpec{Kind: api.WorkloadStressEPC, AllocBytes: 1},
	})
	if !errors.Is(err, machine.ErrNoSGX) {
		t.Fatalf("err = %v, want ErrNoSGX", err)
	}
}

func TestVMWorkloadOOMKilled(t *testing.T) {
	clk := clock.NewSim()
	r := NewRunner(clk, sgx.CostModel{})
	m := machine.New("tiny", resource.MiB, 1000)
	var finishErr error
	_, err := r.Run(Config{
		Machine: m,
		Spec: api.WorkloadSpec{
			Kind:       api.WorkloadStressVM,
			Duration:   time.Minute,
			AllocBytes: 2 * resource.MiB,
		},
		OnFinished: func(err error) { finishErr = err },
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if !errors.Is(finishErr, machine.ErrOutOfMemory) {
		t.Fatalf("finish err = %v, want ErrOutOfMemory", finishErr)
	}
	if got := m.RAMUsed(); got != 0 {
		t.Fatalf("OOM-killed workload leaked RAM: %d", got)
	}
}

func TestSleepWorkload(t *testing.T) {
	clk := clock.NewSim()
	r := NewRunner(clk, sgx.CostModel{})
	m := machine.New("n", resource.GiB, 1000)
	done := false
	_, err := r.Run(Config{
		Machine:    m,
		Spec:       api.WorkloadSpec{Kind: api.WorkloadSleep, Duration: 5 * time.Second},
		OnFinished: func(error) { done = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(4 * time.Second)
	if done {
		t.Fatal("sleep finished early")
	}
	clk.Advance(2 * time.Second)
	if !done {
		t.Fatal("sleep did not finish")
	}
}

func TestAbort(t *testing.T) {
	clk := clock.NewSim()
	r := NewRunner(clk, sgx.CostModel{})
	m := machine.New("n", resource.GiB, 1000)
	var finishErr error
	calls := 0
	ex, err := r.Run(Config{
		Machine:    m,
		Spec:       api.WorkloadSpec{Kind: api.WorkloadSleep, Duration: time.Hour},
		OnFinished: func(err error) { calls++; finishErr = err },
	})
	if err != nil {
		t.Fatal(err)
	}
	ex.Abort()
	if !errors.Is(finishErr, ErrAborted) {
		t.Fatalf("finish err = %v, want ErrAborted", finishErr)
	}
	// Idempotent, and the pending timer must not fire afterwards.
	ex.Abort()
	clk.Advance(2 * time.Hour)
	if calls != 1 {
		t.Fatalf("OnFinished called %d times, want 1", calls)
	}
	if !ex.Finished() {
		t.Fatal("Finished = false after abort")
	}
}

func TestUnknownWorkloadKind(t *testing.T) {
	clk := clock.NewSim()
	r := NewRunner(clk, sgx.CostModel{})
	m := machine.New("n", resource.GiB, 1000)
	if _, err := r.Run(Config{Machine: m, Spec: api.WorkloadSpec{Kind: 0}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if got := m.ProcessCount(); got != 0 {
		t.Fatalf("leaked process on unknown kind: %d", got)
	}
}

func TestNilMachine(t *testing.T) {
	r := NewRunner(clock.NewSim(), sgx.CostModel{})
	if _, err := r.Run(Config{}); err == nil {
		t.Fatal("nil machine accepted")
	}
}

func TestDefaultCostModelApplied(t *testing.T) {
	r := NewRunner(clock.NewSim(), sgx.CostModel{})
	if r.CostModel() != sgx.DefaultCostModel() {
		t.Fatal("zero cost model not defaulted")
	}
}
