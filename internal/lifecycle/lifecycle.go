// Package lifecycle derives per-workload-class latency distributions
// from the API server's pod event stream: how long pods queue before a
// scheduler binds them (submit→bind), how long kubelet admission and
// deployment take after that (bind→run), end-to-end time to first run
// (submit→run), and how long they then hold their node (run→finish).
//
// The tracker is a pure watch consumer — it subscribes like a kubelet
// and reads only the timestamps the server stamps on the pod clones it
// publishes (Status.SubmittedAt/ScheduledAt/StartedAt/FinishedAt), so
// the measured latencies are exact simulation-clock durations and the
// orchestrator's own paths carry no extra bookkeeping. Histogram totals
// are therefore checkable against the event stream itself: every
// PodBound event contributes exactly one submit→bind sample, every
// first transition to Running exactly one bind→run and one submit→run
// sample (a property test in the cluster package holds this identity
// across random workloads).
package lifecycle

import (
	"sync"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/telemetry"
)

// latencyBuckets cover simulated lifecycle latencies: sub-second same-
// tick binds through hour-scale backlog waits.
var latencyBuckets = []float64{
	0.5, 1, 2.5, 5, 10, 15, 30, 60, 120, 300, 600, 1800, 3600,
}

// classes are the fixed label values, indexed like api's class set.
var classes = []api.WorkloadClass{
	api.ClassUnspecified, api.ClassLatencySensitive, api.ClassBatch, api.ClassBestEffort,
}

func classIndex(c api.WorkloadClass) int {
	for i, k := range classes {
		if k == c {
			return i
		}
	}
	return 0
}

func classLabel(c api.WorkloadClass) string {
	if c == api.ClassUnspecified {
		return "unclassified"
	}
	return string(c)
}

// Tracker consumes pod watch events and feeds the per-class lifecycle
// histograms. One tracker per cluster; attach with Track.
type Tracker struct {
	queue   [4]*telemetry.Histogram // lifecycle_queue_seconds{class}
	startup [4]*telemetry.Histogram // lifecycle_startup_seconds{class}
	total   [4]*telemetry.Histogram // lifecycle_submit_to_run_seconds{class}
	run     [4]*telemetry.Histogram // lifecycle_run_seconds{class}

	binds   *telemetry.Counter // lifecycle_binds_observed_total
	runs    *telemetry.Counter // lifecycle_runs_observed_total
	resyncs *telemetry.Counter // lifecycle_resyncs_total

	mu sync.Mutex
	// running marks pods whose first transition to Running was observed,
	// so repeated status updates in the Running phase cannot double-count
	// startup samples. Entries leave on terminal or requeue events, so
	// the set is bounded by live pods.
	running map[string]bool

	unsubscribe func()
}

// New creates a tracker publishing into the registry. Returns nil on a
// nil registry — a nil tracker's methods are no-ops, so telemetry-off
// clusters skip the subscription entirely.
func New(reg *telemetry.Registry) *Tracker {
	if reg == nil {
		return nil
	}
	t := &Tracker{
		binds:   reg.Counter("lifecycle_binds_observed_total"),
		runs:    reg.Counter("lifecycle_runs_observed_total"),
		resyncs: reg.Counter("lifecycle_resyncs_total"),
		running: make(map[string]bool),
	}
	queue := reg.HistogramVec("lifecycle_queue_seconds", "class", latencyBuckets)
	startup := reg.HistogramVec("lifecycle_startup_seconds", "class", latencyBuckets)
	total := reg.HistogramVec("lifecycle_submit_to_run_seconds", "class", latencyBuckets)
	run := reg.HistogramVec("lifecycle_run_seconds", "class", latencyBuckets)
	for i, c := range classes {
		l := classLabel(c)
		t.queue[i] = queue.With(l)
		t.startup[i] = startup.With(l)
		t.total[i] = total.With(l)
		t.run[i] = run.With(l)
	}
	return t
}

// Track subscribes the tracker to the server's pod event ring. In the
// default synchronous watch mode consumption is inline and lossless; in
// async mode a tracker that falls off the ring counts a resync and
// continues — the skipped interval's samples are lost, which the
// lifecycle_resyncs_total counter makes visible rather than silent.
func (t *Tracker) Track(srv *apiserver.Server) {
	if t == nil {
		return
	}
	t.unsubscribe = srv.SubscribePodEvents(t.Consume, func(apiserver.Snapshot) {
		t.resyncs.Inc()
	})
}

// Close detaches the tracker from its server.
func (t *Tracker) Close() {
	if t == nil || t.unsubscribe == nil {
		return
	}
	t.unsubscribe()
	t.unsubscribe = nil
}

// Consume folds a batch of pod events into the histograms. Exported so
// tests can drive the tracker with a synthetic event stream and check
// the histogram-total identities directly.
func (t *Tracker) Consume(evs []apiserver.WatchEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range evs {
		ev := &evs[i]
		if ev.Pod == nil {
			continue
		}
		p := ev.Pod
		ci := classIndex(p.Spec.WorkloadClass())
		switch ev.Type {
		case apiserver.PodBound:
			// One queue-wait sample per bind: a preempted pod that
			// requeues and binds again waited in the queue twice.
			t.binds.Inc()
			t.queue[ci].Observe(p.Status.ScheduledAt.Sub(p.Status.SubmittedAt).Seconds())
		case apiserver.PodUpdated:
			switch p.Status.Phase {
			case api.PodRunning:
				if t.running[p.Name] || p.Status.StartedAt.IsZero() {
					continue
				}
				t.running[p.Name] = true
				t.runs.Inc()
				t.startup[ci].Observe(p.Status.StartedAt.Sub(p.Status.ScheduledAt).Seconds())
				t.total[ci].Observe(p.Status.StartedAt.Sub(p.Status.SubmittedAt).Seconds())
			case api.PodPending:
				// Preemption requeued the pod: its next run is a fresh
				// lifecycle.
				delete(t.running, p.Name)
			case api.PodSucceeded, api.PodFailed:
				if t.running[p.Name] && !p.Status.FinishedAt.IsZero() && !p.Status.StartedAt.IsZero() {
					t.run[ci].Observe(p.Status.FinishedAt.Sub(p.Status.StartedAt).Seconds())
				}
				delete(t.running, p.Name)
			}
		}
	}
}

// BindsObserved returns how many PodBound events the tracker consumed —
// the exact expected Count of the lifecycle_queue_seconds histograms.
func (t *Tracker) BindsObserved() int64 {
	if t == nil {
		return 0
	}
	return t.binds.Value()
}

// RunsObserved returns how many first-run transitions the tracker
// consumed — the exact expected Count of the startup and submit-to-run
// histograms.
func (t *Tracker) RunsObserved() int64 {
	if t == nil {
		return 0
	}
	return t.runs.Value()
}
