package lifecycle

import (
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/telemetry"
)

func event(typ apiserver.WatchEventType, pod *api.Pod) apiserver.WatchEvent {
	return apiserver.WatchEvent{Type: typ, Pod: pod}
}

// lifecyclePod builds a pod clone the way the server publishes them: all
// lifecycle timestamps stamped relative to an epoch.
func lifecyclePod(name string, class api.WorkloadClass, phase api.PodPhase, submitted, scheduled, started, finished time.Duration) *api.Pod {
	epoch := time.Unix(0, 0).UTC()
	stamp := func(d time.Duration) time.Time {
		if d < 0 {
			return time.Time{}
		}
		return epoch.Add(d)
	}
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{Class: class},
		Status: api.PodStatus{
			Phase:       phase,
			SubmittedAt: stamp(submitted),
			ScheduledAt: stamp(scheduled),
			StartedAt:   stamp(started),
			FinishedAt:  stamp(finished),
		},
	}
}

// TestTrackerLifecycleSamples drives a synthetic event stream through
// every branch of Consume and checks the histogram samples: one queue
// sample per bind, one startup/total sample per first run, duplicate
// Running updates ignored, preemption requeues starting a fresh cycle,
// and a run-duration sample on terminal transitions.
func TestTrackerLifecycleSamples(t *testing.T) {
	reg := telemetry.New()
	tr := New(reg)

	// Bind at 10s (submitted at 0), run at 12s, duplicate Running update,
	// finish at 72s.
	tr.Consume([]apiserver.WatchEvent{
		event(apiserver.PodBound, lifecyclePod("a", api.ClassBatch, api.PodPending, 0, 10*time.Second, -1, -1)),
		event(apiserver.PodUpdated, lifecyclePod("a", api.ClassBatch, api.PodRunning, 0, 10*time.Second, 12*time.Second, -1)),
		event(apiserver.PodUpdated, lifecyclePod("a", api.ClassBatch, api.PodRunning, 0, 10*time.Second, 12*time.Second, -1)),
		event(apiserver.PodUpdated, lifecyclePod("a", api.ClassBatch, api.PodSucceeded, 0, 10*time.Second, 12*time.Second, 72*time.Second)),
	})
	queue := reg.HistogramVec("lifecycle_queue_seconds", "class", nil).With("batch")
	startup := reg.HistogramVec("lifecycle_startup_seconds", "class", nil).With("batch")
	run := reg.HistogramVec("lifecycle_run_seconds", "class", nil).With("batch")
	if queue.Count() != 1 || queue.Sum() != 10 {
		t.Fatalf("queue histogram = (%d, %v), want (1, 10)", queue.Count(), queue.Sum())
	}
	if startup.Count() != 1 || startup.Sum() != 2 {
		t.Fatalf("startup histogram = (%d, %v), want (1, 2) — duplicate Running must not double-count", startup.Count(), startup.Sum())
	}
	if run.Count() != 1 || run.Sum() != 60 {
		t.Fatalf("run histogram = (%d, %v), want (1, 60)", run.Count(), run.Sum())
	}

	// A preempted pod: bind, run, requeue to Pending, bind and run again —
	// two full cycles, each sampled.
	tr.Consume([]apiserver.WatchEvent{
		event(apiserver.PodBound, lifecyclePod("b", api.ClassBestEffort, api.PodPending, 0, 5*time.Second, -1, -1)),
		event(apiserver.PodUpdated, lifecyclePod("b", api.ClassBestEffort, api.PodRunning, 0, 5*time.Second, 6*time.Second, -1)),
		event(apiserver.PodUpdated, lifecyclePod("b", api.ClassBestEffort, api.PodPending, 0, 5*time.Second, -1, -1)),
		event(apiserver.PodBound, lifecyclePod("b", api.ClassBestEffort, api.PodPending, 0, 30*time.Second, -1, -1)),
		event(apiserver.PodUpdated, lifecyclePod("b", api.ClassBestEffort, api.PodRunning, 0, 30*time.Second, 33*time.Second, -1)),
	})
	beQueue := reg.HistogramVec("lifecycle_queue_seconds", "class", nil).With("best-effort")
	beStartup := reg.HistogramVec("lifecycle_startup_seconds", "class", nil).With("best-effort")
	if beQueue.Count() != 2 {
		t.Fatalf("preempted pod queue samples = %d, want 2 (one per bind)", beQueue.Count())
	}
	if beStartup.Count() != 2 {
		t.Fatalf("preempted pod startup samples = %d, want 2 (requeue resets the cycle)", beStartup.Count())
	}
	if tr.BindsObserved() != 3 || tr.RunsObserved() != 3 {
		t.Fatalf("observed = (%d, %d), want (3, 3)", tr.BindsObserved(), tr.RunsObserved())
	}

	// Running updates without a StartedAt stamp are not yet runs; events
	// without pods are skipped.
	tr.Consume([]apiserver.WatchEvent{
		event(apiserver.PodUpdated, lifecyclePod("c", api.ClassBatch, api.PodRunning, 0, 5*time.Second, -1, -1)),
		{Type: apiserver.PodUpdated},
	})
	if tr.RunsObserved() != 3 {
		t.Fatalf("unstarted Running counted as a run: %d", tr.RunsObserved())
	}
}

// TestTrackerNilSafety: a nil registry yields a nil tracker whose whole
// surface is a no-op — the telemetry-off wiring path.
func TestTrackerNilSafety(t *testing.T) {
	tr := New(nil)
	if tr != nil {
		t.Fatal("New(nil) must return a nil tracker")
	}
	tr.Track(nil)
	tr.Consume([]apiserver.WatchEvent{{Type: apiserver.PodBound}})
	tr.Close()
	if tr.BindsObserved() != 0 || tr.RunsObserved() != 0 {
		t.Fatal("nil tracker reported observations")
	}
}

// TestTrackerUnclassifiedLabel: pods without a class land under the
// "unclassified" label, never an empty label value.
func TestTrackerUnclassifiedLabel(t *testing.T) {
	reg := telemetry.New()
	tr := New(reg)
	tr.Consume([]apiserver.WatchEvent{
		event(apiserver.PodBound, lifecyclePod("u", api.ClassUnspecified, api.PodPending, 0, time.Second, -1, -1)),
	})
	if got := reg.HistogramVec("lifecycle_queue_seconds", "class", nil).With("unclassified").Count(); got != 1 {
		t.Fatalf("unclassified queue samples = %d, want 1", got)
	}
	if got := reg.HistogramVec("lifecycle_queue_seconds", "class", nil).With("").Count(); got != 0 {
		t.Fatalf("empty-label series has %d samples, want 0", got)
	}
}
