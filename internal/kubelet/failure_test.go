package kubelet

import (
	"strings"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/resource"
)

func TestEvictRunningPodReleasesResources(t *testing.T) {
	f := newFixture(t, true)
	pod := sgxPod("victim", 2560, 10*resource.MiB, time.Hour)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind("victim", "sgx-1"); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(2 * time.Second)
	if got := f.mach.Driver().FreePages(); got == 23936 {
		t.Fatal("workload not running before eviction")
	}

	if err := f.srv.Evict("victim", "node maintenance"); err != nil {
		t.Fatal(err)
	}
	p, _ := f.srv.GetPod("victim")
	if p.Status.Phase != api.PodFailed || !strings.Contains(p.Status.Reason, "Evicted") {
		t.Fatalf("status = %+v", p.Status)
	}
	// The kubelet reacted: enclave destroyed, devices and limits freed.
	if got := f.mach.Driver().FreePages(); got != 23936 {
		t.Fatalf("eviction leaked EPC: free = %d", got)
	}
	if got := f.kl.Plugin().FreeDevices(); got != 23936 {
		t.Fatalf("eviction leaked devices: %d", got)
	}
	if got := f.mach.ProcessCount(); got != 0 {
		t.Fatalf("eviction leaked processes: %d", got)
	}
	// Time can keep flowing without stray callbacks resurrecting it.
	f.clk.Advance(2 * time.Hour)
	p, _ = f.srv.GetPod("victim")
	if p.Status.Phase != api.PodFailed {
		t.Fatalf("phase mutated after eviction: %s", p.Status.Phase)
	}
}

func TestEvictPendingPod(t *testing.T) {
	f := newFixture(t, false)
	pod := vmPod("queued", resource.GiB, resource.GiB, time.Minute)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Evict("queued", "quota exceeded"); err != nil {
		t.Fatal(err)
	}
	if got := f.srv.PendingCount(); got != 0 {
		t.Fatalf("evicted pod still pending: %d", got)
	}
}

func TestNodeDrainMarksNotReadyAndFailsPods(t *testing.T) {
	f := newFixture(t, true)
	pod := sgxPod("long-job", 2560, 10*resource.MiB, time.Hour)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind("long-job", "sgx-1"); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(2 * time.Second)

	f.kl.Stop()
	node, err := f.srv.GetNode("sgx-1")
	if err != nil {
		t.Fatal(err)
	}
	if node.Ready {
		t.Fatal("drained node still Ready")
	}
	p, _ := f.srv.GetPod("long-job")
	if p.Status.Phase != api.PodFailed {
		t.Fatalf("pod on drained node = %s, want Failed", p.Status.Phase)
	}
	if got := f.mach.RAMUsed(); got != 0 {
		t.Fatalf("drain leaked RAM: %d", got)
	}
}
