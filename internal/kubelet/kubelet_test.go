package kubelet

import (
	"strings"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/machine"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/sgx"
)

type fixture struct {
	clk  *clock.Sim
	srv  *apiserver.Server
	mach *machine.Machine
	kl   *Kubelet
}

func newFixture(t *testing.T, sgxNode bool, opts ...Option) *fixture {
	return newFixtureAdmission(t, sgxNode, apiserver.AdmitGuarded, opts...)
}

// newFixtureAdmission builds a fixture with an explicit bind-admission
// mode. Tests that simulate buggy schedulers (binding past capacity or
// onto incompatible hardware) use AdmitNone so the kubelet's
// defense-in-depth admission is still the layer under test.
func newFixtureAdmission(t *testing.T, sgxNode bool, mode apiserver.Admission, opts ...Option) *fixture {
	t.Helper()
	clk := clock.NewSim()
	srv := apiserver.New(clk, apiserver.WithAdmission(mode))
	var mach *machine.Machine
	if sgxNode {
		mach = machine.New("sgx-1", 8*resource.GiB, 8000, machine.WithSGX(sgx.DefaultGeometry()))
	} else {
		mach = machine.New("std-1", 64*resource.GiB, 8000)
	}
	kl := New(clk, srv, mach, opts...)
	if err := kl.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(kl.Stop)
	return &fixture{clk: clk, srv: srv, mach: mach, kl: kl}
}

func sgxPod(name string, pages int64, alloc int64, dur time.Duration) *api.Pod {
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{
			SchedulerName: "sgx-binpack",
			Containers: []api.Container{{
				Name: "main",
				Resources: api.Requirements{
					Requests: resource.List{resource.Memory: 64 * resource.MiB, resource.EPCPages: pages},
					Limits:   resource.List{resource.EPCPages: pages},
				},
				Workload: api.WorkloadSpec{Kind: api.WorkloadStressEPC, Duration: dur, AllocBytes: alloc},
			}},
		},
	}
}

func vmPod(name string, reqBytes, allocBytes int64, dur time.Duration) *api.Pod {
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{
			Containers: []api.Container{{
				Name:      "main",
				Resources: api.Requirements{Requests: resource.List{resource.Memory: reqBytes}},
				Workload:  api.WorkloadSpec{Kind: api.WorkloadStressVM, Duration: dur, AllocBytes: allocBytes},
			}},
		},
	}
}

func TestStartRegistersNodeWithEPCResources(t *testing.T) {
	f := newFixture(t, true)
	node, err := f.srv.GetNode("sgx-1")
	if err != nil {
		t.Fatal(err)
	}
	if got := node.Allocatable.Get(resource.EPCPages); got != 23936 {
		t.Fatalf("allocatable EPC pages = %d, want 23936", got)
	}
	if !node.HasSGX() || !node.Ready {
		t.Fatalf("node = %+v", node)
	}
	if err := f.kl.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
}

func TestStartNonSGXNodeHasNoEPC(t *testing.T) {
	f := newFixture(t, false)
	node, err := f.srv.GetNode("std-1")
	if err != nil {
		t.Fatal(err)
	}
	if node.HasSGX() {
		t.Fatal("non-SGX node advertises EPC")
	}
	if f.kl.Plugin() != nil {
		t.Fatal("plugin detected on non-SGX machine")
	}
}

func TestUnschedulableOption(t *testing.T) {
	f := newFixture(t, false, WithUnschedulable())
	node, _ := f.srv.GetNode("std-1")
	if !node.Unschedulable {
		t.Fatal("master node not marked unschedulable")
	}
}

func TestPodFullLifecycle(t *testing.T) {
	f := newFixture(t, true)
	pod := sgxPod("job-1", 2560, 10*resource.MiB, 60*time.Second)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind("job-1", "sgx-1"); err != nil {
		t.Fatal(err)
	}

	// Admission latency, then Running.
	f.clk.Advance(DefaultAdmissionLatency)
	p, _ := f.srv.GetPod("job-1")
	if p.Status.Phase != api.PodRunning {
		t.Fatalf("phase after admission = %s", p.Status.Phase)
	}

	// Device allocation and driver limit registered.
	if got := f.kl.Plugin().FreeDevices(); got != 23936-2560 {
		t.Fatalf("free devices = %d", got)
	}
	limit, ok := f.mach.Driver().LimitFor(p.CgroupPath())
	if !ok || limit != 2560 {
		t.Fatalf("driver limit = %d, %v", limit, ok)
	}

	// After SGX startup the enclave holds its pages.
	f.clk.Advance(time.Second)
	if got := f.mach.Driver().FreePages(); got != 23936-2560 {
		t.Fatalf("EPC free = %d, want %d", got, 23936-2560)
	}

	// Completion: phase Succeeded, resources released.
	f.clk.Advance(2 * time.Minute)
	p, _ = f.srv.GetPod("job-1")
	if p.Status.Phase != api.PodSucceeded {
		t.Fatalf("final phase = %s (%s)", p.Status.Phase, p.Status.Reason)
	}
	if got := f.kl.Plugin().FreeDevices(); got != 23936 {
		t.Fatalf("devices leaked: %d", got)
	}
	if got := f.mach.Driver().FreePages(); got != 23936 {
		t.Fatalf("EPC leaked: %d", got)
	}
	if _, ok := f.mach.Driver().LimitFor(p.CgroupPath()); ok {
		t.Fatal("driver limit not cleared")
	}
	w, _ := p.WaitingTime()
	if w != DefaultAdmissionLatency {
		t.Fatalf("waiting time = %v, want %v", w, DefaultAdmissionLatency)
	}
}

func TestMaliciousPodKilledByLimit(t *testing.T) {
	f := newFixture(t, true)
	// Declares 1 page, allocates half the EPC (§VI-F).
	pod := sgxPod("mal-1", 1, f.mach.SGX().Geometry().UsableBytes()/2, time.Hour)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind("mal-1", "sgx-1"); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(time.Minute)
	p, _ := f.srv.GetPod("mal-1")
	if p.Status.Phase != api.PodFailed {
		t.Fatalf("phase = %s, want Failed", p.Status.Phase)
	}
	if !strings.Contains(p.Status.Reason, "denied") {
		t.Fatalf("reason = %q", p.Status.Reason)
	}
	if got := f.mach.Driver().FreePages(); got != 23936 {
		t.Fatalf("EPC leaked by killed pod: %d", got)
	}
	if got := f.kl.Plugin().FreeDevices(); got != 23936 {
		t.Fatalf("devices leaked by killed pod: %d", got)
	}
}

func TestOutOfEPCAdmissionFails(t *testing.T) {
	// The API server's conditional bind would refuse the second binding
	// outright (ErrOutdated); disable it so the kubelet's own device
	// admission stays the layer under test.
	f := newFixtureAdmission(t, true, apiserver.AdmitNone)
	// Two pods whose requests together exceed the device pool; bind both
	// (simulating a buggy scheduler) — the second must fail admission.
	a := sgxPod("a", 20000, resource.MiB, time.Minute)
	b := sgxPod("b", 20000, resource.MiB, time.Minute)
	for _, p := range []*api.Pod{a, b} {
		if err := f.srv.CreatePod(p); err != nil {
			t.Fatal(err)
		}
		if err := f.srv.Bind(p.Name, "sgx-1"); err != nil {
			t.Fatal(err)
		}
	}
	f.clk.Advance(time.Second)
	pb, _ := f.srv.GetPod("b")
	if pb.Status.Phase != api.PodFailed || !strings.Contains(pb.Status.Reason, "OutOfEPC") {
		t.Fatalf("pod b = %s (%s)", pb.Status.Phase, pb.Status.Reason)
	}
	pa, _ := f.srv.GetPod("a")
	if pa.Status.Phase != api.PodRunning {
		t.Fatalf("pod a = %s", pa.Status.Phase)
	}
}

func TestSGXPodOnNonSGXNodeFails(t *testing.T) {
	// Admission off: the server would refuse the hardware mismatch before
	// the kubelet's "no SGX device plugin" failure path could run.
	f := newFixtureAdmission(t, false, apiserver.AdmitNone)
	pod := sgxPod("job-1", 100, resource.MiB, time.Minute)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind("job-1", "std-1"); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(time.Second)
	p, _ := f.srv.GetPod("job-1")
	if p.Status.Phase != api.PodFailed {
		t.Fatalf("phase = %s, want Failed", p.Status.Phase)
	}
}

func TestVMPodOverallocatingUnderUse(t *testing.T) {
	f := newFixture(t, false)
	// Advertises 1 GiB, actually uses 2 GiB — like the 44 over-allocating
	// Borg jobs (§VI-F); without enforcement on standard memory it runs.
	pod := vmPod("over-1", resource.GiB, 2*resource.GiB, 30*time.Second)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind("over-1", "std-1"); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(2 * time.Second)
	if got := f.mach.RAMUsed(); got != 2*resource.GiB {
		t.Fatalf("RAMUsed = %d, want actual usage 2 GiB", got)
	}
	f.clk.Advance(time.Minute)
	p, _ := f.srv.GetPod("over-1")
	if p.Status.Phase != api.PodSucceeded {
		t.Fatalf("phase = %s", p.Status.Phase)
	}
}

func TestPodWithNoWorkloadSucceedsImmediately(t *testing.T) {
	f := newFixture(t, false)
	pod := &api.Pod{Name: "empty", Spec: api.PodSpec{Containers: []api.Container{{Name: "noop"}}}}
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind("empty", "std-1"); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(time.Second)
	p, _ := f.srv.GetPod("empty")
	if p.Status.Phase != api.PodSucceeded {
		t.Fatalf("phase = %s", p.Status.Phase)
	}
}

func TestMultiContainerPodFailsTogether(t *testing.T) {
	f := newFixture(t, true)
	pod := &api.Pod{
		Name: "multi",
		Spec: api.PodSpec{
			Containers: []api.Container{
				{
					Name:      "good",
					Resources: api.Requirements{Requests: resource.List{resource.EPCPages: 100}},
					Workload:  api.WorkloadSpec{Kind: api.WorkloadStressEPC, Duration: time.Hour, AllocBytes: 100 * 4096},
				},
				{
					Name: "bad",
					// Allocates more EPC than the pod's total limit.
					Workload: api.WorkloadSpec{Kind: api.WorkloadStressEPC, Duration: time.Hour, AllocBytes: resource.MiB},
				},
			},
		},
	}
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind("multi", "sgx-1"); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(time.Minute)
	p, _ := f.srv.GetPod("multi")
	if p.Status.Phase != api.PodFailed {
		t.Fatalf("phase = %s, want Failed", p.Status.Phase)
	}
	// Both containers' resources must be fully released.
	if got := f.mach.Driver().FreePages(); got != 23936 {
		t.Fatalf("EPC leaked: %d", got)
	}
	if got := f.mach.ProcessCount(); got != 0 {
		t.Fatalf("processes leaked: %d", got)
	}
}

func TestPodStats(t *testing.T) {
	f := newFixture(t, true)
	pod := sgxPod("job-1", 2560, 10*resource.MiB, time.Hour)
	pod.Spec.Containers[0].Workload.AllocBytes = 10 * resource.MiB
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind("job-1", "sgx-1"); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(2 * time.Second) // admission + SGX startup
	stats := f.kl.PodStats()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].PodName != "job-1" {
		t.Fatalf("stat pod = %s", stats[0].PodName)
	}
	if stats[0].EPCBytes != 10*resource.MiB {
		t.Fatalf("EPCBytes = %d, want %d", stats[0].EPCBytes, 10*resource.MiB)
	}
}

func TestStopAbortsWorkloads(t *testing.T) {
	f := newFixture(t, false)
	pod := vmPod("long", resource.GiB, resource.GiB, 10*time.Hour)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind("long", "std-1"); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(2 * time.Second)
	if got := f.mach.RAMUsed(); got == 0 {
		t.Fatal("workload not running before Stop")
	}
	f.kl.Stop()
	if got := f.mach.RAMUsed(); got != 0 {
		t.Fatalf("Stop leaked RAM: %d", got)
	}
}

// TestPreemptedPodKilledAndReleased: a preemption (re-queue with the
// binding cleared) must abort the running workload and release its
// devices, without failing the pod.
func TestPreemptedPodKilledAndReleased(t *testing.T) {
	f := newFixture(t, true)
	pod := sgxPod("victim", 2000, 4*resource.MiB, time.Hour)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind("victim", "sgx-1"); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(5 * time.Second)
	total := f.kl.Plugin().DeviceCount()
	if got := f.kl.Plugin().FreeDevices(); got != total-2000 {
		t.Fatalf("devices before preemption = %d, want %d", got, total-2000)
	}

	if err := f.srv.Preempt("victim", "test"); err != nil {
		t.Fatal(err)
	}
	if got := f.kl.Plugin().FreeDevices(); got != total {
		t.Fatalf("devices after preemption = %d, want all %d released", got, total)
	}
	p, _ := f.srv.GetPod("victim")
	if p.Status.Phase != api.PodPending {
		t.Fatalf("preempted pod = %s, want Pending (not Failed)", p.Status.Phase)
	}
	if len(f.kl.PodStats()) != 0 {
		t.Fatal("kubelet still reports stats for the preempted pod")
	}
}

// TestSameInstantRebindAdmitsOnce: bind → preempt → re-bind to the same
// node within one simulated instant leaves two pending admissions with
// identical ScheduledAt stamps; only one may launch, and the duplicate
// must not corrupt device accounting by releasing the live pod's EPC.
func TestSameInstantRebindAdmitsOnce(t *testing.T) {
	f := newFixture(t, true)
	pod := sgxPod("flapper", 2000, 4*resource.MiB, 30*time.Second)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	// All three transitions at the same sim time: two admissions race.
	if err := f.srv.Bind("flapper", "sgx-1"); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Preempt("flapper", "flap"); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind("flapper", "sgx-1"); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(5 * time.Second)

	p, _ := f.srv.GetPod("flapper")
	if p.Status.Phase != api.PodRunning {
		t.Fatalf("pod = %s (%s), want Running", p.Status.Phase, p.Status.Reason)
	}
	total := f.kl.Plugin().DeviceCount()
	if got := f.kl.Plugin().FreeDevices(); got != total-2000 {
		t.Fatalf("devices while running = %d, want %d (duplicate admit corrupted accounting)", got, total-2000)
	}
	// The workload must still complete normally and return its devices.
	f.clk.Advance(2 * time.Minute)
	p, _ = f.srv.GetPod("flapper")
	if p.Status.Phase != api.PodSucceeded {
		t.Fatalf("pod = %s (%s), want Succeeded", p.Status.Phase, p.Status.Reason)
	}
	if got := f.kl.Plugin().FreeDevices(); got != total {
		t.Fatalf("devices after completion = %d, want %d", got, total)
	}
}
