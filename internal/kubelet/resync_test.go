package kubelet

import (
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
)

// detach disconnects the kubelet from the watch stream without draining
// the node — the test stand-in for a subscriber that fell off the
// broker ring and is about to be handed a resync snapshot.
func (f *fixture) detach() {
	f.kl.mu.Lock()
	unsub := f.kl.unsubscribe
	f.kl.unsubscribe = nil
	f.kl.mu.Unlock()
	if unsub != nil {
		unsub()
	}
}

// TestResyncAdmitsMissedBinding: a binding committed while the kubelet
// was off the watch stream is admitted on resync — the workload
// launches, devices are allocated, and the pod reaches Running.
func TestResyncAdmitsMissedBinding(t *testing.T) {
	f := newFixture(t, true)
	f.detach()

	pod := sgxPod("missed", 2000, 4*1024*1024, 30*time.Second)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind(pod.Name, f.kl.NodeName()); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(time.Second)
	if got, _ := f.srv.GetPod(pod.Name); got.Status.Phase != api.PodPending {
		t.Fatalf("pod admitted without any watch delivery: phase %s", got.Status.Phase)
	}

	f.kl.resync(f.srv.SnapshotNow())
	f.clk.Advance(DefaultAdmissionLatency)
	got, err := f.srv.GetPod(pod.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status.Phase != api.PodRunning {
		t.Fatalf("after resync, phase = %s, want Running", got.Status.Phase)
	}
	if _, ok := f.kl.Plugin().AllocationFor(got.CgroupPath()); !ok {
		t.Fatal("resync admission did not allocate EPC devices")
	}
}

// TestResyncKillsMissedEviction: a pod evicted while the kubelet was
// off the stream is torn down on resync — workload aborted, devices
// and driver limits released.
func TestResyncKillsMissedEviction(t *testing.T) {
	f := newFixture(t, true)
	pod := sgxPod("doomed", 2000, 4*1024*1024, time.Hour)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind(pod.Name, f.kl.NodeName()); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(time.Second)
	if got, _ := f.srv.GetPod(pod.Name); got.Status.Phase != api.PodRunning {
		t.Fatalf("setup: phase = %s, want Running", got.Status.Phase)
	}

	bound, err := f.srv.GetPod(pod.Name)
	if err != nil {
		t.Fatal(err)
	}
	f.detach()
	if err := f.srv.Evict(pod.Name, "missed"); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.kl.Plugin().AllocationFor(bound.CgroupPath()); !ok {
		t.Fatal("setup: devices should still be held (eviction event missed)")
	}

	f.kl.resync(f.srv.SnapshotNow())
	if _, ok := f.kl.Plugin().AllocationFor(bound.CgroupPath()); ok {
		t.Fatal("resync did not release the evicted pod's devices")
	}
	if stats := f.kl.PodStats(); len(stats) != 0 {
		t.Fatalf("resync left %d pods on the node, want 0", len(stats))
	}
}

// TestResyncIsIdempotentForLivePods: resyncing against a snapshot that
// matches local state must not relaunch or kill anything.
func TestResyncIsIdempotentForLivePods(t *testing.T) {
	f := newFixture(t, true)
	pod := sgxPod("steady", 1000, 2*1024*1024, time.Hour)
	if err := f.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Bind(pod.Name, f.kl.NodeName()); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(time.Second)

	f.kl.resync(f.srv.SnapshotNow())
	f.clk.Advance(DefaultAdmissionLatency + time.Second)
	got, err := f.srv.GetPod(pod.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status.Phase != api.PodRunning {
		t.Fatalf("idempotent resync broke the pod: phase %s (%s)", got.Status.Phase, got.Status.Reason)
	}
	if stats := f.kl.PodStats(); len(stats) != 1 {
		t.Fatalf("pod count after idempotent resync = %d, want 1", len(stats))
	}
}
