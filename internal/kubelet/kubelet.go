// Package kubelet is the per-node agent of the orchestrator substrate. It
// registers its machine as a cluster node (with EPC page resources
// advertised by the device plugin, §V-A), reacts to scheduler bindings by
// admitting pods, wires pod EPC limits into the modified SGX driver — the
// paper's 16-lines-of-Go / 22-lines-of-C Kubelet patch (§V-D) — launches
// the workloads, reports their completion, and serves per-pod usage
// statistics to the monitoring layer (§V-C).
package kubelet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/deviceplugin"
	"github.com/sgxorch/sgxorch/internal/machine"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/sgx"
	"github.com/sgxorch/sgxorch/internal/stress"
)

// DefaultAdmissionLatency models the container-runtime work between a
// binding and the workload launch (image pull, Docker start). Waiting
// times in §VI-E include this component.
const DefaultAdmissionLatency = 500 * time.Millisecond

// PodStat is one pod's live usage on this node, scraped by the monitoring
// layer.
type PodStat struct {
	PodName string
	// MemoryBytes is the standard memory in use (Heapster's metric).
	MemoryBytes int64
	// EPCBytes is the EPC in use, derived from driver page counts (the
	// SGX probe's metric).
	EPCBytes int64
}

// Kubelet is one node agent.
type Kubelet struct {
	clk    clock.Clock
	srv    *apiserver.Server
	mach   *machine.Machine
	runner *stress.Runner
	plugin *deviceplugin.SGXPlugin

	nodeName         string
	unschedulable    bool
	admissionLatency time.Duration

	mu          sync.Mutex
	pods        map[string]*podEntry
	unsubscribe func()
	started     bool
}

type podEntry struct {
	cgroup     string
	epcPages   int64
	executions []*stress.Execution
	remaining  int
	firstErr   error
}

// Option configures a Kubelet.
type Option func(*Kubelet)

// WithUnschedulable marks the node as excluded from scheduling (the
// Kubernetes master in the paper's cluster, §VI-A).
func WithUnschedulable() Option {
	return func(k *Kubelet) { k.unschedulable = true }
}

// WithAdmissionLatency overrides the binding-to-launch latency.
func WithAdmissionLatency(d time.Duration) Option {
	return func(k *Kubelet) { k.admissionLatency = d }
}

// WithCostModel overrides the SGX startup cost model used for workloads.
func WithCostModel(m sgx.CostModel) Option {
	return func(k *Kubelet) { k.runner = stress.NewRunner(k.clk, m) }
}

// New creates a kubelet for a machine. Call Start to join the cluster.
func New(clk clock.Clock, srv *apiserver.Server, mach *machine.Machine, opts ...Option) *Kubelet {
	k := &Kubelet{
		clk:              clk,
		srv:              srv,
		mach:             mach,
		nodeName:         mach.Name(),
		admissionLatency: DefaultAdmissionLatency,
		pods:             make(map[string]*podEntry),
	}
	k.runner = stress.NewRunner(clk, sgx.CostModel{})
	for _, o := range opts {
		o(k)
	}
	return k
}

// NodeName returns the node this kubelet manages.
func (k *Kubelet) NodeName() string { return k.nodeName }

// Machine returns the underlying machine (for probes and tests).
func (k *Kubelet) Machine() *machine.Machine { return k.mach }

// Plugin returns the node's SGX device plugin, or nil.
func (k *Kubelet) Plugin() *deviceplugin.SGXPlugin { return k.plugin }

// Start registers the node — running the device-plugin detection to
// advertise EPC page resources — and begins watching for bindings.
func (k *Kubelet) Start() error {
	k.mu.Lock()
	if k.started {
		k.mu.Unlock()
		return fmt.Errorf("kubelet %s: already started", k.nodeName)
	}
	k.started = true
	k.mu.Unlock()

	alloc := resource.List{
		resource.Memory: k.mach.RAMBytes(),
		resource.CPU:    k.mach.CPUMillis(),
	}
	// Device-plugin registration: "Kubelet notifies the master node about
	// the availability of an SGX resource on that node" (§V-A).
	if plugin, ok := deviceplugin.Detect(k.mach); ok {
		k.plugin = plugin
		alloc[resource.EPCPages] = plugin.DeviceCount()
	}
	node := &api.Node{
		Name:          k.nodeName,
		Capacity:      alloc.Clone(),
		Allocatable:   alloc,
		Ready:         true,
		Unschedulable: k.unschedulable,
	}
	if err := k.srv.RegisterNode(node); err != nil {
		return fmt.Errorf("kubelet %s: %w", k.nodeName, err)
	}
	// Pod events only: the kubelet reacts to bindings and terminations
	// and discards node events, so it rides the pod topic ring and never
	// pays batch volume (or eviction pressure) for node churn.
	k.unsubscribe = k.srv.SubscribePodEvents(k.onEvents, k.resync)
	return nil
}

// Stop drains the node: it detaches from the API server, marks the node
// NotReady so the scheduler stops placing pods here, and aborts running
// workloads (their pods fail, as on a node drain).
func (k *Kubelet) Stop() {
	k.mu.Lock()
	unsub := k.unsubscribe
	k.unsubscribe = nil
	wasStarted := k.started
	// Abort in pod-name order: the failure events a drain emits must be
	// deterministic for identical runs to replay identically.
	names := make([]string, 0, len(k.pods))
	for name := range k.pods {
		names = append(names, name)
	}
	sort.Strings(names)
	var running []*stress.Execution
	for _, name := range names {
		running = append(running, k.pods[name].executions...)
	}
	k.mu.Unlock()
	if unsub != nil {
		unsub()
	}
	if wasStarted {
		if node, err := k.srv.GetNode(k.nodeName); err == nil && node.Ready {
			node.Ready = false
			// UpdateNode only fails for unknown nodes, which Start
			// registered.
			_ = k.srv.UpdateNode(node)
		}
	}
	for _, ex := range running {
		ex.Abort()
	}
}

// onEvents is the watch broker's batch callback: consecutive events in
// resource-version order. The slice is reused by the broker; nothing
// here retains it.
func (k *Kubelet) onEvents(evs []apiserver.WatchEvent) {
	for i := range evs {
		k.onEvent(evs[i])
	}
}

// resync is the broker's ring-overflow recovery, reachable only on an
// async-watch server: the kubelet missed events, so it reconciles its
// local pod set against the snapshot — admitting bindings it never saw
// and killing workloads whose pods were terminated or preempted while
// it was behind. Delivery resumes with the first event after snap.Rev.
func (k *Kubelet) resync(snap apiserver.Snapshot) {
	desired := make(map[string]*api.Pod)
	for _, p := range snap.Pods {
		if p.Spec.NodeName == k.nodeName && !p.IsTerminal() {
			desired[p.Name] = p
		}
	}
	k.mu.Lock()
	var staleExec []*stress.Execution
	for name, entry := range k.pods {
		if _, ok := desired[name]; ok {
			continue
		}
		// Same atomic remove+release discipline as the eviction event
		// path (see onEvent); in-flight launches detect the removal by
		// entry identity.
		delete(k.pods, name)
		staleExec = append(staleExec, entry.executions...)
		k.releaseLocked(entry)
	}
	launched := make(map[string]bool, len(k.pods))
	for name := range k.pods {
		launched[name] = true
	}
	k.mu.Unlock()
	for _, ex := range staleExec {
		ex.Abort()
	}
	// Sorted for deterministic admission order; admit re-validates
	// against authoritative state, so a pod that moved on since the
	// snapshot is skipped there.
	names := make([]string, 0, len(desired))
	for name := range desired {
		if !launched[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		pod := desired[name]
		k.clk.AfterFunc(k.admissionLatency, func() { k.admit(pod) })
	}
}

func (k *Kubelet) onEvent(ev apiserver.WatchEvent) {
	if ev.Pod == nil {
		return
	}
	switch ev.Type {
	case apiserver.PodBound:
		if ev.Pod.Spec.NodeName != k.nodeName {
			return
		}
		pod := ev.Pod
		// Container-runtime latency before the workload launches.
		k.clk.AfterFunc(k.admissionLatency, func() { k.admit(pod) })
	case apiserver.PodUpdated:
		// External terminal transitions (eviction) and preemptions (the
		// pod re-queued with its binding cleared) kill the local workload
		// and release its resources. A preempted pod no longer names this
		// node, so the match is on the locally admitted entry; updates for
		// pods this kubelet never admitted are no-ops, as are
		// self-reported completions (already deregistered).
		if !ev.Pod.IsTerminal() && ev.Pod.Spec.NodeName == k.nodeName {
			return
		}
		k.mu.Lock()
		entry, ok := k.pods[ev.Pod.Name]
		var executions []*stress.Execution
		if ok {
			// Remove and release atomically: an entry's device
			// allocation exists exactly while the entry is in k.pods, so
			// this can never free an allocation a newer admission of the
			// same pod (same cgroup) holds. The admission's launch loop
			// re-checks entry identity against k.pods and aborts
			// workloads started after this removal.
			delete(k.pods, ev.Pod.Name)
			executions = append(executions, entry.executions...)
			k.releaseLocked(entry)
		}
		k.mu.Unlock()
		if !ok {
			return
		}
		for _, ex := range executions {
			ex.Abort()
		}
	}
}

// admit performs device allocation, limit registration and workload
// launch for a pod bound to this node.
func (k *Kubelet) admit(pod *api.Pod) {
	// The binding can be undone during the admission latency — a
	// preemption re-queues the pod, and it may even have been re-bound
	// since. Launch only the binding this admission was scheduled for:
	// same node, same binding instant (a re-bind re-runs admit with the
	// fresh timestamps).
	if cur, err := k.srv.GetPod(pod.Name); err != nil ||
		cur.IsTerminal() || cur.Spec.NodeName != k.nodeName ||
		!cur.Status.ScheduledAt.Equal(pod.Status.ScheduledAt) {
		return
	}
	// A bind→preempt→re-bind to this node within one simulated instant
	// leaves two pending admissions with equal ScheduledAt stamps, and a
	// broker resync can schedule an admission for a pod whose PodBound
	// event is still in flight. Check-claim-allocate runs as one
	// critical section: an entry in k.pods means an admission claimed
	// this pod AND holds its device allocation, so duplicates bail, and
	// a concurrent teardown (which removes and releases atomically, see
	// onEvent) releases exactly what this admission allocated — never a
	// newer admission's allocation for the same cgroup.
	cgroup := pod.CgroupPath()
	epcReq := pod.TotalRequests().Get(resource.EPCPages)
	entry := &podEntry{cgroup: cgroup, epcPages: epcReq}

	k.mu.Lock()
	if _, admitted := k.pods[pod.Name]; admitted {
		k.mu.Unlock()
		return
	}
	var failReason string
	if epcReq > 0 {
		switch {
		case k.plugin == nil:
			failReason = fmt.Sprintf("UnexpectedAdmissionError: no SGX device plugin on %s", k.nodeName)
		default:
			if _, err := k.plugin.Allocate(cgroup, epcReq); err != nil {
				// Mirrors Kubernetes' OutOfEpc admission failure when the
				// scheduler raced device accounting.
				failReason = "OutOfEPC: " + err.Error()
				break
			}
			// The Kubelet patch of §V-D: communicate the cgroup-path /
			// EPC page limit pair to the driver before containers start.
			// Missing limits fall back to the request, as resource
			// requests default limits in Kubernetes.
			limit := pod.TotalLimits().Get(resource.EPCPages)
			if limit == 0 {
				limit = epcReq
			}
			if err := k.mach.Driver().IoctlSetLimit(cgroup, limit); err != nil {
				k.plugin.Deallocate(cgroup)
				failReason = "SetLimit: " + err.Error()
			}
		}
	}
	if failReason == "" {
		k.pods[pod.Name] = entry
	}
	k.mu.Unlock()
	if failReason != "" {
		_ = k.srv.MarkFailed(pod.Name, failReason)
		return
	}

	var workloads []api.WorkloadSpec
	for _, c := range pod.Spec.Containers {
		if c.Workload.Kind != 0 {
			workloads = append(workloads, c.Workload)
		}
	}

	k.mu.Lock()
	if k.pods[pod.Name] != entry {
		// Torn down between claim and launch: the teardown already
		// aborted and released on removal.
		k.mu.Unlock()
		return
	}
	entry.remaining = len(workloads)
	k.mu.Unlock()

	// MarkRunning errors only if the pod raced to a terminal state (or
	// was preempted off this node): withdraw the admission — unless a
	// teardown already removed and released it.
	if err := k.srv.MarkRunning(pod.Name); err != nil {
		k.mu.Lock()
		if k.pods[pod.Name] == entry {
			delete(k.pods, pod.Name)
			k.releaseLocked(entry)
		}
		k.mu.Unlock()
		return
	}

	if len(workloads) == 0 {
		k.complete(pod.Name, entry, nil)
		return
	}
	for _, w := range workloads {
		ex, err := k.runner.Run(stress.Config{
			Machine:    k.mach,
			CgroupPath: cgroup,
			Spec:       w,
			OnFinished: func(err error) { k.containerFinished(pod.Name, entry, err) },
		})
		if err != nil {
			k.containerFinished(pod.Name, entry, err)
			continue
		}
		k.mu.Lock()
		if k.pods[pod.Name] != entry {
			// The entry was finalised mid-loop — a teardown
			// (eviction/preemption/resync) or an early sibling failure
			// that completed the pod — and whoever removed it could not
			// see this execution; undo the launch ourselves.
			k.mu.Unlock()
			ex.Abort()
			continue
		}
		entry.executions = append(entry.executions, ex)
		k.mu.Unlock()
	}
}

// containerFinished accounts one container completion; the pod
// terminates when all its containers have. The caller passes the entry
// its execution belongs to: a stale completion (an Abort issued by a
// teardown racing a re-admission of the same pod name) must not be
// attributed to the newer entry.
func (k *Kubelet) containerFinished(podName string, entry *podEntry, err error) {
	k.mu.Lock()
	if k.pods[podName] != entry {
		k.mu.Unlock()
		return
	}
	if err != nil && entry.firstErr == nil {
		entry.firstErr = err
	}
	entry.remaining--
	// Any container failure kills the pod at once — matching §VI-F, where
	// limit-violating jobs "are immediately killed after launch".
	done := entry.remaining <= 0 || entry.firstErr != nil
	firstErr := entry.firstErr
	k.mu.Unlock()
	if done {
		k.complete(podName, entry, firstErr)
	}
}

// complete finalises a pod: the entry is deregistered and its devices
// released in one critical section (so late container callbacks —
// triggered by aborting siblings below — become no-ops, and a teardown
// that won the race is detected by entry identity), then the terminal
// phase is reported.
func (k *Kubelet) complete(podName string, entry *podEntry, err error) {
	k.mu.Lock()
	if k.pods[podName] != entry {
		// An eviction/preemption/resync teardown beat us: it aborted
		// the executions and released the devices on removal.
		k.mu.Unlock()
		return
	}
	delete(k.pods, podName)
	executions := entry.executions
	k.releaseLocked(entry)
	k.mu.Unlock()

	// A failing container kills the whole pod.
	if err != nil {
		for _, ex := range executions {
			ex.Abort()
		}
		// Terminal-state races are benign during shutdown.
		_ = k.srv.MarkFailed(podName, err.Error())
		return
	}
	_ = k.srv.MarkSucceeded(podName)
}

// releaseLocked returns an entry's device allocation and driver limit to
// the node. Caller must hold k.mu and must call this exactly at the
// point the entry leaves k.pods — that pairing is what keeps cgroup
// device accounting exact across teardown/re-admission races (the
// plugin and driver only key on the cgroup path).
func (k *Kubelet) releaseLocked(entry *podEntry) {
	if entry.epcPages > 0 && k.plugin != nil {
		k.plugin.Deallocate(entry.cgroup)
		k.mach.Driver().ClearLimit(entry.cgroup)
	}
}

// PodStats reports per-pod usage for this node's pods — the stats
// endpoint Heapster and the SGX probe scrape (§V-C) — sorted by pod name
// so the metric write order, and with it the streaming aggregator's event
// order, is identical across identical runs.
func (k *Kubelet) PodStats() []PodStat {
	k.mu.Lock()
	type ref struct {
		name   string
		cgroup string
	}
	refs := make([]ref, 0, len(k.pods))
	for name, e := range k.pods {
		refs = append(refs, ref{name: name, cgroup: e.cgroup})
	}
	k.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].name < refs[j].name })

	out := make([]PodStat, 0, len(refs))
	for _, r := range refs {
		out = append(out, PodStat{
			PodName:     r.name,
			MemoryBytes: k.mach.VMBytesByCgroup(r.cgroup),
			EPCBytes:    resource.BytesForPages(k.mach.EPCPagesByCgroup(r.cgroup)),
		})
	}
	return out
}
