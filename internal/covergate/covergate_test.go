package covergate

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestPercentSetMode(t *testing.T) {
	profile := `mode: set
pkg/a.go:1.1,5.2 4 1
pkg/a.go:7.1,9.2 2 0
pkg/b.go:1.1,3.2 4 1
`
	// 8 of 10 statements covered.
	got, err := Percent(strings.NewReader(profile))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-80) > 1e-9 {
		t.Fatalf("Percent = %v, want 80", got)
	}
}

// TestPercentMergesRepeatedBlocks: count/atomic profiles from several
// test binaries repeat blocks; a block covered anywhere is covered.
func TestPercentMergesRepeatedBlocks(t *testing.T) {
	profile := `mode: atomic
pkg/a.go:1.1,5.2 6 0
pkg/a.go:1.1,5.2 6 17
pkg/a.go:7.1,9.2 4 0
pkg/a.go:7.1,9.2 4 0
`
	got, err := Percent(strings.NewReader(profile))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-60) > 1e-9 {
		t.Fatalf("Percent = %v, want 60 (6 of 10 statements)", got)
	}
}

func TestPercentRejectsJunk(t *testing.T) {
	cases := map[string]string{
		"no mode line":   "pkg/a.go:1.1,5.2 4 1\n",
		"empty profile":  "mode: set\n",
		"malformed line": "mode: set\npkg/a.go:1.1,5.2 4\n",
		"bad stmt count": "mode: set\npkg/a.go:1.1,5.2 four 1\n",
	}
	for name, profile := range cases {
		if _, err := Percent(strings.NewReader(profile)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	if _, err := Percent(strings.NewReader("mode: set\n")); !errors.Is(err, ErrEmptyProfile) {
		t.Errorf("empty profile error = %v, want ErrEmptyProfile", err)
	}
}

func TestFloor(t *testing.T) {
	floor, err := Floor(strings.NewReader("# statement coverage floor, percent\n# ratchet: only move this up\n61.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if floor != 61.5 {
		t.Fatalf("Floor = %v, want 61.5", floor)
	}
	for name, body := range map[string]string{
		"no floor line": "# only comments\n",
		"non-numeric":   "sixty\n",
		"out of range":  "104\n",
		"zero":          "0\n",
	} {
		if _, err := Floor(strings.NewReader(body)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestCheck(t *testing.T) {
	if err := Check(61.5, 61.5); err != nil {
		t.Fatalf("coverage at the floor must pass: %v", err)
	}
	if err := Check(70, 61.5); err != nil {
		t.Fatalf("coverage above the floor must pass: %v", err)
	}
	if err := Check(61.49, 61.5); err == nil {
		t.Fatal("coverage below the floor must fail")
	}
}
