// Package covergate turns a Go cover profile into a CI pass/fail
// signal: it computes total statement coverage from the raw profile
// (the same arithmetic as "go tool cover -func"'s total row) and
// compares it against a floor checked into the repository. The floor
// file is the ratchet: it only moves up, and a change that drops
// coverage below it fails the gate instead of silently eroding the
// test suite.
package covergate

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrEmptyProfile is returned when the profile has a mode line but no
// coverage blocks — what "go test -coverprofile" emits when no package
// actually compiled any statements, a vacuous pass the gate refuses.
var ErrEmptyProfile = errors.New("covergate: cover profile contains no coverage blocks")

// block is one "file:start,end numStmts count" profile line.
type block struct {
	stmts   int64
	covered bool
}

// Percent computes total statement coverage, in percent, from a cover
// profile ("mode: set|count|atomic" header then one block per line).
// Blocks repeated across lines (count mode merges) accumulate: a block
// counts as covered if any of its occurrences has a non-zero count.
func Percent(profile io.Reader) (float64, error) {
	sc := bufio.NewScanner(profile)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	sawMode := false
	blocks := make(map[string]block)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "mode:") {
			sawMode = true
			continue
		}
		pos, rest, ok := strings.Cut(line, " ")
		if !ok {
			return 0, fmt.Errorf("covergate: malformed profile line %q", line)
		}
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return 0, fmt.Errorf("covergate: malformed profile line %q", line)
		}
		stmts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("covergate: bad statement count in %q: %w", line, err)
		}
		count, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("covergate: bad hit count in %q: %w", line, err)
		}
		b := blocks[pos]
		b.stmts = stmts
		b.covered = b.covered || count > 0
		blocks[pos] = b
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if !sawMode {
		return 0, errors.New("covergate: not a cover profile (no mode line)")
	}
	var total, covered int64
	for _, b := range blocks {
		total += b.stmts
		if b.covered {
			covered += b.stmts
		}
	}
	if total == 0 {
		return 0, ErrEmptyProfile
	}
	return 100 * float64(covered) / float64(total), nil
}

// Floor parses the checked-in floor file: comment lines start with '#',
// the first remaining line is the floor percentage.
func Floor(r io.Reader) (float64, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		floor, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return 0, fmt.Errorf("covergate: bad floor %q: %w", line, err)
		}
		if floor <= 0 || floor > 100 {
			return 0, fmt.Errorf("covergate: floor %v%% out of range (0, 100]", floor)
		}
		return floor, nil
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, errors.New("covergate: floor file has no floor line")
}

// Check compares measured coverage against the floor.
func Check(percent, floor float64) error {
	if percent < floor {
		return fmt.Errorf("covergate: statement coverage %.2f%% is below the checked-in floor %.2f%%", percent, floor)
	}
	return nil
}
