package borg

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/stats"
)

func TestEvalSliceMatchesPaperCounts(t *testing.T) {
	tr := NewGenerator(DefaultConfig(1)).EvalSlice()
	if got := tr.Len(); got != EvalJobCount {
		t.Fatalf("jobs = %d, want %d", got, EvalJobCount)
	}
	// "44 jobs out of 663 show this behavior" (§VI-F).
	if got := tr.OverAllocatorCount(); got != EvalOverAllocators {
		t.Fatalf("over-allocators = %d, want %d", got, EvalOverAllocators)
	}
	if tr.Horizon != time.Hour {
		t.Fatalf("horizon = %v, want 1h", tr.Horizon)
	}
}

func TestEvalSliceJobBounds(t *testing.T) {
	tr := NewGenerator(DefaultConfig(2)).EvalSlice()
	var prev time.Duration
	for _, j := range tr.Jobs {
		if j.Submit < 0 || j.Submit >= time.Hour {
			t.Fatalf("job %d submit %v outside window", j.ID, j.Submit)
		}
		if j.Submit < prev {
			t.Fatalf("submissions not ordered at job %d", j.ID)
		}
		prev = j.Submit
		if j.Duration <= 0 || j.Duration > MaxDuration {
			t.Fatalf("job %d duration %v outside (0, 300s]", j.ID, j.Duration)
		}
		if j.MaxMemFrac <= 0 || j.MaxMemFrac > EvalMaxMemFraction {
			t.Fatalf("job %d max frac %g outside (0, %g]", j.ID, j.MaxMemFrac, EvalMaxMemFraction)
		}
		if j.AssignedMemFrac <= 0 || j.AssignedMemFrac > EvalMaxMemFraction {
			t.Fatalf("job %d assigned frac %g out of range", j.ID, j.AssignedMemFrac)
		}
	}
}

func TestEvalSliceDeterministicPerSeed(t *testing.T) {
	a := NewGenerator(DefaultConfig(42)).EvalSlice()
	b := NewGenerator(DefaultConfig(42)).EvalSlice()
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("lengths differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	c := NewGenerator(DefaultConfig(43)).EvalSlice()
	same := true
	for i := range a.Jobs {
		if a.Jobs[i] != c.Jobs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFullDayDistributions(t *testing.T) {
	tr := NewGenerator(DefaultConfig(3)).FullDay(20000)
	if tr.Len() != 20000 {
		t.Fatalf("jobs = %d", tr.Len())
	}

	// Fig. 4: all jobs last at most 300 s; CDF rises over the range.
	durs := stats.NewCDF(tr.DurationsSeconds())
	if q, _ := durs.Quantile(1); q > 300 {
		t.Fatalf("max duration %v > 300", q)
	}
	if p := durs.At(85); p < 0.4 || p > 0.8 {
		t.Fatalf("CDF(85s) = %v, want mid-range", p)
	}

	// Fig. 3: memory fractions bounded by 0.5, bulk below 0.1.
	fracs := stats.NewCDF(tr.MemFractions())
	if q, _ := fracs.Quantile(1); q > MaxMemFraction {
		t.Fatalf("max frac %v > 0.5", q)
	}
	if p := fracs.At(0.1); p < 0.5 {
		t.Fatalf("CDF(0.1) = %v, want most jobs below 0.1", p)
	}

	// Mean fraction near the calibration target (~0.075).
	mean := stats.Mean(tr.MemFractions())
	if mean < 0.05 || mean > 0.11 {
		t.Fatalf("mean frac = %v, want ~0.075", mean)
	}

	// Jobs ordered by submission, IDs sequential in stream order — the
	// 1-in-1200 sampling semantics depend on this.
	for i := 1; i < tr.Len(); i++ {
		if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
			t.Fatal("jobs not ordered by submission")
		}
		if tr.Jobs[i].ID != int64(i+1) {
			t.Fatalf("IDs not sequential: %d at %d", tr.Jobs[i].ID, i)
		}
	}
}

func TestConcurrencyProfileShape(t *testing.T) {
	g := NewGenerator(DefaultConfig(4))
	pts := g.ConcurrencyProfile(10 * time.Minute)
	if len(pts) != 145 { // 24h / 10min + 1
		t.Fatalf("points = %d", len(pts))
	}
	lo, hi := pts[0].Jobs, pts[0].Jobs
	var minAt time.Duration
	for _, p := range pts {
		if p.Jobs < lo {
			lo = p.Jobs
			minAt = p.Offset
		}
		if p.Jobs > hi {
			hi = p.Jobs
		}
	}
	// Fig. 5's y-range is ~125k-145k.
	if lo < 120000 || hi > 150000 {
		t.Fatalf("profile range [%v, %v] outside Fig. 5's", lo, hi)
	}
	// The minimum falls inside (or near) the evaluation window — that is
	// why the paper picked it.
	if minAt < EvalWindowStart-2*time.Hour || minAt > EvalWindowEnd+2*time.Hour {
		t.Fatalf("minimum at %v, want near [%v, %v]", minAt, EvalWindowStart, EvalWindowEnd)
	}
}

func TestWindowAndSampling(t *testing.T) {
	tr := &Trace{Horizon: 10 * time.Second}
	for i := 0; i < 10; i++ {
		tr.Jobs = append(tr.Jobs, Job{ID: int64(i), Submit: time.Duration(i) * time.Second, Duration: time.Second})
	}
	w := tr.Window(3*time.Second, 7*time.Second)
	if w.Len() != 4 || w.Horizon != 4*time.Second {
		t.Fatalf("window = %d jobs, %v", w.Len(), w.Horizon)
	}
	if w.Jobs[0].Submit != 0 || w.Jobs[0].ID != 3 {
		t.Fatalf("window not re-based: %+v", w.Jobs[0])
	}
	s := tr.SampleEveryN(3)
	if s.Len() != 4 { // jobs 0,3,6,9
		t.Fatalf("sampled = %d", s.Len())
	}
	if s.Jobs[1].ID != 3 {
		t.Fatalf("sampling picked %d, want 3", s.Jobs[1].ID)
	}
	id := tr.SampleEveryN(1)
	if id.Len() != tr.Len() {
		t.Fatal("SampleEveryN(1) should keep all jobs")
	}
	id.Jobs[0].ID = 999
	if tr.Jobs[0].ID == 999 {
		t.Fatal("SampleEveryN(1) aliased the source")
	}
}

func TestConcurrentAt(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{Submit: 0, Duration: 10 * time.Second},
		{Submit: 5 * time.Second, Duration: 10 * time.Second},
	}}
	if got := tr.ConcurrentAt(7 * time.Second); got != 2 {
		t.Fatalf("ConcurrentAt(7s) = %d", got)
	}
	if got := tr.ConcurrentAt(12 * time.Second); got != 1 {
		t.Fatalf("ConcurrentAt(12s) = %d", got)
	}
	if got := tr.ConcurrentAt(20 * time.Second); got != 0 {
		t.Fatalf("ConcurrentAt(20s) = %d", got)
	}
}

func TestMemoryScaling(t *testing.T) {
	// §VI-B: SGX jobs scale to 93.5 MiB, standard jobs to 32 GiB.
	if got := SGXMemBytes(1.0); got != 93*resource.MiB+512*resource.KiB {
		t.Fatalf("SGXMemBytes(1) = %d", got)
	}
	if got := StandardMemBytes(0.5); got != 16*resource.GiB {
		t.Fatalf("StandardMemBytes(0.5) = %d", got)
	}
	frac := 0.1
	if got := SGXMemBytes(frac); got != int64(frac*float64(SGXMemoryScale)) {
		t.Fatalf("SGXMemBytes(0.1) = %d", got)
	}
}

func TestTotalDuration(t *testing.T) {
	tr := &Trace{Jobs: []Job{{Duration: time.Minute}, {Duration: 2 * time.Minute}}}
	if got := tr.TotalDuration(); got != 3*time.Minute {
		t.Fatalf("TotalDuration = %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := NewGenerator(DefaultConfig(5)).EvalSlice()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip lost jobs: %d vs %d", back.Len(), tr.Len())
	}
	for i := range tr.Jobs {
		a, b := tr.Jobs[i], back.Jobs[i]
		if a.ID != b.ID || a.Submit != b.Submit || a.Duration != b.Duration ||
			a.AssignedMemFrac != b.AssignedMemFrac || a.MaxMemFrac != b.MaxMemFrac {
			t.Fatalf("job %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
	if got := back.OverAllocatorCount(); got != EvalOverAllocators {
		t.Fatalf("over-allocators after round trip = %d", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header", "a,b,c,d,e\n"},
		{"bad id", "job_id,submit_us,duration_us,assigned_mem_frac,max_mem_frac\nx,0,0,0,0\n"},
		{"negative submit", "job_id,submit_us,duration_us,assigned_mem_frac,max_mem_frac\n1,-5,0,0,0\n"},
		{"frac out of range", "job_id,submit_us,duration_us,assigned_mem_frac,max_mem_frac\n1,0,0,2.0,0\n"},
		{"wrong fields", "job_id,submit_us,duration_us,assigned_mem_frac,max_mem_frac\n1,0,0\n"},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// Property: over-allocators always advertise less than they use; honest
// jobs never do.
func TestAdvertisementConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := NewGenerator(DefaultConfig(seed)).EvalSlice()
		for _, j := range tr.Jobs {
			if j.OverAllocates() && j.AssignedMemFrac >= j.MaxMemFrac {
				return false
			}
			if !j.OverAllocates() && j.AssignedMemFrac < j.MaxMemFrac {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: windowing then sampling preserves job field integrity.
func TestWindowSampleProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := NewGenerator(DefaultConfig(seed)).FullDay(2000)
		w := tr.Window(2*time.Hour, 4*time.Hour)
		s := w.SampleEveryN(7)
		if s.Len() != (w.Len()+6)/7 {
			return false
		}
		for _, j := range s.Jobs {
			if j.Submit < 0 || j.Submit >= 2*time.Hour {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
