package borg

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Day is the span of the Fig. 5 concurrency plot (first 24 h of the
// trace).
const Day = 24 * time.Hour

// GeneratorConfig tunes the synthetic trace distributions. The defaults
// are the calibration described in DESIGN.md §2; they are exported so the
// ablation benchmarks can stress other regimes.
type GeneratorConfig struct {
	Seed int64

	// Durations: shifted exponential capped at MaxDuration.
	DurationMin  time.Duration
	DurationMean time.Duration

	// Memory fractions: log-normal ln N(FracMu, FracSigma), clamped to
	// (0, MaxMemFraction].
	FracMu    float64
	FracSigma float64

	// OverAllocRatio is the probability that a job's maximal usage
	// exceeds its advertisement (44/663 in the evaluation slice, §VI-F).
	OverAllocRatio float64

	// Concurrency profile (Fig. 5): Base ± Amplitude daily wave plus a
	// shorter wiggle and noise, with the minimum centred on the
	// evaluation window.
	ConcurrencyBase      float64
	ConcurrencyAmplitude float64
	ConcurrencyWiggle    float64
	ConcurrencyNoise     float64
}

// DefaultConfig returns the calibrated defaults.
func DefaultConfig(seed int64) GeneratorConfig {
	// Calibration: with 663 jobs over one hour, E[frac] ≈ 0.105 and
	// E[duration] ≈ 118 s put the all-SGX replay's EPC demand at ~103% of
	// the two SGX nodes' 187 MiB (§VI-A cluster) — the overload regime
	// behind Fig. 8's long waiting-time tail — and reproduce Fig. 7's
	// drain times within ~15% at every simulated EPC size.
	return GeneratorConfig{
		Seed:                 seed,
		DurationMin:          5 * time.Second,
		DurationMean:         125 * time.Second,
		FracMu:               -2.7,
		FracSigma:            0.95,
		OverAllocRatio:       float64(EvalOverAllocators) / float64(EvalJobCount),
		ConcurrencyBase:      134000,
		ConcurrencyAmplitude: 7000,
		ConcurrencyWiggle:    2500,
		ConcurrencyNoise:     1500,
	}
}

// Generator produces deterministic synthetic traces.
type Generator struct {
	cfg GeneratorConfig
	rng *rand.Rand
}

// NewGenerator creates a generator; zero-valued config fields are filled
// with the calibrated defaults.
func NewGenerator(cfg GeneratorConfig) *Generator {
	def := DefaultConfig(cfg.Seed)
	if cfg.DurationMin <= 0 {
		cfg.DurationMin = def.DurationMin
	}
	if cfg.DurationMean <= 0 {
		cfg.DurationMean = def.DurationMean
	}
	if cfg.FracMu == 0 {
		cfg.FracMu = def.FracMu
	}
	if cfg.FracSigma <= 0 {
		cfg.FracSigma = def.FracSigma
	}
	if cfg.OverAllocRatio <= 0 {
		cfg.OverAllocRatio = def.OverAllocRatio
	}
	if cfg.ConcurrencyBase <= 0 {
		cfg.ConcurrencyBase = def.ConcurrencyBase
	}
	if cfg.ConcurrencyAmplitude <= 0 {
		cfg.ConcurrencyAmplitude = def.ConcurrencyAmplitude
	}
	if cfg.ConcurrencyWiggle <= 0 {
		cfg.ConcurrencyWiggle = def.ConcurrencyWiggle
	}
	if cfg.ConcurrencyNoise <= 0 {
		cfg.ConcurrencyNoise = def.ConcurrencyNoise
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the effective configuration.
func (g *Generator) Config() GeneratorConfig { return g.cfg }

// sampleDuration draws a job duration: min + Exp(mean-min), capped at
// MaxDuration, matching Fig. 4's bounded CDF. Times are truncated to the
// microsecond granularity of the original trace.
func (g *Generator) sampleDuration() time.Duration {
	mean := float64(g.cfg.DurationMean - g.cfg.DurationMin)
	d := g.cfg.DurationMin + time.Duration(g.rng.ExpFloat64()*mean)
	if d > MaxDuration {
		d = MaxDuration
	}
	return d.Truncate(time.Microsecond)
}

// sampleFrac draws a maximal memory usage fraction from the calibrated
// log-normal, clamped to (0, cap].
func (g *Generator) sampleFrac(cap float64) float64 {
	f := math.Exp(g.cfg.FracMu + g.cfg.FracSigma*g.rng.NormFloat64())
	if f > cap {
		f = cap
	}
	if f < 1e-4 {
		f = 1e-4
	}
	return f
}

// assignAdvertised derives the advertised memory from the actual usage.
// Honest jobs over-declare by up to 60%; over-allocators advertise less
// than they use (§VI-F).
func (g *Generator) assignAdvertised(maxFrac float64, overAllocates bool, cap float64) float64 {
	if overAllocates {
		f := maxFrac / (1.1 + 0.9*g.rng.Float64()) // uses 1.1x-2x its claim
		if f < 1e-4 {
			f = 1e-4
		}
		return f
	}
	f := maxFrac * (1.0 + 0.6*g.rng.Float64())
	if f > cap {
		f = cap
	}
	return f
}

// concurrencyAt evaluates the deterministic part of the Fig. 5 profile at
// offset t. The daily wave's minimum is centred on the evaluation window
// (u0 ≈ 0.096 of the day ≈ 8280 s, the midpoint of 6480-10080 s): the
// paper picked that hour because it is "the less job-intensive in terms
// of concurrent jobs for the considered time interval".
func (g *Generator) concurrencyAt(t time.Duration) float64 {
	u := float64(t) / float64(Day)
	const u0 = 8280.0 / 86400.0
	wave := g.cfg.ConcurrencyAmplitude * math.Cos(2*math.Pi*(u-u0-0.5))
	// The wiggle's phase keeps its trough aligned with the daily wave's
	// minimum at u0, so the global minimum stays inside the evaluation
	// window.
	wiggle := g.cfg.ConcurrencyWiggle * math.Sin(6*math.Pi*u+2.902)
	return g.cfg.ConcurrencyBase + wave + wiggle
}

// ConcurrencyPoint is one sample of the Fig. 5 series.
type ConcurrencyPoint struct {
	Offset time.Duration
	Jobs   float64
}

// ConcurrencyProfile renders the first-24 h concurrently-running-jobs
// series at the given step (Fig. 5), noise included.
func (g *Generator) ConcurrencyProfile(step time.Duration) []ConcurrencyPoint {
	if step <= 0 {
		step = 10 * time.Minute
	}
	rng := rand.New(rand.NewSource(g.cfg.Seed + 5))
	var out []ConcurrencyPoint
	for t := time.Duration(0); t <= Day; t += step {
		noise := g.cfg.ConcurrencyNoise * (2*rng.Float64() - 1)
		out = append(out, ConcurrencyPoint{Offset: t, Jobs: g.concurrencyAt(t) + noise})
	}
	return out
}

// FullDay materialises n jobs across the first 24 h with arrival intensity
// proportional to the concurrency profile — the population behind the
// Fig. 3 and Fig. 4 CDFs.
func (g *Generator) FullDay(n int) *Trace {
	if n <= 0 {
		n = 20000
	}
	// Build a minute-resolution intensity table for inverse-CDF arrival
	// sampling.
	const minutes = 24 * 60
	weights := make([]float64, minutes)
	var total float64
	for m := 0; m < minutes; m++ {
		w := g.concurrencyAt(time.Duration(m) * time.Minute)
		weights[m] = w
		total += w
	}
	cum := make([]float64, minutes)
	acc := 0.0
	for m, w := range weights {
		acc += w / total
		cum[m] = acc
	}

	tr := &Trace{Horizon: Day}
	for i := 0; i < n; i++ {
		u := g.rng.Float64()
		minute := 0
		for minute < minutes-1 && cum[minute] < u {
			minute++
		}
		submit := (time.Duration(minute)*time.Minute +
			time.Duration(g.rng.Float64()*float64(time.Minute))).Truncate(time.Microsecond)
		maxFrac := g.sampleFrac(MaxMemFraction)
		over := g.rng.Float64() < g.cfg.OverAllocRatio
		tr.Jobs = append(tr.Jobs, Job{
			Submit:          submit,
			Duration:        g.sampleDuration(),
			MaxMemFrac:      maxFrac,
			AssignedMemFrac: g.assignAdvertised(maxFrac, over, MaxMemFraction),
		})
	}
	tr.sortBySubmit()
	for i := range tr.Jobs {
		tr.Jobs[i].ID = int64(i + 1)
	}
	return tr
}

// EvalSlice produces the replay input of §VI-B: the 6480-10080 s window
// after 1-in-1200 sampling — exactly 663 jobs over one hour, exactly 44 of
// them over-allocating, memory fractions capped at EvalMaxMemFraction.
// Generating the sampled stream directly is statistically equivalent to
// materialising the ~800k-job window and thinning it.
func (g *Generator) EvalSlice() *Trace {
	window := EvalWindowEnd - EvalWindowStart
	tr := &Trace{Horizon: window}

	// Pre-assign which sampled jobs over-allocate: exactly 44 of 663.
	over := make([]bool, EvalJobCount)
	for i := 0; i < EvalOverAllocators; i++ {
		over[i] = true
	}
	rng := rand.New(rand.NewSource(g.cfg.Seed + 7))
	rng.Shuffle(EvalJobCount, func(i, j int) { over[i], over[j] = over[j], over[i] })

	// Arrivals: ordered uniforms, shaped by the (nearly flat) intensity
	// at the bottom of the daily wave.
	submits := make([]time.Duration, EvalJobCount)
	for i := range submits {
		submits[i] = time.Duration(rng.Float64() * float64(window)).Truncate(time.Microsecond)
	}
	sortDurations(submits)

	for i := 0; i < EvalJobCount; i++ {
		maxFrac := g.sampleFrac(EvalMaxMemFraction)
		adv := g.assignAdvertised(maxFrac, over[i], EvalMaxMemFraction)
		tr.Jobs = append(tr.Jobs, Job{
			ID:              int64(i + 1),
			Submit:          submits[i],
			Duration:        g.sampleDuration(),
			MaxMemFrac:      maxFrac,
			AssignedMemFrac: adv,
		})
	}
	return tr
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
