package borg

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV schema: a flattened subset of the Borg task_events table (Reiss et
// al., "Google cluster-usage traces: format + schema") carrying exactly
// the four fields the paper extracts per job (§VI-B), keyed by job ID:
//
//	job_id, submit_us, duration_us, assigned_mem_frac, max_mem_frac
//
// Timestamps are microseconds since trace start, as in the original
// trace; memory is normalised to the largest machine, as in the original
// trace.
var csvHeader = []string{"job_id", "submit_us", "duration_us", "assigned_mem_frac", "max_mem_frac"}

// WriteCSV encodes the trace.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("borg: writing header: %w", err)
	}
	for _, j := range t.Jobs {
		rec := []string{
			strconv.FormatInt(j.ID, 10),
			strconv.FormatInt(j.Submit.Microseconds(), 10),
			strconv.FormatInt(j.Duration.Microseconds(), 10),
			strconv.FormatFloat(j.AssignedMemFrac, 'g', 17, 64),
			strconv.FormatFloat(j.MaxMemFrac, 'g', 17, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("borg: writing job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("borg: reading header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("borg: bad header column %d: %q (want %q)", i, header[i], want)
		}
	}
	tr := &Trace{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("borg: line %d: %w", line, err)
		}
		j, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("borg: line %d: %w", line, err)
		}
		tr.Jobs = append(tr.Jobs, j)
		if end := j.Submit + j.Duration; end > tr.Horizon {
			tr.Horizon = end
		}
	}
	tr.sortBySubmit()
	return tr, nil
}

func parseRecord(rec []string) (Job, error) {
	id, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return Job{}, fmt.Errorf("job_id: %w", err)
	}
	submitUS, err := strconv.ParseInt(rec[1], 10, 64)
	if err != nil {
		return Job{}, fmt.Errorf("submit_us: %w", err)
	}
	durUS, err := strconv.ParseInt(rec[2], 10, 64)
	if err != nil {
		return Job{}, fmt.Errorf("duration_us: %w", err)
	}
	assigned, err := strconv.ParseFloat(rec[3], 64)
	if err != nil {
		return Job{}, fmt.Errorf("assigned_mem_frac: %w", err)
	}
	maxFrac, err := strconv.ParseFloat(rec[4], 64)
	if err != nil {
		return Job{}, fmt.Errorf("max_mem_frac: %w", err)
	}
	if submitUS < 0 || durUS < 0 {
		return Job{}, fmt.Errorf("negative time fields (submit %d, duration %d)", submitUS, durUS)
	}
	if assigned < 0 || assigned > 1 || maxFrac < 0 || maxFrac > 1 {
		return Job{}, fmt.Errorf("memory fraction out of [0,1]: assigned %g, max %g", assigned, maxFrac)
	}
	return Job{
		ID:              id,
		Submit:          time.Duration(submitUS) * time.Microsecond,
		Duration:        time.Duration(durUS) * time.Microsecond,
		AssignedMemFrac: assigned,
		MaxMemFrac:      maxFrac,
	}, nil
}
