// Package borg provides the Google Borg trace substrate of the evaluation
// (§VI-B). The real 2011 trace (~12 500 machines, 29 days) is not
// redistributable, so this package pairs a schema-compatible CSV
// encoder/parser with a synthetic generator calibrated to the published
// marginals:
//
//   - Fig. 3 — per-job maximal memory usage, expressed as a fraction of
//     the largest machine, bounded by 0.5;
//   - Fig. 4 — job durations, all at most 300 s;
//   - Fig. 5 — ~125k-145k concurrently running jobs over the first 24 h,
//     with the least job-intensive hour at 6480-10080 s (the paper's
//     evaluation slice);
//   - §VI-B/§VI-F — the evaluation slice holds 663 jobs after 1-in-1200
//     sampling, 44 of which "actually try to allocate more memory than
//     they advertise".
//
// The replayed scheduler consumes exactly the four fields the paper
// extracts: submission time, duration, assigned memory and maximal memory
// usage.
package borg

import (
	"sort"
	"time"

	"github.com/sgxorch/sgxorch/internal/resource"
)

// Constants fixed by the paper (§VI-B, §VI-F).
const (
	// EvalWindowStart and EvalWindowEnd bound the replayed slice: "we use
	// a 1-hour subset ranging from 6480 s to 10 080 s".
	EvalWindowStart = 6480 * time.Second
	EvalWindowEnd   = 10080 * time.Second
	// SampleInterval is the frequency reduction: "we sample every 1200th
	// job from the trace".
	SampleInterval = 1200
	// EvalJobCount is the resulting slice size ("44 jobs out of 663").
	EvalJobCount = 663
	// EvalOverAllocators is the number of slice jobs whose maximal usage
	// exceeds their advertisement.
	EvalOverAllocators = 44
	// MaxDuration bounds job runtimes: "all jobs last at most 300 s"
	// (Fig. 4).
	MaxDuration = 300 * time.Second
	// MaxMemFraction bounds the memory usage factor (Fig. 3's x-axis).
	MaxMemFraction = 0.5
	// EvalMaxMemFraction additionally bounds slice jobs. It keeps SGX
	// demands within the smallest simulated EPC node of Fig. 7 (32 MiB,
	// 23.4 MiB usable: 23.4/93.5 ≈ 0.25) and matches the request axes of
	// Fig. 9 (≤25 MB SGX, ≤7500 MB standard).
	EvalMaxMemFraction = 0.24
)

// Memory scaling multipliers (§VI-B): standard jobs scale to 32 GiB ("the
// power-of-2 closest to the average of the total memory installed in our
// test machines"); SGX jobs scale to the usable EPC of the paper's
// hardware (93.5 MiB) — fixed even when simulating other EPC sizes, which
// is what makes Fig. 7's capacity sweep meaningful.
const (
	StandardMemoryScale = 32 * resource.GiB
	SGXMemoryScale      = 93*resource.MiB + 512*resource.KiB
)

// Job is one trace record, reduced to the fields the paper extracts.
type Job struct {
	ID int64
	// Submit is the submission offset from the start of the trace (or of
	// the window after slicing).
	Submit time.Duration
	// Duration is the useful runtime recorded in the trace.
	Duration time.Duration
	// AssignedMemFrac is the advertised memory ("assigned memory"), as a
	// fraction of the largest machine's capacity.
	AssignedMemFrac float64
	// MaxMemFrac is the memory actually allocated ("maximal memory
	// usage"), same unit.
	MaxMemFrac float64
}

// OverAllocates reports whether the job uses more memory than it
// advertises — the behaviour that strict limit enforcement kills (§VI-F).
func (j Job) OverAllocates() bool { return j.MaxMemFrac > j.AssignedMemFrac }

// StandardMemBytes scales a memory fraction to standard-job bytes.
func StandardMemBytes(frac float64) int64 {
	return int64(frac * float64(StandardMemoryScale))
}

// SGXMemBytes scales a memory fraction to SGX-job EPC bytes.
func SGXMemBytes(frac float64) int64 {
	return int64(frac * float64(SGXMemoryScale))
}

// Trace is an ordered sequence of jobs.
type Trace struct {
	Jobs []Job
	// Horizon is the submission span covered by the trace.
	Horizon time.Duration
}

// Len returns the job count.
func (t *Trace) Len() int { return len(t.Jobs) }

// sortBySubmit normalises job order (stable on ID for equal submits).
func (t *Trace) sortBySubmit() {
	sort.SliceStable(t.Jobs, func(i, j int) bool {
		if t.Jobs[i].Submit != t.Jobs[j].Submit {
			return t.Jobs[i].Submit < t.Jobs[j].Submit
		}
		return t.Jobs[i].ID < t.Jobs[j].ID
	})
}

// Window extracts jobs submitting in [from, to), re-basing submission
// offsets to the window start — the paper's time reduction (§VI-B).
func (t *Trace) Window(from, to time.Duration) *Trace {
	out := &Trace{Horizon: to - from}
	for _, j := range t.Jobs {
		if j.Submit >= from && j.Submit < to {
			jj := j
			jj.Submit -= from
			out.Jobs = append(out.Jobs, jj)
		}
	}
	out.sortBySubmit()
	return out
}

// SampleEveryN keeps every n-th job (the first, the n+1-th, ...) — the
// paper's frequency reduction (§VI-B).
func (t *Trace) SampleEveryN(n int) *Trace {
	if n <= 1 {
		cp := &Trace{Jobs: append([]Job(nil), t.Jobs...), Horizon: t.Horizon}
		return cp
	}
	out := &Trace{Horizon: t.Horizon}
	for i := 0; i < len(t.Jobs); i += n {
		out.Jobs = append(out.Jobs, t.Jobs[i])
	}
	return out
}

// ConcurrentAt counts jobs running at the given offset.
func (t *Trace) ConcurrentAt(at time.Duration) int {
	n := 0
	for _, j := range t.Jobs {
		if j.Submit <= at && at < j.Submit+j.Duration {
			n++
		}
	}
	return n
}

// OverAllocatorCount counts jobs whose usage exceeds their advertisement.
func (t *Trace) OverAllocatorCount() int {
	n := 0
	for _, j := range t.Jobs {
		if j.OverAllocates() {
			n++
		}
	}
	return n
}

// TotalDuration sums the useful runtime of all jobs — the "Trace" bar of
// Fig. 10.
func (t *Trace) TotalDuration() time.Duration {
	var sum time.Duration
	for _, j := range t.Jobs {
		sum += j.Duration
	}
	return sum
}

// MemFractions returns the maximal memory usage fractions (Fig. 3's
// sample).
func (t *Trace) MemFractions() []float64 {
	out := make([]float64, 0, len(t.Jobs))
	for _, j := range t.Jobs {
		out = append(out, j.MaxMemFrac)
	}
	return out
}

// DurationsSeconds returns the job durations in seconds (Fig. 4's
// sample).
func (t *Trace) DurationsSeconds() []float64 {
	out := make([]float64, 0, len(t.Jobs))
	for _, j := range t.Jobs {
		out = append(out, j.Duration.Seconds())
	}
	return out
}
