package borg

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Support for the original Google cluster trace format (Reiss & Wilkes,
// "Google cluster-usage traces: format + schema", 2011). The paper
// extracts per-job submission time, duration, assigned memory and maximal
// memory usage from the task_events and task_usage tables (§VI-B); this
// file implements a reader for the task_events schema and the join that
// produces replayable jobs, so users holding the real trace can feed it
// to the same harness the synthetic generator drives.
//
// task_events columns (all optional fields may be empty):
//
//	0 timestamp (µs)   1 missing info    2 job ID       3 task index
//	4 machine ID       5 event type      6 user         7 scheduling class
//	8 priority         9 CPU request    10 memory request (normalised)
//	11 disk request   12 different machines restriction
const taskEventColumns = 13

// TaskEventType is the event-type column of task_events.
type TaskEventType int

// Event types from the trace schema.
const (
	EventSubmit TaskEventType = iota // 0
	EventSchedule
	EventEvict
	EventFail
	EventFinish
	EventKill
	EventLost
	EventUpdatePending
	EventUpdateRunning
)

// TaskEvent is one row of the task_events table (the fields the §VI-B
// extraction needs).
type TaskEvent struct {
	Timestamp time.Duration // offset from trace start
	JobID     int64
	TaskIndex int64
	Type      TaskEventType
	// MemoryRequest is the normalised memory request (fraction of the
	// largest machine) — the paper's "assigned memory".
	MemoryRequest float64
}

// ParseTaskEvents reads a task_events CSV stream (headerless, as
// distributed).
func ParseTaskEvents(r io.Reader) ([]TaskEvent, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = taskEventColumns
	var out []TaskEvent
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("borg: task_events line %d: %w", line, err)
		}
		ev, err := parseTaskEvent(rec)
		if err != nil {
			return nil, fmt.Errorf("borg: task_events line %d: %w", line, err)
		}
		out = append(out, ev)
	}
}

func parseTaskEvent(rec []string) (TaskEvent, error) {
	ts, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return TaskEvent{}, fmt.Errorf("timestamp: %w", err)
	}
	jobID, err := strconv.ParseInt(rec[2], 10, 64)
	if err != nil {
		return TaskEvent{}, fmt.Errorf("job ID: %w", err)
	}
	taskIdx := int64(0)
	if rec[3] != "" {
		if taskIdx, err = strconv.ParseInt(rec[3], 10, 64); err != nil {
			return TaskEvent{}, fmt.Errorf("task index: %w", err)
		}
	}
	evType, err := strconv.Atoi(rec[5])
	if err != nil {
		return TaskEvent{}, fmt.Errorf("event type: %w", err)
	}
	if evType < int(EventSubmit) || evType > int(EventUpdateRunning) {
		return TaskEvent{}, fmt.Errorf("event type %d out of range", evType)
	}
	memReq := 0.0
	if rec[10] != "" {
		if memReq, err = strconv.ParseFloat(rec[10], 64); err != nil {
			return TaskEvent{}, fmt.Errorf("memory request: %w", err)
		}
		if memReq < 0 || memReq > 1 {
			return TaskEvent{}, fmt.Errorf("memory request %g out of [0,1]", memReq)
		}
	}
	return TaskEvent{
		Timestamp:     time.Duration(ts) * time.Microsecond,
		JobID:         jobID,
		TaskIndex:     taskIdx,
		Type:          TaskEventType(evType),
		MemoryRequest: memReq,
	}, nil
}

// JobsFromEvents reconstructs replayable jobs from a task_events stream
// the way §VI-B does: a job's submission time comes from its SUBMIT
// event, its duration from SCHEDULE→FINISH, and its assigned memory from
// the request column. maxUsage optionally supplies each job's maximal
// memory usage from the task_usage table (keyed by job ID); jobs without
// an entry fall back to their request (no over- or under-use).
//
// Jobs missing any of SUBMIT/SCHEDULE/FINISH (evicted, killed, lost or
// still running at trace end) are skipped, mirroring the paper's use of
// completed jobs only.
func JobsFromEvents(events []TaskEvent, maxUsage map[int64]float64) *Trace {
	type acc struct {
		submit, schedule, finish time.Duration
		hasSubmit, hasSchedule   bool
		hasFinish                bool
		memReq                   float64
	}
	jobs := make(map[int64]*acc)
	for _, ev := range events {
		// Aggregate per job; multi-task jobs take the earliest submit
		// and schedule, the latest finish and the largest request.
		a, ok := jobs[ev.JobID]
		if !ok {
			a = &acc{}
			jobs[ev.JobID] = a
		}
		switch ev.Type {
		case EventSubmit:
			if !a.hasSubmit || ev.Timestamp < a.submit {
				a.submit = ev.Timestamp
			}
			a.hasSubmit = true
			if ev.MemoryRequest > a.memReq {
				a.memReq = ev.MemoryRequest
			}
		case EventSchedule:
			if !a.hasSchedule || ev.Timestamp < a.schedule {
				a.schedule = ev.Timestamp
			}
			a.hasSchedule = true
		case EventFinish:
			if !a.hasFinish || ev.Timestamp > a.finish {
				a.finish = ev.Timestamp
			}
			a.hasFinish = true
		}
	}

	ids := make([]int64, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	tr := &Trace{}
	for _, id := range ids {
		a := jobs[id]
		if !a.hasSubmit || !a.hasSchedule || !a.hasFinish || a.finish <= a.schedule {
			continue
		}
		usage := a.memReq
		if u, ok := maxUsage[id]; ok {
			usage = u
		}
		j := Job{
			ID:              id,
			Submit:          a.submit,
			Duration:        a.finish - a.schedule,
			AssignedMemFrac: a.memReq,
			MaxMemFrac:      usage,
		}
		tr.Jobs = append(tr.Jobs, j)
		if end := j.Submit + j.Duration; end > tr.Horizon {
			tr.Horizon = end
		}
	}
	tr.sortBySubmit()
	return tr
}

// WriteTaskEvents renders a trace in the task_events schema: one SUBMIT
// and SCHEDULE at the job's submission offset and one FINISH at
// submission+duration. It lets the synthetic generator interoperate with
// tooling built for the original format.
func WriteTaskEvents(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	write := func(ts time.Duration, jobID int64, evType TaskEventType, memReq float64) error {
		rec := make([]string, taskEventColumns)
		rec[0] = strconv.FormatInt(ts.Microseconds(), 10)
		rec[2] = strconv.FormatInt(jobID, 10)
		rec[3] = "0"
		rec[5] = strconv.Itoa(int(evType))
		if evType == EventSubmit {
			rec[10] = strconv.FormatFloat(memReq, 'g', 17, 64)
		}
		return cw.Write(rec)
	}
	for _, j := range t.Jobs {
		if err := write(j.Submit, j.ID, EventSubmit, j.AssignedMemFrac); err != nil {
			return fmt.Errorf("borg: writing SUBMIT for job %d: %w", j.ID, err)
		}
		if err := write(j.Submit, j.ID, EventSchedule, 0); err != nil {
			return fmt.Errorf("borg: writing SCHEDULE for job %d: %w", j.ID, err)
		}
		if err := write(j.Submit+j.Duration, j.ID, EventFinish, 0); err != nil {
			return fmt.Errorf("borg: writing FINISH for job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// UsageCSVColumns documents the minimal task_usage extraction this
// package consumes: job ID and maximal memory usage.
const UsageCSVColumns = 2

// ParseUsageCSV reads a two-column (job_id, max_memory_fraction) CSV —
// the reduction of the task_usage table the §VI-B extraction needs.
func ParseUsageCSV(r io.Reader) (map[int64]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = UsageCSVColumns
	out := make(map[int64]float64)
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("borg: usage line %d: %w", line, err)
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("borg: usage line %d job ID: %w", line, err)
		}
		frac, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("borg: usage line %d fraction: %w", line, err)
		}
		if frac < 0 || frac > 1 {
			return nil, fmt.Errorf("borg: usage line %d fraction %g out of [0,1]", line, frac)
		}
		out[id] = frac
	}
}
