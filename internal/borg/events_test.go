package borg

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseTaskEventsBasic(t *testing.T) {
	input := strings.Join([]string{
		"0,,100,0,,0,user1,2,9,0.5,0.125,0.01,", // SUBMIT job 100, mem req 0.125
		"1000000,,100,0,m1,1,user1,2,9,,,,",     // SCHEDULE at 1s
		"61000000,,100,0,m1,4,user1,2,9,,,,",    // FINISH at 61s
	}, "\n") + "\n"
	events, err := ParseTaskEvents(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Type != EventSubmit || events[0].MemoryRequest != 0.125 {
		t.Fatalf("submit = %+v", events[0])
	}
	if events[1].Type != EventSchedule || events[1].Timestamp != time.Second {
		t.Fatalf("schedule = %+v", events[1])
	}
	if events[2].Type != EventFinish || events[2].Timestamp != 61*time.Second {
		t.Fatalf("finish = %+v", events[2])
	}
}

func TestParseTaskEventsErrors(t *testing.T) {
	bad := []string{
		"x,,100,0,,0,u,2,9,,,,\n",      // bad timestamp
		"0,,abc,0,,0,u,2,9,,,,\n",      // bad job ID
		"0,,100,z,,0,u,2,9,,,,\n",      // bad task index
		"0,,100,0,,9,u,2,9,,,,\n",      // event type out of range
		"0,,100,0,,0,u,2,9,,bogus,,\n", // bad memory request
		"0,,100,0,,0,u,2,9,,1.5,,\n",   // memory request out of range
		"0,,100,0,,0\n",                // wrong column count
	}
	for _, in := range bad {
		if _, err := ParseTaskEvents(strings.NewReader(in)); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestJobsFromEvents(t *testing.T) {
	events := []TaskEvent{
		{Timestamp: 0, JobID: 1, Type: EventSubmit, MemoryRequest: 0.1},
		{Timestamp: 2 * time.Second, JobID: 1, Type: EventSchedule},
		{Timestamp: 62 * time.Second, JobID: 1, Type: EventFinish},
		// Job 2: killed, never finishes — skipped.
		{Timestamp: 5 * time.Second, JobID: 2, Type: EventSubmit, MemoryRequest: 0.2},
		{Timestamp: 6 * time.Second, JobID: 2, Type: EventSchedule},
		{Timestamp: 10 * time.Second, JobID: 2, Type: EventKill},
		// Job 3: multi-task — earliest submit/schedule, latest finish,
		// max request.
		{Timestamp: 10 * time.Second, JobID: 3, Type: EventSubmit, MemoryRequest: 0.05},
		{Timestamp: 11 * time.Second, JobID: 3, Type: EventSubmit, MemoryRequest: 0.08},
		{Timestamp: 12 * time.Second, JobID: 3, Type: EventSchedule},
		{Timestamp: 13 * time.Second, JobID: 3, Type: EventSchedule},
		{Timestamp: 40 * time.Second, JobID: 3, Type: EventFinish},
		{Timestamp: 50 * time.Second, JobID: 3, Type: EventFinish},
	}
	usage := map[int64]float64{1: 0.09}
	tr := JobsFromEvents(events, usage)
	if tr.Len() != 2 {
		t.Fatalf("jobs = %d, want 2", tr.Len())
	}
	j1 := tr.Jobs[0]
	if j1.ID != 1 || j1.Submit != 0 || j1.Duration != time.Minute {
		t.Fatalf("job 1 = %+v", j1)
	}
	if j1.AssignedMemFrac != 0.1 || j1.MaxMemFrac != 0.09 {
		t.Fatalf("job 1 memory = %+v", j1)
	}
	j3 := tr.Jobs[1]
	if j3.ID != 3 || j3.Submit != 10*time.Second || j3.Duration != 38*time.Second {
		t.Fatalf("job 3 = %+v", j3)
	}
	if j3.AssignedMemFrac != 0.08 {
		t.Fatalf("job 3 request = %v, want max across tasks", j3.AssignedMemFrac)
	}
	// No usage entry: falls back to the request.
	if j3.MaxMemFrac != 0.08 {
		t.Fatalf("job 3 usage = %v", j3.MaxMemFrac)
	}
}

func TestTaskEventsRoundTrip(t *testing.T) {
	src := NewGenerator(DefaultConfig(6)).EvalSlice()
	var buf bytes.Buffer
	if err := WriteTaskEvents(&buf, src); err != nil {
		t.Fatal(err)
	}
	events, err := ParseTaskEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3*src.Len() {
		t.Fatalf("events = %d, want %d", len(events), 3*src.Len())
	}
	// Reconstruct max-usage from the source (WriteTaskEvents only carries
	// the request; usage travels via the task_usage reduction).
	usage := make(map[int64]float64, src.Len())
	for _, j := range src.Jobs {
		usage[j.ID] = j.MaxMemFrac
	}
	back := JobsFromEvents(events, usage)
	if back.Len() != src.Len() {
		t.Fatalf("round trip lost jobs: %d vs %d", back.Len(), src.Len())
	}
	for i := range src.Jobs {
		a, b := src.Jobs[i], back.Jobs[i]
		if a.ID != b.ID || a.Submit != b.Submit || a.Duration != b.Duration {
			t.Fatalf("job %d timing mismatch:\n%+v\n%+v", i, a, b)
		}
		if a.AssignedMemFrac != b.AssignedMemFrac || a.MaxMemFrac != b.MaxMemFrac {
			t.Fatalf("job %d memory mismatch:\n%+v\n%+v", i, a, b)
		}
	}
	if back.OverAllocatorCount() != EvalOverAllocators {
		t.Fatalf("over-allocators = %d", back.OverAllocatorCount())
	}
}

func TestParseUsageCSV(t *testing.T) {
	in := "1,0.25\n42,0.01\n"
	m, err := ParseUsageCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[1] != 0.25 || m[42] != 0.01 {
		t.Fatalf("usage = %v", m)
	}
	for _, bad := range []string{"x,0.5\n", "1,abc\n", "1,1.5\n", "1\n"} {
		if _, err := ParseUsageCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}
