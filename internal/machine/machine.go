// Package machine models the physical servers of the paper's testbed
// (§VI-A): RAM, CPUs, an optional SGX package with its kernel driver, a
// process table and cgroup bookkeeping.
//
// Workloads (internal/stress) run as simulated processes that allocate
// standard virtual memory from the machine or EPC pages through the
// driver; the kubelet and the monitoring probes read back per-cgroup usage
// from here.
package machine

import (
	"errors"
	"fmt"
	"sync"

	"github.com/sgxorch/sgxorch/internal/isgx"
	"github.com/sgxorch/sgxorch/internal/sgx"
)

// Errors returned by machine operations.
var (
	// ErrOutOfMemory is returned when a virtual-memory allocation exceeds
	// the machine's RAM.
	ErrOutOfMemory = errors.New("machine: out of memory")
	// ErrNoSuchProcess is returned for operations on dead or unknown
	// PIDs.
	ErrNoSuchProcess = errors.New("machine: no such process")
	// ErrNoSGX is returned when an SGX operation reaches a machine
	// without an SGX package.
	ErrNoSGX = errors.New("machine: no SGX support")
)

// Machine is one simulated physical host.
type Machine struct {
	name      string
	ramBytes  int64
	cpuMillis int64

	sgxPkg *sgx.Package
	driver *isgx.Driver

	mu      sync.Mutex
	usedRAM int64
	procs   map[int]*Process
	nextPID int
}

// Option configures a Machine.
type Option func(*Machine)

// WithSGX equips the machine with an SGX package of the given geometry and
// attaches a (modified) isgx driver to it. Driver options configure limit
// enforcement.
//
// The package is created with paging enabled: real SGX 1 hardware and the
// kernel driver support EPC over-commitment via the paging mechanism
// (§II), so enclave allocation beyond the usable EPC succeeds but is slow.
// Preventing over-commitment is the orchestrator's job (§V-A), not the
// hardware's.
func WithSGX(geo sgx.Geometry, driverOpts ...isgx.Option) Option {
	return func(m *Machine) {
		m.sgxPkg = sgx.NewPackage(geo, sgx.WithOvercommit())
		m.driver = isgx.New(m.sgxPkg, driverOpts...)
	}
}

// WithSGX2 equips the machine with an SGX 2 package: like WithSGX, plus
// dynamic EPC memory management (EDMM, §VI-G).
func WithSGX2(geo sgx.Geometry, driverOpts ...isgx.Option) Option {
	return func(m *Machine) {
		m.sgxPkg = sgx.NewPackage(geo, sgx.WithOvercommit(), sgx.WithSGX2())
		m.driver = isgx.New(m.sgxPkg, driverOpts...)
	}
}

// New creates a machine with the given name, RAM size and CPU capacity in
// millicores.
func New(name string, ramBytes, cpuMillis int64, opts ...Option) *Machine {
	m := &Machine{
		name:      name,
		ramBytes:  ramBytes,
		cpuMillis: cpuMillis,
		procs:     make(map[int]*Process),
		nextPID:   1,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Name returns the machine's host name.
func (m *Machine) Name() string { return m.name }

// RAMBytes returns the installed RAM.
func (m *Machine) RAMBytes() int64 { return m.ramBytes }

// CPUMillis returns the CPU capacity in millicores.
func (m *Machine) CPUMillis() int64 { return m.cpuMillis }

// HasSGX reports whether the machine has an SGX package and driver — the
// check the device plugin performs ("checks for the availability of the
// Intel SGX kernel module on each node", §V-A).
func (m *Machine) HasSGX() bool { return m.driver != nil }

// Driver returns the machine's isgx driver, or nil on non-SGX machines.
func (m *Machine) Driver() *isgx.Driver { return m.driver }

// SGX returns the machine's SGX package, or nil.
func (m *Machine) SGX() *sgx.Package { return m.sgxPkg }

// RAMUsed returns the total virtual memory currently allocated.
func (m *Machine) RAMUsed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.usedRAM
}

// RAMFree returns the unallocated RAM.
func (m *Machine) RAMFree() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ramBytes - m.usedRAM
}

// Process is a simulated OS process belonging to a pod (cgroup).
type Process struct {
	PID        int
	CgroupPath string

	m        *Machine
	mu       sync.Mutex
	vmBytes  int64
	enclaves []*sgx.Enclave
	dead     bool
}

// StartProcess forks a new process inside the given cgroup.
func (m *Machine) StartProcess(cgroupPath string) *Process {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := &Process{PID: m.nextPID, CgroupPath: cgroupPath, m: m}
	m.nextPID++
	m.procs[p.PID] = p
	return p
}

// Process returns the live process with the given PID.
func (m *Machine) Process(pid int) (*Process, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: pid %d", ErrNoSuchProcess, pid)
	}
	return p, nil
}

// ProcessCount returns the number of live processes.
func (m *Machine) ProcessCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.procs)
}

// AllocVM allocates standard virtual memory to the process, failing with
// ErrOutOfMemory if the machine's RAM would be exceeded.
func (p *Process) AllocVM(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("machine: negative allocation %d", bytes)
	}
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return fmt.Errorf("%w: pid %d", ErrNoSuchProcess, p.PID)
	}
	if p.m.usedRAM+bytes > p.m.ramBytes {
		return fmt.Errorf("%w: used %d + %d > %d", ErrOutOfMemory,
			p.m.usedRAM, bytes, p.m.ramBytes)
	}
	p.m.usedRAM += bytes
	p.vmBytes += bytes
	return nil
}

// FreeVM releases up to bytes of the process's virtual memory.
func (p *Process) FreeVM(bytes int64) {
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if bytes > p.vmBytes {
		bytes = p.vmBytes
	}
	p.vmBytes -= bytes
	p.m.usedRAM -= bytes
}

// VMBytes returns the process's current virtual-memory allocation.
func (p *Process) VMBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vmBytes
}

// OpenEnclave builds and initializes an enclave through the machine's
// driver, charging the pages to this process and its cgroup.
func (p *Process) OpenEnclave(pages int64) (*sgx.Enclave, error) {
	if p.m.driver == nil {
		return nil, fmt.Errorf("%w: machine %s", ErrNoSGX, p.m.name)
	}
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: pid %d", ErrNoSuchProcess, p.PID)
	}
	p.mu.Unlock()
	e, err := p.m.driver.OpenEnclave(p.PID, p.CgroupPath, pages)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.enclaves = append(p.enclaves, e)
	p.mu.Unlock()
	return e, nil
}

// Kill terminates the process, releasing its virtual memory and destroying
// its enclaves. Killing an already dead process is a no-op.
func (p *Process) Kill() {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	vm := p.vmBytes
	p.vmBytes = 0
	enclaves := p.enclaves
	p.enclaves = nil
	p.mu.Unlock()

	for _, e := range enclaves {
		// Destroy can only fail on double-destroy, which Kill's dead
		// flag already excludes.
		_ = e.Destroy()
	}

	p.m.mu.Lock()
	p.m.usedRAM -= vm
	delete(p.m.procs, p.PID)
	p.m.mu.Unlock()
}

// VMBytesByCgroup sums the virtual memory of all live processes in the
// given cgroup — the per-pod figure the Heapster-equivalent collector
// scrapes (§V-C).
func (m *Machine) VMBytesByCgroup(cgroupPath string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, p := range m.procs {
		if p.CgroupPath == cgroupPath {
			total += p.VMBytes()
		}
	}
	return total
}

// EPCPagesByCgroup sums the EPC pages of the given cgroup via the driver —
// the per-pod figure the SGX metrics probe scrapes (§V-C). Non-SGX
// machines report zero.
func (m *Machine) EPCPagesByCgroup(cgroupPath string) int64 {
	if m.driver == nil {
		return 0
	}
	return m.driver.PagesForCgroup(cgroupPath)
}

// Cgroups returns the distinct cgroup paths with live processes.
func (m *Machine) Cgroups() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, p := range m.procs {
		if !seen[p.CgroupPath] {
			seen[p.CgroupPath] = true
			out = append(out, p.CgroupPath)
		}
	}
	return out
}
