package machine

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/sgxorch/sgxorch/internal/isgx"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/sgx"
)

func TestMachineBasics(t *testing.T) {
	m := New("node-1", 8*resource.GiB, 4000)
	if m.Name() != "node-1" || m.RAMBytes() != 8*resource.GiB || m.CPUMillis() != 4000 {
		t.Fatalf("basic accessors wrong: %s %d %d", m.Name(), m.RAMBytes(), m.CPUMillis())
	}
	if m.HasSGX() {
		t.Fatal("plain machine reports SGX")
	}
	if m.Driver() != nil || m.SGX() != nil {
		t.Fatal("plain machine has driver/package")
	}
}

func TestSGXMachine(t *testing.T) {
	m := New("sgx-1", 8*resource.GiB, 8000, WithSGX(sgx.DefaultGeometry()))
	if !m.HasSGX() {
		t.Fatal("SGX machine reports no SGX")
	}
	if got := m.Driver().TotalEPCPages(); got != 23936 {
		t.Fatalf("TotalEPCPages = %d", got)
	}
	if !m.Driver().Enforcing() {
		t.Fatal("driver should enforce by default")
	}
	m2 := New("sgx-2", 8*resource.GiB, 8000,
		WithSGX(sgx.DefaultGeometry(), isgx.WithoutEnforcement()))
	if m2.Driver().Enforcing() {
		t.Fatal("WithoutEnforcement not propagated")
	}
}

func TestVMAllocationAndOOM(t *testing.T) {
	m := New("n", 1000, 1000)
	p := m.StartProcess("/kubepods/a")
	if err := p.AllocVM(600); err != nil {
		t.Fatal(err)
	}
	if err := p.AllocVM(500); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-RAM alloc err = %v, want ErrOutOfMemory", err)
	}
	if got := m.RAMUsed(); got != 600 {
		t.Fatalf("RAMUsed = %d, want 600", got)
	}
	if got := m.RAMFree(); got != 400 {
		t.Fatalf("RAMFree = %d, want 400", got)
	}
	p.FreeVM(100)
	if got := p.VMBytes(); got != 500 {
		t.Fatalf("VMBytes = %d, want 500", got)
	}
	// Freeing more than allocated clamps.
	p.FreeVM(10000)
	if got := m.RAMUsed(); got != 0 {
		t.Fatalf("RAMUsed after over-free = %d, want 0", got)
	}
	if err := p.AllocVM(-1); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestProcessLifecycle(t *testing.T) {
	m := New("n", 1000, 1000)
	p := m.StartProcess("/kubepods/a")
	got, err := m.Process(p.PID)
	if err != nil || got != p {
		t.Fatalf("Process lookup = %v, %v", got, err)
	}
	if err := p.AllocVM(500); err != nil {
		t.Fatal(err)
	}
	p.Kill()
	if _, err := m.Process(p.PID); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("dead process lookup err = %v", err)
	}
	if got := m.RAMUsed(); got != 0 {
		t.Fatalf("kill leaked RAM: %d", got)
	}
	if err := p.AllocVM(1); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("alloc on dead process err = %v", err)
	}
	p.Kill() // idempotent
}

func TestKillDestroysEnclaves(t *testing.T) {
	m := New("sgx", 8*resource.GiB, 8000, WithSGX(sgx.DefaultGeometry()))
	p := m.StartProcess("/kubepods/a")
	if _, err := p.OpenEnclave(5000); err != nil {
		t.Fatal(err)
	}
	if got := m.Driver().FreePages(); got != 23936-5000 {
		t.Fatalf("FreePages = %d", got)
	}
	p.Kill()
	if got := m.Driver().FreePages(); got != 23936 {
		t.Fatalf("kill leaked EPC pages: free = %d", got)
	}
}

func TestOpenEnclaveOnNonSGXMachine(t *testing.T) {
	m := New("plain", resource.GiB, 1000)
	p := m.StartProcess("/kubepods/a")
	if _, err := p.OpenEnclave(10); !errors.Is(err, ErrNoSGX) {
		t.Fatalf("err = %v, want ErrNoSGX", err)
	}
}

func TestUsageByCgroup(t *testing.T) {
	m := New("sgx", 8*resource.GiB, 8000, WithSGX(sgx.DefaultGeometry()))
	a1 := m.StartProcess("/kubepods/podA")
	a2 := m.StartProcess("/kubepods/podA")
	b := m.StartProcess("/kubepods/podB")
	if err := a1.AllocVM(100); err != nil {
		t.Fatal(err)
	}
	if err := a2.AllocVM(200); err != nil {
		t.Fatal(err)
	}
	if err := b.AllocVM(400); err != nil {
		t.Fatal(err)
	}
	if _, err := a1.OpenEnclave(50); err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenEnclave(70); err != nil {
		t.Fatal(err)
	}
	if got := m.VMBytesByCgroup("/kubepods/podA"); got != 300 {
		t.Fatalf("VMBytesByCgroup(A) = %d, want 300", got)
	}
	if got := m.EPCPagesByCgroup("/kubepods/podA"); got != 50 {
		t.Fatalf("EPCPagesByCgroup(A) = %d, want 50", got)
	}
	if got := m.EPCPagesByCgroup("/kubepods/podB"); got != 70 {
		t.Fatalf("EPCPagesByCgroup(B) = %d, want 70", got)
	}
	cgs := m.Cgroups()
	if len(cgs) != 2 {
		t.Fatalf("Cgroups = %v", cgs)
	}
	plain := New("p", resource.GiB, 1000)
	if got := plain.EPCPagesByCgroup("/x"); got != 0 {
		t.Fatalf("non-SGX EPCPagesByCgroup = %d", got)
	}
}

// Property: RAM accounting balances for any alloc/free/kill sequence.
func TestRAMAccountingProperty(t *testing.T) {
	f := func(allocs []uint32) bool {
		m := New("n", 1<<40, 1000)
		var procs []*Process
		var want int64
		for i, a := range allocs {
			p := m.StartProcess("cg")
			n := int64(a % (1 << 20))
			if err := p.AllocVM(n); err != nil {
				return false
			}
			want += n
			procs = append(procs, p)
			if i%3 == 0 {
				p.Kill()
				want -= n
			}
		}
		if m.RAMUsed() != want {
			return false
		}
		for _, p := range procs {
			p.Kill()
		}
		return m.RAMUsed() == 0 && m.ProcessCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
