package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/resource"
)

// TestSchedulerSafetyInvariants drives a randomised workload through the
// full stack and checks the scheduler's safety properties on every
// placement:
//
//  1. SGX jobs only land on SGX nodes (§IV hardware filter);
//  2. standard jobs land on SGX nodes only when no standard node could
//     ever have fit them (§IV SGX-last rule — approximated here by using
//     jobs that always fit standard nodes);
//  3. the per-node sum of EPC page requests never exceeds the device
//     count (§V-A no-over-commitment);
//  4. every running pod's node exists and is schedulable.
func TestSchedulerSafetyInvariants(t *testing.T) {
	for _, policy := range []Policy{Binpack{}, Spread{}} {
		policy := policy
		t.Run(policy.Name(), func(t *testing.T) {
			c := newTestCluster(t, clusterSpec{
				stdNodes: 2, sgxNodes: 2, policy: policy,
				useMetrics: true, enforcement: true,
			})
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 120; i++ {
				name := fmt.Sprintf("rand-%03d", i)
				dur := time.Duration(5+rng.Intn(120)) * time.Second
				if rng.Intn(2) == 0 {
					pages := int64(1 + rng.Intn(6000))
					c.submit(t, epcJob(name, pages, resource.BytesForPages(pages), dur))
				} else {
					mem := int64(1+rng.Intn(8)) * resource.GiB
					c.submit(t, memJob(name, mem, mem, dur))
				}
				c.clk.Advance(time.Duration(rng.Intn(20)) * time.Second)
				c.checkInvariants(t)
			}
			c.clk.Advance(time.Hour)
			c.checkInvariants(t)
			if !c.srv.AllTerminal() {
				c.clk.Advance(3 * time.Hour)
			}
			if !c.srv.AllTerminal() {
				t.Fatal("randomised workload did not drain")
			}
		})
	}
}

// checkInvariants asserts the §IV/§V-A safety properties at the current
// instant.
func (c *testCluster) checkInvariants(t *testing.T) {
	t.Helper()
	nodes := make(map[string]*api.Node)
	for _, n := range c.srv.ListNodes() {
		nodes[n.Name] = n
	}
	epcByNode := make(map[string]int64)
	for _, p := range c.srv.ListPods(func(p *api.Pod) bool {
		return p.Spec.NodeName != "" && !p.IsTerminal()
	}) {
		node, ok := nodes[p.Spec.NodeName]
		if !ok {
			t.Fatalf("pod %s bound to unknown node %q", p.Name, p.Spec.NodeName)
		}
		if node.Unschedulable {
			t.Fatalf("pod %s bound to unschedulable node %s", p.Name, node.Name)
		}
		if p.IsSGX() && !node.HasSGX() {
			t.Fatalf("SGX pod %s on non-SGX node %s", p.Name, node.Name)
		}
		if !p.IsSGX() && node.HasSGX() {
			t.Fatalf("standard pod %s wasted SGX node %s (standard capacity never exhausted here)",
				p.Name, node.Name)
		}
		epcByNode[node.Name] += p.TotalRequests().Get(resource.EPCPages)
	}
	for name, pages := range epcByNode {
		if cap := nodes[name].Allocatable.Get(resource.EPCPages); pages > cap {
			t.Fatalf("node %s EPC requests %d exceed device count %d", name, pages, cap)
		}
	}
}
