package core

import (
	"container/heap"
	"sort"
	"sync"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/monitor"
	"github.com/sgxorch/sgxorch/internal/resource"
)

// ClusterCache is the scheduler's event-driven view of the cluster. It
// builds itself once from an apiserver.ListAndWatch snapshot and then
// applies watch events — adding a pod's fused usage to its node on bind,
// removing it on terminal transitions, re-fusing on metric and maturity
// changes — instead of re-deriving every node from every pod and every
// series each pass the way BuildView does. Snapshot therefore costs
// O(schedulable nodes), independent of how many pods are bound, and a
// pass over a mostly-idle 10k-pod cluster no longer pays for the 10k.
//
// Three inputs can move a node's fused usage between passes without any
// API-server event:
//
//   - a metric write changes a pod's window peak — the WindowMax
//     aggregator's change callback re-fuses the pod immediately;
//   - a pod's peak ages out of the sliding window — Snapshot runs the
//     aggregator's expiry-heap Refresh first, which fires the same
//     callback for exactly the series that decayed;
//   - a young pod matures past the metrics lag and stops being charged
//     max(measured, requested) — pods register their maturity instant in
//     a min-heap that Snapshot drains up to now.
//
// With a synchronous-watch server all callbacks run on the mutating
// goroutine, so under the simulation clock the cache is deterministic;
// BuildView remains the from-scratch reference implementation it is
// property-tested against. With an async-watch server the broker's pump
// feeds ApplyAll batches on a separate goroutine (the cache lags the
// server by a bounded amount), and a cache that falls off the broker
// ring resyncs from a fresh snapshot — state after the resync is
// property-tested identical to a from-scratch build.
type ClusterCache struct {
	clk        clock.Clock
	srv        *apiserver.Server
	agg        *monitor.WindowMax // nil when usage-aware scheduling is off
	lag        time.Duration
	useMetrics bool

	mu    sync.Mutex
	rev   int64 // latest applied resource version (events at or below are dropped)
	nodes map[string]*cachedNode
	names []string // node names, sorted
	pods  map[string]*cachedPod
	// groups indexes tracked pods (bound and permit-holding alike) by pod
	// group, cluster-wide — the preemption planner evicts a gang wholesale
	// or not at all, so it needs every member's priority and charge, not
	// just the ones on the candidate node.
	groups   map[string]map[string]*cachedPod
	maturity matHeap
	unsub    func()
	// prioCount counts live bound pods per priority tier and prios keeps
	// the occupied tiers sorted ascending; the preemption planner
	// consults them to skip victim searches in O(1) when no strictly
	// lower tier is occupied anywhere (the common priority-free case —
	// this gate runs once per unschedulable pod per pass).
	prioCount map[int32]int
	prios     []int32
	// beCount counts live tracked pods that declared the best-effort
	// workload class — the always-preemption-eligible tier. Like prios it
	// feeds the O(1) per-pass preemption gate: a class allowed to take
	// best-effort victims only plans victim searches when at least one
	// such pod is charged somewhere.
	beCount int

	// Change journal for incremental views (SyncView): the names of nodes
	// whose scheduling-relevant state changed, in change order.
	// journalBase is the absolute offset of journal[0] — entries older
	// than it were compacted away and force a full rebuild on views that
	// have not synced past them. viewEpoch invalidates all views when the
	// cache re-primes from a snapshot.
	viewEpoch   uint64
	journal     []string
	journalBase int64
}

// cachedNode is the incrementally maintained per-node state.
type cachedNode struct {
	name        string
	sgx         bool
	schedulable bool // Ready && !Unschedulable
	allocatable resource.List
	memUsed     int64 // fused memory bytes of live bound pods
	epcUsed     int64 // fused EPC pages of live bound pods
	reqEPC      int64 // requested EPC pages of live bound pods (device accounting)
	// pods indexes the live bound pods charged to this node, so the
	// preemption planner enumerates victims in O(node pods) instead of
	// scanning the cluster.
	pods map[string]*cachedPod
}

// cachedPod tracks one live bound pod and its current fused contribution
// to its node, so a later transition can subtract exactly what was added.
type cachedPod struct {
	name      string
	node      string
	group     string // pod group ("" for solo pods)
	priority  int32
	reqMem    int64
	reqEPC    int64
	startedAt time.Time
	memBytes  int64 // fused contribution currently charged to the node
	epcPages  int64
	// reserved marks a gang member holding a conditional permit: its
	// capacity is committed on the node (charged here exactly like a
	// bind) but the pod is still unbound in authoritative state. A
	// PodBound event flips it; PodPermitReleased removes it.
	reserved bool
	// bestEffort marks a pod that *declared* the best-effort workload
	// class in its spec, making it preemption-eligible regardless of
	// priority tier. Deliberately keyed off the declared field and never
	// off classifier inference: eviction eligibility must be identical
	// for every scheduler watching the cluster, while each fleet may run
	// its own inference configuration.
	bestEffort bool
}

// newClusterCache performs the informer handshake against the API server
// and primes the cache from the snapshot. The aggregator (when metrics
// are on) must already be backfilled; the caller wires its change
// callback to onMetric afterwards. Events arrive through the watch
// broker in batches (ApplyAll); the cache tracks both pods and nodes,
// so it subscribes to the merged stream — the broker's per-topic rings
// are recombined in rev order, exactly the single-ring stream. If the
// cache ever falls off a ring — possible only with an async-watch
// server — it resyncs from a fresh snapshot instead of missing deltas.
func newClusterCache(clk clock.Clock, srv *apiserver.Server, agg *monitor.WindowMax, lag time.Duration, useMetrics bool) *ClusterCache {
	c := &ClusterCache{
		clk:        clk,
		srv:        srv,
		agg:        agg,
		lag:        lag,
		useMetrics: useMetrics,
	}
	// Events arriving while the snapshot is being applied block on c.mu;
	// anything already reflected in the snapshot is dropped by the rev
	// gate when it is delivered.
	c.mu.Lock()
	defer c.mu.Unlock()
	snap, unsub := srv.ListAndWatchBatch(c.ApplyAll, c.resync)
	c.unsub = unsub
	c.primeLocked(snap)
	return c
}

// primeLocked (re)builds the cache from a consistent snapshot,
// discarding all previous state. Caller must hold c.mu.
func (c *ClusterCache) primeLocked(snap apiserver.Snapshot) {
	c.rev = snap.Rev
	// Incremental views synced against the previous state are now
	// meaningless: bump the epoch so their next SyncView rebuilds.
	c.viewEpoch++
	c.journal = c.journal[:0]
	c.journalBase = 0
	c.nodes = make(map[string]*cachedNode, len(snap.Nodes))
	c.names = c.names[:0]
	c.pods = make(map[string]*cachedPod, len(snap.Pods))
	c.groups = make(map[string]map[string]*cachedPod)
	c.maturity = c.maturity[:0]
	c.prioCount = make(map[int32]int)
	c.prios = c.prios[:0]
	c.beCount = 0
	for _, n := range snap.Nodes {
		c.upsertNodeLocked(n)
	}
	now := c.clk.Now()
	for _, p := range snap.Pods {
		c.addPodLocked(p, now, false)
	}
	// In-flight gang permits are invisible in the snapshot's pod state
	// (the pods are still unbound) but their capacity is committed on the
	// nodes; charge them so a cache primed (or resynced) mid-gang matches
	// the server. PodPermitHeld events past snap.Rev find the pod already
	// tracked and no-op; released-before-prime permits simply never
	// appear, and their PodPermitReleased delivery no-ops too.
	c.srv.VisitReservations(func(pod, node, group string) {
		if _, ok := c.pods[pod]; ok {
			return
		}
		if _, ok := c.nodes[node]; !ok {
			return
		}
		p, err := c.srv.GetPod(pod)
		if err != nil || p.IsTerminal() {
			return
		}
		req := p.TotalRequests()
		c.trackPodLocked(&cachedPod{
			name:       pod,
			node:       node,
			group:      group,
			priority:   p.Spec.Priority,
			reqMem:     req.Get(resource.Memory),
			reqEPC:     req.Get(resource.EPCPages),
			reserved:   true,
			bestEffort: p.Spec.WorkloadClass() == api.ClassBestEffort,
		}, now)
	})
}

// resync is the broker's ring-overflow recovery: the cache missed
// events, so the incremental state is unusable — rebuild it from the
// fresh snapshot, exactly as at the original handshake. Delivery
// resumes with the first event after snap.Rev.
func (c *ClusterCache) resync(snap apiserver.Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.primeLocked(snap)
}

// Close detaches the cache from the API server watch.
func (c *ClusterCache) Close() {
	if c.unsub != nil {
		c.unsub()
		c.unsub = nil
	}
}

// Refresh drains the time-driven state: expired window peaks re-announce
// through the aggregator's expiry heap and matured pods re-fuse. It must
// run periodically even when there is nothing to schedule — the expiry
// and maturity heaps are only emptied here, so skipping it on idle passes
// would let them (and decayed series) grow for as long as metrics flow.
// Cost is O(entries that actually expired since the last call).
func (c *ClusterCache) Refresh() {
	if c.agg != nil {
		c.agg.Refresh()
	}
	now := c.clk.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refreshMaturityLocked(now)
}

// Snapshot brings the time-dependent state current (window decay,
// maturity transitions) and copies the schedulable nodes into a
// ClusterView the pass may mutate freely. Cost is O(nodes copied) plus
// the series that actually decayed since the last call.
func (c *ClusterCache) Snapshot() *ClusterView {
	c.Refresh()
	c.mu.Lock()
	defer c.mu.Unlock()
	view := &ClusterView{Nodes: make([]*NodeView, 0, len(c.names))}
	for _, name := range c.names {
		cn := c.nodes[name]
		if !cn.schedulable {
			continue
		}
		view.Nodes = append(view.Nodes, &NodeView{
			Name:        cn.name,
			SGX:         cn.sgx,
			Allocatable: cn.allocatable.Clone(),
			Used:        resource.List{resource.Memory: cn.memUsed, resource.EPCPages: cn.epcUsed},
			FreeDevices: cn.allocatable.Get(resource.EPCPages) - cn.reqEPC,
		})
	}
	return view
}

// maxViewJournal bounds the change journal. When it fills, the oldest
// half is dropped; views that had not synced past the dropped prefix
// rebuild from scratch on their next SyncView instead of replaying.
const maxViewJournal = 1 << 15

// touchLocked records that a node's scheduling-relevant state changed so
// incremental views re-copy it on their next sync. Every change appends:
// collapsing even adjacent duplicates would keep the journal tip from
// advancing while state keeps changing, and a view already synced past
// the collapsed entry would never re-copy the node. Caller must hold
// c.mu.
func (c *ClusterCache) touchLocked(node string) {
	if len(c.journal) >= maxViewJournal {
		half := len(c.journal) / 2
		c.journalBase += int64(half)
		c.journal = append(c.journal[:0], c.journal[half:]...)
	}
	c.journal = append(c.journal, node)
}

// NewView returns an empty incremental view bound to this cache; the
// first SyncView populates it. The view recycles its NodeViews (and
// their maps) across syncs, so a long-lived scheduler's per-pass
// snapshot cost is O(nodes that changed since its last pass) — the
// pooled copy-on-write path. The view must only be mutated through
// Commit, and only by one pass at a time; Snapshot remains the fully
// allocating flavour for callers that need a frozen copy.
func (c *ClusterCache) NewView() *ClusterView {
	return newIndexedView()
}

// SyncView brings an incremental view current: time-dependent state is
// refreshed exactly as in Snapshot, then the nodes journalled since the
// view's last sync are re-copied (insert, update+re-bucket, or drop).
// Views from another epoch, or too stale to replay cheaply, rebuild in
// O(cluster) — the same cost Snapshot pays every call.
func (c *ClusterCache) SyncView(v *ClusterView) {
	c.Refresh()
	c.mu.Lock()
	defer c.mu.Unlock()
	tip := c.journalBase + int64(len(c.journal))
	if v.epoch != c.viewEpoch || v.syncedTo < c.journalBase ||
		tip-v.syncedTo > int64(2*len(c.nodes)+16) {
		c.rebuildViewLocked(v)
		return
	}
	for _, name := range c.journal[v.syncedTo-c.journalBase:] {
		cn, ok := c.nodes[name]
		if !ok || !cn.schedulable {
			v.dropNode(name)
			continue
		}
		v.setNode(name, cn.sgx, cn.allocatable, cn.memUsed, cn.epcUsed,
			cn.allocatable.Get(resource.EPCPages)-cn.reqEPC)
	}
	v.syncedTo = tip
}

// rebuildViewLocked repopulates an incremental view from scratch in node
// name order, recycling its pooled NodeViews. Caller must hold c.mu.
func (c *ClusterCache) rebuildViewLocked(v *ClusterView) {
	v.recycleAll()
	for _, name := range c.names {
		cn := c.nodes[name]
		if !cn.schedulable {
			continue
		}
		n := v.takeNodeView(name)
		v.fillNode(n, cn.sgx, cn.allocatable, cn.memUsed, cn.epcUsed,
			cn.allocatable.Get(resource.EPCPages)-cn.reqEPC)
		v.Nodes = append(v.Nodes, n)
		v.byName[name] = n
		v.idx.insert(n)
	}
	v.epoch = c.viewEpoch
	v.syncedTo = c.journalBase + int64(len(c.journal))
}

// InjectBoundPod force-feeds the cache one live bound pod without going
// through the API server — the direct priming hook the million-pod
// benchmark uses to reach 10^6 bound pods in setup time instead of
// replaying 10^6 watch events. It charges the node exactly as a PodBound
// event would (metrics-off fusion: requests). Not for production paths.
func (c *ClusterCache) InjectBoundPod(name, node string, reqMem, reqEPC int64) {
	now := c.clk.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pods[name]; ok {
		return
	}
	if _, ok := c.nodes[node]; !ok {
		return
	}
	c.trackPodLocked(&cachedPod{
		name:   name,
		node:   node,
		reqMem: reqMem,
		reqEPC: reqEPC,
	}, now)
}

// ApplyAll applies a batch of consecutive watch events under one lock
// acquisition, with a single maturity-heap settle at the end — the
// batched ingest the broker's pump delivery feeds. Events at or below
// the cache's resource version are already reflected and dropped.
func (c *ClusterCache) ApplyAll(evs []apiserver.WatchEvent) {
	now := c.clk.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range evs {
		c.applyLocked(&evs[i], now)
	}
	// One settle per batch: matured pods re-fuse here rather than per
	// event. Snapshot() refreshes again anyway, so this only keeps the
	// heap from accumulating across large async batches.
	c.refreshMaturityLocked(now)
}

// applyLocked applies one watch event. Caller must hold c.mu.
func (c *ClusterCache) applyLocked(ev *apiserver.WatchEvent, now time.Time) {
	if ev.Rev <= c.rev {
		return
	}
	c.rev = ev.Rev
	switch ev.Type {
	case apiserver.NodeRegistered, apiserver.NodeUpdated:
		c.upsertNodeLocked(ev.Node)
	case apiserver.PodCreated:
		// Still pending: no node to account against yet.
	case apiserver.PodBound:
		c.addPodLocked(ev.Pod, now, false)
	case apiserver.PodPermitHeld:
		// A gang member's conditional reservation: capacity committed on
		// the node (the event pod carries the reserved node in its spec)
		// while the pod stays unbound. Charged exactly like a bind so
		// passes see the held headroom.
		c.addPodLocked(ev.Pod, now, true)
	case apiserver.PodPermitReleased:
		// Whole-gang rollback (permit timeout or preemption of held
		// members): the reservation's charge comes off the node.
		if cp, ok := c.pods[ev.Pod.Name]; ok && cp.reserved {
			c.removePodLocked(cp)
		}
	case apiserver.PodUpdated:
		c.podUpdatedLocked(ev.Pod, now)
	}
}

// onMetric is the WindowMax change callback: a (pod, node) window peak
// moved, so re-fuse that pod if it is live and the series matches the
// node it actually runs on (stale series from before a drain change
// nothing, per Listing 1's GROUP BY pod_name, nodename).
func (c *ClusterCache) onMetric(_, pod, node string, _ float64, _ bool) {
	now := c.clk.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, ok := c.pods[pod]
	if !ok || cp.node != node {
		return
	}
	c.fusePodLocked(cp, now)
}

// upsertNodeLocked creates or updates a node's static fields; maintained
// usage sums carry over across updates.
func (c *ClusterCache) upsertNodeLocked(n *api.Node) {
	cn, ok := c.nodes[n.Name]
	if !ok {
		cn = &cachedNode{name: n.Name, pods: make(map[string]*cachedPod)}
		c.nodes[n.Name] = cn
		i := sort.SearchStrings(c.names, n.Name)
		c.names = append(c.names, "")
		copy(c.names[i+1:], c.names[i:])
		c.names[i] = n.Name
	}
	cn.allocatable = n.Allocatable.Clone()
	cn.sgx = n.HasSGX()
	cn.schedulable = n.Ready && !n.Unschedulable
	c.touchLocked(cn.name)
}

// addPodLocked starts tracking a live pod with a node to account against
// — a bind, or (reserved=true) a gang permit — and charges that node.
func (c *ClusterCache) addPodLocked(p *api.Pod, now time.Time, reserved bool) {
	if p.Spec.NodeName == "" || p.IsTerminal() {
		return
	}
	if cp, ok := c.pods[p.Name]; ok {
		// A PodBound for a tracked reservation is the gang commit: the
		// capacity charge is already on the node (Reserve committed it),
		// so only the tracking state flips.
		if cp.reserved && !reserved && cp.node == p.Spec.NodeName {
			cp.reserved = false
			if !cp.startedAt.Equal(p.Status.StartedAt) {
				cp.startedAt = p.Status.StartedAt
				c.pushMaturityLocked(cp, now)
				c.fusePodLocked(cp, now)
			}
		}
		return
	}
	if _, ok := c.nodes[p.Spec.NodeName]; !ok {
		// Bind validates the node, and node events precede pod events
		// referencing them; untracked nodes would also be invisible to
		// BuildView.
		return
	}
	req := p.TotalRequests()
	c.trackPodLocked(&cachedPod{
		name:       p.Name,
		node:       p.Spec.NodeName,
		group:      p.Spec.PodGroup,
		priority:   p.Spec.Priority,
		reqMem:     req.Get(resource.Memory),
		reqEPC:     req.Get(resource.EPCPages),
		startedAt:  p.Status.StartedAt,
		reserved:   reserved,
		bestEffort: p.Spec.WorkloadClass() == api.ClassBestEffort,
	}, now)
}

// trackPodLocked registers a constructed cachedPod (whose node must
// exist) and charges its node — shared by the watch path and the
// benchmark priming hook.
func (c *ClusterCache) trackPodLocked(cp *cachedPod, now time.Time) {
	cn := c.nodes[cp.node]
	c.pods[cp.name] = cp
	cn.pods[cp.name] = cp
	if cp.group != "" {
		g := c.groups[cp.group]
		if g == nil {
			g = make(map[string]*cachedPod)
			c.groups[cp.group] = g
		}
		g[cp.name] = cp
	}
	if c.prioCount[cp.priority]++; c.prioCount[cp.priority] == 1 {
		i := sort.Search(len(c.prios), func(i int) bool { return c.prios[i] >= cp.priority })
		c.prios = append(c.prios, 0)
		copy(c.prios[i+1:], c.prios[i:])
		c.prios[i] = cp.priority
	}
	if cp.bestEffort {
		c.beCount++
	}
	cn.reqEPC += cp.reqEPC
	c.touchLocked(cp.node)
	c.fusePodLocked(cp, now)
	c.pushMaturityLocked(cp, now)
}

// podUpdatedLocked handles status transitions of a tracked pod. Terminal
// transitions and preemptions (the pod returns to the queue with its
// binding cleared) both remove the pod's charge from its node.
func (c *ClusterCache) podUpdatedLocked(p *api.Pod, now time.Time) {
	cp, ok := c.pods[p.Name]
	if p.IsTerminal() || p.Spec.NodeName == "" {
		if !ok {
			return // failed or preempted while never charged
		}
		c.removePodLocked(cp)
		return
	}
	if !ok {
		c.addPodLocked(p, now, false) // robustness: bound pods normally enter via PodBound
		return
	}
	if !cp.startedAt.Equal(p.Status.StartedAt) {
		cp.startedAt = p.Status.StartedAt
		c.pushMaturityLocked(cp, now)
	}
	c.fusePodLocked(cp, now)
}

// removePodLocked stops tracking a live bound pod, subtracting exactly
// what it was charged.
func (c *ClusterCache) removePodLocked(cp *cachedPod) {
	cn := c.nodes[cp.node]
	cn.reqEPC -= cp.reqEPC
	cn.memUsed -= cp.memBytes
	cn.epcUsed -= cp.epcPages
	delete(cn.pods, cp.name)
	delete(c.pods, cp.name)
	if cp.group != "" {
		if g := c.groups[cp.group]; g != nil {
			delete(g, cp.name)
			if len(g) == 0 {
				delete(c.groups, cp.group)
			}
		}
	}
	c.touchLocked(cp.node)
	if c.prioCount[cp.priority]--; c.prioCount[cp.priority] <= 0 {
		delete(c.prioCount, cp.priority)
		i := sort.Search(len(c.prios), func(i int) bool { return c.prios[i] >= cp.priority })
		c.prios = append(c.prios[:i], c.prios[i+1:]...)
	}
	if cp.bestEffort {
		c.beCount--
	}
}

// fusePodLocked recomputes a pod's fused usage at the current instant —
// the same measured-vs-requested fusion BuildView applies per pass — and
// moves the delta into its node's sums.
func (c *ClusterCache) fusePodLocked(cp *cachedPod, now time.Time) {
	var measuredMem, measuredEPC float64
	// Reserved pods are not running: any series under their name is stale
	// history from an earlier placement. Fuse from requests alone, the
	// same charge BuildView applies to reservations.
	if c.useMetrics && c.agg != nil && !cp.reserved {
		if v, ok := c.agg.Max(monitor.MeasurementMemory, cp.name, cp.node); ok {
			measuredMem = v
		}
		if v, ok := c.agg.Max(monitor.MeasurementEPC, cp.name, cp.node); ok {
			measuredEPC = v
		}
	}
	memBytes, epcPages := fuseUsage(cp.reqMem, cp.reqEPC, measuredMem, measuredEPC,
		cp.startedAt, now, c.lag, c.useMetrics)
	if memBytes == cp.memBytes && epcPages == cp.epcPages {
		return
	}
	cn := c.nodes[cp.node]
	cn.memUsed += memBytes - cp.memBytes
	cn.epcUsed += epcPages - cp.epcPages
	cp.memBytes, cp.epcPages = memBytes, epcPages
	c.touchLocked(cp.node)
}

// pushMaturityLocked registers the instant a started pod stops being
// young (request-floored); Snapshot re-fuses it then even if no metric
// event fires in between.
func (c *ClusterCache) pushMaturityLocked(cp *cachedPod, now time.Time) {
	if !c.useMetrics || cp.startedAt.IsZero() {
		return
	}
	matureAt := cp.startedAt.Add(c.lag)
	if !matureAt.After(now) {
		return // already mature; fuseUsage saw that
	}
	heap.Push(&c.maturity, matEntry{at: matureAt, pod: cp.name})
}

// refreshMaturityLocked re-fuses every pod whose maturity instant has
// passed. Entries are lazy: pods that terminated or restarted with a new
// StartedAt are skipped.
func (c *ClusterCache) refreshMaturityLocked(now time.Time) {
	for len(c.maturity) > 0 && !c.maturity[0].at.After(now) {
		ent := heap.Pop(&c.maturity).(matEntry)
		cp, ok := c.pods[ent.pod]
		if !ok || cp.startedAt.IsZero() || !cp.startedAt.Add(c.lag).Equal(ent.at) {
			continue
		}
		c.fusePodLocked(cp, now)
	}
}

// victimInfo describes one eviction unit as preemption material: a solo
// bound pod, or (group != "") a whole gang that can only be evicted
// all-or-nothing. For a gang unit the charges are the members' summed
// contributions on the candidate node, the priority is the gang's
// highest member priority anywhere (every member must be outranked
// before the unit is evictable), and count is the cluster-wide member
// count the eviction would displace.
type victimInfo struct {
	name     string // pod name, or the group name for a gang unit
	group    string // "" for solo pods
	priority int32
	count    int   // pods displaced by evicting this unit
	memBytes int64 // fused memory currently charged to the node
	epcPages int64 // fused EPC pages currently charged to the node
	reqEPC   int64 // device items the unit's departure returns on this node
}

// minPriority returns the lowest priority tier occupied by a live bound
// pod (ok=false when none are bound) — the O(1) gate that lets scheduling
// passes skip victim searches entirely in priority-free workloads. The
// scheduler reads it once per pass rather than per pod, so the pass pays
// one lock, not one per unschedulable pod.
func (c *ClusterCache) minPriority() (prio int32, ok bool) {
	prio, ok, _ = c.preemptGate()
	return prio, ok
}

// preemptGate is minPriority plus the best-effort dimension under the
// same single lock: whether any live tracked pod declared the
// best-effort class (always preemption-eligible regardless of tier).
// One call per pass covers both gates.
func (c *ClusterCache) preemptGate() (prio int32, anyBound, beBound bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.prios) == 0 {
		return 0, false, false
	}
	return c.prios[0], true, c.beCount > 0
}

// victimsBelow appends node's eviction units with priority strictly below
// prio to buf and returns it sorted by (priority ascending, name
// ascending) — the deterministic eviction-preference order: cheapest
// victims first, stable across runs. Solo pods are units of one; gang
// members collapse into one unit per group (evict the whole gang or
// none), eligible only when every member anywhere sits below prio.
// includeBE additionally admits pods that declared the best-effort
// workload class regardless of their tier (a gang unit needs every
// member eligible on one ground or the other) — the one sanctioned
// relaxation of the strictly-lower-priority invariant.
func (c *ClusterCache) victimsBelow(node string, prio int32, includeBE bool, buf []victimInfo) []victimInfo {
	c.mu.Lock()
	cn, ok := c.nodes[node]
	if !ok {
		c.mu.Unlock()
		return buf
	}
	eligible := func(cp *cachedPod) bool {
		return cp.priority < prio || (includeBE && cp.bestEffort)
	}
	var nodeGroups map[string]bool
	for _, cp := range cn.pods {
		if cp.group != "" {
			if nodeGroups == nil {
				nodeGroups = make(map[string]bool)
			}
			nodeGroups[cp.group] = true
			continue
		}
		if eligible(cp) {
			buf = append(buf, victimInfo{
				name:     cp.name,
				priority: cp.priority,
				count:    1,
				memBytes: cp.memBytes,
				epcPages: cp.epcPages,
				reqEPC:   cp.reqEPC,
			})
		}
	}
	for g := range nodeGroups {
		members := c.groups[g]
		unit := victimInfo{name: g, group: g, count: len(members)}
		unitEligible := true
		first := true
		for _, m := range members {
			if !eligible(m) {
				unitEligible = false
				break
			}
			if first || m.priority > unit.priority {
				unit.priority = m.priority
				first = false
			}
			if m.node == node {
				unit.memBytes += m.memBytes
				unit.epcPages += m.epcPages
				unit.reqEPC += m.reqEPC
			}
		}
		if unitEligible {
			buf = append(buf, unit)
		}
	}
	c.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].priority != buf[j].priority {
			return buf[i].priority < buf[j].priority
		}
		return buf[i].name < buf[j].name
	})
	return buf
}

// matEntry schedules one pod's young→mature re-fusion.
type matEntry struct {
	at  time.Time
	pod string
}

type matHeap []matEntry

func (h matHeap) Len() int           { return len(h) }
func (h matHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h matHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *matHeap) Push(x any)        { *h = append(*h, x.(matEntry)) }
func (h *matHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
