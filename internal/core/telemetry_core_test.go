package core

import (
	"fmt"
	"testing"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/telemetry"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// newBareScheduler builds a scheduler over directly registered nodes —
// no kubelets, no monitoring — so telemetry tests control exactly what
// a pass does.
func newBareScheduler(t *testing.T, nodes int, cfg Config) (*clock.Sim, *apiserver.Server, *Scheduler) {
	t.Helper()
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	db := tsdb.New(clk)
	t.Cleanup(db.Close)
	alloc := resource.List{resource.Memory: 64 * resource.GiB, resource.CPU: 8000}
	for i := 0; i < nodes; i++ {
		if err := srv.RegisterNode(&api.Node{
			Name:        fmt.Sprintf("node-%02d", i),
			Capacity:    alloc.Clone(),
			Allocatable: alloc.Clone(),
			Ready:       true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if cfg.Name == "" {
		cfg.Name = "telemetry-test"
	}
	if cfg.Policy == nil {
		cfg.Policy = Binpack{}
	}
	sched, err := New(clk, srv, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Close)
	return clk, srv, sched
}

func telemetryPod(name, sched string, memBytes int64) *api.Pod {
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{
			SchedulerName: sched,
			Containers: []api.Container{{
				Name:      "main",
				Resources: api.Requirements{Requests: resource.List{resource.Memory: memBytes}},
			}},
		},
	}
}

// TestDisabledTelemetryPassAllocFree holds the hard budget of the
// instrumentation: with Config.Telemetry nil, a steady-state scheduling
// pass — including pending pods that exercise prefilter, the filter
// walk, scoring and the unschedulable path — allocates nothing. Every
// instrumentation site must stay behind a nil check for this to hold.
func TestDisabledTelemetryPassAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	_, srv, sched := newBareScheduler(t, 8, Config{})
	// Pods too large for any node: each pass runs the full pipeline and
	// leaves them queued, mutating nothing.
	for i := 0; i < 4; i++ {
		pod := telemetryPod(fmt.Sprintf("huge-%d", i), "telemetry-test", 1<<50)
		if err := srv.CreatePod(pod); err != nil {
			t.Fatal(err)
		}
	}
	sched.ScheduleOnce() // warm the pass buffers
	allocs := testing.AllocsPerRun(50, func() { sched.ScheduleOnce() })
	if allocs != 0 {
		t.Fatalf("disabled-telemetry pass allocated %v/op, want 0", allocs)
	}
}

// TestEnabledTelemetryUndetailedPassAllocs bounds the enabled overhead:
// a non-detailed instrumented pass performs only atomic counter/
// histogram updates plus the ring's single span-copy, so it must stay
// within one small allocation per pass.
func TestEnabledTelemetryUndetailedPassAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	reg := telemetry.New()
	// detailEvery beyond the run length: every measured pass takes the
	// undetailed path.
	_, srv, sched := newBareScheduler(t, 8, Config{Telemetry: reg, TraceDetailEvery: 1 << 30})
	for i := 0; i < 4; i++ {
		pod := telemetryPod(fmt.Sprintf("huge-%d", i), "telemetry-test", 1<<50)
		if err := srv.CreatePod(pod); err != nil {
			t.Fatal(err)
		}
	}
	sched.ScheduleOnce()
	allocs := testing.AllocsPerRun(50, func() { sched.ScheduleOnce() })
	if allocs > 1 {
		t.Fatalf("undetailed instrumented pass allocated %v/op, want <= 1 (the trace-ring span copy)", allocs)
	}
}

// TestDetailedPassMatchesPlain is the bit-identical equivalence check:
// a scheduler tracing every pass in full detail (timed pipeline
// variants, plugin-outer scoring) must make exactly the placements of
// an uninstrumented scheduler over the same cluster and workload.
func TestDetailedPassMatchesPlain(t *testing.T) {
	place := func(cfg Config) map[string]string {
		_, srv, sched := newBareScheduler(t, 6, cfg)
		for i := 0; i < 40; i++ {
			// Varied sizes so scoring order and tie-breaks matter.
			mem := int64(i%7+1) * 4 * resource.GiB
			pod := telemetryPod(fmt.Sprintf("pod-%02d", i), cfg.Name, mem)
			pod.Spec.Priority = int32(i % 3)
			if err := srv.CreatePod(pod); err != nil {
				t.Fatal(err)
			}
		}
		for pass := 0; pass < 10; pass++ {
			sched.ScheduleOnce()
		}
		got := make(map[string]string)
		srv.VisitPods(func(p *api.Pod) bool {
			got[p.Name] = p.Spec.NodeName
			return true
		})
		return got
	}
	plain := place(Config{Name: "plain"})
	detailed := place(Config{
		Name:             "detailed",
		Telemetry:        telemetry.New(),
		Trace:            telemetry.NewTraceRing(8),
		TraceDetailEvery: 1, // every pass takes the timed variants
	})
	if len(plain) != len(detailed) {
		t.Fatalf("pod counts differ: %d vs %d", len(plain), len(detailed))
	}
	for name, node := range plain {
		if detailed[name] != node {
			t.Fatalf("pod %s: plain→%q detailed→%q — instrumentation changed a placement", name, node, detailed[name])
		}
	}
}

// TestPassMetricsAndTraceRing checks the metric/trace bookkeeping of
// instrumented passes: pass counters match ScheduleOnce calls, the
// histogram totals match the counters, traces carry strictly increasing
// Seq with stage spans, and detailed traces add per-plugin spans.
func TestPassMetricsAndTraceRing(t *testing.T) {
	reg := telemetry.New()
	ring := telemetry.NewTraceRing(16)
	_, srv, sched := newBareScheduler(t, 4, Config{
		Telemetry:        reg,
		Trace:            ring,
		TraceDetailEvery: 2,
	})
	// Feed pods before every pass so the detailed passes (even Seq) have
	// pending work and enter the ring too.
	const passes = 4
	for i := 0; i < passes; i++ {
		for j := 0; j < 2; j++ {
			pod := telemetryPod(fmt.Sprintf("pod-%d-%d", i, j), "telemetry-test", resource.GiB)
			if err := srv.CreatePod(pod); err != nil {
				t.Fatal(err)
			}
		}
		sched.ScheduleOnce()
	}

	if got := reg.Counter("scheduler_passes_total").Value(); got != passes {
		t.Fatalf("scheduler_passes_total = %d, want %d", got, passes)
	}
	if got := reg.Histogram("scheduler_pass_duration_seconds", nil).Count(); got != passes {
		t.Fatalf("pass duration histogram count = %d, want %d", got, passes)
	}
	if got := reg.CounterVec("scheduler_bound_total", "class").With("unclassified").Value(); got != 8 {
		t.Fatalf("scheduler_bound_total{unclassified} = %d, want 8", got)
	}

	traces := sched.Traces()
	if len(traces) == 0 {
		t.Fatal("no pass traces recorded")
	}
	lastSeq := int64(0)
	sawDetailedPlugins := false
	for _, tr := range traces {
		if tr.Seq <= lastSeq {
			t.Fatalf("trace Seq not strictly increasing: %d after %d", tr.Seq, lastSeq)
		}
		lastSeq = tr.Seq
		if tr.Scheduler != "telemetry-test" {
			t.Fatalf("trace scheduler = %q", tr.Scheduler)
		}
		if tr.Pending == 0 {
			t.Fatal("empty passes must not enter the ring")
		}
		if len(tr.Spans) == 0 {
			t.Fatalf("trace seq=%d has no spans", tr.Seq)
		}
		for _, sp := range tr.Spans {
			if sp.Plugin != "" {
				if !tr.Detailed {
					t.Fatalf("undetailed trace seq=%d carries plugin span %q", tr.Seq, sp.Plugin)
				}
				sawDetailedPlugins = true
			}
		}
	}
	if !sawDetailedPlugins {
		t.Fatal("no detailed trace with plugin spans (TraceDetailEvery=2 over 4 passes must sample at least one)")
	}

	// The bound totals recorded in the ring agree with the scheduler's
	// own stats.
	bound := 0
	for _, tr := range traces {
		bound += tr.Bound
	}
	if stats := sched.Stats(); bound != stats.Bound {
		t.Fatalf("ring bound sum = %d, stats.Bound = %d", bound, stats.Bound)
	}
}
