package core

import (
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
)

// This file implements workload classes over the plugin framework: a
// WorkloadClassifier assigns each pending pod a class (explicitly
// declared via api.PodSpec.Class, or inferred from duration, priority,
// gang and EPC signals), and a ClassRegistry resolves each class to its
// own scheduling profile — plugins, score weights, candidate-sampling
// bounds and preemption eligibility. The scheduling pass consults the
// registry per pod (Config.Classes); unclassified pods fall through to
// the scheduler's single configured pipeline, bit-identical to a
// scheduler with no registry at all.

// Class slots index the per-class tables (Stats.ByClass, the registry's
// profile array). Slot 0 is the unclassified default.
const (
	classSlotDefault = iota
	classSlotLatency
	classSlotBatch
	classSlotBestEffort
	numClassSlots
)

// classSlot maps a class to its table slot; unknown strings fold into
// the default slot.
func classSlot(c api.WorkloadClass) int {
	switch c {
	case api.ClassLatencySensitive:
		return classSlotLatency
	case api.ClassBatch:
		return classSlotBatch
	case api.ClassBestEffort:
		return classSlotBestEffort
	}
	return classSlotDefault
}

// classForSlot is the inverse of classSlot (slot 0 → ClassUnspecified).
func classForSlot(slot int) api.WorkloadClass {
	switch slot {
	case classSlotLatency:
		return api.ClassLatencySensitive
	case classSlotBatch:
		return api.ClassBatch
	case classSlotBestEffort:
		return api.ClassBestEffort
	}
	return api.ClassUnspecified
}

// Classifier inference defaults.
const (
	// DefaultLatencyPriority: pods at or above this priority tier are
	// presumed latency-sensitive — operators reserve the high tiers for
	// serving traffic, which is also why the preemption planner treats
	// those tiers as the ones worth evicting for.
	DefaultLatencyPriority = 100
	// DefaultBatchDuration: a declared runtime at or beyond this marks a
	// throughput job. The Borg-derived traces cap eval jobs at 300 s, so
	// five minutes separates "runs to completion" from "serves".
	DefaultBatchDuration = 5 * time.Minute
	// DefaultLatencyMinFeasible is the raised sampling floor of the
	// latency-sensitive class: its candidate search never stops below
	// this many feasible nodes (5× the framework default), so a
	// latency-sensitive pod is never placed from a thin sample of a
	// large cluster.
	DefaultLatencyMinFeasible = 5 * DefaultMinFeasibleNodesToFind
)

// ClassifierConfig parameterises a WorkloadClassifier.
type ClassifierConfig struct {
	// Infer enables signal-based classification for pods with no
	// explicit class. Off (the default), unclassified pods stay
	// unclassified and take the scheduler's default pipeline — the
	// bit-identical-compatibility anchor.
	Infer bool
	// LatencyPriority is the priority tier at or above which an
	// unclassified pod is inferred latency-sensitive
	// (DefaultLatencyPriority when zero).
	LatencyPriority int32
	// BatchDuration is the declared workload runtime at or beyond which
	// an unclassified pod is inferred batch (DefaultBatchDuration when
	// zero).
	BatchDuration time.Duration
}

// WorkloadClassifier assigns workload classes to pods. An explicitly
// declared known class always wins; inference (when enabled) reads the
// scheduling-relevant signals the spec already carries — gang
// membership, priority tier, declared runtime, EPC demand — in that
// order of confidence.
type WorkloadClassifier struct {
	cfg ClassifierConfig
}

// NewWorkloadClassifier builds a classifier with defaults applied.
func NewWorkloadClassifier(cfg ClassifierConfig) *WorkloadClassifier {
	if cfg.LatencyPriority == 0 {
		cfg.LatencyPriority = DefaultLatencyPriority
	}
	if cfg.BatchDuration <= 0 {
		cfg.BatchDuration = DefaultBatchDuration
	}
	return &WorkloadClassifier{cfg: cfg}
}

// Classify returns the pod's workload class. Pods declaring a known
// class keep it. With inference off every other pod is unclassified;
// with it on, gang members are batch (all-or-nothing placement is a
// throughput shape), high-priority pods are latency-sensitive, negative
// tiers are best-effort, long declared runtimes are batch, enclave (EPC)
// jobs are latency-sensitive (scarce EPC makes their queue time the
// expensive one), and everything else is best-effort filler.
func (c *WorkloadClassifier) Classify(pod *api.Pod) api.WorkloadClass {
	if pod.Spec.Classified() {
		return pod.Spec.Class
	}
	if !c.cfg.Infer {
		return api.ClassUnspecified
	}
	if pod.Spec.InGang() {
		return api.ClassBatch
	}
	if pod.Spec.Priority >= c.cfg.LatencyPriority {
		return api.ClassLatencySensitive
	}
	if pod.Spec.Priority < 0 {
		return api.ClassBestEffort
	}
	if c.maxDuration(pod) >= c.cfg.BatchDuration {
		return api.ClassBatch
	}
	if pod.IsSGX() {
		return api.ClassLatencySensitive
	}
	return api.ClassBestEffort
}

// maxDuration returns the longest declared container runtime.
func (c *WorkloadClassifier) maxDuration(pod *api.Pod) time.Duration {
	var max time.Duration
	for i := range pod.Spec.Containers {
		if d := pod.Spec.Containers[i].Workload.Duration; d > max {
			max = d
		}
	}
	return max
}

// ClassProfile configures one class's scheduling behaviour in a
// ClassRegistry.
type ClassProfile struct {
	// Class is the workload class this profile serves (must be a known
	// class — the unspecified class always means the default pipeline).
	Class api.WorkloadClass
	// Policy supplies the plugin pipeline (resolved via the same
	// Profiler mechanics as Config.Policy).
	Policy Policy
	// PercentageNodesToScore / MinFeasibleNodesToFind override the
	// scheduler's sampling bounds for this class (0 inherits the
	// scheduler Config; see Config.PercentageNodesToScore).
	PercentageNodesToScore int
	MinFeasibleNodesToFind int
	// MayPreempt gates whether this class's pods ever evict others. A
	// preempting class additionally gains access to best-effort victims
	// regardless of priority tier (best-effort is always
	// preemption-eligible) — unless it is best-effort itself.
	MayPreempt bool
}

// classProfile is a resolved, scheduler-owned class pipeline. Profiles
// carry narrowing scratch and are not safe for concurrent Select calls,
// so every scheduler clones the registry's profiles for itself
// (cloneFor) — mirroring how the default pipeline is owned per
// scheduler.
type classProfile struct {
	class       api.WorkloadClass
	profile     *Profile
	pct         int
	minFeasible int
	mayPreempt  bool
}

// ClassRegistry routes pods to per-class scheduling profiles. Build one
// with NewClassRegistry, optionally override classes with Set, and hand
// it to Config.Classes; a sharded fleet passes the same registry to
// every member (each member clones the pipelines it needs).
type ClassRegistry struct {
	classifier *WorkloadClassifier
	profiles   [numClassSlots]*classProfile
}

// NewClassRegistry builds a registry with the default class profiles
// over the given classifier (a nil classifier gets explicit-only
// classification):
//
//   - latency-sensitive: usage-aware scoring (headroom + EPC pressure,
//     SGX-last), may preempt, candidate search never sampled below
//     DefaultLatencyMinFeasible feasible nodes;
//   - batch: bin-packs (SGX-last first-fit), gang support rides along
//     (the gang director's plugins attach to every class pipeline when
//     the scheduler has one), never preempts;
//   - best-effort: spreads by load stddev, never preempts — and its
//     bound pods are always preemption-eligible, which the cache
//     tracks from the declared spec class.
func NewClassRegistry(classifier *WorkloadClassifier) *ClassRegistry {
	if classifier == nil {
		classifier = NewWorkloadClassifier(ClassifierConfig{})
	}
	r := &ClassRegistry{classifier: classifier}
	r.Set(ClassProfile{
		Class:                  api.ClassLatencySensitive,
		Policy:                 UsageAware{},
		MinFeasibleNodesToFind: DefaultLatencyMinFeasible,
		MayPreempt:             true,
	})
	r.Set(ClassProfile{Class: api.ClassBatch, Policy: Binpack{}})
	r.Set(ClassProfile{Class: api.ClassBestEffort, Policy: Spread{}})
	return r
}

// Set installs (or replaces) one class's profile. Unknown classes and a
// nil policy are ignored — the unspecified class cannot be overridden;
// it is defined as the scheduler's own pipeline.
func (r *ClassRegistry) Set(cp ClassProfile) {
	slot := classSlot(cp.Class)
	if slot == classSlotDefault || cp.Policy == nil {
		return
	}
	r.profiles[slot] = &classProfile{
		class:       cp.Class,
		profile:     profileFor(cp.Policy),
		pct:         cp.PercentageNodesToScore,
		minFeasible: cp.MinFeasibleNodesToFind,
		mayPreempt:  cp.MayPreempt,
	}
}

// Classify exposes the registry's classifier.
func (r *ClassRegistry) Classify(pod *api.Pod) api.WorkloadClass {
	return r.classifier.Classify(pod)
}

// cloneFor resolves a scheduler-owned copy of the registry: every class
// pipeline is cloned (profiles reuse narrowing scratch and must not be
// shared across schedulers), and when the scheduler runs a gang
// director its PreFilter/Permit plugins are appended to every class
// pipeline — the director passes solo pods through, and a gang member
// explicitly classed outside batch must still honour the permit
// protocol.
func (r *ClassRegistry) cloneFor(gang *GangDirector) *ClassRegistry {
	c := &ClassRegistry{classifier: r.classifier}
	for i, cp := range r.profiles {
		if cp == nil {
			continue
		}
		owned := *cp
		owned.profile = cp.profile.clone()
		if gang != nil {
			owned.profile.preFilters = append(owned.profile.preFilters, gang)
			owned.profile.permits = append(owned.profile.permits, gang)
		}
		c.profiles[i] = &owned
	}
	return c
}

// resolve classifies the pod and returns its slot plus the class
// pipeline, or nil when the pod takes the scheduler's default pipeline
// (unclassified, or a class with no registered profile).
func (r *ClassRegistry) resolve(pod *api.Pod) (int, *classProfile) {
	slot := classSlot(r.classifier.Classify(pod))
	return slot, r.profiles[slot]
}
