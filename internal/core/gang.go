package core

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
)

// GangDirector coordinates all-or-nothing scheduling of pod groups over
// the framework's PreFilter and Permit plugin points. It is shared by
// every scheduler placing gang members (Config.Gang; a sharded fleet
// passes the same director to all members), because quorum is a
// cluster-wide property no single member can decide from its own state.
//
// The lifecycle of a gang:
//
//  1. PreFilter gates each member: if the group's remaining members
//     cannot possibly fit the cluster this pass, the member is skipped
//     before any per-node work — no point holding a permit that will
//     only be rolled back. Long-waiting gangs get an age-based priority
//     boost here (starvation prevention), scoped to the pass.
//  2. Permit converts the member's selected placement into a
//     conditional reservation (apiserver.Reserve): capacity commits on
//     the node, the pod waits in the permit area.
//  3. OnReserved counts the permit toward quorum. At quorum the
//     director commits the whole gang atomically (CommitGroup); the
//     first permit of a round also arms a sim-clock timeout that rolls
//     every permit back wholesale (ReleaseGroup) if quorum never
//     arrives — a gang must not camp on capacity other work could use.
//
// Concurrency: the director's mutex only guards its own tables and is
// never held across an API-server mutation — CommitGroup/ReleaseGroup
// publish watch events that deliver synchronously back into subscriber
// callbacks, and holding the mutex there would deadlock the director's
// own event subscription.
type GangDirector struct {
	clk clock.Clock
	srv *apiserver.Server
	cfg GangConfig

	mu     sync.Mutex
	groups map[string]*gangState
	unsub  func()

	commits  atomic.Int64
	timeouts atomic.Int64
}

// GangConfig parameterises a GangDirector.
type GangConfig struct {
	// PermitTimeout is how long a gang may hold permits without
	// reaching quorum before the director rolls them all back
	// (DefaultPermitTimeout when zero; negative disables the timeout).
	PermitTimeout time.Duration
	// BoostEvery is the waiting age that earns a gang one extra
	// priority tier during its members' passes — starvation prevention
	// for gangs repeatedly losing capacity races to smaller jobs
	// (DefaultBoostEvery when zero; negative disables boosting).
	BoostEvery time.Duration
	// MaxBoost caps the age boost (DefaultMaxBoost when zero).
	MaxBoost int32
}

// Gang scheduling defaults.
const (
	// DefaultPermitTimeout matches kube coscheduling's waiting-pod
	// deadline order of magnitude: several scheduling intervals, so a
	// gang survives a couple of passes of partial placement before
	// releasing capacity.
	DefaultPermitTimeout = 30 * time.Second
	// DefaultBoostEvery: one priority tier per minute of waiting.
	DefaultBoostEvery = time.Minute
	// DefaultMaxBoost bounds the boost so an ancient gang cannot
	// leapfrog operator-assigned high-priority tiers arbitrarily.
	DefaultMaxBoost = 10
)

// GangDirectorStats counts director-level outcomes.
type GangDirectorStats struct {
	// Commits counts gangs committed at quorum; Timeouts counts
	// whole-gang permit rollbacks.
	Commits  int64
	Timeouts int64
}

// gangState is the director's per-group bookkeeping.
type gangState struct {
	minMember int
	firstSeen time.Time
	// done counts members that reached a terminal phase — they no
	// longer need placement, so the quorum for the remainder shrinks.
	done int
	// round invalidates stale permit-timeout callbacks: commit and
	// rollback both advance it, so a timer armed for an earlier round
	// fires as a no-op.
	round int
	timer clock.Timer
}

// NewGangDirector creates a director bound to the API server. It
// subscribes to pod events to track members leaving their groups
// (terminal transitions shrink the quorum); Close unsubscribes.
func NewGangDirector(clk clock.Clock, srv *apiserver.Server, cfg GangConfig) *GangDirector {
	switch {
	case cfg.PermitTimeout == 0:
		cfg.PermitTimeout = DefaultPermitTimeout
	case cfg.PermitTimeout < 0:
		cfg.PermitTimeout = 0
	}
	switch {
	case cfg.BoostEvery == 0:
		cfg.BoostEvery = DefaultBoostEvery
	case cfg.BoostEvery < 0:
		cfg.BoostEvery = 0
	}
	if cfg.MaxBoost == 0 {
		cfg.MaxBoost = DefaultMaxBoost
	}
	d := &GangDirector{
		clk:    clk,
		srv:    srv,
		cfg:    cfg,
		groups: make(map[string]*gangState),
	}
	d.unsub = srv.SubscribePodEvents(d.onPodEvents, nil)
	return d
}

// Close detaches the director from the API server watch.
func (d *GangDirector) Close() {
	if d.unsub != nil {
		d.unsub()
		d.unsub = nil
	}
}

// Stats returns a copy of the director's counters.
func (d *GangDirector) Stats() GangDirectorStats {
	return GangDirectorStats{Commits: d.commits.Load(), Timeouts: d.timeouts.Load()}
}

// onPodEvents tracks gang members reaching terminal phases: a finished
// (or failed/evicted) member no longer needs placement, so the group's
// remaining quorum shrinks. Runs as a watch callback — it only mutates
// director state, never the server.
func (d *GangDirector) onPodEvents(evs []apiserver.WatchEvent) {
	for i := range evs {
		ev := &evs[i]
		if ev.Type != apiserver.PodUpdated || ev.Pod == nil {
			continue
		}
		if !ev.Pod.Spec.InGang() || !ev.Pod.IsTerminal() {
			continue
		}
		d.mu.Lock()
		gs := d.ensureLocked(ev.Pod.Spec.PodGroup, ev.Pod.Spec.GangMinMember())
		gs.done++
		d.mu.Unlock()
	}
}

// ensureLocked returns the group's state, creating it (stamping
// firstSeen for age boosting) on first sight. Caller must hold d.mu.
func (d *GangDirector) ensureLocked(group string, minMember int) *gangState {
	gs, ok := d.groups[group]
	if !ok {
		gs = &gangState{minMember: minMember, firstSeen: d.clk.Now()}
		d.groups[group] = gs
	}
	if minMember > gs.minMember {
		gs.minMember = minMember
	}
	return gs
}

// Name implements PreFilterPlugin and PermitPlugin.
func (d *GangDirector) Name() string { return "gang" }

// PreFilter implements PreFilterPlugin: solo pods pass through; gang
// members get the age-based priority boost and the group-level
// capacity gate — if the members still needing placement could not all
// fit the view's current headroom, the pass is rejected early, before
// this member takes a permit that would only roll back at timeout.
func (d *GangDirector) PreFilter(pod *PodInfo, view *ClusterView) bool {
	if !pod.Pod.Spec.InGang() {
		return true
	}
	group := pod.Pod.Spec.PodGroup
	d.mu.Lock()
	gs := d.ensureLocked(group, pod.Pod.Spec.GangMinMember())
	age := d.clk.Now().Sub(gs.firstSeen)
	done := gs.done
	minMember := gs.minMember
	d.mu.Unlock()

	if d.cfg.BoostEvery > 0 && age > 0 {
		boost := int32(age / d.cfg.BoostEvery)
		if boost > d.cfg.MaxBoost {
			boost = d.cfg.MaxBoost
		}
		// Scoped to this pass: PodInfo is pass-local scratch, so the
		// boost raises this member's preemption leverage without
		// rewriting the pod's declared priority.
		pod.Priority += boost
	}

	// need = members still requiring a slot this pass, including this
	// one. Held and bound members already have theirs.
	need := minMember - done - d.srv.BoundGroupCount(group) - d.srv.HoldCount(group)
	if need < 1 {
		need = 1
	}
	// Can `need` members shaped like this one fit the current headroom?
	// Members of a gang are homogeneous in practice (MPI ranks, training
	// workers), so this pod's request is the unit of account. Nodes can
	// hold several members each; stop as soon as enough slots are found.
	slots := 0
	for _, n := range view.Nodes {
		slots += memberSlots(pod, n)
		if slots >= need {
			return true
		}
	}
	return false
}

// memberSlots returns how many pods shaped like pod fit node's current
// headroom.
func memberSlots(pod *PodInfo, node *NodeView) int {
	slots := int(^uint(0) >> 1) // MaxInt
	if pod.EPCPages > 0 {
		if !node.SGX {
			return 0
		}
		if k := int(node.FreeDevices / pod.EPCPages); k < slots {
			slots = k
		}
	}
	for _, pr := range pod.Pairs {
		free := node.Allocatable.Get(pr.Name) - node.Used.Get(pr.Name)
		if free < pr.Qty {
			return 0
		}
		if k := int(free / pr.Qty); k < slots {
			slots = k
		}
	}
	if slots < 0 {
		slots = 0
	}
	return slots
}

// Permit implements PermitPlugin: gang members wait (reserve
// conditionally), solo pods bind immediately.
func (d *GangDirector) Permit(pod *PodInfo, _ string) PermitDecision {
	if pod.Pod.Spec.InGang() {
		return PermitWait
	}
	return PermitAllow
}

// OnReserved implements ReserveObserver: a member's reservation
// committed, so re-evaluate the group's quorum. At quorum the whole
// gang commits atomically; the first permit of a round arms the
// rollback timeout. Called by the scheduler outside its pass locks, so
// the server mutations here are safe.
func (d *GangDirector) OnReserved(pod *PodInfo, _ string) {
	spec := &pod.Pod.Spec
	if !spec.InGang() {
		return
	}
	group := spec.PodGroup
	holds := d.srv.HoldCount(group)
	bound := d.srv.BoundGroupCount(group)

	d.mu.Lock()
	gs := d.ensureLocked(group, spec.GangMinMember())
	need := gs.minMember - gs.done - bound
	commit := holds > 0 && holds >= need
	if commit {
		if gs.timer != nil {
			gs.timer.Stop()
			gs.timer = nil
		}
		gs.round++
	} else if gs.timer == nil && d.cfg.PermitTimeout > 0 {
		round := gs.round
		gs.timer = d.clk.AfterFunc(d.cfg.PermitTimeout, func() {
			d.onPermitTimeout(group, round)
		})
	}
	d.mu.Unlock()

	if commit {
		// Outside d.mu: the commit's PodBound events deliver
		// synchronously into watch callbacks (including this
		// director's own subscription).
		if _, err := d.srv.CommitGroup(group); err == nil {
			d.commits.Add(1)
		}
	}
}

// onPermitTimeout is the sim-clock rollback: if the round that armed
// the timer is still current and the gang still holds permits, release
// them all. A commit or an earlier rollback advances the round, making
// stale timers no-ops.
func (d *GangDirector) onPermitTimeout(group string, round int) {
	d.mu.Lock()
	gs := d.groups[group]
	if gs == nil || gs.round != round {
		d.mu.Unlock()
		return
	}
	gs.timer = nil
	gs.round++
	d.mu.Unlock()
	if released, _ := d.srv.ReleaseGroup(group, "permit timeout"); released > 0 {
		d.timeouts.Add(1)
	}
}
