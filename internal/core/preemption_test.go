package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
)

// withPriority stamps a priority tier on a test pod.
func withPriority(p *api.Pod, prio int32) *api.Pod {
	p.Spec.Priority = prio
	return p
}

// fillSGXNode queues two long-running EPC hogs that together occupy most
// of the single SGX node's 23936 device items, then lets them bind and
// start.
func fillSGXNode(t *testing.T, c *testCluster) {
	t.Helper()
	c.submit(t, epcJob("hog-a", 11000, 30*resource.MiB, time.Hour))
	c.submit(t, epcJob("hog-b", 11000, 30*resource.MiB, time.Hour))
	c.clk.Advance(10 * time.Second)
	for _, name := range []string{"hog-a", "hog-b"} {
		p, _ := c.srv.GetPod(name)
		if p.Status.Phase != api.PodRunning {
			t.Fatalf("%s = %s, want Running", name, p.Status.Phase)
		}
	}
}

// TestPreemptionBindsHighPriorityPodInOnePass fills the SGX node, then
// submits a high-priority SGX pod that cannot fit: the same scheduling
// pass must evict the cheapest victim and bind the pod.
func TestPreemptionBindsHighPriorityPodInOnePass(t *testing.T) {
	c := newTestCluster(t, clusterSpec{sgxNodes: 1, useMetrics: true, enforcement: true})
	fillSGXNode(t, c)

	c.submit(t, withPriority(epcJob("urgent", 6000, 20*resource.MiB, 30*time.Second), 10))
	passesBefore := c.sched.Stats().Passes
	if got := c.sched.ScheduleOnce(); got != 1 {
		t.Fatalf("ScheduleOnce bound %d pods, want 1 (preemption within the pass)", got)
	}
	if got := c.sched.Stats().Passes - passesBefore; got != 1 {
		t.Fatalf("took %d passes, want 1", got)
	}
	urgent, _ := c.srv.GetPod("urgent")
	if urgent.Spec.NodeName != "sgx-1" {
		t.Fatalf("urgent pod on %q, want sgx-1", urgent.Spec.NodeName)
	}

	st := c.sched.Stats()
	if st.Preemptions != 1 || st.Victims != 1 {
		t.Fatalf("stats = %d preemptions / %d victims, want 1/1", st.Preemptions, st.Victims)
	}
	// The cheapest sufficient set is one hog; name order picks hog-a.
	victim, _ := c.srv.GetPod("hog-a")
	if victim.Status.Phase != api.PodPending || victim.Spec.NodeName != "" {
		t.Fatalf("victim = %s on %q, want Pending unbound", victim.Status.Phase, victim.Spec.NodeName)
	}
	survivor, _ := c.srv.GetPod("hog-b")
	if survivor.Status.Phase != api.PodRunning {
		t.Fatalf("survivor hog-b = %s, want Running (minimal victim set)", survivor.Status.Phase)
	}
}

// TestPreemptionVictimsRequeueAndReschedule: an evicted victim re-enters
// the queue and runs again once the preemptor releases the capacity.
func TestPreemptionVictimsRequeueAndReschedule(t *testing.T) {
	c := newTestCluster(t, clusterSpec{sgxNodes: 1, useMetrics: true, enforcement: true})
	fillSGXNode(t, c)
	c.submit(t, withPriority(epcJob("urgent", 6000, 20*resource.MiB, 30*time.Second), 10))
	c.clk.Advance(10 * time.Second)

	victim, _ := c.srv.GetPod("hog-a")
	if victim.Status.Phase != api.PodPending {
		t.Fatalf("victim = %s, want Pending (requeued, not failed)", victim.Status.Phase)
	}
	// The urgent pod finishes within a minute; the victim must then
	// reschedule onto the freed node and run.
	c.clk.Advance(3 * time.Minute)
	victim, _ = c.srv.GetPod("hog-a")
	if victim.Status.Phase != api.PodRunning || victim.Spec.NodeName != "sgx-1" {
		t.Fatalf("victim after capacity freed = %s on %q, want Running on sgx-1",
			victim.Status.Phase, victim.Spec.NodeName)
	}
	urgent, _ := c.srv.GetPod("urgent")
	if urgent.Status.Phase != api.PodSucceeded {
		t.Fatalf("urgent = %s (%s)", urgent.Status.Phase, urgent.Status.Reason)
	}
}

// TestEqualPriorityNeverPreempts: a pod of the same tier as the running
// pods waits instead of evicting them.
func TestEqualPriorityNeverPreempts(t *testing.T) {
	c := newTestCluster(t, clusterSpec{sgxNodes: 1, useMetrics: true, enforcement: true})
	fillSGXNode(t, c)
	c.submit(t, epcJob("peer", 6000, 20*resource.MiB, 30*time.Second)) // priority 0, like the hogs
	c.clk.Advance(30 * time.Second)

	peer, _ := c.srv.GetPod("peer")
	if peer.Status.Phase != api.PodPending {
		t.Fatalf("equal-priority pod = %s, want Pending", peer.Status.Phase)
	}
	for _, name := range []string{"hog-a", "hog-b"} {
		p, _ := c.srv.GetPod(name)
		if p.Status.Phase != api.PodRunning {
			t.Fatalf("%s = %s, want Running (equal tiers never preempt)", name, p.Status.Phase)
		}
	}
	if st := c.sched.Stats(); st.Preemptions != 0 || st.Victims != 0 {
		t.Fatalf("stats = %+v, want no preemptions", st)
	}
}

// TestNoFeasibleVictimSetLeavesPodPending: when even evicting every
// lower-priority pod cannot make the pod fit, nothing is evicted and the
// pod stays queued.
func TestNoFeasibleVictimSetLeavesPodPending(t *testing.T) {
	c := newTestCluster(t, clusterSpec{sgxNodes: 1, useMetrics: true, enforcement: true})
	fillSGXNode(t, c)
	// 30000 pages exceed the node's 23936 devices: statically infeasible.
	c.submit(t, withPriority(epcJob("too-big", 30000, 20*resource.MiB, 30*time.Second), 10))
	c.clk.Advance(30 * time.Second)

	tooBig, _ := c.srv.GetPod("too-big")
	if tooBig.Status.Phase != api.PodPending {
		t.Fatalf("infeasible pod = %s, want Pending", tooBig.Status.Phase)
	}
	for _, name := range []string{"hog-a", "hog-b"} {
		p, _ := c.srv.GetPod(name)
		if p.Status.Phase != api.PodRunning {
			t.Fatalf("%s = %s, want Running (no victims evicted in vain)", name, p.Status.Phase)
		}
	}
	if st := c.sched.Stats(); st.Preemptions != 0 || st.Victims != 0 {
		t.Fatalf("stats = %+v, want no preemptions", st)
	}
}

// TestPreemptionPrefersLowestPriorityVictims: with tiers 1 and 5 running,
// a tier-10 pod needing one eviction must take the tier-1 pod even though
// the tier-5 pod sorts first by name.
func TestPreemptionPrefersLowestPriorityVictims(t *testing.T) {
	c := newTestCluster(t, clusterSpec{sgxNodes: 1, useMetrics: true, enforcement: true})
	c.submit(t, withPriority(epcJob("a-mid", 11000, 30*resource.MiB, time.Hour), 5))
	c.submit(t, withPriority(epcJob("b-low", 11000, 30*resource.MiB, time.Hour), 1))
	c.clk.Advance(10 * time.Second)

	c.submit(t, withPriority(epcJob("urgent", 6000, 20*resource.MiB, 30*time.Second), 10))
	c.clk.Advance(5 * time.Second)

	low, _ := c.srv.GetPod("b-low")
	if low.Status.Phase != api.PodPending {
		t.Fatalf("lowest-priority pod = %s, want Pending (preferred victim)", low.Status.Phase)
	}
	mid, _ := c.srv.GetPod("a-mid")
	if mid.Status.Phase != api.PodRunning {
		t.Fatalf("mid-priority pod = %s, want Running (spared)", mid.Status.Phase)
	}
	urgent, _ := c.srv.GetPod("urgent")
	if urgent.Spec.NodeName != "sgx-1" {
		t.Fatalf("urgent on %q, want sgx-1", urgent.Spec.NodeName)
	}
}

// TestPreemptionRespectsSGXLastRule: a high-priority standard pod must
// preempt on a standard node even when an SGX node offers a cheaper
// victim set — §IV's "only resort to SGX-enabled nodes ... when no other
// choice is possible" applies to preemption too.
func TestPreemptionRespectsSGXLastRule(t *testing.T) {
	c := newTestCluster(t, clusterSpec{stdNodes: 1, sgxNodes: 1, useMetrics: true, enforcement: true})
	// Fill the standard node (64 GiB) with two 30 GiB victims, then the
	// SGX node (8 GiB) with a 7 GiB filler — the filler lands on SGX
	// hardware legitimately, as the last resort.
	c.submit(t, memJob("std-victim-a", 30*resource.GiB, resource.GiB, time.Hour))
	c.submit(t, memJob("std-victim-b", 30*resource.GiB, resource.GiB, time.Hour))
	c.clk.Advance(10 * time.Second)
	c.submit(t, memJob("sgx-filler", 7*resource.GiB, resource.GiB, time.Hour))
	c.clk.Advance(10 * time.Second)
	filler, _ := c.srv.GetPod("sgx-filler")
	if filler.Spec.NodeName != "sgx-1" {
		t.Fatalf("filler on %q, want sgx-1 (std node full)", filler.Spec.NodeName)
	}

	// A 6 GiB high-priority standard pod fits neither node. Both offer a
	// one-victim set, and sgx-1 sorts before std-1 — only the SGX-last
	// rule forces the standard node.
	c.submit(t, withPriority(memJob("urgent-std", 6*resource.GiB, resource.GiB, 30*time.Second), 10))
	c.clk.Advance(5 * time.Second)

	urgent, _ := c.srv.GetPod("urgent-std")
	if urgent.Spec.NodeName != "std-1" {
		t.Fatalf("urgent standard pod on %q, want std-1 (SGX node preserved)", urgent.Spec.NodeName)
	}
	filler, _ = c.srv.GetPod("sgx-filler")
	if filler.Status.Phase != api.PodRunning {
		t.Fatalf("SGX-node filler = %s, want Running (not preempted)", filler.Status.Phase)
	}
	victimA, _ := c.srv.GetPod("std-victim-a")
	if victimA.Status.Phase != api.PodPending {
		t.Fatalf("std-victim-a = %s, want Pending (the chosen victim)", victimA.Status.Phase)
	}
	victimB, _ := c.srv.GetPod("std-victim-b")
	if victimB.Status.Phase != api.PodRunning {
		t.Fatalf("std-victim-b = %s, want Running (minimal set)", victimB.Status.Phase)
	}
}

// TestPriorityOrdersPendingQueue: a saturated node serialises three jobs;
// the highest tier must run first regardless of submission order.
func TestPriorityOrdersPendingQueue(t *testing.T) {
	c := newTestCluster(t, clusterSpec{sgxNodes: 1, useMetrics: true, enforcement: true})
	// Saturate with one short job so the queue builds behind it, without
	// any preemptable headroom for the later submissions.
	c.submit(t, epcJob("warm", 23000, 30*resource.MiB, 40*time.Second))
	c.clk.Advance(time.Second)
	c.submit(t, withPriority(epcJob("low", 23000, 30*resource.MiB, 30*time.Second), 1))
	c.clk.Advance(time.Second)
	c.submit(t, withPriority(epcJob("high", 23000, 30*resource.MiB, 30*time.Second), 2))
	c.clk.Advance(10 * time.Minute)

	if !c.srv.AllTerminal() {
		t.Fatal("jobs did not drain")
	}
	lowPod, _ := c.srv.GetPod("low")
	highPod, _ := c.srv.GetPod("high")
	lw, _ := lowPod.WaitingTime()
	hw, _ := highPod.WaitingTime()
	// high was submitted after low but sits in a higher tier, so it must
	// start earlier relative to its submission.
	if highPod.Status.StartedAt.After(lowPod.Status.StartedAt) {
		t.Fatalf("high started %v after low (waits high=%v low=%v)",
			highPod.Status.StartedAt.Sub(lowPod.Status.StartedAt), hw, lw)
	}
}

// rejectNodeFilter vetoes one node by name — a stand-in for custom
// filter plugins composed via WithFilters.
type rejectNodeFilter struct{ node string }

func (f rejectNodeFilter) Name() string { return "reject-" + f.node }
func (f rejectNodeFilter) Filter(_ *PodInfo, n *NodeView) bool {
	return n.Name != f.node
}

// declineAllPolicy is a legacy Policy (no Profile) that refuses every
// candidate — a stand-in for legacy Select-side placement constraints.
type declineAllPolicy struct{}

func (declineAllPolicy) Name() string { return "decline-all" }
func (declineAllPolicy) Select(*api.Pod, []*NodeView, *ClusterView) (string, bool) {
	return "", false
}

// preemptionVetoCluster builds one 10 GiB node with a bound low-priority
// 8 GiB victim and queues a priority-5 4 GiB pod that can only fit by
// eviction.
func preemptionVetoCluster(t *testing.T, policy Policy) (*Scheduler, *apiserver.Server) {
	t.Helper()
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	alloc := resource.List{resource.Memory: 10 * resource.GiB}
	if err := srv.RegisterNode(&api.Node{
		Name: "n1", Capacity: alloc.Clone(), Allocatable: alloc, Ready: true,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := New(clk, srv, nil, Config{Name: "s", Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	victim := memJob("victim", 8*resource.GiB, resource.GiB, time.Hour)
	victim.Spec.SchedulerName = "s"
	if err := srv.CreatePod(victim); err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind("victim", "n1"); err != nil {
		t.Fatal(err)
	}
	urgent := withPriority(memJob("urgent", 4*resource.GiB, resource.GiB, time.Minute), 5)
	urgent.Spec.SchedulerName = "s"
	if err := srv.CreatePod(urgent); err != nil {
		t.Fatal(err)
	}
	return s, srv
}

// TestPreemptionHonoursCustomFilterPlugins: a node vetoed by a profile's
// extra filter plugin must never have victims evicted for a pod that
// could not bind there anyway.
func TestPreemptionHonoursCustomFilterPlugins(t *testing.T) {
	vetoed := NewProfile("vetoed",
		WithFilters(rejectNodeFilter{node: "n1"}),
		WithScores(WeightedScore{Plugin: BinpackScore{}, Weight: 1}),
	)
	s, srv := preemptionVetoCluster(t, vetoed)
	for pass := 0; pass < 3; pass++ {
		if got := s.ScheduleOnce(); got != 0 {
			t.Fatalf("pass %d bound %d pods on a vetoed node", pass, got)
		}
	}
	victim, _ := srv.GetPod("victim")
	if victim.Spec.NodeName != "n1" {
		t.Fatalf("victim evicted (now on %q) although the filter vetoes the node for the preemptor", victim.Spec.NodeName)
	}
	if st := s.Stats(); st.Preemptions != 0 || st.Victims != 0 {
		t.Fatalf("stats = %+v, want no futile evictions", st)
	}

	// Sanity: the identical cluster without the veto does preempt.
	s2, srv2 := preemptionVetoCluster(t, NewProfile("open",
		WithScores(WeightedScore{Plugin: BinpackScore{}, Weight: 1})))
	if got := s2.ScheduleOnce(); got != 1 {
		t.Fatalf("control run bound %d pods, want 1 via preemption", got)
	}
	victim, _ = srv2.GetPod("victim")
	if victim.Spec.NodeName != "" {
		t.Fatal("control run did not evict the victim")
	}
}

// TestPreemptionHonoursLegacyPolicySelect: a legacy policy that declines
// every candidate in Select must also veto preemption — no evictions, no
// bind.
func TestPreemptionHonoursLegacyPolicySelect(t *testing.T) {
	s, srv := preemptionVetoCluster(t, declineAllPolicy{})
	for pass := 0; pass < 3; pass++ {
		if got := s.ScheduleOnce(); got != 0 {
			t.Fatalf("pass %d bound %d pods against the policy's veto", pass, got)
		}
	}
	victim, _ := srv.GetPod("victim")
	if victim.Spec.NodeName != "n1" {
		t.Fatalf("victim evicted (now on %q) although the legacy policy declines every node", victim.Spec.NodeName)
	}
	if st := s.Stats(); st.Preemptions != 0 || st.Victims != 0 {
		t.Fatalf("stats = %+v, want no futile evictions", st)
	}
}

// TestPreemptionDeterministic runs an identical preemption-heavy scenario
// twice and requires bit-identical watch event sequences — preemption
// decisions (victim choice, eviction order) must not depend on map order
// or other incidental state.
func TestPreemptionDeterministic(t *testing.T) {
	run := func() []string {
		c := newTestCluster(t, clusterSpec{stdNodes: 1, sgxNodes: 2, useMetrics: true, enforcement: true})
		var seq []string
		unsub := c.srv.Subscribe(func(ev apiserver.WatchEvent) {
			entry := fmt.Sprintf("rev=%d type=%d", ev.Rev, ev.Type)
			if ev.Pod != nil {
				entry += fmt.Sprintf(" pod=%s node=%s phase=%s reason=%q",
					ev.Pod.Name, ev.Pod.Spec.NodeName, ev.Pod.Status.Phase, ev.Pod.Status.Reason)
			}
			seq = append(seq, entry)
		})
		defer unsub()

		// Several equal hogs across both SGX nodes, then waves of
		// higher-priority pods forcing multi-victim choices.
		for i := 0; i < 4; i++ {
			c.submit(t, withPriority(epcJob(fmt.Sprintf("hog-%d", i), 5500, 20*resource.MiB, time.Hour), int32(i%2)))
		}
		c.clk.Advance(10 * time.Second)
		for i := 0; i < 3; i++ {
			c.submit(t, withPriority(epcJob(fmt.Sprintf("vip-%d", i), 9000, 20*resource.MiB, 45*time.Second), 7))
			c.clk.Advance(7 * time.Second)
		}
		c.clk.Advance(5 * time.Minute)
		return seq
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\nrun1: %s\nrun2: %s", i, a[i], b[i])
		}
	}
	preempted := 0
	for _, e := range a {
		if strings.Contains(e, "Preempted") {
			preempted++
		}
	}
	if preempted == 0 {
		t.Fatal("scenario produced no preemptions; determinism check is vacuous")
	}
}
