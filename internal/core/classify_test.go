package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/kubelet"
	"github.com/sgxorch/sgxorch/internal/machine"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/sgx"
)

func classedPod(name string, class api.WorkloadClass, prio int32, memBytes int64, dur time.Duration) *api.Pod {
	p := memJob(name, memBytes, memBytes, dur)
	p.Spec.Class = class
	p.Spec.Priority = prio
	return p
}

// TestClassifierExplicitAndInference covers the classification order:
// declared classes always win; inference (when on) reads gang, priority,
// duration and EPC signals in that order; inference off leaves
// undeclared pods unclassified.
func TestClassifierExplicitAndInference(t *testing.T) {
	mk := func(mut func(*api.Pod)) *api.Pod {
		p := memJob("p", resource.GiB, resource.GiB, time.Minute)
		mut(p)
		return p
	}
	cases := []struct {
		name  string
		infer bool
		pod   *api.Pod
		want  api.WorkloadClass
	}{
		{"explicit wins over signals", true,
			mk(func(p *api.Pod) { p.Spec.Class = api.ClassBestEffort; p.Spec.Priority = 500 }),
			api.ClassBestEffort},
		{"explicit honoured without inference", false,
			mk(func(p *api.Pod) { p.Spec.Class = api.ClassLatencySensitive }),
			api.ClassLatencySensitive},
		{"unknown class string stays unclassified", true,
			mk(func(p *api.Pod) { p.Spec.Class = "gold"; p.Spec.Priority = -1 }),
			api.ClassBestEffort}, // unknown → inference applies
		{"inference off leaves unclassified", false,
			mk(func(p *api.Pod) { p.Spec.Priority = 500 }),
			api.ClassUnspecified},
		{"gang member infers batch", true,
			mk(func(p *api.Pod) { p.Spec.PodGroup = "ring"; p.Spec.Priority = 500 }),
			api.ClassBatch},
		{"high priority infers latency-sensitive", true,
			mk(func(p *api.Pod) { p.Spec.Priority = DefaultLatencyPriority }),
			api.ClassLatencySensitive},
		{"negative priority infers best-effort", true,
			mk(func(p *api.Pod) { p.Spec.Priority = -1 }),
			api.ClassBestEffort},
		{"long runtime infers batch", true,
			mk(func(p *api.Pod) { p.Spec.Containers[0].Workload.Duration = DefaultBatchDuration }),
			api.ClassBatch},
		{"EPC demand infers latency-sensitive", true,
			func() *api.Pod { return epcJob("p", 1000, resource.MiB, time.Minute) }(),
			api.ClassLatencySensitive},
		{"short plain job infers best-effort", true,
			mk(func(p *api.Pod) {}),
			api.ClassBestEffort},
	}
	for _, tc := range cases {
		c := NewWorkloadClassifier(ClassifierConfig{Infer: tc.infer})
		if got := c.Classify(tc.pod); got != tc.want {
			t.Errorf("%s: Classify = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestClassRegistryResolve: the default registry routes the three known
// classes to their own pipelines with the documented gates, and routes
// unclassified pods to the nil (default-pipeline) slot. Overrides via
// Set replace a class; the default slot cannot be occupied.
func TestClassRegistryResolve(t *testing.T) {
	r := NewClassRegistry(nil) // explicit-only classifier

	slot, cp := r.resolve(classedPod("ls", api.ClassLatencySensitive, 0, resource.GiB, time.Minute))
	if slot != classSlotLatency || cp == nil || !cp.mayPreempt {
		t.Fatalf("latency-sensitive resolve = slot %d, %+v", slot, cp)
	}
	if cp.minFeasible != DefaultLatencyMinFeasible {
		t.Fatalf("latency-sensitive minFeasible = %d, want %d", cp.minFeasible, DefaultLatencyMinFeasible)
	}
	if slot, cp := r.resolve(classedPod("b", api.ClassBatch, 0, resource.GiB, time.Minute)); slot != classSlotBatch || cp == nil || cp.mayPreempt {
		t.Fatalf("batch resolve = slot %d, %+v (must not preempt)", slot, cp)
	}
	if slot, cp := r.resolve(classedPod("be", api.ClassBestEffort, 0, resource.GiB, time.Minute)); slot != classSlotBestEffort || cp == nil || cp.mayPreempt {
		t.Fatalf("best-effort resolve = slot %d, %+v (must not preempt)", slot, cp)
	}
	if slot, cp := r.resolve(memJob("plain", resource.GiB, resource.GiB, time.Minute)); slot != classSlotDefault || cp != nil {
		t.Fatalf("unclassified resolve = slot %d, %+v, want default slot and nil profile", slot, cp)
	}

	// Override one class; the others are untouched.
	r.Set(ClassProfile{Class: api.ClassBatch, Policy: Spread{}, MayPreempt: true})
	if _, cp := r.resolve(classedPod("b", api.ClassBatch, 0, resource.GiB, time.Minute)); cp == nil || !cp.mayPreempt {
		t.Fatalf("batch after Set = %+v, want preempt-capable override", cp)
	}
	// The unspecified slot rejects installation.
	r.Set(ClassProfile{Class: api.ClassUnspecified, Policy: Binpack{}})
	if _, cp := r.resolve(memJob("plain", resource.GiB, resource.GiB, time.Minute)); cp != nil {
		t.Fatal("default slot accepted a profile")
	}

	// cloneFor threads gang plugins through every class pipeline and
	// yields pipelines distinct from the registry's own.
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	defer srv.Close()
	gd := NewGangDirector(clk, srv, GangConfig{})
	defer gd.Close()
	owned := r.cloneFor(gd)
	for slot := classSlotLatency; slot < numClassSlots; slot++ {
		ocp := owned.profiles[slot]
		if ocp == nil {
			t.Fatalf("slot %d missing after cloneFor", slot)
		}
		if ocp.profile == r.profiles[slot].profile {
			t.Fatalf("slot %d pipeline not cloned", slot)
		}
		if len(ocp.profile.permits) != len(r.profiles[slot].profile.permits)+1 {
			t.Fatalf("slot %d gang permit plugin not appended", slot)
		}
	}
}

// classifyHarness is a full stack (server, kubelets, scheduler) whose
// watch event stream is recorded from before the first node joins.
type classifyHarness struct {
	clk    *clock.Sim
	srv    *apiserver.Server
	sched  *Scheduler
	events []string
}

// newClassifyHarness builds the stack with the given class registry
// (nil = class-free scheduler). Everything else is identical across
// calls, so two harnesses fed the same submissions must diverge only
// through the registry.
func newClassifyHarness(t *testing.T, classes *ClassRegistry) *classifyHarness {
	t.Helper()
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	h := &classifyHarness{clk: clk, srv: srv}
	unsub := srv.Subscribe(func(ev apiserver.WatchEvent) {
		line := fmt.Sprintf("%v rev=%d", ev.Type, ev.Rev)
		if ev.Pod != nil {
			line += fmt.Sprintf(" pod=%s node=%s phase=%s reason=%q sched=%d start=%d",
				ev.Pod.Name, ev.Pod.Spec.NodeName, ev.Pod.Status.Phase,
				ev.Pod.Status.Reason, ev.Pod.Status.ScheduledAt.UnixNano(),
				ev.Pod.Status.StartedAt.UnixNano())
		}
		if ev.Node != nil {
			line += " node=" + ev.Node.Name
		}
		h.events = append(h.events, line)
	})
	t.Cleanup(unsub)

	var kls []*kubelet.Kubelet
	for i := 0; i < 2; i++ {
		m := machine.New(fmt.Sprintf("std-%d", i+1), 2*resource.GiB, 8000)
		kls = append(kls, kubelet.New(clk, srv, m))
	}
	m := machine.New("sgx-1", 8*resource.GiB, 8000, machine.WithSGX(sgx.DefaultGeometry()))
	kls = append(kls, kubelet.New(clk, srv, m))
	for _, kl := range kls {
		if err := kl.Start(); err != nil {
			t.Fatal(err)
		}
	}
	gd := NewGangDirector(clk, srv, GangConfig{})
	sched, err := New(clk, srv, nil, Config{
		Name:     "sgx-sched",
		Policy:   Binpack{},
		Interval: 5 * time.Second,
		Gang:     gd,
		Classes:  classes,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched.Start()
	h.sched = sched
	t.Cleanup(func() {
		sched.Close()
		gd.Close()
		for _, kl := range kls {
			kl.Stop()
		}
	})
	return h
}

// drive submits a workload mix carrying every signal the classifier
// reads — priorities high and negative, a gang, EPC demand, long
// durations — but no explicit Class, then runs the simulation out.
func (h *classifyHarness) drive(t *testing.T) {
	t.Helper()
	submit := func(p *api.Pod) {
		p.Spec.SchedulerName = "sgx-sched"
		if err := h.srv.CreatePod(p); err != nil {
			t.Fatal(err)
		}
	}
	// Overcommit the two 2 GiB standard nodes so priorities and
	// preemption actually engage.
	for i := 0; i < 6; i++ {
		p := memJob(fmt.Sprintf("fill-%d", i), 768*resource.MiB, 700*resource.MiB, 40*time.Second)
		p.Spec.Priority = int32(i%3 - 1) // tiers -1, 0, 1
		submit(p)
		h.clk.Advance(time.Second)
	}
	submit(epcJob("enclave", 2000, 4*resource.MiB, 30*time.Second))
	p := memJob("urgent", 512*resource.MiB, 400*resource.MiB, 10*time.Second)
	p.Spec.Priority = 200 // would infer latency-sensitive
	submit(p)
	p = memJob("long", 256*resource.MiB, 200*resource.MiB, 10*time.Minute)
	submit(p) // would infer batch
	for i := 0; i < 2; i++ {
		g := memJob(fmt.Sprintf("gang-%d", i), 256*resource.MiB, 200*resource.MiB, 20*time.Second)
		g.Spec.PodGroup, g.Spec.MinMember = "ring", 2
		submit(g)
	}
	h.clk.Advance(12 * time.Minute)
}

// TestUnclassifiedPodsBitIdenticalWithRegistry is the compatibility
// property the class subsystem is built around: a scheduler carrying a
// class registry (inference off) schedules a workload with no declared
// classes through the default pipeline, producing an event stream
// *exactly* equal — same events, same order, same revisions, same
// timestamps — to a class-free scheduler's. Any class-aware branch that
// leaks into the unclassified path shows up here as the first diverging
// event.
func TestUnclassifiedPodsBitIdenticalWithRegistry(t *testing.T) {
	base := newClassifyHarness(t, nil)
	classed := newClassifyHarness(t, NewClassRegistry(NewWorkloadClassifier(ClassifierConfig{})))
	base.drive(t)
	classed.drive(t)

	if len(base.events) == 0 {
		t.Fatal("baseline produced no events")
	}
	if !base.srv.AllTerminal() {
		t.Fatal("baseline did not drain")
	}
	for i := range base.events {
		if i >= len(classed.events) {
			t.Fatalf("registry run stopped after %d events, baseline has %d; first missing: %s",
				len(classed.events), len(base.events), base.events[i])
		}
		if base.events[i] != classed.events[i] {
			t.Fatalf("event %d diverged:\n  base:    %s\n  classed: %s", i, base.events[i], classed.events[i])
		}
	}
	if len(classed.events) != len(base.events) {
		t.Fatalf("registry run has %d extra events, first: %s",
			len(classed.events)-len(base.events), classed.events[len(base.events)])
	}
}

// TestBestEffortAlwaysPreemptible: a bound best-effort pod is evicted by
// a latency-sensitive pod of *equal* priority — impossible under the
// strict priority gate — while a batch pod in the same position must
// wait (its class may not preempt).
func TestBestEffortAlwaysPreemptible(t *testing.T) {
	run := func(class api.WorkloadClass) (evicted bool) {
		clk := clock.NewSim()
		srv := apiserver.New(clk)
		m := machine.New("std-1", 2*resource.GiB, 8000)
		kl := kubelet.New(clk, srv, m)
		if err := kl.Start(); err != nil {
			t.Fatal(err)
		}
		defer kl.Stop()
		sched, err := New(clk, srv, nil, Config{
			Name:     "sgx-sched",
			Policy:   Binpack{},
			Interval: 5 * time.Second,
			Classes:  NewClassRegistry(nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sched.Close()
		sched.Start()

		// Fill the node with a best-effort pod at the same tier the
		// challenger arrives in.
		filler := classedPod("filler", api.ClassBestEffort, 0, 1536*resource.MiB, 10*time.Minute)
		filler.Spec.SchedulerName = "sgx-sched"
		if err := srv.CreatePod(filler); err != nil {
			t.Fatal(err)
		}
		clk.Advance(10 * time.Second)
		if p, _ := srv.GetPod("filler"); p.Spec.NodeName == "" {
			t.Fatal("filler did not bind")
		}
		challenger := classedPod("challenger", class, 0, resource.GiB, 30*time.Second)
		challenger.Spec.SchedulerName = "sgx-sched"
		if err := srv.CreatePod(challenger); err != nil {
			t.Fatal(err)
		}
		clk.Advance(10 * time.Second)
		p, _ := srv.GetPod("filler")
		return p.Spec.NodeName == "" && p.Status.Phase == api.PodPending
	}
	if !run(api.ClassLatencySensitive) {
		t.Fatal("latency-sensitive pod failed to evict an equal-priority best-effort pod")
	}
	if run(api.ClassBatch) {
		t.Fatal("batch pod evicted a best-effort pod; batch must never preempt")
	}
}

// TestPerClassStatsAndPendingDepth: scheduler Stats splits outcomes per
// class, and the API server reports per-class queue depth.
func TestPerClassStatsAndPendingDepth(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	m := machine.New("std-1", 2*resource.GiB, 8000)
	kl := kubelet.New(clk, srv, m)
	if err := kl.Start(); err != nil {
		t.Fatal(err)
	}
	defer kl.Stop()
	sched, err := New(clk, srv, nil, Config{
		Name:     "sgx-sched",
		Policy:   Binpack{},
		Interval: 5 * time.Second,
		Classes:  NewClassRegistry(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	submit := func(p *api.Pod) {
		p.Spec.SchedulerName = "sgx-sched"
		if err := srv.CreatePod(p); err != nil {
			t.Fatal(err)
		}
	}
	submit(classedPod("ls-1", api.ClassLatencySensitive, 0, 512*resource.MiB, 30*time.Second))
	submit(classedPod("be-1", api.ClassBestEffort, 0, 512*resource.MiB, 30*time.Second))
	submit(memJob("plain-1", 512*resource.MiB, 400*resource.MiB, 30*time.Second))
	// Oversized in every class: stays pending.
	submit(classedPod("be-big", api.ClassBestEffort, 0, 8*resource.GiB, 30*time.Second))

	depth := srv.PendingCountByClass("sgx-sched")
	if depth[api.ClassLatencySensitive] != 1 || depth[api.ClassBestEffort] != 2 || depth[api.ClassUnspecified] != 1 {
		t.Fatalf("pre-pass depth = %v", depth)
	}

	sched.ScheduleOnce()
	st := sched.Stats()
	if got := st.Class(api.ClassLatencySensitive); got.Bound != 1 {
		t.Fatalf("latency-sensitive stats = %+v", got)
	}
	if got := st.Class(api.ClassBestEffort); got.Bound != 1 || got.Unschedulable != 1 {
		t.Fatalf("best-effort stats = %+v", got)
	}
	if got := st.Class(api.ClassUnspecified); got.Bound != 1 {
		t.Fatalf("default-pipeline stats = %+v", got)
	}
	if st.Bound != 3 {
		t.Fatalf("total bound = %d, want 3", st.Bound)
	}

	depth = srv.PendingCountByClass("sgx-sched")
	if depth[api.ClassBestEffort] != 1 || len(depth) != 1 {
		t.Fatalf("post-pass depth = %v", depth)
	}
}

// TestLatencyClassSamplingFloor: the latency-sensitive class's raised
// feasibility floor keeps its candidate search exhaustive at cluster
// sizes where other pods are sampled.
func TestLatencyClassSamplingFloor(t *testing.T) {
	if target := numFeasibleNodesToFind(0, DefaultLatencyMinFeasible, 400); target != 400 {
		t.Fatalf("latency floor at 400 nodes: target = %d, want full scan", target)
	}
	// The default floor samples at that size.
	if target := numFeasibleNodesToFind(0, 0, 400); target >= 400 {
		t.Fatalf("default sampling at 400 nodes: target = %d, want < 400", target)
	}
}
