package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/isgx"
	"github.com/sgxorch/sgxorch/internal/kubelet"
	"github.com/sgxorch/sgxorch/internal/machine"
	"github.com/sgxorch/sgxorch/internal/monitor"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/sgx"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// shardPodName returns a pod name (derived from base) that hashes onto
// the wanted shard of an n-way split, so tests can stage deterministic
// cross-shard races.
func shardPodName(t *testing.T, base string, want, n int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("%s-%d", base, i)
		if ShardIndex(name, n) == want {
			return name
		}
	}
	t.Fatalf("no name hashing onto shard %d/%d", want, n)
	return ""
}

// TestShardIndexStableAndBalanced pins the hash sharding: deterministic,
// in range, and no shard starves on realistic name sets.
func TestShardIndexStableAndBalanced(t *testing.T) {
	const n = 4
	counts := make([]int, n)
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("job-%06d", i)
		idx := ShardIndex(name, n)
		if idx != ShardIndex(name, n) {
			t.Fatalf("ShardIndex(%q) unstable", name)
		}
		if idx < 0 || idx >= n {
			t.Fatalf("ShardIndex(%q) = %d out of range", name, idx)
		}
		counts[idx]++
	}
	for i, c := range counts {
		if c < 150 || c > 350 {
			t.Fatalf("shard %d serves %d/1000 pods — hash badly skewed: %v", i, c, counts)
		}
	}
	if got := ShardIndex("anything", 1); got != 0 {
		t.Fatalf("single shard index = %d", got)
	}
}

// TestShardedConflictRetry stages the canonical optimistic-concurrency
// race deterministically: two round-robin members plan against the same
// round-start view of one strict-admission node that can hold only one of
// their pods. The member that binds second must lose with a recorded
// conflict, its pod must stay pending, and the retry must succeed on the
// next round once capacity frees — bind rejection as a first-class
// outcome, not an error.
func TestShardedConflictRetry(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk, apiserver.WithAdmission(apiserver.AdmitStrict))
	alloc := resource.List{resource.Memory: 8 * resource.GiB, resource.CPU: 8000}
	if err := srv.RegisterNode(&api.Node{
		Name: "n1", Capacity: alloc.Clone(), Allocatable: alloc, Ready: true,
	}); err != nil {
		t.Fatal(err)
	}

	ss, err := NewSharded(clk, srv, nil, Config{Name: "ms", Policy: Binpack{}}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	nameA := shardPodName(t, "pod-a", 0, 2)
	nameB := shardPodName(t, "pod-b", 1, 2)
	for _, name := range []string{nameA, nameB} {
		pod := memJob(name, 5*resource.GiB, resource.GiB, time.Hour)
		ss.Assign(pod)
		if err := srv.CreatePod(pod); err != nil {
			t.Fatal(err)
		}
	}

	if bound := ss.RunRound(); bound != 1 {
		t.Fatalf("round 1 bound %d pods, want 1 (node holds only one)", bound)
	}
	stats := ss.MemberStats()
	if stats[0].Bound != 1 || stats[0].Conflicts != 0 {
		t.Fatalf("member 0 stats = %+v, want the clean winner", stats[0])
	}
	if stats[1].Bound != 0 || stats[1].Conflicts != 1 {
		t.Fatalf("member 1 stats = %+v, want one conflict, nothing bound", stats[1])
	}
	pb, _ := srv.GetPod(nameB)
	if pb.Status.Phase != api.PodPending || pb.Spec.NodeName != "" {
		t.Fatalf("conflicted pod = %s on %q, want Pending unbound", pb.Status.Phase, pb.Spec.NodeName)
	}
	if got := srv.BindStats().RejectedCapacity; got != 1 {
		t.Fatalf("server rejected-capacity count = %d, want 1", got)
	}

	// Losing the race is a retry, not a failure: once the winner's pod
	// finishes, the loser's next round binds from a refreshed cache.
	if err := srv.MarkSucceeded(nameA); err != nil {
		t.Fatal(err)
	}
	if bound := ss.RunRound(); bound != 1 {
		t.Fatalf("retry round bound %d pods, want 1", bound)
	}
	pb, _ = srv.GetPod(nameB)
	if pb.Spec.NodeName != "n1" {
		t.Fatalf("conflicted pod did not retry onto n1: %q", pb.Spec.NodeName)
	}
	if got := ss.MemberStats()[1]; got.Conflicts != 1 || got.Bound != 1 {
		t.Fatalf("member 1 after retry = %+v", got)
	}
}

// TestShardedCacheMatchesBuildViewN2 extends the cache≡rebuild guard to
// two round-robin schedulers over one API server: random churn
// interleaved with sharded rounds, and at every checkpoint each member's
// event-driven cache snapshot must equal its own from-scratch BuildView.
func TestShardedCacheMatchesBuildViewN2(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		clk := clock.NewSim()
		srv := apiserver.New(clk)
		db := tsdb.New(clk)

		nodeNames := make([]string, 3+rng.Intn(3))
		for i := range nodeNames {
			nodeNames[i] = fmt.Sprintf("n%02d", i)
			alloc := resource.List{
				resource.Memory: int64(8+rng.Intn(56)) * resource.GiB,
				resource.CPU:    8000,
			}
			if rng.Intn(2) == 0 {
				alloc[resource.EPCPages] = int64(1000 + rng.Intn(30000))
			}
			if err := srv.RegisterNode(&api.Node{
				Name: nodeNames[i], Capacity: alloc.Clone(), Allocatable: alloc, Ready: true,
			}); err != nil {
				t.Fatal(err)
			}
		}

		ss, err := NewSharded(clk, srv, db, Config{
			Name: "ms", Policy: Binpack{}, UseMetrics: true,
			Window:     time.Duration(5+rng.Intn(20)) * time.Second,
			MetricsLag: time.Duration(1+rng.Intn(20)) * time.Second,
		}, 2, false)
		if err != nil {
			t.Fatal(err)
		}

		var pods []string
		makePod := func() *api.Pod {
			name := fmt.Sprintf("p%03d", len(pods))
			pods = append(pods, name)
			req := resource.List{resource.Memory: int64(rng.Intn(8)) * resource.GiB}
			if rng.Intn(2) == 0 {
				req[resource.EPCPages] = int64(rng.Intn(2000))
			}
			pod := &api.Pod{
				Name: name,
				Spec: api.PodSpec{
					Priority: int32(rng.Intn(3)),
					Containers: []api.Container{{
						Name:      "main",
						Resources: api.Requirements{Requests: req},
					}},
				},
			}
			ss.Assign(pod)
			return pod
		}
		for i := 0; i < 5; i++ {
			if err := srv.CreatePod(makePod()); err != nil {
				t.Fatal(err)
			}
		}

		for op := 0; op < 100; op++ {
			switch r := rng.Intn(100); {
			case r < 20:
				_ = srv.CreatePod(makePod())
			case r < 35: // bind by hand (may be refused by admission — fine)
				if queued := srv.PendingPods(""); len(queued) > 0 {
					p := queued[rng.Intn(len(queued))]
					_ = srv.Bind(p.Name, nodeNames[rng.Intn(len(nodeNames))])
				}
			case r < 45:
				_ = srv.MarkRunning(pods[rng.Intn(len(pods))])
			case r < 53:
				_ = srv.MarkSucceeded(pods[rng.Intn(len(pods))])
			case r < 58:
				_ = srv.Preempt(pods[rng.Intn(len(pods))], "chaos")
			case r < 65: // node churn
				n, err := srv.GetNode(nodeNames[rng.Intn(len(nodeNames))])
				if err != nil {
					break
				}
				if rng.Intn(2) == 0 {
					n.Ready = !n.Ready
				} else {
					n.Unschedulable = !n.Unschedulable
				}
				_ = srv.UpdateNode(n)
			case r < 80: // metric churn
				measurement := monitor.MeasurementMemory
				if rng.Intn(2) == 0 {
					measurement = monitor.MeasurementEPC
				}
				db.Write(measurement, tsdb.Tags{
					monitor.TagPod:  fmt.Sprintf("p%03d", rng.Intn(len(pods)+2)),
					monitor.TagNode: nodeNames[rng.Intn(len(nodeNames))],
				}, float64(int64(rng.Intn(6))*resource.GiB),
					clk.Now().Add(-time.Duration(rng.Intn(30))*time.Second))
			case r < 90:
				ss.RunRound()
			default:
				clk.Advance(time.Duration(rng.Intn(10000)) * time.Millisecond)
			}
			if op%9 == 0 {
				for i, m := range ss.Members() {
					viewsEqual(t, m.Cache().Snapshot(), m.BuildView(),
						fmt.Sprintf("trial %d op %d member %d", trial, op, i))
				}
			}
		}
		clk.Advance(2 * time.Minute)
		for i, m := range ss.Members() {
			viewsEqual(t, m.Cache().Snapshot(), m.BuildView(),
				fmt.Sprintf("trial %d final member %d", trial, i))
		}
		ss.Close()
		db.Close()
	}
}

// shardedTestbed wires a full mini-cluster (kubelets + monitoring) under
// a sharded scheduler fleet.
func shardedTestbed(t *testing.T, shards int, concurrent bool, admission apiserver.Admission) (*clock.Sim, *apiserver.Server, *ShardedSchedulers) {
	t.Helper()
	clk := clock.NewSim()
	srv := apiserver.New(clk, apiserver.WithAdmission(admission))
	db := tsdb.New(clk)

	var kls []*kubelet.Kubelet
	for i := 0; i < 2; i++ {
		m := machine.New(fmt.Sprintf("std-%d", i+1), 64*resource.GiB, 8000)
		kls = append(kls, kubelet.New(clk, srv, m))
	}
	for i := 0; i < 2; i++ {
		m := machine.New(fmt.Sprintf("sgx-%d", i+1), 8*resource.GiB, 8000,
			machine.WithSGX(sgx.DefaultGeometry(), []isgx.Option{}...))
		kls = append(kls, kubelet.New(clk, srv, m))
	}
	for _, kl := range kls {
		if err := kl.Start(); err != nil {
			t.Fatal(err)
		}
	}
	h := monitor.NewHeapster(clk, db, 10*time.Second)
	for _, kl := range kls {
		h.AddSource(kl)
	}
	h.Start()
	ds := monitor.DeployProbes(clk, db, kls, 10*time.Second)

	ss, err := NewSharded(clk, srv, db, Config{
		Name: "ms", Policy: Binpack{}, Interval: 5 * time.Second, UseMetrics: true,
	}, shards, concurrent)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ss.Close()
		h.Stop()
		ds.Stop()
		for _, kl := range kls {
			kl.Stop()
		}
		db.Close()
	})
	return clk, srv, ss
}

// TestShardedDeterminismN2 runs the same seeded workload twice through a
// two-member round-robin fleet on the simulation clock and requires
// bit-identical watch event sequences — the sim-clock determinism
// property extended to N > 1.
func TestShardedDeterminismN2(t *testing.T) {
	run := func() []string {
		clk, srv, ss := shardedTestbed(t, 2, false, apiserver.AdmitGuarded)
		var seq []string
		unsub := srv.Subscribe(func(ev apiserver.WatchEvent) {
			entry := fmt.Sprintf("rev=%d type=%d", ev.Rev, ev.Type)
			if ev.Pod != nil {
				entry += fmt.Sprintf(" pod=%s node=%s phase=%s sched=%s",
					ev.Pod.Name, ev.Pod.Spec.NodeName, ev.Pod.Status.Phase, ev.Pod.Spec.SchedulerName)
			}
			seq = append(seq, entry)
		})
		defer unsub()
		ss.Start()

		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 30; i++ {
			var pod *api.Pod
			if rng.Intn(2) == 0 {
				pod = epcJob(fmt.Sprintf("job-%02d", i), int64(200+rng.Intn(4000)), resource.MiB, 30*time.Second)
			} else {
				pod = memJob(fmt.Sprintf("job-%02d", i), int64(1+rng.Intn(4))*resource.GiB, resource.GiB, 30*time.Second)
			}
			ss.Assign(pod)
			if err := srv.CreatePod(pod); err != nil {
				t.Fatal(err)
			}
			clk.Advance(time.Duration(rng.Intn(8)) * time.Second)
		}
		clk.Advance(5 * time.Minute)
		if !srv.AllTerminal() {
			t.Fatal("sharded workload did not drain")
		}
		return seq
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\nrun1: %s\nrun2: %s", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
}

// TestShardedConcurrentRoundsSafe hammers the concurrent mode (real
// goroutines racing Bind) and asserts safety: every pod binds exactly
// once, no node's committed EPC requests ever exceed its device count,
// and the fleet drains the backlog. Conflict counts are nondeterministic
// here — that is the mode's nature; safety is not. Run under -race in CI.
func TestShardedConcurrentRoundsSafe(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk, apiserver.WithAdmission(apiserver.AdmitStrict))
	const nodes = 4
	for i := 0; i < nodes; i++ {
		alloc := resource.List{
			resource.Memory:   64 * resource.GiB,
			resource.CPU:      8000,
			resource.EPCPages: 23936,
		}
		if err := srv.RegisterNode(&api.Node{
			Name: fmt.Sprintf("sgx-%d", i), Capacity: alloc.Clone(), Allocatable: alloc, Ready: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := NewSharded(clk, srv, nil, Config{
		Name: "ms", Policy: Binpack{}, MaxBindsPerPass: 8,
	}, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	const podCount = 80
	for i := 0; i < podCount; i++ {
		pod := epcJob(fmt.Sprintf("job-%03d", i), 1000, resource.MiB, time.Hour)
		ss.Assign(pod)
		if err := srv.CreatePod(pod); err != nil {
			t.Fatal(err)
		}
	}

	for round := 0; srv.PendingCount() > 0; round++ {
		if round > 200 {
			t.Fatalf("backlog not drained after %d rounds: %d pending", round, srv.PendingCount())
		}
		ss.RunRound()
	}

	bound := 0
	for i := 0; i < podCount; i++ {
		p, err := srv.GetPod(fmt.Sprintf("job-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		if p.Spec.NodeName == "" {
			t.Fatalf("pod %s drained without binding", p.Name)
		}
		bound++
	}
	if bound != podCount {
		t.Fatalf("bound %d/%d pods", bound, podCount)
	}
	var totalEPC int64
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("sgx-%d", i)
		com := srv.Committed(name).Get(resource.EPCPages)
		if com > 23936 {
			t.Fatalf("node %s overcommitted: %d EPC pages", name, com)
		}
		totalEPC += com
	}
	if totalEPC != podCount*1000 {
		t.Fatalf("total committed EPC = %d, want %d", totalEPC, podCount*1000)
	}
	if st := ss.Stats(); st.Bound != podCount {
		t.Fatalf("fleet stats = %+v, want %d bound", st, podCount)
	}
}
