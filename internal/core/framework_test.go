package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/stats"
)

// The built-in policies were rewritten as plugin profiles; these tests pin
// them to verbatim copies of the pre-framework implementations, so the
// refactor is provably bit-identical on randomized inputs.

// refPreferNonSGX is the pre-framework preferNonSGX, verbatim.
func refPreferNonSGX(pod *api.Pod, candidates []*NodeView) []*NodeView {
	if pod.IsSGX() {
		return candidates
	}
	nonSGX := make([]*NodeView, 0, len(candidates))
	for _, c := range candidates {
		if !c.SGX {
			nonSGX = append(nonSGX, c)
		}
	}
	if len(nonSGX) > 0 {
		return nonSGX
	}
	return candidates
}

// refBinpackSelect is the pre-framework Binpack.Select, verbatim.
func refBinpackSelect(pod *api.Pod, candidates []*NodeView, _ *ClusterView) (string, bool) {
	if len(candidates) == 0 {
		return "", false
	}
	if !pod.IsSGX() {
		for _, c := range candidates {
			if !c.SGX {
				return c.Name, true
			}
		}
	}
	return candidates[0].Name, true
}

// refSpreadSelect is the pre-framework Spread.Select, verbatim.
func refSpreadSelect(pod *api.Pod, candidates []*NodeView, view *ClusterView) (string, bool) {
	candidates = refPreferNonSGX(pod, candidates)
	if len(candidates) == 0 {
		return "", false
	}
	res := resource.Memory
	if pod.IsSGX() {
		res = resource.EPCPages
	}
	req := pod.TotalRequests()

	best := ""
	bestDev := 0.0
	for _, cand := range candidates {
		dev := hypotheticalStdDev(view, cand.Name, res, req.Get(res))
		if best == "" || dev < bestDev {
			best = cand.Name
			bestDev = dev
		}
	}
	return best, true
}

// refLeastRequestedSelect is the pre-framework LeastRequested.Select,
// verbatim.
func refLeastRequestedSelect(pod *api.Pod, candidates []*NodeView, _ *ClusterView) (string, bool) {
	if len(candidates) == 0 {
		return "", false
	}
	req := pod.TotalRequests()
	best := ""
	bestScore := -1.0
	for _, c := range candidates {
		capMem := c.Allocatable.Get(resource.Memory)
		if capMem <= 0 {
			continue
		}
		free := capMem - c.Used.Get(resource.Memory) - req.Get(resource.Memory)
		score := float64(free) / float64(capMem)
		if score > bestScore {
			best = c.Name
			bestScore = score
		}
	}
	if best == "" {
		return "", false
	}
	return best, true
}

// randomView builds a random cluster view plus the feasible-candidate
// subsets the scheduler would hand a policy.
func randomView(rng *rand.Rand) *ClusterView {
	view := &ClusterView{}
	n := 1 + rng.Intn(6)
	for i := 0; i < n; i++ {
		sgx := rng.Intn(2) == 0
		alloc := resource.List{
			resource.Memory: int64(1+rng.Intn(64)) * resource.GiB,
			resource.CPU:    8000,
		}
		used := resource.List{resource.Memory: int64(rng.Intn(80)) * resource.GiB / 2}
		free := int64(0)
		if sgx {
			alloc[resource.EPCPages] = int64(1000 + rng.Intn(30000))
			used[resource.EPCPages] = int64(rng.Intn(30000))
			free = alloc[resource.EPCPages] - int64(rng.Intn(10000))
		}
		if rng.Intn(8) == 0 {
			alloc[resource.Memory] = 0 // exercise the capacity-less edge
		}
		view.Nodes = append(view.Nodes, &NodeView{
			Name:        fmt.Sprintf("n%02d", i),
			SGX:         sgx,
			Allocatable: alloc,
			Used:        used,
			FreeDevices: free,
		})
	}
	return view
}

func randomPolicyPod(rng *rand.Rand) *api.Pod {
	req := resource.List{resource.Memory: int64(rng.Intn(8)) * resource.GiB}
	if rng.Intn(2) == 0 {
		req[resource.EPCPages] = int64(1 + rng.Intn(8000))
	}
	return &api.Pod{
		Name: "p",
		Spec: api.PodSpec{Containers: []api.Container{{
			Resources: api.Requirements{Requests: req},
		}}},
	}
}

// TestProfilePoliciesMatchReferenceImplementations randomizes views,
// candidate subsets and pods, and requires the profile-backed Selects to
// agree exactly with the pre-framework code.
func TestProfilePoliciesMatchReferenceImplementations(t *testing.T) {
	type refFn func(*api.Pod, []*NodeView, *ClusterView) (string, bool)
	cases := []struct {
		policy Policy
		ref    refFn
	}{
		{Binpack{}, refBinpackSelect},
		{Spread{}, refSpreadSelect},
		{LeastRequested{}, refLeastRequestedSelect},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		view := randomView(rng)
		pod := randomPolicyPod(rng)
		// Candidate subset in node order, as the filter stage produces.
		candidates := make([]*NodeView, 0, len(view.Nodes))
		for _, n := range view.Nodes {
			if rng.Intn(3) > 0 {
				candidates = append(candidates, n)
			}
		}
		for _, tc := range cases {
			gotName, gotOK := tc.policy.Select(pod, candidates, view)
			wantName, wantOK := tc.ref(pod, candidates, view)
			if gotName != wantName || gotOK != wantOK {
				t.Fatalf("trial %d: %s diverged from reference: got (%q, %v), want (%q, %v)",
					trial, tc.policy.Name(), gotName, gotOK, wantName, wantOK)
			}
		}
	}
}

// TestDefaultFeasibilityMatchesFits pins the fused default filter to
// NodeView.Fits on randomized inputs.
func TestDefaultFeasibilityMatchesFits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		view := randomView(rng)
		pod := randomPolicyPod(rng)
		info := NewPodInfo(pod, nil)
		req := pod.TotalRequests()
		for _, n := range view.Nodes {
			if got, want := (DefaultFeasibility{}).Filter(info, n), n.Fits(req); got != want {
				t.Fatalf("trial %d node %s: DefaultFeasibility = %v, Fits = %v", trial, n.Name, got, want)
			}
		}
	}
}

// TestDefaultFeasibilityMatchesChainedFilters: the fused filter must equal
// the three individual plugins chained.
func TestDefaultFeasibilityMatchesChainedFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	chain := []FilterPlugin{SGXCapabilityFilter{}, EPCFitFilter{}, ResourceFitFilter{}}
	for trial := 0; trial < 2000; trial++ {
		view := randomView(rng)
		info := NewPodInfo(randomPolicyPod(rng), nil)
		for _, n := range view.Nodes {
			want := true
			for _, f := range chain {
				if !f.Filter(info, n) {
					want = false
					break
				}
			}
			if got := (DefaultFeasibility{}).Filter(info, n); got != want {
				t.Fatalf("trial %d node %s: fused = %v, chained = %v", trial, n.Name, got, want)
			}
		}
	}
}

// TestLegacyPolicyAdapter: a policy that implements only Select still
// works behind the default feasibility filters.
type legacyLastNode struct{}

func (legacyLastNode) Name() string { return "legacy-last" }
func (legacyLastNode) Select(_ *api.Pod, candidates []*NodeView, _ *ClusterView) (string, bool) {
	if len(candidates) == 0 {
		return "", false
	}
	return candidates[len(candidates)-1].Name, true
}

func TestLegacyPolicyAdapter(t *testing.T) {
	prof := profileFor(legacyLastNode{})
	if prof.Name() != "legacy-last" {
		t.Fatalf("profile name = %q", prof.Name())
	}
	view := &ClusterView{Nodes: []*NodeView{
		nv("a", false, 100, 0, 0, 0),
		nv("b", false, 100, 0, 0, 0),
	}}
	got, ok := prof.Select(stdPod(10), view.Nodes, view)
	if !ok || got != "b" {
		t.Fatalf("legacy adapter Select = (%q, %v), want (b, true)", got, ok)
	}
	// The adapter still applies the default feasibility filters.
	info := NewPodInfo(stdPod(101), nil)
	if prof.Feasible(info, view.Nodes[0]) {
		t.Fatal("legacy adapter skipped the default feasibility filters")
	}
}

// TestUsageAwareProfileScoring: the usage-aware profile places on the
// node with the most measured headroom and penalises EPC pressure.
func TestUsageAwareProfileScoring(t *testing.T) {
	loaded := nv("a", false, 1000, 900, 0, 0)
	idle := nv("b", false, 1000, 100, 0, 0)
	view := &ClusterView{Nodes: []*NodeView{loaded, idle}}
	got, ok := (UsageAware{}).Select(stdPod(50), view.Nodes, view)
	if !ok || got != "b" {
		t.Fatalf("usage-aware chose %q, want b (most headroom)", got)
	}

	// Two SGX nodes with equal device headroom but different measured EPC
	// pressure: the cooler node wins.
	hot := nv("a-sgx", true, 1000, 0, 10000, 9000)
	cool := nv("b-sgx", true, 1000, 0, 10000, 1000)
	hot.FreeDevices, cool.FreeDevices = 5000, 5000
	view = &ClusterView{Nodes: []*NodeView{hot, cool}}
	got, ok = (UsageAware{}).Select(sgxPodReq(1, 100), view.Nodes, view)
	if !ok || got != "b-sgx" {
		t.Fatalf("usage-aware chose %q, want b-sgx (less EPC pressure)", got)
	}
}

// TestProfileComposition: custom profiles assemble filters, preferences
// and weighted scores.
func TestProfileComposition(t *testing.T) {
	prof := NewProfile("custom",
		WithPreScore(&SGXLastPreScore{}),
		WithScores(
			WeightedScore{Plugin: LeastRequestedScore{}, Weight: 2},
			WeightedScore{Plugin: EPCPressureScore{}, Weight: 1},
		),
	)
	if prof.Name() != "custom" {
		t.Fatalf("name = %q", prof.Name())
	}
	a := nv("a", false, 1000, 800, 0, 0)
	b := nv("b", false, 1000, 0, 0, 0)
	view := &ClusterView{Nodes: []*NodeView{a, b}}
	got, ok := prof.Select(stdPod(10), view.Nodes, view)
	if !ok || got != "b" {
		t.Fatalf("custom profile chose %q, want b", got)
	}
	// Profiles are Policies: they plug into a scheduler config directly.
	var _ Policy = prof
}

// TestPreScoreDeclineContract: a pre-score plugin returning a non-nil
// empty slice declines every candidate, while nil means no preference —
// the contract custom profiles compose against.
func TestPreScoreDeclineContract(t *testing.T) {
	// All candidates lack memory capacity: MemoryCapacityPreScore must
	// decline them even when a later score plugin would happily rank them.
	prof := NewProfile("decline",
		WithPreScore(&MemoryCapacityPreScore{}),
		WithScores(WeightedScore{Plugin: BinpackScore{}, Weight: 1}),
	)
	noCap := &NodeView{Name: "a", Allocatable: resource.List{}, Used: resource.List{}}
	view := &ClusterView{Nodes: []*NodeView{noCap}}
	if got, ok := prof.Select(stdPod(10), view.Nodes, view); ok {
		t.Fatalf("profile placed on capacity-less node %q; pre-score decline ignored", got)
	}

	// SGXLast with only SGX candidates reports no preference (nil), so
	// the standard pod still places as a last resort.
	prof = NewProfile("fallback",
		WithPreScore(&SGXLastPreScore{}),
		WithScores(WeightedScore{Plugin: BinpackScore{}, Weight: 1}),
	)
	sgxOnly := nv("s", true, 100, 0, 1000, 0)
	view = &ClusterView{Nodes: []*NodeView{sgxOnly}}
	if got, ok := prof.Select(stdPod(10), view.Nodes, view); !ok || got != "s" {
		t.Fatalf("SGX-last fallback = (%q, %v), want (s, true)", got, ok)
	}
}

// TestSpreadScoreMonotonicInStdDev: the score plugin must order nodes
// exactly opposite to the hypothetical stddev.
func TestSpreadScoreMonotonicInStdDev(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		view := randomView(rng)
		pod := randomPolicyPod(rng)
		info := NewPodInfo(pod, nil)
		res := resource.Memory
		if info.SGX {
			res = resource.EPCPages
		}
		req := pod.TotalRequests()
		for _, n := range view.Nodes {
			score := (SpreadScore{}).Score(info, n, view)
			dev := hypotheticalStdDev(view, n.Name, res, req.Get(res))
			if score != -dev {
				t.Fatalf("SpreadScore = %v, want %v", score, -dev)
			}
		}
	}
}

// TestPopStdDevEmpty guards the spread edge the profile relies on: no
// resource-holding nodes must yield 0, not NaN, so scoring stays ordered.
func TestPopStdDevEmpty(t *testing.T) {
	if got := stats.PopStdDev(nil); got != 0 {
		t.Fatalf("PopStdDev(nil) = %v, want 0", got)
	}
}
