package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/monitor"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// TestNumFeasibleNodesToFind pins the adaptive sample-size policy:
// full scan at paper scale, kube-style shrinking percentage above it,
// explicit percentages honoured, and the min-feasible floor.
func TestNumFeasibleNodesToFind(t *testing.T) {
	cases := []struct {
		pct, minFeasible, nodes, want int
	}{
		{0, 0, 20, 20},       // paper-scale cluster: always full scan
		{0, 0, 100, 100},     // at the threshold: still full
		{0, 0, 500, 230},     // adaptive: (50 - 500/125)% = 46% of 500
		{0, 0, 5000, 500},    // adaptive: max(5, 50-40)% = 10% of 5000
		{0, 0, 100000, 5000}, // deep in the 5% floor
		{5, 0, 5000, 250},    // explicit 5%
		{100, 0, 5000, 5000}, // explicit full scan
		{5, 0, 1000, 100},    // floor: 5% of 1000 = 50 < minFeasible 100
		{5, 300, 1000, 300},  // custom floor
		{5, 300, 200, 200},   // floor clamped to cluster size
	}
	for _, c := range cases {
		if got := numFeasibleNodesToFind(c.pct, c.minFeasible, c.nodes); got != c.want {
			t.Errorf("numFeasibleNodesToFind(%d, %d, %d) = %d, want %d",
				c.pct, c.minFeasible, c.nodes, got, c.want)
		}
	}
}

// TestIndexedSamplingMatchesFullScan is the tentpole's property test. It
// drives randomized cluster churn through the API server, keeps one
// incremental view synced, and at every checkpoint requires:
//
//  1. the pooled incremental view ≡ a fresh allocating Snapshot (the
//     copy-on-write sync loses nothing);
//  2. an exhaustive index walk (limit ≥ cluster) finds exactly the nodes
//     the full-scan filter pipeline accepts — the index's bucket-skip
//     provably never hides a feasible node;
//  3. a limited walk from an arbitrary rotation offset finds only
//     full-scan-feasible nodes, exactly min(limit, feasible) of them,
//     with no duplicates.
func TestIndexedSamplingMatchesFullScan(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		clk := clock.NewSim()
		srv := apiserver.New(clk)
		db := tsdb.New(clk)

		nodeNames := make([]string, 4+rng.Intn(12))
		for i := range nodeNames {
			nodeNames[i] = fmt.Sprintf("n%02d", i)
			alloc := resource.List{
				resource.Memory: int64(1+rng.Intn(64)) * resource.GiB,
				resource.CPU:    8000,
			}
			if rng.Intn(2) == 0 {
				alloc[resource.EPCPages] = int64(500 + rng.Intn(40000))
			}
			if err := srv.RegisterNode(&api.Node{
				Name: nodeNames[i], Capacity: alloc.Clone(), Allocatable: alloc, Ready: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		s, err := New(clk, srv, db, Config{
			Name: "s", Policy: Binpack{}, UseMetrics: true,
			Window: 25 * time.Second, MetricsLag: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		view := s.Cache().NewView()

		var pods []string
		makePod := func() *api.Pod {
			name := fmt.Sprintf("p%03d", len(pods))
			pods = append(pods, name)
			req := resource.List{resource.Memory: int64(rng.Intn(16)) * resource.GiB}
			if rng.Intn(3) == 0 {
				req[resource.EPCPages] = int64(rng.Intn(8000))
			}
			return &api.Pod{
				Name: name,
				Spec: api.PodSpec{
					SchedulerName: "s",
					Containers: []api.Container{{
						Name:      "main",
						Resources: api.Requirements{Requests: req},
					}},
				},
			}
		}
		probe := func(ctx string) {
			// Probe pods sweep request magnitudes across bucket boundaries,
			// including zero and exact powers of two.
			for k := 0; k < 4; k++ {
				req := resource.List{}
				switch rng.Intn(4) {
				case 0:
					req[resource.Memory] = int64(rng.Intn(80)) * resource.GiB
				case 1:
					req[resource.Memory] = int64(1) << uint(20+rng.Intn(17))
				case 2:
					req[resource.Memory] = int64(rng.Intn(4)) * resource.GiB
					req[resource.EPCPages] = int64(rng.Intn(50000))
				case 3:
					req[resource.EPCPages] = int64(1) << uint(rng.Intn(16))
				}
				pod := &api.Pod{Name: "probe", Spec: api.PodSpec{Containers: []api.Container{{
					Name: "main", Resources: api.Requirements{Requests: req},
				}}}}
				info := NewPodInfo(pod, nil)
				full := map[string]bool{}
				for _, n := range view.Nodes {
					if s.profile.Feasible(info, n) {
						full[n.Name] = true
					}
				}
				offset := rng.Intn(1000)
				// Exhaustive walk: exact set equality with the full scan.
				got, _ := view.sampleFeasible(info, s.profile, len(view.Nodes)+1, offset, nil)
				if len(got) != len(full) {
					t.Fatalf("%s: req=%v exhaustive walk found %d nodes, full scan %d", ctx, req, len(got), len(full))
				}
				for _, n := range got {
					if !full[n.Name] {
						t.Fatalf("%s: req=%v index selected %s which the full scan rejects", ctx, req, n.Name)
					}
				}
				// Limited walk: subset, exact count, no duplicates.
				limit := 1 + rng.Intn(3)
				sampled, _ := view.sampleFeasible(info, s.profile, limit, offset, nil)
				want := limit
				if len(full) < want {
					want = len(full)
				}
				if len(sampled) != want {
					t.Fatalf("%s: req=%v limit=%d found %d candidates, want %d (feasible=%d)",
						ctx, req, limit, len(sampled), want, len(full))
				}
				seen := map[string]bool{}
				for _, n := range sampled {
					if !full[n.Name] {
						t.Fatalf("%s: req=%v sampled %s which the full scan rejects", ctx, req, n.Name)
					}
					if seen[n.Name] {
						t.Fatalf("%s: req=%v sampled %s twice", ctx, req, n.Name)
					}
					seen[n.Name] = true
				}
			}
		}

		for op := 0; op < 120; op++ {
			switch r := rng.Intn(100); {
			case r < 25:
				_ = srv.CreatePod(makePod())
			case r < 45:
				if queued := srv.PendingPods(""); len(queued) > 0 {
					p := queued[rng.Intn(len(queued))]
					_ = srv.Bind(p.Name, nodeNames[rng.Intn(len(nodeNames))])
				}
			case r < 55:
				if len(pods) > 0 {
					_ = srv.MarkRunning(pods[rng.Intn(len(pods))])
				}
			case r < 62:
				if len(pods) > 0 {
					_ = srv.MarkSucceeded(pods[rng.Intn(len(pods))])
				}
			case r < 68:
				if len(pods) > 0 {
					_ = srv.Preempt(pods[rng.Intn(len(pods))], "chaos")
				}
			case r < 76:
				n, err := srv.GetNode(nodeNames[rng.Intn(len(nodeNames))])
				if err != nil {
					break
				}
				switch rng.Intn(3) {
				case 0:
					n.Ready = !n.Ready
				case 1:
					n.Unschedulable = !n.Unschedulable
				case 2:
					n.Allocatable[resource.Memory] += resource.GiB
				}
				_ = srv.UpdateNode(n)
			case r < 88:
				if len(pods) > 0 {
					db.Write(monitor.MeasurementMemory,
						tsdb.Tags{monitor.TagPod: pods[rng.Intn(len(pods))], monitor.TagNode: nodeNames[rng.Intn(len(nodeNames))]},
						float64(int64(rng.Intn(4))*resource.GiB), clk.Now())
				}
			default:
				clk.Advance(time.Duration(rng.Intn(12000)) * time.Millisecond)
			}
			if op%5 == 0 {
				s.Cache().SyncView(view)
				viewsEqual(t, view, s.Cache().Snapshot(), fmt.Sprintf("trial %d op %d", trial, op))
				probe(fmt.Sprintf("trial %d op %d", trial, op))
			}
		}
		clk.Advance(2 * time.Minute)
		s.Cache().SyncView(view)
		viewsEqual(t, view, s.Cache().Snapshot(), fmt.Sprintf("trial %d final", trial))
		probe(fmt.Sprintf("trial %d final", trial))
		s.Close()
	}
}

// TestSyncViewCommitConverges pins the optimistic-commit contract: a
// pass's Commit mutates the incremental view ahead of the authoritative
// events, and once those events land the next sync replaces the node
// with cache truth — the view converges instead of double-charging.
func TestSyncViewCommitConverges(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	alloc := resource.List{resource.Memory: 16 * resource.GiB, resource.EPCPages: 1000}
	if err := srv.RegisterNode(&api.Node{Name: "n1", Capacity: alloc.Clone(), Allocatable: alloc, Ready: true}); err != nil {
		t.Fatal(err)
	}
	s, err := New(clk, srv, nil, Config{Name: "s", Policy: Binpack{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	view := s.Cache().NewView()
	s.Cache().SyncView(view)
	pod := &api.Pod{Name: "p1", Spec: api.PodSpec{SchedulerName: "s", Containers: []api.Container{{
		Name: "main", Resources: api.Requirements{Requests: resource.List{resource.Memory: resource.GiB, resource.EPCPages: 100}},
	}}}}
	if err := srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	view.Commit("n1", pod.TotalRequests()) // optimistic, ahead of the bind
	if err := srv.Bind("p1", "n1"); err != nil {
		t.Fatal(err)
	}
	s.Cache().SyncView(view)
	viewsEqual(t, view, s.Cache().Snapshot(), "post-bind sync")
	n := view.Node("n1")
	if n.Used.Get(resource.Memory) != resource.GiB || n.FreeDevices != 900 {
		t.Fatalf("converged view wrong: used=%v free=%d", n.Used, n.FreeDevices)
	}
}

// TestSampledSchedulingDeterministic runs an identical above-threshold
// (sampling-engaged) sim-clock scenario twice and requires bit-identical
// bind histories — the reproducibility half of the tentpole's acceptance
// criteria. It also proves sampling actually engaged (Stats.Sampled).
func TestSampledSchedulingDeterministic(t *testing.T) {
	run := func() ([]string, Stats) {
		clk := clock.NewSim()
		srv := apiserver.New(clk)
		for i := 0; i < 150; i++ {
			alloc := resource.List{
				resource.Memory: int64(2+i%7) * resource.GiB,
				resource.CPU:    8000,
			}
			if i%4 == 0 {
				alloc[resource.EPCPages] = int64(2000 + 500*(i%5))
			}
			if err := srv.RegisterNode(&api.Node{
				Name: fmt.Sprintf("node-%03d", i), Capacity: alloc.Clone(), Allocatable: alloc, Ready: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		s, err := New(clk, srv, nil, Config{
			Name: "s", Policy: Binpack{}, Interval: time.Second, MaxBindsPerPass: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		var seq []string
		unsub := srv.Subscribe(func(ev apiserver.WatchEvent) {
			if ev.Type == apiserver.PodBound {
				seq = append(seq, fmt.Sprintf("rev=%d pod=%s node=%s", ev.Rev, ev.Pod.Name, ev.Pod.Spec.NodeName))
			}
		})
		defer unsub()
		rng := rand.New(rand.NewSource(7777))
		for i := 0; i < 300; i++ {
			req := resource.List{resource.Memory: int64(1+rng.Intn(3)) * resource.GiB}
			if rng.Intn(5) == 0 {
				req[resource.EPCPages] = int64(200 + rng.Intn(1500))
			}
			pod := &api.Pod{Name: fmt.Sprintf("pod-%03d", i), Spec: api.PodSpec{
				SchedulerName: "s",
				Containers:    []api.Container{{Name: "main", Resources: api.Requirements{Requests: req}}},
			}}
			if err := srv.CreatePod(pod); err != nil {
				t.Fatal(err)
			}
		}
		s.Start()
		clk.Advance(40 * time.Second)
		st := s.Stats()
		s.Close()
		return seq, st
	}
	seqA, statsA := run()
	seqB, statsB := run()
	if statsA.Sampled == 0 {
		t.Fatal("sampling never engaged at 150 nodes — the determinism check is vacuous")
	}
	if statsA.Bound == 0 {
		t.Fatal("no pods bound")
	}
	if statsA != statsB {
		t.Fatalf("stats differ across runs:\nrun1: %+v\nrun2: %+v", statsA, statsB)
	}
	if len(seqA) != len(seqB) {
		t.Fatalf("bind counts differ: %d vs %d", len(seqA), len(seqB))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("bind %d differs:\nrun1: %s\nrun2: %s", i, seqA[i], seqB[i])
		}
	}
}

// TestSampledRotationCovers proves the rotating offset's fairness
// invariant: across consecutive searches the walk does not restart at
// the same node — every eligible node is eventually visited even though
// each search stops after one candidate.
func TestSampledRotationCovers(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	const nNodes = 16
	for i := 0; i < nNodes; i++ {
		alloc := resource.List{resource.Memory: 8 * resource.GiB, resource.CPU: 8000}
		if err := srv.RegisterNode(&api.Node{
			Name: fmt.Sprintf("node-%02d", i), Capacity: alloc.Clone(), Allocatable: alloc, Ready: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(clk, srv, nil, Config{Name: "s", Policy: Binpack{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	view := s.Cache().NewView()
	s.Cache().SyncView(view)

	info := NewPodInfo(&api.Pod{Spec: api.PodSpec{Containers: []api.Container{{
		Name: "main", Resources: api.Requirements{Requests: resource.List{resource.Memory: resource.GiB}},
	}}}}, nil)
	seen := map[string]bool{}
	offset := 0
	for i := 0; i < nNodes; i++ {
		got, visited := view.sampleFeasible(info, s.profile, 1, offset, nil)
		if len(got) != 1 {
			t.Fatalf("search %d found %d candidates, want 1", i, len(got))
		}
		seen[got[0].Name] = true
		offset += visited
	}
	if len(seen) != nNodes {
		var missing []string
		for i := 0; i < nNodes; i++ {
			if name := fmt.Sprintf("node-%02d", i); !seen[name] {
				missing = append(missing, name)
			}
		}
		sort.Strings(missing)
		t.Fatalf("rotation covered %d/%d nodes; never visited: %v", len(seen), nNodes, missing)
	}
}
