package core

import (
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
)

func TestNodeViewFitsHardwareFilter(t *testing.T) {
	std := nv("std", false, 1000, 0, 0, 0)
	// An SGX job on a non-SGX node can never be satisfied (§IV).
	if std.Fits(resource.List{resource.EPCPages: 1}) {
		t.Fatal("non-SGX node accepted EPC request")
	}
	if !std.Fits(resource.List{resource.Memory: 1000}) {
		t.Fatal("exact-fit memory rejected")
	}
	if std.Fits(resource.List{resource.Memory: 1001}) {
		t.Fatal("saturating request accepted")
	}
}

func TestNodeViewFitsDeviceAccounting(t *testing.T) {
	sgxNode := nv("sgx", true, 1000, 0, 1000, 0)
	sgxNode.FreeDevices = 10
	// Usage-based headroom says yes (Used=0), but only 10 device items
	// remain: the request must be rejected to avoid kubelet denial.
	if sgxNode.Fits(resource.List{resource.EPCPages: 11}) {
		t.Fatal("request beyond free devices accepted")
	}
	if !sgxNode.Fits(resource.List{resource.EPCPages: 10}) {
		t.Fatal("request within free devices rejected")
	}
}

func TestNodeViewFreeFloorsAtZero(t *testing.T) {
	n := nv("n", false, 1000, 1500, 0, 0) // over-used (malicious overrun)
	if got := n.Free().Get(resource.Memory); got != 0 {
		t.Fatalf("Free = %d, want 0", got)
	}
}

func TestClusterViewCommit(t *testing.T) {
	n := nv("n", true, 1000, 0, 500, 0)
	view := &ClusterView{Nodes: []*NodeView{n}}
	view.Commit("n", resource.List{resource.Memory: 400, resource.EPCPages: 100})
	if n.Used.Get(resource.Memory) != 400 {
		t.Fatalf("Used = %v", n.Used)
	}
	if n.FreeDevices != 400 {
		t.Fatalf("FreeDevices = %d, want 400", n.FreeDevices)
	}
	view.Commit("ghost", resource.List{resource.Memory: 1}) // no-op
	if view.Node("ghost") != nil {
		t.Fatal("ghost node materialised")
	}
}

func TestPodUsageRequestOnlyMode(t *testing.T) {
	p := sgxPodReq(100, 10)
	now := clock.SimEpoch
	mem, epc := podUsage(p, p.TotalRequests(), 999999, 999999, now, 25*time.Second, false)
	if mem != 100 || epc != 10 {
		t.Fatalf("request-only usage = %d bytes, %d pages", mem, epc)
	}
}

func TestPodUsageYoungPodTakesMax(t *testing.T) {
	p := sgxPodReq(100, 10)
	now := clock.SimEpoch
	// Not yet started: requests dominate missing metrics.
	mem, epc := podUsage(p, p.TotalRequests(), 0, 0, now, 25*time.Second, true)
	if mem != 100 || epc != 10 {
		t.Fatalf("young unstarted usage = %d bytes, %d pages", mem, epc)
	}
	// Started 5s ago with metrics above requests (malicious): max wins.
	p.Status.StartedAt = now.Add(-5 * time.Second)
	mem, epc = podUsage(p, p.TotalRequests(), 500, float64(20*4096), now, 25*time.Second, true)
	if mem != 500 || epc != 20 {
		t.Fatalf("young measured usage = %d bytes, %d pages", mem, epc)
	}
}

func TestPodUsageMaturePodTrustsMetrics(t *testing.T) {
	p := sgxPodReq(1000, 100)
	now := clock.SimEpoch.Add(time.Hour)
	p.Status.StartedAt = now.Add(-time.Minute)
	// Mature over-declaring pod: measured (low) frees headroom for the
	// usage-aware scheduler.
	mem, epc := podUsage(p, p.TotalRequests(), 200, float64(30*4096), now, 25*time.Second, true)
	if mem != 200 || epc != 30 {
		t.Fatalf("mature usage = %d bytes, %d pages", mem, epc)
	}
}

func TestPodUsageMaliciousMatureExceedsRequests(t *testing.T) {
	// Declares 1 page, uses half the EPC: a usage-aware scheduler must
	// see the real footprint (Fig. 11's mechanism).
	p := sgxPodReq(1, 1)
	now := clock.SimEpoch.Add(time.Hour)
	p.Status.StartedAt = now.Add(-10 * time.Minute)
	halfEPC := float64(11968 * 4096)
	_, epc := podUsage(p, p.TotalRequests(), 0, halfEPC, now, 25*time.Second, true)
	if epc != 11968 {
		t.Fatalf("malicious usage = %d pages, want 11968", epc)
	}
}

func TestViewNodeLookupAndSort(t *testing.T) {
	view := &ClusterView{Nodes: []*NodeView{
		nv("z", false, 1, 0, 0, 0),
		nv("a", false, 1, 0, 0, 0),
	}}
	view.sortNodes()
	if view.Nodes[0].Name != "a" || view.Nodes[1].Name != "z" {
		t.Fatal("sortNodes did not order by name")
	}
	if view.Node("z") == nil || view.Node("missing") != nil {
		t.Fatal("Node lookup wrong")
	}
}

func TestLoadFraction(t *testing.T) {
	n := nv("n", true, 1000, 250, 800, 200)
	if got := n.LoadFraction(resource.Memory); got != 0.25 {
		t.Fatalf("memory load = %v", got)
	}
	if got := n.LoadFraction(resource.EPCPages); got != 0.25 {
		t.Fatalf("EPC load = %v", got)
	}
}

var _ = api.PodPending // keep api import for helpers above
