package core

import (
	"sync"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/stats"
)

// Profiles carry reusable narrowing scratch and are not safe for
// concurrent Select calls, so the built-in policies' Select methods —
// which must stay cheap and concurrency-safe for direct callers — borrow
// a pooled instance per call instead of rebuilding the pipeline. The
// scheduler itself never touches these pools: it resolves one owned
// profile up front via profileFor.
var (
	binpackPool        = profilePool(Binpack{}.Profile)
	spreadPool         = profilePool(Spread{}.Profile)
	leastRequestedPool = profilePool(LeastRequested{}.Profile)
	usageAwarePool     = profilePool(UsageAware{}.Profile)
)

func profilePool(build func() *Profile) *sync.Pool {
	return &sync.Pool{New: func() any { return build() }}
}

func pooledSelect(pool *sync.Pool, pod *api.Pod, candidates []*NodeView, view *ClusterView) (string, bool) {
	p := pool.Get().(*Profile)
	defer pool.Put(p)
	return p.Select(pod, candidates, view)
}

// Policy selects a node for a pod among the feasible candidates of one
// scheduling pass. Candidates are pre-filtered by the §IV hardware and
// saturation checks and arrive sorted by node name.
//
// The built-in policies are profiles over the plugin framework (see
// framework.go); a Policy that additionally implements Profiler hands the
// scheduler its full pipeline, so profile filters run during the
// feasibility stage. Plain Policies keep working unchanged behind the
// default feasibility filters.
type Policy interface {
	Name() string
	// Select returns the chosen node name, or false when the policy
	// declines every candidate.
	Select(pod *api.Pod, candidates []*NodeView, view *ClusterView) (string, bool)
}

// Profiler is implemented by policies built over the plugin framework.
type Profiler interface {
	Profile() *Profile
}

// profileFor resolves a policy's pipeline: profiles pass through, other
// Profilers are asked, and plain legacy policies are wrapped behind the
// default feasibility filters with their Select as the scoring stage.
func profileFor(p Policy) *Profile {
	switch v := p.(type) {
	case *Profile:
		return v
	case Profiler:
		return v.Profile()
	default:
		prof := NewProfile(p.Name())
		prof.legacy = p
		return prof
	}
}

// Binpack implements the §IV binpack strategy: "the scheduler always tries
// to fit as many jobs as possible on the same node. As soon as its
// resources become insufficient, the scheduler advances to the next node
// in the pool." Node order is the consistent by-name order, with SGX
// nodes sorted last for standard jobs to preserve their EPC.
type Binpack struct{}

// Name implements Policy.
func (Binpack) Name() string { return "binpack" }

// Profile implements Profiler: the SGX-last preference plus the all-tie
// binpack score, so the first feasible node in the fixed order wins.
func (Binpack) Profile() *Profile {
	return NewProfile("binpack",
		WithPreScore(&SGXLastPreScore{}),
		WithScores(WeightedScore{Plugin: BinpackScore{}, Weight: 1}),
	)
}

// Select implements Policy via the framework profile: first feasible node
// in the fixed order, SGX nodes last for standard jobs (§IV).
func (Binpack) Select(pod *api.Pod, candidates []*NodeView, view *ClusterView) (string, bool) {
	return pooledSelect(binpackPool, pod, candidates, view)
}

// Spread implements the §IV spread strategy: "the main goal of the spread
// strategy is to even out the load across all nodes. It works by choosing
// job-node combinations that yield the smallest standard deviation of
// load across the nodes."
type Spread struct{}

// Name implements Policy.
func (Spread) Name() string { return "spread" }

// Profile implements Profiler: SGX-last preference, then the negated
// hypothetical load stddev as the score. Load is measured on the pod's
// contended resource — EPC fraction across SGX nodes for SGX jobs, memory
// fraction otherwise. Ties break on node-name order, keeping runs
// deterministic.
func (Spread) Profile() *Profile {
	return NewProfile("spread",
		WithPreScore(&SGXLastPreScore{}),
		WithScores(WeightedScore{Plugin: SpreadScore{}, Weight: 1}),
	)
}

// Select implements Policy via the framework profile: hypothetically place
// the pod on each candidate and keep the placement minimising the
// population standard deviation of load.
func (Spread) Select(pod *api.Pod, candidates []*NodeView, view *ClusterView) (string, bool) {
	return pooledSelect(spreadPool, pod, candidates, view)
}

// hypotheticalStdDev computes the load stddev across the nodes holding
// the resource, with extra added onto target.
func hypotheticalStdDev(view *ClusterView, target string, res resource.Name, extra int64) float64 {
	loads := make([]float64, 0, len(view.Nodes))
	for _, n := range view.Nodes {
		if n.Allocatable.Get(res) <= 0 {
			continue
		}
		used := n.Used.Get(res)
		if n.Name == target {
			used += extra
		}
		loads = append(loads, float64(used)/float64(n.Allocatable.Get(res)))
	}
	return stats.PopStdDev(loads)
}

// LeastRequested mirrors the request-only scoring of Kubernetes' default
// scheduler (§V-B deploys it side by side with the SGX-aware one). It is
// the baseline for the ablation benchmarks: no SGX-last ordering and no
// usage metrics, so it demonstrates what SGX-awareness buys.
type LeastRequested struct{}

// Name implements Policy.
func (LeastRequested) Name() string { return "least-requested" }

// Profile implements Profiler: candidates without memory capacity are
// dropped, the rest score their free memory fraction after placement. The
// -1 floor preserves the historical contract that a node more than fully
// committed past its capacity is declined rather than ranked.
func (LeastRequested) Profile() *Profile {
	return NewProfile("least-requested",
		WithPreScore(&MemoryCapacityPreScore{}),
		WithScores(WeightedScore{Plugin: LeastRequestedScore{}, Weight: 1}),
		WithMinScore(-1),
	)
}

// Select implements Policy via the framework profile: pick the feasible
// node with the most free memory fraction after placement (ties by name
// order).
func (LeastRequested) Select(pod *api.Pod, candidates []*NodeView, view *ClusterView) (string, bool) {
	return pooledSelect(leastRequestedPool, pod, candidates, view)
}

// UsageAware is a framework-native policy with no counterpart in the
// paper: it keeps the SGX-last rule but scores placements by measured
// usage headroom combined with an EPC-pressure penalty, so SGX-heavy load
// spreads away from nodes whose enclave pages are already hot. It
// demonstrates what the plugin pipeline buys over the fixed strategies.
type UsageAware struct{}

// Name implements Policy.
func (UsageAware) Name() string { return "usage-aware" }

// Profile implements Profiler.
func (UsageAware) Profile() *Profile {
	return NewProfile("usage-aware",
		WithPreScore(&SGXLastPreScore{}),
		WithScores(
			WeightedScore{Plugin: UsageHeadroomScore{}, Weight: 1},
			WeightedScore{Plugin: EPCPressureScore{}, Weight: 0.5},
		),
	)
}

// Select implements Policy via the framework profile.
func (UsageAware) Select(pod *api.Pod, candidates []*NodeView, view *ClusterView) (string, bool) {
	return pooledSelect(usageAwarePool, pod, candidates, view)
}
