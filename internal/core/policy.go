package core

import (
	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/stats"
)

// Policy selects a node for a pod among the feasible candidates of one
// scheduling pass. Candidates are pre-filtered by the §IV hardware and
// saturation checks and arrive sorted by node name.
type Policy interface {
	Name() string
	// Select returns the chosen node name, or false when the policy
	// declines every candidate.
	Select(pod *api.Pod, candidates []*NodeView, view *ClusterView) (string, bool)
}

// preferNonSGX restricts candidates to non-SGX nodes when possible for
// standard pods: both policies "only resort to SGX-enabled nodes for
// non-SGX jobs when no other choice is possible to execute the job" (§IV).
func preferNonSGX(pod *api.Pod, candidates []*NodeView) []*NodeView {
	if pod.IsSGX() {
		return candidates
	}
	nonSGX := make([]*NodeView, 0, len(candidates))
	for _, c := range candidates {
		if !c.SGX {
			nonSGX = append(nonSGX, c)
		}
	}
	if len(nonSGX) > 0 {
		return nonSGX
	}
	return candidates
}

// Binpack implements the §IV binpack strategy: "the scheduler always tries
// to fit as many jobs as possible on the same node. As soon as its
// resources become insufficient, the scheduler advances to the next node
// in the pool." Node order is the consistent by-name order, with SGX
// nodes sorted last for standard jobs to preserve their EPC.
type Binpack struct{}

// Name implements Policy.
func (Binpack) Name() string { return "binpack" }

// Select implements Policy: first feasible node in the fixed order.
// Standard jobs take the first non-SGX candidate (name order), resorting
// to an SGX node only when no other choice exists (§IV); it runs once per
// pending pod per pass, so it scans in place instead of materialising the
// reordered list.
func (Binpack) Select(pod *api.Pod, candidates []*NodeView, _ *ClusterView) (string, bool) {
	if len(candidates) == 0 {
		return "", false
	}
	if !pod.IsSGX() {
		for _, c := range candidates {
			if !c.SGX {
				return c.Name, true
			}
		}
	}
	return candidates[0].Name, true
}

// Spread implements the §IV spread strategy: "the main goal of the spread
// strategy is to even out the load across all nodes. It works by choosing
// job-node combinations that yield the smallest standard deviation of
// load across the nodes."
type Spread struct{}

// Name implements Policy.
func (Spread) Name() string { return "spread" }

// Select implements Policy: hypothetically place the pod on each
// candidate and keep the placement minimising the population standard
// deviation of load. Load is measured on the pod's contended resource —
// EPC fraction across SGX nodes for SGX jobs, memory fraction across all
// nodes otherwise. Ties break on node-name order, keeping runs
// deterministic.
func (Spread) Select(pod *api.Pod, candidates []*NodeView, view *ClusterView) (string, bool) {
	candidates = preferNonSGX(pod, candidates)
	if len(candidates) == 0 {
		return "", false
	}
	res := resource.Memory
	if pod.IsSGX() {
		res = resource.EPCPages
	}
	req := pod.TotalRequests()

	best := ""
	bestDev := 0.0
	for _, cand := range candidates {
		dev := hypotheticalStdDev(view, cand.Name, res, req.Get(res))
		if best == "" || dev < bestDev {
			best = cand.Name
			bestDev = dev
		}
	}
	return best, true
}

// hypotheticalStdDev computes the load stddev across the nodes holding
// the resource, with extra added onto target.
func hypotheticalStdDev(view *ClusterView, target string, res resource.Name, extra int64) float64 {
	loads := make([]float64, 0, len(view.Nodes))
	for _, n := range view.Nodes {
		if n.Allocatable.Get(res) <= 0 {
			continue
		}
		used := n.Used.Get(res)
		if n.Name == target {
			used += extra
		}
		loads = append(loads, float64(used)/float64(n.Allocatable.Get(res)))
	}
	return stats.PopStdDev(loads)
}

// LeastRequested mirrors the request-only scoring of Kubernetes' default
// scheduler (§V-B deploys it side by side with the SGX-aware one). It is
// the baseline for the ablation benchmarks: no SGX-last ordering and no
// usage metrics, so it demonstrates what SGX-awareness buys.
type LeastRequested struct{}

// Name implements Policy.
func (LeastRequested) Name() string { return "least-requested" }

// Select implements Policy: pick the feasible node with the most free
// memory fraction after placement (ties by name order).
func (LeastRequested) Select(pod *api.Pod, candidates []*NodeView, _ *ClusterView) (string, bool) {
	if len(candidates) == 0 {
		return "", false
	}
	req := pod.TotalRequests()
	best := ""
	bestScore := -1.0
	for _, c := range candidates {
		capMem := c.Allocatable.Get(resource.Memory)
		if capMem <= 0 {
			continue
		}
		free := capMem - c.Used.Get(resource.Memory) - req.Get(resource.Memory)
		score := float64(free) / float64(capMem)
		if score > bestScore {
			best = c.Name
			bestScore = score
		}
	}
	if best == "" {
		return "", false
	}
	return best, true
}
