package core

import (
	"github.com/sgxorch/sgxorch/internal/resource"
)

// Preemption: when a pod finds no feasible node, the scheduler may evict
// strictly lower-priority pods to make room — the paper's FCFS queue
// (§IV) refined into priority tiers, so a high-priority SGX job does not
// starve behind EPC hogs. The planner works entirely on the event-driven
// cache: per node it simulates removing the cheapest victims (lowest
// priority first, names breaking ties) until the pod fits, then reprieves
// every victim the fit can do without, preferring to spare the
// highest-priority ones. Across nodes it picks the fewest victims, then
// the lowest victim priorities, then the lowest node name — all
// deterministic, so identical cluster histories preempt identically.
//
// Invariants:
//   - only strictly lower-priority pods are ever evicted (equal tiers
//     never preempt each other) — with one declared exception: pods
//     whose spec names the best-effort workload class are eligible
//     victims for any preemption-capable class regardless of tier
//     (takeBE below), which is the contract that class signs up for;
//   - victims are returned to the pending queue (not failed) and
//     reschedule later on their own merits;
//   - a pod whose requests no victim set can satisfy preempts nothing and
//     simply stays queued;
//   - gang members are never evicted individually: a gang is one victim
//     unit, eligible only when every member everywhere is outranked, and
//     evicted wholesale through the API server's PreemptGroup (held
//     permits roll back, bound members re-queue) — partial placements
//     cannot be created by preemption any more than by placement.

// preempt tries to make room for pod, planning with the pipeline the pod
// actually schedules through (prof — its class profile, or the default).
// takeBE additionally admits declared best-effort pods as victims
// regardless of priority tier (workload classes' one sanctioned
// relaxation of the strictly-lower invariant; see victimsBelow). On
// success it returns the chosen node, having already evicted the victims
// through the API server (the kubelet kills their workloads
// synchronously on the eviction event), and the caller re-snapshots the
// cache and binds. Returns preempted=false when no feasible victim set
// exists; nothing is evicted then.
func (s *Scheduler) preempt(pod *PodInfo, prof *Profile, takeBE bool) (node string, victims int, preempted bool) {
	// Re-check the gate against live state: the caller's per-pass gate
	// may be stale after earlier evictions in this pass.
	minPrio, anyBound, beBound := s.cache.preemptGate()
	if !(anyBound && minPrio < pod.Priority) && !(takeBE && beBound) {
		return "", 0, false
	}
	// Plan against a fresh snapshot: the pass view may predate metric or
	// eviction churn, and the victim charges must match the cache's
	// accounting exactly.
	view := s.cache.Snapshot()

	// The §IV SGX-last rule binds preemption too: a standard pod may only
	// preempt its way onto SGX hardware when no non-SGX node has a
	// feasible victim set, no matter how cheap the SGX-node victims are.
	var bestNode string
	var bestSet []victimInfo
	plan := func(sgxNodes bool) {
		for _, n := range view.Nodes {
			if n.SGX != sgxNodes || !staticallyFeasible(pod, n) {
				continue
			}
			s.victimBuf = s.cache.victimsBelow(n.Name, pod.Priority, takeBE, s.victimBuf[:0])
			set, ok := minimalVictimSet(pod, n, s.victimBuf)
			if !ok {
				continue
			}
			// Replay the full pipeline against the node as it would look
			// after the evictions: a profile's custom filter plugins or a
			// legacy policy's Select may veto this node for reasons the
			// victim math cannot see, and an eviction such a pipeline
			// would reject every pass must never start (it would kill the
			// victims without ever binding the pod — and again next
			// pass).
			if !s.pipelineAcceptsAfterEvictions(pod, prof, n, set, view) {
				continue
			}
			if bestNode == "" || betterVictimSet(set, bestSet) {
				bestNode = n.Name
				// Copy: set aliases the shared victim buffer, which the
				// next node's search reuses.
				bestSet = append(bestSet[:0], set...)
			}
		}
	}
	if pod.SGX {
		plan(true) // SGX pods can only ever fit SGX nodes
	} else {
		plan(false)
		if bestNode == "" {
			plan(true) // last resort, as in normal placement
		}
	}
	if bestNode == "" {
		return "", 0, false
	}
	for _, v := range bestSet {
		// The eviction event synchronously re-queues the victim, makes the
		// kubelet kill its workload and release its devices, and removes
		// its charge from the cache. Failures (a victim racing to
		// completion) are benign: the fit re-check after re-snapshot
		// decides whether the bind still happens.
		if v.group != "" {
			// All-or-nothing in both directions: the whole gang goes,
			// including members on other nodes and members still holding
			// permits.
			_, _ = s.srv.PreemptGroup(v.group, "higher-priority pod "+pod.Pod.Name)
			continue
		}
		_ = s.srv.Preempt(v.name, "higher-priority pod "+pod.Pod.Name)
	}
	return bestNode, victimCount(bestSet), true
}

// victimCount sums the pods displaced by a victim set — a gang unit
// displaces its whole cluster-wide membership, not one pod.
func victimCount(set []victimInfo) int {
	n := 0
	for _, v := range set {
		if v.count > 1 {
			n += v.count
			continue
		}
		n++
	}
	return n
}

// pipelineAcceptsAfterEvictions simulates the node with the victim set's
// charges released and asks the profile — filters, preferences, scores,
// or a legacy policy's Select — whether it would place the pod there.
func (s *Scheduler) pipelineAcceptsAfterEvictions(pod *PodInfo, prof *Profile, n *NodeView, set []victimInfo, view *ClusterView) bool {
	var freedMem, freedEPC, freedDev int64
	for _, v := range set {
		freedMem += v.memBytes
		freedEPC += v.epcPages
		freedDev += v.reqEPC
	}
	sim := &NodeView{
		Name:        n.Name,
		SGX:         n.SGX,
		Allocatable: n.Allocatable,
		Used: resource.List{
			resource.Memory:   n.Used.Get(resource.Memory) - freedMem,
			resource.EPCPages: n.Used.Get(resource.EPCPages) - freedEPC,
		},
		FreeDevices: n.FreeDevices + freedDev,
	}
	if !prof.Feasible(pod, sim) {
		return false
	}
	s.simBuf = append(s.simBuf[:0], sim)
	name, ok := prof.selectInfo(pod, s.simBuf, view)
	return ok && name == n.Name
}

// staticallyFeasible reports whether the node could ever host the pod if
// it were empty: hardware capability and raw allocatable capacity. Usage
// and device headroom are the preemptable part; these bounds are not.
func staticallyFeasible(pod *PodInfo, node *NodeView) bool {
	if pod.SGX && !node.SGX {
		return false
	}
	for _, pr := range pod.Pairs {
		if node.Allocatable.Get(pr.Name) < pr.Qty {
			return false
		}
	}
	return true
}

// minimalVictimSet plans the evictions that make pod fit node. Victims
// arrive sorted by (priority asc, name asc); the greedy pass takes them
// in that order until the pod fits, and the reprieve pass then walks the
// chosen set backwards — sparing the most important victims first — and
// drops everyone the fit can do without, yielding a minimal set biased
// toward the fewest, lowest-priority victims. The returned slice aliases
// victims' backing array.
func minimalVictimSet(pod *PodInfo, node *NodeView, victims []victimInfo) ([]victimInfo, bool) {
	// Deficits the evictions must cover, from the node's fused usage and
	// device accounting. Resources other than memory and EPC (e.g. CPU)
	// are never charged by the cache, so the static check already settled
	// them.
	var reqMem int64
	for _, pr := range pod.Pairs {
		if pr.Name == resource.Memory {
			reqMem = pr.Qty
		}
	}
	needMem := node.Used.Get(resource.Memory) + reqMem - node.Allocatable.Get(resource.Memory)
	needEPC := node.Used.Get(resource.EPCPages) + pod.EPCPages - node.Allocatable.Get(resource.EPCPages)
	needDev := pod.EPCPages - node.FreeDevices
	fits := func(freedMem, freedEPC, freedDev int64) bool {
		return freedMem >= needMem && freedEPC >= needEPC && freedDev >= needDev
	}
	if fits(0, 0, 0) {
		// Already fits with no victims: the caller only asks after the
		// filter pipeline failed, so this means a racing change — report
		// no preemption and let the next pass bind normally.
		return nil, false
	}

	var freedMem, freedEPC, freedDev int64
	chosen := 0
	for chosen < len(victims) && !fits(freedMem, freedEPC, freedDev) {
		v := victims[chosen]
		freedMem += v.memBytes
		freedEPC += v.epcPages
		freedDev += v.reqEPC
		chosen++
	}
	if !fits(freedMem, freedEPC, freedDev) {
		return nil, false
	}
	// Reprieve pass: drop victims the fit survives without, most
	// important (and latest-taken) first.
	set := victims[:chosen]
	for i := len(set) - 1; i >= 0; i-- {
		v := set[i]
		if fits(freedMem-v.memBytes, freedEPC-v.epcPages, freedDev-v.reqEPC) {
			freedMem -= v.memBytes
			freedEPC -= v.epcPages
			freedDev -= v.reqEPC
			set = append(set[:i], set[i+1:]...)
		}
	}
	return set, true
}

// betterVictimSet orders candidate victim sets across nodes: fewest
// displaced pods first (a gang unit counts its whole membership), then
// fewest units, then the lower priority vector compared from the most
// important victim down. Node-name order breaks full ties because nodes
// are visited sorted and only strict improvements replace the incumbent.
func betterVictimSet(a, b []victimInfo) bool {
	if ca, cb := victimCount(a), victimCount(b); ca != cb {
		return ca < cb
	}
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	// Both sets are sorted by priority ascending; compare from the top.
	for i := len(a) - 1; i >= 0; i-- {
		if a[i].priority != b[i].priority {
			return a[i].priority < b[i].priority
		}
	}
	return false
}
