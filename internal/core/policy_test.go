package core

import (
	"testing"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/resource"
)

func nv(name string, sgx bool, memCap, memUsed int64, epcCap, epcUsed int64) *NodeView {
	alloc := resource.List{resource.Memory: memCap}
	used := resource.List{resource.Memory: memUsed}
	free := int64(0)
	if sgx {
		alloc[resource.EPCPages] = epcCap
		used[resource.EPCPages] = epcUsed
		free = epcCap - epcUsed
	}
	return &NodeView{Name: name, SGX: sgx, Allocatable: alloc, Used: used, FreeDevices: free}
}

func stdPod(memReq int64) *api.Pod {
	return &api.Pod{
		Name: "std",
		Spec: api.PodSpec{Containers: []api.Container{{
			Resources: api.Requirements{Requests: resource.List{resource.Memory: memReq}},
		}}},
	}
}

func sgxPodReq(memReq, pages int64) *api.Pod {
	return &api.Pod{
		Name: "sgx",
		Spec: api.PodSpec{Containers: []api.Container{{
			Resources: api.Requirements{Requests: resource.List{
				resource.Memory:   memReq,
				resource.EPCPages: pages,
			}},
		}}},
	}
}

func TestBinpackFirstFitInNameOrder(t *testing.T) {
	a := nv("a-node", false, 100, 0, 0, 0)
	b := nv("b-node", false, 100, 0, 0, 0)
	view := &ClusterView{Nodes: []*NodeView{a, b}}
	got, ok := (Binpack{}).Select(stdPod(10), []*NodeView{a, b}, view)
	if !ok || got != "a-node" {
		t.Fatalf("Select = %q, %v; want a-node", got, ok)
	}
}

func TestBinpackSGXNodesLastForStandardJobs(t *testing.T) {
	// SGX node sorts before the standard node by name, but standard jobs
	// must preserve SGX resources (§IV).
	sgxNode := nv("a-sgx", true, 100, 0, 1000, 0)
	stdNode := nv("b-std", false, 100, 0, 0, 0)
	view := &ClusterView{Nodes: []*NodeView{sgxNode, stdNode}}
	got, ok := (Binpack{}).Select(stdPod(10), []*NodeView{sgxNode, stdNode}, view)
	if !ok || got != "b-std" {
		t.Fatalf("standard job placed on %q, want b-std", got)
	}
	// With only the SGX node feasible, the job may use it.
	got, ok = (Binpack{}).Select(stdPod(10), []*NodeView{sgxNode}, view)
	if !ok || got != "a-sgx" {
		t.Fatalf("fallback = %q, %v", got, ok)
	}
}

func TestBinpackSGXJobUsesSGXNodeOrder(t *testing.T) {
	s1 := nv("sgx-1", true, 100, 0, 1000, 500)
	s2 := nv("sgx-2", true, 100, 0, 1000, 0)
	view := &ClusterView{Nodes: []*NodeView{s1, s2}}
	got, ok := (Binpack{}).Select(sgxPodReq(1, 100), []*NodeView{s1, s2}, view)
	if !ok || got != "sgx-1" {
		t.Fatalf("Select = %q, want first node sgx-1 (binpack fills in order)", got)
	}
}

func TestBinpackNoCandidates(t *testing.T) {
	if _, ok := (Binpack{}).Select(stdPod(1), nil, &ClusterView{}); ok {
		t.Fatal("Select succeeded with no candidates")
	}
}

func TestSpreadMinimisesStdDev(t *testing.T) {
	// Memory loads: a=80%, b=20%. A standard job of 10% should go to b to
	// even out the load.
	a := nv("a", false, 1000, 800, 0, 0)
	b := nv("b", false, 1000, 200, 0, 0)
	view := &ClusterView{Nodes: []*NodeView{a, b}}
	got, ok := (Spread{}).Select(stdPod(100), []*NodeView{a, b}, view)
	if !ok || got != "b" {
		t.Fatalf("Spread chose %q, want b", got)
	}
}

func TestSpreadSGXJobBalancesEPC(t *testing.T) {
	std := nv("a-std", false, 1000, 0, 0, 0)
	s1 := nv("b-sgx", true, 1000, 0, 1000, 600)
	s2 := nv("c-sgx", true, 1000, 0, 1000, 100)
	view := &ClusterView{Nodes: []*NodeView{std, s1, s2}}
	got, ok := (Spread{}).Select(sgxPodReq(1, 100), []*NodeView{s1, s2}, view)
	if !ok || got != "c-sgx" {
		t.Fatalf("Spread chose %q, want c-sgx (lower EPC load)", got)
	}
}

func TestSpreadAvoidsSGXNodesForStandardJobs(t *testing.T) {
	// The SGX node is empty (stddev-optimal), but a standard node is
	// feasible, so the SGX node must be avoided (§IV).
	stdNode := nv("b-std", false, 1000, 500, 0, 0)
	sgxNode := nv("a-sgx", true, 1000, 0, 1000, 0)
	view := &ClusterView{Nodes: []*NodeView{stdNode, sgxNode}}
	got, ok := (Spread{}).Select(stdPod(100), []*NodeView{sgxNode, stdNode}, view)
	if !ok || got != "b-std" {
		t.Fatalf("Spread chose %q, want b-std", got)
	}
	// SGX-only candidates: allowed as last resort.
	got, ok = (Spread{}).Select(stdPod(100), []*NodeView{sgxNode}, view)
	if !ok || got != "a-sgx" {
		t.Fatalf("fallback = %q, %v", got, ok)
	}
}

func TestSpreadDeterministicTieBreak(t *testing.T) {
	a := nv("a", false, 1000, 0, 0, 0)
	b := nv("b", false, 1000, 0, 0, 0)
	view := &ClusterView{Nodes: []*NodeView{a, b}}
	for i := 0; i < 5; i++ {
		got, ok := (Spread{}).Select(stdPod(100), []*NodeView{a, b}, view)
		if !ok || got != "a" {
			t.Fatalf("tie-break not deterministic: %q", got)
		}
	}
}

func TestSpreadNoCandidates(t *testing.T) {
	if _, ok := (Spread{}).Select(stdPod(1), nil, &ClusterView{}); ok {
		t.Fatal("Select succeeded with no candidates")
	}
}

func TestLeastRequestedPicksEmptiestNode(t *testing.T) {
	a := nv("a", false, 1000, 900, 0, 0)
	b := nv("b", false, 1000, 100, 0, 0)
	view := &ClusterView{Nodes: []*NodeView{a, b}}
	got, ok := (LeastRequested{}).Select(stdPod(50), []*NodeView{a, b}, view)
	if !ok || got != "b" {
		t.Fatalf("LeastRequested chose %q, want b", got)
	}
}

func TestLeastRequestedIgnoresSGXPreference(t *testing.T) {
	// The baseline scheduler happily wastes an SGX node on a standard job
	// — this is exactly the behaviour the paper's scheduler fixes.
	sgxNode := nv("a-sgx", true, 1000, 0, 1000, 0)
	stdNode := nv("b-std", false, 1000, 500, 0, 0)
	view := &ClusterView{Nodes: []*NodeView{sgxNode, stdNode}}
	got, ok := (LeastRequested{}).Select(stdPod(10), []*NodeView{sgxNode, stdNode}, view)
	if !ok || got != "a-sgx" {
		t.Fatalf("baseline chose %q, want a-sgx (emptier)", got)
	}
}

func TestPolicyNames(t *testing.T) {
	if (Binpack{}).Name() != "binpack" || (Spread{}).Name() != "spread" ||
		(LeastRequested{}).Name() != "least-requested" {
		t.Fatal("policy names wrong")
	}
}
