package core

import (
	"math"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/resource"
)

// This file implements the scheduler's plugin framework: a Kubernetes-style
// pipeline of filter plugins (hard feasibility, §IV's hardware and
// saturation checks), pre-score plugins (candidate-narrowing preferences,
// §IV's "only resort to SGX-enabled nodes ... when no other choice is
// possible") and weighted score plugins (placement quality). The paper's
// fixed binpack/spread strategies are expressed as profiles over these
// plugins, so new placement behaviours (usage-headroom, EPC-pressure,
// priority tiers) compose without touching the scheduling pass.

// PodInfo carries one pending pod together with its request data,
// extracted once per pod per pass so the per-(pod, node) plugin calls walk
// slices and scalars instead of re-iterating the request map.
type PodInfo struct {
	Pod *api.Pod
	// Pairs are the pod's positive resource requests.
	Pairs []ReqPair
	// EPCPages is the requested EPC page count among Pairs (0 if none).
	EPCPages int64
	// SGX reports whether the pod requests EPC (EPCPages > 0).
	SGX bool
	// Priority is the pod's scheduling priority (Spec.Priority).
	Priority int32
}

// ReqPair is one requested (resource, quantity), extracted from the
// request map once per pod.
type ReqPair struct {
	Name resource.Name
	Qty  int64
}

// NewPodInfo extracts a pod's request data. The scheduler reuses a pairs
// buffer across pods via fillPodInfo; pass nil when convenience beats
// allocation.
func NewPodInfo(pod *api.Pod, buf []ReqPair) *PodInfo {
	info := &PodInfo{}
	fillPodInfo(info, pod, pod.TotalRequests(), buf)
	return info
}

// fillPodInfo populates info in place from a pre-summed request list,
// reusing buf for the pairs.
func fillPodInfo(info *PodInfo, pod *api.Pod, req resource.List, buf []ReqPair) {
	*info = PodInfo{Pod: pod, Pairs: buf[:0], Priority: pod.Spec.Priority}
	for k, q := range req {
		if q <= 0 {
			continue
		}
		info.Pairs = append(info.Pairs, ReqPair{Name: k, Qty: q})
		if k == resource.EPCPages {
			info.EPCPages = q
		}
	}
	info.SGX = info.EPCPages > 0
}

// Sampled-scoring defaults (see Config.PercentageNodesToScore).
const (
	// DefaultMinFeasibleNodesToFind floors the adaptive sample size: no
	// matter how small the percentage, a search keeps going until it has
	// this many feasible candidates (or runs out of nodes) — kube-
	// scheduler's minFeasibleNodesToFind.
	DefaultMinFeasibleNodesToFind = 100
	// samplingMinClusterSize: clusters at or below this size always score
	// every node, so sampling never changes behaviour for the paper-scale
	// testbeds (§VI runs tens of nodes).
	samplingMinClusterSize = 100
)

// numFeasibleNodesToFind returns how many feasible candidates one pod's
// search should stop after, given the configured percentage (0 =
// adaptive, >=100 = all) and the cluster size. The adaptive default
// mirrors kube-scheduler's percentageOfNodesToScore: 50% shrinking
// linearly with cluster size down to a 5% floor, full scan at or below
// samplingMinClusterSize nodes.
func numFeasibleNodesToFind(pct, minFeasible, numNodes int) int {
	if minFeasible <= 0 {
		minFeasible = DefaultMinFeasibleNodesToFind
	}
	if pct <= 0 {
		if numNodes <= samplingMinClusterSize {
			return numNodes
		}
		pct = 50 - numNodes/125
		if pct < 5 {
			pct = 5
		}
	}
	if pct >= 100 {
		return numNodes
	}
	k := numNodes * pct / 100
	if k < minFeasible {
		k = minFeasible
	}
	if k > numNodes {
		k = numNodes
	}
	return k
}

// PreFilterPlugin runs once per pod per pass, before any per-node work.
// Returning false rejects the pass for this pod early — the pod stays
// queued and is retried later — which is how gang scheduling skips a
// member whose co-members cannot possibly fit this pass instead of
// taking a permit that would only be rolled back. PreFilter may mutate
// the PodInfo (e.g. a starvation-prevention priority boost); the
// mutation is scoped to this pass, never written back to the pod.
type PreFilterPlugin interface {
	Name() string
	PreFilter(pod *PodInfo, view *ClusterView) bool
}

// PermitDecision is a PermitPlugin's verdict on a selected placement.
type PermitDecision int

const (
	// PermitAllow binds the pod immediately (the default for every pod
	// when no permit plugin objects).
	PermitAllow PermitDecision = iota
	// PermitWait converts the bind into a conditional reservation
	// (apiserver.Reserve): capacity commits on the node but the pod
	// waits in the permit area until its gang reaches quorum
	// (CommitGroup) or times out (ReleaseGroup).
	PermitWait
	// PermitDeny refuses the placement outright; the pod stays queued.
	PermitDeny
)

// PermitPlugin runs after a node has been selected and decides how the
// placement commits. The first non-Allow decision wins. Plugins that
// also implement ReserveObserver are notified after a PermitWait
// reservation actually commits on the API server — the hook the gang
// director uses to count permits toward quorum.
type PermitPlugin interface {
	Name() string
	Permit(pod *PodInfo, nodeName string) PermitDecision
}

// ReserveObserver is an optional PermitPlugin extension: OnReserved is
// called (outside any scheduler lock) after the pod's reservation
// committed on the API server. The observer may call back into the
// server (e.g. CommitGroup when quorum is reached).
type ReserveObserver interface {
	OnReserved(pod *PodInfo, nodeName string)
}

// FilterPlugin decides hard feasibility of one (pod, node) combination.
// Filters run for every candidate node each pass, so implementations must
// not allocate.
type FilterPlugin interface {
	Name() string
	Filter(pod *PodInfo, node *NodeView) bool
}

// PreScorePlugin narrows the feasible candidates by preference before
// scoring. Returning nil means "no preference": the caller keeps the
// full candidate list. Returning a non-nil slice — including a non-nil
// empty one — replaces the candidates, so an empty non-nil result
// declines every candidate and the profile reports the pod unplaceable.
type PreScorePlugin interface {
	Name() string
	PreScore(pod *PodInfo, candidates []*NodeView) []*NodeView
}

// ScorePlugin rates one feasible candidate; higher is better. The node
// with the greatest weighted score sum wins, ties broken by candidate
// order (nodes arrive sorted by name, §IV's consistent order).
type ScorePlugin interface {
	Name() string
	Score(pod *PodInfo, node *NodeView, view *ClusterView) float64
}

// WeightedScore attaches a weight to a score plugin; the node score is the
// weight-scaled sum across plugins.
type WeightedScore struct {
	Plugin ScorePlugin
	Weight float64
}

// Profile is one assembled scheduling pipeline. A Profile is itself a
// Policy, so profiles plug into Config.Policy directly; the built-in
// Binpack/Spread/LeastRequested values are thin wrappers over canned
// profiles.
type Profile struct {
	name       string
	preFilters []PreFilterPlugin
	filters    []FilterPlugin
	preScore   []PreScorePlugin
	scores     []WeightedScore
	permits    []PermitPlugin
	// minScore rejects candidates scoring at or below it (LeastRequested's
	// historical "-1.0 or worse declines" contract); defaults to -Inf.
	minScore float64
	// legacy, when set, replaces the pre-score/score stages with a plain
	// Policy's Select — the adapter for policies predating the framework.
	// Profiles are not safe for concurrent Select calls — each Scheduler
	// owns its own pipeline, matching the one-pass-at-a-time passMu
	// contract (pre-score plugins reuse narrowing buffers).
	legacy Policy
}

// ProfileOpt configures a Profile.
type ProfileOpt func(*Profile)

// WithFilters appends extra filter plugins after the default §IV
// feasibility set (SGX capability, EPC device fit, resource saturation).
func WithFilters(filters ...FilterPlugin) ProfileOpt {
	return func(p *Profile) { p.filters = append(p.filters, filters...) }
}

// WithPreFilters appends per-pod early-reject plugins (run once per pod
// per pass, before any per-node work).
func WithPreFilters(plugins ...PreFilterPlugin) ProfileOpt {
	return func(p *Profile) { p.preFilters = append(p.preFilters, plugins...) }
}

// WithPermits appends permit plugins (run after node selection, deciding
// whether the placement binds immediately, waits, or is denied).
func WithPermits(plugins ...PermitPlugin) ProfileOpt {
	return func(p *Profile) { p.permits = append(p.permits, plugins...) }
}

// WithPreScore appends candidate-narrowing preference plugins.
func WithPreScore(plugins ...PreScorePlugin) ProfileOpt {
	return func(p *Profile) { p.preScore = append(p.preScore, plugins...) }
}

// WithScores appends weighted score plugins.
func WithScores(scores ...WeightedScore) ProfileOpt {
	return func(p *Profile) { p.scores = append(p.scores, scores...) }
}

// WithMinScore rejects candidates whose weighted score sum is at or below
// min.
func WithMinScore(min float64) ProfileOpt {
	return func(p *Profile) { p.minScore = min }
}

// NewProfile assembles a pipeline. Every profile starts from the default
// §IV feasibility filter; options append preferences and scores.
func NewProfile(name string, opts ...ProfileOpt) *Profile {
	p := &Profile{
		name:     name,
		filters:  []FilterPlugin{DefaultFeasibility{}},
		minScore: math.Inf(-1),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements Policy.
func (p *Profile) Name() string { return p.name }

// clone returns a shallow copy with its own plugin slices, so appending
// plugins to the copy never leaks into the original (profileFor passes
// caller-owned *Profile values through unchanged, and the built-in
// policies share pooled instances).
func (p *Profile) clone() *Profile {
	c := *p
	c.preFilters = append([]PreFilterPlugin(nil), p.preFilters...)
	c.filters = append([]FilterPlugin(nil), p.filters...)
	c.preScore = append([]PreScorePlugin(nil), p.preScore...)
	c.scores = append([]WeightedScore(nil), p.scores...)
	c.permits = append([]PermitPlugin(nil), p.permits...)
	return &c
}

// runPreFilter runs the pre-filter stage; false rejects the pod's pass.
func (p *Profile) runPreFilter(pod *PodInfo, view *ClusterView) bool {
	for _, pf := range p.preFilters {
		if !pf.PreFilter(pod, view) {
			return false
		}
	}
	return true
}

// runPermit runs the permit stage for a selected placement; the first
// non-Allow decision wins.
func (p *Profile) runPermit(pod *PodInfo, nodeName string) PermitDecision {
	for _, pp := range p.permits {
		if d := pp.Permit(pod, nodeName); d != PermitAllow {
			return d
		}
	}
	return PermitAllow
}

// notifyReserved tells permit plugins implementing ReserveObserver that
// the pod's reservation committed. Called outside server and scheduler
// locks, so observers may call back into the API server.
func (p *Profile) notifyReserved(pod *PodInfo, nodeName string) {
	for _, pp := range p.permits {
		if obs, ok := pp.(ReserveObserver); ok {
			obs.OnReserved(pod, nodeName)
		}
	}
}

// Feasible runs the filter pipeline for one (pod, node) combination.
func (p *Profile) Feasible(pod *PodInfo, node *NodeView) bool {
	for _, f := range p.filters {
		if !f.Filter(pod, node) {
			return false
		}
	}
	return true
}

// Select implements Policy over the framework pipeline: narrow by
// preference, score, and pick the first candidate with the strictly
// greatest weighted score above the profile's minimum. Candidates arrive
// pre-filtered and sorted by node name.
func (p *Profile) Select(pod *api.Pod, candidates []*NodeView, view *ClusterView) (string, bool) {
	return p.selectInfo(NewPodInfo(pod, nil), candidates, view)
}

// selectInfo is Select for callers that already extracted the PodInfo.
func (p *Profile) selectInfo(pod *PodInfo, candidates []*NodeView, view *ClusterView) (string, bool) {
	if p.legacy != nil {
		return p.legacy.Select(pod.Pod, candidates, view)
	}
	for _, ps := range p.preScore {
		// nil = no preference; non-nil (even empty) replaces the list.
		if narrowed := ps.PreScore(pod, candidates); narrowed != nil {
			candidates = narrowed
		}
	}
	if len(candidates) == 0 {
		return "", false
	}
	best := ""
	bestScore := p.minScore
	for _, cand := range candidates {
		score := 0.0
		for _, ws := range p.scores {
			score += ws.Weight * ws.Plugin.Score(pod, cand, view)
		}
		if score > bestScore {
			best = cand.Name
			bestScore = score
		}
	}
	if best == "" {
		return "", false
	}
	return best, true
}

// --- Filter plugins (the §IV feasibility checks) ---

// DefaultFeasibility bundles the three §IV feasibility checks — SGX
// capability, EPC device fit, resource saturation — in one plugin. It is
// behaviourally identical to chaining SGXCapabilityFilter, EPCFitFilter
// and ResourceFitFilter, but costs one dynamic dispatch per (pod, node)
// instead of three: the feasibility stage runs for every combination
// every pass, and the fused form keeps the pass within its perf budget.
type DefaultFeasibility struct{}

// Name implements FilterPlugin.
func (DefaultFeasibility) Name() string { return "default-feasibility" }

// Filter implements FilterPlugin.
func (DefaultFeasibility) Filter(pod *PodInfo, node *NodeView) bool {
	if pod.EPCPages > 0 {
		if !node.SGX || pod.EPCPages > node.FreeDevices {
			return false
		}
	}
	for _, pr := range pod.Pairs {
		if node.Allocatable.Get(pr.Name)-node.Used.Get(pr.Name) < pr.Qty {
			return false
		}
	}
	return true
}

// SGXCapabilityFilter rejects SGX pods on nodes without EPC resources —
// the hardware-compatibility dimension of the §IV filter.
type SGXCapabilityFilter struct{}

// Name implements FilterPlugin.
func (SGXCapabilityFilter) Name() string { return "sgx-capability" }

// Filter implements FilterPlugin.
func (SGXCapabilityFilter) Filter(pod *PodInfo, node *NodeView) bool {
	return !pod.SGX || node.SGX
}

// EPCFitFilter enforces the strict EPC page-item bound: the device plugin
// admits by request accounting, so the scheduler must never over-commit
// EPC items (§V-A).
type EPCFitFilter struct{}

// Name implements FilterPlugin.
func (EPCFitFilter) Name() string { return "epc-fit" }

// Filter implements FilterPlugin.
func (EPCFitFilter) Filter(pod *PodInfo, node *NodeView) bool {
	return pod.EPCPages <= 0 || pod.EPCPages <= node.FreeDevices
}

// ResourceFitFilter is the §IV saturation check: every requested quantity
// must fit the node's usage-based headroom.
type ResourceFitFilter struct{}

// Name implements FilterPlugin.
func (ResourceFitFilter) Name() string { return "resource-fit" }

// Filter implements FilterPlugin.
func (ResourceFitFilter) Filter(pod *PodInfo, node *NodeView) bool {
	for _, pr := range pod.Pairs {
		if node.Allocatable.Get(pr.Name)-node.Used.Get(pr.Name) < pr.Qty {
			return false
		}
	}
	return true
}

// --- Pre-score plugins ---

// SGXLastPreScore restricts standard pods to non-SGX candidates when any
// exist: both paper policies "only resort to SGX-enabled nodes for non-SGX
// jobs when no other choice is possible" (§IV).
type SGXLastPreScore struct {
	// buf is narrowing scratch reused across calls — the reason a
	// Profile holding this plugin is not safe for concurrent Select
	// calls (each Scheduler owns its own pipeline; direct Policy.Select
	// callers go through the pools in policy.go).
	buf []*NodeView
}

// Name implements PreScorePlugin.
func (*SGXLastPreScore) Name() string { return "sgx-last" }

// PreScore implements PreScorePlugin. This is a preference, not a hard
// rule: with no non-SGX candidate it reports no preference (nil) and the
// pod may use SGX hardware as the last resort.
func (s *SGXLastPreScore) PreScore(pod *PodInfo, candidates []*NodeView) []*NodeView {
	if pod.SGX {
		return nil
	}
	nonSGX := s.buf[:0]
	for _, c := range candidates {
		if !c.SGX {
			nonSGX = append(nonSGX, c)
		}
	}
	s.buf = nonSGX
	if len(nonSGX) == 0 {
		return nil
	}
	return nonSGX
}

// MemoryCapacityPreScore drops candidates without memory capacity — the
// request-only baseline cannot rank a node it cannot compute a memory
// fraction for.
type MemoryCapacityPreScore struct {
	buf []*NodeView
}

// Name implements PreScorePlugin.
func (*MemoryCapacityPreScore) Name() string { return "memory-capacity" }

// PreScore implements PreScorePlugin. Unlike SGXLastPreScore this narrows
// unconditionally: with no memory-capable candidate the empty result makes
// the profile decline, preserving LeastRequested's historical contract.
func (m *MemoryCapacityPreScore) PreScore(pod *PodInfo, candidates []*NodeView) []*NodeView {
	capable := m.buf[:0]
	for _, c := range candidates {
		if c.Allocatable.Get(resource.Memory) > 0 {
			capable = append(capable, c)
		}
	}
	m.buf = capable
	if len(capable) == len(candidates) {
		return candidates
	}
	if len(capable) == 0 {
		// An explicit decline: a non-nil empty slice (the reused buffer
		// may still be nil on the first call) so the profile does not
		// mistake it for "no preference".
		return []*NodeView{}
	}
	return capable
}

// --- Score plugins ---

// BinpackScore reproduces the §IV binpack strategy as a score: all nodes
// tie, so the first candidate in the consistent by-name order wins —
// "the scheduler always tries to fit as many jobs as possible on the same
// node". Standard pods are steered off SGX hardware by SGXLastPreScore,
// not here.
type BinpackScore struct{}

// Name implements ScorePlugin.
func (BinpackScore) Name() string { return "binpack" }

// Score implements ScorePlugin.
func (BinpackScore) Score(*PodInfo, *NodeView, *ClusterView) float64 { return 0 }

// SpreadScore reproduces the §IV spread strategy: the hypothetical
// placement minimising the population standard deviation of load on the
// pod's contended resource scores highest (score is the negated stddev).
type SpreadScore struct{}

// Name implements ScorePlugin.
func (SpreadScore) Name() string { return "spread" }

// Score implements ScorePlugin.
func (SpreadScore) Score(pod *PodInfo, node *NodeView, view *ClusterView) float64 {
	res := resource.Memory
	if pod.SGX {
		res = resource.EPCPages
	}
	var req int64
	for _, pr := range pod.Pairs {
		if pr.Name == res {
			req = pr.Qty
		}
	}
	return -hypotheticalStdDev(view, node.Name, res, req)
}

// LeastRequestedScore mirrors the request-only scoring of Kubernetes'
// default scheduler: the free memory fraction after placement.
type LeastRequestedScore struct{}

// Name implements ScorePlugin.
func (LeastRequestedScore) Name() string { return "least-requested" }

// Score implements ScorePlugin.
func (LeastRequestedScore) Score(pod *PodInfo, node *NodeView, _ *ClusterView) float64 {
	capMem := node.Allocatable.Get(resource.Memory)
	if capMem <= 0 {
		return math.Inf(-1)
	}
	var req int64
	for _, pr := range pod.Pairs {
		if pr.Name == resource.Memory {
			req = pr.Qty
		}
	}
	free := capMem - node.Used.Get(resource.Memory) - req
	return float64(free) / float64(capMem)
}

// UsageHeadroomScore rewards nodes with the most measured headroom on the
// pod's contended resource. Used is the fused window-peak usage from
// monitor.WindowMax, so this plugin makes the scheduler chase actual free
// capacity rather than request accounting — the HEATS-style
// heterogeneity-aware axis.
type UsageHeadroomScore struct{}

// Name implements ScorePlugin.
func (UsageHeadroomScore) Name() string { return "usage-headroom" }

// Score implements ScorePlugin.
func (UsageHeadroomScore) Score(pod *PodInfo, node *NodeView, _ *ClusterView) float64 {
	res := resource.Memory
	if pod.SGX {
		res = resource.EPCPages
	}
	alloc := node.Allocatable.Get(res)
	if alloc <= 0 {
		return 0
	}
	var req int64
	for _, pr := range pod.Pairs {
		if pr.Name == res {
			req = pr.Qty
		}
	}
	free := alloc - node.Used.Get(res) - req
	if free < 0 {
		free = 0
	}
	return float64(free) / float64(alloc)
}

// EPCPressureScore penalises placements on nodes whose scarce EPC is
// already under measured pressure: standard pods score 0 everywhere (they
// never touch EPC), SGX pods score the negated EPC load fraction. Pairing
// it with UsageHeadroomScore keeps EPC hogs from concentrating.
type EPCPressureScore struct{}

// Name implements ScorePlugin.
func (EPCPressureScore) Name() string { return "epc-pressure" }

// Score implements ScorePlugin.
func (EPCPressureScore) Score(pod *PodInfo, node *NodeView, _ *ClusterView) float64 {
	if !pod.SGX || !node.SGX {
		return 0
	}
	alloc := node.Allocatable.Get(resource.EPCPages)
	if alloc <= 0 {
		return 0
	}
	return -float64(node.Used.Get(resource.EPCPages)) / float64(alloc)
}
