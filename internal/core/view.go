// Package core implements the paper's primary contribution: the SGX-aware
// scheduler (§IV, §V-B). It periodically drains the API server's
// priority-then-FCFS pending queue, fuses static resource requests with
// live usage metrics pulled from the time-series database (the
// sliding-window queries of Listing 1), and runs each pod through a
// plugin pipeline (framework.go): filter plugins for hardware
// compatibility and saturation, pre-score plugins for the SGX-last
// preference, and weighted score plugins for placement quality. The
// supported policies — binpack, spread, and the request-only baseline
// mirroring Kubernetes' default scheduler — are profiles over those
// plugins, bit-identical to their original fixed implementations. When a
// pod finds no feasible node, the scheduler may preempt strictly
// lower-priority pods (preemption.go): minimal victim sets, deterministic
// tie-breaks, victims re-queued rather than failed.
package core

import (
	"sort"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/resource"
)

// NodeView is the scheduler's working snapshot of one node during a pass.
type NodeView struct {
	Name string
	// SGX reports whether the node advertises EPC page resources — the
	// hardware-compatibility dimension of the §IV filter.
	SGX         bool
	Allocatable resource.List
	// Used is the effective usage estimate: measured usage fused with
	// requests of freshly placed pods whose allocations are not yet
	// visible in the 25 s metric window.
	Used resource.List
	// FreeDevices is the strict EPC page-item headroom by request
	// accounting; the device plugin enforces this bound at admission, so
	// the scheduler must never exceed it (§V-A: no EPC over-commitment).
	FreeDevices int64

	// Index locator fields, maintained by nodeIndex (index.go) for nodes
	// held in an incremental view; zero and meaningless in the plain
	// allocating snapshots produced by BuildView and Snapshot.
	idxPart   int8
	memBucket int8
	epcBucket int8
	memPos    int32
	epcPos    int32
}

// Free returns the usage-based headroom (floored at zero per resource).
func (v *NodeView) Free() resource.List {
	free := v.Allocatable.Sub(v.Used)
	for k, q := range free {
		if q < 0 {
			free[k] = 0
		}
	}
	return free
}

// Fits reports whether a pod with the given requests passes the §IV
// filter on this node: hardware compatibility (EPC on non-SGX nodes can
// never fit), device-item availability, and the saturation check against
// the usage-based headroom. It runs once per (pod, node) pair per pass,
// so it checks headroom directly instead of materialising Free().
func (v *NodeView) Fits(req resource.List) bool {
	if pages := req.Get(resource.EPCPages); pages > 0 {
		if !v.SGX || pages > v.FreeDevices {
			return false
		}
	}
	for k, q := range req {
		if q <= 0 {
			continue
		}
		if v.Allocatable.Get(k)-v.Used.Get(k) < q {
			return false
		}
	}
	return true
}

// LoadFraction returns this node's utilisation of the given resource in
// [0, 1+]; nodes without the resource report 1 when asked about usage of
// something they cannot hold (they are excluded from spread's stddev by
// the caller instead).
func (v *NodeView) LoadFraction(name resource.Name) float64 {
	return v.Used.FractionOf(name, v.Allocatable)
}

// ClusterView is the scheduler's snapshot of all schedulable nodes for one
// pass. Nodes are kept sorted by name: "the order of the nodes stays
// consistent by always sorting them in the same way" (§IV).
//
// Two flavours exist. Plain views (BuildView, ClusterCache.Snapshot) are
// freshly allocated each time and carry only Nodes. Incremental views
// (newIndexedView, kept current via ClusterCache.SyncView) additionally
// maintain a name map, the candidate index of index.go, and a pool of
// retired NodeViews so that bringing the view up to date after a pass is
// O(changed nodes) instead of O(cluster). Incremental views are owned by
// one scheduler and must only be mutated through Commit and SyncView.
type ClusterView struct {
	Nodes []*NodeView

	// Incremental-view state; all nil/zero in plain views.
	byName     map[string]*NodeView
	idx        *nodeIndex
	epoch      uint64
	syncedTo   int64
	freeNodes  []*NodeView
	seqScratch [][]*NodeView
}

// newIndexedView returns an empty incremental view; ClusterCache.SyncView
// populates it.
func newIndexedView() *ClusterView {
	return &ClusterView{byName: make(map[string]*NodeView), idx: &nodeIndex{}}
}

// indexed reports whether this view maintains the candidate index.
func (c *ClusterView) indexed() bool { return c.idx != nil }

// Node returns the view of the named node, or nil.
func (c *ClusterView) Node(name string) *NodeView {
	if c.byName != nil {
		return c.byName[name]
	}
	for _, n := range c.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Commit records a placement decided in this pass so later decisions in
// the same pass see the node's reduced headroom. Used is mutated in
// place; views built by BuildView always carry a writable map. On an
// incremental view the node is also re-bucketed so candidate generation
// sees the reduced headroom immediately.
func (c *ClusterView) Commit(nodeName string, req resource.List) {
	n := c.Node(nodeName)
	if n == nil {
		return
	}
	n.Used.AddInPlace(req)
	n.FreeDevices -= req.Get(resource.EPCPages)
	if c.idx != nil {
		c.idx.rebucket(n)
	}
}

// sortNodes normalises node order.
func (c *ClusterView) sortNodes() {
	sort.Slice(c.Nodes, func(i, j int) bool { return c.Nodes[i].Name < c.Nodes[j].Name })
}

// takeNodeView returns a NodeView for the named node, recycling a retired
// one (and its maps) when available.
func (c *ClusterView) takeNodeView(name string) *NodeView {
	if k := len(c.freeNodes); k > 0 {
		n := c.freeNodes[k-1]
		c.freeNodes[k-1] = nil
		c.freeNodes = c.freeNodes[:k-1]
		n.Name = name
		return n
	}
	return &NodeView{
		Name:        name,
		Allocatable: make(resource.List, 4),
		Used:        make(resource.List, 2),
	}
}

// fillNode overwrites a NodeView's scheduling state in place, reusing its
// maps. It does not touch the index; callers re-bucket or insert.
func (c *ClusterView) fillNode(n *NodeView, sgx bool, alloc resource.List, memUsed, epcUsed, freeDev int64) {
	n.SGX = sgx
	clear(n.Allocatable)
	for k, q := range alloc {
		n.Allocatable[k] = q
	}
	clear(n.Used)
	n.Used[resource.Memory] = memUsed
	n.Used[resource.EPCPages] = epcUsed
	n.FreeDevices = freeDev
}

// setNode reconciles one node into an incremental view: inserts it (kept
// name-sorted) if absent, otherwise updates it in place and re-buckets.
func (c *ClusterView) setNode(name string, sgx bool, alloc resource.List, memUsed, epcUsed, freeDev int64) {
	if n := c.byName[name]; n != nil {
		if n.SGX != sgx {
			// Partition flip: reinsert under the other hardware class.
			c.idx.remove(n)
			c.fillNode(n, sgx, alloc, memUsed, epcUsed, freeDev)
			c.idx.insert(n)
			return
		}
		c.fillNode(n, sgx, alloc, memUsed, epcUsed, freeDev)
		c.idx.rebucket(n)
		return
	}
	n := c.takeNodeView(name)
	c.fillNode(n, sgx, alloc, memUsed, epcUsed, freeDev)
	i := sort.Search(len(c.Nodes), func(i int) bool { return c.Nodes[i].Name >= name })
	c.Nodes = append(c.Nodes, nil)
	copy(c.Nodes[i+1:], c.Nodes[i:])
	c.Nodes[i] = n
	c.byName[name] = n
	c.idx.insert(n)
}

// dropNode removes a node from an incremental view and retires its
// NodeView to the pool.
func (c *ClusterView) dropNode(name string) {
	n := c.byName[name]
	if n == nil {
		return
	}
	delete(c.byName, name)
	c.idx.remove(n)
	i := sort.Search(len(c.Nodes), func(i int) bool { return c.Nodes[i].Name >= name })
	c.Nodes = append(c.Nodes[:i], c.Nodes[i+1:]...)
	c.freeNodes = append(c.freeNodes, n)
}

// recycleAll retires every node to the pool and empties the index,
// preparing the view for a full rebuild.
func (c *ClusterView) recycleAll() {
	c.freeNodes = append(c.freeNodes, c.Nodes...)
	for i := range c.Nodes {
		c.Nodes[i] = nil
	}
	c.Nodes = c.Nodes[:0]
	clear(c.byName)
	c.idx.reset()
}

// podUsage is the per-pod fusion of measured usage and declared requests.
//
// The paper's scheduler decides "based on actual measured memory usage
// (for the EPC as well as regular memory)" (§V-B). Freshly bound or
// freshly started pods have not yet been sampled by the 10 s probes, so
// for pods younger than the metric lag the scheduler takes the maximum of
// the measurement and the request; mature pods are charged their measured
// usage only — which is how a usage-aware scheduler reclaims headroom from
// over-declaring jobs and detects under-declaring (malicious) ones.
// podUsage returns scalars rather than a resource.List: it runs once per
// active pod per pass, and the caller folds the result straight into the
// node's usage accumulators.
func podUsage(p *api.Pod, req resource.List, measuredMem, measuredEPCBytes float64, now time.Time, lag time.Duration, useMetrics bool) (memBytes, epcPages int64) {
	return fuseUsage(req.Get(resource.Memory), req.Get(resource.EPCPages),
		measuredMem, measuredEPCBytes, p.Status.StartedAt, now, lag, useMetrics)
}

// fuseUsage is the scalar core of podUsage, shared with the event-driven
// ClusterCache so both paths apply bit-identical fusion — the equivalence
// property the cache is tested against depends on it.
func fuseUsage(reqMem, reqEPC int64, measuredMem, measuredEPCBytes float64, startedAt, now time.Time, lag time.Duration, useMetrics bool) (memBytes, epcPages int64) {
	if !useMetrics {
		return reqMem, reqEPC
	}
	memBytes = int64(measuredMem)
	epcPages = resource.PagesForBytes(int64(measuredEPCBytes))
	young := startedAt.IsZero() || now.Sub(startedAt) < lag
	if young {
		if reqMem > memBytes {
			memBytes = reqMem
		}
		if reqEPC > epcPages {
			epcPages = reqEPC
		}
	}
	return memBytes, epcPages
}
