// Package core implements the paper's primary contribution: the SGX-aware
// scheduler (§IV, §V-B). It periodically drains the API server's
// priority-then-FCFS pending queue, fuses static resource requests with
// live usage metrics pulled from the time-series database (the
// sliding-window queries of Listing 1), and runs each pod through a
// plugin pipeline (framework.go): filter plugins for hardware
// compatibility and saturation, pre-score plugins for the SGX-last
// preference, and weighted score plugins for placement quality. The
// supported policies — binpack, spread, and the request-only baseline
// mirroring Kubernetes' default scheduler — are profiles over those
// plugins, bit-identical to their original fixed implementations. When a
// pod finds no feasible node, the scheduler may preempt strictly
// lower-priority pods (preemption.go): minimal victim sets, deterministic
// tie-breaks, victims re-queued rather than failed.
package core

import (
	"sort"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/resource"
)

// NodeView is the scheduler's working snapshot of one node during a pass.
type NodeView struct {
	Name string
	// SGX reports whether the node advertises EPC page resources — the
	// hardware-compatibility dimension of the §IV filter.
	SGX         bool
	Allocatable resource.List
	// Used is the effective usage estimate: measured usage fused with
	// requests of freshly placed pods whose allocations are not yet
	// visible in the 25 s metric window.
	Used resource.List
	// FreeDevices is the strict EPC page-item headroom by request
	// accounting; the device plugin enforces this bound at admission, so
	// the scheduler must never exceed it (§V-A: no EPC over-commitment).
	FreeDevices int64
}

// Free returns the usage-based headroom (floored at zero per resource).
func (v *NodeView) Free() resource.List {
	free := v.Allocatable.Sub(v.Used)
	for k, q := range free {
		if q < 0 {
			free[k] = 0
		}
	}
	return free
}

// Fits reports whether a pod with the given requests passes the §IV
// filter on this node: hardware compatibility (EPC on non-SGX nodes can
// never fit), device-item availability, and the saturation check against
// the usage-based headroom. It runs once per (pod, node) pair per pass,
// so it checks headroom directly instead of materialising Free().
func (v *NodeView) Fits(req resource.List) bool {
	if pages := req.Get(resource.EPCPages); pages > 0 {
		if !v.SGX || pages > v.FreeDevices {
			return false
		}
	}
	for k, q := range req {
		if q <= 0 {
			continue
		}
		if v.Allocatable.Get(k)-v.Used.Get(k) < q {
			return false
		}
	}
	return true
}

// LoadFraction returns this node's utilisation of the given resource in
// [0, 1+]; nodes without the resource report 1 when asked about usage of
// something they cannot hold (they are excluded from spread's stddev by
// the caller instead).
func (v *NodeView) LoadFraction(name resource.Name) float64 {
	return v.Used.FractionOf(name, v.Allocatable)
}

// ClusterView is the scheduler's snapshot of all schedulable nodes for one
// pass. Nodes are kept sorted by name: "the order of the nodes stays
// consistent by always sorting them in the same way" (§IV).
type ClusterView struct {
	Nodes []*NodeView
}

// Node returns the view of the named node, or nil.
func (c *ClusterView) Node(name string) *NodeView {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Commit records a placement decided in this pass so later decisions in
// the same pass see the node's reduced headroom. Used is mutated in
// place; views built by BuildView always carry a writable map.
func (c *ClusterView) Commit(nodeName string, req resource.List) {
	n := c.Node(nodeName)
	if n == nil {
		return
	}
	n.Used.AddInPlace(req)
	n.FreeDevices -= req.Get(resource.EPCPages)
}

// sortNodes normalises node order.
func (c *ClusterView) sortNodes() {
	sort.Slice(c.Nodes, func(i, j int) bool { return c.Nodes[i].Name < c.Nodes[j].Name })
}

// podUsage is the per-pod fusion of measured usage and declared requests.
//
// The paper's scheduler decides "based on actual measured memory usage
// (for the EPC as well as regular memory)" (§V-B). Freshly bound or
// freshly started pods have not yet been sampled by the 10 s probes, so
// for pods younger than the metric lag the scheduler takes the maximum of
// the measurement and the request; mature pods are charged their measured
// usage only — which is how a usage-aware scheduler reclaims headroom from
// over-declaring jobs and detects under-declaring (malicious) ones.
// podUsage returns scalars rather than a resource.List: it runs once per
// active pod per pass, and the caller folds the result straight into the
// node's usage accumulators.
func podUsage(p *api.Pod, req resource.List, measuredMem, measuredEPCBytes float64, now time.Time, lag time.Duration, useMetrics bool) (memBytes, epcPages int64) {
	return fuseUsage(req.Get(resource.Memory), req.Get(resource.EPCPages),
		measuredMem, measuredEPCBytes, p.Status.StartedAt, now, lag, useMetrics)
}

// fuseUsage is the scalar core of podUsage, shared with the event-driven
// ClusterCache so both paths apply bit-identical fusion — the equivalence
// property the cache is tested against depends on it.
func fuseUsage(reqMem, reqEPC int64, measuredMem, measuredEPCBytes float64, startedAt, now time.Time, lag time.Duration, useMetrics bool) (memBytes, epcPages int64) {
	if !useMetrics {
		return reqMem, reqEPC
	}
	memBytes = int64(measuredMem)
	epcPages = resource.PagesForBytes(int64(measuredEPCBytes))
	young := startedAt.IsZero() || now.Sub(startedAt) < lag
	if young {
		if reqMem > memBytes {
			memBytes = reqMem
		}
		if reqEPC > epcPages {
			epcPages = reqEPC
		}
	}
	return memBytes, epcPages
}
