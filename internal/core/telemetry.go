package core

import (
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/telemetry"
)

// This file is the scheduler's instrumentation layer: pre-resolved
// registry handles (schedMetrics), the reusable per-pass recorder
// feeding the trace ring, and the timed variants of the framework
// pipeline stages. Everything here is designed around two hard
// budgets, pinned by BenchmarkInstrumentedPass and the alloc guards in
// telemetry_core_test.go:
//
//   - telemetry disabled (Config.Telemetry nil): zero allocations and
//     zero clock reads added to a pass — every site is behind a single
//     nil check;
//   - telemetry enabled: pass-level spans (snapshot-sync, preemption
//     plan, bind commits, wall time) are timed on every pass — a
//     handful of clock reads per pass — while per-pod stage timing and
//     per-plugin breakdowns run only on every TraceDetailEvery-th pass,
//     amortising their per-pod clock reads to a few percent.

// DefaultTraceDetailEvery is how often a pass records detailed per-pod
// stage timing and per-plugin breakdowns (1 in N passes; see
// Config.TraceDetailEvery).
const DefaultTraceDetailEvery = 32

// Pass stage indexes (dense array form of the telemetry.Stage* names).
const (
	stageSync = iota
	stagePreFilter
	stageFilter
	stageScore
	stagePermit
	stagePreempt
	stageBind
	numStages
)

// stageNames maps stage indexes to their exported span names.
var stageNames = [numStages]string{
	telemetry.StageSnapshotSync,
	telemetry.StagePreFilter,
	telemetry.StageFilter,
	telemetry.StageScore,
	telemetry.StagePermit,
	telemetry.StagePreempt,
	telemetry.StageBind,
}

// passBuckets are wall-time buckets for pass and stage durations:
// exponential 10µs … 2.5s — a pass at paper scale runs tens of
// microseconds, a million-pod pass ~10ms.
var passBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// classLabel is the telemetry label value for a class slot
// (slot 0, the unclassified default pipeline, gets an explicit value
// so its series stays addressable in label-keyed queries).
func classLabel(slot int) string {
	if c := classForSlot(slot); c != api.ClassUnspecified {
		return string(c)
	}
	return "unclassified"
}

// schedMetrics holds the scheduler's registry handles, resolved once at
// construction so pass-time updates are single atomic operations.
// Handles are shared across a sharded fleet: the registry returns the
// same series for the same name, so member counters aggregate.
type schedMetrics struct {
	passes   *telemetry.Counter
	passDur  *telemetry.Histogram
	stageDur [numStages]*telemetry.Histogram

	conflicts *telemetry.Counter
	sampled   *telemetry.Counter
	gated     *telemetry.Counter

	bound         [numClassSlots]*telemetry.Counter
	unschedulable [numClassSlots]*telemetry.Counter
	preemptions   [numClassSlots]*telemetry.Counter
	victims       [numClassSlots]*telemetry.Counter
	held          [numClassSlots]*telemetry.Counter
}

func newSchedMetrics(reg *telemetry.Registry) *schedMetrics {
	if reg == nil {
		return nil
	}
	m := &schedMetrics{
		passes:    reg.Counter("scheduler_passes_total"),
		passDur:   reg.Histogram("scheduler_pass_duration_seconds", passBuckets),
		conflicts: reg.Counter("scheduler_conflicts_total"),
		sampled:   reg.Counter("scheduler_sampled_pods_total"),
		gated:     reg.Counter("scheduler_gated_total"),
	}
	stages := reg.HistogramVec("scheduler_stage_duration_seconds", "stage", passBuckets)
	for i := range m.stageDur {
		m.stageDur[i] = stages.With(stageNames[i])
	}
	bound := reg.CounterVec("scheduler_bound_total", "class")
	unsched := reg.CounterVec("scheduler_unschedulable_total", "class")
	preempt := reg.CounterVec("scheduler_preemptions_total", "class")
	victims := reg.CounterVec("scheduler_victims_total", "class")
	held := reg.CounterVec("scheduler_held_total", "class")
	for i := 0; i < numClassSlots; i++ {
		l := classLabel(i)
		m.bound[i] = bound.With(l)
		m.unschedulable[i] = unsched.With(l)
		m.preemptions[i] = preempt.With(l)
		m.victims[i] = victims.With(l)
		m.held[i] = held.With(l)
	}
	return m
}

// pluginKey identifies one plugin's share of one stage within a pass.
type pluginKey struct {
	stage int
	name  string
}

// pluginAgg accumulates one plugin's time and call count over a pass.
type pluginAgg struct {
	stage int
	name  string
	ns    int64
	n     int
}

// passRecorder is the reusable per-pass trace accumulator. One lives in
// each Scheduler, guarded by passMu like the other pass buffers; its
// maps, slices and span buffer are recycled so a steady-state
// instrumented pass allocates only the ring's retained copy. All
// methods are nil-receiver-safe: a nil recorder (telemetry disabled)
// never reads the clock.
type passRecorder struct {
	start   time.Time
	seq     int64
	detail  bool
	stageNS [numStages]int64
	stageN  [numStages]int

	plugins   []pluginAgg
	pluginIdx map[pluginKey]int
	scoreBuf  []float64
	spans     []telemetry.Span
}

// begin resets the recorder for one pass. Detailed passes (1 in
// detailEvery) carry per-pod stage timing and per-plugin breakdowns.
func (r *passRecorder) begin(seq int64, detailEvery int) {
	r.start = time.Now()
	r.seq = seq
	r.detail = detailEvery > 0 && seq%int64(detailEvery) == 0
	r.stageNS = [numStages]int64{}
	r.stageN = [numStages]int{}
	r.plugins = r.plugins[:0]
	clear(r.pluginIdx)
}

// now reads the wall clock — the zero time on a nil recorder, so
// disabled schedulers never pay for a clock read.
func (r *passRecorder) now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// since is time.Since guarded the same way.
func (r *passRecorder) since(t0 time.Time) time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(t0)
}

// stageAdd folds one timed slice into a stage accumulator.
func (r *passRecorder) stageAdd(stage int, d time.Duration, n int) {
	if r == nil {
		return
	}
	r.stageNS[stage] += int64(d)
	r.stageN[stage] += n
}

// addPlugin folds one plugin call into its per-pass aggregate.
func (r *passRecorder) addPlugin(stage int, name string, d time.Duration) {
	if r.pluginIdx == nil {
		r.pluginIdx = make(map[pluginKey]int)
	}
	k := pluginKey{stage: stage, name: name}
	i, ok := r.pluginIdx[k]
	if !ok {
		i = len(r.plugins)
		r.plugins = append(r.plugins, pluginAgg{stage: stage, name: name})
		r.pluginIdx[k] = i
	}
	r.plugins[i].ns += int64(d)
	r.plugins[i].n++
}

// trace assembles the pass's spans (stage spans first, plugin
// breakdowns after) into a PassTrace over the recorder's reused span
// buffer; the ring copies on record.
func (r *passRecorder) trace(scheduler string, wall time.Duration, pending int, byClass *[numClassSlots]ClassStats, gated, conflicts, preemptions int) telemetry.PassTrace {
	r.spans = r.spans[:0]
	for i := 0; i < numStages; i++ {
		if r.stageN[i] == 0 && r.stageNS[i] == 0 {
			continue
		}
		r.spans = append(r.spans, telemetry.Span{
			Stage: stageNames[i],
			Dur:   time.Duration(r.stageNS[i]),
			Count: r.stageN[i],
		})
	}
	for _, p := range r.plugins {
		r.spans = append(r.spans, telemetry.Span{
			Stage:  stageNames[p.stage],
			Plugin: p.name,
			Dur:    time.Duration(p.ns),
			Count:  p.n,
		})
	}
	var bound, unsched, held int
	for i := range byClass {
		bound += byClass[i].Bound
		unsched += byClass[i].Unschedulable
		held += byClass[i].Held
	}
	return telemetry.PassTrace{
		Scheduler:     scheduler,
		Seq:           r.seq,
		Start:         r.start,
		Wall:          wall,
		Detailed:      r.detail,
		Pending:       pending,
		Bound:         bound,
		Unschedulable: unsched,
		Gated:         gated,
		Conflicts:     conflicts,
		Held:          held,
		Preemptions:   preemptions,
		Spans:         r.spans,
	}
}

// recordPass closes out one instrumented pass: observes the duration
// histograms, bumps the registry counters, and pushes the trace onto
// the ring. Called once per pass with passMu held.
func (s *Scheduler) recordPass(rec *passRecorder, pending int, byClass *[numClassSlots]ClassStats, gated, conflicts, sampledPods, preemptions int) {
	wall := time.Since(rec.start)
	m := s.metrics
	m.passes.Inc()
	m.passDur.ObserveDuration(wall)
	for i := 0; i < numStages; i++ {
		if rec.stageN[i] == 0 && rec.stageNS[i] == 0 {
			continue
		}
		m.stageDur[i].Observe(time.Duration(rec.stageNS[i]).Seconds())
	}
	m.conflicts.Add(int64(conflicts))
	m.sampled.Add(int64(sampledPods))
	m.gated.Add(int64(gated))
	for i := range byClass {
		m.bound[i].Add(int64(byClass[i].Bound))
		m.unschedulable[i].Add(int64(byClass[i].Unschedulable))
		m.preemptions[i].Add(int64(byClass[i].Preemptions))
		m.victims[i].Add(int64(byClass[i].Victims))
		m.held[i].Add(int64(byClass[i].Held))
	}
	if pending > 0 {
		s.trace.Record(rec.trace(s.cfg.Name, wall, pending, byClass, gated, conflicts, preemptions))
	}
}

// --- Timed pipeline variants (detailed passes only) ---
//
// These mirror their untimed counterparts exactly — same plugin order,
// same early exits, same floating-point accumulation order — adding
// only per-plugin clock reads. schedulePass routes through them when
// the pass recorder is in detail mode.

// runPreFilterTimed is runPreFilter with per-plugin timing.
func (p *Profile) runPreFilterTimed(pod *PodInfo, view *ClusterView, rec *passRecorder) bool {
	for _, pf := range p.preFilters {
		t0 := time.Now()
		ok := pf.PreFilter(pod, view)
		rec.addPlugin(stagePreFilter, pf.Name(), time.Since(t0))
		if !ok {
			return false
		}
	}
	return true
}

// runPermitTimed is runPermit with per-plugin timing.
func (p *Profile) runPermitTimed(pod *PodInfo, nodeName string, rec *passRecorder) PermitDecision {
	for _, pp := range p.permits {
		t0 := time.Now()
		d := pp.Permit(pod, nodeName)
		rec.addPlugin(stagePermit, pp.Name(), time.Since(t0))
		if d != PermitAllow {
			return d
		}
	}
	return PermitAllow
}

// selectInfoTimed is selectInfo with per-plugin timing. Scoring runs
// plugin-outer over a reused per-candidate accumulator instead of
// candidate-outer, which times each score plugin across the whole
// candidate set in one clock-read pair; per-candidate sums accumulate
// in the same plugin order as the inline loop, so the selection —
// including floating-point rounding and first-best tie-breaks — is
// bit-identical.
func (p *Profile) selectInfoTimed(pod *PodInfo, candidates []*NodeView, view *ClusterView, rec *passRecorder) (string, bool) {
	if p.legacy != nil {
		t0 := time.Now()
		name, ok := p.legacy.Select(pod.Pod, candidates, view)
		rec.addPlugin(stageScore, "legacy:"+p.legacy.Name(), time.Since(t0))
		return name, ok
	}
	for _, ps := range p.preScore {
		t0 := time.Now()
		narrowed := ps.PreScore(pod, candidates)
		rec.addPlugin(stageScore, ps.Name(), time.Since(t0))
		if narrowed != nil {
			candidates = narrowed
		}
	}
	if len(candidates) == 0 {
		return "", false
	}
	scores := rec.scoreBuf[:0]
	for range candidates {
		scores = append(scores, 0)
	}
	rec.scoreBuf = scores
	for _, ws := range p.scores {
		t0 := time.Now()
		for i, cand := range candidates {
			scores[i] += ws.Weight * ws.Plugin.Score(pod, cand, view)
		}
		rec.addPlugin(stageScore, ws.Plugin.Name(), time.Since(t0))
	}
	best := ""
	bestScore := p.minScore
	for i, cand := range candidates {
		if scores[i] > bestScore {
			best = cand.Name
			bestScore = scores[i]
		}
	}
	if best == "" {
		return "", false
	}
	return best, true
}
