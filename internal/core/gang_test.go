package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// gangTestbed wires an API server, a shared gang director, and a
// scheduler fleet (1..n members) over plain registered nodes — no
// kubelets, so placement is the only moving part.
type gangTestbed struct {
	clk   *clock.Sim
	srv   *apiserver.Server
	dir   *GangDirector
	fleet *ShardedSchedulers
}

func newGangTestbed(t *testing.T, nodes int, memPerNode int64, gcfg GangConfig, shards int) *gangTestbed {
	t.Helper()
	clk := clock.NewSim()
	srv := apiserver.New(clk, apiserver.WithAdmission(apiserver.AdmitStrict))
	for i := 0; i < nodes; i++ {
		n := &api.Node{
			Name:        fmt.Sprintf("n%02d", i+1),
			Capacity:    resource.List{resource.Memory: memPerNode},
			Allocatable: resource.List{resource.Memory: memPerNode},
			Ready:       true,
		}
		if err := srv.RegisterNode(n); err != nil {
			t.Fatal(err)
		}
	}
	dir := NewGangDirector(clk, srv, gcfg)
	fleet, err := NewSharded(clk, srv, tsdb.New(clk), Config{
		Name:     "s",
		Policy:   Binpack{},
		Interval: time.Second,
		Gang:     dir,
	}, shards, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		fleet.Close()
		dir.Close()
	})
	return &gangTestbed{clk: clk, srv: srv, dir: dir, fleet: fleet}
}

func (tb *gangTestbed) submit(t *testing.T, p *api.Pod) {
	t.Helper()
	tb.fleet.Assign(p)
	if err := tb.srv.CreatePod(p); err != nil {
		t.Fatal(err)
	}
}

func memPod(name string, mem int64, prio int32) *api.Pod {
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{
			Priority: prio,
			Containers: []api.Container{{
				Name:      "main",
				Resources: api.Requirements{Requests: resource.List{resource.Memory: mem}},
			}},
		},
	}
}

func memGangPod(name, group string, minMember int, mem int64, prio int32) *api.Pod {
	p := memPod(name, mem, prio)
	p.Spec.PodGroup = group
	p.Spec.MinMember = minMember
	return p
}

// TestGangWaitsForQuorumThenCommits: members below quorum hold permits
// without binding; the member that completes the quorum triggers the
// atomic whole-gang commit in the same pass.
func TestGangWaitsForQuorumThenCommits(t *testing.T) {
	tb := newGangTestbed(t, 2, resource.GiB, GangConfig{}, 1)
	for _, name := range []string{"g-a", "g-b"} {
		tb.submit(t, memGangPod(name, "g", 3, resource.MiB, 0))
	}
	tb.fleet.RunRound()

	if n := tb.srv.ReservationCount(); n != 2 {
		t.Fatalf("permits after partial gang = %d, want 2", n)
	}
	if n := tb.srv.BoundGroupCount("g"); n != 0 {
		t.Fatalf("bound members before quorum = %d, want 0", n)
	}
	stats := tb.fleet.Stats()
	if stats.Held != 2 || stats.Bound != 0 {
		t.Fatalf("stats = %+v, want Held 2 Bound 0", stats)
	}

	tb.submit(t, memGangPod("g-c", "g", 3, resource.MiB, 0))
	tb.fleet.RunRound()
	if got := fmt.Sprint(tb.srv.BoundGroupMembers("g")); got != "[g-a g-b g-c]" {
		t.Fatalf("bound members after quorum = %v", got)
	}
	if n := tb.srv.ReservationCount(); n != 0 {
		t.Fatalf("permits after commit = %d, want 0", n)
	}
	if s := tb.dir.Stats(); s.Commits != 1 || s.Timeouts != 0 {
		t.Fatalf("director stats = %+v", s)
	}
}

// TestGangPermitTimeoutRollsBackAndRecovers: a gang stuck below quorum
// releases every permit (and all held capacity) at the sim-clock
// timeout, then schedules cleanly once the missing member arrives.
func TestGangPermitTimeoutRollsBackAndRecovers(t *testing.T) {
	tb := newGangTestbed(t, 1, resource.GiB, GangConfig{PermitTimeout: 10 * time.Second}, 1)
	for _, name := range []string{"g-a", "g-b"} {
		tb.submit(t, memGangPod(name, "g", 3, resource.MiB, 0))
	}
	tb.fleet.RunRound()
	if n := tb.srv.ReservationCount(); n != 2 {
		t.Fatalf("permits = %d, want 2", n)
	}

	tb.clk.Advance(10 * time.Second)
	// Post-hoc accounting: the rollback returned every held resource.
	if n := tb.srv.ReservationCount(); n != 0 {
		t.Fatalf("permits after timeout = %d, want 0", n)
	}
	if got := tb.srv.Committed("n01").Get(resource.Memory); got != 0 {
		t.Fatalf("committed after timeout = %d, want 0", got)
	}
	if s := tb.dir.Stats(); s.Timeouts != 1 || s.Commits != 0 {
		t.Fatalf("director stats = %+v", s)
	}
	gs := tb.srv.GangStats()
	if gs.MembersReleased != 2 || gs.GroupsReleased != 1 {
		t.Fatalf("gang stats = %+v", gs)
	}

	tb.submit(t, memGangPod("g-c", "g", 3, resource.MiB, 0))
	// The released members are back in the queue; the next rounds reach
	// quorum and commit.
	for i := 0; i < 3 && tb.srv.BoundGroupCount("g") < 3; i++ {
		tb.fleet.RunRound()
	}
	if n := tb.srv.BoundGroupCount("g"); n != 3 {
		t.Fatalf("bound members after recovery = %d, want 3", n)
	}
}

// TestGangPreFilterGatesImpossibleGangs: when the cluster cannot possibly
// hold the group's remaining members, no member takes a permit — gated
// gangs must not camp on capacity they can never complete with.
func TestGangPreFilterGatesImpossibleGangs(t *testing.T) {
	tb := newGangTestbed(t, 1, 2*resource.MiB, GangConfig{}, 1)
	for _, name := range []string{"g-a", "g-b", "g-c"} {
		tb.submit(t, memGangPod(name, "g", 3, resource.MiB, 0))
	}
	tb.fleet.RunRound()
	stats := tb.fleet.Stats()
	if stats.Gated != 3 || stats.Held != 0 {
		t.Fatalf("stats = %+v, want Gated 3 Held 0", stats)
	}
	if n := tb.srv.ReservationCount(); n != 0 {
		t.Fatalf("permits = %d, want 0 (gang cannot fit)", n)
	}
}

// TestGangStarvationBoost: PreFilter raises a waiting gang member's
// pass-local priority by one tier per BoostEvery of group age, capped at
// MaxBoost, without rewriting the pod's declared priority.
func TestGangStarvationBoost(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	dir := NewGangDirector(clk, srv, GangConfig{BoostEvery: time.Minute, MaxBoost: 3})
	defer dir.Close()
	pod := memGangPod("g-a", "g", 2, resource.MiB, 5)
	view := &ClusterView{Nodes: []*NodeView{{
		Name:        "n1",
		Allocatable: resource.List{resource.Memory: resource.GiB},
		Used:        resource.List{},
	}}}

	info := NewPodInfo(pod, nil)
	if !dir.PreFilter(info, view) {
		t.Fatal("feasible gang member gated")
	}
	if info.Priority != 5 {
		t.Fatalf("fresh gang boosted: priority = %d, want 5", info.Priority)
	}

	clk.Advance(2 * time.Minute)
	info = NewPodInfo(pod, nil)
	dir.PreFilter(info, view)
	if info.Priority != 7 {
		t.Fatalf("priority after 2min = %d, want 7", info.Priority)
	}

	clk.Advance(time.Hour)
	info = NewPodInfo(pod, nil)
	dir.PreFilter(info, view)
	if info.Priority != 8 {
		t.Fatalf("priority after an hour = %d, want 8 (capped at +3)", info.Priority)
	}
	if pod.Spec.Priority != 5 {
		t.Fatalf("declared priority mutated: %d", pod.Spec.Priority)
	}
}

// checkNoPartialGang replays an event stream prefix by prefix and fails
// if any prefix observes a partially committed gang with a foreign event
// interleaved: once a group's commit burst starts (first PodBound while
// co-members still hold permits), every following event must be another
// PodBound of the same group until no permits remain — the replay
// witness that CommitGroup is atomic under the world ladder.
func checkNoPartialGang(t *testing.T, events []apiserver.WatchEvent, minMember map[string]int) {
	t.Helper()
	held := map[string]map[string]bool{}  // group -> permit holders
	bound := map[string]map[string]bool{} // group -> bound members
	for i, ev := range events {
		if ev.Pod == nil || !ev.Pod.Spec.InGang() {
			continue
		}
		g := ev.Pod.Spec.PodGroup
		switch ev.Type {
		case apiserver.PodPermitHeld:
			if held[g] == nil {
				held[g] = map[string]bool{}
			}
			held[g][ev.Pod.Name] = true
		case apiserver.PodPermitReleased:
			delete(held[g], ev.Pod.Name)
		case apiserver.PodBound:
			delete(held[g], ev.Pod.Name)
			if bound[g] == nil {
				bound[g] = map[string]bool{}
			}
			bound[g][ev.Pod.Name] = true
		case apiserver.PodUpdated:
			if ev.Pod.Spec.NodeName == "" || ev.Pod.IsTerminal() {
				delete(bound[g], ev.Pod.Name)
			}
		}
		// Prefix invariant: a group mid-commit (some members bound, some
		// still holding permits) only ever appears inside its own commit
		// burst, i.e. the next event continues it.
		if len(bound[g]) > 0 && len(held[g]) > 0 {
			if i+1 >= len(events) {
				t.Fatalf("event stream ends with gang %s partially committed (%d bound, %d held)",
					g, len(bound[g]), len(held[g]))
			}
			next := events[i+1]
			if next.Type != apiserver.PodBound || next.Pod == nil || next.Pod.Spec.PodGroup != g {
				t.Fatalf("event %d: gang %s partially committed (%d bound, %d held) with foreign event %v interleaved",
					i, g, len(bound[g]), len(held[g]), next.Type)
			}
		}
		// Once settled (no permits outstanding), a gang is bound fully or
		// not at all.
		if n := len(bound[g]); len(held[g]) == 0 && n > 0 && n < minMember[g] {
			t.Fatalf("event %d: gang %s settled at %d/%d members bound", i, g, n, minMember[g])
		}
	}
}

// TestGangNeverPartiallyBoundAcrossEventPrefixes: the replay-witness
// property over a churning single-scheduler run — every event-stream
// prefix sees each gang either fully committed, mid-atomic-burst, or not
// placed at all. Solo pods interleave freely throughout.
func TestGangNeverPartiallyBoundAcrossEventPrefixes(t *testing.T) {
	tb := newGangTestbed(t, 4, 8*resource.MiB, GangConfig{PermitTimeout: 5 * time.Second}, 1)
	var events []apiserver.WatchEvent
	unsub := tb.srv.Subscribe(func(ev apiserver.WatchEvent) { events = append(events, ev) })
	defer unsub()

	minMember := map[string]int{}
	k := 3
	for wave := 0; wave < 4; wave++ {
		group := fmt.Sprintf("gang-%d", wave)
		minMember[group] = k
		for m := 0; m < k; m++ {
			tb.submit(t, memGangPod(fmt.Sprintf("%s-m%d", group, m), group, k, resource.MiB, 0))
		}
		for s := 0; s < 2; s++ {
			tb.submit(t, memPod(fmt.Sprintf("solo-%d-%d", wave, s), resource.MiB, 0))
		}
		tb.fleet.RunRound()
		tb.clk.Advance(time.Second)
	}
	for i := 0; i < 6; i++ {
		tb.fleet.RunRound()
		tb.clk.Advance(2 * time.Second)
	}

	checkNoPartialGang(t, events, minMember)
	if n := tb.srv.ReservationCount(); n != 0 {
		t.Fatalf("permits outstanding at end = %d, want 0", n)
	}
}

// TestGangShardedContentionNoPartialBinding: two schedulers share the
// gang director; gang members hash across both, so quorum needs permits
// from different members' passes. The same prefix property must hold
// under the contention, and runs must be deterministic.
func TestGangShardedContentionNoPartialBinding(t *testing.T) {
	run := func() ([]apiserver.WatchEvent, map[string]int, int) {
		tb := newGangTestbed(t, 4, 8*resource.MiB, GangConfig{PermitTimeout: 5 * time.Second}, 2)
		var events []apiserver.WatchEvent
		unsub := tb.srv.Subscribe(func(ev apiserver.WatchEvent) { events = append(events, ev) })
		defer unsub()

		minMember := map[string]int{}
		for wave := 0; wave < 3; wave++ {
			group := fmt.Sprintf("cgang-%d", wave)
			minMember[group] = 4
			for m := 0; m < 4; m++ {
				tb.submit(t, memGangPod(fmt.Sprintf("%s-m%d", group, m), group, 4, resource.MiB, 0))
			}
			tb.submit(t, memPod(fmt.Sprintf("csolo-%d", wave), resource.MiB, 0))
			tb.fleet.RunRound()
			tb.clk.Advance(time.Second)
		}
		for i := 0; i < 8; i++ {
			tb.fleet.RunRound()
			tb.clk.Advance(2 * time.Second)
		}
		checkNoPartialGang(t, events, minMember)
		if n := tb.srv.ReservationCount(); n != 0 {
			t.Fatalf("permits outstanding at end = %d, want 0", n)
		}
		bound := 0
		for g := range minMember {
			bound += tb.srv.BoundGroupCount(g)
		}
		return events, minMember, bound
	}

	evA, _, boundA := run()
	evB, _, boundB := run()
	if boundA != boundB || len(evA) != len(evB) {
		t.Fatalf("nondeterministic: run A bound %d (%d events), run B bound %d (%d events)",
			boundA, len(evA), boundB, len(evB))
	}
	for i := range evA {
		if evA[i].Type != evB[i].Type || evA[i].Pod == nil != (evB[i].Pod == nil) {
			t.Fatalf("event %d diverges between identical runs", i)
		}
	}
	// The member split really crossed schedulers: at least one gang must
	// have members on both shards.
	split := false
	for wave := 0; wave < 3 && !split; wave++ {
		first := ShardIndex(fmt.Sprintf("cgang-%d-m0", wave), 2)
		for m := 1; m < 4; m++ {
			if ShardIndex(fmt.Sprintf("cgang-%d-m%d", wave, m), 2) != first {
				split = true
				break
			}
		}
	}
	if !split {
		t.Fatal("test vacuous: no gang straddled the two schedulers")
	}
}

// TestGangPreemptionEvictsWholeGang: a high-priority solo pod that needs
// the space displaces the entire low-priority gang — bound members
// everywhere, not just on the candidate node — or nothing.
func TestGangPreemptionEvictsWholeGang(t *testing.T) {
	tb := newGangTestbed(t, 2, 2*resource.MiB, GangConfig{}, 1)
	for m := 0; m < 4; m++ {
		tb.submit(t, memGangPod(fmt.Sprintf("g-m%d", m), "g", 4, resource.MiB, 0))
	}
	tb.fleet.RunRound()
	if n := tb.srv.BoundGroupCount("g"); n != 4 {
		t.Fatalf("gang not placed: %d/4 bound", n)
	}

	tb.submit(t, memPod("vip", 2*resource.MiB, 10))
	for i := 0; i < 3; i++ {
		tb.fleet.RunRound()
	}
	vip, _ := tb.srv.GetPod("vip")
	if vip.Spec.NodeName == "" {
		t.Fatal("high-priority pod not placed by gang preemption")
	}
	if n := tb.srv.BoundGroupCount("g"); n != 0 {
		t.Fatalf("gang partially survived preemption: %d members still bound", n)
	}
	if s := tb.srv.GangStats(); s.GroupsPreempted != 1 {
		t.Fatalf("gang stats = %+v, want GroupsPreempted 1", s)
	}
}
