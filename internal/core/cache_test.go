package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/monitor"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// viewsEqual compares two ClusterViews semantically: same nodes in the
// same order with equal flags, allocatable, fused usage (absent resource
// keys count as zero) and device headroom.
func viewsEqual(t *testing.T, got, want *ClusterView, context string) {
	t.Helper()
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: %d nodes, want %d\ncache: %s\nrebuild: %s",
			context, len(got.Nodes), len(want.Nodes), viewString(got), viewString(want))
	}
	for i := range got.Nodes {
		g, w := got.Nodes[i], want.Nodes[i]
		switch {
		case g.Name != w.Name:
			t.Fatalf("%s: node[%d] = %q, want %q", context, i, g.Name, w.Name)
		case g.SGX != w.SGX:
			t.Fatalf("%s: node %s SGX = %v, want %v", context, g.Name, g.SGX, w.SGX)
		case !g.Allocatable.Equal(w.Allocatable):
			t.Fatalf("%s: node %s allocatable = %v, want %v", context, g.Name, g.Allocatable, w.Allocatable)
		case !g.Used.Equal(w.Used):
			t.Fatalf("%s: node %s used = %v, want %v", context, g.Name, g.Used, w.Used)
		case g.FreeDevices != w.FreeDevices:
			t.Fatalf("%s: node %s free devices = %d, want %d", context, g.Name, g.FreeDevices, w.FreeDevices)
		}
	}
}

func viewString(v *ClusterView) string {
	s := ""
	for _, n := range v.Nodes {
		s += fmt.Sprintf("[%s used=%v free=%d]", n.Name, n.Used, n.FreeDevices)
	}
	return s
}

// TestClusterCacheMatchesBuildView is the refactor's guard: it drives
// randomized submit/bind/run/finish/evict/preempt/drain/metric/advance
// sequences through the API server and database and requires the
// incrementally maintained cache snapshot to match a from-scratch
// BuildView (InfluxQL reference path) exactly, at every checkpoint. Metric values are whole
// bytes so both paths' float64→int64 conversions are exact.
func TestClusterCacheMatchesBuildView(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		clk := clock.NewSim()
		srv := apiserver.New(clk)
		db := tsdb.New(clk)

		nodeNames := make([]string, 3+rng.Intn(4))
		for i := range nodeNames {
			nodeNames[i] = fmt.Sprintf("n%02d", i)
		}
		registerNode := func(name string, sgx bool) {
			alloc := resource.List{
				resource.Memory: int64(8+rng.Intn(56)) * resource.GiB,
				resource.CPU:    8000,
			}
			if sgx {
				alloc[resource.EPCPages] = int64(1000 + rng.Intn(30000))
			}
			if err := srv.RegisterNode(&api.Node{
				Name: name, Capacity: alloc.Clone(), Allocatable: alloc, Ready: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		// Some nodes, pods and metrics exist before the scheduler does, so
		// the informer snapshot and aggregator backfill paths are primed.
		preNodes := 1 + rng.Intn(len(nodeNames))
		for i := 0; i < preNodes; i++ {
			registerNode(nodeNames[i], rng.Intn(2) == 0)
		}
		var pods []string
		makePod := func() *api.Pod {
			name := fmt.Sprintf("p%03d", len(pods))
			pods = append(pods, name)
			req := resource.List{resource.Memory: int64(rng.Intn(8)) * resource.GiB}
			if rng.Intn(2) == 0 {
				req[resource.EPCPages] = int64(rng.Intn(2000))
			}
			schedName := "s"
			if rng.Intn(5) == 0 {
				schedName = "other" // foreign pods still count toward usage
			}
			return &api.Pod{
				Name: name,
				Spec: api.PodSpec{
					SchedulerName: schedName,
					Priority:      int32(rng.Intn(3)),
					Containers: []api.Container{{
						Name:      "main",
						Resources: api.Requirements{Requests: req},
					}},
				},
			}
		}
		writeMetric := func() {
			measurement := monitor.MeasurementMemory
			if rng.Intn(2) == 0 {
				measurement = monitor.MeasurementEPC
			}
			pod := fmt.Sprintf("p%03d", rng.Intn(len(pods)+3)) // sometimes unknown
			node := nodeNames[rng.Intn(len(nodeNames))]
			if rng.Intn(8) == 0 {
				node = "ghost"
			}
			value := float64(int64(rng.Intn(6)) * resource.GiB) // zeros included
			at := clk.Now().Add(-time.Duration(rng.Intn(90)) * time.Second)
			db.Write(measurement, tsdb.Tags{monitor.TagPod: pod, monitor.TagNode: node}, value, at)
		}
		for i := 0; i < 5; i++ {
			if err := srv.CreatePod(makePod()); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 10; i++ {
			writeMetric()
		}

		window := time.Duration(5+rng.Intn(56)) * time.Second
		lag := time.Duration(1+rng.Intn(40)) * time.Second
		s, err := New(clk, srv, db, Config{
			Name: "s", Policy: Binpack{}, UseMetrics: true,
			Window: window, MetricsLag: lag,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := preNodes; i < len(nodeNames); i++ {
			registerNode(nodeNames[i], rng.Intn(2) == 0)
		}

		for op := 0; op < 150; op++ {
			switch r := rng.Intn(100); {
			case r < 20:
				_ = srv.CreatePod(makePod())
			case r < 40: // bind a random queued pod by hand
				if queued := srv.PendingPods(""); len(queued) > 0 {
					p := queued[rng.Intn(len(queued))]
					_ = srv.Bind(p.Name, nodeNames[rng.Intn(len(nodeNames))])
				}
			case r < 50:
				_ = srv.MarkRunning(pods[rng.Intn(len(pods))])
			case r < 58:
				_ = srv.MarkSucceeded(pods[rng.Intn(len(pods))])
			case r < 63:
				_ = srv.MarkFailed(pods[rng.Intn(len(pods))], "chaos")
			case r < 67:
				_ = srv.Evict(pods[rng.Intn(len(pods))], "test")
			case r < 72: // preemption: a bound pod returns to the queue
				_ = srv.Preempt(pods[rng.Intn(len(pods))], "chaos")
			case r < 78: // node churn: drain, undrain, cordon, device growth
				n, err := srv.GetNode(nodeNames[rng.Intn(len(nodeNames))])
				if err != nil {
					break
				}
				switch rng.Intn(3) {
				case 0:
					n.Ready = !n.Ready
				case 1:
					n.Unschedulable = !n.Unschedulable
				case 2:
					if n.HasSGX() {
						n.Allocatable[resource.EPCPages] += int64(rng.Intn(500))
					}
				}
				_ = srv.UpdateNode(n)
			case r < 92:
				writeMetric()
			case r < 95:
				s.ScheduleOnce()
			default:
				clk.Advance(time.Duration(rng.Intn(15000)) * time.Millisecond)
			}
			if op%7 == 0 {
				viewsEqual(t, s.Cache().Snapshot(), s.BuildView(),
					fmt.Sprintf("trial %d op %d", trial, op))
			}
		}
		// Let every window decay and maturity pass, then compare once more.
		clk.Advance(2 * time.Minute)
		viewsEqual(t, s.Cache().Snapshot(), s.BuildView(), fmt.Sprintf("trial %d final", trial))
		s.Close()
	}
}

// TestCacheDropsDrainedNode drains a node mid-run and proves the cache
// drops its view and usage: the snapshot loses the node immediately, and
// when the node later reports Ready again its fused usage is zero because
// the drain failed its pods.
func TestCacheDropsDrainedNode(t *testing.T) {
	c := newTestCluster(t, clusterSpec{sgxNodes: 2, useMetrics: true, enforcement: true})
	c.submit(t, epcJob("warm-0", 1000, 3*resource.MiB, 10*time.Minute))
	c.submit(t, epcJob("warm-1", 1000, 3*resource.MiB, 10*time.Minute))
	c.clk.Advance(15 * time.Second)

	cache := c.sched.Cache()
	before := cache.Snapshot()
	if n := before.Node("sgx-1"); n == nil || n.Used.Get(resource.EPCPages) == 0 {
		t.Fatalf("sgx-1 missing or idle before drain: %v", viewString(before))
	}

	for _, kl := range c.kubelets {
		if kl.NodeName() == "sgx-1" {
			kl.Stop()
		}
	}
	after := cache.Snapshot()
	if after.Node("sgx-1") != nil {
		t.Fatalf("drained node still in cache snapshot: %v", viewString(after))
	}
	if after.Node("sgx-2") == nil {
		t.Fatal("surviving node vanished from snapshot")
	}
	viewsEqual(t, after, c.sched.BuildView(), "post-drain")

	// Un-cordon the node: the cache must expose it again with zero usage —
	// its pods failed on the drain, so everything it was charged is gone.
	n, err := c.srv.GetNode("sgx-1")
	if err != nil {
		t.Fatal(err)
	}
	n.Ready = true
	if err := c.srv.UpdateNode(n); err != nil {
		t.Fatal(err)
	}
	c.clk.Advance(30 * time.Second) // drained pod's stale series decays out of the window
	back := cache.Snapshot()
	nv := back.Node("sgx-1")
	if nv == nil {
		t.Fatal("re-readied node missing from snapshot")
	}
	if nv.Used.Get(resource.Memory) != 0 || nv.Used.Get(resource.EPCPages) != 0 {
		t.Fatalf("re-readied node still charged: %v", nv.Used)
	}
	if nv.FreeDevices != nv.Allocatable.Get(resource.EPCPages) {
		t.Fatalf("re-readied node FreeDevices = %d, want %d", nv.FreeDevices, nv.Allocatable.Get(resource.EPCPages))
	}
	viewsEqual(t, back, c.sched.BuildView(), "post-undrain")
}

// TestWatchEventOrderingDeterministic runs the same simulated scenario
// twice and requires bit-identical watch event sequences — the property
// the event-driven cache's reproducibility rests on.
func TestWatchEventOrderingDeterministic(t *testing.T) {
	run := func() []string {
		c := newTestCluster(t, clusterSpec{stdNodes: 2, sgxNodes: 2, useMetrics: true, enforcement: true})
		var seq []string
		unsub := c.srv.Subscribe(func(ev apiserver.WatchEvent) {
			entry := fmt.Sprintf("rev=%d type=%d", ev.Rev, ev.Type)
			if ev.Pod != nil {
				entry += fmt.Sprintf(" pod=%s node=%s phase=%s", ev.Pod.Name, ev.Pod.Spec.NodeName, ev.Pod.Status.Phase)
			}
			if ev.Node != nil {
				entry += fmt.Sprintf(" node=%s ready=%v", ev.Node.Name, ev.Node.Ready)
			}
			seq = append(seq, entry)
		})
		defer unsub()

		rng := rand.New(rand.NewSource(4242))
		for i := 0; i < 25; i++ {
			if rng.Intn(2) == 0 {
				c.submit(t, epcJob(fmt.Sprintf("job-%02d", i), int64(200+rng.Intn(4000)), resource.MiB, 30*time.Second))
			} else {
				c.submit(t, memJob(fmt.Sprintf("job-%02d", i), int64(1+rng.Intn(4))*resource.GiB, resource.GiB, 30*time.Second))
			}
			c.clk.Advance(time.Duration(rng.Intn(8)) * time.Second)
		}
		for _, kl := range c.kubelets {
			if kl.NodeName() == "sgx-1" {
				kl.Stop() // drain mid-run
			}
		}
		c.clk.Advance(5 * time.Minute)
		return seq
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\nrun1: %s\nrun2: %s", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
}

// TestCacheSnapshotIsolated verifies a pass may mutate its snapshot
// (Commit) without corrupting the cache's internal state.
func TestCacheSnapshotIsolated(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	db := tsdb.New(clk)
	alloc := resource.List{resource.Memory: 16 * resource.GiB, resource.EPCPages: 1000}
	if err := srv.RegisterNode(&api.Node{Name: "n1", Capacity: alloc.Clone(), Allocatable: alloc, Ready: true}); err != nil {
		t.Fatal(err)
	}
	s, err := New(clk, srv, db, Config{Name: "s", Policy: Binpack{}, UseMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	view := s.Cache().Snapshot()
	view.Commit("n1", resource.List{resource.Memory: resource.GiB, resource.EPCPages: 100})
	view.Nodes[0].Allocatable[resource.Memory] = 1

	fresh := s.Cache().Snapshot()
	n := fresh.Node("n1")
	if n.Used.Get(resource.Memory) != 0 || n.FreeDevices != 1000 {
		t.Fatalf("snapshot mutation leaked into cache: used=%v free=%d", n.Used, n.FreeDevices)
	}
	if n.Allocatable.Get(resource.Memory) != 16*resource.GiB {
		t.Fatal("allocatable aliased between snapshot and cache")
	}
}

// TestIdlePassesDrainAggregator: a scheduler with an empty queue must
// still reclaim decayed aggregator series on its periodic passes — the
// expiry heap is only emptied by a refresh, and idle is the steady state
// between job waves.
func TestIdlePassesDrainAggregator(t *testing.T) {
	c := newTestCluster(t, clusterSpec{stdNodes: 1, sgxNodes: 1, useMetrics: true, enforcement: true})
	c.submit(t, epcJob("short", 500, resource.MiB, 10*time.Second))
	c.submit(t, memJob("short-mem", resource.GiB, resource.GiB, 10*time.Second))
	c.clk.Advance(30 * time.Second)
	if !c.srv.AllTerminal() {
		t.Fatal("jobs did not finish")
	}
	// The queue is now empty; the periodic passes keep running while the
	// finished pods' series age out of the 25 s window.
	c.clk.Advance(time.Minute)
	if got := c.sched.agg.SeriesCount(); got != 0 {
		t.Fatalf("aggregator still holds %d series after idle passes (expiry heap not drained)", got)
	}
}
