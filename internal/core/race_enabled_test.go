//go:build race

package core

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so allocation-count guards skip under it.
const raceEnabled = true
