package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/resource"
)

// TestCacheResyncAfterOverflowMatchesBuildView is the broker-overflow
// property test: an async-watch server with a tiny ring, a cache pinned
// mid-delivery while bursts of mutations wrap the ring repeatedly —
// forcing the ErrTooOld path — must, after every burst, resync to a
// state identical to a from-scratch BuildView. A second subscriber
// records every delivered resource version and proves no event is ever
// delivered twice or out of order, across resyncs included.
func TestCacheResyncAfterOverflowMatchesBuildView(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		clk := clock.NewSim()
		srv := apiserver.New(clk,
			apiserver.WithAsyncWatch(),
			apiserver.WithWatchCapacity(8),
			apiserver.WithWatchBatch(2),
		)
		nodeNames := make([]string, 4)
		for i := range nodeNames {
			nodeNames[i] = fmt.Sprintf("n%02d", i)
			alloc := resource.List{
				resource.Memory:   int64(16+rng.Intn(48)) * resource.GiB,
				resource.CPU:      8000,
				resource.EPCPages: int64(1000 + rng.Intn(20000)),
			}
			if err := srv.RegisterNode(&api.Node{
				Name: nodeNames[i], Capacity: alloc.Clone(), Allocatable: alloc, Ready: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		s, err := New(clk, srv, nil, Config{Name: "s", Policy: Binpack{}})
		if err != nil {
			t.Fatal(err)
		}

		// Ordering witness: all delivered revs, resyncs included, must be
		// strictly increasing — a resync may skip revs but never replays
		// or reorders them.
		var witMu sync.Mutex
		var witnessRevs []int64
		witnessUnsub := srv.SubscribeBatch(func(evs []apiserver.WatchEvent) {
			witMu.Lock()
			for _, ev := range evs {
				witnessRevs = append(witnessRevs, ev.Rev)
			}
			witMu.Unlock()
		}, func(snap apiserver.Snapshot) {
			witMu.Lock()
			witnessRevs = append(witnessRevs, snap.Rev)
			witMu.Unlock()
		})

		var pods []string
		makePod := func() *api.Pod {
			name := fmt.Sprintf("p%03d", len(pods))
			pods = append(pods, name)
			req := resource.List{resource.Memory: int64(rng.Intn(4)) * resource.GiB}
			if rng.Intn(2) == 0 {
				req[resource.EPCPages] = int64(rng.Intn(1500))
			}
			return &api.Pod{
				Name: name,
				Spec: api.PodSpec{
					SchedulerName: "s",
					Priority:      int32(rng.Intn(3)),
					Containers: []api.Container{{
						Name:      "main",
						Resources: api.Requirements{Requests: req},
					}},
				},
			}
		}

		cache := s.Cache()
		for round := 0; round < 8; round++ {
			// Pin the cache: its pump blocks inside ApplyAll on c.mu (at
			// most one batch deep) while the burst below wraps the
			// 8-entry ring many times over — guaranteeing the cursor
			// falls off and the resync path must run.
			cache.mu.Lock()
			for op := 0; op < 60; op++ {
				switch r := rng.Intn(100); {
				case r < 35:
					_ = srv.CreatePod(makePod())
				case r < 65:
					if queued := srv.PendingPods(""); len(queued) > 0 {
						p := queued[rng.Intn(len(queued))]
						_ = srv.Bind(p.Name, nodeNames[rng.Intn(len(nodeNames))])
					}
				case r < 72:
					if len(pods) > 0 {
						_ = srv.MarkRunning(pods[rng.Intn(len(pods))])
					}
				case r < 80:
					if len(pods) > 0 {
						_ = srv.MarkSucceeded(pods[rng.Intn(len(pods))])
					}
				case r < 85:
					if len(pods) > 0 {
						_ = srv.Preempt(pods[rng.Intn(len(pods))], "chaos")
					}
				case r < 90:
					if len(pods) > 0 {
						_ = srv.Evict(pods[rng.Intn(len(pods))], "chaos")
					}
				default:
					n, err := srv.GetNode(nodeNames[rng.Intn(len(nodeNames))])
					if err != nil {
						break
					}
					switch rng.Intn(3) {
					case 0:
						n.Ready = !n.Ready
					case 1:
						n.Unschedulable = !n.Unschedulable
					case 2:
						n.Allocatable[resource.EPCPages] += int64(rng.Intn(300))
					}
					_ = srv.UpdateNode(n)
				}
			}
			cache.mu.Unlock()
			srv.QuiesceWatch()
			viewsEqual(t, cache.Snapshot(), s.BuildView(),
				fmt.Sprintf("trial %d round %d (post-resync)", trial, round))
		}

		stats := srv.WatchStats()
		if len(stats.PerSubscriber) == 0 || stats.PerSubscriber[0].Resyncs == 0 {
			t.Fatalf("trial %d: the cache never hit the overflow/resync path (stats %+v) — the test lost its teeth", trial, stats)
		}
		witMu.Lock()
		for i := 1; i < len(witnessRevs); i++ {
			if witnessRevs[i] <= witnessRevs[i-1] {
				t.Fatalf("trial %d: rev %d observed after %d — event delivered twice or out of order",
					trial, witnessRevs[i], witnessRevs[i-1])
			}
		}
		witMu.Unlock()

		witnessUnsub()
		s.Close()
		srv.Close()
	}
}

// TestAsyncCacheConvergesWithoutOverflow: with a default-capacity ring,
// an async cache simply lags and catches up — after quiescing it is
// indistinguishable from a from-scratch build.
func TestAsyncCacheConvergesWithoutOverflow(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk, apiserver.WithAsyncWatch())
	alloc := resource.List{resource.Memory: 64 * resource.GiB, resource.CPU: 8000, resource.EPCPages: 30000}
	for i := 0; i < 4; i++ {
		if err := srv.RegisterNode(&api.Node{
			Name: fmt.Sprintf("n%d", i), Capacity: alloc.Clone(), Allocatable: alloc.Clone(), Ready: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(clk, srv, nil, Config{Name: "s", Policy: Binpack{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer srv.Close()

	for i := 0; i < 500; i++ {
		pod := &api.Pod{
			Name: fmt.Sprintf("p%04d", i),
			Spec: api.PodSpec{
				SchedulerName: "s",
				Containers: []api.Container{{
					Name:      "main",
					Resources: api.Requirements{Requests: resource.List{resource.Memory: resource.GiB, resource.EPCPages: 10}},
				}},
			},
		}
		if err := srv.CreatePod(pod); err != nil {
			t.Fatal(err)
		}
		if err := srv.Bind(pod.Name, fmt.Sprintf("n%d", i%4)); err != nil {
			t.Fatal(err)
		}
	}
	srv.QuiesceWatch()
	viewsEqual(t, s.Cache().Snapshot(), s.BuildView(), "async converged")
	st := srv.WatchStats()
	if st.PerSubscriber[0].Resyncs != 0 {
		t.Fatalf("default-capacity ring overflowed: %+v", st.PerSubscriber[0])
	}
	if st.PerSubscriber[0].Delivered == 0 {
		t.Fatal("no events delivered to the cache")
	}
}
