package core

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// ShardedSchedulers runs N scheduler instances over one API server — the
// paper's "multiple schedulers can be deployed concurrently" (§V-B),
// realised as an Omega-style shared-state design: every member plans
// optimistically against a snapshot of the shared event-driven cache,
// and the API server's admission-checked conditional Bind is the
// transaction commit that decides races. A member that loses gets
// ErrOutdated/ErrConflict, keeps the pod pending, and retries next round
// from a snapshot that has already absorbed the winner's events.
//
// The fleet shares one ClusterCache (member 0 owns it): the event
// stream is identical for every member, so per-member caches would hold
// identical state while multiplying the watch fan-out and per-event
// apply work by N. Shared state lives in the cache; per-member
// optimism lives in the *snapshots* each pass plans against — in
// round-robin mode captured for all members before any pass runs
// (mutually stale by construction), in concurrent mode captured at each
// pass's start.
//
// Work partitioning: pods are sharded onto members by an FNV-1a hash of
// the pod name, stamped into Spec.SchedulerName at submission (Assign).
// Each pod therefore has exactly one owner — members never duplicate
// placement work or burn their per-pass budget re-attempting pods a peer
// just bound, which a single shared queue would cause (every member scans
// the same queue head). What stays shared — and contended — is node
// capacity: that is where the conflicts the admission check arbitrates
// come from. The alternative (one shared queue, first-binder-wins) is
// strictly worse here because the §IV queue is FCFS: all members would
// walk the same prefix in the same order.
//
// Two execution modes:
//
//   - Deterministic round-robin (Concurrent off): RunRound snapshots
//     every member's cache first, then runs the members' passes
//     sequentially, each against its round-start view. Within a round the
//     views are mutually stale — member k does not see members 0..k-1's
//     binds — which models optimistic concurrency exactly, yet everything
//     happens on the simulation clock's goroutine, so runs are
//     reproducible bit for bit and the cache≡rebuild and determinism
//     property tests extend to N > 1.
//   - Concurrent (real goroutines, for benchmarks and -race hammering):
//     RunRound launches every member's pass on its own goroutine and
//     waits. Races are real; safety is still guaranteed by admission, but
//     conflict counts become nondeterministic.
type ShardedSchedulers struct {
	clk        clock.Clock
	members    []*Scheduler
	concurrent bool

	mu   sync.Mutex
	stop func()
}

// ShardIndex returns the member index serving podName in an n-way shard:
// FNV-1a of the name modulo n. Deterministic across runs and processes.
func ShardIndex(podName string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(podName))
	return int(h.Sum32() % uint32(n))
}

// NewSharded builds n scheduler instances over one API server. Member i
// takes the identity cfg.Name + "-i"; pods select their member via
// Spec.SchedulerName (use Assign or ShardFor). cfg applies to every
// member. concurrent selects real-goroutine rounds (see the type
// comment).
func NewSharded(clk clock.Clock, srv *apiserver.Server, db *tsdb.DB, cfg Config, n int, concurrent bool) (*ShardedSchedulers, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: sharded schedulers need n >= 1, got %d", n)
	}
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: scheduler name required")
	}
	ss := &ShardedSchedulers{clk: clk, concurrent: concurrent}
	for i := 0; i < n; i++ {
		mcfg := cfg
		mcfg.Name = fmt.Sprintf("%s-%d", cfg.Name, i)
		// Member 0 builds the cluster cache; the rest share it. Every
		// member sees the identical event stream, so private caches
		// would hold identical state while multiplying the per-event
		// apply work (and the watch fan-out) by the fleet size.
		var donor *Scheduler
		if i > 0 {
			donor = ss.members[0]
		}
		m, err := newScheduler(clk, srv, db, mcfg, donor)
		if err != nil {
			for _, built := range ss.members {
				built.Close()
			}
			return nil, err
		}
		ss.members = append(ss.members, m)
	}
	return ss, nil
}

// Members exposes the scheduler instances (for tests and stats).
func (ss *ShardedSchedulers) Members() []*Scheduler { return ss.members }

// ShardFor returns the member identity (SchedulerName) serving podName.
func (ss *ShardedSchedulers) ShardFor(podName string) string {
	return ss.members[ShardIndex(podName, len(ss.members))].Name()
}

// Assign stamps the pod with its owning member's identity. Call before
// CreatePod.
func (ss *ShardedSchedulers) Assign(pod *api.Pod) {
	pod.Spec.SchedulerName = ss.ShardFor(pod.Name)
}

// RunRound executes one pass of every member and returns the total pods
// bound. In round-robin mode all views are captured before any member
// binds, so members race exactly as optimistic concurrent schedulers do —
// deterministically; in concurrent mode the passes really run in
// parallel.
func (ss *ShardedSchedulers) RunRound() int {
	if ss.concurrent {
		var total int64
		var wg sync.WaitGroup
		for _, m := range ss.members {
			m := m
			wg.Add(1)
			go func() {
				defer wg.Done()
				atomic.AddInt64(&total, int64(m.ScheduleOnce()))
			}()
		}
		wg.Wait()
		return int(total)
	}
	views := make([]*ClusterView, len(ss.members))
	for i, m := range ss.members {
		// Sync every member's persistent view before any pass runs: member
		// k's view must not include members 0..k-1's binds from this
		// round. Each member owns its incremental view, so the round-start
		// capture costs O(nodes changed since the member's last round)
		// instead of N full cache snapshots.
		views[i] = m.syncedView()
	}
	bound := 0
	for i, m := range ss.members {
		bound += m.schedulePass(views[i])
	}
	return bound
}

// Start launches the periodic round loop on the members' configured
// interval (they share one Config, so one ticker drives the fleet —
// member passes within a round stay back-to-back, preserving the
// round-start staleness model).
func (ss *ShardedSchedulers) Start() {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.stop != nil {
		return
	}
	ss.stop = clock.Periodic(ss.clk, ss.members[0].cfg.Interval, func() { ss.RunRound() })
}

// Stop halts the round loop.
func (ss *ShardedSchedulers) Stop() {
	ss.mu.Lock()
	stop := ss.stop
	ss.stop = nil
	ss.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// Close stops the loop and detaches every member from its event sources.
func (ss *ShardedSchedulers) Close() {
	ss.Stop()
	for _, m := range ss.members {
		m.Close()
	}
}

// Stats returns the members' counters summed.
func (ss *ShardedSchedulers) Stats() Stats {
	var total Stats
	for _, m := range ss.members {
		total.add(m.Stats())
	}
	return total
}

// MemberStats returns each member's counters, in member order.
func (ss *ShardedSchedulers) MemberStats() []Stats {
	out := make([]Stats, len(ss.members))
	for i, m := range ss.members {
		out[i] = m.Stats()
	}
	return out
}
