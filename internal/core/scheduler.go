package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/influxql"
	"github.com/sgxorch/sgxorch/internal/monitor"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// Defaults for the scheduling loop.
const (
	// DefaultInterval is the period of the scheduling pass; "the
	// scheduler periodically checks for the possibility to schedule"
	// queued jobs (§IV).
	DefaultInterval = 5 * time.Second
	// DefaultWindow is the sliding metric window of Listing 1 (25 s).
	DefaultWindow = 25 * time.Second
)

// perPodEPCQuery and perPodMemQuery are the inner query of Listing 1 and
// its Heapster twin: per-(pod, node) peak usage over the sliding window.
// The per-node totals of Listing 1 are the GROUP BY nodename sum of these
// rows, which the scheduler folds together with request data per §IV.
const (
	perPodEPCQuery = `SELECT MAX(value) AS epc FROM "sgx/epc" WHERE value <> 0 AND time >= now() - 25s GROUP BY pod_name, nodename`
	perPodMemQuery = `SELECT MAX(value) AS mem FROM "memory/usage" WHERE value <> 0 AND time >= now() - 25s GROUP BY pod_name, nodename`
)

// Config parameterises a Scheduler.
type Config struct {
	// Name is the scheduler identity pods select via
	// Spec.SchedulerName — multiple schedulers can serve one cluster
	// concurrently (§V-B).
	Name   string
	Policy Policy
	// Interval between scheduling passes (DefaultInterval when zero).
	Interval time.Duration
	// Window is the sliding metric window (DefaultWindow when zero).
	Window time.Duration
	// MetricsLag is how long after a pod starts the scheduler keeps
	// charging max(measured, requested) before trusting measurements
	// alone; defaults to Window.
	MetricsLag time.Duration
	// UseMetrics enables usage-aware scheduling; false reproduces the
	// request-only accounting of the default Kubernetes scheduler.
	UseMetrics bool
}

// Stats counts scheduler activity for tests and benchmarks.
type Stats struct {
	Passes        int
	Bound         int
	Unschedulable int
}

// Scheduler is one SGX-aware scheduler instance. It is "packaged as a
// Kubernetes pod" in the paper (§V-B); here it attaches to the API server
// and the time-series database directly.
type Scheduler struct {
	clk clock.Clock
	srv *apiserver.Server
	db  *tsdb.DB
	cfg Config

	epcQuery *influxql.Query
	memQuery *influxql.Query

	mu    sync.Mutex
	stop  func()
	stats Stats
}

// New creates a scheduler. The database may be nil when UseMetrics is
// false.
func New(clk clock.Clock, srv *apiserver.Server, db *tsdb.DB, cfg Config) (*Scheduler, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: scheduler name required")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("core: policy required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MetricsLag <= 0 {
		cfg.MetricsLag = cfg.Window
	}
	if cfg.UseMetrics && db == nil {
		return nil, fmt.Errorf("core: UseMetrics requires a metrics database")
	}
	if cfg.Window%time.Millisecond != 0 {
		return nil, fmt.Errorf("core: window %v has sub-millisecond precision", cfg.Window)
	}
	s := &Scheduler{clk: clk, srv: srv, db: db, cfg: cfg}

	var err error
	if s.epcQuery, err = influxql.Parse(windowed(perPodEPCQuery, cfg.Window)); err != nil {
		return nil, fmt.Errorf("core: parsing EPC query: %w", err)
	}
	if s.memQuery, err = influxql.Parse(windowed(perPodMemQuery, cfg.Window)); err != nil {
		return nil, fmt.Errorf("core: parsing memory query: %w", err)
	}
	return s, nil
}

// windowed rewrites the default 25 s window when configured differently.
func windowed(q string, w time.Duration) string {
	if w == DefaultWindow {
		return q
	}
	return replaceWindow(q, w)
}

func replaceWindow(q string, w time.Duration) string {
	// The queries embed exactly one "- 25s" window term.
	const def = "now() - 25s"
	out := ""
	for i := 0; i+len(def) <= len(q); i++ {
		if q[i:i+len(def)] == def {
			out = q[:i] + "now() - " + formatWindow(w) + q[i+len(def):]
			break
		}
	}
	if out == "" {
		return q
	}
	return out
}

// formatWindow renders w as an exact InfluxQL duration literal. Whole
// seconds keep the paper's "25s" shape; fractional windows render at
// millisecond precision instead of being truncated (a 1500ms window used
// to become "1s" and 500ms became "0s"). New rejects sub-millisecond
// remainders, so this loses nothing.
func formatWindow(w time.Duration) string {
	if w%time.Second == 0 {
		return fmt.Sprintf("%ds", w/time.Second)
	}
	return fmt.Sprintf("%dms", w/time.Millisecond)
}

// Name returns the scheduler identity.
func (s *Scheduler) Name() string { return s.cfg.Name }

// Stats returns a copy of the activity counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Start launches the periodic scheduling loop.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = clock.Periodic(s.clk, s.cfg.Interval, func() { s.ScheduleOnce() })
}

// Stop halts the loop.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	stop := s.stop
	s.stop = nil
	s.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// ScheduleOnce runs a single §IV pass: snapshot the FCFS pending queue,
// fetch node state and usage metrics, filter infeasible job-node
// combinations, place with the policy, and bind. It returns the number
// of pods bound.
//
// The pending walk takes shallow pod snapshots under the API server lock
// (one struct copy each — specs are immutable after creation, so the
// copies are consistent) and releases it before any policy work, so a
// slow placement pass never stalls concurrent schedulers or kubelets.
func (s *Scheduler) ScheduleOnce() int {
	s.mu.Lock()
	s.stats.Passes++
	s.mu.Unlock()

	var pending []api.Pod
	s.srv.VisitPending(s.cfg.Name, func(pod *api.Pod) bool {
		pending = append(pending, *pod)
		return true
	})
	if len(pending) == 0 {
		return 0
	}

	view := s.BuildView()
	bound, unschedulable := 0, 0
	candidates := make([]*NodeView, 0, len(view.Nodes))
	for i := range pending {
		pod := &pending[i]
		req := pod.TotalRequests()
		candidates = candidates[:0]
		for _, n := range view.Nodes {
			if n.Fits(req) {
				candidates = append(candidates, n)
			}
		}
		nodeName, ok := s.cfg.Policy.Select(pod, candidates, view)
		if !ok {
			// Not placeable now: the pod stays queued and is retried
			// next pass, preserving FCFS priority without head-of-line
			// blocking the rest of the queue.
			unschedulable++
			continue
		}
		if err := s.srv.Bind(pod.Name, nodeName); err != nil {
			// Bind conflicts (e.g. a concurrent scheduler) are skipped;
			// the next pass re-evaluates.
			continue
		}
		// Commit so later decisions in this pass see the node's reduced
		// headroom.
		view.Commit(nodeName, req)
		bound++
	}
	s.mu.Lock()
	s.stats.Bound += bound
	s.stats.Unschedulable += unschedulable
	s.mu.Unlock()
	return bound
}

// BuildView snapshots schedulable nodes, charging each with the fused
// usage of its live pods (measured usage × declared requests per §IV:
// "it takes their memory allocation requests into account ... At the same
// time, it fetches accurate, up-to-date metrics about memory usage across
// all nodes").
func (s *Scheduler) BuildView() *ClusterView {
	measuredEPC, measuredMem := s.queryUsage()
	now := s.clk.Now()

	view := &ClusterView{}
	nodeByName := make(map[string]*NodeView)
	for _, n := range s.srv.ListNodes() {
		if n.Unschedulable || !n.Ready {
			continue
		}
		nv := &NodeView{
			Name:        n.Name,
			SGX:         n.HasSGX(),
			Allocatable: n.Allocatable.Clone(),
			Used:        resource.List{},
			FreeDevices: n.Allocatable.Get(resource.EPCPages),
		}
		view.Nodes = append(view.Nodes, nv)
		nodeByName[n.Name] = nv
	}

	s.srv.VisitPods(func(p *api.Pod) bool {
		if p.Spec.NodeName == "" || p.IsTerminal() {
			return true
		}
		nv, ok := nodeByName[p.Spec.NodeName]
		if !ok {
			return true
		}
		req := p.TotalRequests()
		k := usageKey{pod: p.Name, node: p.Spec.NodeName}
		memBytes, epcPages := podUsage(p, req, measuredMem[k], measuredEPC[k],
			now, s.cfg.MetricsLag, s.cfg.UseMetrics)
		nv.Used[resource.Memory] += memBytes
		nv.Used[resource.EPCPages] += epcPages
		// Device items are reserved by request for the pod's lifetime.
		nv.FreeDevices -= req.Get(resource.EPCPages)
		return true
	})
	view.sortNodes()
	return view
}

// usageKey identifies one measured series the way Listing 1's GROUP BY
// pod_name, nodename intends. Keying by pod name alone lets a stale
// series from a node the pod no longer runs on (e.g. after a drain)
// silently override the live measurement.
type usageKey struct {
	pod  string
	node string
}

// queryUsage runs the sliding-window queries and returns per-(pod, node)
// peak usage in bytes.
func (s *Scheduler) queryUsage() (epc, mem map[usageKey]float64) {
	epc = make(map[usageKey]float64)
	mem = make(map[usageKey]float64)
	if !s.cfg.UseMetrics {
		return epc, mem
	}
	if res, err := influxql.Run(s.db, s.epcQuery); err == nil {
		for _, row := range res.Rows {
			epc[usageKey{pod: row.Tags[monitor.TagPod], node: row.Tags[monitor.TagNode]}] = row.Value
		}
	}
	if res, err := influxql.Run(s.db, s.memQuery); err == nil {
		for _, row := range res.Rows {
			mem[usageKey{pod: row.Tags[monitor.TagPod], node: row.Tags[monitor.TagNode]}] = row.Value
		}
	}
	return epc, mem
}
