package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/influxql"
	"github.com/sgxorch/sgxorch/internal/monitor"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/telemetry"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// Defaults for the scheduling loop.
const (
	// DefaultInterval is the period of the scheduling pass; "the
	// scheduler periodically checks for the possibility to schedule"
	// queued jobs (§IV).
	DefaultInterval = 5 * time.Second
	// DefaultWindow is the sliding metric window of Listing 1 (25 s).
	DefaultWindow = 25 * time.Second
)

// perPodPeakQuery builds the inner query of Listing 1 (and its Heapster
// twin) through the influxql AST: per-(pod, node) peak non-zero usage
// over the sliding window. Building the AST directly — instead of
// substituting the window into a query string — means the window term is
// set structurally, so rewording the query can never silently keep a
// default window. The per-node totals of Listing 1 are the GROUP BY
// nodename sum of these rows, which the scheduler folds together with
// request data per §IV.
func perPodPeakQuery(measurement, alias string, window time.Duration) *influxql.Query {
	return &influxql.Query{
		Field:  influxql.Field{Func: influxql.AggMax, Arg: "value", Alias: alias},
		Source: influxql.Source{Measurement: measurement},
		Where: []influxql.Condition{
			{Subject: "value", Op: influxql.OpNeq, Number: 0},
			{Subject: "time", Op: influxql.OpGte, Offset: window, IsTime: true},
		},
		GroupBy: []string{monitor.TagPod, monitor.TagNode},
	}
}

// Config parameterises a Scheduler.
type Config struct {
	// Name is the scheduler identity pods select via
	// Spec.SchedulerName — multiple schedulers can serve one cluster
	// concurrently (§V-B).
	Name   string
	Policy Policy
	// Interval between scheduling passes (DefaultInterval when zero).
	Interval time.Duration
	// Window is the sliding metric window (DefaultWindow when zero).
	Window time.Duration
	// MetricsLag is how long after a pod starts the scheduler keeps
	// charging max(measured, requested) before trusting measurements
	// alone; defaults to Window.
	MetricsLag time.Duration
	// UseMetrics enables usage-aware scheduling; false reproduces the
	// request-only accounting of the default Kubernetes scheduler.
	UseMetrics bool
	// MaxBindsPerPass bounds the successful bindings of one scheduling
	// pass (0 = unbounded). Real schedulers have finite per-cycle
	// throughput; bounding a pass makes that throughput explicit, which is
	// what lets the sharded multi-scheduler experiments measure how
	// adding schedulers scales backlog draining.
	MaxBindsPerPass int
	// MaxPendingPerPass bounds how many queued pods one pass copies out of
	// the API server and attempts to place (0 = all). With a 100k-deep
	// backlog a pass would otherwise copy the whole queue every interval
	// only to run out of MaxBindsPerPass budget after a fraction of it;
	// the window keeps the per-pass copy O(window) while priority-then-
	// FCFS order guarantees the head of the queue is always in it.
	MaxPendingPerPass int
	// PercentageNodesToScore engages sampled scoring: a pod's feasibility
	// search stops after finding numFeasibleNodesToFind(pct, ...)
	// candidates via the incremental view's node index instead of
	// scanning every node. 0 selects the adaptive kube-scheduler-style
	// default (full scan at <=100 nodes, 50% shrinking to a 5% floor
	// above); >=100 forces a full scan. Sampling only applies to passes
	// planning on an incremental view (the default for ScheduleOnce);
	// explicitly supplied plain views always scan fully.
	PercentageNodesToScore int
	// MinFeasibleNodesToFind floors the sample size
	// (DefaultMinFeasibleNodesToFind when zero).
	MinFeasibleNodesToFind int
	// Gang attaches a gang-scheduling director: the policy's profile is
	// cloned and the director's PreFilter/Permit plugins appended, so
	// pod-group members reserve conditionally and commit at quorum
	// instead of binding individually. A sharded fleet must pass the
	// same director to every member — quorum is cluster-wide.
	Gang *GangDirector
	// Classes attaches a workload-class registry (classify.go): each
	// pending pod is classified and routed through its class's own
	// pipeline, sampling bounds and preemption gate; unclassified pods
	// take the Policy pipeline above with this Config's bounds,
	// bit-identical to a scheduler with Classes nil. The scheduler
	// clones the registry's pipelines for itself (and threads Gang's
	// plugins through all of them), so one registry value can safely
	// serve a whole sharded fleet.
	Classes *ClassRegistry
	// Telemetry attaches a metrics registry (internal/telemetry): the
	// scheduler records pass/stage duration histograms, per-class
	// outcome counters and a per-pass trace. Nil disables telemetry at
	// zero cost — no clock reads, no atomics, no allocations are added
	// to the pass (pinned by the alloc guard in telemetry_core_test.go).
	// Sharded fleet members sharing one registry aggregate into the
	// same series.
	Telemetry *telemetry.Registry
	// Trace is the pass-trace ring the scheduler records into. Nil with
	// Telemetry set creates a private DefaultTraceRingSize ring; a
	// sharded fleet can pass one shared ring so its members' traces
	// interleave chronologically (traces carry the scheduler name).
	Trace *telemetry.TraceRing
	// TraceDetailEvery samples detailed tracing: every Nth pass
	// additionally times the per-pod prefilter/filter/score/permit
	// stages and breaks prefilter/score/permit down per plugin
	// (DefaultTraceDetailEvery when 0; negative disables detail).
	// Undetailed passes still record pass-level spans (snapshot-sync,
	// preemption-plan, bind) and every counter — detail sampling is
	// what keeps the instrumented pass within a few percent of the
	// uninstrumented one.
	TraceDetailEvery int
}

// Stats counts scheduler activity for tests and benchmarks.
type Stats struct {
	Passes        int
	Bound         int
	Unschedulable int
	// Preemptions counts scheduling decisions that evicted lower-priority
	// victims to make room; Victims counts the pods evicted by them.
	Preemptions int
	Victims     int
	// Conflicts counts binds the API server refused because this
	// scheduler's view was stale (a concurrent scheduler won the race, or
	// the node was cordoned mid-pass). Conflicted pods stay pending and
	// retry on the next pass from a refreshed cache.
	Conflicts int
	// Sampled counts pods whose candidate search used the indexed
	// sampling path instead of a full node scan (see
	// Config.PercentageNodesToScore).
	Sampled int
	// Gated counts pods a PreFilter plugin rejected before any per-node
	// work (e.g. a gang whose remaining members cannot fit this pass).
	Gated int
	// Held counts successful conditional reservations (gang permits)
	// taken in place of immediate binds.
	Held int
	// ByClass breaks the pass outcomes down per workload class (indexed
	// by class slot; slot 0 is the unclassified default). A fixed array,
	// not a map, so Stats stays a plain value copy.
	ByClass [numClassSlots]ClassStats
}

// ClassStats is the per-workload-class slice of Stats.
type ClassStats struct {
	Bound         int
	Unschedulable int
	// Preemptions/Victims count evictions *inflicted by* this class's
	// pods (the preemptor side; victims are attributed to the class that
	// displaced them).
	Preemptions int
	Victims     int
	// Held counts this class's conditional gang reservations.
	Held int
}

// Class returns the per-class counters for c (ClassUnspecified — and any
// unknown string — reports the default-pipeline slice).
func (s *Stats) Class(c api.WorkloadClass) ClassStats {
	return s.ByClass[classSlot(c)]
}

// add folds other into s (for aggregating sharded scheduler stats).
func (s *Stats) add(other Stats) {
	s.Passes += other.Passes
	s.Bound += other.Bound
	s.Unschedulable += other.Unschedulable
	s.Preemptions += other.Preemptions
	s.Victims += other.Victims
	s.Conflicts += other.Conflicts
	s.Sampled += other.Sampled
	s.Gated += other.Gated
	s.Held += other.Held
	for i := range s.ByClass {
		s.ByClass[i].Bound += other.ByClass[i].Bound
		s.ByClass[i].Unschedulable += other.ByClass[i].Unschedulable
		s.ByClass[i].Preemptions += other.ByClass[i].Preemptions
		s.ByClass[i].Victims += other.ByClass[i].Victims
		s.ByClass[i].Held += other.ByClass[i].Held
	}
}

// Scheduler is one SGX-aware scheduler instance. It is "packaged as a
// Kubernetes pod" in the paper (§V-B); here it attaches to the API server
// and the time-series database directly.
type Scheduler struct {
	clk clock.Clock
	srv *apiserver.Server
	db  *tsdb.DB
	cfg Config

	// epcQuery/memQuery drive the InfluxQL reference read path
	// (BuildView); the scheduling pass itself reads the event-driven
	// cache fed by the streaming aggregator.
	epcQuery *influxql.Query
	memQuery *influxql.Query

	agg   *monitor.WindowMax // nil when UseMetrics is off
	cache *ClusterCache
	// ownsCache marks the member that constructed the cache/aggregator
	// pair. Sharded fleets share one ClusterCache across members — the
	// event stream is identical for every member, so N private caches
	// would just multiply the fan-out apply work by N — and only the
	// owner detaches it on Close.
	ownsCache bool

	// profile is the policy's resolved plugin pipeline (see framework.go):
	// the §IV feasibility filters plus the policy's preference and scoring
	// plugins.
	profile *Profile
	// classes is the scheduler-owned clone of Config.Classes (nil when
	// workload classes are off): per-class pipelines with the gang
	// director's plugins threaded through, consulted per pending pod.
	classes *ClassRegistry

	// passMu serializes scheduling passes; the buffers below are reused
	// across passes so a steady-state pass allocates next to nothing.
	passMu     sync.Mutex
	pendingBuf []api.Pod
	pairBuf    []ReqPair
	infoBuf    PodInfo
	victimBuf  []victimInfo
	simBuf     []*NodeView
	candBuf    []*NodeView
	// view is the scheduler's persistent incremental cluster view: pooled
	// NodeViews plus the candidate index, brought current via
	// cache.SyncView at O(changed nodes) per pass instead of Snapshot's
	// O(cluster) clone.
	view *ClusterView
	// sampleOffset is the rotating start position for sampled candidate
	// searches, advanced by the nodes each search visits so coverage
	// spreads over all eligible nodes across pods and passes. Purely a
	// function of the pass history, so sim-clock runs stay reproducible.
	sampleOffset int

	// metrics/trace are the telemetry handles (nil when disabled); rec
	// is the reusable per-pass trace accumulator and passSeq numbers
	// this scheduler's passes. All guarded by passMu like the buffers
	// above.
	metrics *schedMetrics
	trace   *telemetry.TraceRing
	rec     passRecorder
	passSeq int64

	mu    sync.Mutex
	stop  func()
	stats Stats
}

// New creates a scheduler. The database may be nil when UseMetrics is
// false.
func New(clk clock.Clock, srv *apiserver.Server, db *tsdb.DB, cfg Config) (*Scheduler, error) {
	return newScheduler(clk, srv, db, cfg, nil)
}

// newScheduler builds a scheduler; a non-nil donor shares its cluster
// cache and aggregator instead of constructing private ones (sharded
// fleet members — see ShardedSchedulers).
func newScheduler(clk clock.Clock, srv *apiserver.Server, db *tsdb.DB, cfg Config, donor *Scheduler) (*Scheduler, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: scheduler name required")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("core: policy required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MetricsLag <= 0 {
		cfg.MetricsLag = cfg.Window
	}
	if cfg.UseMetrics && db == nil {
		return nil, fmt.Errorf("core: UseMetrics requires a metrics database")
	}
	if cfg.UseMetrics && cfg.Window > db.Retention() {
		// Beyond retention the InfluxQL reference path clamps to the
		// retention cutoff while the streaming aggregator would not; the
		// two read paths must never be able to diverge.
		return nil, fmt.Errorf("core: window %v exceeds metrics retention %v", cfg.Window, db.Retention())
	}
	if cfg.TraceDetailEvery == 0 {
		cfg.TraceDetailEvery = DefaultTraceDetailEvery
	}
	s := &Scheduler{clk: clk, srv: srv, db: db, cfg: cfg, profile: profileFor(cfg.Policy)}
	if cfg.Telemetry != nil {
		s.metrics = newSchedMetrics(cfg.Telemetry)
		s.trace = cfg.Trace
		if s.trace == nil {
			s.trace = telemetry.NewTraceRing(0)
		}
	}
	if cfg.Gang != nil {
		// Clone before appending: profileFor may have passed through a
		// caller-owned or pooled *Profile shared with other schedulers.
		s.profile = s.profile.clone()
		s.profile.preFilters = append(s.profile.preFilters, cfg.Gang)
		s.profile.permits = append(s.profile.permits, cfg.Gang)
	}
	if cfg.Classes != nil {
		// Own the class pipelines too: profiles carry narrowing scratch
		// and must not be shared across schedulers, and gang plugins must
		// ride every pipeline a gang member could resolve to.
		s.classes = cfg.Classes.cloneFor(cfg.Gang)
	}
	s.epcQuery = perPodPeakQuery(monitor.MeasurementEPC, "epc", cfg.Window)
	s.memQuery = perPodPeakQuery(monitor.MeasurementMemory, "mem", cfg.Window)

	// Wire the event-driven read path: the streaming window-max
	// aggregator backfills from the database and rides its write path;
	// the cluster cache performs the informer handshake and re-fuses
	// pods as their window peaks move. Fleet members adopt their donor's
	// pair: one watch subscription and one apply per event regardless of
	// fleet size.
	if donor != nil {
		s.agg = donor.agg
		s.cache = donor.cache
		return s, nil
	}
	if cfg.UseMetrics {
		s.agg = monitor.NewWindowMax(clk, db, cfg.Window, monitor.MeasurementEPC, monitor.MeasurementMemory)
	}
	s.cache = newClusterCache(clk, srv, s.agg, cfg.MetricsLag, cfg.UseMetrics)
	if s.agg != nil {
		s.agg.SetOnChange(s.cache.onMetric)
	}
	s.ownsCache = true
	return s, nil
}

// Name returns the scheduler identity.
func (s *Scheduler) Name() string { return s.cfg.Name }

// Stats returns a copy of the activity counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Traces returns the retained pass traces, oldest first (nil with
// telemetry disabled). Passes with no pending pods record metrics but
// no trace, so the ring holds passes that actually planned.
func (s *Scheduler) Traces() []telemetry.PassTrace {
	return s.trace.Snapshot()
}

// Start launches the periodic scheduling loop.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = clock.Periodic(s.clk, s.cfg.Interval, func() { s.ScheduleOnce() })
}

// Stop halts the loop.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	stop := s.stop
	s.stop = nil
	s.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// Close stops the loop and detaches the scheduler's cluster cache and
// metrics aggregator from their event sources (fleet members sharing a
// donor's cache leave that to the donor). The scheduler is unusable
// afterwards.
func (s *Scheduler) Close() {
	s.Stop()
	if !s.ownsCache {
		return
	}
	s.cache.Close()
	if s.agg != nil {
		s.agg.Close()
	}
}

// Cache exposes the event-driven cluster cache (for tests and
// benchmarks).
func (s *Scheduler) Cache() *ClusterCache { return s.cache }

// ScheduleOnce runs a single §IV pass: snapshot the priority-then-FCFS
// pending queue, take the cluster cache's O(nodes) snapshot of node state
// and fused usage, run the profile's filter pipeline over job-node
// combinations, place with the preference/scoring plugins, and bind. A
// pod with no feasible node may preempt strictly lower-priority pods
// (see preemption.go); otherwise it stays queued for the next pass. It
// returns the number of pods bound. Pass cost scales with pending pods
// and nodes, not with the total number of bound pods — the cache absorbed
// that per-pod work when the pods' events arrived.
//
// The pending walk takes shallow pod snapshots under the API server lock
// (one struct copy each — specs are immutable after creation, so the
// copies are consistent) and releases it before any policy work, so a
// slow placement pass never stalls concurrent schedulers or kubelets.
func (s *Scheduler) ScheduleOnce() int {
	return s.schedulePass(nil)
}

// syncedView returns the scheduler's persistent incremental view brought
// current — the O(changed) replacement for cache.Snapshot on the pass
// path. The sharded round-robin driver calls it to capture every
// member's round-start view before any member plans.
func (s *Scheduler) syncedView() *ClusterView {
	s.passMu.Lock()
	defer s.passMu.Unlock()
	return s.syncedViewLocked()
}

// syncedViewLocked is syncedView for callers already holding passMu.
func (s *Scheduler) syncedViewLocked() *ClusterView {
	if s.view == nil {
		s.view = s.cache.NewView()
	}
	s.cache.SyncView(s.view)
	return s.view
}

// schedulePass is ScheduleOnce with an optional pre-captured cluster
// view. The sharded round-robin driver (shard.go) passes each member the
// view snapshotted at round start — deliberately stale with respect to
// the other members' binds in the same round — to model optimistic
// shared-state concurrency deterministically under the simulation clock;
// nil plans against a fresh cache snapshot. Bind rejections are a
// first-class outcome: the pass records a conflict, abandons its provably
// stale view (the rest of its plan rests on the same assumptions), and
// leaves the conflicted pod pending. By the time the next pass snapshots
// the cache, it has already absorbed the concurrent winner's PodBound
// event, so the retry plans against reality.
func (s *Scheduler) schedulePass(view *ClusterView) int {
	s.passMu.Lock()
	defer s.passMu.Unlock()
	var rec *passRecorder
	if s.metrics != nil {
		s.passSeq++
		rec = &s.rec
		rec.begin(s.passSeq, s.cfg.TraceDetailEvery)
	}
	detail := rec != nil && rec.detail
	s.mu.Lock()
	s.stats.Passes++
	s.mu.Unlock()

	// VisitPending snapshots the queue order and walks the striped pod
	// state one stripe at a time — pods a concurrent fleet member binds
	// mid-walk are skipped, not handed over stale. MaxPendingPerPass
	// windows the copy so a deep backlog costs O(window), not O(queue).
	pending := s.pendingBuf[:0]
	s.srv.VisitPendingN(s.cfg.Name, s.cfg.MaxPendingPerPass, func(pod *api.Pod) bool {
		pending = append(pending, *pod)
		return true
	})
	s.pendingBuf = pending
	if len(pending) == 0 {
		// Nothing to place, but still drain time-driven cache state: the
		// aggregator's expiry heap and the maturity heap are only emptied
		// by a refresh, and idle is the steady state between job waves —
		// an idle scheduler must not let them grow while metrics flow.
		s.cache.Refresh()
		if rec != nil {
			var empty [numClassSlots]ClassStats
			s.recordPass(rec, 0, &empty, 0, 0, 0, 0)
		}
		return 0
	}

	if view == nil {
		tSync := rec.now()
		view = s.syncedViewLocked()
		rec.stageAdd(stageSync, rec.since(tSync), 1)
	}
	bound, unschedulable, preemptions, victims, conflicts, sampledPods := 0, 0, 0, 0, 0, 0
	gated, held := 0, 0
	var byClass [numClassSlots]ClassStats
	// One-lock-per-pass preemption gate: no pod can preempt unless some
	// live pod sits in a strictly lower tier — or, for classes allowed to
	// take best-effort victims, some declared best-effort pod is bound
	// anywhere. Refreshed after evictions.
	minPrio, anyBound, beBound := s.cache.preemptGate()
	candidates := s.candBuf[:0]
	for i := range pending {
		pod := &pending[i]
		req := pod.TotalRequests()
		// Extract the requested quantities once per pod: the filter
		// plugins run per (pod, node), and walking a slice there beats
		// re-iterating the request map for every node.
		info := &s.infoBuf
		fillPodInfo(info, pod, req, s.pairBuf)
		s.pairBuf = info.Pairs
		// Workload-class resolution: the pod's class selects the pipeline
		// and overrides the sampling bounds and preemption gates; pods
		// without a resolved class profile take the scheduler's own
		// pipeline and Config bounds — the exact pre-class pass.
		prof := s.profile
		pct, minFeasible := s.cfg.PercentageNodesToScore, s.cfg.MinFeasibleNodesToFind
		mayPreempt, takeBE := true, false
		slot := classSlotDefault
		if s.classes != nil {
			var cp *classProfile
			slot, cp = s.classes.resolve(pod)
			if cp != nil {
				prof = cp.profile
				if cp.pct != 0 {
					pct = cp.pct
				}
				if cp.minFeasible != 0 {
					minFeasible = cp.minFeasible
				}
				mayPreempt = cp.mayPreempt
				// Preempting classes may displace declared best-effort
				// pods across tiers — unless they are best-effort
				// themselves (no cannibalising the filler tier).
				takeBE = cp.mayPreempt && slot != classSlotBestEffort
			}
		}
		// Pre-filter stage: per-pod early rejects (and pass-scoped
		// mutations like the gang age boost) before any per-node work.
		// Detailed passes route through the timed pipeline variants;
		// every other pass takes the exact uninstrumented path.
		var tStage time.Time
		if detail {
			tStage = rec.now()
			ok := prof.runPreFilterTimed(info, view, rec)
			rec.stageAdd(stagePreFilter, rec.since(tStage), 1)
			if !ok {
				gated++
				continue
			}
		} else if !prof.runPreFilter(info, view) {
			gated++
			continue
		}
		candidates = candidates[:0]
		if detail {
			tStage = rec.now()
		}
		sampled := false
		if view.indexed() {
			if target := numFeasibleNodesToFind(pct, minFeasible, len(view.Nodes)); target < len(view.Nodes) {
				// Sampled path: walk only the index buckets that can fit
				// the pod, stop after enough feasible candidates. Candidate
				// order differs from the name-sorted full scan (best-fit
				// buckets first), which only matters to order-sensitive
				// tie-breaks — acceptable by construction: sampling itself
				// already trades exhaustive choice for pass cost.
				var visited int
				candidates, visited = view.sampleFeasible(info, prof, target, s.sampleOffset, candidates)
				s.sampleOffset += visited
				sampled = true
				sampledPods++
			}
		}
		if !sampled {
			for _, n := range view.Nodes {
				if prof.Feasible(info, n) {
					candidates = append(candidates, n)
				}
			}
		}
		var nodeName string
		var ok bool
		if detail {
			rec.stageAdd(stageFilter, rec.since(tStage), 1)
			tStage = rec.now()
			nodeName, ok = prof.selectInfoTimed(info, candidates, view, rec)
			rec.stageAdd(stageScore, rec.since(tStage), 1)
		} else {
			nodeName, ok = prof.selectInfo(info, candidates, view)
		}
		if !ok && mayPreempt && ((anyBound && minPrio < info.Priority) || (takeBE && beBound)) {
			// No feasible node: try to make room by evicting strictly
			// lower-priority pods — plus declared best-effort pods when
			// the class may take them (preemption.go). On success the
			// pass continues from a fresh snapshot that reflects the
			// evictions. Preemption planning runs for every pod that
			// failed to place, so — like the per-pod stage timings — its
			// span is only measured on detail-sampled passes: two clock
			// reads per unschedulable pod on every pass would dominate
			// the instrumentation budget on a congested queue.
			var tPreempt time.Time
			if detail {
				tPreempt = rec.now()
			}
			target, evicted, preempted := s.preempt(info, prof, takeBE)
			if detail {
				rec.stageAdd(stagePreempt, rec.since(tPreempt), 1)
			}
			if preempted {
				preemptions++
				victims += evicted
				byClass[slot].Preemptions++
				byClass[slot].Victims += evicted
				view = s.syncedViewLocked()
				minPrio, anyBound, beBound = s.cache.preemptGate()
				// The planner already replayed the pipeline against the
				// predicted post-eviction state, but re-run it against
				// the actual snapshot so a racing mutation can never
				// over-commit the node or bypass a policy veto.
				if n := view.Node(target); n != nil && prof.Feasible(info, n) {
					candidates = append(candidates[:0], n)
					if name, sok := prof.selectInfo(info, candidates, view); sok && name == target {
						nodeName, ok = target, true
					}
				}
			}
		}
		if !ok {
			// Not placeable now: the pod stays queued and is retried
			// next pass, preserving its queue position without
			// head-of-line blocking the rest of the queue.
			unschedulable++
			byClass[slot].Unschedulable++
			continue
		}
		// Permit stage: a plugin may convert the bind into a conditional
		// reservation (gang members wait for quorum) or deny it.
		dec := PermitAllow
		if detail {
			tStage = rec.now()
			dec = prof.runPermitTimed(info, nodeName, rec)
			rec.stageAdd(stagePermit, rec.since(tStage), 1)
		} else {
			dec = prof.runPermit(info, nodeName)
		}
		if dec != PermitAllow {
			if dec == PermitDeny {
				unschedulable++
				byClass[slot].Unschedulable++
				continue
			}
			// PermitWait: take a conditional reservation instead of a
			// bind. The same conflict taxonomy as Bind applies.
			tBind := rec.now()
			err := s.srv.Reserve(pod.Name, nodeName)
			rec.stageAdd(stageBind, rec.since(tBind), 1)
			if err != nil {
				if errors.Is(err, apiserver.ErrConflict) {
					conflicts++
					if errors.Is(err, apiserver.ErrOutdated) {
						break // view is provably stale; end the pass
					}
				}
				continue
			}
			// Charge the view so later decisions this pass see the
			// reserved headroom, exactly as a bind would.
			view.Commit(nodeName, req)
			held++
			byClass[slot].Held++
			// Notify observers (the gang director counts the permit
			// toward quorum and may commit the whole gang). Outside the
			// server critical sections; the pass view is unaffected —
			// a commit emits PodBound events the cache absorbs for the
			// *next* pass.
			prof.notifyReserved(info, nodeName)
			if s.cfg.MaxBindsPerPass > 0 && bound+held >= s.cfg.MaxBindsPerPass {
				break // per-pass throughput budget spent
			}
			continue
		}
		tBind := rec.now()
		err := s.srv.Bind(pod.Name, nodeName)
		rec.stageAdd(stageBind, rec.since(tBind), 1)
		if err != nil {
			if errors.Is(err, apiserver.ErrConflict) {
				conflicts++
				if errors.Is(err, apiserver.ErrOutdated) {
					// A concurrent scheduler won this capacity: the view
					// is provably stale, and every remaining decision
					// rests on the same assumptions — end the pass. The
					// pod stays pending; the next pass snapshots a cache
					// that has already absorbed the winner's events.
					break
				}
				// Other admission refusals (node cordoned mid-pass, or a
				// pod/node incompatibility a custom pipeline failed to
				// filter) may be permanent for *this* pod — skip it
				// rather than head-of-line block the rest of the queue.
				continue
			}
			// Non-conflict errors (e.g. the pod vanished) skip just this
			// pod; the next pass re-evaluates.
			continue
		}
		// Commit so later decisions in this pass see the node's reduced
		// headroom.
		view.Commit(nodeName, req)
		bound++
		byClass[slot].Bound++
		if s.cfg.MaxBindsPerPass > 0 && bound+held >= s.cfg.MaxBindsPerPass {
			break // per-pass throughput budget spent; the rest stays queued
		}
	}
	s.candBuf = candidates
	s.mu.Lock()
	s.stats.Bound += bound
	s.stats.Unschedulable += unschedulable
	s.stats.Preemptions += preemptions
	s.stats.Victims += victims
	s.stats.Conflicts += conflicts
	s.stats.Sampled += sampledPods
	s.stats.Gated += gated
	s.stats.Held += held
	for i := range byClass {
		s.stats.ByClass[i].Bound += byClass[i].Bound
		s.stats.ByClass[i].Unschedulable += byClass[i].Unschedulable
		s.stats.ByClass[i].Preemptions += byClass[i].Preemptions
		s.stats.ByClass[i].Victims += byClass[i].Victims
		s.stats.ByClass[i].Held += byClass[i].Held
	}
	s.mu.Unlock()
	if rec != nil {
		s.recordPass(rec, len(pending), &byClass, gated, conflicts, sampledPods, preemptions)
	}
	return bound
}

// BuildView snapshots schedulable nodes from scratch, charging each with
// the fused usage of its live pods (measured usage × declared requests
// per §IV: "it takes their memory allocation requests into account ... At
// the same time, it fetches accurate, up-to-date metrics about memory
// usage across all nodes"). It walks every pod and runs the Listing 1
// queries through the InfluxQL engine — O(cluster) per call — and is kept
// as the reference implementation the event-driven ClusterCache is
// property-tested against; the scheduling pass itself uses the cache.
func (s *Scheduler) BuildView() *ClusterView {
	measuredEPC, measuredMem := s.queryUsage()
	now := s.clk.Now()

	view := &ClusterView{}
	nodeByName := make(map[string]*NodeView)
	for _, n := range s.srv.ListNodes() {
		if n.Unschedulable || !n.Ready {
			continue
		}
		nv := &NodeView{
			Name:        n.Name,
			SGX:         n.HasSGX(),
			Allocatable: n.Allocatable.Clone(),
			Used:        resource.List{},
			FreeDevices: n.Allocatable.Get(resource.EPCPages),
		}
		view.Nodes = append(view.Nodes, nv)
		nodeByName[n.Name] = nv
	}

	s.srv.VisitPods(func(p *api.Pod) bool {
		if p.Spec.NodeName == "" || p.IsTerminal() {
			return true
		}
		nv, ok := nodeByName[p.Spec.NodeName]
		if !ok {
			return true
		}
		req := p.TotalRequests()
		k := usageKey{pod: p.Name, node: p.Spec.NodeName}
		memBytes, epcPages := podUsage(p, req, measuredMem[k], measuredEPC[k],
			now, s.cfg.MetricsLag, s.cfg.UseMetrics)
		nv.Used[resource.Memory] += memBytes
		nv.Used[resource.EPCPages] += epcPages
		// Device items are reserved by request for the pod's lifetime.
		nv.FreeDevices -= req.Get(resource.EPCPages)
		return true
	})
	// Conditional gang reservations: the pod is still unbound in
	// authoritative state (VisitPods saw no NodeName), but Reserve already
	// committed its capacity on the node. Charge requests directly — a
	// reserved pod has not started, so the fusion above would floor at
	// requests anyway — keeping this reference view equivalent to the
	// event-driven cache's PodPermitHeld accounting.
	s.srv.VisitReservations(func(pod, node, _ string) {
		nv, ok := nodeByName[node]
		if !ok {
			return
		}
		p, err := s.srv.GetPod(pod)
		if err != nil {
			return
		}
		req := p.TotalRequests()
		nv.Used[resource.Memory] += req.Get(resource.Memory)
		nv.Used[resource.EPCPages] += req.Get(resource.EPCPages)
		nv.FreeDevices -= req.Get(resource.EPCPages)
	})
	view.sortNodes()
	return view
}

// usageKey identifies one measured series the way Listing 1's GROUP BY
// pod_name, nodename intends. Keying by pod name alone lets a stale
// series from a node the pod no longer runs on (e.g. after a drain)
// silently override the live measurement.
type usageKey struct {
	pod  string
	node string
}

// queryUsage runs the sliding-window queries and returns per-(pod, node)
// peak usage in bytes.
func (s *Scheduler) queryUsage() (epc, mem map[usageKey]float64) {
	epc = make(map[usageKey]float64)
	mem = make(map[usageKey]float64)
	if !s.cfg.UseMetrics {
		return epc, mem
	}
	if res, err := influxql.Run(s.db, s.epcQuery); err == nil {
		for _, row := range res.Rows {
			epc[usageKey{pod: row.Tags[monitor.TagPod], node: row.Tags[monitor.TagNode]}] = row.Value
		}
	}
	if res, err := influxql.Run(s.db, s.memQuery); err == nil {
		for _, row := range res.Rows {
			mem[usageKey{pod: row.Tags[monitor.TagPod], node: row.Tags[monitor.TagNode]}] = row.Value
		}
	}
	return epc, mem
}
