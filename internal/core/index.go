package core

// Indexed node sets: the candidate-generation structure behind O(sample)
// scheduling passes. An incremental ClusterView (see cache.go SyncView)
// keeps every schedulable node in a two-level index — partitioned by SGX
// capability, then bucketed by the magnitude of the node's free capacity
// on its contended resource (log2 buckets of free memory for every node;
// log2 buckets of effective free EPC for SGX nodes). A pod's candidate
// search starts from the buckets that can possibly fit its request
// instead of scanning view.Nodes: nodes in skipped buckets are *provably*
// infeasible for the default §IV saturation filter, so the index never
// hides a node the full-scan pipeline would accept — the completeness
// property the equivalence tests in sampling_test.go pin.
//
// The index is maintained by exactly the two paths that mutate an
// incremental view: SyncView's per-node reconciliation (bind/terminal/
// metric/node events replayed from the cache's change journal) and the
// pass's own Commit calls. Buckets use swap-remove, so membership moves
// are O(1); within-bucket order is therefore arrival order, which is
// deterministic for deterministic event histories — the property the
// sampling determinism test relies on.

import (
	"math/bits"

	"github.com/sgxorch/sgxorch/internal/resource"
)

// numBuckets covers bucketOf's range: 0 (no free capacity) plus one
// bucket per possible bit length of a positive int64 quantity.
const numBuckets = 65

// Partition indices: standard nodes first, SGX nodes second — the same
// SGX-last order the §IV policies prefer, so a standard pod's walk meets
// non-SGX hardware before it ever touches an SGX node.
const (
	partStandard = 0
	partSGX      = 1
)

// nodeIndex is the per-view candidate index.
type nodeIndex struct {
	parts [2]indexPartition
}

// indexPartition buckets one hardware class. epc is populated only for
// the SGX partition (standard nodes have no EPC to index).
type indexPartition struct {
	mem [numBuckets][]*NodeView
	epc [numBuckets][]*NodeView
}

// bucketOf maps a free quantity to its magnitude bucket: bucket b > 0
// holds quantities in [2^(b-1), 2^b), bucket 0 holds "nothing free".
func bucketOf(free int64) int8 {
	if free <= 0 {
		return 0
	}
	return int8(bits.Len64(uint64(free)))
}

// minBucketFor returns the lowest bucket that can hold a node with free
// capacity >= req. Every node in a lower bucket has free < 2^(minB-1+1)
// <= req, so skipping those buckets can never lose a feasible node.
func minBucketFor(req int64) int {
	if req <= 0 {
		return 0
	}
	return bits.Len64(uint64(req))
}

// memFreeOf is the free capacity the memory index buckets: the §IV
// saturation headroom on memory.
func memFreeOf(n *NodeView) int64 {
	return n.Allocatable.Get(resource.Memory) - n.Used.Get(resource.Memory)
}

// epcEffOf is the effective EPC headroom the EPC index buckets: an SGX
// pod needs both the usage-based EPC headroom and the strict device-item
// headroom, so the index uses their minimum.
func epcEffOf(n *NodeView) int64 {
	eff := n.Allocatable.Get(resource.EPCPages) - n.Used.Get(resource.EPCPages)
	if n.FreeDevices < eff {
		eff = n.FreeDevices
	}
	return eff
}

// insert adds a node to its partition's buckets. The node must not
// already be indexed.
func (ix *nodeIndex) insert(n *NodeView) {
	p := int8(partStandard)
	if n.SGX {
		p = partSGX
	}
	n.idxPart = p
	part := &ix.parts[p]
	n.memBucket = bucketOf(memFreeOf(n))
	part.mem[n.memBucket] = append(part.mem[n.memBucket], n)
	n.memPos = int32(len(part.mem[n.memBucket]) - 1)
	if p == partSGX {
		n.epcBucket = bucketOf(epcEffOf(n))
		part.epc[n.epcBucket] = append(part.epc[n.epcBucket], n)
		n.epcPos = int32(len(part.epc[n.epcBucket]) - 1)
	} else {
		n.epcBucket = -1
	}
}

// remove takes a node out of its partition's buckets (swap-remove; the
// node moved into the vacated slot gets its position fixed up).
func (ix *nodeIndex) remove(n *NodeView) {
	part := &ix.parts[n.idxPart]
	removeFromBucket(&part.mem[n.memBucket], n.memPos, false)
	if n.epcBucket >= 0 {
		removeFromBucket(&part.epc[n.epcBucket], n.epcPos, true)
		n.epcBucket = -1
	}
}

func removeFromBucket(bucket *[]*NodeView, pos int32, epc bool) {
	b := *bucket
	last := len(b) - 1
	moved := b[last]
	b[pos] = moved
	if epc {
		moved.epcPos = pos
	} else {
		moved.memPos = pos
	}
	b[last] = nil
	*bucket = b[:last]
}

// rebucket moves a node between buckets after its free capacity changed.
// The partition must be unchanged (callers handle SGX flips with
// remove+insert).
func (ix *nodeIndex) rebucket(n *NodeView) {
	part := &ix.parts[n.idxPart]
	if mb := bucketOf(memFreeOf(n)); mb != n.memBucket {
		removeFromBucket(&part.mem[n.memBucket], n.memPos, false)
		part.mem[mb] = append(part.mem[mb], n)
		n.memBucket = mb
		n.memPos = int32(len(part.mem[mb]) - 1)
	}
	if n.epcBucket >= 0 {
		if eb := bucketOf(epcEffOf(n)); eb != n.epcBucket {
			removeFromBucket(&part.epc[n.epcBucket], n.epcPos, true)
			part.epc[eb] = append(part.epc[eb], n)
			n.epcBucket = eb
			n.epcPos = int32(len(part.epc[eb]) - 1)
		}
	}
}

// reset empties every bucket, keeping backing arrays for reuse.
func (ix *nodeIndex) reset() {
	for p := range ix.parts {
		part := &ix.parts[p]
		for b := range part.mem {
			clearBucket(&part.mem[b])
			clearBucket(&part.epc[b])
		}
	}
}

func clearBucket(bucket *[]*NodeView) {
	b := *bucket
	for i := range b {
		b[i] = nil
	}
	*bucket = b[:0]
}

// sampleFeasible generates up to limit feasible candidates for pod by
// walking the index's eligible buckets, starting at a rotating offset
// into the eligible sequence and wrapping around. Every visited node runs
// the profile's full filter pipeline, so the returned candidates are a
// subset of what a full scan would accept; because ineligible buckets are
// provably infeasible, a walk that exhausts the sequence (limit >=
// eligible) finds exactly the full-scan feasible set.
//
// Bucket walk order is lowest eligible bucket first — a best-fit bias
// that steers pods toward the tightest nodes that can still hold them —
// and standard pods meet the standard partition before the SGX one,
// matching the §IV SGX-last preference at generation time (the pre-score
// stage still enforces it on whatever is found).
//
// Returns the appended candidate slice and the number of nodes visited;
// the caller advances its rotation offset by the latter so consecutive
// searches start where the last one stopped, spreading coverage over all
// eligible nodes across passes. With a fixed starting offset and a
// deterministic index, the walk is fully deterministic.
func (v *ClusterView) sampleFeasible(pod *PodInfo, prof *Profile, limit, offset int, buf []*NodeView) ([]*NodeView, int) {
	ix := v.idx
	seq := v.seqScratch[:0]
	if pod.SGX {
		minB := minBucketFor(pod.EPCPages)
		part := &ix.parts[partSGX]
		for b := minB; b < numBuckets; b++ {
			if s := part.epc[b]; len(s) > 0 {
				seq = append(seq, s)
			}
		}
	} else {
		var reqMem int64
		for _, pr := range pod.Pairs {
			if pr.Name == resource.Memory {
				reqMem = pr.Qty
			}
		}
		minB := minBucketFor(reqMem)
		for _, p := range [2]int{partStandard, partSGX} {
			part := &ix.parts[p]
			for b := minB; b < numBuckets; b++ {
				if s := part.mem[b]; len(s) > 0 {
					seq = append(seq, s)
				}
			}
		}
	}
	v.seqScratch = seq
	total := 0
	for _, s := range seq {
		total += len(s)
	}
	if total == 0 {
		return buf, 0
	}
	start := offset % total
	visited := 0
	// Phase 1: logical positions [start, total).
	pos := 0
phase1:
	for _, s := range seq {
		if pos+len(s) <= start {
			pos += len(s)
			continue
		}
		from := 0
		if start > pos {
			from = start - pos
		}
		for _, n := range s[from:] {
			visited++
			if prof.Feasible(pod, n) {
				buf = append(buf, n)
				if len(buf) >= limit {
					break phase1
				}
			}
		}
		pos += len(s)
	}
	// Phase 2: wrap around through logical positions [0, start).
	if len(buf) < limit {
		pos = 0
	phase2:
		for _, s := range seq {
			for _, n := range s {
				if pos >= start {
					break phase2
				}
				pos++
				visited++
				if prof.Feasible(pod, n) {
					buf = append(buf, n)
					if len(buf) >= limit {
						break phase2
					}
				}
			}
		}
	}
	return buf, visited
}
