package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/sgxorch/sgxorch/internal/api"
	"github.com/sgxorch/sgxorch/internal/apiserver"
	"github.com/sgxorch/sgxorch/internal/clock"
	"github.com/sgxorch/sgxorch/internal/influxql"
	"github.com/sgxorch/sgxorch/internal/isgx"
	"github.com/sgxorch/sgxorch/internal/kubelet"
	"github.com/sgxorch/sgxorch/internal/machine"
	"github.com/sgxorch/sgxorch/internal/monitor"
	"github.com/sgxorch/sgxorch/internal/resource"
	"github.com/sgxorch/sgxorch/internal/sgx"
	"github.com/sgxorch/sgxorch/internal/tsdb"
)

// testCluster wires a miniature version of the paper's testbed: standard
// nodes, SGX nodes, kubelets, monitoring and one scheduler.
type testCluster struct {
	clk      *clock.Sim
	srv      *apiserver.Server
	db       *tsdb.DB
	sched    *Scheduler
	kubelets []*kubelet.Kubelet
}

type clusterSpec struct {
	stdNodes    int
	sgxNodes    int
	policy      Policy
	useMetrics  bool
	enforcement bool
}

func newTestCluster(t *testing.T, spec clusterSpec) *testCluster {
	t.Helper()
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	db := tsdb.New(clk)

	var kls []*kubelet.Kubelet
	for i := 0; i < spec.stdNodes; i++ {
		m := machine.New(fmt.Sprintf("std-%d", i+1), 64*resource.GiB, 8000)
		kls = append(kls, kubelet.New(clk, srv, m))
	}
	for i := 0; i < spec.sgxNodes; i++ {
		var driverOpts []isgx.Option
		if !spec.enforcement {
			driverOpts = append(driverOpts, isgx.WithoutEnforcement())
		}
		m := machine.New(fmt.Sprintf("sgx-%d", i+1), 8*resource.GiB, 8000,
			machine.WithSGX(sgx.DefaultGeometry(), driverOpts...))
		kls = append(kls, kubelet.New(clk, srv, m))
	}
	for _, kl := range kls {
		if err := kl.Start(); err != nil {
			t.Fatal(err)
		}
	}

	h := monitor.NewHeapster(clk, db, 10*time.Second)
	for _, kl := range kls {
		h.AddSource(kl)
	}
	h.Start()
	ds := monitor.DeployProbes(clk, db, kls, 10*time.Second)

	policy := spec.policy
	if policy == nil {
		policy = Binpack{}
	}
	sched, err := New(clk, srv, db, Config{
		Name:       "sgx-sched",
		Policy:     policy,
		Interval:   5 * time.Second,
		UseMetrics: spec.useMetrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched.Start()

	t.Cleanup(func() {
		sched.Close()
		h.Stop()
		ds.Stop()
		for _, kl := range kls {
			kl.Stop()
		}
	})
	return &testCluster{clk: clk, srv: srv, db: db, sched: sched, kubelets: kls}
}

func (c *testCluster) submit(t *testing.T, pod *api.Pod) {
	t.Helper()
	pod.Spec.SchedulerName = "sgx-sched"
	if err := c.srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
}

func epcJob(name string, pages int64, allocBytes int64, dur time.Duration) *api.Pod {
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{Containers: []api.Container{{
			Name: "main",
			Resources: api.Requirements{
				Requests: resource.List{resource.Memory: 32 * resource.MiB, resource.EPCPages: pages},
				Limits:   resource.List{resource.EPCPages: pages},
			},
			Workload: api.WorkloadSpec{Kind: api.WorkloadStressEPC, Duration: dur, AllocBytes: allocBytes},
		}}},
	}
}

func memJob(name string, reqBytes, allocBytes int64, dur time.Duration) *api.Pod {
	return &api.Pod{
		Name: name,
		Spec: api.PodSpec{Containers: []api.Container{{
			Name:      "main",
			Resources: api.Requirements{Requests: resource.List{resource.Memory: reqBytes}},
			Workload:  api.WorkloadSpec{Kind: api.WorkloadStressVM, Duration: dur, AllocBytes: allocBytes},
		}}},
	}
}

func TestMixedPlacementRespectsHardware(t *testing.T) {
	c := newTestCluster(t, clusterSpec{stdNodes: 2, sgxNodes: 2, useMetrics: true, enforcement: true})
	c.submit(t, epcJob("sgx-job", 1000, 3*resource.MiB, 30*time.Second))
	c.submit(t, memJob("std-job", resource.GiB, resource.GiB, 30*time.Second))
	c.clk.Advance(10 * time.Second)

	sgxPod, _ := c.srv.GetPod("sgx-job")
	if sgxPod.Spec.NodeName != "sgx-1" && sgxPod.Spec.NodeName != "sgx-2" {
		t.Fatalf("SGX job on %q", sgxPod.Spec.NodeName)
	}
	stdPod, _ := c.srv.GetPod("std-job")
	if stdPod.Spec.NodeName != "std-1" && stdPod.Spec.NodeName != "std-2" {
		t.Fatalf("standard job on %q (must avoid SGX nodes)", stdPod.Spec.NodeName)
	}

	c.clk.Advance(2 * time.Minute)
	for _, name := range []string{"sgx-job", "std-job"} {
		p, _ := c.srv.GetPod(name)
		if p.Status.Phase != api.PodSucceeded {
			t.Fatalf("%s phase = %s (%s)", name, p.Status.Phase, p.Status.Reason)
		}
	}
}

func TestEPCSaturationQueuesFCFS(t *testing.T) {
	c := newTestCluster(t, clusterSpec{sgxNodes: 1, useMetrics: true, enforcement: true})
	// Each job needs just over half the EPC items: they must serialise.
	for i := 0; i < 3; i++ {
		c.submit(t, epcJob(fmt.Sprintf("job-%d", i), 12500, 40*resource.MiB, 30*time.Second))
		c.clk.Advance(time.Second)
	}
	c.clk.Advance(9 * time.Second)

	running := c.srv.ListPods(func(p *api.Pod) bool { return p.Status.Phase == api.PodRunning })
	if len(running) != 1 || running[0].Name != "job-0" {
		t.Fatalf("running = %v, want only job-0", podNames(running))
	}

	c.clk.Advance(5 * time.Minute)
	if !c.srv.AllTerminal() {
		t.Fatal("jobs did not all finish")
	}
	// FCFS: waiting times must be ordered by submission.
	var waits []time.Duration
	for i := 0; i < 3; i++ {
		p, _ := c.srv.GetPod(fmt.Sprintf("job-%d", i))
		if p.Status.Phase != api.PodSucceeded {
			t.Fatalf("%s = %s (%s)", p.Name, p.Status.Phase, p.Status.Reason)
		}
		w, _ := p.WaitingTime()
		waits = append(waits, w)
	}
	if !(waits[0] < waits[1] && waits[1] < waits[2]) {
		t.Fatalf("waits not FCFS-ordered: %v", waits)
	}
}

func TestUsageAwareSchedulerPacksMemoryByUsage(t *testing.T) {
	c := newTestCluster(t, clusterSpec{stdNodes: 1, useMetrics: true, enforcement: true})
	// Over-declaring job: requests 60 GiB, uses 2 GiB.
	c.submit(t, memJob("over", 60*resource.GiB, 2*resource.GiB, 10*time.Minute))
	c.clk.Advance(10 * time.Second)
	// Second job requests 30 GiB: request-based accounting says 60+30 >
	// 64 GiB, but measured usage (2 GiB) frees the headroom once the
	// first pod's metrics mature.
	c.submit(t, memJob("second", 30*resource.GiB, 20*resource.GiB, 10*time.Minute))
	c.clk.Advance(60 * time.Second)

	second, _ := c.srv.GetPod("second")
	if second.Status.Phase != api.PodRunning {
		t.Fatalf("usage-aware scheduler did not pack second job: %s (%s)",
			second.Status.Phase, second.Status.Reason)
	}
	over, _ := c.srv.GetPod("over")
	if over.Status.Phase != api.PodRunning {
		t.Fatalf("first job = %s", over.Status.Phase)
	}
}

func TestRequestOnlySchedulerDoesNotPackByUsage(t *testing.T) {
	c := newTestCluster(t, clusterSpec{stdNodes: 1, useMetrics: false, enforcement: true})
	c.submit(t, memJob("over", 60*resource.GiB, 2*resource.GiB, 10*time.Minute))
	c.clk.Advance(10 * time.Second)
	c.submit(t, memJob("second", 30*resource.GiB, 20*resource.GiB, 10*time.Minute))
	c.clk.Advance(2 * time.Minute)

	second, _ := c.srv.GetPod("second")
	if second.Status.Phase != api.PodPending {
		t.Fatalf("request-only scheduler packed by usage: %s", second.Status.Phase)
	}
}

func TestMaliciousUsageThrottlesAdmissions(t *testing.T) {
	// Enforcement disabled (Fig. 11 "limits disabled"): the malicious
	// pod's measured EPC blocks honest admissions via the usage-aware
	// scheduler.
	c := newTestCluster(t, clusterSpec{sgxNodes: 1, useMetrics: true, enforcement: false})
	half := int64(11968 * 4096)
	c.submit(t, epcJob("malicious", 1, half, 10*time.Hour))
	c.clk.Advance(40 * time.Second) // metrics mature

	c.submit(t, epcJob("honest", 15000, 40*resource.MiB, 30*time.Second))
	c.clk.Advance(60 * time.Second)

	honest, _ := c.srv.GetPod("honest")
	if honest.Status.Phase != api.PodPending {
		t.Fatalf("honest pod = %s, want Pending (blocked by malicious usage)", honest.Status.Phase)
	}
	if got := c.sched.Stats().Unschedulable; got == 0 {
		t.Fatal("scheduler did not record unschedulable attempts")
	}
}

func TestEnforcementKillsMaliciousAndFreesHonest(t *testing.T) {
	// Enforcement enabled (Fig. 11 "limits enabled"): the malicious pod
	// dies at enclave init, the honest pod proceeds.
	c := newTestCluster(t, clusterSpec{sgxNodes: 1, useMetrics: true, enforcement: true})
	half := int64(11968 * 4096)
	c.submit(t, epcJob("malicious", 1, half, 10*time.Hour))
	c.clk.Advance(40 * time.Second)

	mal, _ := c.srv.GetPod("malicious")
	if mal.Status.Phase != api.PodFailed {
		t.Fatalf("malicious pod = %s, want Failed", mal.Status.Phase)
	}

	c.submit(t, epcJob("honest", 15000, 40*resource.MiB, 30*time.Second))
	c.clk.Advance(2 * time.Minute)
	honest, _ := c.srv.GetPod("honest")
	if honest.Status.Phase != api.PodSucceeded {
		t.Fatalf("honest pod = %s (%s)", honest.Status.Phase, honest.Status.Reason)
	}
}

func TestMultipleSchedulersCoexist(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	db := tsdb.New(clk)
	m := machine.New("std-1", 64*resource.GiB, 8000)
	kl := kubelet.New(clk, srv, m)
	if err := kl.Start(); err != nil {
		t.Fatal(err)
	}
	defer kl.Stop()

	mk := func(name string, policy Policy) *Scheduler {
		s, err := New(clk, srv, db, Config{Name: name, Policy: policy, Interval: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		t.Cleanup(s.Close)
		return s
	}
	a := mk("sched-a", Binpack{})
	b := mk("sched-b", Spread{})

	podA := memJob("pod-a", resource.GiB, resource.GiB, 10*time.Second)
	podA.Spec.SchedulerName = "sched-a"
	podB := memJob("pod-b", resource.GiB, resource.GiB, 10*time.Second)
	podB.Spec.SchedulerName = "sched-b"
	if err := srv.CreatePod(podA); err != nil {
		t.Fatal(err)
	}
	if err := srv.CreatePod(podB); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)

	if got := a.Stats().Bound; got != 1 {
		t.Fatalf("sched-a bound %d", got)
	}
	if got := b.Stats().Bound; got != 1 {
		t.Fatalf("sched-b bound %d", got)
	}
}

func TestSchedulerConfigValidation(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	if _, err := New(clk, srv, nil, Config{Policy: Binpack{}}); err == nil {
		t.Fatal("missing name accepted")
	}
	if _, err := New(clk, srv, nil, Config{Name: "s"}); err == nil {
		t.Fatal("missing policy accepted")
	}
	if _, err := New(clk, srv, nil, Config{Name: "s", Policy: Binpack{}, UseMetrics: true}); err == nil {
		t.Fatal("UseMetrics without db accepted")
	}
	s, err := New(clk, srv, nil, Config{Name: "s", Policy: Binpack{}})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Interval != DefaultInterval || s.cfg.Window != DefaultWindow || s.cfg.MetricsLag != DefaultWindow {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}
}

func TestCustomWindowBuildsExactOffset(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	db := tsdb.New(clk)
	s, err := New(clk, srv, db, Config{
		Name: "s", Policy: Binpack{}, UseMetrics: true, Window: 40 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.epcQuery.Source.Sub != nil {
		t.Fatal("per-pod query should not be nested")
	}
	found := false
	for _, c := range s.epcQuery.Where {
		if c.IsTime && c.Offset == 40*time.Second {
			found = true
		}
	}
	if !found {
		t.Fatalf("window not applied: %+v", s.epcQuery.Where)
	}
}

// TestBuiltQueriesMatchListing1 pins the AST-built default queries to the
// paper's Listing 1 text: constructing them structurally must be
// observationally identical to parsing the inner query verbatim.
func TestBuiltQueriesMatchListing1(t *testing.T) {
	cases := []struct {
		query string
		built *influxql.Query
	}{
		{`SELECT MAX(value) AS epc FROM "sgx/epc" WHERE value <> 0 AND time >= now() - 25s GROUP BY pod_name, nodename`,
			perPodPeakQuery(monitor.MeasurementEPC, "epc", DefaultWindow)},
		{`SELECT MAX(value) AS mem FROM "memory/usage" WHERE value <> 0 AND time >= now() - 25s GROUP BY pod_name, nodename`,
			perPodPeakQuery(monitor.MeasurementMemory, "mem", DefaultWindow)},
	}
	for _, tc := range cases {
		parsed, err := influxql.Parse(tc.query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parsed, tc.built) {
			t.Fatalf("built query diverges from Listing 1:\nbuilt:  %+v\nparsed: %+v", tc.built, parsed)
		}
	}
}

// TestUsageKeyedByPodAndNode reproduces the drained-node override: the
// database holds series for the same pod name on two nodes (the stale one
// sorting after the live one, which is the order that used to win under
// pod-name-only keying), and the view must charge each node only its own
// measurement.
func TestUsageKeyedByPodAndNode(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	db := tsdb.New(clk)
	for _, name := range []string{"a-live", "z-stale"} {
		if err := srv.RegisterNode(&api.Node{
			Name:        name,
			Capacity:    resource.List{resource.Memory: 64 * resource.GiB},
			Allocatable: resource.List{resource.Memory: 64 * resource.GiB},
			Ready:       true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(clk, srv, db, Config{
		Name: "s", Policy: Binpack{}, UseMetrics: true, MetricsLag: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	pod := memJob("dup", resource.GiB, resource.GiB, time.Hour)
	pod.Spec.SchedulerName = "s"
	if err := srv.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind("dup", "a-live"); err != nil {
		t.Fatal(err)
	}
	if err := srv.MarkRunning("dup"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second) // past MetricsLag: measurements only

	// Fresh points, both inside the window: the pod's live series on
	// a-live reports 1 GiB; a stale series under the same pod name on
	// z-stale reports 32 GiB.
	live := float64(resource.GiB)
	stale := float64(32 * resource.GiB)
	db.WriteNow(monitor.MeasurementMemory, tsdb.Tags{monitor.TagPod: "dup", monitor.TagNode: "a-live"}, live)
	db.WriteNow(monitor.MeasurementMemory, tsdb.Tags{monitor.TagPod: "dup", monitor.TagNode: "z-stale"}, stale)

	view := s.BuildView()
	if got := view.Node("a-live").Used.Get(resource.Memory); got != int64(live) {
		t.Fatalf("a-live used = %d, want %d (its own series)", got, int64(live))
	}
	if got := view.Node("z-stale").Used.Get(resource.Memory); got != 0 {
		t.Fatalf("z-stale used = %d, want 0 (no pod runs there)", got)
	}
}

// TestSubSecondWindowsBuildExactOffsets: windows that used to be
// truncated (or rejected) by the string-substitution path are now carried
// exactly as structural offsets.
func TestSubSecondWindowsBuildExactOffsets(t *testing.T) {
	for _, w := range []time.Duration{1500 * time.Millisecond, 500 * time.Millisecond, 1500 * time.Microsecond} {
		clk := clock.NewSim()
		srv := apiserver.New(clk)
		db := tsdb.New(clk)
		s, err := New(clk, srv, db, Config{
			Name: "s", Policy: Binpack{}, UseMetrics: true, Window: w,
		})
		if err != nil {
			t.Fatalf("window %v: %v", w, err)
		}
		found := false
		for _, c := range s.epcQuery.Where {
			if c.IsTime {
				if c.Offset != w {
					t.Fatalf("window offset = %v, want %v", c.Offset, w)
				}
				found = true
			}
		}
		if !found {
			t.Fatal("no time condition in built query")
		}
	}
}

// TestSeriesCountBoundedAfterChurn replays a churning workload: every
// finished pod's series must be garbage-collected once retention
// elapses, so the database does not grow for the lifetime of the
// cluster.
func TestSeriesCountBoundedAfterChurn(t *testing.T) {
	c := newTestCluster(t, clusterSpec{stdNodes: 1, sgxNodes: 1, useMetrics: true, enforcement: true})
	for wave := 0; wave < 3; wave++ {
		for i := 0; i < 4; i++ {
			c.submit(t, memJob(fmt.Sprintf("w%d-std-%d", wave, i), resource.GiB, resource.GiB, 20*time.Second))
			c.submit(t, epcJob(fmt.Sprintf("w%d-sgx-%d", wave, i), 500, resource.MiB, 20*time.Second))
		}
		c.clk.Advance(time.Minute)
	}
	if !c.srv.AllTerminal() {
		t.Fatal("churn jobs did not finish")
	}
	if got := c.db.SeriesCount(); got == 0 {
		t.Fatal("expected live series right after the churn")
	}
	// Default retention is 10 min and the sweep runs every minute: after
	// 12 idle minutes every series of the terminated pods must be gone.
	c.clk.Advance(12 * time.Minute)
	if got := c.db.SeriesCount(); got != 0 {
		t.Fatalf("SeriesCount = %d after retention, want 0 (series leak)", got)
	}
}

func podNames(pods []*api.Pod) []string {
	out := make([]string, 0, len(pods))
	for _, p := range pods {
		out = append(out, p.Name)
	}
	return out
}

func TestSchedulerRoutesAroundDrainedNode(t *testing.T) {
	c := newTestCluster(t, clusterSpec{sgxNodes: 2, useMetrics: true, enforcement: true})
	// Prime both nodes with one job each so the cluster is warm.
	c.submit(t, epcJob("warm-0", 1000, 3*resource.MiB, 10*time.Minute))
	c.submit(t, epcJob("warm-1", 1000, 3*resource.MiB, 10*time.Minute))
	c.clk.Advance(10 * time.Second)

	// Drain sgx-1: its running pod fails, the node goes NotReady.
	for _, kl := range c.kubelets {
		if kl.NodeName() == "sgx-1" {
			kl.Stop()
		}
	}
	// New jobs must all land on the surviving node.
	for i := 0; i < 3; i++ {
		c.submit(t, epcJob(fmt.Sprintf("after-%d", i), 500, resource.MiB, 30*time.Second))
	}
	c.clk.Advance(30 * time.Second)
	for i := 0; i < 3; i++ {
		p, err := c.srv.GetPod(fmt.Sprintf("after-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if p.Spec.NodeName != "sgx-2" {
			t.Fatalf("after-%d on %q, want sgx-2 (sgx-1 drained)", i, p.Spec.NodeName)
		}
	}
}

func TestWindowBeyondRetentionRejected(t *testing.T) {
	clk := clock.NewSim()
	srv := apiserver.New(clk)
	db := tsdb.New(clk, tsdb.WithRetention(time.Minute))
	if _, err := New(clk, srv, db, Config{
		Name: "s", Policy: Binpack{}, UseMetrics: true, Window: 2 * time.Minute,
	}); err == nil {
		t.Fatal("window beyond retention accepted: streaming and InfluxQL paths could diverge")
	}
	if _, err := New(clk, srv, db, Config{
		Name: "s", Policy: Binpack{}, UseMetrics: true, Window: time.Minute,
	}); err != nil {
		t.Fatalf("window equal to retention rejected: %v", err)
	}
}
