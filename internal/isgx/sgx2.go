package isgx

import (
	"fmt"

	"github.com/sgxorch/sgxorch/internal/sgx"
)

// SGX 2 (EDMM) mediation. The paper identifies its limit-enforcement
// implementation as "the only part of our system ... not yet SGX 2-ready"
// and estimates the port as modest (§VI-G); this is that port: the two
// dynamic-memory ioctls run the same cgroup-keyed limit check as
// __sgx_encl_init before touching the EPC.

// IoctlAugmentPages grows an initialized enclave by n pages (EAUG),
// denying the growth when it would push the owning pod past its
// registered EPC limit.
func (d *Driver) IoctlAugmentPages(e *sgx.Enclave, n int64) error {
	if e == nil || n < 0 {
		return fmt.Errorf("%w: enclave %v, pages %d", ErrInvalidArgument, e, n)
	}
	if d.enforce {
		d.mu.Lock()
		limit, ok := d.limits[e.CgroupPath]
		d.mu.Unlock()
		if ok && d.pkg.PagesForCgroup(e.CgroupPath)+n > limit {
			return fmt.Errorf("%w: cgroup %s at %d pages, +%d exceeds limit %d",
				ErrEnclaveDenied, e.CgroupPath, d.pkg.PagesForCgroup(e.CgroupPath), n, limit)
		}
	}
	return e.AugmentPages(n)
}

// IoctlTrimPages releases up to n pages from an initialized enclave and
// reports how many were released. Trimming never needs a limit check.
func (d *Driver) IoctlTrimPages(e *sgx.Enclave, n int64) (int64, error) {
	if e == nil || n < 0 {
		return 0, fmt.Errorf("%w: enclave %v, pages %d", ErrInvalidArgument, e, n)
	}
	return e.TrimPages(n)
}
