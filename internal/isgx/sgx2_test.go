package isgx

import (
	"errors"
	"testing"

	"github.com/sgxorch/sgxorch/internal/sgx"
)

func newSGX2Driver(opts ...Option) *Driver {
	return New(sgx.NewPackage(sgx.DefaultGeometry(), sgx.WithSGX2()), opts...)
}

func TestAugmentWithinLimit(t *testing.T) {
	d := newSGX2Driver()
	if err := d.IoctlSetLimit("/kubepods/pod", 1000); err != nil {
		t.Fatal(err)
	}
	e, err := d.OpenEnclave(1, "/kubepods/pod", 400)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.IoctlAugmentPages(e, 600); err != nil {
		t.Fatalf("EAUG within limit denied: %v", err)
	}
	if got := d.PagesForCgroup("/kubepods/pod"); got != 1000 {
		t.Fatalf("pages = %d", got)
	}
}

func TestAugmentDeniedOverLimit(t *testing.T) {
	d := newSGX2Driver()
	if err := d.IoctlSetLimit("/kubepods/pod", 1000); err != nil {
		t.Fatal(err)
	}
	e, err := d.OpenEnclave(1, "/kubepods/pod", 400)
	if err != nil {
		t.Fatal(err)
	}
	// The §VI-G port: dynamic growth past the pod's advertised share is
	// denied just like an over-limit EINIT.
	if err := d.IoctlAugmentPages(e, 601); !errors.Is(err, ErrEnclaveDenied) {
		t.Fatalf("over-limit EAUG err = %v, want ErrEnclaveDenied", err)
	}
	// The enclave keeps its prior pages.
	if got := e.Pages(); got != 400 {
		t.Fatalf("pages after denied EAUG = %d", got)
	}
}

func TestAugmentWithoutEnforcement(t *testing.T) {
	d := newSGX2Driver(WithoutEnforcement())
	if err := d.IoctlSetLimit("/kubepods/pod", 10); err != nil {
		t.Fatal(err)
	}
	e, err := d.OpenEnclave(1, "/kubepods/pod", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.IoctlAugmentPages(e, 10000); err != nil {
		t.Fatalf("EAUG with enforcement off = %v", err)
	}
}

func TestTrimThroughDriver(t *testing.T) {
	d := newSGX2Driver()
	e, err := d.OpenEnclave(1, "/kubepods/pod", 500)
	if err != nil {
		t.Fatal(err)
	}
	released, err := d.IoctlTrimPages(e, 200)
	if err != nil || released != 200 {
		t.Fatalf("trim = %d, %v", released, err)
	}
	if got := d.FreePages(); got != 23936-300 {
		t.Fatalf("free = %d", got)
	}
	// After trimming, the pod may burst again within its limit.
	if err := d.IoctlSetLimit("/kubepods/pod", 500); err != nil {
		t.Fatal(err)
	}
	if err := d.IoctlAugmentPages(e, 200); err != nil {
		t.Fatalf("re-burst after trim denied: %v", err)
	}
}

func TestSGX2IoctlValidation(t *testing.T) {
	d := newSGX2Driver()
	if err := d.IoctlAugmentPages(nil, 1); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("nil enclave err = %v", err)
	}
	e, err := d.OpenEnclave(1, "/kubepods/pod", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.IoctlAugmentPages(e, -1); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("negative EAUG err = %v", err)
	}
	if _, err := d.IoctlTrimPages(e, -1); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("negative trim err = %v", err)
	}
	if _, err := d.IoctlTrimPages(nil, 1); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("nil trim err = %v", err)
	}
}

func TestAugmentOnSGX1Driver(t *testing.T) {
	d := New(sgx.NewPackage(sgx.DefaultGeometry()))
	e, err := d.OpenEnclave(1, "/kubepods/pod", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.IoctlAugmentPages(e, 1); !errors.Is(err, sgx.ErrSGX1Only) {
		t.Fatalf("EAUG on SGX1 err = %v", err)
	}
}
