package isgx

import (
	"errors"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/sgxorch/sgxorch/internal/sgx"
)

func newDriver(t *testing.T, opts ...Option) *Driver {
	t.Helper()
	return New(sgx.NewPackage(sgx.DefaultGeometry()), opts...)
}

func TestModuleParameters(t *testing.T) {
	d := newDriver(t)
	if got := d.TotalEPCPages(); got != 23936 {
		t.Fatalf("TotalEPCPages = %d, want 23936", got)
	}
	if got := d.FreePages(); got != 23936 {
		t.Fatalf("FreePages = %d, want 23936", got)
	}
	fs := d.Sysfs()
	if got := fs[SysfsDir+"/"+ParamTotalEPCPages]; got != "23936" {
		t.Fatalf("sysfs total = %q", got)
	}
	e, err := d.OpenEnclave(1, "/kubepods/a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Destroy(); err != nil {
			t.Fatal(err)
		}
	}()
	fs = d.Sysfs()
	if got := fs[SysfsDir+"/"+ParamFreePages]; got != strconv.Itoa(23936-1000) {
		t.Fatalf("sysfs free after alloc = %q, want %d", got, 23936-1000)
	}
}

func TestIoctlPagesForPID(t *testing.T) {
	d := newDriver(t)
	if _, err := d.IoctlPagesForPID(0); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("pid 0 err = %v", err)
	}
	e1, err := d.OpenEnclave(7, "/kubepods/a", 10)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := d.OpenEnclave(7, "/kubepods/a", 20)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.IoctlPagesForPID(7)
	if err != nil || got != 30 {
		t.Fatalf("IoctlPagesForPID(7) = %d, %v; want 30", got, err)
	}
	_ = e1.Destroy()
	got, _ = d.IoctlPagesForPID(7)
	if got != 20 {
		t.Fatalf("after destroying one enclave = %d, want 20", got)
	}
	_ = e2.Destroy()
}

func TestIoctlSetLimitWriteOnce(t *testing.T) {
	d := newDriver(t)
	if err := d.IoctlSetLimit("/kubepods/pod1", 100); err != nil {
		t.Fatal(err)
	}
	// "limits can only be set once for each pod" (§V-E).
	if err := d.IoctlSetLimit("/kubepods/pod1", 9999); !errors.Is(err, ErrLimitExists) {
		t.Fatalf("second IoctlSetLimit err = %v, want ErrLimitExists", err)
	}
	limit, ok := d.LimitFor("/kubepods/pod1")
	if !ok || limit != 100 {
		t.Fatalf("LimitFor = %d, %v; want 100, true", limit, ok)
	}
	// After teardown, the path can be reused.
	d.ClearLimit("/kubepods/pod1")
	if err := d.IoctlSetLimit("/kubepods/pod1", 50); err != nil {
		t.Fatalf("IoctlSetLimit after ClearLimit = %v", err)
	}
}

func TestIoctlSetLimitValidation(t *testing.T) {
	d := newDriver(t)
	if err := d.IoctlSetLimit("", 1); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("empty cgroup err = %v", err)
	}
	if err := d.IoctlSetLimit("/x", -1); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("negative limit err = %v", err)
	}
}

func TestEnclaveInitDeniedOverLimit(t *testing.T) {
	d := newDriver(t)
	if err := d.IoctlSetLimit("/kubepods/mal", 1); err != nil {
		t.Fatal(err)
	}
	// A malicious container declares 1 page but allocates far more
	// (§VI-F): the driver must deny initialization and release the pages.
	_, err := d.OpenEnclave(1, "/kubepods/mal", 11968)
	if !errors.Is(err, ErrEnclaveDenied) {
		t.Fatalf("OpenEnclave err = %v, want ErrEnclaveDenied", err)
	}
	if got := d.FreePages(); got != 23936 {
		t.Fatalf("denied enclave leaked pages: free = %d", got)
	}
	if got := d.Package().EnclaveCount(); got != 0 {
		t.Fatalf("denied enclave not destroyed: count = %d", got)
	}
}

func TestEnclaveWithinLimitAllowed(t *testing.T) {
	d := newDriver(t)
	if err := d.IoctlSetLimit("/kubepods/ok", 500); err != nil {
		t.Fatal(err)
	}
	e, err := d.OpenEnclave(1, "/kubepods/ok", 500)
	if err != nil {
		t.Fatalf("enclave exactly at limit denied: %v", err)
	}
	if e.State() != sgx.EnclaveInitialized {
		t.Fatalf("state = %v", e.State())
	}
	// A second enclave in the same pod pushing past the limit is denied:
	// the check counts pages per cgroup, not per enclave.
	if _, err := d.OpenEnclave(2, "/kubepods/ok", 1); !errors.Is(err, ErrEnclaveDenied) {
		t.Fatalf("cumulative over-limit err = %v, want ErrEnclaveDenied", err)
	}
	_ = e.Destroy()
}

func TestNoLimitRegisteredAllowsEnclave(t *testing.T) {
	d := newDriver(t)
	e, err := d.OpenEnclave(1, "/system/hostproc", 100)
	if err != nil {
		t.Fatalf("enclave without registered limit should be allowed: %v", err)
	}
	_ = e.Destroy()
}

func TestEnforcementDisabled(t *testing.T) {
	d := newDriver(t, WithoutEnforcement())
	if d.Enforcing() {
		t.Fatal("Enforcing() = true with WithoutEnforcement")
	}
	if err := d.IoctlSetLimit("/kubepods/mal", 1); err != nil {
		t.Fatal(err)
	}
	// Limits disabled: the malicious allocation sails through (§VI-F
	// "limits disabled" runs).
	e, err := d.OpenEnclave(1, "/kubepods/mal", 11968)
	if err != nil {
		t.Fatalf("OpenEnclave with enforcement off = %v", err)
	}
	_ = e.Destroy()
}

func TestOpenEnclaveEPCExhaustion(t *testing.T) {
	d := newDriver(t)
	e, err := d.OpenEnclave(1, "/kubepods/big", 23936)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.OpenEnclave(2, "/kubepods/small", 1); !errors.Is(err, sgx.ErrEPCExhausted) {
		t.Fatalf("err = %v, want ErrEPCExhausted", err)
	}
	_ = e.Destroy()
	if got := d.FreePages(); got != 23936 {
		t.Fatalf("free after destroy = %d", got)
	}
}

func TestOpenEnclaveNegativePages(t *testing.T) {
	d := newDriver(t)
	if _, err := d.OpenEnclave(1, "/x", -5); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("err = %v, want ErrInvalidArgument", err)
	}
}

// Property: for any sequence of open/destroy pairs within capacity, free
// pages always equals total minus the sum of live enclave pages.
func TestFreePagesInvariantProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		d := New(sgx.NewPackage(sgx.DefaultGeometry()))
		var live []*sgx.Enclave
		var livePages int64
		for i, s := range sizes {
			n := int64(s % 4096)
			e, err := d.OpenEnclave(i+1, "cg", n)
			if err != nil {
				// Exhaustion is acceptable; invariant must still hold.
				continue
			}
			live = append(live, e)
			livePages += n
			if d.FreePages() != d.TotalEPCPages()-livePages {
				return false
			}
		}
		for _, e := range live {
			n := e.Pages()
			if err := e.Destroy(); err != nil {
				return false
			}
			livePages -= n
			if d.FreePages() != d.TotalEPCPages()-livePages {
				return false
			}
		}
		return d.FreePages() == d.TotalEPCPages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
