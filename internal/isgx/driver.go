// Package isgx simulates the paper's modified Intel SGX Linux kernel
// driver (§V-E): EPC usage counters exported as module parameters, a
// per-process occupancy ioctl, and the cgroup-keyed EPC limit ioctl that
// enforces pod resource declarations at enclave initialization (§V-D).
//
// The real patch is 115 lines of C on top of Intel's isgx driver; this
// package reproduces its externally observable contract so that the
// kubelet, device plugin, metrics probe and scheduler interact with it
// exactly as the paper describes.
package isgx

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"github.com/sgxorch/sgxorch/internal/sgx"
)

// DevicePath is the pseudo-file the SDK uses to reach the kernel module;
// Docker mounts it into SGX containers (§V-F).
const DevicePath = "/dev/isgx"

// SysfsDir is where the module parameters appear (§V-E).
const SysfsDir = "/sys/module/isgx/parameters"

// Module parameter names (§V-E).
const (
	ParamTotalEPCPages = "sgx_nr_total_epc_pages"
	ParamFreePages     = "sgx_nr_free_pages"
)

// Errors returned by driver entry points.
var (
	// ErrLimitExists mirrors the write-once rule: "limits can only be set
	// once for each pod, therefore preventing the containers themselves
	// from resetting them" (§V-E).
	ErrLimitExists = errors.New("isgx: EPC limit already set for cgroup")
	// ErrEnclaveDenied is returned when __sgx_encl_init refuses an
	// enclave whose pod exceeds its advertised EPC share (§V-D).
	ErrEnclaveDenied = errors.New("isgx: enclave initialization denied: EPC limit exceeded")
	// ErrInvalidArgument is returned for malformed ioctl arguments.
	ErrInvalidArgument = errors.New("isgx: invalid argument")
)

// Driver is the simulated kernel module instance of one machine.
type Driver struct {
	pkg *sgx.Package
	// enforce toggles limit enforcement; Fig. 11 compares runs with
	// enforcement enabled and disabled.
	enforce bool

	mu     sync.Mutex
	limits map[string]int64 // cgroup path -> page limit (write-once)
}

// Option configures a Driver.
type Option func(*Driver)

// WithoutEnforcement disables the EPC limit check at enclave init,
// emulating the unmodified upstream driver (the "limits disabled" runs of
// Fig. 11).
func WithoutEnforcement() Option {
	return func(d *Driver) { d.enforce = false }
}

// New attaches a driver to an SGX package. Limit enforcement is enabled by
// default.
func New(pkg *sgx.Package, opts ...Option) *Driver {
	d := &Driver{
		pkg:     pkg,
		enforce: true,
		limits:  make(map[string]int64),
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Package exposes the underlying SGX package (for tests and the machine
// model).
func (d *Driver) Package() *sgx.Package { return d.pkg }

// Enforcing reports whether EPC limit enforcement is active.
func (d *Driver) Enforcing() bool { return d.enforce }

// TotalEPCPages returns the application-usable EPC page count — the value
// of the sgx_nr_total_epc_pages module parameter and the number of
// resource items the device plugin advertises (23 936 on the paper's
// hardware).
func (d *Driver) TotalEPCPages() int64 { return d.pkg.Geometry().UsablePages() }

// FreePages returns the sgx_nr_free_pages module parameter: "amount of
// pages not allocated to a particular enclave" (§V-E).
func (d *Driver) FreePages() int64 { return d.pkg.FreePages() }

// Sysfs renders the module parameters as the pseudo-filesystem view under
// /sys/module/isgx/parameters.
func (d *Driver) Sysfs() map[string]string {
	return map[string]string{
		SysfsDir + "/" + ParamTotalEPCPages: strconv.FormatInt(d.TotalEPCPages(), 10),
		SysfsDir + "/" + ParamFreePages:     strconv.FormatInt(d.FreePages(), 10),
	}
}

// IoctlPagesForPID reports the number of occupied EPC pages of a single
// process — the first new ioctl of §V-E, "helpful to identify processes
// that should be preempted and possibly migrated".
func (d *Driver) IoctlPagesForPID(pid int) (int64, error) {
	if pid <= 0 {
		return 0, fmt.Errorf("%w: pid %d", ErrInvalidArgument, pid)
	}
	return d.pkg.PagesForPID(pid), nil
}

// IoctlSetLimit records the EPC page limit for a pod identified by its
// cgroup path — the second new ioctl of §V-E, issued by the patched
// Kubelet at pod creation (§V-D). Limits are write-once.
func (d *Driver) IoctlSetLimit(cgroupPath string, pages int64) error {
	if cgroupPath == "" {
		return fmt.Errorf("%w: empty cgroup path", ErrInvalidArgument)
	}
	if pages < 0 {
		return fmt.Errorf("%w: negative page limit %d", ErrInvalidArgument, pages)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.limits[cgroupPath]; ok {
		return fmt.Errorf("%w: %s", ErrLimitExists, cgroupPath)
	}
	d.limits[cgroupPath] = pages
	return nil
}

// LimitFor returns the registered page limit for a cgroup path.
func (d *Driver) LimitFor(cgroupPath string) (pages int64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok = d.limits[cgroupPath]
	return pages, ok
}

// ClearLimit removes a limit after pod teardown so the cgroup path can be
// reused by a future pod. Only the kubelet calls this; containers cannot.
func (d *Driver) ClearLimit(cgroupPath string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.limits, cgroupPath)
}

// PagesForCgroup aggregates EPC occupancy per pod (via its cgroup path) —
// the quantity the SGX metrics probe pushes into the time-series database
// (§V-C).
func (d *Driver) PagesForCgroup(cgroupPath string) int64 {
	return d.pkg.PagesForCgroup(cgroupPath)
}

// OpenEnclave performs the complete enclave setup path of an SDK
// application: ECREATE, EADD of all pages (SGX 1 commits everything up
// front), and EINIT with the __sgx_encl_init limit check of §V-D/§V-E:
// the total pages owned by the pod's enclaves are compared against the
// limit advertised by its enclosing pod; exceeding it denies
// initialization and releases the pages.
func (d *Driver) OpenEnclave(pid int, cgroupPath string, pages int64) (*sgx.Enclave, error) {
	if pages < 0 {
		return nil, fmt.Errorf("%w: negative page count %d", ErrInvalidArgument, pages)
	}
	e := d.pkg.CreateEnclave(pid, cgroupPath)
	if err := e.AddPages(pages); err != nil {
		derr := e.Destroy()
		if derr != nil {
			return nil, errors.Join(err, derr)
		}
		return nil, err
	}
	if err := d.checkEnclInit(cgroupPath); err != nil {
		derr := e.Destroy()
		if derr != nil {
			return nil, errors.Join(err, derr)
		}
		return nil, err
	}
	if err := e.Init(); err != nil {
		return nil, err
	}
	return e, nil
}

// checkEnclInit is the enforcement hook added to __sgx_encl_init (§V-E).
func (d *Driver) checkEnclInit(cgroupPath string) error {
	if !d.enforce {
		return nil
	}
	d.mu.Lock()
	limit, ok := d.limits[cgroupPath]
	d.mu.Unlock()
	if !ok {
		// No limit registered for this cgroup (e.g. host processes
		// outside Kubernetes): allowed, as in the paper's driver.
		return nil
	}
	if used := d.pkg.PagesForCgroup(cgroupPath); used > limit {
		return fmt.Errorf("%w: cgroup %s uses %d pages, limit %d",
			ErrEnclaveDenied, cgroupPath, used, limit)
	}
	return nil
}
