package clock

import "time"

// Real is a Clock backed by the system wall clock. Daemons in cmd/ use it;
// experiments use SimClock.
type Real struct{}

// NewReal returns a wall-clock Clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

var _ Clock = Real{}
