package clock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSimNowStartsAtEpoch(t *testing.T) {
	s := NewSim()
	if got := s.Now(); !got.Equal(SimEpoch) {
		t.Fatalf("Now() = %v, want %v", got, SimEpoch)
	}
}

func TestSimAfterFuncOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	s.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	s.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	for s.Step() {
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimSameTimestampFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	for s.Step() {
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-timestamp events out of FIFO order: %v", order)
		}
	}
}

func TestSimAdvanceSetsTimeExactly(t *testing.T) {
	s := NewSim()
	fired := false
	s.AfterFunc(500*time.Millisecond, func() { fired = true })
	s.Advance(2 * time.Second)
	if !fired {
		t.Fatal("event within Advance window did not fire")
	}
	if got := s.Since(SimEpoch); got != 2*time.Second {
		t.Fatalf("Since(epoch) = %v, want 2s", got)
	}
}

func TestSimTimerStop(t *testing.T) {
	s := NewSim()
	fired := false
	tm := s.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop() = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.Advance(5 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestSimNegativeDelayFiresImmediately(t *testing.T) {
	s := NewSim()
	fired := false
	s.AfterFunc(-time.Second, func() { fired = true })
	if !s.Step() || !fired {
		t.Fatal("negative-delay event did not fire on first Step")
	}
	if got := s.Now(); !got.Equal(SimEpoch) {
		t.Fatalf("time moved backwards or forwards: %v", got)
	}
}

func TestSimRunStopsOnDone(t *testing.T) {
	s := NewSim()
	count := 0
	var tick func()
	tick = func() {
		count++
		s.AfterFunc(time.Second, tick)
	}
	s.AfterFunc(time.Second, tick)
	ok := s.Run(func() bool { return count >= 5 }, SimEpoch.Add(time.Hour))
	if !ok {
		t.Fatal("Run reported done=false")
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestSimRunStopsAtHorizon(t *testing.T) {
	s := NewSim()
	count := 0
	var tick func()
	tick = func() {
		count++
		s.AfterFunc(time.Minute, tick)
	}
	s.AfterFunc(time.Minute, tick)
	ok := s.Run(func() bool { return false }, SimEpoch.Add(10*time.Minute))
	if ok {
		t.Fatal("Run reported done=true at horizon")
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10 ticks before horizon", count)
	}
}

func TestSimAfterChannel(t *testing.T) {
	s := NewSim()
	ch := s.After(time.Second)
	go s.RunUntil(SimEpoch.Add(2 * time.Second))
	at := <-ch
	if want := SimEpoch.Add(time.Second); !at.Equal(want) {
		t.Fatalf("After fired at %v, want %v", at, want)
	}
}

func TestSimSleepBlocksUntilAdvance(t *testing.T) {
	s := NewSim()
	var wg sync.WaitGroup
	wg.Add(1)
	var woke time.Time
	go func() {
		defer wg.Done()
		s.Sleep(3 * time.Second)
		woke = s.Now()
	}()
	// Drive the simulation until the sleeper's event exists and fires.
	deadline := time.Now().Add(5 * time.Second)
	for s.Len() == 0 && time.Now().Before(deadline) {
	}
	s.Advance(3 * time.Second)
	wg.Wait()
	if woke.Before(SimEpoch.Add(3 * time.Second)) {
		t.Fatalf("sleeper woke at %v, want >= %v", woke, SimEpoch.Add(3*time.Second))
	}
}

func TestPeriodicTicksAndStops(t *testing.T) {
	s := NewSim()
	count := 0
	stop := Periodic(s, 10*time.Second, func() { count++ })
	s.Advance(35 * time.Second)
	if count != 3 {
		t.Fatalf("count = %d after 35s of 10s period, want 3", count)
	}
	stop()
	s.Advance(time.Hour)
	if count != 3 {
		t.Fatalf("periodic fired after stop: count = %d", count)
	}
}

func TestPeriodicPanicsOnNonPositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Periodic(0) did not panic")
		}
	}()
	Periodic(NewSim(), 0, func() {})
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing timestamp order.
func TestSimEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewSim()
		var fired []time.Time
		for _, d := range delays {
			s.AfterFunc(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, s.Now())
			})
		}
		for s.Step() {
		}
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	start := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(start) <= 0 {
		t.Fatal("Real clock did not advance")
	}
	done := make(chan struct{})
	tm := c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Real AfterFunc did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop on fired timer returned true")
	}
}
