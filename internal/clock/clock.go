// Package clock abstracts time so that the whole orchestrator stack can run
// either against the wall clock (production daemons) or against a
// deterministic discrete-event simulation (experiments, tests, benchmarks).
//
// The paper's evaluation replays multi-hour Google Borg trace slices
// (§VI-B); running them on SimClock compresses hours of virtual time into
// milliseconds of wall time while preserving event ordering exactly.
package clock

import (
	"sync"
	"time"
)

// Clock is the time source used by every component in the stack.
//
// Components must never call the time package directly for scheduling
// decisions; they receive a Clock at construction time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Since returns the elapsed duration between t and Now.
	Since(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d.
	//
	// On SimClock the caller resumes once virtual time has advanced past
	// d; some other goroutine must be driving the simulation.
	Sleep(d time.Duration)
	// After returns a channel that delivers the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run once d has elapsed. It returns a Timer
	// whose Stop method cancels the call.
	//
	// On SimClock, f runs synchronously on the goroutine driving the
	// simulation, which makes chains of AfterFunc callbacks fully
	// deterministic. Periodic work throughout the orchestrator is built
	// from self-rescheduling AfterFunc calls (see Periodic).
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancellable pending callback or channel event.
type Timer interface {
	// Stop cancels the timer. It reports whether the timer was still
	// pending (and is now cancelled).
	Stop() bool
}

// Periodic runs f every interval until the returned stop function is
// called. The first invocation happens after one interval, not
// immediately. f runs on the clock's callback goroutine; it must not block
// for long.
func Periodic(c Clock, interval time.Duration, f func()) (stop func()) {
	if interval <= 0 {
		panic("clock: Periodic interval must be positive")
	}
	p := &periodic{c: c, interval: interval, f: f}
	p.schedule()
	return p.stop
}

type periodic struct {
	c        Clock
	interval time.Duration
	f        func()

	mu      sync.Mutex
	timer   Timer
	stopped bool
}

func (p *periodic) schedule() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	p.timer = p.c.AfterFunc(p.interval, p.tick)
}

func (p *periodic) tick() {
	p.f()
	p.schedule()
}

func (p *periodic) stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopped = true
	if p.timer != nil {
		p.timer.Stop()
	}
}
